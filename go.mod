module hornet

go 1.24

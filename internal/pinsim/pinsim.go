// Package pinsim is HORNET's substitute for the Pin-based native-binary
// frontend (paper §II-D3). The paper runs an x86 application under Pin,
// maps its threads 1:1 onto simulated tiles, intercepts every instruction
// and feeds memory accesses to the simulated hierarchy, charging a
// table-driven latency for the non-memory part of each instruction.
//
// Pure Go has no binary-instrumentation ecosystem, so here the "native
// application" is a Go function per thread that calls the Thread
// instrumentation API (Load/Store/Compute) — producing exactly the stream
// Pin's analysis callbacks would — while the per-tile Frontend drains that
// stream into the same memory hierarchy (mem.L1 under MSI, or
// mem.NucaPort) with the same timing rules. Everything downstream of the
// instruction stream (caches, coherence, NoC traffic, statistics) is the
// identical code path.
package pinsim

import (
	"sync/atomic"

	"hornet/internal/sim"
)

// OpKind classifies an instrumented operation.
type OpKind uint8

// Operation kinds produced by the instrumentation API.
const (
	OpCompute OpKind = iota
	OpLoad
	OpStore
)

// Op is one instrumented event.
type Op struct {
	Kind  OpKind
	Addr  uint32
	Size  int
	Value uint64 // store data
	N     int    // compute: instruction count
}

// Port is the memory interface the frontend drives (satisfied by mem.L1
// and mem.NucaPort).
type Port interface {
	Access(cycle uint64, write bool, addr uint32, size int, wdata uint64) (uint64, bool)
}

// Thread is the instrumentation handle passed to application functions.
// Its methods block until the simulator consumes the event, keeping the
// application thread and its simulated tile in lockstep.
type Thread struct {
	id   int
	ops  chan Op
	resp chan uint64
	done atomic.Bool
}

// ID returns the thread index (== its tile in the default mapping).
func (t *Thread) ID() int { return t.id }

// Load performs an instrumented read of size bytes (1, 2, 4 or 8).
func (t *Thread) Load(addr uint32, size int) uint64 {
	t.ops <- Op{Kind: OpLoad, Addr: addr, Size: size}
	return <-t.resp
}

// Load32 is a convenience 4-byte load.
func (t *Thread) Load32(addr uint32) uint32 { return uint32(t.Load(addr, 4)) }

// Store performs an instrumented write.
func (t *Thread) Store(addr uint32, size int, v uint64) {
	t.ops <- Op{Kind: OpStore, Addr: addr, Size: size, Value: v}
	<-t.resp
}

// Store32 is a convenience 4-byte store.
func (t *Thread) Store32(addr uint32, v uint32) { t.Store(addr, 4, uint64(v)) }

// Compute charges n non-memory instructions (table-driven CPI of 1).
func (t *Thread) Compute(n int) {
	if n <= 0 {
		return
	}
	t.ops <- Op{Kind: OpCompute, N: n}
	<-t.resp
}

// Launch starts an application thread; the returned Thread feeds a
// Frontend. The function runs in its own goroutine and finishes when app
// returns.
func Launch(id int, app func(t *Thread)) *Thread {
	t := &Thread{id: id, ops: make(chan Op), resp: make(chan uint64)}
	go func() {
		app(t)
		t.done.Store(true)
		close(t.ops)
	}()
	return t
}

// Frontend is the per-tile component draining one thread's instruction
// stream against the tile's memory port.
type Frontend struct {
	thread *Thread
	port   Port

	cur       *Op
	computing int
	halted    bool

	Instret uint64
	MemOps  uint64
	Stalls  uint64
}

// NewFrontend couples a launched thread with a tile memory port.
func NewFrontend(t *Thread, port Port) *Frontend {
	return &Frontend{thread: t, port: port}
}

// Halted reports whether the application thread has finished and all its
// operations have been charged.
func (f *Frontend) Halted() bool { return f.halted }

// NextEvent implements the fast-forward query.
func (f *Frontend) NextEvent(now uint64) uint64 {
	if f.halted {
		return sim.NoEvent
	}
	return now + 1
}

// Tick advances one cycle: burn a compute cycle, poll an outstanding
// memory access, or fetch the next instrumented operation.
func (f *Frontend) Tick(cycle uint64) {
	if f.halted {
		return
	}
	if f.computing > 0 {
		f.computing--
		f.Instret++
		return
	}
	if f.cur != nil {
		f.step(cycle)
		return
	}
	op, ok := <-f.thread.ops
	if !ok {
		f.halted = true
		return
	}
	switch op.Kind {
	case OpCompute:
		f.computing = op.N
		f.thread.resp <- 0 // release the app thread immediately
		f.computing--
		f.Instret++
	default:
		f.cur = &op
		f.MemOps++
		f.step(cycle)
	}
}

func (f *Frontend) step(cycle uint64) {
	op := f.cur
	v, done := f.port.Access(cycle, op.Kind == OpStore, op.Addr, op.Size, op.Value)
	if !done {
		f.Stalls++
		return
	}
	f.cur = nil
	f.Instret++
	f.thread.resp <- v
}

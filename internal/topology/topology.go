// Package topology builds interconnect geometries — lines, rings, 2D
// meshes and tori, and the paper's multilayer meshes (x1, x1y1, xcube
// inter-layer wiring; Fig 4) — as explicit pairwise node connections, and
// provides the coordinate arithmetic that routing-table builders need.
package topology

import (
	"fmt"

	"hornet/internal/config"
	"hornet/internal/noc"
)

// Edge is one bidirectional neighbour connection (a pair of opposing
// channels, possibly bandwidth-adaptive).
type Edge struct {
	A, B noc.NodeID
}

// Topology is an immutable interconnect geometry.
type Topology struct {
	Kind   string
	Width  int
	Height int
	Layers int

	n         int
	edges     []Edge
	neighbors [][]noc.NodeID
}

// New constructs the geometry described by cfg.
func New(cfg config.TopologyConfig) (*Topology, error) {
	w, h, l := cfg.Width, cfg.Height, cfg.Layers
	if h <= 0 {
		h = 1
	}
	if l <= 0 {
		l = 1
	}
	t := &Topology{Kind: cfg.Kind, Width: w, Height: h, Layers: l}
	t.n = w * h * l
	if t.n < 2 {
		return nil, fmt.Errorf("topology: need at least 2 nodes, got %d", t.n)
	}
	if t.n > noc.MaxNodes {
		return nil, fmt.Errorf("topology: %d nodes exceeds FlowID limit %d", t.n, noc.MaxNodes)
	}
	switch cfg.Kind {
	case config.TopoLine:
		for x := 0; x < w-1; x++ {
			t.addEdge(noc.NodeID(x), noc.NodeID(x+1))
		}
	case config.TopoRing:
		for x := 0; x < w; x++ {
			t.addEdge(noc.NodeID(x), noc.NodeID((x+1)%w))
		}
	case config.TopoMesh, config.TopoTorus:
		t.meshEdges(false)
		if cfg.Kind == config.TopoTorus {
			for y := 0; y < h; y++ {
				t.addEdge(t.NodeAt(w-1, y), t.NodeAt(0, y))
			}
			for x := 0; x < w; x++ {
				t.addEdge(t.NodeAt(x, h-1), t.NodeAt(x, 0))
			}
		}
	case config.TopoMeshX1, config.TopoMeshX1Y1, config.TopoMeshXCube:
		t.meshEdges(true)
		for layer := 0; layer < l-1; layer++ {
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					if !t.isPortal(cfg.Kind, x, y) {
						continue
					}
					a := t.NodeAtL(x, y, layer)
					b := t.NodeAtL(x, y, layer+1)
					t.addEdge(a, b)
				}
			}
		}
	default:
		return nil, fmt.Errorf("topology: unknown kind %q", cfg.Kind)
	}
	t.neighbors = make([][]noc.NodeID, t.n)
	for _, e := range t.edges {
		t.neighbors[e.A] = append(t.neighbors[e.A], e.B)
		t.neighbors[e.B] = append(t.neighbors[e.B], e.A)
	}
	return t, nil
}

// isPortal reports whether (x, y) hosts inter-layer links for the given
// multilayer variant.
func (t *Topology) isPortal(kind string, x, y int) bool {
	switch kind {
	case config.TopoMeshX1:
		return x == 0 && y == 0
	case config.TopoMeshX1Y1:
		return x == 0 || y == 0
	case config.TopoMeshXCube:
		return true
	}
	return false
}

// Portal returns the nearest inter-layer portal to (x, y) for this
// geometry (used by multilayer routing builders). For single-layer
// geometries it returns (x, y) itself.
func (t *Topology) Portal(x, y int) (px, py int) {
	switch t.Kind {
	case config.TopoMeshX1:
		return 0, 0
	case config.TopoMeshX1Y1:
		if x <= y {
			return 0, y
		}
		return x, 0
	default:
		return x, y
	}
}

func (t *Topology) meshEdges(multilayer bool) {
	layers := 1
	if multilayer {
		layers = t.Layers
	}
	for l := 0; l < layers; l++ {
		for y := 0; y < t.Height; y++ {
			for x := 0; x < t.Width; x++ {
				if x+1 < t.Width {
					t.addEdge(t.NodeAtL(x, y, l), t.NodeAtL(x+1, y, l))
				}
				if y+1 < t.Height {
					t.addEdge(t.NodeAtL(x, y, l), t.NodeAtL(x, y+1, l))
				}
			}
		}
	}
}

func (t *Topology) addEdge(a, b noc.NodeID) {
	t.edges = append(t.edges, Edge{A: a, B: b})
}

// Nodes returns the node count.
func (t *Topology) Nodes() int { return t.n }

// Edges returns all bidirectional connections.
func (t *Topology) Edges() []Edge { return t.edges }

// Neighbors returns the nodes adjacent to n.
func (t *Topology) Neighbors(n noc.NodeID) []noc.NodeID { return t.neighbors[n] }

// NodeAt returns the node at mesh coordinates (x, y) on layer 0.
func (t *Topology) NodeAt(x, y int) noc.NodeID {
	return t.NodeAtL(x, y, 0)
}

// NodeAtL returns the node at (x, y) on the given layer.
func (t *Topology) NodeAtL(x, y, layer int) noc.NodeID {
	return noc.NodeID(layer*t.Width*t.Height + y*t.Width + x)
}

// XY returns the in-layer coordinates of n.
func (t *Topology) XY(n noc.NodeID) (x, y int) {
	i := int(n) % (t.Width * t.Height)
	return i % t.Width, i / t.Width
}

// Layer returns n's layer index.
func (t *Topology) Layer(n noc.NodeID) int {
	return int(n) / (t.Width * t.Height)
}

// ManhattanDistance returns hop distance for mesh geometries (including
// the layer distance for multilayer meshes, ignoring portal detours).
func (t *Topology) ManhattanDistance(a, b noc.NodeID) int {
	ax, ay := t.XY(a)
	bx, by := t.XY(b)
	d := abs(ax-bx) + abs(ay-by)
	d += abs(t.Layer(a) - t.Layer(b))
	return d
}

// IsTorus reports whether the geometry has wraparound channels.
func (t *Topology) IsTorus() bool {
	return t.Kind == config.TopoTorus || t.Kind == config.TopoRing
}

// IsMultilayer reports whether the geometry has more than one layer.
func (t *Topology) IsMultilayer() bool { return t.Layers > 1 }

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

package topology

import (
	"testing"
	"testing/quick"

	"hornet/internal/config"
	"hornet/internal/noc"
)

func build(t *testing.T, cfg config.TopologyConfig) *Topology {
	t.Helper()
	topo, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestMeshDegrees(t *testing.T) {
	topo := build(t, config.TopologyConfig{Kind: config.TopoMesh, Width: 4, Height: 4})
	wantDeg := map[int]int{} // degree -> count
	for n := noc.NodeID(0); n < 16; n++ {
		wantDeg[len(topo.Neighbors(n))]++
	}
	// 4 corners (2), 8 edges (3), 4 interior (4).
	if wantDeg[2] != 4 || wantDeg[3] != 8 || wantDeg[4] != 4 {
		t.Fatalf("mesh degree histogram: %v", wantDeg)
	}
	if len(topo.Edges()) != 24 {
		t.Fatalf("4x4 mesh has %d edges, want 24", len(topo.Edges()))
	}
}

func TestTorusIsRegular(t *testing.T) {
	topo := build(t, config.TopologyConfig{Kind: config.TopoTorus, Width: 4, Height: 4})
	for n := noc.NodeID(0); n < 16; n++ {
		if len(topo.Neighbors(n)) != 4 {
			t.Fatalf("torus node %d degree %d, want 4", n, len(topo.Neighbors(n)))
		}
	}
	if len(topo.Edges()) != 32 {
		t.Fatalf("4x4 torus has %d edges, want 32", len(topo.Edges()))
	}
}

func TestRingAndLine(t *testing.T) {
	ring := build(t, config.TopologyConfig{Kind: config.TopoRing, Width: 6})
	if len(ring.Edges()) != 6 {
		t.Fatalf("6-ring has %d edges", len(ring.Edges()))
	}
	line := build(t, config.TopologyConfig{Kind: config.TopoLine, Width: 6})
	if len(line.Edges()) != 5 {
		t.Fatalf("6-line has %d edges", len(line.Edges()))
	}
}

func TestCoordinateRoundTrip(t *testing.T) {
	topo := build(t, config.TopologyConfig{Kind: config.TopoMesh, Width: 7, Height: 5})
	if err := quick.Check(func(raw uint8) bool {
		n := noc.NodeID(int(raw) % topo.Nodes())
		x, y := topo.XY(n)
		return topo.NodeAt(x, y) == n && x >= 0 && x < 7 && y >= 0 && y < 5
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMultilayerPortals(t *testing.T) {
	cases := []struct {
		kind      string
		wantEdges int // in-layer: 2 layers x 24; inter-layer varies
	}{
		{config.TopoMeshX1, 2*24 + 1},
		{config.TopoMeshX1Y1, 2*24 + 7}, // x==0 or y==0: 4+4-1 portals
		{config.TopoMeshXCube, 2*24 + 16},
	}
	for _, c := range cases {
		topo := build(t, config.TopologyConfig{Kind: c.kind, Width: 4, Height: 4, Layers: 2})
		if len(topo.Edges()) != c.wantEdges {
			t.Errorf("%s: %d edges, want %d", c.kind, len(topo.Edges()), c.wantEdges)
		}
		if topo.Nodes() != 32 {
			t.Errorf("%s: %d nodes", c.kind, topo.Nodes())
		}
	}
}

func TestLayerHelpers(t *testing.T) {
	topo := build(t, config.TopologyConfig{Kind: config.TopoMeshXCube, Width: 3, Height: 3, Layers: 3})
	n := topo.NodeAtL(2, 1, 2)
	if topo.Layer(n) != 2 {
		t.Fatalf("layer of %d = %d", n, topo.Layer(n))
	}
	x, y := topo.XY(n)
	if x != 2 || y != 1 {
		t.Fatalf("coords of %d = (%d,%d)", n, x, y)
	}
}

func TestManhattanDistanceSymmetric(t *testing.T) {
	topo := build(t, config.TopologyConfig{Kind: config.TopoMesh, Width: 8, Height: 8})
	if err := quick.Check(func(aRaw, bRaw uint8) bool {
		a, b := noc.NodeID(aRaw%64), noc.NodeID(bRaw%64)
		d := topo.ManhattanDistance(a, b)
		return d == topo.ManhattanDistance(b, a) && (d == 0) == (a == b)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsTooSmall(t *testing.T) {
	if _, err := New(config.TopologyConfig{Kind: config.TopoMesh, Width: 1, Height: 1}); err == nil {
		t.Fatal("1x1 mesh accepted")
	}
	if _, err := New(config.TopologyConfig{Kind: "nonsense", Width: 4, Height: 4}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

package scenario

import (
	"bytes"
	"encoding/json"
	"strings"

	"hornet/internal/config"
	"hornet/internal/workloads"
)

// Run is one compiled simulation: the full configuration it executes
// and, for application scenarios, the kernel binding. Key is empty for
// single-run scenarios (the job name stands in) and the axis-derived
// label for sweep points.
type Run struct {
	Key      string
	Config   config.Config
	Workload *Workload
}

// Compiled is a scenario lowered to its executable form, plus the
// normalized document it came from.
type Compiled struct {
	Normalized  *Scenario
	Name        string
	Seed        uint64
	ShareWarmup bool
	Shards      int
	Runs        []Run
}

// Compile normalizes the scenario, expands its sweep axes, and lowers
// every point to a validated config.Config (+ workload binding). Each
// expanded point is strictly re-decoded and re-validated, so a swept
// value can never smuggle in a state the schema would have rejected as
// direct input.
func Compile(s *Scenario) (*Compiled, *FieldError) {
	n, ferr := s.Normalize()
	if ferr != nil {
		return nil, ferr
	}
	c := &Compiled{
		Normalized:  n,
		Name:        n.Name,
		Seed:        n.Run.Seed,
		ShareWarmup: n.Run.ShareWarmup,
		Shards:      n.Run.Shards,
	}
	if len(n.Sweep) == 0 {
		cfg, ferr := n.runConfig()
		if ferr != nil {
			return nil, ferr
		}
		c.Runs = []Run{{Config: cfg, Workload: n.Workload}}
		return c, nil
	}

	total := 1
	for _, ax := range n.Sweep {
		total *= len(ax.Values)
		if total > MaxSweepRuns {
			return nil, errf("/sweep", "sweep expands to more than %d runs", MaxSweepRuns)
		}
	}
	base, err := json.Marshal(n)
	if err != nil {
		return nil, errf("", "encoding normalized scenario: %v", err)
	}
	idx := make([]int, len(n.Sweep))
	seen := map[string]bool{}
	for p := 0; p < total; p++ {
		var doc any
		dec := json.NewDecoder(bytes.NewReader(base))
		dec.UseNumber()
		if err := dec.Decode(&doc); err != nil {
			return nil, errf("", "decoding normalized scenario: %v", err)
		}
		parts := make([]string, 0, len(n.Sweep))
		for a, ax := range n.Sweep {
			raw := ax.Values[idx[a]]
			var val any
			vdec := json.NewDecoder(bytes.NewReader(raw))
			vdec.UseNumber()
			if err := vdec.Decode(&val); err != nil {
				return nil, errf(pointerIndex(pointerIndex("/sweep", a)+"/values", idx[a]),
					"invalid JSON value: %s", jsonMsg(err))
			}
			if ferr := setPointer(doc, ax.Path, val); ferr != nil {
				return nil, errf(pointerIndex("/sweep", a)+"/path", "%s", ferr.Msg)
			}
			parts = append(parts, ax.Name+"-"+renderValue(raw))
		}
		key := strings.Join(parts, "-")
		pointJSON, err := json.Marshal(doc)
		if err != nil {
			return nil, errf("", "encoding sweep point %s: %v", key, err)
		}
		point, ferr := Decode(pointJSON)
		if ferr != nil {
			return nil, errf(ferr.Path, "sweep point %s: %s", key, ferr.Msg)
		}
		point.Sweep = nil
		pn, ferr := point.Normalize()
		if ferr != nil {
			return nil, errf(ferr.Path, "sweep point %s: %s", key, ferr.Msg)
		}
		if !nameRE.MatchString(key) {
			return nil, errf("/sweep", "run key %q (from the axis values) must match [a-zA-Z0-9._-]{1,64}", key)
		}
		if seen[key] {
			return nil, errf("/sweep", "duplicate run key %q: axis values must render distinct labels", key)
		}
		seen[key] = true
		cfg, ferr := pn.runConfig()
		if ferr != nil {
			return nil, errf(ferr.Path, "sweep point %s: %s", key, ferr.Msg)
		}
		c.Runs = append(c.Runs, Run{Key: key, Config: cfg, Workload: pn.Workload})

		for a := len(idx) - 1; a >= 0; a-- {
			idx[a]++
			if idx[a] < len(n.Sweep[a].Values) {
				break
			}
			idx[a] = 0
		}
	}
	return c, nil
}

// runConfig lowers a normalized, sweep-free scenario to the
// configuration one run executes.
func (s *Scenario) runConfig() (config.Config, *FieldError) {
	m := s.Machine
	cfg := config.Default()
	cfg.Topology = m.Topology
	cfg.Router = *m.Router
	cfg.Routing = *m.Routing
	cfg.Memory = m.Memory
	cfg.Power = *m.Power
	cfg.Thermal = *m.Thermal
	cfg.AvgPacketFlits = m.AvgPacketFlits
	cfg.Traffic = append([]config.TrafficConfig(nil), s.Traffic...)
	cfg.Engine = config.EngineConfig{
		SyncPeriod:  s.Run.SyncPeriod,
		FastForward: s.Run.FastForward,
	}
	if s.Workload != nil {
		// Application workloads define their own span.
		cfg.WarmupCycles, cfg.AnalyzedCycles = 0, 0
	} else {
		cfg.WarmupCycles = *s.Run.WarmupCycles
		cfg.AnalyzedCycles = s.Run.AnalyzedCycles
	}
	if err := cfg.Validate(); err != nil {
		return cfg, errf("/machine", "%s", err.Error())
	}
	if w := s.Workload; w != nil {
		k, ok := workloads.Lookup(w.Kernel)
		if !ok {
			return cfg, errf("/workload/kernel", "unknown kernel %q", w.Kernel)
		}
		if err := k.Validate(w.Params, cfg.Topology.Nodes()); err != nil {
			return cfg, errf("/workload", "%s", err.Error())
		}
		if k.Shared && cfg.Memory == nil {
			return cfg, errf("/machine/memory",
				"%s runs on the coherent-memory fabric; machine.memory is required", w.Kernel)
		}
		if !k.Shared && cfg.Memory != nil {
			return cfg, errf("/machine/memory",
				"%s uses private per-core memory; omit machine.memory", w.Kernel)
		}
	}
	return cfg, nil
}

// renderValue turns one axis value into its run-key fragment: the JSON
// literal with every byte outside the key alphabet replaced by '-'
// (strings drop their quotes first).
func renderValue(raw json.RawMessage) string {
	t := strings.TrimSpace(string(raw))
	var unq string
	if json.Unmarshal(raw, &unq) == nil {
		t = unq
	}
	out := make([]byte, 0, len(t))
	for i := 0; i < len(t); i++ {
		b := t[i]
		switch {
		case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b >= '0' && b <= '9',
			b == '.', b == '_', b == '-':
			out = append(out, b)
		default:
			out = append(out, '-')
		}
	}
	return string(out)
}

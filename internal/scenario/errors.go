package scenario

import "fmt"

// FieldError is a validation error anchored to one location in the
// scenario document. Path is a JSON pointer ("/machine/topology/width",
// "/sweep/0/path", ...), empty when the error concerns the document as a
// whole. The service layer prefixes it with the request-body location of
// the scenario ("/scenario") so API clients see one coherent pointer
// space.
type FieldError struct {
	Path string
	Msg  string
}

// Error implements the error interface.
func (e *FieldError) Error() string {
	if e.Path == "" {
		return e.Msg
	}
	return e.Path + ": " + e.Msg
}

// errf builds a FieldError at path.
func errf(path, format string, args ...any) *FieldError {
	return &FieldError{Path: path, Msg: fmt.Sprintf(format, args...)}
}

package scenario

import (
	"encoding/json"
	"strings"
	"testing"

	"hornet/internal/config"
	"hornet/internal/workloads"
)

func decodeT(t *testing.T, src string) *Scenario {
	t.Helper()
	s, ferr := Decode([]byte(src))
	if ferr != nil {
		t.Fatalf("Decode: %v", ferr)
	}
	return s
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	cases := []struct {
		name, src, path string
	}{
		{"top-level", `{"version":1,"figure":"t1"}`, "/figure"},
		{"machine", `{"version":1,"machine":{"topolgy":{}}}`, "/machine"},
		{"workload", `{"version":1,"machine":{"topology":{"kind":"mesh","width":4,"height":4}},"workload":{"kern":"pingpong"}}`, "/workload"},
		{"traffic-elem", `{"version":1,"machine":{"topology":{"kind":"mesh","width":4,"height":4}},"traffic":[{"patern":"uniform"}]}`, "/traffic/0"},
		{"sweep-elem", `{"version":1,"machine":{"topology":{"kind":"mesh","width":4,"height":4}},"sweep":[{"nam":"x"}]}`, "/sweep/0"},
		{"run", `{"version":1,"machine":{"topology":{"kind":"mesh","width":4,"height":4}},"run":{"sharding":2}}`, "/run"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, ferr := Decode([]byte(tc.src))
			if ferr == nil {
				t.Fatalf("Decode accepted %s", tc.src)
			}
			if ferr.Path != tc.path {
				t.Fatalf("error path = %q, want %q (%s)", ferr.Path, tc.path, ferr.Msg)
			}
		})
	}
}

func TestNormalizeErrors(t *testing.T) {
	mk := func(mut func(*Scenario)) *Scenario {
		s := &Scenario{
			Version: Version,
			Machine: Machine{Topology: config.TopologyConfig{Kind: config.TopoMesh, Width: 4, Height: 4}},
			Traffic: []config.TrafficConfig{{Pattern: config.PatternUniform, InjectionRate: 0.05}},
		}
		mut(s)
		return s
	}
	cases := []struct {
		name string
		s    *Scenario
		path string
	}{
		{"bad-version", mk(func(s *Scenario) { s.Version = 2 }), "/version"},
		{"bad-name", mk(func(s *Scenario) { s.Name = "no spaces" }), "/name"},
		{"no-topology", mk(func(s *Scenario) { s.Machine.Topology = config.TopologyConfig{} }), "/machine/topology"},
		{"no-frontend", mk(func(s *Scenario) { s.Traffic = nil }), ""},
		{"both-frontends", mk(func(s *Scenario) { s.Workload = &Workload{Kernel: "pingpong"} }), ""},
		{"workload-warmup", &Scenario{
			Version:  Version,
			Machine:  Machine{Topology: config.TopologyConfig{Kind: config.TopoMesh, Width: 4, Height: 4}},
			Workload: &Workload{Kernel: "pingpong"},
			Run:      &Plan{WarmupCycles: new(int)},
		}, "/run/warmup_cycles"},
		{"workload-share-warmup", &Scenario{
			Version:  Version,
			Machine:  Machine{Topology: config.TopologyConfig{Kind: config.TopoMesh, Width: 4, Height: 4}},
			Workload: &Workload{Kernel: "pingpong"},
			Run:      &Plan{ShareWarmup: true},
		}, "/run/share_warmup"},
		{"unknown-kernel", &Scenario{
			Version:  Version,
			Machine:  Machine{Topology: config.TopologyConfig{Kind: config.TopoMesh, Width: 4, Height: 4}},
			Workload: &Workload{Kernel: "doom"},
		}, "/workload/kernel"},
		{"one-shard", mk(func(s *Scenario) { s.Run = &Plan{Shards: 1} }), "/run/shards"},
		{"bad-axis-path", mk(func(s *Scenario) {
			s.Sweep = []Axis{{Name: "x", Path: "/run/seed", Values: rawValues("1")}}
		}), "/sweep/0/path"},
		{"dup-axis", mk(func(s *Scenario) {
			s.Sweep = []Axis{
				{Name: "x", Path: "/traffic/0/injection_rate", Values: rawValues("0.1")},
				{Name: "x", Path: "/machine/router/vcs_per_port", Values: rawValues("2")},
			}
		}), "/sweep/1/name"},
		{"object-value", mk(func(s *Scenario) {
			s.Sweep = []Axis{{Name: "x", Path: "/traffic/0/injection_rate", Values: rawValues(`{"a":1}`)}}
		}), "/sweep/0/values/0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, ferr := tc.s.Normalize()
			if ferr == nil {
				t.Fatal("Normalize accepted invalid scenario")
			}
			if ferr.Path != tc.path {
				t.Fatalf("error path = %q, want %q (%s)", ferr.Path, tc.path, ferr.Msg)
			}
		})
	}
}

func TestNormalizeDefaultsTrafficPlan(t *testing.T) {
	s := decodeT(t, `{
		"version": 1,
		"machine": {"topology": {"kind": "mesh", "width": 4, "height": 4}},
		"traffic": [{"pattern": "uniform", "injection_rate": 0.05}]
	}`)
	n, ferr := s.Normalize()
	if ferr != nil {
		t.Fatalf("Normalize: %v", ferr)
	}
	def := config.Default()
	if *n.Run.WarmupCycles != def.WarmupCycles || n.Run.AnalyzedCycles != def.AnalyzedCycles {
		t.Fatalf("plan windows = %d/%d, want baseline %d/%d",
			*n.Run.WarmupCycles, n.Run.AnalyzedCycles, def.WarmupCycles, def.AnalyzedCycles)
	}
	if n.Run.Seed != DefaultSeed || n.Run.SyncPeriod != 1 {
		t.Fatalf("plan seed/sync = %d/%d", n.Run.Seed, n.Run.SyncPeriod)
	}
	if n.Machine.Router.VCsPerPort != def.Router.VCsPerPort {
		t.Fatalf("router not materialized: %+v", n.Machine.Router)
	}
}

// Machine sections are overlays: a sparse router section keeps every
// unnamed field at its baseline value.
func TestMachineOverlay(t *testing.T) {
	s := decodeT(t, `{
		"version": 1,
		"machine": {
			"topology": {"kind": "mesh", "width": 4, "height": 4},
			"router": {"vcs_per_port": 8},
			"memory": {"protocol": "msi"}
		},
		"workload": {"kernel": "shared-pingpong"}
	}`)
	n, ferr := s.Normalize()
	if ferr != nil {
		t.Fatalf("Normalize: %v", ferr)
	}
	def := config.Default()
	if n.Machine.Router.VCsPerPort != 8 {
		t.Fatalf("override lost: vcs_per_port = %d", n.Machine.Router.VCsPerPort)
	}
	if n.Machine.Router.VCBufFlits != def.Router.VCBufFlits {
		t.Fatalf("baseline lost: vc_buf_flits = %d, want %d", n.Machine.Router.VCBufFlits, def.Router.VCBufFlits)
	}
	defMem := config.DefaultMemory()
	if n.Machine.Memory.Protocol != "msi" || n.Machine.Memory.LineBytes != defMem.LineBytes {
		t.Fatalf("memory overlay wrong: %+v", n.Machine.Memory)
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	for _, name := range PresetNames() {
		s, _ := Preset(name)
		n1, ferr := s.Normalize()
		if ferr != nil {
			t.Fatalf("%s: Normalize: %v", name, ferr)
		}
		n2, ferr := n1.Normalize()
		if ferr != nil {
			t.Fatalf("%s: re-Normalize: %v", name, ferr)
		}
		b1, _ := Encode(n1)
		b2, _ := Encode(n2)
		if string(b1) != string(b2) {
			t.Fatalf("%s: normalization is not idempotent:\n%s\n---\n%s", name, b1, b2)
		}
	}
}

func TestCompileSweepExpansion(t *testing.T) {
	s, ok := Preset("routing-vcs-8x8")
	if !ok {
		t.Fatal("preset missing")
	}
	comp, ferr := Compile(s)
	if ferr != nil {
		t.Fatalf("Compile: %v", ferr)
	}
	wantKeys := []string{"alg-xy-vcs-2", "alg-xy-vcs-8", "alg-o1turn-vcs-2", "alg-o1turn-vcs-8"}
	if len(comp.Runs) != len(wantKeys) {
		t.Fatalf("got %d runs, want %d", len(comp.Runs), len(wantKeys))
	}
	for i, want := range wantKeys {
		r := comp.Runs[i]
		if r.Key != want {
			t.Fatalf("run %d key = %q, want %q", i, r.Key, want)
		}
		wantAlg := strings.Split(want, "-")[1]
		if r.Config.Routing.Algorithm != wantAlg {
			t.Fatalf("run %s algorithm = %q", want, r.Config.Routing.Algorithm)
		}
	}
	if comp.Runs[0].Config.Router.VCsPerPort != 2 || comp.Runs[1].Config.Router.VCsPerPort != 8 {
		t.Fatalf("vcs axis not applied: %d, %d",
			comp.Runs[0].Config.Router.VCsPerPort, comp.Runs[1].Config.Router.VCsPerPort)
	}
}

// A swept value flows through the same validation as direct input: an
// injection rate of 2.0 must be rejected even though the base document
// is valid.
func TestCompileSweepValidatesPoints(t *testing.T) {
	s, _ := Preset("uniform-load-8x8")
	s.Sweep[0].Values = rawValues("0.05", "2.0")
	if _, ferr := Compile(s); ferr == nil {
		t.Fatal("Compile accepted an out-of-range swept value")
	}
}

func TestCompileSweepKernelParams(t *testing.T) {
	s := &Scenario{
		Version:  Version,
		Machine:  Machine{Topology: config.TopologyConfig{Kind: config.TopoMesh, Width: 2, Height: 2}},
		Workload: &Workload{Kernel: "reduction"},
		Sweep: []Axis{{
			Name: "elems", Path: "/workload/params/elems", Values: rawValues("8", "32"),
		}},
	}
	comp, ferr := Compile(s)
	if ferr != nil {
		t.Fatalf("Compile: %v", ferr)
	}
	if len(comp.Runs) != 2 {
		t.Fatalf("got %d runs", len(comp.Runs))
	}
	for i, want := range []int64{8, 32} {
		if got := comp.Runs[i].Workload.Params.Get("elems", 0); got != want {
			t.Fatalf("run %d elems = %d, want %d", i, got, want)
		}
	}
}

func TestCompileDuplicateKeys(t *testing.T) {
	s, _ := Preset("uniform-load-8x8")
	s.Sweep[0].Values = rawValues("0.05", "0.05")
	_, ferr := Compile(s)
	if ferr == nil || !strings.Contains(ferr.Msg, "duplicate run key") {
		t.Fatalf("Compile = %v, want duplicate-key error", ferr)
	}
}

func TestCompileSharedKernelNeedsMemory(t *testing.T) {
	s := &Scenario{
		Version:  Version,
		Machine:  Machine{Topology: config.TopologyConfig{Kind: config.TopoMesh, Width: 4, Height: 4}},
		Workload: &Workload{Kernel: "shared-pingpong"},
	}
	_, ferr := Compile(s)
	if ferr == nil || ferr.Path != "/machine/memory" {
		t.Fatalf("Compile = %v, want /machine/memory error", ferr)
	}
	s.Workload.Kernel = "pingpong"
	s.Machine.Memory = &config.MemoryConfig{Protocol: "msi"}
	_, ferr = Compile(s)
	if ferr == nil || ferr.Path != "/machine/memory" {
		t.Fatalf("Compile = %v, want /machine/memory error", ferr)
	}
}

func TestPresetsAllCompile(t *testing.T) {
	for _, name := range PresetNames() {
		s, _ := Preset(name)
		comp, ferr := Compile(s)
		if ferr != nil {
			t.Fatalf("%s: Compile: %v", name, ferr)
		}
		if len(comp.Runs) == 0 {
			t.Fatalf("%s: no runs", name)
		}
		for _, r := range comp.Runs {
			if r.Workload != nil {
				if _, ok := workloads.Lookup(r.Workload.Kernel); !ok {
					t.Fatalf("%s: unknown kernel %q", name, r.Workload.Kernel)
				}
			}
		}
	}
}

func TestSetPointerErrors(t *testing.T) {
	var doc any
	if err := json.Unmarshal([]byte(`{"a": {"b": [1, 2]}}`), &doc); err != nil {
		t.Fatal(err)
	}
	if ferr := setPointer(doc, "/a/b/5", 9); ferr == nil {
		t.Fatal("accepted out-of-range array index")
	}
	if ferr := setPointer(doc, "/a/x/b", 9); ferr == nil {
		t.Fatal("accepted missing intermediate field")
	}
	if ferr := setPointer(doc, "no-slash", 9); ferr == nil {
		t.Fatal("accepted pointer without leading slash")
	}
	if ferr := setPointer(doc, "/a/b/1", 9); ferr != nil {
		t.Fatalf("rejected valid pointer: %v", ferr)
	}
}

// Package scenario defines the declarative scenario schema: a versioned
// JSON document that composes a machine (topology, router, routing,
// memory hierarchy, power/thermal models), a frontend (synthetic traffic
// or a named application kernel), a run plan (warmup window, seeding,
// sharding), and sweep axes into validated simulation configurations.
//
// The schema describes machines, not figures: instead of submitting a
// fully spelled-out config.Config or naming a pre-built experiment, a
// scenario names the design point it wants explored and the package
// compiles it — every omitted knob taking the paper's Table I baseline —
// into the exact per-run configurations the simulation service executes.
//
// Three operations define the package:
//
//   - Decode: strict JSON parsing. Unknown fields and type mismatches
//     are rejected with a JSON-pointer path to the offending input.
//
//   - Normalize: canonicalization. Every default is materialized (the
//     full router section, kernel parameters, the run plan), so two
//     scenarios that mean the same machine normalize to byte-identical
//     documents — the property that lets scenarios share the service's
//     content-addressed result cache.
//
//   - Compile: sweep expansion and lowering. Axes are applied as JSON
//     pointers over the normalized document, each resulting point is
//     re-validated, and every run lowers to a config.Config plus an
//     optional workload binding.
package scenario

import (
	"bytes"
	"encoding/json"
	"regexp"
	"strings"

	"hornet/internal/config"
	"hornet/internal/workloads"
)

// Version is the schema version this package speaks. Documents must
// declare it explicitly so future revisions can change defaults without
// silently reinterpreting archived scenarios.
const Version = 1

// DefaultSeed matches the experiment harness default: a scenario with no
// run.seed reproduces the same documents as an unseeded legacy
// submission.
const DefaultSeed = 0x5EED0A11

// DefaultMaxCycles caps application-workload runs that never halt.
const DefaultMaxCycles = 10_000_000

// MaxSweepRuns bounds how many runs one scenario may expand to.
const MaxSweepRuns = 512

var nameRE = regexp.MustCompile(`^[a-zA-Z0-9._-]{1,64}$`)
var axisNameRE = regexp.MustCompile(`^[a-zA-Z0-9._-]{1,32}$`)

// Scenario is the root document.
type Scenario struct {
	// Version must be 1.
	Version int `json:"version"`
	// Name labels the job and its result document ([a-zA-Z0-9._-]{1,64});
	// empty defaults to the compiled kind.
	Name string `json:"name,omitempty"`
	// Machine describes the design point. Omitted sections take the
	// paper's Table I baseline (config.Default()).
	Machine Machine `json:"machine"`
	// Traffic attaches synthetic traffic sources; mutually exclusive
	// with Workload.
	Traffic []config.TrafficConfig `json:"traffic,omitempty"`
	// Workload names an application kernel to run on MIPS cores;
	// mutually exclusive with Traffic.
	Workload *Workload `json:"workload,omitempty"`
	// Run is the execution plan: measurement window, fast-forward,
	// seeding, sharding.
	Run *Plan `json:"run,omitempty"`
	// Sweep expands the scenario into the cartesian product of its axes.
	Sweep []Axis `json:"sweep,omitempty"`
}

// Machine is a design-point description layered over the baseline
// configuration. The topology is required; every other section is an
// overlay — a section left out (or a field left zero inside a provided
// section) takes the baseline value, which is safe because zero is not a
// valid value for any load-bearing field. The two exceptions, documented
// on their fields, are booleans and the inj_* router fields, whose zero
// values are themselves the baseline.
type Machine struct {
	Topology config.TopologyConfig `json:"topology"`
	// Router overlays the router section. Bidirectional is taken
	// verbatim (false is the baseline); inj_vcs/inj_buf_flits zero means
	// "same as network ports", as in config.RouterConfig.
	Router  *config.RouterConfig  `json:"router,omitempty"`
	Routing *config.RoutingConfig `json:"routing,omitempty"`
	// Memory, when present, attaches the cache/memory-controller
	// hierarchy (overlaying config.DefaultMemory()); absent means no
	// coherent fabric.
	Memory  *config.MemoryConfig  `json:"memory,omitempty"`
	Power   *config.PowerConfig   `json:"power,omitempty"`
	Thermal *config.ThermalConfig `json:"thermal,omitempty"`
	// AvgPacketFlits is the default packet length; 0 takes the baseline 8.
	AvgPacketFlits int `json:"avg_packet_flits,omitempty"`
}

// Workload binds a registered application kernel (internal/workloads) to
// the machine.
type Workload struct {
	// Kernel is the registry name: "pingpong", "shared-pingpong",
	// "cannon", "reduction", "matmul-blocked", ...
	Kernel string `json:"kernel"`
	// Params parameterizes the kernel; missing keys take the kernel's
	// defaults, unknown keys are rejected.
	Params workloads.Params `json:"params,omitempty"`
	// MaxCycles caps the run if the workload never halts (default 10M).
	MaxCycles uint64 `json:"max_cycles,omitempty"`
}

// Plan is the execution plan. Warmup/analyzed windows apply to
// synthetic-traffic scenarios only; application workloads define their
// own span (halt or max_cycles).
type Plan struct {
	// WarmupCycles precede the measured window (traffic scenarios;
	// default 200000, explicit 0 allowed).
	WarmupCycles *int `json:"warmup_cycles,omitempty"`
	// AnalyzedCycles is the measured window (traffic scenarios;
	// default 2000000).
	AnalyzedCycles int `json:"analyzed_cycles,omitempty"`
	// FastForward skips provably idle cycles.
	FastForward bool `json:"fast_forward,omitempty"`
	// SyncPeriod is the engine synchronization period (default 1,
	// cycle-accurate).
	SyncPeriod int `json:"sync_period,omitempty"`
	// Seed is the job's master seed; 0 takes DefaultSeed.
	Seed uint64 `json:"seed,omitempty"`
	// ShareWarmup derives run seeds from warmup-prefix groups
	// (traffic sweeps only); part of the cache identity.
	ShareWarmup bool `json:"share_warmup,omitempty"`
	// Shards, when >= 2, splits each simulation space-parallel across
	// fleet members; never part of the cache identity.
	Shards int `json:"shards,omitempty"`
}

// Axis is one sweep dimension: the values are substituted at Path (a
// JSON pointer into the scenario document, under /machine, /traffic or
// /workload) and the cartesian product of all axes becomes the run set.
type Axis struct {
	Name   string            `json:"name"`
	Path   string            `json:"path"`
	Values []json.RawMessage `json:"values"`
}

// Decode parses a scenario document strictly: the input must be a JSON
// object, and unknown fields anywhere in it are rejected with a pointer
// to where they appeared.
func Decode(data []byte) (*Scenario, *FieldError) {
	var top map[string]json.RawMessage
	if err := json.Unmarshal(data, &top); err != nil {
		return nil, errf("", "scenario must be a JSON object: %s", jsonMsg(err))
	}
	if ferr := checkKeys("", top,
		"version", "name", "machine", "traffic", "workload", "run", "sweep"); ferr != nil {
		return nil, ferr
	}
	s := &Scenario{}
	for _, f := range []struct {
		key  string
		path string
		dst  any
	}{
		{"version", "/version", &s.Version},
		{"name", "/name", &s.Name},
		{"machine", "/machine", &s.Machine},
		{"workload", "/workload", &s.Workload},
		{"run", "/run", &s.Run},
	} {
		if raw, ok := top[f.key]; ok {
			if ferr := strictField(raw, f.path, f.dst); ferr != nil {
				return nil, ferr
			}
		}
	}
	if raw, ok := top["traffic"]; ok {
		var items []json.RawMessage
		if err := json.Unmarshal(raw, &items); err != nil {
			return nil, errf("/traffic", "must be an array: %s", jsonMsg(err))
		}
		s.Traffic = make([]config.TrafficConfig, len(items))
		for i, item := range items {
			if ferr := strictField(item, pointerIndex("/traffic", i), &s.Traffic[i]); ferr != nil {
				return nil, ferr
			}
		}
	}
	if raw, ok := top["sweep"]; ok {
		var items []json.RawMessage
		if err := json.Unmarshal(raw, &items); err != nil {
			return nil, errf("/sweep", "must be an array: %s", jsonMsg(err))
		}
		s.Sweep = make([]Axis, len(items))
		for i, item := range items {
			if ferr := strictField(item, pointerIndex("/sweep", i), &s.Sweep[i]); ferr != nil {
				return nil, ferr
			}
		}
	}
	return s, nil
}

// Encode renders a scenario with stable two-space indentation and a
// trailing newline — the canonical file form used by examples/ and the
// golden tests.
func Encode(s *Scenario) ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// strictField decodes raw into dst rejecting unknown fields; errors are
// anchored at path.
func strictField(raw json.RawMessage, path string, dst any) *FieldError {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return errf(path, "%s", jsonMsg(err))
	}
	return nil
}

// checkKeys rejects object keys outside the allowed set.
func checkKeys(path string, m map[string]json.RawMessage, allowed ...string) *FieldError {
	for key := range m {
		ok := false
		for _, a := range allowed {
			if key == a {
				ok = true
				break
			}
		}
		if !ok {
			return errf(path+"/"+escapePointer(key),
				"unknown field (accepts %s)", strings.Join(allowed, ", "))
		}
	}
	return nil
}

// jsonMsg strips the stdlib's "json: " prefix for cleaner messages.
func jsonMsg(err error) string {
	return strings.TrimPrefix(err.Error(), "json: ")
}

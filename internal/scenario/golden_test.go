package scenario

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite examples/scenarios/ from the preset registry")

const examplesDir = "../../examples/scenarios"

// TestExamplesMatchPresets pins the gallery in examples/scenarios/ to
// the preset registry: every preset has a file, every file is a preset,
// and each file holds the preset's exact Encode()d bytes. Regenerate
// with `go test ./internal/scenario -run TestExamplesMatchPresets -update`.
func TestExamplesMatchPresets(t *testing.T) {
	if *update {
		if err := os.MkdirAll(examplesDir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range PresetNames() {
		s, _ := Preset(name)
		want, err := Encode(s)
		if err != nil {
			t.Fatalf("%s: Encode: %v", name, err)
		}
		path := filepath.Join(examplesDir, name+".json")
		if *update {
			if err := os.WriteFile(path, want, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update to regenerate the gallery)", name, err)
		}
		if string(got) != string(want) {
			t.Errorf("%s: example file diverges from the preset (run with -update)", name)
		}
	}
	if *update {
		return
	}
	entries, err := os.ReadDir(examplesDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := strings.TrimSuffix(e.Name(), ".json")
		if _, ok := Preset(name); !ok {
			t.Errorf("examples/scenarios/%s has no matching preset", e.Name())
		}
	}
}

// TestExamplesRoundTrip: every example file decodes, normalizes, and —
// once normalized — encodes to a stable fixed point. This is the
// property that makes scenario documents content-addressable.
func TestExamplesRoundTrip(t *testing.T) {
	for _, name := range PresetNames() {
		s, _ := Preset(name)
		b, err := Encode(s)
		if err != nil {
			t.Fatal(err)
		}
		d1, ferr := Decode(b)
		if ferr != nil {
			t.Fatalf("%s: Decode: %v", name, ferr)
		}
		n1, ferr := d1.Normalize()
		if ferr != nil {
			t.Fatalf("%s: Normalize: %v", name, ferr)
		}
		e1, err := Encode(n1)
		if err != nil {
			t.Fatal(err)
		}
		d2, ferr := Decode(e1)
		if ferr != nil {
			t.Fatalf("%s: re-Decode: %v", name, ferr)
		}
		n2, ferr := d2.Normalize()
		if ferr != nil {
			t.Fatalf("%s: re-Normalize: %v", name, ferr)
		}
		e2, err := Encode(n2)
		if err != nil {
			t.Fatal(err)
		}
		if string(e1) != string(e2) {
			t.Fatalf("%s: normalized form is not a fixed point:\n%s\n---\n%s", name, e1, e2)
		}
	}
}

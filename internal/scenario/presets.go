package scenario

import (
	"encoding/json"
	"sort"

	"hornet/internal/config"
	"hornet/internal/workloads"
)

// Presets are named, ready-to-submit scenarios: a worked example per
// schema feature. hornet-exp runs them via -scenario preset:NAME, and
// the files in examples/scenarios/ are their Encode()d form (the golden
// test keeps the two in lockstep).
var presets = map[string]func() *Scenario{
	// The legacy service's default MIPS job, now as a scenario: byte-for-
	// byte the same document and cache key as {"mips": {"workload":
	// "pingpong"}} on the baseline machine.
	"pingpong-8x8": func() *Scenario {
		return &Scenario{
			Version: Version,
			Name:    "pingpong-8x8",
			Machine: Machine{Topology: mesh(8, 8)},
			Workload: &Workload{
				Kernel: "pingpong",
				Params: workloads.Params{"rounds": 100},
			},
		}
	},
	// A many-to-one communication shape the pre-scenario service could
	// not express: binary-tree reduction on a 4x4 mesh.
	"reduction-tree-4x4": func() *Scenario {
		return &Scenario{
			Version: Version,
			Name:    "reduction-tree-4x4",
			Machine: Machine{Topology: mesh(4, 4)},
			Workload: &Workload{
				Kernel: "reduction",
				Params: workloads.Params{"elems": 256},
			},
			Run: &Plan{FastForward: true},
		}
	},
	// New workload x new topology: per-core blocked matmul with a
	// checksum gather, on a ring.
	"matmul-ring-8": func() *Scenario {
		return &Scenario{
			Version: Version,
			Name:    "matmul-ring-8",
			Machine: Machine{Topology: config.TopologyConfig{Kind: config.TopoRing, Width: 8, Height: 1}},
			Workload: &Workload{
				Kernel: "matmul-blocked",
				Params: workloads.Params{"n": 8, "b": 4},
			},
			Run: &Plan{FastForward: true},
		}
	},
	// A load sweep: one axis over the injection rate, three runs in one
	// document.
	"uniform-load-8x8": func() *Scenario {
		w := 20_000
		return &Scenario{
			Version: Version,
			Name:    "uniform-load-8x8",
			Machine: Machine{Topology: mesh(8, 8)},
			Traffic: []config.TrafficConfig{{Pattern: config.PatternUniform, InjectionRate: 0.05}},
			Run:     &Plan{WarmupCycles: &w, AnalyzedCycles: 200_000},
			Sweep: []Axis{{
				Name:   "rate",
				Path:   "/traffic/0/injection_rate",
				Values: rawValues("0.02", "0.05", "0.1"),
			}},
		}
	},
	// A machine sweep: routing algorithm x VC count under transpose
	// traffic, the Fig 5/6-style comparison as a four-point product.
	"routing-vcs-8x8": func() *Scenario {
		w := 20_000
		return &Scenario{
			Version: Version,
			Name:    "routing-vcs-8x8",
			Machine: Machine{Topology: mesh(8, 8)},
			Traffic: []config.TrafficConfig{{Pattern: config.PatternTranspose, InjectionRate: 0.08}},
			Run:     &Plan{WarmupCycles: &w, AnalyzedCycles: 200_000},
			Sweep: []Axis{
				{Name: "alg", Path: "/machine/routing/algorithm", Values: rawValues(`"xy"`, `"o1turn"`)},
				{Name: "vcs", Path: "/machine/router/vcs_per_port", Values: rawValues("2", "8")},
			},
		}
	},
	// The coherent-memory fabric: shared-memory ping-pong through MSI.
	"shared-pingpong-msi": func() *Scenario {
		return &Scenario{
			Version: Version,
			Name:    "shared-pingpong-msi",
			Machine: Machine{
				Topology: mesh(4, 4),
				Memory:   &config.MemoryConfig{Protocol: "msi"},
			},
			Workload: &Workload{
				Kernel: "shared-pingpong",
				Params: workloads.Params{"rounds": 50},
			},
		}
	},
}

// Preset returns a named preset scenario.
func Preset(name string) (*Scenario, bool) {
	f, ok := presets[name]
	if !ok {
		return nil, false
	}
	return f(), true
}

// PresetNames lists the presets, sorted.
func PresetNames() []string {
	out := make([]string, 0, len(presets))
	for name := range presets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func mesh(w, h int) config.TopologyConfig {
	return config.TopologyConfig{Kind: config.TopoMesh, Width: w, Height: h}
}

func rawValues(vals ...string) []json.RawMessage {
	out := make([]json.RawMessage, len(vals))
	for i, v := range vals {
		out[i] = json.RawMessage(v)
	}
	return out
}

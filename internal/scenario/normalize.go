package scenario

import (
	"encoding/json"
	"strings"

	"hornet/internal/config"
	"hornet/internal/workloads"
)

// Normalize validates the document and returns its canonical form: the
// machine's overlay sections materialized against the baseline, kernel
// parameters folded with their defaults, and the run plan's windows made
// explicit. Two scenarios that describe the same machine normalize to
// the same document, and normalization is idempotent — both properties
// are what make scenarios content-addressable (and are locked in by the
// golden and fuzz tests).
func (s *Scenario) Normalize() (*Scenario, *FieldError) {
	if s.Version != Version {
		return nil, errf("/version", "unsupported scenario version %d (this daemon speaks version %d)",
			s.Version, Version)
	}
	if s.Name != "" && !nameRE.MatchString(s.Name) {
		return nil, errf("/name", "name must match [a-zA-Z0-9._-]{1,64}")
	}
	if s.Machine.Topology.Kind == "" {
		return nil, errf("/machine/topology", "topology is required")
	}
	hasTraffic, hasWorkload := len(s.Traffic) > 0, s.Workload != nil
	if hasTraffic == hasWorkload {
		return nil, errf("", "exactly one of traffic, workload must be set")
	}

	n := &Scenario{
		Version: Version,
		Name:    s.Name,
		Machine: s.Machine.effective(),
	}
	if hasTraffic {
		n.Traffic = append([]config.TrafficConfig(nil), s.Traffic...)
	}

	plan := Plan{}
	if s.Run != nil {
		plan = *s.Run
	}
	if hasWorkload {
		w, ferr := s.Workload.normalize()
		if ferr != nil {
			return nil, ferr
		}
		n.Workload = w
		if plan.WarmupCycles != nil {
			return nil, errf("/run/warmup_cycles",
				"application workloads define their own span; omit warmup_cycles")
		}
		if plan.AnalyzedCycles != 0 {
			return nil, errf("/run/analyzed_cycles",
				"application workloads define their own span; omit analyzed_cycles")
		}
		if plan.ShareWarmup {
			return nil, errf("/run/share_warmup",
				"share_warmup applies to synthetic-traffic scenarios; application workloads have no warmup prefix")
		}
	} else {
		if plan.WarmupCycles == nil {
			w := config.Default().WarmupCycles
			plan.WarmupCycles = &w
		} else if *plan.WarmupCycles < 0 {
			return nil, errf("/run/warmup_cycles", "must be >= 0, got %d", *plan.WarmupCycles)
		}
		if plan.AnalyzedCycles == 0 {
			plan.AnalyzedCycles = config.Default().AnalyzedCycles
		} else if plan.AnalyzedCycles < 0 {
			return nil, errf("/run/analyzed_cycles", "must be >= 1, got %d", plan.AnalyzedCycles)
		}
	}
	if plan.SyncPeriod == 0 {
		plan.SyncPeriod = 1
	} else if plan.SyncPeriod < 0 {
		return nil, errf("/run/sync_period", "must be >= 1, got %d", plan.SyncPeriod)
	}
	if plan.Seed == 0 {
		plan.Seed = DefaultSeed
	}
	if plan.Shards == 1 || plan.Shards < 0 {
		return nil, errf("/run/shards", "shards must be 0 (off) or >= 2, got %d", plan.Shards)
	}
	n.Run = &plan

	if ferr := s.checkSweep(); ferr != nil {
		return nil, ferr
	}
	if len(s.Sweep) > 0 {
		n.Sweep = make([]Axis, len(s.Sweep))
		for i, ax := range s.Sweep {
			n.Sweep[i] = Axis{Name: ax.Name, Path: ax.Path,
				Values: append([]json.RawMessage(nil), ax.Values...)}
		}
	}
	return n, nil
}

// normalize folds a workload against its registry entry.
func (w *Workload) normalize() (*Workload, *FieldError) {
	k, ok := workloads.Lookup(w.Kernel)
	if !ok {
		return nil, errf("/workload/kernel", "unknown kernel %q (registered: %s)",
			w.Kernel, strings.Join(workloads.Names(), ", "))
	}
	p, err := k.Normalize(w.Params)
	if err != nil {
		return nil, errf("/workload/params", "%s", err.Error())
	}
	out := &Workload{Kernel: w.Kernel, Params: p, MaxCycles: w.MaxCycles}
	if out.MaxCycles == 0 {
		out.MaxCycles = DefaultMaxCycles
	}
	if out.MaxCycles > 1_000_000_000 {
		return nil, errf("/workload/max_cycles", "must be <= 1000000000")
	}
	return out, nil
}

// checkSweep validates the axes structurally (names, paths, value
// shapes); the swept values themselves are validated per expanded point
// during Compile.
func (s *Scenario) checkSweep() *FieldError {
	seen := map[string]bool{}
	for i, ax := range s.Sweep {
		base := pointerIndex("/sweep", i)
		if !axisNameRE.MatchString(ax.Name) {
			return errf(base+"/name", "axis name must match [a-zA-Z0-9._-]{1,32}")
		}
		if seen[ax.Name] {
			return errf(base+"/name", "duplicate axis name %q", ax.Name)
		}
		seen[ax.Name] = true
		if !strings.HasPrefix(ax.Path, "/machine/") &&
			!strings.HasPrefix(ax.Path, "/traffic/") &&
			!strings.HasPrefix(ax.Path, "/workload/") {
			return errf(base+"/path",
				"axis paths must point under /machine, /traffic or /workload, got %q", ax.Path)
		}
		if _, ferr := splitPointer(ax.Path); ferr != nil {
			return errf(base+"/path", "%s", ferr.Msg)
		}
		if len(ax.Values) == 0 {
			return errf(base+"/values", "axis needs at least one value")
		}
		for j, v := range ax.Values {
			t := strings.TrimSpace(string(v))
			if t == "" || t[0] == '{' || t[0] == '[' {
				return errf(pointerIndex(base+"/values", j),
					"axis values must be JSON scalars (number, string or boolean)")
			}
		}
	}
	return nil
}

// effective materializes the machine against the baseline configuration:
// every overlay section becomes the full section the simulation will
// actually use.
func (m *Machine) effective() Machine {
	base := config.Default()
	out := Machine{Topology: m.Topology}

	r := base.Router
	if o := m.Router; o != nil {
		overrideInt(&r.VCsPerPort, o.VCsPerPort)
		overrideInt(&r.VCBufFlits, o.VCBufFlits)
		overrideInt(&r.LinkBandwidth, o.LinkBandwidth)
		overrideStr(&r.VCAlloc, o.VCAlloc)
		// Verbatim fields: false / 0 are themselves the baseline.
		r.Bidirectional = o.Bidirectional
		r.InjVCs = o.InjVCs
		r.InjBufFlits = o.InjBufFlits
	}
	out.Router = &r

	rt := base.Routing
	if o := m.Routing; o != nil {
		overrideStr(&rt.Algorithm, o.Algorithm)
		rt.StaticPaths = o.StaticPaths
	}
	out.Routing = &rt

	if o := m.Memory; o != nil {
		mem := *config.DefaultMemory()
		overrideInt(&mem.LineBytes, o.LineBytes)
		overrideInt(&mem.L1Sets, o.L1Sets)
		overrideInt(&mem.L1Ways, o.L1Ways)
		overrideInt(&mem.L1LatencyCyc, o.L1LatencyCyc)
		overrideStr(&mem.Protocol, o.Protocol)
		if o.Controllers != nil {
			mem.Controllers = o.Controllers
		}
		overrideInt(&mem.MCLatencyCyc, o.MCLatencyCyc)
		overrideInt(&mem.MCQueueDepth, o.MCQueueDepth)
		out.Memory = &mem
	}

	p := base.Power
	if o := m.Power; o != nil {
		overrideFloat(&p.BufReadPJ, o.BufReadPJ)
		overrideFloat(&p.BufWritePJ, o.BufWritePJ)
		overrideFloat(&p.XbarPJ, o.XbarPJ)
		overrideFloat(&p.ArbPJ, o.ArbPJ)
		overrideFloat(&p.LinkPJ, o.LinkPJ)
		overrideFloat(&p.LeakageMW, o.LeakageMW)
		overrideFloat(&p.ClockGHz, o.ClockGHz)
		overrideInt(&p.EpochCycles, o.EpochCycles)
	}
	out.Power = &p

	t := base.Thermal
	if o := m.Thermal; o != nil {
		overrideFloat(&t.AmbientC, o.AmbientC)
		overrideFloat(&t.RVerticalKPerW, o.RVerticalKPerW)
		overrideFloat(&t.RLateralKPerW, o.RLateralKPerW)
		overrideFloat(&t.CJPerK, o.CJPerK)
	}
	out.Thermal = &t

	out.AvgPacketFlits = m.AvgPacketFlits
	if out.AvgPacketFlits == 0 {
		out.AvgPacketFlits = base.AvgPacketFlits
	}
	return out
}

func overrideInt(dst *int, v int) {
	if v != 0 {
		*dst = v
	}
}

func overrideStr(dst *string, v string) {
	if v != "" {
		*dst = v
	}
}

func overrideFloat(dst *float64, v float64) {
	if v != 0 {
		*dst = v
	}
}

package scenario

import (
	"testing"
)

// FuzzScenario drives arbitrary bytes through the full decode →
// normalize → encode pipeline and asserts the content-addressing
// invariants: normalization is deterministic, its output re-decodes,
// and re-normalizing is a fixed point (same bytes). The corpus seeds
// are the preset gallery, so mutations start from every schema feature.
func FuzzScenario(f *testing.F) {
	for _, name := range PresetNames() {
		s, _ := Preset(name)
		b, err := Encode(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, ferr := Decode(data)
		if ferr != nil {
			return // malformed input must be rejected, never panic
		}
		n, ferr := s.Normalize()
		if ferr != nil {
			return
		}
		e1, err := Encode(n)
		if err != nil {
			t.Fatalf("normalized scenario does not encode: %v", err)
		}
		s2, ferr := Decode(e1)
		if ferr != nil {
			t.Fatalf("normalized form does not re-decode: %v\n%s", ferr, e1)
		}
		n2, ferr := s2.Normalize()
		if ferr != nil {
			t.Fatalf("normalized form does not re-normalize: %v\n%s", ferr, e1)
		}
		e2, err := Encode(n2)
		if err != nil {
			t.Fatal(err)
		}
		if string(e1) != string(e2) {
			t.Fatalf("normalization is not a fixed point:\n%s\n---\n%s", e1, e2)
		}
	})
}

package scenario

import (
	"strconv"
	"strings"
)

// splitPointer parses an RFC 6901 JSON pointer into unescaped segments.
func splitPointer(path string) ([]string, *FieldError) {
	if path == "" || path[0] != '/' {
		return nil, errf("", "JSON pointer must start with '/', got %q", path)
	}
	parts := strings.Split(path[1:], "/")
	for i, p := range parts {
		p = strings.ReplaceAll(p, "~1", "/")
		p = strings.ReplaceAll(p, "~0", "~")
		parts[i] = p
	}
	return parts, nil
}

// escapePointer escapes one pointer segment.
func escapePointer(seg string) string {
	seg = strings.ReplaceAll(seg, "~", "~0")
	return strings.ReplaceAll(seg, "/", "~1")
}

// pointerIndex appends an array index to a pointer prefix.
func pointerIndex(prefix string, i int) string {
	return prefix + "/" + strconv.Itoa(i)
}

// setPointer replaces the value at path inside a decoded JSON document
// (maps and slices as produced by encoding/json). The parent container
// must exist; a map key may be new (the strict re-decode of the mutated
// document rejects keys the schema does not know), but an array index
// must address an existing element.
func setPointer(doc any, path string, val any) *FieldError {
	segs, ferr := splitPointer(path)
	if ferr != nil {
		return ferr
	}
	cur := doc
	for _, seg := range segs[:len(segs)-1] {
		next, ferr := descend(cur, seg, path)
		if ferr != nil {
			return ferr
		}
		cur = next
	}
	last := segs[len(segs)-1]
	switch c := cur.(type) {
	case map[string]any:
		c[last] = val
	case []any:
		i, err := strconv.Atoi(last)
		if err != nil || i < 0 || i >= len(c) {
			return errf("", "%s: no element %q in array of %d", path, last, len(c))
		}
		c[i] = val
	default:
		return errf("", "%s: parent is not an object or array", path)
	}
	return nil
}

func descend(cur any, seg, path string) (any, *FieldError) {
	switch c := cur.(type) {
	case map[string]any:
		next, ok := c[seg]
		if !ok {
			return nil, errf("", "%s: no field %q along the path", path, seg)
		}
		return next, nil
	case []any:
		i, err := strconv.Atoi(seg)
		if err != nil || i < 0 || i >= len(c) {
			return nil, errf("", "%s: no element %q in array of %d", path, seg, len(c))
		}
		return c[i], nil
	default:
		return nil, errf("", "%s: %q is not an object or array", path, seg)
	}
}

// Package vca builds HORNET's table-driven virtual-channel allocation
// (paper §II-A3). A VCA lookup is addressed by <prev_node, flow,
// next_node, next_flow> and yields a weighted set of candidate VCs; the
// candidate set combines the routing algorithm's deadlock-avoidance VC
// class for the hop (e.g. O1TURN's per-subroute sets, ROMM/Valiant's
// per-phase sets, PROM's escape channel) with the configured allocation
// discipline:
//
//   - dynamic: every class-legal VC, equal weight;
//   - static-set: a deterministic per-flow subset of the class-legal VCs
//     (Shim et al.'s static VCA);
//   - EDVCA and FAA: same candidate sets as dynamic — their exclusivity
//     and flow-affinity rules are enforced at allocation time by the
//     router, as they depend on downstream buffer contents.
package vca

import (
	"hornet/internal/config"
	"hornet/internal/noc"
	"hornet/internal/routing"
)

// Classifier abstracts the routing algorithm's per-hop VC class rule.
type Classifier interface {
	Class(node, prev noc.NodeID, flow noc.FlowID, next noc.NodeID, nextFlow noc.FlowID) routing.Class
}

// Tables produces per-node VCA tables for a fixed classifier and mode.
type Tables struct {
	classifier Classifier
	mode       noc.VCAMode
}

// New builds VCA tables for the given routing classifier and configured
// allocation policy name (config.VCA* constants).
func New(classifier Classifier, policy string) (*Tables, noc.VCAMode, error) {
	var mode noc.VCAMode
	switch policy {
	case config.VCADynamic:
		mode = noc.VCADynamic
	case config.VCAStaticSet:
		mode = noc.VCAStaticSet
	case config.VCAEDVCA:
		mode = noc.VCAEDVCA
	case config.VCAFAA:
		mode = noc.VCAFAA
	default:
		return nil, 0, errUnknownPolicy(policy)
	}
	return &Tables{classifier: classifier, mode: mode}, mode, nil
}

type errUnknownPolicy string

func (e errUnknownPolicy) Error() string { return "vca: unknown policy " + string(e) }

// ForNode returns the node-local VCA table.
func (t *Tables) ForNode(n noc.NodeID) noc.VCATable {
	return &nodeVCA{tables: t, node: n}
}

type nodeVCA struct {
	tables *Tables
	node   noc.NodeID
	// scratch avoids per-lookup allocation; tables are per-node and only
	// used from the owning tile's thread.
	scratch []noc.VCChoice
}

// Candidates implements noc.VCATable.
func (nv *nodeVCA) Candidates(prev noc.NodeID, flow noc.FlowID, next noc.NodeID, nextFlow noc.FlowID, numVCs int) []noc.VCChoice {
	t := nv.tables
	class := t.classifier.Class(nv.node, prev, flow, next, nextFlow)
	lo, hi := classRange(class, numVCs)
	nv.scratch = nv.scratch[:0]
	if t.mode == noc.VCAStaticSet {
		// Static set VCA: the VC is a deterministic function of the flow
		// ID within the class-legal range. Mix the ID so flows differing
		// only in high bits (source) still spread across VCs.
		span := hi - lo
		vc := lo + int(mix32(uint32(flow.Base()))%uint32(span))
		nv.scratch = append(nv.scratch, noc.VCChoice{VC: vc, Weight: 1})
		return nv.scratch
	}
	for vc := lo; vc < hi; vc++ {
		nv.scratch = append(nv.scratch, noc.VCChoice{VC: vc, Weight: 1})
	}
	return nv.scratch
}

// mix32 is a finalizer-style avalanche hash (murmur3 fmix32).
func mix32(v uint32) uint32 {
	v ^= v >> 16
	v *= 0x85EBCA6B
	v ^= v >> 13
	v *= 0xC2B2AE35
	v ^= v >> 16
	return v
}

// classRange maps a routing VC class to the concrete index range [lo, hi)
// within a numVCs-channel port. With a single VC every class collapses to
// it (configurations needing real partitioning are validated upstream).
func classRange(class routing.Class, numVCs int) (int, int) {
	if numVCs == 1 {
		return 0, 1
	}
	switch class {
	case routing.ClassLo:
		return 0, numVCs / 2
	case routing.ClassHi:
		return numVCs / 2, numVCs
	case routing.ClassEscape:
		return 0, 1
	case routing.ClassNonEscape:
		return 1, numVCs
	default:
		return 0, numVCs
	}
}

package vca

import (
	"testing"

	"hornet/internal/config"
	"hornet/internal/noc"
	"hornet/internal/routing"
)

// fixedClass is a classifier returning a constant class.
type fixedClass routing.Class

func (f fixedClass) Class(node, prev noc.NodeID, flow noc.FlowID, next noc.NodeID, nextFlow noc.FlowID) routing.Class {
	return routing.Class(f)
}

func candidates(t *testing.T, class routing.Class, policy string, numVCs int) []noc.VCChoice {
	t.Helper()
	tables, _, err := New(fixedClass(class), policy)
	if err != nil {
		t.Fatal(err)
	}
	nt := tables.ForNode(0)
	return nt.Candidates(0, noc.MakeFlow(1, 2, 0), 3, noc.MakeFlow(1, 2, 0), numVCs)
}

func vcSet(cs []noc.VCChoice) map[int]bool {
	m := map[int]bool{}
	for _, c := range cs {
		m[c.VC] = true
	}
	return m
}

func TestDynamicUsesAllClassVCs(t *testing.T) {
	cs := candidates(t, routing.ClassAny, config.VCADynamic, 4)
	if len(cs) != 4 {
		t.Fatalf("ClassAny dynamic: %d candidates, want 4", len(cs))
	}
	cs = candidates(t, routing.ClassLo, config.VCADynamic, 4)
	set := vcSet(cs)
	if len(cs) != 2 || !set[0] || !set[1] {
		t.Fatalf("ClassLo: %v, want VCs 0-1", cs)
	}
	cs = candidates(t, routing.ClassHi, config.VCADynamic, 4)
	set = vcSet(cs)
	if len(cs) != 2 || !set[2] || !set[3] {
		t.Fatalf("ClassHi: %v, want VCs 2-3", cs)
	}
}

func TestEscapeClasses(t *testing.T) {
	cs := candidates(t, routing.ClassEscape, config.VCADynamic, 4)
	if len(cs) != 1 || cs[0].VC != 0 {
		t.Fatalf("ClassEscape: %v, want only VC 0", cs)
	}
	cs = candidates(t, routing.ClassNonEscape, config.VCADynamic, 4)
	set := vcSet(cs)
	if len(cs) != 3 || set[0] {
		t.Fatalf("ClassNonEscape: %v, want VCs 1-3", cs)
	}
}

func TestStaticSetIsDeterministicSingleton(t *testing.T) {
	tables, _, err := New(fixedClass(routing.ClassAny), config.VCAStaticSet)
	if err != nil {
		t.Fatal(err)
	}
	nt := tables.ForNode(0)
	f := noc.MakeFlow(3, 9, 0)
	a := nt.Candidates(0, f, 1, f, 8)
	if len(a) != 1 {
		t.Fatalf("static set returned %d VCs", len(a))
	}
	for i := 0; i < 10; i++ {
		b := nt.Candidates(0, f, 1, f, 8)
		if b[0].VC != a[0].VC {
			t.Fatal("static set VC changed between lookups")
		}
	}
	// Different flows spread across VCs (at least not all identical).
	seen := map[int]bool{}
	for s := noc.NodeID(0); s < 32; s++ {
		g := noc.MakeFlow(s, 33, 0)
		seen[nt.Candidates(0, g, 1, g, 8)[0].VC] = true
	}
	if len(seen) < 2 {
		t.Fatal("static set mapped every flow to one VC")
	}
}

func TestSingleVCCollapses(t *testing.T) {
	for _, class := range []routing.Class{routing.ClassAny, routing.ClassLo, routing.ClassHi, routing.ClassNonEscape} {
		cs := candidates(t, class, config.VCADynamic, 1)
		if len(cs) != 1 || cs[0].VC != 0 {
			t.Fatalf("class %d with 1 VC: %v", class, cs)
		}
	}
}

func TestModeMapping(t *testing.T) {
	cases := map[string]noc.VCAMode{
		config.VCADynamic:   noc.VCADynamic,
		config.VCAStaticSet: noc.VCAStaticSet,
		config.VCAEDVCA:     noc.VCAEDVCA,
		config.VCAFAA:       noc.VCAFAA,
	}
	for policy, want := range cases {
		_, mode, err := New(fixedClass(routing.ClassAny), policy)
		if err != nil {
			t.Fatal(err)
		}
		if mode != want {
			t.Fatalf("%s mapped to %v", policy, mode)
		}
	}
	if _, _, err := New(fixedClass(routing.ClassAny), "voodoo"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAggregateSums(t *testing.T) {
	a, b := NewTile(), NewTile()
	a.FlitsInjected, b.FlitsInjected = 10, 20
	a.FlitsDelivered, b.FlitsDelivered = 8, 16
	a.FlitLatencySum, b.FlitLatencySum = 80, 160
	a.HopSum, b.HopSum = 24, 48
	a.RecordPacketDelivered(7, 1, 100)
	b.RecordPacketDelivered(7, 2, 200)
	s := Aggregate([]*Tile{a, b})
	if s.FlitsInjected != 30 || s.FlitsDelivered != 24 {
		t.Fatalf("flit sums wrong: %+v", s)
	}
	if s.AvgFlitLatency != 10 {
		t.Fatalf("avg flit latency %v", s.AvgFlitLatency)
	}
	if s.AvgHops != 3 {
		t.Fatalf("avg hops %v", s.AvgHops)
	}
	if s.AvgPacketLatency != 150 || s.MaxPacketLatency != 200 {
		t.Fatalf("packet latency stats wrong: %+v", s)
	}
	if fr := s.Flows[7]; fr.PacketsDelivered != 2 || fr.LatencySum != 300 {
		t.Fatalf("flow merge wrong: %+v", fr)
	}
}

func TestOrderViolationDetection(t *testing.T) {
	a := NewTile()
	a.RecordPacketDelivered(3, 1, 10)
	a.RecordPacketDelivered(3, 3, 10)
	a.RecordPacketDelivered(3, 2, 10) // out of order
	if a.Flow(3).OrderViolations != 1 {
		t.Fatalf("order violations = %d, want 1", a.Flow(3).OrderViolations)
	}
}

func TestHistogramBuckets(t *testing.T) {
	a := NewTile()
	a.RecordPacketDelivered(1, 0, 1)
	a.RecordPacketDelivered(1, 0, 2)
	a.RecordPacketDelivered(1, 0, 3)
	a.RecordPacketDelivered(1, 0, 1000)
	total := uint64(0)
	for _, v := range a.LatencyHist {
		total += v
	}
	if total != 4 {
		t.Fatalf("histogram holds %d samples, want 4", total)
	}
	if a.LatencyHist[bucketOf(1000)] == 0 {
		t.Fatal("large latency not bucketed")
	}
}

func TestBucketOfMonotone(t *testing.T) {
	if err := quick.Check(func(a, b uint32) bool {
		x, y := uint64(a), uint64(b)
		if x > y {
			x, y = y, x
		}
		return bucketOf(x) <= bucketOf(y)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStarvedFlows(t *testing.T) {
	a := NewTile()
	for i := 0; i < 100; i++ {
		a.RecordPacketDelivered(1, 0, 10)
	}
	a.RecordPacketDelivered(2, 0, 10) // one packet vs mean ~50
	s := Aggregate([]*Tile{a})
	starved := s.StarvedFlows(0.1)
	if len(starved) != 1 || starved[0] != 2 {
		t.Fatalf("starved flows: %v", starved)
	}
}

func TestAccuracyMetric(t *testing.T) {
	if Accuracy(100, 100) != 100 {
		t.Fatal("perfect accuracy not 100")
	}
	if a := Accuracy(110, 100); math.Abs(a-90) > 1e-9 {
		t.Fatalf("Accuracy(110,100) = %v", a)
	}
	if Accuracy(500, 100) != 0 {
		t.Fatal("accuracy should floor at 0")
	}
}

func TestPercentError(t *testing.T) {
	if PercentError(0, 0) != 0 {
		t.Fatal("0/0 error should be 0")
	}
	if !math.IsInf(PercentError(1, 0), 1) {
		t.Fatal("x/0 error should be +Inf")
	}
}

func TestThroughput(t *testing.T) {
	s := Summary{FlitsDelivered: 6400}
	if th := s.Throughput(64, 100); th != 1 {
		t.Fatalf("throughput %v, want 1", th)
	}
	if s.Throughput(0, 100) != 0 || s.Throughput(64, 0) != 0 {
		t.Fatal("degenerate throughput not 0")
	}
}

func TestResetClears(t *testing.T) {
	a := NewTile()
	a.FlitsInjected = 5
	a.RecordPacketDelivered(1, 0, 10)
	a.Reset()
	if a.FlitsInjected != 0 || len(a.Flows) != 0 || a.PacketsDelivered != 0 {
		t.Fatal("reset incomplete")
	}
}

// Package stats collects per-tile simulation statistics: flit and packet
// counters, in-network latency (accumulated inside flits, per the paper's
// loose-synchronization-safe accounting), per-flow delivery counts, and
// the event counters (buffer reads/writes, crossbar and link transits,
// arbitrations) that drive the power model.
//
// Each tile owns a private Tile so no locking is needed on the hot path;
// Aggregate folds tiles together after (or between) runs.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// LatencyBuckets is the number of power-of-two histogram buckets.
// Bucket i counts samples in [2^i, 2^(i+1)).
const LatencyBuckets = 24

// Tile accumulates statistics for one simulated tile. Not safe for
// concurrent use: exactly one worker thread touches a given tile.
type Tile struct {
	FlitsInjected    uint64
	FlitsDelivered   uint64
	PacketsInjected  uint64
	PacketsDelivered uint64

	// FlitLatencySum is the sum over delivered flits of their accumulated
	// in-network latency (cycles from network ingress to final egress).
	FlitLatencySum uint64
	// PacketLatencySum sums per-packet latencies (head injection to tail
	// delivery, computed from same-clock-domain quantities).
	PacketLatencySum uint64
	MaxPacketLatency uint64

	// Histogram of delivered packet latencies in power-of-two buckets.
	LatencyHist [LatencyBuckets]uint64

	// Power-model event counters.
	BufReads     uint64
	BufWrites    uint64
	XbarTransits uint64
	LinkTransits uint64
	ArbEvents    uint64

	// Per-flow delivery bookkeeping, keyed by raw flow ID. Records are
	// created at the destination tile.
	Flows map[uint32]*FlowRecord

	// HopSum counts total hops of delivered flits (diagnostics).
	HopSum uint64
}

// FlowRecord tracks one flow's delivered traffic at its destination.
type FlowRecord struct {
	PacketsDelivered uint64
	FlitsDelivered   uint64
	LatencySum       uint64
	LastSeq          uint64 // last delivered per-flow packet sequence number (order check)
	OrderViolations  uint64
}

// NewTile returns an empty per-tile statistics block.
func NewTile() *Tile {
	return &Tile{Flows: make(map[uint32]*FlowRecord)}
}

// Reset zeroes all counters (used at the warmup boundary).
func (t *Tile) Reset() {
	*t = Tile{Flows: make(map[uint32]*FlowRecord)}
}

// FlitSample reads the flit counters telemetry samples: injected and
// delivered totals plus the mean in-network flit latency so far. Must
// only be called while the tile's worker thread is quiescent (the
// engine's barrier leader qualifies) — the counters are plain fields.
func (t *Tile) FlitSample() (injected, delivered uint64, avgLatency float64) {
	if t.FlitsDelivered > 0 {
		avgLatency = float64(t.FlitLatencySum) / float64(t.FlitsDelivered)
	}
	return t.FlitsInjected, t.FlitsDelivered, avgLatency
}

// Flow returns (creating if needed) the record for a flow ID.
func (t *Tile) Flow(id uint32) *FlowRecord {
	r := t.Flows[id]
	if r == nil {
		r = &FlowRecord{}
		t.Flows[id] = r
	}
	return r
}

// RecordPacketDelivered folds a completed packet into the tile stats.
func (t *Tile) RecordPacketDelivered(flow uint32, seq uint64, latency uint64) {
	t.PacketsDelivered++
	t.PacketLatencySum += latency
	if latency > t.MaxPacketLatency {
		t.MaxPacketLatency = latency
	}
	b := bucketOf(latency)
	t.LatencyHist[b]++
	r := t.Flow(flow)
	r.PacketsDelivered++
	r.LatencySum += latency
	if seq != 0 {
		if seq <= r.LastSeq {
			r.OrderViolations++
		}
		r.LastSeq = seq
	}
}

func bucketOf(v uint64) int {
	b := 0
	for v > 1 && b < LatencyBuckets-1 {
		v >>= 1
		b++
	}
	return b
}

// Summary is an aggregated view across tiles.
type Summary struct {
	FlitsInjected    uint64
	FlitsDelivered   uint64
	PacketsInjected  uint64
	PacketsDelivered uint64
	AvgFlitLatency   float64
	AvgPacketLatency float64
	MaxPacketLatency uint64
	AvgHops          float64
	BufReads         uint64
	BufWrites        uint64
	XbarTransits     uint64
	LinkTransits     uint64
	ArbEvents        uint64
	LatencyHist      [LatencyBuckets]uint64
	Flows            map[uint32]FlowRecord
}

// Aggregate folds per-tile statistics into a summary.
func Aggregate(tiles []*Tile) Summary {
	s := Summary{Flows: make(map[uint32]FlowRecord)}
	var flitLatSum, pktLatSum, hopSum uint64
	for _, t := range tiles {
		s.FlitsInjected += t.FlitsInjected
		s.FlitsDelivered += t.FlitsDelivered
		s.PacketsInjected += t.PacketsInjected
		s.PacketsDelivered += t.PacketsDelivered
		flitLatSum += t.FlitLatencySum
		pktLatSum += t.PacketLatencySum
		hopSum += t.HopSum
		if t.MaxPacketLatency > s.MaxPacketLatency {
			s.MaxPacketLatency = t.MaxPacketLatency
		}
		s.BufReads += t.BufReads
		s.BufWrites += t.BufWrites
		s.XbarTransits += t.XbarTransits
		s.LinkTransits += t.LinkTransits
		s.ArbEvents += t.ArbEvents
		for i, v := range t.LatencyHist {
			s.LatencyHist[i] += v
		}
		for id, r := range t.Flows {
			agg := s.Flows[id]
			agg.PacketsDelivered += r.PacketsDelivered
			agg.FlitsDelivered += r.FlitsDelivered
			agg.LatencySum += r.LatencySum
			agg.OrderViolations += r.OrderViolations
			s.Flows[id] = agg
		}
	}
	if s.FlitsDelivered > 0 {
		s.AvgFlitLatency = float64(flitLatSum) / float64(s.FlitsDelivered)
		s.AvgHops = float64(hopSum) / float64(s.FlitsDelivered)
	}
	if s.PacketsDelivered > 0 {
		s.AvgPacketLatency = float64(pktLatSum) / float64(s.PacketsDelivered)
	}
	return s
}

// Throughput returns delivered flits per node per cycle.
func (s Summary) Throughput(nodes int, cycles uint64) float64 {
	if nodes == 0 || cycles == 0 {
		return 0
	}
	return float64(s.FlitsDelivered) / float64(nodes) / float64(cycles)
}

// StarvedFlows returns flow IDs whose delivered packet count is below
// frac times the mean across flows — the paper's §IV-A starvation metric
// for long-path flows in large congested meshes.
func (s Summary) StarvedFlows(frac float64) []uint32 {
	if len(s.Flows) == 0 {
		return nil
	}
	var total uint64
	for _, r := range s.Flows {
		total += r.PacketsDelivered
	}
	mean := float64(total) / float64(len(s.Flows))
	var out []uint32
	for id, r := range s.Flows {
		if float64(r.PacketsDelivered) < frac*mean {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PercentError returns |a-b| / b * 100 (b is the reference value).
func PercentError(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(a-b) / math.Abs(b) * 100
}

// Accuracy returns the paper's Fig 6b accuracy metric: 100% minus the
// percentage deviation of a measured latency from the cycle-accurate
// reference, floored at zero.
func Accuracy(measured, reference float64) float64 {
	acc := 100 - PercentError(measured, reference)
	if acc < 0 {
		return 0
	}
	return acc
}

// Report renders a human-readable multi-line summary.
func (s Summary) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "packets: injected=%d delivered=%d\n", s.PacketsInjected, s.PacketsDelivered)
	fmt.Fprintf(&b, "flits:   injected=%d delivered=%d\n", s.FlitsInjected, s.FlitsDelivered)
	fmt.Fprintf(&b, "latency: avg-flit=%.2f avg-packet=%.2f max-packet=%d\n",
		s.AvgFlitLatency, s.AvgPacketLatency, s.MaxPacketLatency)
	fmt.Fprintf(&b, "hops:    avg=%.2f\n", s.AvgHops)
	fmt.Fprintf(&b, "events:  bufR=%d bufW=%d xbar=%d link=%d arb=%d\n",
		s.BufReads, s.BufWrites, s.XbarTransits, s.LinkTransits, s.ArbEvents)
	return b.String()
}

package stats

import (
	"sort"

	"hornet/internal/snapshot"
)

// SaveState serializes the tile's counters into a snapshot section.
// Flow records are emitted in ascending flow-ID order so identical
// statistics always encode to identical bytes.
func (t *Tile) SaveState(w *snapshot.Writer) {
	w.Uint64(t.FlitsInjected)
	w.Uint64(t.FlitsDelivered)
	w.Uint64(t.PacketsInjected)
	w.Uint64(t.PacketsDelivered)
	w.Uint64(t.FlitLatencySum)
	w.Uint64(t.PacketLatencySum)
	w.Uint64(t.MaxPacketLatency)
	for _, v := range t.LatencyHist {
		w.Uint64(v)
	}
	w.Uint64(t.BufReads)
	w.Uint64(t.BufWrites)
	w.Uint64(t.XbarTransits)
	w.Uint64(t.LinkTransits)
	w.Uint64(t.ArbEvents)
	w.Uint64(t.HopSum)
	ids := make([]uint32, 0, len(t.Flows))
	for id := range t.Flows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.Int(len(ids))
	for _, id := range ids {
		r := t.Flows[id]
		w.Uint32(id)
		w.Uint64(r.PacketsDelivered)
		w.Uint64(r.FlitsDelivered)
		w.Uint64(r.LatencySum)
		w.Uint64(r.LastSeq)
		w.Uint64(r.OrderViolations)
	}
}

// LoadState restores counters saved by SaveState, replacing the tile's
// current contents.
func (t *Tile) LoadState(r *snapshot.Reader) error {
	nt := Tile{Flows: make(map[uint32]*FlowRecord)}
	nt.FlitsInjected = r.Uint64()
	nt.FlitsDelivered = r.Uint64()
	nt.PacketsInjected = r.Uint64()
	nt.PacketsDelivered = r.Uint64()
	nt.FlitLatencySum = r.Uint64()
	nt.PacketLatencySum = r.Uint64()
	nt.MaxPacketLatency = r.Uint64()
	for i := range nt.LatencyHist {
		nt.LatencyHist[i] = r.Uint64()
	}
	nt.BufReads = r.Uint64()
	nt.BufWrites = r.Uint64()
	nt.XbarTransits = r.Uint64()
	nt.LinkTransits = r.Uint64()
	nt.ArbEvents = r.Uint64()
	nt.HopSum = r.Uint64()
	n := r.Count(1 << 28)
	for i := 0; i < n && r.Err() == nil; i++ {
		id := r.Uint32()
		fr := &FlowRecord{
			PacketsDelivered: r.Uint64(),
			FlitsDelivered:   r.Uint64(),
			LatencySum:       r.Uint64(),
			LastSeq:          r.Uint64(),
			OrderViolations:  r.Uint64(),
		}
		nt.Flows[id] = fr
	}
	if err := r.Err(); err != nil {
		return err
	}
	*t = nt
	return nil
}

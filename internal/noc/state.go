package noc

import (
	"fmt"
	"sort"

	"hornet/internal/snapshot"
)

// This file implements checkpoint save/restore for the NoC layer. The
// encoding walks structures in construction order (ports as added, VCs
// in index order, maps by sorted key), so a given simulator state always
// serializes to the same bytes. Restore is the exact inverse and
// validates every structural count against the freshly built router it
// is loading into, returning *snapshot.MismatchError when the snapshot
// belongs to a different configuration and *snapshot.CorruptError when
// the bytes are internally inconsistent.

// saveFlit encodes one flit, including its payload: synthetic and trace
// traffic carry none, protocol and MPI-style traffic carry typed values
// serialized through the snapshot package's payload codec registry. A
// payload of an unregistered type is unsupported state and fails the
// snapshot with a structured error.
func saveFlit(w *snapshot.Writer, f Flit) error {
	w.Uint8(uint8(f.Kind))
	w.Uint32(uint32(f.Flow))
	w.Uint64(f.Packet)
	w.Uint16(f.Seq)
	w.Uint16(f.Len)
	w.Uint64(f.FlowSeq)
	w.Int32(int32(f.Src))
	w.Int32(int32(f.Dst))
	w.Uint64(f.InjectedAt)
	w.Uint64(f.HeadInjectedAt)
	w.Uint64(f.VisibleAt)
	w.Uint64(f.Latency)
	w.Uint16(f.Hops)
	if err := snapshot.EncodePayload(w, f.Payload); err != nil {
		return fmt.Errorf("flit (flow %v): %w", f.Flow, err)
	}
	return nil
}

func loadFlit(r *snapshot.Reader) Flit {
	f := Flit{
		Kind:           Kind(r.Uint8()),
		Flow:           FlowID(r.Uint32()),
		Packet:         r.Uint64(),
		Seq:            r.Uint16(),
		Len:            r.Uint16(),
		FlowSeq:        r.Uint64(),
		Src:            NodeID(r.Int32()),
		Dst:            NodeID(r.Int32()),
		InjectedAt:     r.Uint64(),
		HeadInjectedAt: r.Uint64(),
		VisibleAt:      r.Uint64(),
		Latency:        r.Uint64(),
		Hops:           r.Uint16(),
	}
	f.Payload = snapshot.DecodePayload(r)
	return f
}

// EncodePacket appends one bridge-level packet, payload included, using
// the snapshot payload codec registry. Exported because frontends that
// queue packets outside the network (the MIPS DMA engine) serialize
// them with the same wire encoding the routers use.
func EncodePacket(w *snapshot.Writer, p Packet) error {
	w.Uint64(p.ID)
	w.Uint32(uint32(p.Flow))
	w.Int32(int32(p.Src))
	w.Int32(int32(p.Dst))
	w.Int(p.Flits)
	w.Uint64(p.FlowSeq)
	w.Uint64(p.Latency)
	if err := snapshot.EncodePayload(w, p.Payload); err != nil {
		return fmt.Errorf("packet (flow %v): %w", p.Flow, err)
	}
	return nil
}

// DecodePacket reads one packet written by EncodePacket. Decoding
// failures latch on the reader.
func DecodePacket(r *snapshot.Reader) Packet {
	p := Packet{
		ID:      r.Uint64(),
		Flow:    FlowID(r.Uint32()),
		Src:     NodeID(r.Int32()),
		Dst:     NodeID(r.Int32()),
		Flits:   r.Int(),
		FlowSeq: r.Uint64(),
		Latency: r.Uint64(),
	}
	p.Payload = snapshot.DecodePayload(r)
	return p
}

// SaveState serializes the buffer: capacity (structural check), the
// cumulative pop count, and the resident flits in FIFO order.
func (b *VCBuffer) SaveState(w *snapshot.Writer) error {
	w.Int(len(b.buf))
	w.Uint64(b.pops)
	live := int(b.live.Load())
	w.Int(live)
	for i := 0; i < live; i++ {
		if err := saveFlit(w, b.buf[(b.head+i)%len(b.buf)]); err != nil {
			return err
		}
	}
	return nil
}

// LoadState restores a buffer saved by SaveState into this (fresh,
// empty) buffer. Ring positions are normalized to head 0; only the
// FIFO content and the credit counters are semantic.
func (b *VCBuffer) LoadState(r *snapshot.Reader) error {
	capacity := r.Int()
	pops := r.Uint64()
	live := r.Count(1 << 20)
	if err := r.Err(); err != nil {
		return err
	}
	if capacity != len(b.buf) {
		return &snapshot.MismatchError{Field: "vc buffer capacity",
			Got: fmt.Sprint(capacity), Want: fmt.Sprint(len(b.buf))}
	}
	if live > capacity {
		return &snapshot.CorruptError{
			Detail: fmt.Sprintf("buffer holds %d flits but capacity is %d", live, capacity)}
	}
	for i := 0; i < live; i++ {
		b.buf[i] = loadFlit(r)
	}
	if err := r.Err(); err != nil {
		return err
	}
	b.head = 0
	b.tail = live % len(b.buf)
	b.live.Store(int32(live))
	b.pops = pops
	b.committedPops.Store(pops)
	return nil
}

// SaveState serializes the link's arbitration state: the published
// demand and space, and the grants that govern next cycle's bandwidth.
func (l *Link) SaveState(w *snapshot.Writer) {
	w.Int(l.BandwidthPerDir)
	w.Bool(l.Bidirectional)
	for side := 0; side < 2; side++ {
		w.Int64(l.demand[side].Load())
		w.Int64(l.space[side].Load())
		w.Int64(l.grant[side].Load())
	}
}

// LoadState restores link state saved by SaveState.
func (l *Link) LoadState(r *snapshot.Reader) error {
	bw := r.Int()
	bidi := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if bw != l.BandwidthPerDir || bidi != l.Bidirectional {
		return &snapshot.MismatchError{Field: "link parameters",
			Got:  fmt.Sprintf("bw=%d bidi=%v", bw, bidi),
			Want: fmt.Sprintf("bw=%d bidi=%v", l.BandwidthPerDir, l.Bidirectional)}
	}
	for side := 0; side < 2; side++ {
		l.demand[side].Store(r.Int64())
		l.space[side].Store(r.Int64())
		l.grant[side].Store(r.Int64())
	}
	return r.Err()
}

func saveEgressVC(w *snapshot.Writer, e *egressVC) {
	w.Uint64(e.pushes)
	w.Uint64(e.allocPacket)
	w.Uint32(uint32(e.allocFlow))
	w.Uint32(uint32(e.lastFlow))
}

func loadEgressVC(r *snapshot.Reader, e *egressVC) {
	e.pushes = r.Uint64()
	e.allocPacket = r.Uint64()
	e.allocFlow = FlowID(r.Uint32())
	e.lastFlow = FlowID(r.Uint32())
}

// saveVCState serializes one ingress VC's pipeline state. The arrival
// stamps need canonicalization: whether a flit pushed by a neighbouring
// tile is stamped in the same cycle or the next depends on worker
// scheduling — a benign race, because latency accounting always takes
// max(stamp, VisibleAt). Saving that effective value (and stamping
// not-yet-scanned residents at the restore clock, exactly when the
// next PhaseTransfer would stamp them) makes snapshots of the same
// simulated state byte-identical regardless of how workers interleaved,
// and restores the exact latency semantics.
func saveVCState(w *snapshot.Writer, s *vcState, buf *VCBuffer, clock uint64) {
	w.Bool(s.routed)
	w.Uint64(s.routedAt)
	w.Uint32(uint32(s.flow))
	w.Int32(int32(s.next))
	w.Uint32(uint32(s.nextFlow))
	w.Int(s.egress)
	w.Bool(s.vaDone)
	w.Uint64(s.vaAt)
	w.Int(s.outVC)
	w.Uint64(s.pktID)
	live := buf.Len()
	w.Int(live)
	for i := 0; i < live; i++ {
		f := buf.flitAt(i)
		eff := clock
		if i < s.sCount {
			eff = s.stamps[(s.sHead+i)%len(s.stamps)]
		}
		if f.VisibleAt > eff {
			eff = f.VisibleAt
		}
		w.Uint64(eff)
	}
}

func loadVCState(r *snapshot.Reader, s *vcState) error {
	s.routed = r.Bool()
	s.routedAt = r.Uint64()
	s.flow = FlowID(r.Uint32())
	s.next = NodeID(r.Int32())
	s.nextFlow = FlowID(r.Uint32())
	s.egress = r.Int()
	s.vaDone = r.Bool()
	s.vaAt = r.Uint64()
	s.outVC = r.Int()
	s.pktID = r.Uint64()
	n := r.Count(len(s.stamps))
	for i := 0; i < n; i++ {
		s.stamps[i] = r.Uint64()
	}
	s.sHead = 0
	s.sCount = n
	return r.Err()
}

// SaveState serializes the router's complete mutable state: injection
// queue and streaming packet, per-flow sequence counters, ingress VC
// buffers with their pipeline state, producer-side egress bookkeeping,
// and the ejection-port reassembly table. clock is the next cycle the
// suspended simulation would execute (used to canonicalize arrival
// stamps; see saveVCState).
func (r *Router) SaveState(w *snapshot.Writer, clock uint64) error {
	w.Uint64(r.pktCounter)

	// Injection queue and the packet currently streaming in.
	w.Int(len(r.pending))
	for _, pp := range r.pending {
		if err := EncodePacket(w, pp.pkt); err != nil {
			return err
		}
	}
	w.Bool(r.curFlits != nil)
	if r.curFlits != nil {
		w.Int(len(r.curFlits))
		for _, f := range r.curFlits {
			if err := saveFlit(w, f); err != nil {
				return err
			}
		}
		w.Int(r.curNext)
		w.Int(r.curVC)
	}

	// Per-flow packet sequence counters, sorted for determinism.
	flows := make([]FlowID, 0, len(r.flowSeq))
	for f := range r.flowSeq {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i] < flows[j] })
	w.Int(len(flows))
	for _, f := range flows {
		w.Uint32(uint32(f))
		w.Uint64(r.flowSeq[f])
	}

	// Producer bookkeeping for the local injection VCs.
	w.Int(len(r.sourceState))
	for i := range r.sourceState {
		saveEgressVC(w, &r.sourceState[i])
	}

	// Ports: ingress buffers + pipeline state, and egress bookkeeping
	// where the port has a downstream side.
	w.Int(len(r.ports))
	for _, p := range r.ports {
		w.Int(len(p.In))
		for vi, buf := range p.In {
			if err := buf.SaveState(w); err != nil {
				return err
			}
			saveVCState(w, &p.inState[vi], buf, clock)
		}
		w.Int(len(p.outState))
		for i := range p.outState {
			saveEgressVC(w, &p.outState[i])
		}
	}

	// Ejection-port reassembly table, sorted by packet ID.
	ids := make([]uint64, 0, len(r.assembly))
	for id := range r.assembly {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.Int(len(ids))
	for _, id := range ids {
		w.Uint64(id)
		if err := saveFlit(w, r.assembly[id].head); err != nil {
			return err
		}
	}
	return nil
}

// LoadState restores router state saved by SaveState into this router,
// which must be freshly built from the same configuration (same port
// and VC geometry).
func (r *Router) LoadState(rd *snapshot.Reader) error {
	r.pktCounter = rd.Uint64()

	n := rd.Count(1 << 24)
	r.pending = r.pending[:0]
	for i := 0; i < n; i++ {
		r.pending = append(r.pending, pendingPacket{pkt: DecodePacket(rd)})
	}
	r.curFlits = nil
	if rd.Bool() {
		n := rd.Count(1 << 16)
		r.curFlits = make([]Flit, 0, n)
		for i := 0; i < n; i++ {
			r.curFlits = append(r.curFlits, loadFlit(rd))
		}
		r.curNext = rd.Int()
		r.curVC = rd.Int()
		if err := rd.Err(); err != nil {
			return err
		}
		if r.curNext < 0 || r.curNext > len(r.curFlits) ||
			r.curVC < 0 || r.curVC >= len(r.ports[r.localPort].In) {
			return &snapshot.CorruptError{Detail: fmt.Sprintf(
				"router %d: streaming position %d/%d vc %d out of range", r.ID, r.curNext, len(r.curFlits), r.curVC)}
		}
	}

	n = rd.Count(1 << 28)
	// Cap the preallocation hint: the count is bounded by the section's
	// actual bytes, but a huge (legitimate or hostile) value must not
	// translate into one giant up-front allocation.
	r.flowSeq = make(map[FlowID]uint64, min(n, 1<<20))
	for i := 0; i < n && rd.Err() == nil; i++ {
		f := FlowID(rd.Uint32())
		r.flowSeq[f] = rd.Uint64()
	}

	n = rd.Int()
	if err := rd.Err(); err != nil {
		return err
	}
	if n != len(r.sourceState) {
		return &snapshot.MismatchError{Field: "injection VCs",
			Got: fmt.Sprint(n), Want: fmt.Sprint(len(r.sourceState))}
	}
	for i := range r.sourceState {
		loadEgressVC(rd, &r.sourceState[i])
	}

	n = rd.Int()
	if err := rd.Err(); err != nil {
		return err
	}
	if n != len(r.ports) {
		return &snapshot.MismatchError{Field: "router ports",
			Got: fmt.Sprint(n), Want: fmt.Sprint(len(r.ports))}
	}
	for _, p := range r.ports {
		vcs := rd.Int()
		if err := rd.Err(); err != nil {
			return err
		}
		if vcs != len(p.In) {
			return &snapshot.MismatchError{Field: "port VCs",
				Got: fmt.Sprint(vcs), Want: fmt.Sprint(len(p.In))}
		}
		for vi, buf := range p.In {
			if err := buf.LoadState(rd); err != nil {
				return err
			}
			if err := loadVCState(rd, &p.inState[vi]); err != nil {
				return err
			}
			st := &p.inState[vi]
			if st.routed && (st.egress < 0 || st.egress >= len(r.ports)) {
				return &snapshot.CorruptError{Detail: fmt.Sprintf(
					"router %d: VC state names egress port %d of %d", r.ID, st.egress, len(r.ports))}
			}
		}
		outs := rd.Int()
		if err := rd.Err(); err != nil {
			return err
		}
		if outs != len(p.outState) {
			return &snapshot.MismatchError{Field: "egress VCs",
				Got: fmt.Sprint(outs), Want: fmt.Sprint(len(p.outState))}
		}
		for i := range p.outState {
			loadEgressVC(rd, &p.outState[i])
		}
	}

	n = rd.Count(1 << 24)
	r.assembly = make(map[uint64]assembling, min(n, 1<<20))
	for i := 0; i < n && rd.Err() == nil; i++ {
		id := rd.Uint64()
		r.assembly[id] = assembling{head: loadFlit(rd)}
	}
	return rd.Err()
}

// ResidentFlits counts flits held anywhere in this router's ingress
// buffers (used by restore to rebuild the global in-flight counter).
func (r *Router) ResidentFlits() int64 {
	var n int64
	for _, p := range r.ports {
		for _, buf := range p.In {
			n += int64(buf.Len())
		}
	}
	return n
}

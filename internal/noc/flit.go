// Package noc implements HORNET's cycle-level network-on-chip model: an
// ingress-queued wormhole virtual-channel router with table-driven route
// computation (RC), virtual-channel allocation (VA), randomized switch
// arbitration (SA) and switch traversal (ST); two-lock VC buffers that are
// the only inter-thread communication points; and bandwidth-adaptive
// bidirectional links (paper §II-A).
package noc

import "fmt"

// NodeID identifies a node (tile) in the interconnect.
type NodeID int32

// InvalidNode marks "no node" (e.g. the neighbor of a local port).
const InvalidNode NodeID = -1

// FlowID identifies a traffic flow. The encoding packs source,
// destination, a traffic class, and a phase bit used by two-phase routing
// schemes (Valiant/ROMM) and dateline VC switching, so that
// function-backed routing tables can recover the endpoints without a side
// lookup:
//
//	bit 31    : phase (set after the intermediate hop / dateline crossing)
//	bits 28-30: class (0 = synthetic, others used by memory traffic)
//	bits 14-27: source node
//	bits 0-13 : destination node
type FlowID uint32

// MaxNodes is the largest node count representable in a FlowID.
const MaxNodes = 1 << 14

const (
	flowPhaseBit  FlowID = 1 << 31
	flowClassMask FlowID = 0x7 << 28
)

// MakeFlow builds a FlowID from src, dst and class. It panics if either
// node is out of range, since silently truncating IDs would corrupt routes.
func MakeFlow(src, dst NodeID, class uint8) FlowID {
	if src < 0 || src >= MaxNodes || dst < 0 || dst >= MaxNodes {
		panic(fmt.Sprintf("noc: flow endpoints out of range: src=%d dst=%d", src, dst))
	}
	return FlowID(class&0x7)<<28 | FlowID(src)<<14 | FlowID(dst)
}

// Src returns the flow's source node.
func (f FlowID) Src() NodeID { return NodeID(f >> 14 & 0x3FFF) }

// Dst returns the flow's destination node.
func (f FlowID) Dst() NodeID { return NodeID(f & 0x3FFF) }

// Class returns the flow's traffic class.
func (f FlowID) Class() uint8 { return uint8(f >> 28 & 0x7) }

// Phase2 reports whether the phase bit is set (packet past its
// intermediate hop, or past the dateline).
func (f FlowID) Phase2() bool { return f&flowPhaseBit != 0 }

// WithPhase2 returns the flow renamed into its second phase.
func (f FlowID) WithPhase2() FlowID { return f | flowPhaseBit }

// Base returns the flow with the phase bit cleared (the original flow ID,
// as restored at the destination per the paper's renaming scheme).
func (f FlowID) Base() FlowID { return f &^ flowPhaseBit }

func (f FlowID) String() string {
	p := ""
	if f.Phase2() {
		p = "'"
	}
	return fmt.Sprintf("f%d:%d->%d%s", f.Class(), f.Src(), f.Dst(), p)
}

// Kind distinguishes flit positions within a packet.
type Kind uint8

const (
	// Head is the first flit of a multi-flit packet.
	Head Kind = iota
	// Body is a middle flit.
	Body
	// Tail is the last flit of a multi-flit packet.
	Tail
	// HeadTail is the only flit of a single-flit packet.
	HeadTail
)

func (k Kind) String() string {
	switch k {
	case Head:
		return "head"
	case Body:
		return "body"
	case Tail:
		return "tail"
	case HeadTail:
		return "headtail"
	}
	return "?"
}

// IsHead reports whether the flit opens a packet (Head or HeadTail).
func (k Kind) IsHead() bool { return k == Head || k == HeadTail }

// IsTail reports whether the flit closes a packet (Tail or HeadTail).
func (k Kind) IsTail() bool { return k == Tail || k == HeadTail }

// Flit is the unit of network transfer. Flits are passed by value through
// VC buffers; statistics (Latency, Hops) travel inside the flit and are
// updated incrementally within single clock domains, which is what keeps
// measurements accurate under loose synchronization (paper §II-C).
type Flit struct {
	Kind Kind
	Flow FlowID
	// Packet is a globally unique packet ID (used for wormhole VC
	// allocation bookkeeping); Seq is the flit index within the packet.
	Packet uint64
	Seq    uint16
	Len    uint16 // packet length in flits
	// FlowSeq is the per-flow packet sequence number assigned at the
	// source, used to detect reordering (EDVCA's in-order guarantee).
	FlowSeq uint64
	Src     NodeID
	Dst     NodeID
	// InjectedAt is the source-clock cycle the flit entered the network;
	// HeadInjectedAt is the same for the packet's head flit (carried on
	// every flit so packet latency needs only same-domain arithmetic).
	InjectedAt     uint64
	HeadInjectedAt uint64
	// VisibleAt is the cycle at which the flit becomes observable in the
	// buffer it currently occupies (sender cycle + 1: one link cycle).
	VisibleAt uint64
	// Latency accumulates in-network cycles hop by hop.
	Latency uint64
	Hops    uint16
	// Payload rides on head flits of packets carrying protocol messages
	// (memory traffic, MPI-style sends); nil for synthetic traffic.
	Payload any
}

func (f Flit) String() string {
	return fmt.Sprintf("%s %s pkt=%d seq=%d/%d", f.Kind, f.Flow, f.Packet, f.Seq, f.Len)
}

// Packet is the bridge-level unit: what traffic generators offer and what
// receivers get after flit reassembly (paper §II-D's "common bridge
// abstraction ... hiding the details of dividing the packets into flits").
type Packet struct {
	ID      uint64
	Flow    FlowID
	Src     NodeID
	Dst     NodeID
	Flits   int
	FlowSeq uint64
	Payload any
	// Latency is filled in on delivery: head-injection to tail-delivery.
	Latency uint64
}

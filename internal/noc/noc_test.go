package noc

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestFlowIDRoundTrip(t *testing.T) {
	if err := quick.Check(func(sRaw, dRaw uint16, class uint8) bool {
		src := NodeID(sRaw % MaxNodes)
		dst := NodeID(dRaw % MaxNodes)
		f := MakeFlow(src, dst, class%8)
		return f.Src() == src && f.Dst() == dst && f.Class() == class%8 && !f.Phase2()
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlowIDPhaseBit(t *testing.T) {
	f := MakeFlow(3, 9, 2)
	f2 := f.WithPhase2()
	if !f2.Phase2() || f.Phase2() {
		t.Fatal("phase bit handling broken")
	}
	if f2.Base() != f {
		t.Fatal("Base did not strip the phase bit")
	}
	if f2.Src() != 3 || f2.Dst() != 9 || f2.Class() != 2 {
		t.Fatal("phase bit clobbered other fields")
	}
}

func TestMakeFlowPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range node")
		}
	}()
	MakeFlow(MaxNodes, 0, 0)
}

func TestKindPredicates(t *testing.T) {
	cases := []struct {
		k          Kind
		head, tail bool
	}{
		{Head, true, false},
		{Body, false, false},
		{Tail, false, true},
		{HeadTail, true, true},
	}
	for _, c := range cases {
		if c.k.IsHead() != c.head || c.k.IsTail() != c.tail {
			t.Fatalf("%v predicates wrong", c.k)
		}
	}
}

func TestVCBufferFIFO(t *testing.T) {
	b := NewVCBuffer(4)
	for i := 0; i < 4; i++ {
		if !b.Push(Flit{Seq: uint16(i)}) {
			t.Fatalf("push %d failed", i)
		}
	}
	if b.Push(Flit{}) {
		t.Fatal("push into full buffer succeeded")
	}
	for i := 0; i < 4; i++ {
		f, ok := b.Peek(0)
		if !ok || f.Seq != uint16(i) {
			t.Fatalf("peek %d: got %v ok=%v", i, f, ok)
		}
		got := b.Pop()
		if got.Seq != uint16(i) {
			t.Fatalf("pop %d: got seq %d", i, got.Seq)
		}
	}
	if _, ok := b.Peek(0); ok {
		t.Fatal("peek on empty buffer succeeded")
	}
}

func TestVCBufferVisibility(t *testing.T) {
	b := NewVCBuffer(2)
	b.Push(Flit{VisibleAt: 10})
	if _, ok := b.Peek(9); ok {
		t.Fatal("flit visible before its VisibleAt")
	}
	if _, ok := b.Peek(10); !ok {
		t.Fatal("flit not visible at its VisibleAt")
	}
}

func TestVCBufferCommittedPops(t *testing.T) {
	b := NewVCBuffer(4)
	b.Push(Flit{})
	b.Push(Flit{})
	b.Pop()
	if b.CommittedPops() != 0 {
		t.Fatal("pops visible before commit")
	}
	b.Commit()
	if b.CommittedPops() != 1 {
		t.Fatalf("committed pops = %d, want 1", b.CommittedPops())
	}
}

// TestVCBufferConcurrentSPSC hammers the two-lock buffer with a single
// producer and single consumer and checks nothing is lost or reordered —
// the paper's §II-C functional-correctness requirement.
func TestVCBufferConcurrentSPSC(t *testing.T) {
	b := NewVCBuffer(8)
	const n = 50_000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // producer
		defer wg.Done()
		pushes := uint64(0)
		for i := 0; i < n; {
			if int(pushes-b.CommittedPops()) < b.Capacity() {
				if !b.Push(Flit{Packet: uint64(i)}) {
					t.Error("push failed despite credit")
					return
				}
				pushes++
				i++
				continue
			}
			runtime.Gosched() // single-core hosts: let the consumer run
		}
	}()
	go func() { // consumer
		defer wg.Done()
		for i := 0; i < n; {
			if _, ok := b.Peek(0); ok {
				f := b.Pop()
				if f.Packet != uint64(i) {
					t.Errorf("reordered: got %d want %d", f.Packet, i)
					return
				}
				i++
				b.Commit()
				continue
			}
			runtime.Gosched()
		}
	}()
	wg.Wait()
}

func TestVCBufferDrain(t *testing.T) {
	b := NewVCBuffer(4)
	b.Push(Flit{Seq: 1})
	b.Push(Flit{Seq: 2, VisibleAt: 1 << 40}) // far-future flit still drains
	out := b.Drain()
	if len(out) != 2 || out[0].Seq != 1 || out[1].Seq != 2 {
		t.Fatalf("drain returned %v", out)
	}
	if b.Len() != 0 {
		t.Fatal("buffer not empty after drain")
	}
}

func TestLinkFixedBandwidth(t *testing.T) {
	l := NewLink(2, false)
	if l.Grant(0) != 2 || l.Grant(1) != 2 {
		t.Fatal("fixed link bandwidth wrong")
	}
	l.ReportDemand(0, 100) // no-ops when not bidirectional
	l.Arbitrate(0)
	if l.Grant(0) != 2 {
		t.Fatal("fixed link changed bandwidth")
	}
}

func TestBidirectionalLinkShiftsBandwidth(t *testing.T) {
	l := NewLink(1, true)
	// Side 0 has all the demand and side 1's ingress has space.
	l.ReportDemand(0, 5)
	l.ReportDemand(1, 0)
	l.ReportSpace(0, 8)
	l.ReportSpace(1, 8)
	l.Arbitrate(0)
	if g := l.Grant(0); g != 2 {
		t.Fatalf("one-sided demand: grant(0) = %d, want 2", g)
	}
	if g := l.Grant(1); g != 0 {
		t.Fatalf("one-sided demand: grant(1) = %d, want 0", g)
	}
	// Balanced demand: symmetric split.
	l.ReportDemand(1, 5)
	l.Arbitrate(0)
	if l.Grant(0)+l.Grant(1) != 2 {
		t.Fatal("grants do not sum to total bandwidth")
	}
	// Demand capped by destination space.
	l.ReportSpace(1, 0) // no room on side 1's ingress: side 0's demand is moot
	l.Arbitrate(0)
	if g := l.Grant(1); g != 2 {
		t.Fatalf("space-capped: grant(1) = %d, want 2", g)
	}
	// Idle link parks symmetric.
	l.ReportDemand(0, 0)
	l.ReportDemand(1, 0)
	l.Arbitrate(0)
	if l.Grant(0) != 1 || l.Grant(1) != 1 {
		t.Fatal("idle link did not park at symmetric split")
	}
}

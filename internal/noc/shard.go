package noc

import (
	"fmt"

	"hornet/internal/snapshot"
)

// Shard-boundary exchange. A sharded run builds the full topology in
// every process — so node numbering, wiring and seeds match the
// unsharded system exactly — but steps only a contiguous router span.
// Cross-boundary edges are therefore already physically wired: an
// in-span producer pushes boundary flits into its local *replica* of the
// remote ingress buffer, and an in-span consumer pops flits whose
// credits the remote producer's replica never observes. ShardBoundary
// closes the loop at synchronization points: it captures the newly
// pushed boundary flits, the committed pop counts of boundary ingress
// buffers and the pressure values of bidirectional boundary links into a
// snapshot-encoded blob, and applies the blobs of every other shard —
// pushing their flits into the real ingress buffers, replaying their
// pops onto the local replicas (restoring producer credit), and
// re-arbitrating boundary links with both sides' true pressure.
//
// Determinism: a flit pushed at cycle c carries VisibleAt c+1 and the
// consumer canonicalizes its arrival stamp to max(stamp, VisibleAt), so
// applying the push at the sync point after cycle c is indistinguishable
// from the concurrent in-process push. Credits flow through committed
// pop counts, which only advance at the consumer's commit — exactly the
// values exchanged here.

const shardSection = "shard-boundary"

// boundaryOut is one in-span producer's egress VC toward an out-of-span
// consumer: buf is the local replica of the remote ingress buffer.
type boundaryOut struct {
	src, dst NodeID
	vc       int
	buf      *VCBuffer
	ev       *egressVC
	sent     uint64 // pushes already exchanged
}

// boundaryIn is one in-span consumer's ingress VC fed by an out-of-span
// producer: buf is the real buffer flits get applied into.
type boundaryIn struct {
	src, dst NodeID
	vc       int
	buf      *VCBuffer
}

// boundaryLink is the in-span side of a bidirectional boundary link.
type boundaryLink struct {
	node, neighbor NodeID
	side           int
	link           *Link
}

type bkey struct {
	src, dst NodeID
	vc       int
}

// ShardBoundary tracks every buffer and link crossing the shard's span.
type ShardBoundary struct {
	lo, hi int
	out    []*boundaryOut
	in     []*boundaryIn
	links  []*boundaryLink

	outByKey  map[bkey]*boundaryOut
	inByKey   map[bkey]*boundaryIn
	linkByKey map[bkey]*boundaryLink
}

// NewShardBoundary scans the in-span routers of the full router set for
// ports whose neighbour lies outside [lo,hi) and indexes them for
// capture and apply. Router IDs must be their slice positions (the
// topology builder guarantees this).
func NewShardBoundary(routers []*Router, lo, hi int) *ShardBoundary {
	sb := &ShardBoundary{
		lo: lo, hi: hi,
		outByKey:  make(map[bkey]*boundaryOut),
		inByKey:   make(map[bkey]*boundaryIn),
		linkByKey: make(map[bkey]*boundaryLink),
	}
	inSpan := func(n NodeID) bool { return int(n) >= lo && int(n) < hi }
	for _, r := range routers[lo:hi] {
		for _, p := range r.Ports() {
			if p.Neighbor == InvalidNode || inSpan(p.Neighbor) {
				continue
			}
			for vc := range p.Out {
				o := &boundaryOut{
					src: r.ID, dst: p.Neighbor, vc: vc,
					buf:  p.Out[vc],
					ev:   &p.outState[vc],
					sent: p.outState[vc].pushes,
				}
				sb.out = append(sb.out, o)
				sb.outByKey[bkey{o.src, o.dst, vc}] = o
			}
			for vc := range p.In {
				i := &boundaryIn{
					src: p.Neighbor, dst: r.ID, vc: vc,
					buf: p.In[vc],
				}
				sb.in = append(sb.in, i)
				sb.inByKey[bkey{i.src, i.dst, vc}] = i
			}
			if p.Link != nil && p.Link.Bidirectional {
				l := &boundaryLink{node: r.ID, neighbor: p.Neighbor, side: p.Side, link: p.Link}
				sb.links = append(sb.links, l)
				// Keyed by the *capturing* side's (node, neighbor) so an
				// incoming entry from the remote shard resolves here.
				sb.linkByKey[bkey{l.neighbor, l.node, 0}] = l
			}
		}
	}
	return sb
}

// Edges reports how many egress boundary channels (VCs) the span has —
// zero means the span is self-contained and no exchange is needed.
func (sb *ShardBoundary) Edges() int { return len(sb.out) }

// Capture serializes everything the other shards need from this one
// since the previous capture: newly pushed boundary flits, committed pop
// counts of boundary ingress buffers, and this side's pressure values
// for bidirectional boundary links. Must be called at a quiescent point
// (all engine workers blocked), before Apply.
func (sb *ShardBoundary) Capture(cycle uint64) ([]byte, error) {
	snap := snapshot.New(shardSection, cycle)
	w := snap.Section(shardSection)
	w.Int(sb.lo)
	w.Int(sb.hi)

	var flitEntries []*boundaryOut
	for _, o := range sb.out {
		if o.ev.pushes != o.sent {
			flitEntries = append(flitEntries, o)
		}
	}
	w.Int(len(flitEntries))
	for _, o := range flitEntries {
		delta := int(o.ev.pushes - o.sent)
		w.Int32(int32(o.src))
		w.Int32(int32(o.dst))
		w.Int(o.vc)
		w.Int(delta)
		live := o.buf.Len()
		for i := live - delta; i < live; i++ {
			f := o.buf.flitAt(i)
			if err := saveFlit(w, f); err != nil {
				return nil, fmt.Errorf("noc: boundary %d->%d vc %d: %w", o.src, o.dst, o.vc, err)
			}
		}
		o.sent = o.ev.pushes
	}

	w.Int(len(sb.in))
	for _, i := range sb.in {
		w.Int32(int32(i.src))
		w.Int32(int32(i.dst))
		w.Int(i.vc)
		w.Uint64(i.buf.CommittedPops())
	}

	w.Int(len(sb.links))
	for _, l := range sb.links {
		w.Int32(int32(l.node))
		w.Int32(int32(l.neighbor))
		w.Int(l.side)
		w.Int64(l.link.demand[l.side].Load())
		w.Int64(l.link.space[l.side].Load())
	}
	b, err := snap.Bytes()
	if err != nil {
		return nil, fmt.Errorf("noc: boundary blob: %w", err)
	}
	return b, nil
}

// Apply folds one other shard's Capture blob into local state. Entries
// targeting routers outside this span are ignored (every shard receives
// every blob, including — harmlessly — its own). Call after Capture.
func (sb *ShardBoundary) Apply(blob []byte) error {
	snap, err := snapshot.DecodeBytes(blob)
	if err != nil {
		return fmt.Errorf("noc: boundary blob: %w", err)
	}
	r, err := snap.Open(shardSection)
	if err != nil {
		return fmt.Errorf("noc: boundary blob: %w", err)
	}
	inSpan := func(n NodeID) bool { return int(n) >= sb.lo && int(n) < sb.hi }
	r.Int() // sender lo
	r.Int() // sender hi

	nf := r.Count(1 << 20)
	for i := 0; i < nf && r.Err() == nil; i++ {
		src := NodeID(r.Int32())
		dst := NodeID(r.Int32())
		vc := r.Int()
		n := r.Count(1 << 20)
		for j := 0; j < n && r.Err() == nil; j++ {
			f := loadFlit(r)
			if !inSpan(dst) {
				continue
			}
			in, ok := sb.inByKey[bkey{src, dst, vc}]
			if !ok {
				return fmt.Errorf("noc: boundary flit for unknown channel %d->%d vc %d", src, dst, vc)
			}
			if !in.buf.Push(f) {
				return fmt.Errorf("noc: boundary overflow on channel %d->%d vc %d", src, dst, vc)
			}
		}
	}

	np := r.Count(1 << 20)
	for i := 0; i < np && r.Err() == nil; i++ {
		src := NodeID(r.Int32())
		dst := NodeID(r.Int32())
		vc := r.Int()
		cum := r.Uint64()
		if !inSpan(src) {
			continue
		}
		out, ok := sb.outByKey[bkey{src, dst, vc}]
		if !ok {
			return fmt.Errorf("noc: boundary pops for unknown channel %d->%d vc %d", src, dst, vc)
		}
		if out.buf.pops > cum {
			return fmt.Errorf("noc: boundary pops went backwards on channel %d->%d vc %d (%d > %d)",
				src, dst, vc, out.buf.pops, cum)
		}
		for out.buf.pops < cum {
			if out.buf.Len() == 0 {
				return fmt.Errorf("noc: boundary pops overrun on channel %d->%d vc %d", src, dst, vc)
			}
			out.buf.Pop()
		}
		out.buf.Commit()
	}

	nl := r.Count(1 << 20)
	for i := 0; i < nl && r.Err() == nil; i++ {
		node := NodeID(r.Int32())
		neighbor := NodeID(r.Int32())
		side := r.Int()
		demand := r.Int64()
		space := r.Int64()
		if !inSpan(neighbor) || side < 0 || side > 1 {
			continue
		}
		bl, ok := sb.linkByKey[bkey{node, neighbor, 0}]
		if !ok {
			return fmt.Errorf("noc: boundary link values for unknown edge %d-%d", node, neighbor)
		}
		bl.link.demand[side].Store(demand)
		bl.link.space[side].Store(space)
		// Both sides now hold identical pressure values; recompute the
		// grant deterministically (the commit-phase arbitration on the
		// owner's shard ran with a stale remote side).
		bl.link.Arbitrate(bl.link.owner)
	}
	if err := r.Close(); err != nil {
		return fmt.Errorf("noc: boundary blob: %w", err)
	}
	return nil
}

package noc

import (
	"sync/atomic"
	"testing"

	"hornet/internal/sim"
	"hornet/internal/stats"
)

// lineTable routes every flow along a 0 -> 1 -> ... -> n-1 line and
// ejects at the flow's destination.
type lineTable struct{ self NodeID }

func (lt lineTable) Lookup(prev NodeID, flow FlowID) []RouteEntry {
	if flow.Dst() == lt.self {
		return []RouteEntry{{Next: lt.self, NextFlow: flow.Base(), Weight: 1}}
	}
	return []RouteEntry{{Next: lt.self + 1, NextFlow: flow, Weight: 1}}
}

// allVCs is a trivial VCA table: every VC, equal weight.
type allVCs struct{}

func (allVCs) Candidates(prev NodeID, flow FlowID, next NodeID, nextFlow FlowID, numVCs int) []VCChoice {
	out := make([]VCChoice, numVCs)
	for i := range out {
		out[i] = VCChoice{VC: i, Weight: 1}
	}
	return out
}

// pipeline builds an n-router line with the given VC geometry and returns
// the routers plus per-node received packets.
func pipeline(t *testing.T, n, vcs, bufFlits int, mode VCAMode) ([]*Router, []*[]Packet) {
	t.Helper()
	inflight := new(atomic.Int64)
	routers := make([]*Router, n)
	received := make([]*[]Packet, n)
	for i := 0; i < n; i++ {
		routers[i] = NewRouter(RouterParams{
			ID:            NodeID(i),
			Table:         lineTable{self: NodeID(i)},
			VCATable:      allVCs{},
			VCAMode:       mode,
			RNG:           sim.NewRNG(uint64(i) + 1),
			Stats:         stats.NewTile(),
			InFlight:      inflight,
			LocalVCs:      vcs,
			LocalBufFlits: bufFlits,
		})
		rec := &[]Packet{}
		received[i] = rec
		routers[i].SetReceiver(ReceiverFunc(func(p Packet, cycle uint64) {
			*rec = append(*rec, p)
		}))
	}
	for i := 0; i < n-1; i++ {
		a, b := routers[i], routers[i+1]
		pa := a.AddPort(b.ID, vcs, bufFlits)
		pb := b.AddPort(a.ID, vcs, bufFlits)
		link := NewLink(1, false)
		a.ConnectEgress(b.ID, b.Ports()[pb].In, link, 0)
		b.ConnectEgress(a.ID, a.Ports()[pa].In, link, 1)
	}
	return routers, received
}

// step advances the whole pipeline one cycle (single-threaded).
func step(routers []*Router, cycle uint64) {
	for _, r := range routers {
		r.PhaseTransfer(cycle)
	}
	for _, r := range routers {
		r.PhaseCommit(cycle)
	}
}

func TestRouterPipelineDelivery(t *testing.T) {
	routers, received := pipeline(t, 3, 2, 4, VCADynamic)
	routers[0].OfferPacket(Packet{Flow: MakeFlow(0, 2, 0), Dst: 2, Flits: 4})
	for c := uint64(0); c < 100; c++ {
		step(routers, c)
	}
	if len(*received[2]) != 1 {
		t.Fatalf("destination received %d packets", len(*received[2]))
	}
	p := (*received[2])[0]
	if p.Src != 0 || p.Flits != 4 || p.Latency == 0 {
		t.Fatalf("delivered packet malformed: %+v", p)
	}
	if len(*received[1]) != 0 {
		t.Fatal("intermediate router ejected a through-packet")
	}
}

func TestRouterPayloadSurvivesTransit(t *testing.T) {
	routers, received := pipeline(t, 4, 2, 4, VCADynamic)
	payload := map[string]int{"answer": 42}
	routers[0].OfferPacket(Packet{Flow: MakeFlow(0, 3, 0), Dst: 3, Flits: 3, Payload: payload})
	for c := uint64(0); c < 200; c++ {
		step(routers, c)
	}
	if len(*received[3]) != 1 {
		t.Fatalf("got %d packets", len(*received[3]))
	}
	got, ok := (*received[3])[0].Payload.(map[string]int)
	if !ok || got["answer"] != 42 {
		t.Fatalf("payload corrupted: %v", (*received[3])[0].Payload)
	}
}

func TestWormholeNoInterleavingPerVC(t *testing.T) {
	// Two flows through a 2-router line with a single VC: flits of
	// different packets must never interleave within the VC (invariant
	// I6); with FIFO delivery this shows as strictly ordered FlowSeq.
	routers, received := pipeline(t, 2, 1, 2, VCADynamic)
	for i := 0; i < 5; i++ {
		routers[0].OfferPacket(Packet{Flow: MakeFlow(0, 1, 0), Dst: 1, Flits: 3})
	}
	for c := uint64(0); c < 300; c++ {
		step(routers, c)
	}
	if len(*received[1]) != 5 {
		t.Fatalf("delivered %d packets, want 5", len(*received[1]))
	}
	for i, p := range *received[1] {
		if p.FlowSeq != uint64(i+1) {
			t.Fatalf("packet %d has flow seq %d: reordered", i, p.FlowSeq)
		}
	}
}

func TestInjectionBacklogQueues(t *testing.T) {
	routers, received := pipeline(t, 2, 1, 1, VCADynamic)
	for i := 0; i < 10; i++ {
		routers[0].OfferPacket(Packet{Flow: MakeFlow(0, 1, 0), Dst: 1, Flits: 8})
	}
	if routers[0].PendingPackets() != 10 {
		t.Fatalf("pending %d", routers[0].PendingPackets())
	}
	for c := uint64(0); c < 2000; c++ {
		step(routers, c)
	}
	if len(*received[1]) != 10 {
		t.Fatalf("delivered %d of 10 backlogged packets", len(*received[1]))
	}
	if routers[0].PendingPackets() != 0 {
		t.Fatal("injector queue not drained")
	}
}

// edvcaProbe drives two flows through a shared link under EDVCA and
// verifies the exclusivity invariant by inspecting the downstream
// buffers every cycle: a VC must never hold flits of two flows at once.
func TestEDVCAExclusivity(t *testing.T) {
	routers, received := pipeline(t, 2, 2, 4, VCAEDVCA)
	flowA := MakeFlow(0, 1, 0)
	flowB := MakeFlow(0, 1, 1) // different class = different flow
	for i := 0; i < 6; i++ {
		routers[0].OfferPacket(Packet{Flow: flowA, Dst: 1, Flits: 3})
		routers[0].OfferPacket(Packet{Flow: flowB, Dst: 1, Flits: 3})
	}
	netPort, _ := routers[1].PortToward(NodeID(0))
	ingress := routers[1].Ports()[netPort].In
	for c := uint64(0); c < 1000; c++ {
		step(routers, c)
		for vi, buf := range ingress {
			flits := buf.Drain()
			seen := map[FlowID]bool{}
			for _, f := range flits {
				seen[f.Flow.Base()] = true
				buf.Push(f) // put them back
			}
			if len(seen) > 1 {
				t.Fatalf("cycle %d: VC %d holds %d distinct flows (EDVCA violated)", c, vi, len(seen))
			}
		}
	}
	total := len(*received[1])
	if total != 12 {
		t.Fatalf("delivered %d of 12 packets", total)
	}
}

func TestRouterStatsConsistency(t *testing.T) {
	routers, _ := pipeline(t, 3, 2, 4, VCADynamic)
	for i := 0; i < 8; i++ {
		routers[0].OfferPacket(Packet{Flow: MakeFlow(0, 2, 0), Dst: 2, Flits: 2})
	}
	for c := uint64(0); c < 500; c++ {
		step(routers, c)
	}
	src := routers[0].Stats()
	dst := routers[2].Stats()
	if src.FlitsInjected != 16 {
		t.Fatalf("injected %d flits", src.FlitsInjected)
	}
	if dst.FlitsDelivered != 16 || dst.PacketsDelivered != 8 {
		t.Fatalf("delivered %d flits / %d packets", dst.FlitsDelivered, dst.PacketsDelivered)
	}
	// Every delivered flit was read from a buffer at least twice (once
	// per router it visited).
	totalReads := src.BufReads + routers[1].Stats().BufReads + dst.BufReads
	if totalReads < 3*16 {
		t.Fatalf("only %d buffer reads for 16 flits over 2 hops + ejection", totalReads)
	}
}

func TestZeroLoadLatencyMatchesPipelineDepth(t *testing.T) {
	routers, received := pipeline(t, 2, 2, 4, VCADynamic)
	routers[0].OfferPacket(Packet{Flow: MakeFlow(0, 1, 0), Dst: 1, Flits: 1})
	for c := uint64(0); c < 50; c++ {
		step(routers, c)
	}
	if len(*received[1]) != 1 {
		t.Fatal("no delivery")
	}
	lat := (*received[1])[0].Latency
	// RC + VA + SA at the source (3 cycles) + link + RC + SA at the sink:
	// small and fixed; anything above ~10 means spurious stalling.
	if lat < 4 || lat > 10 {
		t.Fatalf("zero-load single-flit latency %d outside [4,10]", lat)
	}
}

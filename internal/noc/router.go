package noc

import (
	"fmt"
	"sync/atomic"

	"hornet/internal/sim"
	"hornet/internal/stats"
)

// Receiver consumes packets delivered to a node's local (CPU) port after
// flit reassembly. Implementations run on the owning tile's thread.
type Receiver interface {
	ReceivePacket(p Packet, cycle uint64)
}

// ReceiverFunc adapts a function to the Receiver interface.
type ReceiverFunc func(p Packet, cycle uint64)

// ReceivePacket calls f(p, cycle).
func (f ReceiverFunc) ReceivePacket(p Packet, cycle uint64) { f(p, cycle) }

// egressVC is the producer-side bookkeeping for one downstream VC: the
// wormhole allocation state and the cumulative push count whose difference
// from the buffer's committed pops yields the deterministic credit view.
type egressVC struct {
	pushes      uint64
	allocPacket uint64 // packet currently allocated this VC; 0 = free
	allocFlow   FlowID
	lastFlow    FlowID // flow of the most recent flit pushed
}

// resident reports whether, from the producer's view, the downstream VC
// still holds flits, and of which flow (valid only under single-flow-
// at-a-time disciplines such as EDVCA, which is when it is consulted).
func (e *egressVC) resident(buf *VCBuffer) (FlowID, bool) {
	if e.pushes == buf.CommittedPops() {
		return 0, false
	}
	return e.lastFlow, true
}

func (e *egressVC) free(buf *VCBuffer) int {
	return buf.Capacity() - int(e.pushes-buf.CommittedPops())
}

// vcState is the per-ingress-VC pipeline state for the packet currently
// at the head of that VC, plus the local-clock arrival stamps that keep
// latency accounting within one clock domain per hop (paper §II-C: stats
// ride with the flits and are updated incrementally, so loose
// synchronization cannot compound cross-tile clock skew into latency).
type vcState struct {
	routed   bool
	routedAt uint64
	flow     FlowID // flow ID the packet arrived with (VCA lookup key)
	next     NodeID
	nextFlow FlowID
	egress   int
	vaDone   bool
	vaAt     uint64
	outVC    int
	pktID    uint64

	// stamps is a ring of local-clock arrival times, one per resident
	// flit, maintained by the owning tile.
	stamps []uint64
	sHead  int
	sCount int
}

func (s *vcState) reset() {
	s.routed, s.vaDone = false, false
	s.routedAt, s.vaAt = 0, 0
	s.flow, s.nextFlow = 0, 0
	s.next, s.egress, s.outVC = 0, 0, 0
	s.pktID = 0
}

// stampArrivals records the local cycle for flits that appeared in the
// buffer since the last scan.
func (s *vcState) stampArrivals(cycle uint64, live int) {
	for s.sCount < live {
		s.stamps[(s.sHead+s.sCount)%len(s.stamps)] = cycle
		s.sCount++
	}
}

// popStamp consumes the oldest arrival stamp.
func (s *vcState) popStamp() uint64 {
	v := s.stamps[s.sHead]
	s.sHead = (s.sHead + 1) % len(s.stamps)
	s.sCount--
	return v
}

// Port couples one ingress port (VC buffers owned by this router) with
// the egress channel toward the same neighbour (pointers to the
// neighbour's ingress buffers plus producer bookkeeping).
type Port struct {
	Neighbor NodeID // InvalidNode for the local CPU port

	In      []*VCBuffer // this router's ingress VCs for flits from Neighbor
	inState []vcState

	Out      []*VCBuffer // neighbour's ingress VCs for flits to Neighbor (nil on local port)
	outState []egressVC

	Link *Link
	Side int // this router's side index on Link
}

// InOccupancy sums the instantaneous flit occupancy and total capacity
// of the port's ingress VC buffers. Occupancy reads are atomic (see
// VCBuffer.Len) but only coherent when the simulation is quiescent —
// telemetry samples them from the engine's barrier leader.
func (p *Port) InOccupancy() (used, capacity int) {
	for _, b := range p.In {
		used += b.Len()
		capacity += b.Capacity()
	}
	return used, capacity
}

// pendingPacket wraps a queued injection packet.
type pendingPacket struct {
	pkt Packet
}

// assembling tracks a packet mid-reassembly at the ejection port.
type assembling struct {
	head Flit
}

// Router is a cycle-level model of one ingress-queued wormhole VC router.
// All methods are called from the owning tile's worker thread only; the
// ingress VC buffers are the only cross-thread touch points.
type Router struct {
	ID        NodeID
	ports     []*Port
	localPort int
	byNode    map[NodeID]int

	table    RouteTable
	vcaTable VCATable
	vcaMode  VCAMode
	adaptive bool

	rng      *sim.RNG
	st       *stats.Tile
	inflight *atomic.Int64
	recv     Receiver

	// Injection state.
	pending     []pendingPacket
	curFlits    []Flit // flits of the packet currently streaming in
	curNext     int
	curVC       int
	pktCounter  uint64
	flowSeq     map[FlowID]uint64
	sourceState []egressVC // producer bookkeeping for the local ingress VCs

	// Reassembly state at the ejection port.
	assembly map[uint64]assembling

	// Scratch buffers reused across cycles to avoid allocation.
	egressPerm  []int
	candScratch []saCand
	candPerm    []int
	vaScratch   []vaReq
	weights     []float64
}

// rerouteAfter is the VA-starvation threshold (cycles) after which a
// routed-but-unallocated packet re-runs route computation.
const rerouteAfter = 15

type saCand struct {
	iport, vc int
}

type vaReq struct {
	iport, vc int
}

// RouterParams bundles construction inputs.
type RouterParams struct {
	ID       NodeID
	Table    RouteTable
	VCATable VCATable
	VCAMode  VCAMode
	Adaptive bool
	RNG      *sim.RNG
	Stats    *stats.Tile
	InFlight *atomic.Int64
	// LocalVCs / LocalBufFlits configure the CPU<->switch ingress port.
	LocalVCs      int
	LocalBufFlits int
}

// NewRouter creates a router with only its local port; the topology
// builder adds network ports with Connect.
func NewRouter(p RouterParams) *Router {
	if p.LocalVCs < 1 || p.LocalBufFlits < 1 {
		panic("noc: local port needs at least one VC and one buffer slot")
	}
	r := &Router{
		ID:       p.ID,
		byNode:   make(map[NodeID]int),
		table:    p.Table,
		vcaTable: p.VCATable,
		vcaMode:  p.VCAMode,
		adaptive: p.Adaptive,
		rng:      p.RNG,
		st:       p.Stats,
		inflight: p.InFlight,
		flowSeq:  make(map[FlowID]uint64),
		assembly: make(map[uint64]assembling),
	}
	if t, ok := p.Table.(Adaptiver); ok && t.Adaptive() {
		r.adaptive = true
	}
	local := &Port{Neighbor: InvalidNode}
	for i := 0; i < p.LocalVCs; i++ {
		local.In = append(local.In, NewVCBuffer(p.LocalBufFlits))
	}
	local.inState = make([]vcState, p.LocalVCs)
	for i := range local.inState {
		local.inState[i].stamps = make([]uint64, p.LocalBufFlits)
	}
	r.sourceState = make([]egressVC, p.LocalVCs)
	r.ports = append(r.ports, local)
	r.localPort = 0
	return r
}

// AddPort creates the ingress side of a port facing neighbor and returns
// its index. The egress side is wired afterwards with ConnectEgress.
func (r *Router) AddPort(neighbor NodeID, vcs, bufFlits int) int {
	p := &Port{Neighbor: neighbor}
	for i := 0; i < vcs; i++ {
		p.In = append(p.In, NewVCBuffer(bufFlits))
	}
	p.inState = make([]vcState, vcs)
	for i := range p.inState {
		p.inState[i].stamps = make([]uint64, bufFlits)
	}
	r.ports = append(r.ports, p)
	idx := len(r.ports) - 1
	r.byNode[neighbor] = idx
	return idx
}

// ConnectEgress wires this router's port toward neighbor to the
// neighbour's ingress buffers and the shared link.
func (r *Router) ConnectEgress(neighbor NodeID, downstream []*VCBuffer, link *Link, side int) {
	idx, ok := r.byNode[neighbor]
	if !ok {
		panic(fmt.Sprintf("noc: router %d has no port facing %d", r.ID, neighbor))
	}
	p := r.ports[idx]
	p.Out = downstream
	p.outState = make([]egressVC, len(downstream))
	p.Link = link
	p.Side = side
}

// SetReceiver installs the local packet consumer.
func (r *Router) SetReceiver(rc Receiver) { r.recv = rc }

// Ports returns the router's ports (tests and topology wiring).
func (r *Router) Ports() []*Port { return r.ports }

// LocalPort returns the CPU-facing port.
func (r *Router) LocalPort() *Port { return r.ports[r.localPort] }

// PortToward returns the port index facing the given neighbour node.
func (r *Router) PortToward(n NodeID) (int, bool) {
	i, ok := r.byNode[n]
	return i, ok
}

// Stats exposes the router's statistics block.
func (r *Router) Stats() *stats.Tile { return r.st }

// PendingPackets returns the injector queue length plus any packet
// currently being streamed into the local ingress.
func (r *Router) PendingPackets() int {
	n := len(r.pending)
	if r.curFlits != nil {
		n++
	}
	return n
}

// OfferPacket queues a packet for injection at this node. The source and
// flow-sequence fields are stamped here. Callers run on the owning tile's
// thread during PhaseTransfer.
func (r *Router) OfferPacket(p Packet) {
	if p.Flits < 1 {
		panic("noc: packet must have at least one flit")
	}
	p.Src = r.ID
	r.pktCounter++
	p.ID = (uint64(r.ID)+1)<<40 | r.pktCounter
	r.flowSeq[p.Flow]++
	p.FlowSeq = r.flowSeq[p.Flow]
	r.pending = append(r.pending, pendingPacket{pkt: p})
}

// NextEvent implements the fast-forward query for the injector: if any
// packet is queued or streaming, the router can act next cycle.
func (r *Router) NextEvent(now uint64) uint64 {
	if len(r.pending) > 0 || r.curFlits != nil {
		return now + 1
	}
	return sim.NoEvent
}

// PhaseTransfer runs the positive clock edge: arrival stamping, injection
// streaming, route computation, VC allocation, switch arbitration and
// traversal.
func (r *Router) PhaseTransfer(cycle uint64) {
	for _, p := range r.ports {
		for vi, buf := range p.In {
			p.inState[vi].stampArrivals(cycle, buf.Len())
		}
	}
	r.injectFlits(cycle)
	r.routeAndAllocate(cycle)
	r.arbitrateAndTraverse(cycle)
	r.reportLinkDemand(cycle)
}

// PhaseCommit runs the negative clock edge: commit ingress pops so
// producers see fresh credits, publish link space, run link arbiters.
func (r *Router) PhaseCommit(cycle uint64) {
	for _, p := range r.ports {
		free := 0
		for _, b := range p.In {
			b.Commit()
			free += b.Capacity() - b.Len()
		}
		if p.Link != nil {
			p.Link.ReportSpace(p.Side, free)
			p.Link.Arbitrate(p.Side)
		}
	}
}

// injectFlits streams the current packet's flits into the chosen local
// ingress VC, at most one flit per cycle (the CPU->switch channel), and
// starts the next pending packet when idle.
func (r *Router) injectFlits(cycle uint64) {
	if r.curFlits == nil {
		if len(r.pending) == 0 {
			return
		}
		pp := r.pending[0]
		copy(r.pending, r.pending[1:])
		r.pending = r.pending[:len(r.pending)-1]
		r.startPacket(pp.pkt, cycle)
	}
	// Stable per-flow VC choice keeps same-flow packets in FIFO order
	// through injection (required for EDVCA's in-order guarantee).
	local := r.ports[r.localPort]
	buf := local.In[r.curVC]
	st := &r.sourceState[r.curVC]
	if st.free(buf) < 1 {
		return // retry next cycle; paper's injector retransmission
	}
	f := r.curFlits[r.curNext]
	f.InjectedAt = cycle
	if f.Kind.IsHead() {
		f.HeadInjectedAt = cycle
	} else {
		f.HeadInjectedAt = r.curFlits[0].InjectedAt
	}
	f.VisibleAt = cycle + 1
	if !buf.Push(f) {
		panic("noc: injection push failed despite credit")
	}
	st.pushes++
	st.lastFlow = f.Flow
	r.curFlits[r.curNext] = f // keep InjectedAt for later flits' HeadInjectedAt
	r.curNext++
	r.st.FlitsInjected++
	r.st.BufWrites++
	r.inflight.Add(1)
	if r.curNext == len(r.curFlits) {
		r.curFlits = nil
	}
}

func (r *Router) startPacket(p Packet, cycle uint64) {
	r.st.PacketsInjected++
	n := p.Flits
	r.curFlits = make([]Flit, n)
	for i := 0; i < n; i++ {
		k := Body
		switch {
		case n == 1:
			k = HeadTail
		case i == 0:
			k = Head
		case i == n-1:
			k = Tail
		}
		r.curFlits[i] = Flit{
			Kind:    k,
			Flow:    p.Flow,
			Packet:  p.ID,
			Seq:     uint16(i),
			Len:     uint16(n),
			FlowSeq: p.FlowSeq,
			Src:     r.ID,
			Dst:     p.Dst,
		}
	}
	if p.Payload != nil {
		r.curFlits[0].Payload = p.Payload
	}
	r.curNext = 0
	r.curVC = int(uint32(p.Flow.Base()) % uint32(len(r.ports[r.localPort].In)))
}

// routeAndAllocate performs the RC and VA stages for every ingress VC
// whose head flit is a packet head. VA requests are served in randomized
// order (paper §II-A5).
func (r *Router) routeAndAllocate(cycle uint64) {
	r.vaScratch = r.vaScratch[:0]
	for pi, p := range r.ports {
		for vi, buf := range p.In {
			st := &p.inState[vi]
			f, ok := buf.Peek(cycle)
			if !ok {
				continue
			}
			// A packet stuck in VA re-runs route computation so schemes
			// with path diversity (PROM's escape channel, adaptive
			// routing) can resample a next hop whose VCs are free.
			if st.routed && !st.vaDone && cycle-st.routedAt > rerouteAfter {
				st.reset()
			}
			if !st.routed {
				if !f.Kind.IsHead() {
					panic(fmt.Sprintf("noc: router %d port %d vc %d: body flit %v at head without route", r.ID, pi, vi, *f))
				}
				r.computeRoute(p, st, f, cycle)
				continue // VA next cycle at the earliest
			}
			if !st.vaDone && st.routedAt < cycle {
				r.vaScratch = append(r.vaScratch, vaReq{iport: pi, vc: vi})
			}
		}
	}
	if len(r.vaScratch) == 0 {
		return
	}
	if cap(r.candPerm) < len(r.vaScratch) {
		r.candPerm = make([]int, len(r.vaScratch))
	}
	perm := r.candPerm[:len(r.vaScratch)]
	r.rng.Perm(perm)
	for _, idx := range perm {
		req := r.vaScratch[idx]
		p := r.ports[req.iport]
		r.allocateVC(p, &p.inState[req.vc], cycle)
	}
}

// computeRoute runs the RC stage: look up the weighted next-hop set and
// select one entry (by weight, or by downstream congestion when adaptive).
func (r *Router) computeRoute(p *Port, st *vcState, f *Flit, cycle uint64) {
	prev := p.Neighbor
	if prev == InvalidNode {
		prev = r.ID
	}
	entries := r.table.Lookup(prev, f.Flow)
	if len(entries) == 0 {
		panic(fmt.Sprintf("noc: router %d: no route for flow %v arriving from %d", r.ID, f.Flow, prev))
	}
	var chosen RouteEntry
	if len(entries) == 1 {
		chosen = entries[0]
	} else if r.adaptive {
		chosen = r.pickAdaptive(entries)
	} else {
		r.weights = r.weights[:0]
		for _, e := range entries {
			r.weights = append(r.weights, e.Weight)
		}
		chosen = entries[r.rng.Pick(r.weights)]
	}
	st.routed = true
	st.routedAt = cycle
	st.flow = f.Flow
	st.next = chosen.Next
	st.nextFlow = chosen.NextFlow
	st.pktID = f.Packet
	if chosen.Next == r.ID {
		st.egress = r.localPort
		// Ejection needs no VC allocation; eligible for SA next cycle.
		st.vaDone = true
		st.vaAt = cycle
		return
	}
	eg, ok := r.byNode[chosen.Next]
	if !ok {
		panic(fmt.Sprintf("noc: router %d: route for flow %v names non-neighbour %d", r.ID, f.Flow, chosen.Next))
	}
	st.egress = eg
}

// pickAdaptive chooses the entry whose egress has the most committed free
// space downstream, breaking ties pseudorandomly.
func (r *Router) pickAdaptive(entries []RouteEntry) RouteEntry {
	best, bestFree, ties := 0, -1, 1
	for i, e := range entries {
		free := 0
		if e.Next == r.ID {
			free = 1 << 20 // ejection is never congested from our side
		} else if eg, ok := r.byNode[e.Next]; ok {
			p := r.ports[eg]
			for vi, buf := range p.Out {
				free += p.outState[vi].free(buf)
			}
		}
		switch {
		case free > bestFree:
			best, bestFree, ties = i, free, 1
		case free == bestFree:
			ties++
			if r.rng.Intn(ties) == 0 {
				best = i
			}
		}
	}
	return entries[best]
}

// allocateVC runs the VA stage for one ingress VC's head packet.
func (r *Router) allocateVC(p *Port, st *vcState, cycle uint64) {
	eg := r.ports[st.egress]
	if eg.Out == nil {
		// Local ejection: nothing to allocate (handled in computeRoute,
		// but a route may eject via a later-added port arrangement).
		st.vaDone = true
		st.vaAt = cycle
		return
	}
	prev := p.Neighbor
	if prev == InvalidNode {
		prev = r.ID
	}
	cands := r.vcaTable.Candidates(prev, st.flow, st.next, st.nextFlow, len(eg.Out))
	r.st.ArbEvents++
	var chosen = -1
	switch r.vcaMode {
	case VCAEDVCA:
		// Exclusive dynamic: the downstream VC must be free for
		// allocation and hold only our flow (or nothing).
		r.weights = r.weights[:0]
		ok := make([]int, 0, len(cands))
		for _, c := range cands {
			ev := &eg.outState[c.VC]
			if ev.allocPacket != 0 {
				continue
			}
			if fl, res := ev.resident(eg.Out[c.VC]); res && fl != st.nextFlow {
				continue
			}
			ok = append(ok, c.VC)
			r.weights = append(r.weights, c.Weight)
		}
		if len(ok) > 0 {
			chosen = ok[r.rng.Pick(r.weights)]
		}
	case VCAFAA:
		// Flow-aware: same-flow VC first, else the emptiest free one.
		bestFree, ties := -1, 1
		for _, c := range cands {
			ev := &eg.outState[c.VC]
			if ev.allocPacket != 0 {
				continue
			}
			if fl, res := ev.resident(eg.Out[c.VC]); res && fl == st.nextFlow {
				chosen = c.VC
				bestFree = 1 << 30
				continue
			}
			free := ev.free(eg.Out[c.VC])
			switch {
			case free > bestFree:
				chosen, bestFree, ties = c.VC, free, 1
			case free == bestFree:
				ties++
				if r.rng.Intn(ties) == 0 {
					chosen = c.VC
				}
			}
		}
	default: // dynamic and static-set: any free candidate, by weight
		r.weights = r.weights[:0]
		ok := make([]int, 0, len(cands))
		for _, c := range cands {
			if eg.outState[c.VC].allocPacket != 0 {
				continue
			}
			ok = append(ok, c.VC)
			r.weights = append(r.weights, c.Weight)
		}
		if len(ok) > 0 {
			chosen = ok[r.rng.Pick(r.weights)]
		}
	}
	if chosen < 0 {
		return // retry next cycle
	}
	st.vaDone = true
	st.vaAt = cycle
	st.outVC = chosen
	ev := &eg.outState[chosen]
	ev.allocPacket = st.pktID
	ev.allocFlow = st.nextFlow
}

// arbitrateAndTraverse runs SA and ST: for each egress port, in
// randomized order, pick among eligible ingress VCs (randomized) up to the
// link bandwidth, honouring one-flit-per-ingress-port-per-cycle crossbar
// constraints, then move winners.
func (r *Router) arbitrateAndTraverse(cycle uint64) {
	nports := len(r.ports)
	if cap(r.egressPerm) < nports {
		r.egressPerm = make([]int, nports)
	}
	eperm := r.egressPerm[:nports]
	r.rng.Perm(eperm)

	var ingressUsed uint64 // bitmask over (iport*maxVC+vc)? per ingress PORT
	for _, ei := range eperm {
		eg := r.ports[ei]
		budget := 0
		if eg.Out == nil && ei == r.localPort {
			budget = 1 // ejection channel bandwidth
			if eg.Link != nil {
				budget = eg.Link.Grant(eg.Side)
			}
		} else if eg.Out != nil {
			if eg.Link != nil {
				budget = eg.Link.Grant(eg.Side)
			} else {
				budget = 1
			}
		} else {
			continue
		}
		if budget == 0 {
			continue
		}
		// Collect eligible candidates targeting this egress.
		r.candScratch = r.candScratch[:0]
		for pi, p := range r.ports {
			if ingressUsed&(1<<uint(pi)) != 0 {
				continue
			}
			for vi := range p.In {
				st := &p.inState[vi]
				if !st.vaDone || st.vaAt >= cycle || st.egress != ei {
					continue
				}
				f, ok := p.In[vi].Peek(cycle)
				if !ok {
					continue
				}
				if f.Packet != st.pktID {
					// Next packet already at head; its own RC will run.
					continue
				}
				if eg.Out != nil {
					ev := &eg.outState[st.outVC]
					if ev.free(eg.Out[st.outVC]) < 1 {
						continue
					}
				}
				r.candScratch = append(r.candScratch, saCand{iport: pi, vc: vi})
			}
		}
		if len(r.candScratch) == 0 {
			continue
		}
		r.st.ArbEvents++
		if cap(r.candPerm) < len(r.candScratch) {
			r.candPerm = make([]int, len(r.candScratch))
		}
		perm := r.candPerm[:len(r.candScratch)]
		r.rng.Perm(perm)
		for _, ci := range perm {
			if budget == 0 {
				break
			}
			c := r.candScratch[ci]
			if ingressUsed&(1<<uint(c.iport)) != 0 {
				continue
			}
			r.traverse(c.iport, c.vc, ei, cycle)
			ingressUsed |= 1 << uint(c.iport)
			budget--
		}
	}
}

// traverse runs the ST stage for one winning flit: pop it, account its
// residency latency in this router, and either push it downstream (one
// link cycle) or deliver it locally.
func (r *Router) traverse(iport, vc, eport int, cycle uint64) {
	p := r.ports[iport]
	st := &p.inState[vc]
	buf := p.In[vc]
	f := buf.Pop()
	r.st.BufReads++
	r.st.BufWrites++ // ingress write modeled at pop time (same tile, same count)
	r.st.XbarTransits++
	// Residency in this router, measured in the local clock domain: the
	// arrival stamp is local; VisibleAt (producer clock + 1 link cycle)
	// only tightens it when the producer ran ahead within a sync chunk.
	arrival := st.popStamp()
	if f.VisibleAt > arrival {
		arrival = f.VisibleAt
	}
	f.Latency += cycle - arrival
	// Apply the routing table's flow renaming (two-phase schemes rename at
	// the intermediate hop; datelines rename at the wrap crossing).
	f.Flow = st.nextFlow
	eg := r.ports[eport]
	if eg.Out == nil {
		// Ejection to the local CPU port.
		r.deliver(f, cycle)
	} else {
		f.Latency++ // link traversal
		f.Hops++
		f.VisibleAt = cycle + 1
		ev := &eg.outState[st.outVC]
		if !eg.Out[st.outVC].Push(f) {
			panic(fmt.Sprintf("noc: router %d: downstream push without credit (port %d vc %d)", r.ID, eport, st.outVC))
		}
		ev.pushes++
		ev.lastFlow = f.Flow
		r.st.LinkTransits++
		if f.Kind.IsTail() {
			ev.allocPacket = 0
		}
	}
	if f.Kind.IsTail() {
		st.reset()
	}
}

// deliver ejects a flit at its destination, folds its statistics and
// reassembles packets for the local receiver.
func (r *Router) deliver(f Flit, cycle uint64) {
	if f.Dst != r.ID {
		panic(fmt.Sprintf("noc: flit for %d ejected at %d (flow %v)", f.Dst, r.ID, f.Flow))
	}
	r.st.FlitsDelivered++
	r.st.FlitLatencySum += f.Latency
	r.st.HopSum += uint64(f.Hops)
	r.inflight.Add(-1)
	switch f.Kind {
	case Head:
		r.assembly[f.Packet] = assembling{head: f}
		return
	case Body:
		return
	}
	// Tail or HeadTail: the packet is complete.
	var payload any
	headInj := f.HeadInjectedAt
	if f.Kind == Tail {
		if a, ok := r.assembly[f.Packet]; ok {
			payload = a.head.Payload
			headInj = a.head.InjectedAt
			delete(r.assembly, f.Packet)
		}
	} else {
		payload = f.Payload
	}
	// Packet latency: tail's accumulated latency plus the source-domain
	// gap between head injection and tail injection (no cross-tile clock
	// arithmetic; paper §II-C).
	pktLat := f.Latency + (f.InjectedAt - headInj)
	r.st.RecordPacketDelivered(uint32(f.Flow.Base()), f.FlowSeq, pktLat)
	if r.recv != nil {
		r.recv.ReceivePacket(Packet{
			ID:      f.Packet,
			Flow:    f.Flow.Base(),
			Src:     f.Src,
			Dst:     f.Dst,
			Flits:   int(f.Len),
			FlowSeq: f.FlowSeq,
			Payload: payload,
			Latency: pktLat,
		}, cycle)
	}
}

// reportLinkDemand publishes, for each bidirectional link, how many
// SA-eligible flits want to cross it (used by the bandwidth arbiter).
func (r *Router) reportLinkDemand(cycle uint64) {
	for ei, eg := range r.ports {
		if eg.Link == nil || !eg.Link.Bidirectional || eg.Out == nil {
			continue
		}
		demand := 0
		for _, p := range r.ports {
			for vi := range p.In {
				st := &p.inState[vi]
				if st.vaDone && st.egress == ei {
					if _, ok := p.In[vi].Peek(cycle); ok {
						demand++
					}
				}
			}
		}
		eg.Link.ReportDemand(eg.Side, demand)
	}
}

package noc

import "sync/atomic"

// Link models the pair of opposing channels between two neighbouring
// routers. With Bidirectional enabled, a modeled hardware arbiter
// reassigns the total bandwidth between the two directions every cycle
// based on local traffic pressure — the paper's bandwidth-adaptive links
// (§II-A4, after Cho et al.): each side publishes its demand (flits ready
// to traverse toward the link) and the free buffer space at its ingress,
// and the arbiter splits the aggregate bandwidth proportionally.
//
// With Bidirectional disabled each direction simply owns its fixed
// bandwidth. All cross-thread fields are atomics; the arbiter runs during
// the owning tile's commit phase, which in cycle-accurate mode is
// barrier-separated from the transfer phase that wrote the demands.
type Link struct {
	// BandwidthPerDir is the fixed per-direction bandwidth (flits/cycle).
	BandwidthPerDir int
	// Bidirectional enables the adaptive arbiter over 2*BandwidthPerDir.
	Bidirectional bool

	// demand[side] is written by side's router during PhaseTransfer:
	// number of SA-eligible flits wanting to cross toward the other side.
	demand [2]atomic.Int64
	// space[side] is the committed free-slot count of side's ingress port
	// across all VCs (written at commit by the ingress owner).
	space [2]atomic.Int64
	// grant[side] is the bandwidth side may use next cycle toward the
	// other side; initialized to BandwidthPerDir.
	grant [2]atomic.Int64

	// owner is the side (0 or 1) whose tile runs the arbiter at commit.
	owner int
}

// NewLink builds a link with the given per-direction bandwidth.
func NewLink(bandwidthPerDir int, bidirectional bool) *Link {
	l := &Link{BandwidthPerDir: bandwidthPerDir, Bidirectional: bidirectional}
	l.grant[0].Store(int64(bandwidthPerDir))
	l.grant[1].Store(int64(bandwidthPerDir))
	return l
}

// Grant returns the bandwidth available this cycle for traffic flowing
// out of side (0 or 1).
func (l *Link) Grant(side int) int {
	if !l.Bidirectional {
		return l.BandwidthPerDir
	}
	return int(l.grant[side].Load())
}

// ReportDemand publishes side's transfer-phase demand.
func (l *Link) ReportDemand(side int, flitsReady int) {
	if l.Bidirectional {
		l.demand[side].Store(int64(flitsReady))
	}
}

// ReportSpace publishes the committed ingress free space on side.
func (l *Link) ReportSpace(side int, freeSlots int) {
	if l.Bidirectional {
		l.space[side].Store(int64(freeSlots))
	}
}

// Arbitrate reassigns per-direction bandwidth for the next cycle. Called
// during the owning tile's commit phase.
func (l *Link) Arbitrate(side int) {
	if !l.Bidirectional || side != l.owner {
		return
	}
	total := int64(2 * l.BandwidthPerDir)
	// Effective demand out of side s is capped by the space available at
	// the opposite ingress: bandwidth granted beyond that is wasted.
	d0 := min64(l.demand[0].Load(), l.space[1].Load())
	d1 := min64(l.demand[1].Load(), l.space[0].Load())
	switch {
	case d0 == 0 && d1 == 0:
		// Idle: park at the symmetric split.
		l.grant[0].Store(int64(l.BandwidthPerDir))
		l.grant[1].Store(int64(l.BandwidthPerDir))
	case d1 == 0:
		l.grant[0].Store(total)
		l.grant[1].Store(0)
	case d0 == 0:
		l.grant[0].Store(0)
		l.grant[1].Store(total)
	default:
		g0 := total * d0 / (d0 + d1)
		if g0 < 1 {
			g0 = 1
		}
		if g0 > total-1 {
			g0 = total - 1
		}
		l.grant[0].Store(g0)
		l.grant[1].Store(total - g0)
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

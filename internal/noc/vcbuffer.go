package noc

import (
	"sync"
	"sync/atomic"
)

// VCBuffer is an ingress virtual-channel buffer: a fixed-capacity FIFO of
// flits with one lock at each end, exactly as in the paper (§II-C): the
// tail (ingress) lock is taken by the producing neighbour tile, the head
// (egress) lock by the owning tile, so the two communicating threads can
// access the buffer concurrently without losing or reordering flits.
//
// Credit semantics: the producer's view of free space is
//
//	capacity - (its own cumulative pushes - CommittedPops())
//
// where CommittedPops advances only when the consumer commits a negative
// clock edge. This makes space checks deterministic under cycle-accurate
// synchronization (pops performed during the current positive edge are
// not observable until the next cycle) and safe — never overflowing — under
// loose synchronization, where the committed count may simply lag.
type VCBuffer struct {
	frontMu sync.Mutex // head (egress) end: owner tile pops
	backMu  sync.Mutex // tail (ingress) end: upstream tile pushes

	buf  []Flit
	head int // next pop position (guarded by frontMu)
	tail int // next push position (guarded by backMu)

	// live is the instantaneous flit count; producers increment after
	// writing a slot, the consumer decrements after reading one.
	live atomic.Int32

	// pops is the consumer's cumulative pop count (consumer-local);
	// committedPops is its last committed snapshot, read by the producer.
	pops          uint64
	committedPops atomic.Uint64
}

// NewVCBuffer returns an empty buffer holding up to capacity flits.
func NewVCBuffer(capacity int) *VCBuffer {
	if capacity < 1 {
		panic("noc: VC buffer capacity must be >= 1")
	}
	return &VCBuffer{buf: make([]Flit, capacity)}
}

// Capacity returns the buffer's flit capacity.
func (b *VCBuffer) Capacity() int { return len(b.buf) }

// Len returns the instantaneous number of flits resident (diagnostic; the
// router's credit logic uses CommittedPops instead).
func (b *VCBuffer) Len() int { return int(b.live.Load()) }

// CommittedPops returns the consumer's committed cumulative pop count.
func (b *VCBuffer) CommittedPops() uint64 { return b.committedPops.Load() }

// Push appends a flit (producer side). It returns false if the buffer is
// physically full, which indicates a flow-control bug in the caller: the
// router must never push without a credit.
func (b *VCBuffer) Push(f Flit) bool {
	b.backMu.Lock()
	if int(b.live.Load()) == len(b.buf) {
		b.backMu.Unlock()
		return false
	}
	b.buf[b.tail] = f
	b.tail++
	if b.tail == len(b.buf) {
		b.tail = 0
	}
	b.live.Add(1)
	b.backMu.Unlock()
	return true
}

// Peek returns a pointer to the head flit if one is present and visible at
// the given cycle. The pointer is valid until the next Pop and may be used
// by the owning tile to inspect (never to remove) the flit.
func (b *VCBuffer) Peek(cycle uint64) (*Flit, bool) {
	if b.live.Load() == 0 {
		return nil, false
	}
	b.frontMu.Lock()
	f := &b.buf[b.head]
	b.frontMu.Unlock()
	// VisibleAt values are monotone along the queue (producer clock never
	// decreases), so checking only the head suffices.
	if f.VisibleAt > cycle {
		return nil, false
	}
	return f, true
}

// Pop removes and returns the head flit (consumer side). The caller must
// have established non-emptiness via Peek in the same phase.
func (b *VCBuffer) Pop() Flit {
	b.frontMu.Lock()
	f := b.buf[b.head]
	b.head++
	if b.head == len(b.buf) {
		b.head = 0
	}
	b.live.Add(-1)
	b.pops++
	b.frontMu.Unlock()
	return f
}

// Commit publishes the consumer's pops (negative clock edge). Only the
// owning tile calls this, once per simulated cycle.
func (b *VCBuffer) Commit() {
	if b.committedPops.Load() != b.pops {
		b.committedPops.Store(b.pops)
	}
}

// flitAt returns the i-th resident flit counted from the head (consumer
// side). Only used at quiescent points (checkpointing), never during a
// timed run.
func (b *VCBuffer) flitAt(i int) Flit {
	return b.buf[(b.head+i)%len(b.buf)]
}

// Drain removes all resident flits regardless of visibility (used by
// tests and by reset paths, never during a timed run).
func (b *VCBuffer) Drain() []Flit {
	b.backMu.Lock()
	defer b.backMu.Unlock()
	b.frontMu.Lock()
	defer b.frontMu.Unlock()
	var out []Flit
	for b.live.Load() > 0 {
		out = append(out, b.buf[b.head])
		b.head++
		if b.head == len(b.buf) {
			b.head = 0
		}
		b.live.Add(-1)
		b.pops++
	}
	b.committedPops.Store(b.pops)
	return out
}

package noc

// RouteEntry is one weighted next-hop option from a routing-table lookup
// (paper §II-A2): forward to Next, renaming the flow to NextFlow, with
// selection propensity Weight. Next == the looking-up node means "eject
// here" (deliver to the local CPU/injector port).
type RouteEntry struct {
	Next     NodeID
	NextFlow FlowID
	Weight   float64
}

// RouteTable answers route-computation lookups for one node. Lookups are
// addressed by the incoming direction and flow ID, exactly as in the
// paper: <prev_node_id, flow_id> -> {<next_node_id, next_flow_id, weight>...}.
//
// A table is owned by a single node and is only queried from that node's
// worker thread, so implementations need no internal locking (lazy
// memoization is safe).
type RouteTable interface {
	// Lookup returns the weighted next-hop set for a flow arriving from
	// prev (prev == the node itself for locally injected packets). The
	// returned slice must not be retained or mutated by the caller beyond
	// the current cycle.
	Lookup(prev NodeID, flow FlowID) []RouteEntry
}

// Adaptiver is optionally implemented by route tables whose entry set is
// meant to be narrowed at runtime using congestion information rather
// than sampled by weight (the paper's adaptive routing support).
type Adaptiver interface {
	Adaptive() bool
}

// VCChoice is one weighted virtual-channel option from a VCA lookup.
type VCChoice struct {
	VC     int
	Weight float64
}

// VCATable answers virtual-channel-allocation lookups (paper §II-A3),
// addressed by <prev_node_id, flow_id, next_node_id, next_flow_id>.
// numVCs is the VC count of the downstream ingress port being allocated.
type VCATable interface {
	Candidates(prev NodeID, flow FlowID, next NodeID, nextFlow FlowID, numVCs int) []VCChoice
}

// VCAMode selects the runtime allocation discipline layered on top of the
// candidate table.
type VCAMode uint8

const (
	// VCADynamic grants any free candidate VC.
	VCADynamic VCAMode = iota
	// VCAStaticSet restricts each flow to a deterministic candidate subset
	// (static set VCA per Shim et al.); the table encodes the subset.
	VCAStaticSet
	// VCAEDVCA is exclusive dynamic VCA: a VC may hold flits of only one
	// flow at a time, guaranteeing in-order delivery (Lis et al.).
	VCAEDVCA
	// VCAFAA is flow-aware allocation: prefer a VC already carrying the
	// same flow, else the emptiest candidate (Banerjee & Moore).
	VCAFAA
)

func (m VCAMode) String() string {
	switch m {
	case VCADynamic:
		return "dynamic"
	case VCAStaticSet:
		return "static-set"
	case VCAEDVCA:
		return "edvca"
	case VCAFAA:
		return "faa"
	}
	return "?"
}

package snapshot

import "fmt"

// VersionError reports a snapshot written by an incompatible format
// version. The format version is bumped whenever the serialized state
// layout changes; old snapshots are rejected rather than misread.
type VersionError struct {
	Got, Want uint16
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("snapshot: format version %d, this build reads version %d", e.Got, e.Want)
}

// CorruptError reports a snapshot whose bytes cannot be trusted: bad
// magic, failed checksum, truncation, or internally inconsistent state
// discovered while loading (e.g. more resident flits than a buffer can
// hold).
type CorruptError struct {
	Detail string
}

func (e *CorruptError) Error() string {
	return "snapshot: corrupt: " + e.Detail
}

func corruptf(format string, args ...any) *CorruptError {
	return &CorruptError{Detail: fmt.Sprintf(format, args...)}
}

// MismatchError reports a structurally valid snapshot that belongs to a
// different simulation: the config-hash guard (or a section-level
// structural check) failed. Restoring it would silently mix two
// unrelated runs, so it is refused.
type MismatchError struct {
	Field     string // what differed ("config_hash", "ports", ...)
	Got, Want string
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("snapshot: %s mismatch: snapshot has %q, restoring system has %q", e.Field, e.Got, e.Want)
}

// UnsupportedError reports simulator state that cannot be serialized
// (e.g. a frontend holding live goroutines, or flit payloads of an
// unregistered type). The simulation itself is fine; it just cannot be
// checkpointed.
type UnsupportedError struct {
	Component string
}

func (e *UnsupportedError) Error() string {
	return "snapshot: cannot serialize " + e.Component
}

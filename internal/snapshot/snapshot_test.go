package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"path/filepath"
	"testing"
)

func sample() *Snapshot {
	s := New("cafebabecafebabe", 12345)
	w := s.Section("alpha")
	w.Uint64(42)
	w.String("hello")
	w.Bool(true)
	w.Float64(3.5)
	w = s.Section("beta")
	w.Bytes([]byte{1, 2, 3})
	w.Int32(-7)
	return s
}

func TestContainerRoundTrip(t *testing.T) {
	b, err := sample().Bytes()
	if err != nil {
		t.Fatal(err)
	}
	s, err := DecodeBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if s.ConfigHash != "cafebabecafebabe" || s.Clock != 12345 {
		t.Fatalf("header: %q %d", s.ConfigHash, s.Clock)
	}
	r, err := s.Open("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if v := r.Uint64(); v != 42 {
		t.Errorf("uint64 = %d", v)
	}
	if v := r.String(); v != "hello" {
		t.Errorf("string = %q", v)
	}
	if !r.Bool() {
		t.Error("bool = false")
	}
	if v := r.Float64(); v != 3.5 {
		t.Errorf("float = %v", v)
	}
	if err := r.Close(); err != nil {
		t.Errorf("alpha not fully consumed: %v", err)
	}
	r, err = s.Open("beta")
	if err != nil {
		t.Fatal(err)
	}
	if v := r.ByteSlice(); !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Errorf("bytes = %v", v)
	}
	if v := r.Int32(); v != -7 {
		t.Errorf("int32 = %d", v)
	}
	if err := r.Close(); err != nil {
		t.Error(err)
	}

	// Encoding is deterministic: same content, same bytes.
	b2, _ := sample().Bytes()
	if !bytes.Equal(b, b2) {
		t.Error("encoding is not deterministic")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	b, _ := sample().Bytes()

	var ce *CorruptError
	for _, tc := range []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"bit flip", func(b []byte) []byte { b[len(b)/2] ^= 1; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-5] }},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"empty", func(b []byte) []byte { return nil }},
	} {
		mangled := tc.mangle(append([]byte(nil), b...))
		if _, err := DecodeBytes(mangled); !errors.As(err, &ce) {
			t.Errorf("%s: got %v, want *CorruptError", tc.name, err)
		}
	}
}

func TestDecodeRejectsVersionSkew(t *testing.T) {
	b, _ := sample().Bytes()
	// Patch the version field (right after the magic), then fix the CRC
	// so only the version differs.
	binary.LittleEndian.PutUint16(b[len(magic):], FormatVersion+9)
	body := b[:len(b)-4]
	binary.LittleEndian.PutUint32(b[len(b)-4:], crcOf(body))
	var ve *VersionError
	_, err := DecodeBytes(b)
	if !errors.As(err, &ve) {
		t.Fatalf("got %v, want *VersionError", err)
	}
	if ve.Got != FormatVersion+9 || ve.Want != FormatVersion {
		t.Errorf("version error %+v", ve)
	}
}

func TestOpenMissingSection(t *testing.T) {
	var ce *CorruptError
	if _, err := sample().Open("gamma"); !errors.As(err, &ce) {
		t.Errorf("missing section: got %v, want *CorruptError", err)
	}
}

func TestReaderCloseCatchesLeftoverBytes(t *testing.T) {
	s := sample()
	r, _ := s.Open("alpha")
	r.Uint64() // consume only part
	if err := r.Close(); err == nil {
		t.Error("Close accepted unread bytes")
	}
}

func TestCheckConfigHash(t *testing.T) {
	s := sample()
	if err := s.CheckConfigHash("cafebabecafebabe"); err != nil {
		t.Errorf("matching hash rejected: %v", err)
	}
	var mm *MismatchError
	if err := s.CheckConfigHash("0000000000000000"); !errors.As(err, &mm) {
		t.Errorf("wrong hash: got %v, want *MismatchError", err)
	}
}

func TestWriteFileReadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "state.snap")
	if err := sample().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	s, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Clock != 12345 || len(s.Sections()) != 2 {
		t.Errorf("reloaded snapshot: clock=%d sections=%v", s.Clock, s.Sections())
	}
	if !s.Has("alpha") || s.Has("nope") {
		t.Error("Has misreports sections")
	}
	if desc := s.Describe(); desc == "" {
		t.Error("empty Describe")
	}
}

// crcOf mirrors the encoder's checksum for test patching.
func crcOf(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

package snapshot

// Payload codec registry: how `any`-typed flit/packet payloads cross the
// snapshot boundary. The NoC layer moves opaque payloads (coherence
// messages, MPI-style user buffers) that it cannot serialize itself, so
// the owning package registers a typed codec here and the NoC's state
// encoder dispatches on the payload's dynamic type. Each codec writes a
// stable wire name ahead of its bytes; decoding looks the codec up by
// that name, so a snapshot produced by a build with more codecs than the
// reader degrades to a structured CorruptError, never a misread.
//
// Registration happens in package init functions (the packages that own
// payload types register on import), strictly before any encode/decode
// traffic, so the registry needs no locking.

import "fmt"

// PayloadCodec serializes one concrete payload type.
type PayloadCodec struct {
	// Name is the stable wire identifier written before the payload
	// bytes. Changing an existing codec's encoding requires bumping
	// FormatVersion; changing its name orphans old snapshots.
	Name string
	// Match reports whether this codec handles v's dynamic type.
	Match func(v any) bool
	// Encode appends v to the section. Called only when Match(v).
	Encode func(w *Writer, v any)
	// Decode reads one payload back. Structural failures must latch on
	// the reader (the usual truncation paths do this automatically).
	Decode func(r *Reader) any
}

var (
	payloadCodecs []PayloadCodec
	payloadByName = map[string]*PayloadCodec{}
)

// RegisterPayloadCodec installs a codec. It panics on a duplicate name:
// two packages claiming one wire name would corrupt every snapshot.
func RegisterPayloadCodec(c PayloadCodec) {
	if c.Name == "" || c.Match == nil || c.Encode == nil || c.Decode == nil {
		panic("snapshot: payload codec is missing a field")
	}
	if _, dup := payloadByName[c.Name]; dup {
		panic("snapshot: duplicate payload codec " + c.Name)
	}
	payloadCodecs = append(payloadCodecs, c)
	// The map gets its own copy: a pointer into payloadCodecs would
	// dangle when a later append reallocates the backing array.
	cc := c
	payloadByName[c.Name] = &cc
}

// EncodePayload appends one payload value: the empty string for nil, or
// the matching codec's name followed by its encoding. A payload no
// registered codec claims is unserializable state — the caller's
// snapshot attempt fails with an *UnsupportedError naming the type.
func EncodePayload(w *Writer, v any) error {
	if v == nil {
		w.String("")
		return nil
	}
	for i := range payloadCodecs {
		c := &payloadCodecs[i]
		if c.Match(v) {
			w.String(c.Name)
			c.Encode(w, v)
			if w.snap != nil {
				w.snap.payloads++
			}
			return nil
		}
	}
	return &UnsupportedError{Component: fmt.Sprintf("payload of type %T (no registered codec)", v)}
}

// DecodePayload reads one payload written by EncodePayload. An unknown
// codec name latches a CorruptError on the reader (the snapshot was
// written by a build with codecs this one lacks, or the bytes are bad).
func DecodePayload(r *Reader) any {
	name := r.String()
	if name == "" || r.err != nil {
		return nil
	}
	c, ok := payloadByName[name]
	if !ok {
		r.setErr(corruptf("section %q: unknown payload codec %q", r.name, name))
		return nil
	}
	return c.Decode(r)
}

// The byte-slice codec ships with the registry itself: raw []byte
// payloads are the MPI-style user packets the MIPS network port sends.
func init() {
	RegisterPayloadCodec(PayloadCodec{
		Name:   "bytes",
		Match:  func(v any) bool { _, ok := v.([]byte); return ok },
		Encode: func(w *Writer, v any) { w.Bytes(v.([]byte)) },
		Decode: func(r *Reader) any { return r.ByteSlice() },
	})
}

package snapshot

import (
	"errors"
	"testing"
)

// corpusSnapshot builds a representative container: several sections,
// including one holding codec-tagged payloads, as the NoC state encoder
// would produce.
func corpusSnapshot() *Snapshot {
	s := New("fuzz-corpus-hash", 12345)
	w := s.Section("engine")
	w.Int64(3)
	w = s.Section("payloads")
	_ = EncodePayload(w, []byte{0xDE, 0xAD, 0xBE, 0xEF})
	_ = EncodePayload(w, nil)
	_ = EncodePayload(w, []byte{})
	w = s.Section("tiles")
	w.Int(2)
	w.Uint64(0xA5A5A5A5)
	w.String("stats")
	w.Float64(3.25)
	return s
}

// FuzzDecodeBytes is the decoder's no-panic contract: arbitrary bytes —
// including truncated, bit-flipped and length-lying containers — must
// yield a structured error or a valid snapshot, never a panic or a
// runaway allocation. The seed corpus covers the interesting layouts so
// plain `go test` (and `go test -run Fuzz`) exercises them without a
// fuzzing engine.
func FuzzDecodeBytes(f *testing.F) {
	valid, err := corpusSnapshot().Bytes()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("HSNAP1\n"))
	f.Add(valid[:len(valid)-5])                     // CRC gone
	f.Add(valid[:len(valid)/2])                     // body truncated
	f.Add(append([]byte("XSNAP1\n"), valid[7:]...)) // bad magic
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	// A container whose section claims more bytes than exist, with a
	// recomputed CRC so the corruption is reached.
	liar := corpusSnapshot()
	liar.SetSection("tiles", []byte{0xFF, 0xFF, 0xFF, 0x7F})
	liarBytes, err := liar.Bytes()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(liarBytes)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeBytes(data)
		if err != nil {
			var ce *CorruptError
			var ve *VersionError
			if !errors.As(err, &ce) && !errors.As(err, &ve) {
				t.Fatalf("DecodeBytes returned unstructured error %T: %v", err, err)
			}
			return
		}
		// A successful decode must re-encode and decode to the same state.
		b2, err := s.Bytes()
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if _, err := DecodeBytes(b2); err != nil {
			t.Fatalf("re-decode: %v", err)
		}
	})
}

// FuzzReaderPayload drives DecodePayload over arbitrary section bytes:
// unknown codec names, truncated payloads, and hostile length prefixes
// must latch structured errors on the reader, never panic.
func FuzzReaderPayload(f *testing.F) {
	good := New("h", 0)
	w := good.Section("p")
	_ = EncodePayload(w, []byte("hello"))
	gb, _ := good.SectionPayload("p")
	f.Add(gb)
	f.Add([]byte{})
	f.Add([]byte{0x05, 0x00, 0x00, 0x00, 'b', 'y', 't', 'e', 'X'}) // unknown codec name
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})                          // absurd name length
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &Reader{buf: data, name: "fuzz"}
		v := DecodePayload(r)
		if err := r.Err(); err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("payload decode latched unstructured error %T: %v", err, err)
			}
			return
		}
		_ = v
	})
}

// FuzzVerify is the transport-admission contract: Verify never panics
// on arbitrary bytes, returns only structured errors, and never rejects
// a container DecodeBytes would accept (a worker's uploaded checkpoint
// must not be refused at the coordinator's door and then resume fine
// locally — or vice versa at the envelope level).
func FuzzVerify(f *testing.F) {
	valid, err := corpusSnapshot().Bytes()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:len(valid)-1])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x01
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		verr := Verify(data)
		if verr != nil {
			var ce *CorruptError
			var ve *VersionError
			if !errors.As(verr, &ce) && !errors.As(verr, &ve) {
				t.Fatalf("Verify returned unstructured error %T: %v", verr, verr)
			}
		}
		if _, derr := DecodeBytes(data); derr == nil && verr != nil {
			t.Fatalf("Verify rejected a container DecodeBytes accepts: %v", verr)
		}
	})
}

// TestPayloadCodecRoundTrip covers the registry basics the fuzzers skim:
// nil, empty and non-empty byte payloads round-trip; unregistered types
// are refused with an UnsupportedError naming the type.
func TestPayloadCodecRoundTrip(t *testing.T) {
	s := New("h", 0)
	w := s.Section("p")
	for _, v := range []any{nil, []byte{}, []byte("abc")} {
		if err := EncodePayload(w, v); err != nil {
			t.Fatalf("EncodePayload(%v): %v", v, err)
		}
	}
	if got := s.Payloads(); got != 2 {
		t.Errorf("Payloads() = %d, want 2 (nil payloads are not counted)", got)
	}
	type opaque struct{ x int }
	err := EncodePayload(w, opaque{1})
	var ue *UnsupportedError
	if !errors.As(err, &ue) {
		t.Fatalf("unregistered payload type: got %v, want *UnsupportedError", err)
	}

	b, _ := s.SectionPayload("p")
	r := &Reader{buf: b, name: "p"}
	if v := DecodePayload(r); v != nil {
		t.Errorf("first payload = %v, want nil", v)
	}
	if v, ok := DecodePayload(r).([]byte); !ok || len(v) != 0 {
		t.Errorf("second payload = %v, want empty []byte", v)
	}
	if v, ok := DecodePayload(r).([]byte); !ok || string(v) != "abc" {
		t.Errorf("third payload = %v, want abc", v)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("reader error: %v", err)
	}
}

package snapshot

import (
	"bytes"
	"encoding/binary"
	"math"
)

// putUint32/putUint64/putString are the header-level primitives shared
// by the container encoder and the section Writer.
func putUint32(buf *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	buf.Write(b[:])
}

func putUint64(buf *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	buf.Write(b[:])
}

func putString(buf *bytes.Buffer, s string) {
	putUint32(buf, uint32(len(s)))
	buf.WriteString(s)
}

// Writer appends primitive values to one snapshot section. All writes
// are infallible (they grow an in-memory buffer); the section's bytes
// are captured when the snapshot is encoded.
type Writer struct {
	snap *Snapshot
	idx  int
	buf  bytes.Buffer
	done bool
}

func (w *Writer) commit() {
	// Every mutator flushes the accumulated bytes into the owning
	// snapshot so callers never need an explicit Close.
	w.snap.sections[w.idx].payload = w.buf.Bytes()
}

// Uint8 appends one byte.
func (w *Writer) Uint8(v uint8) { w.buf.WriteByte(v); w.commit() }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	w.Uint8(b)
}

// Uint16 appends a little-endian uint16.
func (w *Writer) Uint16(v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	w.buf.Write(b[:])
	w.commit()
}

// Uint32 appends a little-endian uint32.
func (w *Writer) Uint32(v uint32) { putUint32(&w.buf, v); w.commit() }

// Uint64 appends a little-endian uint64.
func (w *Writer) Uint64(v uint64) { putUint64(&w.buf, v); w.commit() }

// Int appends an int as a two's-complement uint64.
func (w *Writer) Int(v int) { w.Uint64(uint64(v)) }

// Int64 appends an int64 as a two's-complement uint64.
func (w *Writer) Int64(v int64) { w.Uint64(uint64(v)) }

// Int32 appends an int32 as a two's-complement uint32.
func (w *Writer) Int32(v int32) { w.Uint32(uint32(v)) }

// Float64 appends an IEEE-754 bit pattern.
func (w *Writer) Float64(v float64) { w.Uint64(math.Float64bits(v)) }

// String appends a length-prefixed string.
func (w *Writer) String(s string) { putString(&w.buf, s); w.commit() }

// Bytes appends a length-prefixed byte slice.
func (w *Writer) Bytes(b []byte) {
	putUint32(&w.buf, uint32(len(b)))
	w.buf.Write(b)
	w.commit()
}

// Reader consumes primitive values from one section's payload. Instead
// of returning an error at every call site, it latches the first
// failure; callers check Err once after decoding a logical unit (the
// zero values returned after a failure are never installed because the
// caller bails out on Err).
type Reader struct {
	buf  []byte
	name string
	err  error
}

// Err returns the first decoding failure, if any.
func (r *Reader) Err() error { return r.err }

// Len returns the number of unread bytes.
func (r *Reader) Len() int { return len(r.buf) }

// Close verifies the section was fully consumed: leftover bytes mean
// the saver and loader disagree about the layout, which would silently
// desynchronize every following field.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if len(r.buf) != 0 {
		return corruptf("section %q: %d unread bytes", r.name, len(r.buf))
	}
	return nil
}

func (r *Reader) fail() {
	r.setErr(corruptf("section %q: truncated", r.name))
}

// setErr latches a decoding failure (first error wins).
func (r *Reader) setErr(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.buf) {
		r.fail()
		return nil
	}
	b := r.buf[:n]
	r.buf = r.buf[n:]
	return b
}

// Uint8 reads one byte.
func (r *Reader) Uint8() uint8 {
	b := r.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a one-byte boolean.
func (r *Reader) Bool() bool { return r.Uint8() != 0 }

// Uint16 reads a little-endian uint16.
func (r *Reader) Uint16() uint16 {
	b := r.bytes(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// Uint32 reads a little-endian uint32.
func (r *Reader) Uint32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// Uint64 reads a little-endian uint64.
func (r *Reader) Uint64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Int reads a two's-complement int.
func (r *Reader) Int() int { return int(r.Uint64()) }

// Int64 reads a two's-complement int64.
func (r *Reader) Int64() int64 { return int64(r.Uint64()) }

// Int32 reads a two's-complement int32.
func (r *Reader) Int32() int32 { return int32(r.Uint32()) }

// Float64 reads an IEEE-754 bit pattern.
func (r *Reader) Float64() float64 { return math.Float64frombits(r.Uint64()) }

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := int(r.Uint32())
	if n > maxSectionBytes {
		r.fail()
		return ""
	}
	return string(r.bytes(n))
}

// ByteSlice reads a length-prefixed byte slice (copied).
func (r *Reader) ByteSlice() []byte {
	n := int(r.Uint32())
	if n > maxSectionBytes {
		r.fail()
		return nil
	}
	return append([]byte(nil), r.bytes(n)...)
}

// Count reads an Int length prefix and validates it against both the
// caller's ceiling and the bytes actually remaining in the section
// (every counted element occupies at least one byte), failing the
// reader when the stored count is implausible. This keeps a corrupt or
// hostile prefix from driving huge allocations or long spin loops
// before the truncation would surface.
func (r *Reader) Count(max int) int {
	n := r.Int()
	if n < 0 || n > max || n > len(r.buf) {
		if r.err == nil {
			r.err = corruptf("section %q: count %d exceeds bound %d (remaining %d bytes)",
				r.name, n, max, len(r.buf))
		}
		return 0
	}
	return n
}

// Package snapshot implements HORNET's deterministic checkpoint format:
// a versioned, checksummed binary container of named sections, each a
// flat little-endian encoding of one subsystem's state (engine clock,
// per-tile RNG streams, NoC buffers and allocation state, statistics,
// frontends). A snapshot is guarded by the config hash of the system
// that produced it, so state can only be restored into a structurally
// compatible simulation; the round-trip contract is that
// run→snapshot→restore→run is byte-identical to an uninterrupted run.
//
// The container layout (all integers little-endian):
//
//	magic   "HSNAP1\n"            (7 bytes)
//	version uint16                 (FormatVersion)
//	hash    string                 (config-hash guard)
//	clock   uint64                 (next cycle to simulate)
//	nsec    uint32                 section count
//	         nsec × { name string, size uint32, payload bytes }
//	crc     uint32                 IEEE CRC-32 of everything above
//
// Sections are written and read by name; producers append them in a
// deterministic order so identical simulator states encode to identical
// bytes (snapshots themselves are content-comparable).
package snapshot

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"hornet/internal/fsatomic"
)

// FormatVersion is the current snapshot layout version. Bump whenever
// any section's encoding changes; Decode rejects other versions with a
// *VersionError.
//
// Version history:
//
//	1: initial layout (synthetic/trace frontends, payload-free flits)
//	2: flits and packets carry codec-tagged payloads (mem.Message,
//	   []byte); mem/mips/trace-MC frontend sections; manifest section
const FormatVersion = 2

var magic = []byte("HSNAP1\n")

// maxSectionBytes bounds a single section (and the header strings) so a
// corrupt length prefix cannot drive a multi-gigabyte allocation.
const maxSectionBytes = 1 << 30

// Snapshot is a decoded (or under-construction) checkpoint.
type Snapshot struct {
	// ConfigHash guards restores: it must equal the restoring system's
	// own hash (sweep.ConfigHash over its identifying configuration).
	ConfigHash string
	// Clock is the next cycle the suspended simulation would execute.
	Clock uint64

	sections []section
	// payloads counts flit/packet payloads encoded into this snapshot
	// (via EncodePayload); producers surface it in inspection manifests.
	payloads int
}

// Payloads reports how many typed payloads were encoded into this
// (under-construction) snapshot. Zero for decoded snapshots — the count
// is a producer-side statistic, carried explicitly (e.g. in a manifest
// section) when it must survive the round trip.
func (s *Snapshot) Payloads() int { return s.payloads }

type section struct {
	name    string
	payload []byte
}

// New starts an empty snapshot for the given config hash and clock.
func New(configHash string, clock uint64) *Snapshot {
	return &Snapshot{ConfigHash: configHash, Clock: clock}
}

// Section appends a named section and returns its Writer. Sections are
// encoded in append order; callers must use a deterministic order.
func (s *Snapshot) Section(name string) *Writer {
	s.sections = append(s.sections, section{name: name})
	return &Writer{snap: s, idx: len(s.sections) - 1}
}

// Open returns a Reader over the named section's payload, or a
// *CorruptError if the snapshot has no such section (a snapshot from a
// system with different frontends attached).
func (s *Snapshot) Open(name string) (*Reader, error) {
	for _, sec := range s.sections {
		if sec.name == name {
			return &Reader{buf: sec.payload, name: name}, nil
		}
	}
	return nil, corruptf("missing section %q", name)
}

// Has reports whether the named section is present.
func (s *Snapshot) Has(name string) bool {
	for _, sec := range s.sections {
		if sec.name == name {
			return true
		}
	}
	return false
}

// SectionPayload returns a copy of the named section's raw bytes, for
// inspection tools and corruption-injection tests.
func (s *Snapshot) SectionPayload(name string) ([]byte, bool) {
	for _, sec := range s.sections {
		if sec.name == name {
			return append([]byte(nil), sec.payload...), true
		}
	}
	return nil, false
}

// SetSection replaces the named section's payload, appending a new
// section if none exists. It exists for tests that inject section-level
// corruption past the container checksum (re-encoding recomputes the
// CRC) and for tools that rewrite snapshots; simulator save paths use
// Section writers instead.
func (s *Snapshot) SetSection(name string, payload []byte) {
	for i := range s.sections {
		if s.sections[i].name == name {
			s.sections[i].payload = append([]byte(nil), payload...)
			return
		}
	}
	s.sections = append(s.sections, section{name: name, payload: append([]byte(nil), payload...)})
}

// SectionInfo describes one section for inspection tools.
type SectionInfo struct {
	Name string
	Size int
}

// Sections lists the sections in encoding order.
func (s *Snapshot) Sections() []SectionInfo {
	out := make([]SectionInfo, len(s.sections))
	for i, sec := range s.sections {
		out[i] = SectionInfo{Name: sec.name, Size: len(sec.payload)}
	}
	return out
}

// Encode writes the container to w.
func (s *Snapshot) Encode(w io.Writer) error {
	var buf bytes.Buffer
	buf.Write(magic)
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], FormatVersion)
	buf.Write(u16[:])
	putString(&buf, s.ConfigHash)
	putUint64(&buf, s.Clock)
	putUint32(&buf, uint32(len(s.sections)))
	for _, sec := range s.sections {
		putString(&buf, sec.name)
		putUint32(&buf, uint32(len(sec.payload)))
		buf.Write(sec.payload)
	}
	crc := crc32.ChecksumIEEE(buf.Bytes())
	putUint32(&buf, crc)
	_, err := w.Write(buf.Bytes())
	return err
}

// Bytes encodes the container into memory.
func (s *Snapshot) Bytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode parses and verifies a container: magic, format version, and
// the trailing CRC over the entire payload. Errors are structured:
// *VersionError for a version skew, *CorruptError for everything that
// means "these bytes cannot be trusted".
func Decode(r io.Reader) (*Snapshot, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return DecodeBytes(b)
}

// Verify checks the container envelope — magic, format version and the
// trailing CRC — without decoding or materializing sections. It is the
// cheap admission check for snapshot blobs arriving over a network
// transport (worker checkpoint uploads): a blob that passes Verify will
// also pass DecodeBytes's envelope checks, so corruption is rejected at
// the transport boundary instead of being discovered mid-resume.
func Verify(b []byte) error {
	if len(b) < len(magic)+2+4 {
		return corruptf("truncated: %d bytes", len(b))
	}
	if !bytes.Equal(b[:len(magic)], magic) {
		return corruptf("bad magic %q", b[:len(magic)])
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if got, want := binary.LittleEndian.Uint32(tail), crc32.ChecksumIEEE(body); got != want {
		return corruptf("checksum mismatch: stored %08x, computed %08x", got, want)
	}
	if version := binary.LittleEndian.Uint16(b[len(magic):]); version != FormatVersion {
		return &VersionError{Got: version, Want: FormatVersion}
	}
	return nil
}

// DecodeBytes parses and verifies an in-memory container.
func DecodeBytes(b []byte) (*Snapshot, error) {
	if len(b) < len(magic)+2+4 {
		return nil, corruptf("truncated: %d bytes", len(b))
	}
	if !bytes.Equal(b[:len(magic)], magic) {
		return nil, corruptf("bad magic %q", b[:len(magic)])
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if got, want := binary.LittleEndian.Uint32(tail), crc32.ChecksumIEEE(body); got != want {
		return nil, corruptf("checksum mismatch: stored %08x, computed %08x", got, want)
	}
	rd := &Reader{buf: body[len(magic):], name: "header"}
	version := rd.Uint16()
	if version != FormatVersion {
		return nil, &VersionError{Got: version, Want: FormatVersion}
	}
	s := &Snapshot{}
	s.ConfigHash = rd.String()
	s.Clock = rd.Uint64()
	n := int(rd.Uint32())
	for i := 0; i < n && rd.err == nil; i++ {
		name := rd.String()
		size := int(rd.Uint32())
		if size < 0 || size > maxSectionBytes {
			return nil, corruptf("section %q claims %d bytes", name, size)
		}
		payload := rd.bytes(size)
		s.sections = append(s.sections, section{name: name, payload: payload})
	}
	if rd.err != nil {
		return nil, rd.err
	}
	if rd.Len() != 0 {
		return nil, corruptf("%d trailing bytes after last section", rd.Len())
	}
	return s, nil
}

// CheckConfigHash verifies the restore guard against the restoring
// system's hash, returning a *MismatchError on divergence.
func (s *Snapshot) CheckConfigHash(want string) error {
	if s.ConfigHash != want {
		return &MismatchError{Field: "config_hash", Got: s.ConfigHash, Want: want}
	}
	return nil
}

// WriteFile atomically persists the snapshot: temp file in the target
// directory, then rename, so a killed process never leaves a partial
// snapshot under the final name.
func (s *Snapshot) WriteFile(path string) error {
	return fsatomic.Write(path, s.Encode)
}

// ReadFile loads and verifies a snapshot file.
func ReadFile(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeBytes(b)
}

// Describe renders a human-readable inspection of the container:
// version, guard hash, clock, and every section with its size. Used by
// the CLI `snapshot <file>` subcommands.
func (s *Snapshot) Describe() string {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "format version: %d\n", FormatVersion)
	fmt.Fprintf(&buf, "config hash:    %s\n", s.ConfigHash)
	fmt.Fprintf(&buf, "clock:          %d\n", s.Clock)
	total := 0
	for _, sec := range s.sections {
		total += len(sec.payload)
	}
	fmt.Fprintf(&buf, "sections:       %d (%d bytes)\n", len(s.sections), total)
	ordered := append([]section(nil), s.sections...)
	sort.SliceStable(ordered, func(i, j int) bool { return len(ordered[i].payload) > len(ordered[j].payload) })
	for _, sec := range ordered {
		fmt.Fprintf(&buf, "  %-12s %d bytes\n", sec.name, len(sec.payload))
	}
	return buf.String()
}

package snapshot

import "encoding/json"

// ManifestSection names the optional self-describing section producers
// append last: a JSON summary of what the snapshot contains, used by the
// `snapshot <file>` inspection subcommands. Restore paths ignore it; the
// simulator state lives in the typed sections.
const ManifestSection = "manifest"

// Manifest summarizes a system snapshot for inspection tools: which
// frontends were attached, how many of each component the state covers,
// and how many typed payloads ride inside the encoded flits and packets.
type Manifest struct {
	Nodes     int      `json:"nodes"`
	Frontends []string `json:"frontends"`

	Generators int `json:"generators,omitempty"`
	Injectors  int `json:"injectors,omitempty"`
	MIPSCores  int `json:"mips_cores,omitempty"`
	MemTiles   int `json:"mem_tiles,omitempty"`
	TraceMCs   int `json:"trace_mcs,omitempty"`

	InFlightFlits int64 `json:"in_flight_flits"`
	Payloads      int   `json:"payloads"`
}

// WriteManifest appends the manifest section (call after every state
// section, so Payloads reflects the full encoding).
func (s *Snapshot) WriteManifest(m Manifest) error {
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	s.Section(ManifestSection).Bytes(b)
	return nil
}

// ReadManifest decodes the manifest section; ok is false when the
// snapshot carries none (pre-manifest producers, warmup blobs from old
// builds).
func (s *Snapshot) ReadManifest() (m Manifest, ok bool, err error) {
	r, err := s.Open(ManifestSection)
	if err != nil {
		return m, false, nil
	}
	b := r.ByteSlice()
	if err := r.Close(); err != nil {
		return m, false, err
	}
	if err := json.Unmarshal(b, &m); err != nil {
		return m, false, corruptf("manifest: %v", err)
	}
	return m, true, nil
}

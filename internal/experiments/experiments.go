// Package experiments reproduces every table and figure in the paper's
// evaluation (§IV): each FigNN function runs the workloads with the
// paper's parameters (scaled to tractable sizes by default, full scale on
// request) and returns the same series the paper plots. cmd/hornet-exp
// prints them, bench_test.go times them, and the package's tests assert
// the qualitative shapes the paper reports.
package experiments

import (
	"fmt"
	"runtime"
	"time"

	"hornet/internal/config"
	"hornet/internal/core"
	"hornet/internal/mips"
	"hornet/internal/noc"
	"hornet/internal/splash"
	"hornet/internal/trace"
	"hornet/internal/workloads"
)

// Options scales the experiments. The zero value gives CI-friendly
// defaults; Full restores paper-scale parameters (1024-core meshes,
// 200k/2M warmup/measurement windows).
type Options struct {
	Full    bool
	Seed    uint64
	Workers []int // worker counts for the parallelization figures
}

func (o *Options) fill() {
	if o.Seed == 0 {
		o.Seed = 0x5EED0A11
	}
	if len(o.Workers) == 0 {
		max := runtime.GOMAXPROCS(0) * 2
		if max < 2 {
			max = 2
		}
		for w := 1; w <= max; w++ {
			o.Workers = append(o.Workers, w)
		}
	}
}

// meshSide returns the synthetic-workload mesh dimension.
func (o *Options) meshSide() int {
	if o.Full {
		return 32 // 1024 cores, paper scale
	}
	return 16
}

func (o *Options) synthCycles() uint64 {
	if o.Full {
		return 2_000_000
	}
	return 20_000
}

func (o *Options) warmup() uint64 {
	if o.Full {
		return 200_000
	}
	return 2_000
}

// ---------------------------------------------------------------------------
// Fig 6a: parallelization speedup vs worker count, cycle-accurate vs
// 5-cycle loose synchronization, for synthetic SHUFFLE traffic and the
// BLACKSCHOLES kernel on the MIPS frontend.

// Fig6aRow is one point of the speedup plot.
type Fig6aRow struct {
	Workload string
	SyncMode string // "cycle-accurate" or "5-cycle"
	Workers  int
	Wall     time.Duration
	Speedup  float64 // vs the same workload/mode at 1 worker
}

// Fig6a runs the speedup sweep. On hosts with few cores the wall-clock
// speedup saturates at the host parallelism — the paper's own point about
// die crossings applies at a smaller scale.
func Fig6a(o Options) []Fig6aRow {
	o.fill()
	var rows []Fig6aRow
	for _, mode := range []struct {
		name   string
		period int
	}{{"cycle-accurate", 1}, {"5-cycle", 5}} {
		base := time.Duration(0)
		for _, w := range o.Workers {
			wall := runShuffleOnce(o, w, mode.period)
			if base == 0 {
				base = wall
			}
			rows = append(rows, Fig6aRow{
				Workload: "shuffle",
				SyncMode: mode.name,
				Workers:  w,
				Wall:     wall,
				Speedup:  float64(base) / float64(wall),
			})
		}
	}
	for _, mode := range []struct {
		name   string
		period int
	}{{"cycle-accurate", 1}, {"5-cycle", 5}} {
		base := time.Duration(0)
		for _, w := range o.Workers {
			wall := runBlackScholesOnce(o, w, mode.period)
			if base == 0 {
				base = wall
			}
			rows = append(rows, Fig6aRow{
				Workload: "blackscholes",
				SyncMode: mode.name,
				Workers:  w,
				Wall:     wall,
				Speedup:  float64(base) / float64(wall),
			})
		}
	}
	return rows
}

func runShuffleOnce(o Options, workers, period int) time.Duration {
	cfg := config.Default()
	side := o.meshSide()
	cfg.Topology.Width, cfg.Topology.Height = side, side
	cfg.Engine.Workers = workers
	cfg.Engine.SyncPeriod = period
	cfg.Engine.Seed = o.Seed
	cfg.Traffic = []config.TrafficConfig{{Pattern: config.PatternShuffle, InjectionRate: 0.02}}
	sys := mustSystem(cfg)
	must(sys.AttachSyntheticTraffic())
	res := sys.Run(o.synthCycles())
	return res.Wall
}

func runBlackScholesOnce(o Options, workers, period int) time.Duration {
	side := 4
	opts := 64
	if o.Full {
		side, opts = 32, 256
	}
	cfg := config.Default()
	cfg.Topology.Width, cfg.Topology.Height = side, side
	cfg.Engine.Workers = workers
	cfg.Engine.SyncPeriod = period
	cfg.Engine.Seed = o.Seed
	img := mustImage(workloads.BlackScholesSource(opts, 16))
	sys := mustSystem(cfg)
	nodes := allNodes(side * side)
	cores := sys.AttachMIPS(nodes, img)
	res := sys.RunUntil(50_000_000, sys.CoresHalted(cores))
	return res.Wall
}

// ---------------------------------------------------------------------------
// Fig 6b: accuracy and speedup vs synchronization period (transpose).

// Fig6bRow is one synchronization-period point.
type Fig6bRow struct {
	Period      int
	Wall        time.Duration
	Speedup     float64 // vs cycle-accurate
	AvgLatency  float64
	AccuracyPct float64 // 100 - |lat - lat_ca| / lat_ca * 100
}

// Fig6b sweeps the synchronization period on transpose traffic with four
// workers (the paper's "Transpose on 4 HT cores").
func Fig6b(o Options) []Fig6bRow {
	o.fill()
	periods := []int{1, 5, 10, 50, 100, 500, 1000}
	var rows []Fig6bRow
	var refWall time.Duration
	var refLat float64
	for _, p := range periods {
		cfg := config.Default()
		cfg.Topology.Width, cfg.Topology.Height = 8, 8
		cfg.Engine.Workers = 4
		cfg.Engine.SyncPeriod = p
		cfg.Engine.Seed = o.Seed
		cfg.Traffic = []config.TrafficConfig{{Pattern: config.PatternTranspose, InjectionRate: 0.05}}
		sys := mustSystem(cfg)
		must(sys.AttachSyntheticTraffic())
		sys.Run(o.warmup())
		sys.ResetStats()
		res := sys.Run(o.synthCycles())
		lat := sys.Summary().AvgPacketLatency
		if p == 1 {
			refWall, refLat = res.Wall, lat
		}
		acc := 100.0
		if refLat > 0 {
			acc = 100 - abs(lat-refLat)/refLat*100
		}
		rows = append(rows, Fig6bRow{
			Period:      p,
			Wall:        res.Wall,
			Speedup:     float64(refWall) / float64(res.Wall),
			AvgLatency:  lat,
			AccuracyPct: acc,
		})
	}
	return rows
}

// ---------------------------------------------------------------------------
// Fig 7: fast-forwarding benefit on low-traffic workloads.

// Fig7Row is one fast-forward measurement.
type Fig7Row struct {
	Workload string
	FF       bool
	Workers  int
	Wall     time.Duration
	Skipped  uint64
	Speedup  float64 // vs no-FF at the same worker count
}

// Fig7 compares fast-forward on/off for bursty low-rate bit-complement
// (big wins: the network fully drains between coordinated bursts) and the
// H.264-decoder profile (little win: evenly spread packets keep the
// network from draining).
func Fig7(o Options) []Fig7Row {
	o.fill()
	workloads := []config.TrafficConfig{
		{Pattern: config.PatternBitComplement, InjectionRate: 0.02, BurstLen: 200, BurstGap: 4000},
		{Pattern: config.PatternH264, InjectionRate: 0.002},
	}
	workerSet := []int{1, 2, 4}
	var rows []Fig7Row
	for _, tc := range workloads {
		for _, w := range workerSet {
			var noFF time.Duration
			for _, ff := range []bool{false, true} {
				cfg := config.Default()
				cfg.Topology.Width, cfg.Topology.Height = 8, 8
				cfg.Engine.Workers = w
				cfg.Engine.FastForward = ff
				cfg.Engine.Seed = o.Seed
				cfg.Traffic = []config.TrafficConfig{tc}
				sys := mustSystem(cfg)
				must(sys.AttachSyntheticTraffic())
				res := sys.Run(o.synthCycles() * 4)
				if !ff {
					noFF = res.Wall
				}
				rows = append(rows, Fig7Row{
					Workload: tc.Pattern,
					FF:       ff,
					Workers:  w,
					Wall:     res.Wall,
					Skipped:  res.SkippedCycles,
					Speedup:  float64(noFF) / float64(res.Wall),
				})
			}
		}
	}
	return rows
}

// ---------------------------------------------------------------------------
// Fig 12: trace-driven vs integrated core+network simulation of Cannon's
// matrix multiply.

// Fig12Result compares the two methodologies.
type Fig12Result struct {
	IdealCycles       uint64 // app runtime under the ideal 1-cycle network
	TraceReplayCycles uint64 // network time to replay the captured trace
	IntegratedCycles  uint64 // true core+network co-simulated runtime
	// Normalized to the integrated run (the paper's presentation).
	NormInjectionRateTrace float64
	NormExecTimeTrace      float64
	PacketsSent            uint64
}

// Fig12 runs Cannon's algorithm three ways: under an ideal single-cycle
// network (logging a trace), replaying that trace through the cycle-level
// network, and fully integrated (cores coupled to the network). The
// trace-based methodology injects unrealistically fast and finishes far
// too early because it lacks the core<->network feedback loop (§IV-D).
func Fig12(o Options) Fig12Result {
	o.fill()
	q, b := 4, 4
	if o.Full {
		q, b = 8, 16 // 64 cores, 128x128 matrix as in the paper
	}
	img := mustImage(workloads.CannonSource(q, b))

	ideal := core.RunMIPSIdeal(q*q, img, 500_000_000)

	// Trace replay through the cycle-accurate network.
	replayCfg := config.Default()
	replayCfg.Topology.Width, replayCfg.Topology.Height = q, q
	replayCfg.Engine.Seed = o.Seed
	replaySys := mustSystem(replayCfg)
	replaySys.AttachTrace(ideal.Trace)
	replayRes := replaySys.RunUntil(500_000_000, func(uint64) bool { return replaySys.TraceDone() })

	// Integrated run.
	intCfg := config.Default()
	intCfg.Topology.Width, intCfg.Topology.Height = q, q
	intCfg.Engine.Seed = o.Seed
	intSys := mustSystem(intCfg)
	cores := intSys.AttachMIPS(allNodes(q*q), img)
	intRes := intSys.RunUntil(500_000_000, intSys.CoresHalted(cores))

	replayCycles := replayRes.Cycles + replayRes.SkippedCycles
	intCycles := intRes.Cycles + intRes.SkippedCycles
	traceRate := float64(ideal.PacketsSent) / float64(replayCycles)
	intRate := float64(ideal.PacketsSent) / float64(intCycles)
	return Fig12Result{
		IdealCycles:            ideal.Cycles,
		TraceReplayCycles:      replayCycles,
		IntegratedCycles:       intCycles,
		NormInjectionRateTrace: traceRate / intRate,
		NormExecTimeTrace:      float64(replayCycles) / float64(intCycles),
		PacketsSent:            ideal.PacketsSent,
	}
}

// ---------------------------------------------------------------------------
// shared helpers

func mustSystem(cfg config.Config) *core.System {
	s, err := core.New(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return s
}

func must(err error) {
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
}

func mustImage(src string) *mips.Image {
	img, err := mips.Assemble(src)
	if err != nil {
		panic(fmt.Sprintf("experiments: assemble: %v", err))
	}
	return img
}

func allNodes(n int) []noc.NodeID {
	out := make([]noc.NodeID, n)
	for i := range out {
		out[i] = noc.NodeID(i)
	}
	return out
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// splashTrace builds a benchmark trace sized for an 8x8 (64-core) run,
// matching the paper's SPLASH methodology (64 application threads,
// x86 clock 10x the network clock folded into the profiles).
func splashTrace(b splash.Benchmark, o Options, cycles uint64, intensity float64) *trace.Trace {
	tr, err := splash.Generate(b, splash.Params{
		Nodes:     64,
		Width:     8,
		Height:    8,
		Cycles:    cycles,
		Seed:      o.Seed,
		Intensity: intensity,
	})
	if err != nil {
		panic(err)
	}
	return tr
}

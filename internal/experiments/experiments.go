// Package experiments reproduces every table and figure in the paper's
// evaluation (§IV): each FigNN function runs the workloads with the
// paper's parameters (scaled to tractable sizes by default, full scale on
// request) and returns the same series the paper plots. cmd/hornet-exp
// prints them, bench_test.go times them, and the package's tests assert
// the qualitative shapes the paper reports.
//
// Every figure expresses its runs as sweep items (internal/sweep) keyed
// by a stable configuration string, so independent simulations execute
// concurrently on a bounded worker pool with deterministic per-run seeds.
// The parallelization figures (Fig6a/6b/7) measure wall-clock time and
// therefore run their items serially regardless of Options.Parallel.
package experiments

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"time"

	"hornet/internal/config"
	"hornet/internal/core"
	"hornet/internal/mips"
	"hornet/internal/noc"
	"hornet/internal/obs"
	"hornet/internal/splash"
	"hornet/internal/stats"
	"hornet/internal/sweep"
	"hornet/internal/trace"
	"hornet/internal/workloads"
)

// Options scales the experiments. The zero value gives CI-friendly
// defaults; Full restores paper-scale parameters (1024-core meshes,
// 200k/2M warmup/measurement windows); Tiny shrinks further for
// `go test -short` smoke coverage.
type Options struct {
	Full bool
	Tiny bool // shrunk shapes for -short CI runs; ignored when Full is set
	Seed uint64
	// Workers lists the worker counts swept by the parallelization figures.
	Workers []int
	// Parallel is the number of sweep runs in flight at once (0 means
	// GOMAXPROCS). Timing figures always execute serially.
	Parallel int
	// Budget caps total CPU slots across concurrent runs (0 means
	// max(Parallel, GOMAXPROCS)); a run using W engine workers holds W slots.
	// Ignored when Pool is set.
	Budget int
	// Pool, if non-nil, is an externally owned CPU-slot pool shared with
	// other concurrent work (e.g. other jobs in hornet-serve); every sweep
	// run acquires its engine workers from it.
	Pool *sweep.Budget
	// Context, if non-nil, cancels in-progress sweeps: dispatch stops,
	// in-flight runs drain, and Figure.Document returns the completed
	// prefix along with the context's error. Nil means Background.
	Context context.Context
	// Progress, if non-nil, is called after each sweep run completes.
	Progress func(done, total int, key string)
	// Warmups, if non-nil, is the warmup snapshot cache shared with other
	// work (other figures, other jobs in hornet-serve, or a -checkpoint-dir
	// disk tier): figures whose sweep items share a warmup prefix simulate
	// the prefix once and fork the rest from the cached snapshot. Nil means
	// a private in-memory cache per figure invocation (still warmup-once
	// within the figure). Like Parallel, this must not change a single
	// output byte — the snapshot round-trip contract guarantees it — so it
	// is excluded from config hashes.
	Warmups *sweep.SnapshotCache
	// NoWarmupReuse disables warmup snapshot reuse entirely (every item
	// re-simulates its warmup). Results are byte-identical either way;
	// the flag exists for benchmarking the reuse win and for debugging.
	NoWarmupReuse bool
	// Probe, if non-nil, is attached to every system the figure builds,
	// accumulating engine timing across sweep runs. Like Progress, it must
	// not change a single output byte, so it is excluded from config hashes.
	Probe *obs.SimProbe
}

// FullFromEnv reports whether HORNET_FULL requests paper-scale runs:
// any value except empty, "0" and "false" counts. cmd/hornet-exp and the
// benchmarks share this parse.
func FullFromEnv() bool {
	switch os.Getenv("HORNET_FULL") {
	case "", "0", "false":
		return false
	}
	return true
}

func (o *Options) fill() {
	if o.Seed == 0 {
		o.Seed = 0x5EED0A11
	}
	if o.Full {
		o.Tiny = false
	}
	if len(o.Workers) == 0 {
		max := runtime.GOMAXPROCS(0) * 2
		if max < 2 {
			max = 2
		}
		if o.Tiny && max > 4 {
			max = 4
		}
		for w := 1; w <= max; w++ {
			o.Workers = append(o.Workers, w)
		}
	}
}

// pick selects the scale variant of a parameter.
func (o *Options) pick(tiny, std, full uint64) uint64 {
	if o.Full {
		return full
	}
	if o.Tiny {
		return tiny
	}
	return std
}

// meshSide returns the synthetic-workload mesh dimension.
func (o *Options) meshSide() int {
	return int(o.pick(8, 16, 32)) // full: 1024 cores, paper scale
}

func (o *Options) synthCycles() uint64 {
	return o.pick(5_000, 20_000, 2_000_000)
}

func (o *Options) warmup() uint64 {
	return o.pick(500, 2_000, 200_000)
}

// splashCycles is the trace window for the SPLASH replay figures (8-11).
func (o *Options) splashCycles() uint64 {
	return o.pick(40_000, 120_000, 2_000_000)
}

// identity returns the fields that determine a figure's output — and
// nothing else: parallelism and callbacks must not change a single byte,
// so they are excluded from the config hash. The worker list only feeds
// Fig6a's sweep; hashing it elsewhere would make cache keys vary with
// the host's core count (fill defaults it from GOMAXPROCS).
func (o *Options) identity(includeWorkers bool) any {
	id := struct {
		Full    bool   `json:"full"`
		Tiny    bool   `json:"tiny"`
		Seed    uint64 `json:"seed"`
		Workers []int  `json:"workers,omitempty"`
	}{Full: o.Full, Tiny: o.Tiny, Seed: o.Seed}
	if includeWorkers {
		id.Workers = o.Workers
	}
	return id
}

// sweepConfig builds the engine configuration for this option set. Serial
// sweeps (wall-clock figures) force one run at a time.
func (o *Options) sweepConfig(serial bool) sweep.Config {
	workers := o.Parallel
	if serial {
		workers = 1
	}
	cfg := sweep.Config{Workers: workers, Budget: o.Budget, Pool: o.Pool, Seed: o.Seed}
	if o.Progress != nil {
		progress := o.Progress
		cfg.OnProgress = func(done, total int, r sweep.Result) {
			progress(done, total, r.Key)
		}
	}
	return cfg
}

// canceledSweep carries the completed prefix of a sweep whose context was
// cancelled. runSweep panics with it — unwinding past the figure's
// post-processing, which cannot run on partial results — and
// Figure.Run/Document recover it into a partial result set.
type canceledSweep struct {
	results []sweep.Result
	err     error
}

// runSweep executes items through the sweep engine, panicking on the
// first failed run: the experiments API treats configuration errors as
// programming errors, as the pre-sweep code did. Cancellation via
// Options.Context panics with canceledSweep (recovered by the Figure
// entry points).
func runSweep(o Options, serial bool, items []sweep.Item) []sweep.Result {
	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}
	results := sweep.Run(ctx, items, o.sweepConfig(serial))
	if err := ctx.Err(); err != nil {
		panic(canceledSweep{results: results, err: err})
	}
	for _, r := range results {
		if r.Err != nil {
			panic(fmt.Sprintf("experiments: %v", r.Err))
		}
	}
	return results
}

// collect unwraps typed rows from sweep results.
func collect[T any](results []sweep.Result) []T {
	rows, err := sweep.Collect[T](results)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return rows
}

// finalize overwrites each result's value with the post-processed row at
// the same index, so emitted documents carry the figure's final series
// (speedups and accuracies included) rather than raw intermediates.
func finalize[T any](results []sweep.Result, rows []T) []sweep.Result {
	for i := range rows {
		results[i].Value = rows[i]
	}
	return results
}

// ---------------------------------------------------------------------------
// Fig 6a: parallelization speedup vs worker count, cycle-accurate vs
// 5-cycle loose synchronization, for synthetic SHUFFLE traffic and the
// BLACKSCHOLES kernel on the MIPS frontend.

// Fig6aRow is one point of the speedup plot.
type Fig6aRow struct {
	Workload string
	SyncMode string // "cycle-accurate" or "5-cycle"
	Workers  int
	Wall     time.Duration
	Speedup  float64 // vs the same workload/mode at 1 worker
}

// Fig6a runs the speedup sweep. On hosts with few cores the wall-clock
// speedup saturates at the host parallelism — the paper's own point about
// die crossings applies at a smaller scale. The items execute serially
// (wall-clock is the measurement), one full workload/mode group at a time.
func Fig6a(o Options) []Fig6aRow {
	rows, _ := fig6a(o)
	return rows
}

func fig6a(o Options) ([]Fig6aRow, []sweep.Result) {
	o.fill()
	modes := []struct {
		name   string
		period int
	}{{"cycle-accurate", 1}, {"5-cycle", 5}}
	var items []sweep.Item
	for _, workload := range []string{"shuffle", "blackscholes"} {
		for _, mode := range modes {
			for _, w := range o.Workers {
				items = append(items, sweep.Item{
					Key:    fmt.Sprintf("fig6a/%s/%s/w%d", workload, mode.name, w),
					Weight: w,
					Run: func(ctx sweep.Ctx) (any, error) {
						// All worker counts of a workload/mode group share one
						// seed: the speedup curve must time identical work,
						// and the engine is deterministic across workers.
						seed := sweep.PairSeed(o.Seed, "fig6a", workload, mode.name)
						var wall time.Duration
						if workload == "shuffle" {
							wall = runShuffleOnce(o, w, mode.period, seed)
						} else {
							wall = runBlackScholesOnce(o, w, mode.period, seed)
						}
						return Fig6aRow{Workload: workload, SyncMode: mode.name, Workers: w, Wall: wall}, nil
					},
				})
			}
		}
	}
	results := runSweep(o, true, items)
	rows := collect[Fig6aRow](results)
	// Speedup baseline: the first worker count of each workload/mode group.
	base := time.Duration(0)
	for i := range rows {
		if i%len(o.Workers) == 0 {
			base = rows[i].Wall
		}
		rows[i].Speedup = float64(base) / float64(rows[i].Wall)
	}
	return rows, finalize(results, rows)
}

func runShuffleOnce(o Options, workers, period int, seed uint64) time.Duration {
	cfg := config.Default()
	side := o.meshSide()
	cfg.Topology.Width, cfg.Topology.Height = side, side
	cfg.Engine.Workers = workers
	cfg.Engine.SyncPeriod = period
	cfg.Engine.Seed = seed
	cfg.Traffic = []config.TrafficConfig{{Pattern: config.PatternShuffle, InjectionRate: 0.02}}
	sys := o.system(cfg)
	must(sys.AttachSyntheticTraffic())
	res := sys.Run(o.synthCycles())
	return res.Wall
}

func runBlackScholesOnce(o Options, workers, period int, seed uint64) time.Duration {
	side, opts := 4, 64
	if o.Tiny {
		side, opts = 2, 16
	}
	if o.Full {
		side, opts = 32, 256
	}
	cfg := config.Default()
	cfg.Topology.Width, cfg.Topology.Height = side, side
	cfg.Engine.Workers = workers
	cfg.Engine.SyncPeriod = period
	cfg.Engine.Seed = seed
	img := mustImage(workloads.BlackScholesSource(opts, 16))
	sys := o.system(cfg)
	nodes := allNodes(side * side)
	cores := sys.AttachMIPS(nodes, img)
	res := sys.RunUntil(50_000_000, sys.CoresHalted(cores))
	return res.Wall
}

// ---------------------------------------------------------------------------
// Fig 6b: accuracy and speedup vs synchronization period (transpose).

// Fig6bRow is one synchronization-period point.
type Fig6bRow struct {
	Period      int
	Wall        time.Duration
	Speedup     float64 // vs cycle-accurate
	AvgLatency  float64
	AccuracyPct float64 // 100 - |lat - lat_ca| / lat_ca * 100
}

// Fig6b sweeps the synchronization period on transpose traffic with four
// workers (the paper's "Transpose on 4 HT cores"). Items run serially:
// speedup is a wall-clock measurement.
func Fig6b(o Options) []Fig6bRow {
	rows, _ := fig6b(o)
	return rows
}

func fig6b(o Options) ([]Fig6bRow, []sweep.Result) {
	o.fill()
	periods := []int{1, 5, 10, 50, 100, 500, 1000}
	if o.Tiny {
		periods = []int{1, 5, 10, 100}
	}
	items := make([]sweep.Item, len(periods))
	for i, p := range periods {
		items[i] = sweep.Item{
			Key:    fmt.Sprintf("fig6b/period%d", p),
			Weight: 4,
			Run: func(ctx sweep.Ctx) (any, error) {
				cfg := config.Default()
				cfg.Topology.Width, cfg.Topology.Height = 8, 8
				cfg.Engine.Workers = 4
				cfg.Engine.SyncPeriod = p
				// Every period replays the same traffic: the accuracy metric
				// compares loose synchronization against the cycle-accurate
				// reference on an identical workload.
				cfg.Engine.Seed = sweep.PairSeed(o.Seed, "fig6b")
				cfg.Traffic = []config.TrafficConfig{{Pattern: config.PatternTranspose, InjectionRate: 0.05}}
				sys := o.system(cfg)
				must(sys.AttachSyntheticTraffic())
				sys.Run(o.warmup())
				sys.ResetStats()
				res := sys.Run(o.synthCycles())
				return Fig6bRow{Period: p, Wall: res.Wall, AvgLatency: sys.Summary().AvgPacketLatency}, nil
			},
		}
	}
	results := runSweep(o, true, items)
	rows := collect[Fig6bRow](results)
	refWall, refLat := rows[0].Wall, rows[0].AvgLatency
	for i := range rows {
		rows[i].Speedup = float64(refWall) / float64(rows[i].Wall)
		rows[i].AccuracyPct = stats.Accuracy(rows[i].AvgLatency, refLat)
	}
	rows[0].AccuracyPct = 100
	return rows, finalize(results, rows)
}

// ---------------------------------------------------------------------------
// Fig 7: fast-forwarding benefit on low-traffic workloads.

// Fig7Row is one fast-forward measurement.
type Fig7Row struct {
	Workload string
	FF       bool
	Workers  int
	Wall     time.Duration
	Skipped  uint64
	Speedup  float64 // vs no-FF at the same worker count
}

// Fig7 compares fast-forward on/off for bursty low-rate bit-complement
// (big wins: the network fully drains between coordinated bursts) and the
// H.264-decoder profile (little win: evenly spread packets keep the
// network from draining). Serial: the FF benefit is a wall-clock ratio.
func Fig7(o Options) []Fig7Row {
	rows, _ := fig7(o)
	return rows
}

func fig7(o Options) ([]Fig7Row, []sweep.Result) {
	o.fill()
	tcs := []config.TrafficConfig{
		{Pattern: config.PatternBitComplement, InjectionRate: 0.02, BurstLen: 200, BurstGap: 4000},
		{Pattern: config.PatternH264, InjectionRate: 0.002},
	}
	workerSet := []int{1, 2, 4}
	if o.Tiny {
		workerSet = []int{1, 2}
	}
	var items []sweep.Item
	for _, tc := range tcs {
		for _, w := range workerSet {
			for _, ff := range []bool{false, true} {
				items = append(items, sweep.Item{
					Key:    fmt.Sprintf("fig7/%s/w%d/ff=%v", tc.Pattern, w, ff),
					Weight: w,
					Run: func(ctx sweep.Ctx) (any, error) {
						cfg := config.Default()
						cfg.Topology.Width, cfg.Topology.Height = 8, 8
						cfg.Engine.Workers = w
						cfg.Engine.FastForward = ff
						cfg.Engine.Seed = sweep.PairSeed(o.Seed, "fig7", tc.Pattern, w)
						cfg.Traffic = []config.TrafficConfig{tc}
						sys := o.system(cfg)
						must(sys.AttachSyntheticTraffic())
						res := sys.Run(o.synthCycles() * 4)
						return Fig7Row{
							Workload: tc.Pattern, FF: ff, Workers: w,
							Wall: res.Wall, Skipped: res.SkippedCycles,
						}, nil
					},
				})
			}
		}
	}
	results := runSweep(o, true, items)
	rows := collect[Fig7Row](results)
	var noFF time.Duration
	for i := range rows {
		if !rows[i].FF {
			noFF = rows[i].Wall
		}
		rows[i].Speedup = float64(noFF) / float64(rows[i].Wall)
	}
	return rows, finalize(results, rows)
}

// ---------------------------------------------------------------------------
// Fig 12: trace-driven vs integrated core+network simulation of Cannon's
// matrix multiply.

// Fig12Result compares the two methodologies.
type Fig12Result struct {
	IdealCycles       uint64 // app runtime under the ideal 1-cycle network
	TraceReplayCycles uint64 // network time to replay the captured trace
	IntegratedCycles  uint64 // true core+network co-simulated runtime
	// Normalized to the integrated run (the paper's presentation).
	NormInjectionRateTrace float64
	NormExecTimeTrace      float64
	PacketsSent            uint64
}

// Fig12 runs Cannon's algorithm three ways: under an ideal single-cycle
// network (logging a trace), replaying that trace through the cycle-level
// network, and fully integrated (cores coupled to the network). The
// trace-based methodology injects unrealistically fast and finishes far
// too early because it lacks the core<->network feedback loop (§IV-D).
// The ideal run executes first (the replay consumes its trace); the
// replay and integrated runs then proceed as independent sweep items.
func Fig12(o Options) Fig12Result {
	r, _ := fig12(o)
	return r
}

func fig12(o Options) (Fig12Result, []sweep.Result) {
	o.fill()
	q, b := 4, 4
	if o.Tiny {
		q, b = 2, 4
	}
	if o.Full {
		q, b = 8, 16 // 64 cores, 128x128 matrix as in the paper
	}
	img := mustImage(workloads.CannonSource(q, b))

	// The MIPS runs are the longest single simulations in the suite;
	// weight them at the host width so each gets a full engine worker
	// complement (as the pre-sweep code did) rather than one slot.
	hostW := runtime.GOMAXPROCS(0)
	// The replay and integrated runs are a measurement pair: the figure's
	// ratios compare methodologies, so both must observe identical
	// arbitration/RNG streams.
	pairSeed := sweep.PairSeed(o.Seed, "fig12")
	idealResults := runSweep(o, false, []sweep.Item{{
		Key: "fig12/ideal",
		Run: func(ctx sweep.Ctx) (any, error) {
			return core.RunMIPSIdeal(q*q, img, 500_000_000), nil
		},
	}})
	ideal := idealResults[0].Value.(core.IdealMIPSResult)

	results := runSweep(o, false, []sweep.Item{
		{
			Key:    "fig12/replay",
			Weight: hostW,
			Run: func(ctx sweep.Ctx) (any, error) {
				cfg := config.Default()
				cfg.Topology.Width, cfg.Topology.Height = q, q
				cfg.Engine.Workers = ctx.Workers
				cfg.Engine.Seed = pairSeed
				sys := o.system(cfg)
				sys.AttachTrace(ideal.Trace)
				res := sys.RunUntil(500_000_000, func(uint64) bool { return sys.TraceDone() })
				return res.Cycles + res.SkippedCycles, nil
			},
		},
		{
			Key:    "fig12/integrated",
			Weight: hostW,
			Run: func(ctx sweep.Ctx) (any, error) {
				cfg := config.Default()
				cfg.Topology.Width, cfg.Topology.Height = q, q
				cfg.Engine.Workers = ctx.Workers
				cfg.Engine.Seed = pairSeed
				sys := o.system(cfg)
				cores := sys.AttachMIPS(allNodes(q*q), img)
				res := sys.RunUntil(500_000_000, sys.CoresHalted(cores))
				return res.Cycles + res.SkippedCycles, nil
			},
		},
	})
	replayCycles := results[0].Value.(uint64)
	intCycles := results[1].Value.(uint64)
	traceRate := float64(ideal.PacketsSent) / float64(replayCycles)
	intRate := float64(ideal.PacketsSent) / float64(intCycles)
	r := Fig12Result{
		IdealCycles:            ideal.Cycles,
		TraceReplayCycles:      replayCycles,
		IntegratedCycles:       intCycles,
		NormInjectionRateTrace: traceRate / intRate,
		NormExecTimeTrace:      float64(replayCycles) / float64(intCycles),
		PacketsSent:            ideal.PacketsSent,
	}
	// The ideal run's trace is too large to archive per document; record
	// only the scalar outcomes alongside the final result.
	idealResults[0].Value = ideal.Cycles
	all := append(idealResults, results...)
	all = append(all, sweep.Result{Index: len(all), Key: "fig12/result", Value: r})
	return r, all
}

// ---------------------------------------------------------------------------
// shared helpers

func mustSystem(cfg config.Config) *core.System {
	s, err := core.New(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return s
}

// system builds a run's simulation system, attaching the options probe
// when one is set. Every figure run goes through here so that a single
// probe observes the whole figure.
func (o *Options) system(cfg config.Config) *core.System {
	sys := mustSystem(cfg)
	if o.Probe != nil {
		sys.SetProbe(o.Probe)
	}
	return sys
}

func must(err error) {
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
}

func mustImage(src string) *mips.Image {
	img, err := mips.Assemble(src)
	if err != nil {
		panic(fmt.Sprintf("experiments: assemble: %v", err))
	}
	return img
}

func allNodes(n int) []noc.NodeID {
	out := make([]noc.NodeID, n)
	for i := range out {
		out[i] = noc.NodeID(i)
	}
	return out
}

// splashTrace builds a benchmark trace sized for an 8x8 (64-core) run,
// matching the paper's SPLASH methodology (64 application threads,
// x86 clock 10x the network clock folded into the profiles). The trace
// seed is the sweep master seed — never a per-run seed — so every
// configuration of a figure replays the identical trace.
func splashTrace(b splash.Benchmark, o Options, cycles uint64, intensity float64) *trace.Trace {
	tr, err := splash.Generate(b, splash.Params{
		Nodes:     64,
		Width:     8,
		Height:    8,
		Cycles:    cycles,
		Seed:      o.Seed,
		Intensity: intensity,
	})
	if err != nil {
		panic(err)
	}
	return tr
}

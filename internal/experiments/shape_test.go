package experiments

import "testing"

// The shape tests assert the qualitative results the paper reports, not
// absolute numbers (EXPERIMENTS.md records both).
//
// Under `go test -short` the experiments run at Tiny scale: the same
// simulations over shrunk measurement windows, keeping every qualitative
// assertion while finishing in a few seconds per figure. Full runs (the
// default) keep the paper-shape windows.

func testOpts(t *testing.T) Options {
	t.Helper()
	return Options{Tiny: testing.Short()}
}

// skipHeavyUnderShortRace exempts the heaviest SPLASH sweeps from the
// short race gate: race instrumentation is 10-30x on the replay hot
// loop, and these figures re-exercise exactly the replay-through-sweep
// path Fig8 already covers (the thermal figures even run single-worker
// engines, adding no concurrent surface at all). A full (non-short)
// race run still includes them.
func skipHeavyUnderShortRace(t *testing.T) {
	t.Helper()
	if raceEnabled && testing.Short() {
		t.Skip("heavy SPLASH sweep: race coverage comes from Fig8's identical path")
	}
}

func TestFig8Shape(t *testing.T) {
	rows := Fig8(testOpts(t))
	byName := map[string]Fig8Row{}
	for _, r := range rows {
		byName[r.Benchmark] = r
		t.Logf("%s: with=%.1f without=%.1f ratio=%.2f",
			r.Benchmark, r.WithCongestion, r.WithoutCongestion, r.Ratio)
	}
	radix, swap := byName["radix"], byName["swaptions"]
	if radix.Ratio < 1.5 {
		t.Errorf("radix congestion ratio %.2f, want >= 1.5 (paper ~2x)", radix.Ratio)
	}
	if swap.Ratio > radix.Ratio {
		t.Errorf("swaptions ratio %.2f exceeds radix %.2f; low-traffic should be mild",
			swap.Ratio, radix.Ratio)
	}
	if swap.Ratio < 0.95 {
		t.Errorf("swaptions ratio %.2f below 1: ideal model should not overestimate", swap.Ratio)
	}
}

func TestFig9Shape(t *testing.T) {
	skipHeavyUnderShortRace(t)
	rows := Fig9(testOpts(t))
	get := func(bench string, vcs, buf int, vca string) float64 {
		for _, r := range rows {
			if r.Benchmark == bench && r.VCs == vcs && r.BufFlits == buf && r.VCA == vca {
				return r.Latency
			}
		}
		t.Fatalf("missing row %s %dVCx%d %s", bench, vcs, buf, vca)
		return 0
	}
	for _, r := range rows {
		t.Logf("%s %dVCx%d %s: %.1f", r.Benchmark, r.VCs, r.BufFlits, r.VCA, r.Latency)
	}
	for _, bench := range []string{"radix"} {
		l2x8 := get(bench, 2, 8, "dynamic")
		l4x8 := get(bench, 4, 8, "dynamic")
		l4x4 := get(bench, 4, 4, "dynamic")
		if l4x8 <= l2x8 {
			t.Errorf("%s: 4VCx8 (%.1f) should exceed 2VCx8 (%.1f) under congestion", bench, l4x8, l2x8)
		}
		if l4x4 >= l4x8 {
			t.Errorf("%s: 4VCx4 (%.1f) should beat 4VCx8 (%.1f)", bench, l4x4, l4x8)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	skipHeavyUnderShortRace(t)
	rows := Fig10(testOpts(t))
	get := func(alg, vca string, vcs int) float64 {
		for _, r := range rows {
			if r.Routing == alg && r.VCA == vca && r.VCs == vcs {
				return r.Latency
			}
		}
		t.Fatalf("missing row %s/%s %dVC", alg, vca, vcs)
		return 0
	}
	for _, r := range rows {
		t.Logf("%s/%s %dVC: %.1f", r.Routing, r.VCA, r.VCs, r.Latency)
	}
	// Path-diverse algorithms should not lose badly to XY; the paper
	// shows them winning by a modest margin.
	xy := get("xy", "dynamic", 4)
	o1 := get("o1turn", "dynamic", 4)
	romm := get("romm", "dynamic", 4)
	if o1 > xy*1.25 || romm > xy*1.25 {
		t.Errorf("diverse routing much worse than XY: xy=%.1f o1turn=%.1f romm=%.1f", xy, o1, romm)
	}
}

func TestFig11Shape(t *testing.T) {
	skipHeavyUnderShortRace(t)
	rows := Fig11(testOpts(t))
	var lat1, lat5 []float64
	for _, r := range rows {
		t.Logf("%dMC %s/%s: %.1f", r.Controllers, r.Routing, r.VCA, r.Latency)
		if r.Controllers == 1 {
			lat1 = append(lat1, r.Latency)
		} else {
			lat5 = append(lat5, r.Latency)
		}
	}
	m1, m5 := mean(lat1), mean(lat5)
	if m5 >= m1 {
		t.Errorf("5 MC (%.1f) should beat 1 MC (%.1f)", m5, m1)
	}
	if m1/m5 >= 5 {
		t.Errorf("improvement %.1fx should be well below 5x (paper's point)", m1/m5)
	}
	// Routing choice matters less with 5 MCs: relative spread shrinks.
	if spread(lat5)/m5 > spread(lat1)/m1+0.35 {
		t.Errorf("routing spread with 5 MC (%.2f) should not exceed 1 MC (%.2f) much",
			spread(lat5)/m5, spread(lat1)/m1)
	}
}

func TestFig13Shape(t *testing.T) {
	skipHeavyUnderShortRace(t)
	series := Fig13(testOpts(t))
	var ocean, radix Fig13Series
	for _, s := range series {
		t.Logf("%s: %d epochs, swing=%.2fC", s.Benchmark, len(s.Cycle), s.SwingC)
		switch s.Benchmark {
		case "ocean":
			ocean = s
		case "radix":
			radix = s
		}
	}
	if len(ocean.Cycle) == 0 || len(radix.Cycle) == 0 {
		t.Fatal("missing series")
	}
	if radix.SwingC <= ocean.SwingC {
		t.Errorf("radix swing (%.2fC) should exceed ocean swing (%.2fC)", radix.SwingC, ocean.SwingC)
	}
}

func TestFig14Shape(t *testing.T) {
	skipHeavyUnderShortRace(t)
	maps := Fig14(testOpts(t))
	for _, m := range maps {
		t.Logf("%s: hotspot at (%d,%d) %.2fC, corner MC %.2fC",
			m.Benchmark, m.HotX, m.HotY, m.MaxTempC, m.CornerMCTempC)
		if m.HotX == 0 && m.HotY == 0 {
			t.Errorf("%s: hotspot at the MC corner; expected interior", m.Benchmark)
		}
		if m.HotX < 1 || m.HotX > 6 || m.HotY < 1 || m.HotY > 6 {
			t.Errorf("%s: hotspot (%d,%d) not interior", m.Benchmark, m.HotX, m.HotY)
		}
		if m.MaxTempC <= m.CornerMCTempC {
			t.Errorf("%s: centre (%.2f) not hotter than MC corner (%.2f)",
				m.Benchmark, m.MaxTempC, m.CornerMCTempC)
		}
	}
}

func TestFig12Shape(t *testing.T) {
	r := Fig12(testOpts(t))
	t.Logf("ideal=%d replay=%d integrated=%d normRate=%.2f normTime=%.2f",
		r.IdealCycles, r.TraceReplayCycles, r.IntegratedCycles,
		r.NormInjectionRateTrace, r.NormExecTimeTrace)
	if r.NormExecTimeTrace >= 1 {
		t.Errorf("trace-based execution time (%.2f) should be < 1x integrated", r.NormExecTimeTrace)
	}
	if r.NormInjectionRateTrace <= 1 {
		t.Errorf("trace-based injection rate (%.2f) should exceed integrated", r.NormInjectionRateTrace)
	}
}

func TestSec4aLaw(t *testing.T) {
	r := Sec4a(testOpts(t))
	t.Logf("max flows: 8x8=%d (law %d), 32x32=%d (law %d); starved %d/%d",
		r.MaxFlows8, r.Law8, r.MaxFlows32, r.Law32, r.StarvedFlows, r.TotalFlows)
	if r.MaxFlows8 != r.Law8 {
		t.Errorf("8x8 max link flows %d != n^3/4 = %d", r.MaxFlows8, r.Law8)
	}
	if r.MaxFlows32 != r.Law32 {
		t.Errorf("32x32 max link flows %d != n^3/4 = %d", r.MaxFlows32, r.Law32)
	}
}

func TestFig6bShape(t *testing.T) {
	rows := Fig6b(testOpts(t))
	for _, r := range rows {
		t.Logf("period %4d: speedup=%.2f accuracy=%.1f%% latency=%.2f",
			r.Period, r.Speedup, r.AccuracyPct, r.AvgLatency)
	}
	if rows[0].Period != 1 || rows[0].AccuracyPct != 100 {
		t.Fatalf("cycle-accurate row malformed: %+v", rows[0])
	}
	// Loose sync at small periods should stay very accurate.
	for _, r := range rows {
		if r.Period <= 100 && r.AccuracyPct < 90 {
			t.Errorf("period %d accuracy %.1f%% below 90%%", r.Period, r.AccuracyPct)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	rows := Fig7(testOpts(t))
	var burstGain, cbrGain float64
	for _, r := range rows {
		t.Logf("%s ff=%v workers=%d: wall=%v skipped=%d speedup=%.2f",
			r.Workload, r.FF, r.Workers, r.Wall, r.Skipped, r.Speedup)
		if r.FF && r.Workers == 1 {
			switch r.Workload {
			case "bitcomp":
				burstGain = r.Speedup
			case "h264":
				cbrGain = r.Speedup
			}
		}
	}
	if burstGain < cbrGain {
		t.Errorf("bursty bit-complement FF speedup (%.2f) should exceed h264 (%.2f)",
			burstGain, cbrGain)
	}
	if burstGain < 1.2 {
		t.Errorf("bursty FF speedup %.2f too small", burstGain)
	}
}

func TestTableISmoke(t *testing.T) {
	rows := TableI(testOpts(t))
	if len(rows) < 4 {
		t.Fatalf("only %d Table I combinations ran", len(rows))
	}
	for _, r := range rows {
		t.Log(r)
	}
}

func mean(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

func spread(v []float64) float64 {
	lo, hi := v[0], v[0]
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return hi - lo
}

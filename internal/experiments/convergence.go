package experiments

import (
	"fmt"

	"hornet/internal/config"
	"hornet/internal/core"
	"hornet/internal/sweep"
)

// ---------------------------------------------------------------------------
// conv: measurement-window convergence, the warmup-once/fork-many
// showcase. Every item measures the same warmed-up network over a
// different window length, answering "how long must the measured phase
// be before latency statistics stabilize?" (the paper's Table I fixes
// 2M cycles; this experiment shows what that buys). All items share one
// warmup prefix — identical configuration and seed, differing only in
// the measured-phase knob — so the sweep simulates the warmup once,
// snapshots it, and forks every window from the snapshot. The emitted
// document is byte-identical with reuse on or off (the snapshot
// round-trip contract), at any parallelism.

// ConvRow is one measurement-window point.
type ConvRow struct {
	Window           uint64  // measured cycles
	AvgPacketLatency float64 // over the window
	Throughput       float64 // delivered flits / node / cycle
	DeltaPct         float64 // |lat - lat_longest| / lat_longest * 100
}

// Convergence runs the measurement-window convergence sweep.
func Convergence(o Options) []ConvRow {
	rows, _ := convergence(o)
	return rows
}

// convConfig is the shared simulation configuration: one network, one
// seed, warmed once. AnalyzedCycles is zeroed because the windows are
// driven explicitly — every fork must build a system with the identical
// config hash or the snapshot guard would (correctly) refuse to restore.
func convConfig(o Options, seed uint64) (config.Config, uint64) {
	cfg := config.Default()
	cfg.Topology.Width, cfg.Topology.Height = 8, 8
	cfg.Engine.Seed = seed
	cfg.Traffic = []config.TrafficConfig{{Pattern: config.PatternTranspose, InjectionRate: 0.05}}
	cfg.WarmupCycles = int(o.pick(4_000, 30_000, 200_000))
	cfg.AnalyzedCycles = 0
	return cfg, uint64(cfg.WarmupCycles)
}

// convWindows returns the ascending measured-window lengths. The sum
// stays well under figures × warmup so the sweep is warmup-dominated —
// the regime the warmup-once/fork-many machinery exists for.
func convWindows(o Options) []uint64 {
	base := o.pick(250, 500, 25_000)
	mult := []uint64{1, 2, 4, 8}
	if !o.Tiny {
		mult = append(mult, 16, 32)
	}
	out := make([]uint64, len(mult))
	for i, m := range mult {
		out[i] = base * m
	}
	return out
}

func convergence(o Options) ([]ConvRow, []sweep.Result) {
	o.fill()
	if o.Warmups == nil && !o.NoWarmupReuse {
		// No shared cache supplied: a private in-memory one still makes
		// this figure's items share their warmup prefix.
		o.Warmups = sweep.NewSnapshotCache("")
	}
	// One seed for the whole group: the windows measure the same warmed
	// network, so they must observe identical stochastic inputs.
	seed := sweep.PairSeed(o.Seed, "conv")
	windows := convWindows(o)
	items := make([]sweep.Item, len(windows))
	for i, win := range windows {
		win := win
		items[i] = sweep.Item{
			Key: fmt.Sprintf("conv/window%d", win),
			// Explicit shared seed: every window measures the same warmed
			// network, and the document's per-run seed records it.
			Seed: seed,
			Run: func(c sweep.Ctx) (any, error) {
				cfg, warmup := convConfig(o, c.Seed)
				cfg.Engine.Workers = c.Workers
				sys, err := warmedSystem(o, c, cfg, warmup)
				if err != nil {
					return nil, err
				}
				sys.ResetStats()
				res := sys.Run(win)
				s := sys.Summary()
				return ConvRow{
					Window:           win,
					AvgPacketLatency: s.AvgPacketLatency,
					Throughput:       s.Throughput(cfg.Topology.Nodes(), res.Cycles+res.SkippedCycles),
				}, nil
			},
		}
	}
	results := runSweep(o, false, items)
	rows := collect[ConvRow](results)
	ref := rows[len(rows)-1].AvgPacketLatency
	for i := range rows {
		rows[i].DeltaPct = 0
		if ref > 0 {
			d := (rows[i].AvgPacketLatency - ref) / ref * 100
			if d < 0 {
				d = -d
			}
			rows[i].DeltaPct = d
		}
	}
	return rows, finalize(results, rows)
}

// warmedSystem returns a system advanced past its warmup via
// core.WarmedSystem: restored from the warmup snapshot cache when reuse
// is enabled (simulating the prefix only once per (config, seed,
// warmup) group), or by simulating the warmup directly.
func warmedSystem(o Options, c sweep.Ctx, cfg config.Config, warmupCycles uint64) (*core.System, error) {
	warm := o.Warmups
	if o.NoWarmupReuse {
		warm = nil
	}
	return core.WarmedSystem(c.Context, warm, cfg, warmupCycles, nil, func() (*core.System, error) {
		sys, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		if err := sys.AttachSyntheticTraffic(); err != nil {
			return nil, err
		}
		return sys, nil
	})
}

package experiments

import (
	"bytes"
	"testing"

	"hornet/internal/sweep"
)

func convDocBytes(t *testing.T, o Options) []byte {
	t.Helper()
	f, ok := FigureByName("conv")
	if !ok {
		t.Fatal("conv figure not registered")
	}
	_, doc, err := f.Document(o)
	if err != nil {
		t.Fatalf("conv document: %v", err)
	}
	var buf bytes.Buffer
	if err := doc.WriteJSON(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

// TestConvergenceWarmupOnce: the figure's items share one warmup
// prefix, so with reuse enabled the warmup simulates exactly once and
// every other item restores from the snapshot.
func TestConvergenceWarmupOnce(t *testing.T) {
	warm := sweep.NewSnapshotCache("")
	o := Options{Tiny: true, Seed: 7, Warmups: warm}
	rows := Convergence(o)
	if len(rows) < 3 {
		t.Fatalf("conv returned %d rows", len(rows))
	}
	if got := warm.Misses(); got != 1 {
		t.Errorf("warmup simulated %d times, want exactly 1", got)
	}
	if got := warm.Hits(); got != uint64(len(rows)-1) {
		t.Errorf("warmup cache hits = %d, want %d", got, len(rows)-1)
	}
	// Longer windows must keep converging toward the reference.
	if rows[len(rows)-1].DeltaPct != 0 {
		t.Errorf("longest window delta = %v, want 0", rows[len(rows)-1].DeltaPct)
	}
}

// TestConvergenceBytesStable: warmup-snapshot reuse and sweep
// parallelism must not change one byte of the emitted document — the
// round-trip contract, end to end.
func TestConvergenceBytesStable(t *testing.T) {
	base := convDocBytes(t, Options{Tiny: true, Seed: 7})
	noReuse := convDocBytes(t, Options{Tiny: true, Seed: 7, NoWarmupReuse: true})
	if !bytes.Equal(base, noReuse) {
		t.Errorf("document differs with warmup reuse disabled:\nreuse: %s\ndirect: %s", base, noReuse)
	}
	parallel := convDocBytes(t, Options{Tiny: true, Seed: 7, Parallel: 4})
	if !bytes.Equal(base, parallel) {
		t.Errorf("document differs at parallel=4")
	}
	disk := convDocBytes(t, Options{Tiny: true, Seed: 7,
		Warmups: sweep.NewSnapshotCache(t.TempDir())})
	if !bytes.Equal(base, disk) {
		t.Errorf("document differs with a disk-tier warmup cache")
	}
}

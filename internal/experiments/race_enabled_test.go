//go:build race

package experiments

// raceEnabled reports that this test binary was built with the race
// detector; the heaviest sweeps shrink their scope under -short -race.
const raceEnabled = true

package experiments

import (
	"fmt"
	"strings"

	"hornet/internal/sweep"
)

// Figure is one runnable experiment: a name, a human title, and the
// sweep-backed runner. Serial figures measure wall-clock time and ignore
// Options.Parallel.
type Figure struct {
	Name   string
	Title  string
	Serial bool
	// usesWorkers marks the one figure (6a) whose output depends on
	// Options.Workers; only then does the worker list enter the cache key.
	usesWorkers bool
	run         func(o Options) (any, []sweep.Result)
}

// Run executes the figure, returning its typed rows (the same value the
// corresponding exported FigNN function returns) plus the per-run sweep
// records for emission. If Options.Context is cancelled mid-figure, Run
// returns nil rows and only the completed runs of the in-flight sweep
// (post-processing needs the full set).
func (f Figure) Run(o Options) (any, []sweep.Result) {
	rows, results, _ := f.runRecover(o)
	return rows, results
}

// runRecover invokes the figure's runner, converting a sweep cancelled
// via Options.Context into (nil rows, completed prefix, ctx error).
func (f Figure) runRecover(o Options) (rows any, results []sweep.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			cs, ok := p.(canceledSweep)
			if !ok {
				panic(p)
			}
			rows, results, err = nil, cs.results, cs.err
		}
	}()
	rows, results = f.run(o)
	return rows, results, nil
}

// ConfigHash returns the figure's document cache key at the given
// options without running the sweep: a stable hash over the figure name
// and every option that can change the output (scale, seed, worker
// list) — and nothing else, so parallelism does not shift the key.
func (f Figure) ConfigHash(o Options) string {
	(&o).fill()
	return sweep.ConfigHash(f.Name, o.identity(f.usesWorkers))
}

// Document executes the figure and packages the per-run records into the
// stable JSON envelope: for a fixed (name, options identity, seed) the
// document is byte-identical at any Parallel/Budget setting. Timing
// figures are the exception — their rows carry wall-clock fields.
//
// If Options.Context is cancelled mid-figure, Document returns a partial
// document holding the completed runs of the sweep that was in flight
// (multi-sweep figures drop earlier sweeps' runs), along with the
// context's error; partial documents must not be cached under the
// figure's hash.
func (f Figure) Document(o Options) (any, sweep.Document, error) {
	(&o).fill()
	rows, results, err := f.runRecover(o)
	return rows, sweep.NewDocument(f.Name, f.ConfigHash(o), o.Seed, results), err
}

// Figures lists every experiment in presentation order.
func Figures() []Figure {
	return []Figure{
		{Name: "t1", Title: "Table I: configuration matrix smoke",
			run: func(o Options) (any, []sweep.Result) { return anyRows(tableI(o)) }},
		{Name: "4a", Title: "§IV-A: worst-link flow count and starvation",
			run: func(o Options) (any, []sweep.Result) { r, res := sec4a(o); return r, res }},
		{Name: "6a", Title: "Fig 6a: parallel speedup vs workers", Serial: true, usesWorkers: true,
			run: func(o Options) (any, []sweep.Result) { return anyRows(fig6a(o)) }},
		{Name: "6b", Title: "Fig 6b: speedup & accuracy vs sync period", Serial: true,
			run: func(o Options) (any, []sweep.Result) { return anyRows(fig6b(o)) }},
		{Name: "7", Title: "Fig 7: fast-forwarding benefit", Serial: true,
			run: func(o Options) (any, []sweep.Result) { return anyRows(fig7(o)) }},
		{Name: "8", Title: "Fig 8: congestion effect on flit latency",
			run: func(o Options) (any, []sweep.Result) { return anyRows(fig8(o)) }},
		{Name: "9", Title: "Fig 9: VC configuration vs in-network latency",
			run: func(o Options) (any, []sweep.Result) { return anyRows(fig9(o)) }},
		{Name: "10", Title: "Fig 10: routing x VCA on WATER",
			run: func(o Options) (any, []sweep.Result) { return anyRows(fig10(o)) }},
		{Name: "11", Title: "Fig 11: memory controllers vs latency (RADIX)",
			run: func(o Options) (any, []sweep.Result) { return anyRows(fig11(o)) }},
		{Name: "12", Title: "Fig 12: trace-based vs integrated simulation (Cannon)",
			run: func(o Options) (any, []sweep.Result) { r, res := fig12(o); return r, res }},
		{Name: "13", Title: "Fig 13: temperature over time",
			run: func(o Options) (any, []sweep.Result) { return anyRows(fig13(o)) }},
		{Name: "14", Title: "Fig 14: steady-state temperature maps",
			run: func(o Options) (any, []sweep.Result) { return anyRows(fig14(o)) }},
		{Name: "conv", Title: "Measurement-window convergence (warmup-once/fork-many)",
			run: func(o Options) (any, []sweep.Result) { return anyRows(convergence(o)) }},
	}
}

func anyRows[T any](rows []T, results []sweep.Result) (any, []sweep.Result) {
	return rows, results
}

// FigureByName resolves a figure by name, tolerating a "fig" prefix and
// case ("Fig8", "fig6a", "8" all name Fig 8).
func FigureByName(name string) (Figure, bool) {
	n := strings.ToLower(strings.TrimSpace(name))
	n = strings.TrimPrefix(n, "fig")
	n = strings.TrimPrefix(n, "table")
	for _, f := range Figures() {
		if f.Name == n {
			return f, true
		}
	}
	return Figure{}, false
}

// FigureNames returns the names in presentation order.
func FigureNames() []string {
	var out []string
	for _, f := range Figures() {
		out = append(out, f.Name)
	}
	return out
}

// ParseFigureList resolves a comma-separated figure list ("8,9,t1").
func ParseFigureList(s string) ([]Figure, error) {
	var out []Figure
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		f, ok := FigureByName(tok)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown figure %q (have %s)",
				tok, strings.Join(FigureNames(), " "))
		}
		out = append(out, f)
	}
	return out, nil
}

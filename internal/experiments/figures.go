package experiments

import (
	"fmt"

	"hornet/internal/config"
	"hornet/internal/core"
	"hornet/internal/noc"
	"hornet/internal/splash"
	"hornet/internal/sweep"
	"hornet/internal/thermal"
)

// ---------------------------------------------------------------------------
// Fig 8: the effect of congestion modeling on measured flit latency.

// Fig8Row compares congestion-accurate and congestion-oblivious latency
// for one benchmark.
type Fig8Row struct {
	Benchmark         string
	WithCongestion    float64 // cycle-level simulation
	WithoutCongestion float64 // hop-count latency model
	Ratio             float64
}

// Fig8 runs RADIX (high traffic) and SWAPTIONS (low traffic) traces on a
// 64-core 8x8 mesh with 4 VCs and measures average flit latency under the
// cycle-accurate model versus the congestion-oblivious hop-count model.
func Fig8(o Options) []Fig8Row {
	rows, _ := fig8(o)
	return rows
}

func fig8(o Options) ([]Fig8Row, []sweep.Result) {
	o.fill()
	cycles := o.splashCycles()
	var items []sweep.Item
	for _, b := range []splash.Benchmark{splash.Radix, splash.Swaptions} {
		items = append(items, sweep.Item{
			Key: fmt.Sprintf("fig8/%s", b),
			Run: func(ctx sweep.Ctx) (any, error) {
				tr := splashTrace(b, o, cycles, 1.0)
				sys := splashSystem(o, config.RouteXY, config.VCADynamic, 4, 8, ctx)
				sys.AttachTrace(tr)
				sys.RunUntil(cycles*20, func(uint64) bool { return sys.TraceDone() })
				measured := sys.Summary().AvgFlitLatency
				ideal := core.IdealTrace(sys.Topo, tr).AvgFlitLatency
				return Fig8Row{
					Benchmark:         string(b),
					WithCongestion:    measured,
					WithoutCongestion: ideal,
					Ratio:             measured / ideal,
				}, nil
			},
		})
	}
	results := runSweep(o, false, items)
	return collect[Fig8Row](results), results
}

// ---------------------------------------------------------------------------
// Fig 9: VC count / buffer size tradeoffs under congestion.

// Fig9Row is one (benchmark, VC configuration, VCA policy) latency.
type Fig9Row struct {
	Benchmark string
	VCs       int
	BufFlits  int
	VCA       string
	Latency   float64
}

// Fig9 reproduces the counterintuitive buffer-space result: with VC size
// held at 8 flits, going from 2 to 4 VCs *increases* in-network latency
// under congestion (total buffering doubles and tail flits wait behind
// more competitors); halving VC size to keep total buffer space constant
// (4VCx4) beats 2VCx8.
func Fig9(o Options) []Fig9Row {
	rows, _ := fig9(o)
	return rows
}

func fig9(o Options) ([]Fig9Row, []sweep.Result) {
	o.fill()
	cycles := o.splashCycles()
	configs := []struct{ vcs, buf int }{{2, 8}, {4, 8}, {4, 4}}
	var items []sweep.Item
	for _, b := range []splash.Benchmark{splash.Swaptions, splash.Radix} {
		// Calibrated so both benchmarks run congested, as in the paper's
		// Fig 9 (the 10x clock compression makes even SWAPTIONS heavy).
		intensity := 2.0
		if b == splash.Swaptions {
			intensity = 12.0
		}
		// One trace per benchmark, shared by all six configurations:
		// injectors copy events, so concurrent runs replay it safely.
		tr := splashTrace(b, o, cycles, intensity)
		for _, cc := range configs {
			for _, vcaPolicy := range []string{config.VCADynamic, config.VCAEDVCA} {
				items = append(items, sweep.Item{
					Key: fmt.Sprintf("fig9/%s/%dVCx%d/%s", b, cc.vcs, cc.buf, vcaPolicy),
					Run: func(ctx sweep.Ctx) (any, error) {
						sys := splashSystem(o, config.RouteXY, vcaPolicy, cc.vcs, cc.buf, ctx)
						sys.AttachTrace(tr)
						sys.RunUntil(cycles*20, func(uint64) bool { return sys.TraceDone() })
						return Fig9Row{
							Benchmark: string(b),
							VCs:       cc.vcs,
							BufFlits:  cc.buf,
							VCA:       vcaPolicy,
							Latency:   sys.Summary().AvgPacketLatency,
						}, nil
					},
				})
			}
		}
	}
	results := runSweep(o, false, items)
	return collect[Fig9Row](results), results
}

// ---------------------------------------------------------------------------
// Fig 10: routing x VCA on the WATER benchmark.

// Fig10Row is one (routing, VCA, VC count) latency on WATER.
type Fig10Row struct {
	Routing string
	VCA     string
	VCs     int
	Latency float64
}

// Fig10 measures in-network latency on a congested WATER trace for
// XY/O1TURN/ROMM x dynamic/EDVCA at 2 and 4 VCs: path-diverse algorithms
// win, but by an unimpressive margin (§IV-C).
func Fig10(o Options) []Fig10Row {
	rows, _ := fig10(o)
	return rows
}

func fig10(o Options) ([]Fig10Row, []sweep.Result) {
	o.fill()
	cycles := o.splashCycles()
	// All twelve configurations replay one shared WATER trace.
	tr := splashTrace(splash.Water, o, cycles, 8.0)
	var items []sweep.Item
	for _, vcs := range []int{2, 4} {
		for _, alg := range []string{config.RouteXY, config.RouteO1Turn, config.RouteROMM} {
			for _, vcaPolicy := range []string{config.VCADynamic, config.VCAEDVCA} {
				items = append(items, sweep.Item{
					Key: fmt.Sprintf("fig10/%s/%s/%dVC", alg, vcaPolicy, vcs),
					Run: func(ctx sweep.Ctx) (any, error) {
						sys := splashSystem(o, alg, vcaPolicy, vcs, 8, ctx)
						sys.AttachTrace(tr)
						sys.RunUntil(cycles*20, func(uint64) bool { return sys.TraceDone() })
						return Fig10Row{
							Routing: alg,
							VCA:     vcaPolicy,
							VCs:     vcs,
							Latency: sys.Summary().AvgPacketLatency,
						}, nil
					},
				})
			}
		}
	}
	results := runSweep(o, false, items)
	return collect[Fig10Row](results), results
}

// ---------------------------------------------------------------------------
// Fig 11: memory-controller count.

// Fig11Row is one (controllers, routing, VCA) latency on RADIX memory
// traffic.
type Fig11Row struct {
	Controllers int
	Routing     string
	VCA         string
	Latency     float64
}

// Fig11 redirects the RADIX profile at memory controllers: one in the
// lower-left corner versus five spread over the die. Five controllers
// help a lot — but nowhere near five-fold — and routing/VCA choice stops
// mattering once congestion is spread (§IV-C).
func Fig11(o Options) []Fig11Row {
	rows, _ := fig11(o)
	return rows
}

func fig11(o Options) ([]Fig11Row, []sweep.Result) {
	o.fill()
	cycles := o.splashCycles()
	mcSets := []struct {
		n     int
		nodes []noc.NodeID
	}{
		{1, []noc.NodeID{0}},                // lower-left corner
		{5, []noc.NodeID{0, 7, 56, 63, 27}}, // corners + center
	}
	var items []sweep.Item
	for _, mcs := range mcSets {
		// One memory trace per controller placement, shared by the six
		// routing/VCA configurations.
		tr, err := splash.GenerateMemory(splash.Radix, splash.Params{
			Nodes: 64, Width: 8, Height: 8, Cycles: cycles,
			Seed: o.Seed, Intensity: 0.5,
		}, mcs.nodes)
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		for _, alg := range []string{config.RouteXY, config.RouteO1Turn, config.RouteROMM} {
			for _, vcaPolicy := range []string{config.VCADynamic, config.VCAEDVCA} {
				items = append(items, sweep.Item{
					Key: fmt.Sprintf("fig11/%dMC/%s/%s", mcs.n, alg, vcaPolicy),
					Run: func(ctx sweep.Ctx) (any, error) {
						sys := splashSystem(o, alg, vcaPolicy, 4, 8, ctx)
						sys.AttachTrace(tr)
						sys.AttachTraceControllers(mcs.nodes, 50, 8)
						sys.RunUntil(cycles*40, func(uint64) bool {
							return sys.TraceDone() && sys.InFlight() == 0
						})
						return Fig11Row{
							Controllers: mcs.n,
							Routing:     alg,
							VCA:         vcaPolicy,
							Latency:     sys.Summary().AvgPacketLatency,
						}, nil
					},
				})
			}
		}
	}
	results := runSweep(o, false, items)
	return collect[Fig11Row](results), results
}

// ---------------------------------------------------------------------------
// Fig 13: transient temperature traces.

// Fig13Series is one benchmark's temperature-versus-time trace.
type Fig13Series struct {
	Benchmark string
	Cycle     []uint64
	MaxTempC  []float64
	MeanTempC []float64
	// SwingC is max(MaxTempC) - min(MaxTempC) after warm-in: the
	// activity-dependent variation the paper highlights for RADIX.
	SwingC float64
}

// Fig13 runs OCEAN (steady stencil) and RADIX (phased bursts) and feeds
// the per-epoch tile power into the RC thermal grid: OCEAN's trace is
// flat while RADIX swings with its exchange phases (§IV-E). The scaled
// runs shrink the thermal capacitance so the die's time constant matches
// the shortened simulation window (the full-scale run uses the realistic
// constant over 16M cycles, as the paper does).
func Fig13(o Options) []Fig13Series {
	rows, _ := fig13(o)
	return rows
}

func fig13(o Options) ([]Fig13Series, []sweep.Result) {
	o.fill()
	cycles := o.pick(120_000, 400_000, 16_000_000)
	var items []sweep.Item
	for _, b := range []splash.Benchmark{splash.Ocean, splash.Radix} {
		items = append(items, sweep.Item{
			Key: fmt.Sprintf("fig13/%s", b),
			Run: func(ctx sweep.Ctx) (any, error) {
				tr := splashTrace(b, o, cycles, 1.0)
				sys := splashSystemFF(o, config.RouteXY, config.VCADynamic, 4, 8, false, ctx)
				sys.AttachTrace(tr)
				sys.RunUntil(cycles*4, func(c uint64) bool { return c >= cycles && sys.TraceDone() })

				tcfg := sys.Config.Thermal
				if !o.Full {
					tcfg.CJPerK = 2e-6 // slowest RC mode ~ 16us so 40us RADIX phases register
				}
				grid, err := thermal.NewGrid(8, 8, tcfg)
				if err != nil {
					return nil, err
				}
				epochSec := sys.Power.EpochSeconds()
				series := Fig13Series{Benchmark: string(b)}
				epochs := sys.Power.Epochs()
				// Normalize activity across the run so the power amplitude
				// lands in the paper's band while the temporal/spatial shape
				// is the measured one.
				peak := 0.0
				for e := 0; e < epochs; e++ {
					for _, w := range sys.Power.EpochPower(e) {
						if w > peak {
							peak = w
						}
					}
				}
				for e := 0; e < epochs; e++ {
					grid.Step(normalizePower(sys.Power.EpochPower(e), peak), epochSec)
					maxT, _ := grid.Max()
					series.Cycle = append(series.Cycle, uint64(e+1)*sys.Power.EpochCycles())
					series.MaxTempC = append(series.MaxTempC, maxT)
					series.MeanTempC = append(series.MeanTempC, grid.Mean())
				}
				// Swing after the first quarter (thermal warm-in).
				lo, hi := 1e9, -1e9
				for _, t := range series.MaxTempC[len(series.MaxTempC)/4:] {
					if t < lo {
						lo = t
					}
					if t > hi {
						hi = t
					}
				}
				series.SwingC = hi - lo
				return series, nil
			},
		})
	}
	results := runSweep(o, false, items)
	return collect[Fig13Series](results), results
}

// normalizePower maps measured per-tile NoC activity onto a tile power
// budget: 1 W static (core, caches, clock) plus up to 1.5 W of
// activity-proportional network/switch power. Absolute magnitudes are a
// documented calibration (we model a NoC, not ORION's exact circuits);
// the spatial and temporal distribution is the simulator's measurement.
func normalizePower(nocW []float64, peakW float64) []float64 {
	out := make([]float64, len(nocW))
	for i, w := range nocW {
		rel := 0.0
		if peakW > 0 {
			rel = w / peakW
		}
		out[i] = 1.0 + 1.5*rel
	}
	return out
}

// ---------------------------------------------------------------------------
// Fig 14: steady-state temperature maps.

// Fig14Map is one benchmark's steady-state per-tile temperatures.
type Fig14Map struct {
	Benchmark string
	Width     int
	TempsC    []float64
	MaxTempC  float64
	HotX      int
	HotY      int
	// CornerMCTempC is the temperature at the memory controller's corner
	// (0,0) — cooler than the centre despite hosting the MC (§IV-E).
	CornerMCTempC float64
}

// Fig14 computes steady-state temperature maps for RADIX and WATER with
// XY routing and one corner memory controller: the benchmark's
// node-to-node traffic dominates and XY concentrates it through the mesh
// centre, so the hotspot sits there, not at the controller (§IV-E) —
// the paper's argument for central thermal-sensor placement.
func Fig14(o Options) []Fig14Map {
	rows, _ := fig14(o)
	return rows
}

func fig14(o Options) ([]Fig14Map, []sweep.Result) {
	o.fill()
	cycles := o.pick(60_000, 200_000, 2_000_000)
	var items []sweep.Item
	for _, b := range []splash.Benchmark{splash.Radix, splash.Water} {
		items = append(items, sweep.Item{
			Key: fmt.Sprintf("fig14/%s", b),
			Run: func(ctx sweep.Ctx) (any, error) {
				intensity := 1.0
				missFrac := 0.04
				if b == splash.Water {
					intensity = 8.0
					missFrac = 0.005 // water's base event count is ~8x radix's
				}
				tr := splashTrace(b, o, cycles, intensity)
				// The coherence traffic rides alongside corner-MC miss
				// traffic, exactly as in the paper's single-controller SPLASH
				// runs; the miss stream stays light relative to coherence
				// traffic.
				mcTr, err := splash.GenerateMemory(b, splash.Params{
					Nodes: 64, Width: 8, Height: 8, Cycles: cycles,
					Seed: o.Seed, Intensity: missFrac,
				}, []noc.NodeID{0})
				if err != nil {
					return nil, err
				}
				tr.Events = append(tr.Events, mcTr.Events...)
				tr.Sort()

				sys := splashSystemFF(o, config.RouteXY, config.VCADynamic, 4, 8, false, ctx)
				sys.AttachTrace(tr)
				sys.AttachTraceControllers([]noc.NodeID{0}, 50, 8)
				sys.RunUntil(cycles*40, func(uint64) bool { return sys.TraceDone() })

				grid, err := thermal.NewGrid(8, 8, sys.Config.Thermal)
				if err != nil {
					return nil, err
				}
				mp := sys.Power.MeanPower()
				peak := 0.0
				for _, w := range mp {
					if w > peak {
						peak = w
					}
				}
				temps := grid.SteadyState(normalizePower(mp, peak))
				m := Fig14Map{Benchmark: string(b), Width: 8, TempsC: temps}
				for i, t := range temps {
					if t > m.MaxTempC {
						m.MaxTempC = t
						m.HotX, m.HotY = i%8, i/8
					}
				}
				m.CornerMCTempC = temps[0]
				return m, nil
			},
		})
	}
	results := runSweep(o, false, items)
	return collect[Fig14Map](results), results
}

// ---------------------------------------------------------------------------
// §IV-A: link-load scaling law and flow starvation.

// Sec4aResult carries the scaling analysis.
type Sec4aResult struct {
	// MaxFlows[n] is the largest number of distinct flows crossing any
	// single directed link under XY all-to-all on an n x n mesh; the
	// paper's law is n^3/4.
	MaxFlows8  int
	MaxFlows32 int
	Law8       int // 8^3/4
	Law32      int // 32^3/4
	// StarvedFlows counts flows delivering < 10% of the mean under heavy
	// transpose load on the small mesh (starvation exists even at 8x8
	// under enough load; at 32x32 the paper observed fully starved flows).
	StarvedFlows int
	TotalFlows   int
}

// Sec4a verifies the worst-link flow-count law analytically and
// demonstrates flow starvation under heavy load via simulation. The two
// analytic counts and the starvation simulation are independent sweep
// items.
func Sec4a(o Options) Sec4aResult {
	r, _ := sec4a(o)
	return r
}

func sec4a(o Options) (Sec4aResult, []sweep.Result) {
	o.fill()
	results := runSweep(o, false, []sweep.Item{
		{
			Key: "sec4a/maxflows/8",
			Run: func(sweep.Ctx) (any, error) { return maxLinkFlowsXY(8), nil },
		},
		{
			Key: "sec4a/maxflows/32",
			Run: func(sweep.Ctx) (any, error) { return maxLinkFlowsXY(32), nil },
		},
		{
			Key: "sec4a/starvation",
			Run: func(ctx sweep.Ctx) (any, error) {
				cfg := config.Default()
				cfg.Topology.Width, cfg.Topology.Height = 8, 8
				cfg.Engine.Workers = ctx.Workers
				cfg.Engine.Seed = ctx.Seed
				cfg.Traffic = []config.TrafficConfig{{Pattern: config.PatternUniform, InjectionRate: 0.35}}
				sys := o.system(cfg)
				must(sys.AttachSyntheticTraffic())
				sys.Run(o.synthCycles() * 2)
				sum := sys.Summary()
				return [2]int{len(sum.StarvedFlows(0.1)), len(sum.Flows)}, nil
			},
		},
	})
	starved := results[2].Value.([2]int)
	r := Sec4aResult{
		MaxFlows8:    results[0].Value.(int),
		MaxFlows32:   results[1].Value.(int),
		Law8:         8 * 8 * 8 / 4,
		Law32:        32 * 32 * 32 / 4,
		StarvedFlows: starved[0],
		TotalFlows:   starved[1],
	}
	all := append(results, sweep.Result{Index: len(results), Key: "sec4a/result", Value: r})
	return r, all
}

// maxLinkFlowsXY counts, for XY all-to-all on an n x n mesh, the maximum
// number of (src,dst) flows whose route crosses any one directed link.
// Links are indexed densely (node * 4 + direction) rather than hashed:
// the 32x32 case walks ~21M link crossings and map overhead dominated.
func maxLinkFlowsXY(n int) int {
	const (
		east = iota
		west
		north
		south
	)
	load := make([]int, n*n*4)
	idx := func(x, y int) int { return y*n + x }
	for sy := 0; sy < n; sy++ {
		for sx := 0; sx < n; sx++ {
			for dy := 0; dy < n; dy++ {
				for dx := 0; dx < n; dx++ {
					if sx == dx && sy == dy {
						continue
					}
					x, y := sx, sy
					for x != dx {
						dir := east
						if dx < x {
							dir = west
						}
						load[idx(x, y)*4+dir]++
						x += sign(dx - x)
					}
					for y != dy {
						dir := south
						if dy < y {
							dir = north
						}
						load[idx(x, y)*4+dir]++
						y += sign(dy - y)
					}
				}
			}
		}
	}
	max := 0
	for _, v := range load {
		if v > max {
			max = v
		}
	}
	return max
}

func sign(v int) int {
	if v < 0 {
		return -1
	}
	if v > 0 {
		return 1
	}
	return 0
}

// ---------------------------------------------------------------------------
// Table I smoke: every configuration row builds and runs briefly.

// TableI instantiates the paper's configuration matrix (Table I) and runs
// each combination for a short window, returning the labels exercised.
func TableI(o Options) []string {
	rows, _ := tableI(o)
	return rows
}

func tableI(o Options) ([]string, []sweep.Result) {
	o.fill()
	type combo struct {
		topoW, topoH int
		alg          string
		vca          string
		vcs, buf     int
	}
	combos := []combo{
		{8, 8, config.RouteXY, config.VCADynamic, 4, 4},
		{8, 8, config.RouteO1Turn, config.VCADynamic, 8, 8},
		{8, 8, config.RouteROMM, config.VCAEDVCA, 4, 8},
		{8, 8, config.RouteXY, config.VCAEDVCA, 8, 4},
	}
	if o.Full {
		combos = append(combos,
			combo{32, 32, config.RouteXY, config.VCADynamic, 4, 4},
			combo{32, 32, config.RouteO1Turn, config.VCAEDVCA, 8, 8},
		)
	}
	items := make([]sweep.Item, len(combos))
	for i, c := range combos {
		items[i] = sweep.Item{
			Key: "t1/" + sprintCombo(c.topoW, c.topoH, c.alg, c.vca, c.vcs, c.buf),
			Run: func(ctx sweep.Ctx) (any, error) {
				cfg := config.Default()
				cfg.Topology.Width, cfg.Topology.Height = c.topoW, c.topoH
				cfg.Routing.Algorithm = c.alg
				cfg.Router.VCAlloc = c.vca
				cfg.Router.VCsPerPort = c.vcs
				cfg.Router.VCBufFlits = c.buf
				cfg.Engine.Workers = ctx.Workers
				cfg.Engine.Seed = ctx.Seed
				cfg.Traffic = []config.TrafficConfig{{Pattern: config.PatternTranspose, InjectionRate: 0.02}}
				sys := o.system(cfg)
				must(sys.AttachSyntheticTraffic())
				sys.Run(2_000)
				return sprintCombo(c.topoW, c.topoH, c.alg, c.vca, c.vcs, c.buf), nil
			},
		}
	}
	results := runSweep(o, false, items)
	return collect[string](results), results
}

func sprintCombo(w, h int, alg, vca string, vcs, buf int) string {
	return fmt.Sprintf("%s/%s %dx%d %dVCx%d", alg, vca, w, h, vcs, buf)
}

// splashSystem builds the 8x8 SPLASH replay system for a sweep run: the
// engine takes the run's derived seed and granted CPU slots.
func splashSystem(o Options, alg, vcaPolicy string, vcs, buf int, ctx sweep.Ctx) *core.System {
	return splashSystemFF(o, alg, vcaPolicy, vcs, buf, true, ctx)
}

// splashSystemFF allows disabling fast-forward: the thermal figures need
// every power epoch sampled, and FF would merge epochs across skipped
// idle stretches into artificially inflated samples.
func splashSystemFF(o Options, alg, vcaPolicy string, vcs, buf int, ff bool, ctx sweep.Ctx) *core.System {
	cfg := config.Default()
	cfg.Topology.Width, cfg.Topology.Height = 8, 8
	cfg.Routing.Algorithm = alg
	cfg.Router.VCAlloc = vcaPolicy
	cfg.Router.VCsPerPort = vcs
	cfg.Router.VCBufFlits = buf
	cfg.Engine.Workers = ctx.Workers
	cfg.Engine.Seed = ctx.Seed
	cfg.Engine.FastForward = ff
	cfg.Power.EpochCycles = 5_000
	return o.system(cfg)
}

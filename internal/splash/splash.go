// Package splash synthesizes SPLASH-2-like network traces with
// per-benchmark communication profiles. The paper obtained its traces by
// running SPLASH-2 under the Graphite simulator and logging all network
// transmissions (with the x86 core clock 10x the network clock to induce
// congestion, §III); this package substitutes parameterized generators
// that reproduce each benchmark's traffic *shape* — volume, burstiness and
// locality — which is what Figs 8-11, 13 and 14 depend on:
//
//   - RADIX: strongly phased all-to-all key-exchange bursts, high volume;
//   - FFT: staged butterfly exchanges (partner i XOR 2^k per stage);
//   - WATER: neighbour force exchange plus long-range interactions and a
//     per-iteration reduction — a relatively congested mixed load;
//   - SWAPTIONS: sparse, uniform, low-rate traffic (per-core Monte Carlo);
//   - OCEAN: steady 2D-stencil neighbour exchange every iteration.
package splash

import (
	"fmt"

	"hornet/internal/noc"
	"hornet/internal/sim"
	"hornet/internal/trace"
)

// Benchmark names a SPLASH-2(-like) workload profile.
type Benchmark string

// Supported benchmark profiles.
const (
	FFT       Benchmark = "fft"
	Radix     Benchmark = "radix"
	Water     Benchmark = "water"
	Swaptions Benchmark = "swaptions"
	Ocean     Benchmark = "ocean"
)

// Benchmarks lists all supported profiles.
func Benchmarks() []Benchmark { return []Benchmark{FFT, Radix, Water, Swaptions, Ocean} }

// Params configures trace synthesis.
type Params struct {
	Nodes       int
	Width       int // mesh X dimension (neighbour math)
	Height      int // mesh Y dimension
	Cycles      uint64
	Seed        uint64
	Intensity   float64 // load multiplier; 1.0 = calibrated default
	PacketFlits int     // default 8 (paper Table I)
}

func (p *Params) fill() error {
	if p.Nodes <= 1 {
		return fmt.Errorf("splash: need >= 2 nodes, got %d", p.Nodes)
	}
	if p.Width*p.Height != p.Nodes {
		return fmt.Errorf("splash: width*height (%dx%d) != nodes (%d)", p.Width, p.Height, p.Nodes)
	}
	if p.Cycles == 0 {
		return fmt.Errorf("splash: zero-length trace")
	}
	if p.Intensity <= 0 {
		p.Intensity = 1
	}
	if p.PacketFlits <= 0 {
		p.PacketFlits = 8
	}
	return nil
}

// Generate synthesizes the node-to-node trace for a benchmark.
func Generate(b Benchmark, p Params) (*trace.Trace, error) {
	if err := p.fill(); err != nil {
		return nil, err
	}
	rng := sim.NewRNG(p.Seed ^ hashName(string(b)))
	t := &trace.Trace{}
	switch b {
	case Radix:
		genRadix(t, p, rng)
	case FFT:
		genFFT(t, p, rng)
	case Water:
		genWater(t, p, rng)
	case Swaptions:
		genSwaptions(t, p, rng)
	case Ocean:
		genOcean(t, p, rng)
	default:
		return nil, fmt.Errorf("splash: unknown benchmark %q", b)
	}
	t.Sort()
	return t, nil
}

func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// genRadix: iterations of a quiet local-histogram phase followed by an
// intense all-to-all key-exchange burst.
func genRadix(t *trace.Trace, p Params, rng *sim.RNG) {
	const iterCycles = 40_000
	quiet := uint64(float64(iterCycles) * 0.75)
	for start := uint64(0); start < p.Cycles; start += iterCycles {
		// Quiet phase: occasional control messages.
		for n := 0; n < p.Nodes; n++ {
			if rng.Bernoulli(0.3) {
				dst := noc.NodeID(rng.Intn(p.Nodes))
				t.Add(start+uint64(rng.Intn(int(quiet))), noc.NodeID(n), dst, 2)
			}
		}
		// Exchange burst: every node sends keys to every other node. The
		// density reflects the paper's 10x core-vs-network clock ratio.
		window := uint64(iterCycles) - quiet
		pairsPer := int(5 * p.Intensity)
		if pairsPer < 1 {
			pairsPer = 1
		}
		for i := 0; i < p.Nodes; i++ {
			for j := 0; j < p.Nodes; j++ {
				if i == j {
					continue
				}
				for k := 0; k < pairsPer; k++ {
					at := start + quiet + uint64(rng.Intn(int(window)))
					t.Add(at, noc.NodeID(i), noc.NodeID(j), p.PacketFlits)
				}
			}
		}
	}
}

// genFFT: log2(N) butterfly stages; in stage k node i exchanges with
// i XOR 2^k; stages separated by compute gaps.
func genFFT(t *trace.Trace, p Params, rng *sim.RNG) {
	bits := 0
	for 1<<bits < p.Nodes {
		bits++
	}
	const stageCycles = 12_000
	superstep := uint64(bits+2) * stageCycles // stages + compute slack
	msgs := int(6 * p.Intensity)
	if msgs < 1 {
		msgs = 1
	}
	for start := uint64(0); start < p.Cycles; start += superstep {
		for k := 0; k < bits; k++ {
			sBase := start + uint64(k)*stageCycles
			for i := 0; i < p.Nodes; i++ {
				partner := i ^ (1 << k)
				if partner >= p.Nodes {
					continue
				}
				for m := 0; m < msgs; m++ {
					at := sBase + uint64(rng.Intn(stageCycles*3/4))
					t.Add(at, noc.NodeID(i), noc.NodeID(partner), p.PacketFlits)
				}
			}
		}
	}
}

// genWater follows WATER-Nsquared's shifted-window interaction pattern:
// with molecules block-distributed, processor i computes pairwise forces
// against the blocks owned by the next N/2 processors, so node i sends to
// i+1 .. i+K (mod N) each iteration — an asymmetric pattern whose flows
// concentrate on specific mesh links under XY, the regime where
// path-diverse routing (Fig 10) earns its margin. A per-iteration
// reduction toward node 0 adds the potential-energy sum.
func genWater(t *trace.Trace, p Params, rng *sim.RNG) {
	const iterCycles = 5_000
	rep := int(p.Intensity)
	if rep < 1 {
		rep = 1
	}
	window := p.Nodes / 8
	if window < 2 {
		window = 2
	}
	iter := 0
	for start := uint64(0); start < p.Cycles; start += iterCycles {
		iter++
		// Alternate window direction per iteration (force pairs are
		// computed symmetrically on alternating sweeps), keeping the
		// aggregate spatial load symmetric.
		dir := 1
		if iter%2 == 0 {
			dir = -1
		}
		for n := 0; n < p.Nodes; n++ {
			for k := 1; k <= window; k++ {
				dst := noc.NodeID(((n+dir*k)%p.Nodes + p.Nodes) % p.Nodes)
				for r := 0; r < rep; r++ {
					at := start + uint64(rng.Intn(iterCycles/3))
					t.Add(at, noc.NodeID(n), dst, p.PacketFlits)
				}
			}
			// Newton's-third-law partner exchange: each computed pair force
			// is shipped to the block's symmetric owner, i.e. the matrix
			// transpose of the local coordinates.
			x, y := n%p.Width, n/p.Width
			if y < p.Width && x < p.Height {
				tp := noc.NodeID(x*p.Width + y)
				if tp != noc.NodeID(n) {
					for r := 0; r < 2*rep; r++ {
						at := start + uint64(rng.Intn(iterCycles/3))
						t.Add(at, noc.NodeID(n), tp, p.PacketFlits)
					}
				}
			}
			// Potential-energy reduction to node 0 every few iterations.
			if n != 0 && iter%4 == 0 {
				at := start + uint64(iterCycles*3/4) + uint64(rng.Intn(iterCycles/8))
				t.Add(at, noc.NodeID(n), 0, 2)
			}
		}
	}
}

// genSwaptions: sparse uniform traffic — mostly independent per-core work.
func genSwaptions(t *trace.Trace, p Params, rng *sim.RNG) {
	rate := 0.0015 * p.Intensity
	for n := 0; n < p.Nodes; n++ {
		for c := uint64(0); c < p.Cycles; c++ {
			if rng.Bernoulli(rate) {
				dst := noc.NodeID(rng.Intn(p.Nodes))
				if int(dst) == n {
					continue
				}
				t.Add(c, noc.NodeID(n), dst, p.PacketFlits)
			}
		}
	}
}

// genOcean: steady stencil exchange with all four neighbours every
// iteration — constant moderate load (mild thermal variation, Fig 13a).
func genOcean(t *trace.Trace, p Params, rng *sim.RNG) {
	const iterCycles = 4_000
	for start := uint64(0); start < p.Cycles; start += iterCycles {
		for n := 0; n < p.Nodes; n++ {
			x, y := n%p.Width, n/p.Width
			for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				nx, ny := x+d[0], y+d[1]
				if nx < 0 || nx >= p.Width || ny < 0 || ny >= p.Height {
					continue
				}
				at := start + uint64(rng.Intn(iterCycles))
				t.Add(at, noc.NodeID(n), noc.NodeID(ny*p.Width+nx), p.PacketFlits)
			}
		}
	}
}

// MemClassRequest and MemClassResponse tag memory-controller traffic.
const (
	MemClassRequest  uint8 = 1
	MemClassResponse uint8 = 2
)

// GenerateMemory synthesizes the memory-controller-directed variant used
// by Fig 11: each node issues read requests (short packets) to its
// nearest controller following the benchmark's temporal intensity;
// responses are generated at simulation time by mem.TraceController.
// An Intensity below 1 thins the request stream (a light miss traffic
// riding alongside coherence traffic) rather than shrinking bursts.
func GenerateMemory(b Benchmark, p Params, controllers []noc.NodeID) (*trace.Trace, error) {
	keep := 1.0
	if p.Intensity > 0 && p.Intensity < 1 {
		keep = p.Intensity
		p.Intensity = 1
	}
	if err := p.fill(); err != nil {
		return nil, err
	}
	if len(controllers) == 0 {
		return nil, fmt.Errorf("splash: memory trace needs at least one controller")
	}
	base, err := Generate(b, p)
	if err != nil {
		return nil, err
	}
	rng := sim.NewRNG(p.Seed ^ hashName("mem"+string(b)))
	// Reinterpret the node-to-node events as cache-miss requests: same
	// timing profile, destinations redirected to each source's nearest
	// controller, request-sized packets.
	out := &trace.Trace{}
	for _, e := range base.Events {
		if keep < 1 && !rng.Bernoulli(keep) {
			continue
		}
		mc := nearestController(e.Src, controllers, p.Width)
		if mc == e.Src {
			continue
		}
		out.Events = append(out.Events, trace.Event{
			Cycle: e.Cycle,
			Src:   e.Src,
			Dst:   mc,
			Flits: 1, // read request
			Count: 1,
		})
	}
	out.Sort()
	return out, nil
}

func nearestController(n noc.NodeID, controllers []noc.NodeID, width int) noc.NodeID {
	best, bestD := controllers[0], 1<<30
	for _, c := range controllers {
		d := manhattan(int(n), int(c), width)
		if d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

func manhattan(a, b, width int) int {
	ax, ay := a%width, a/width
	bx, by := b%width, b/width
	return iabs(ax-bx) + iabs(ay-by)
}

func iabs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

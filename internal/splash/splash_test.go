package splash

import (
	"testing"

	"hornet/internal/noc"
)

func params(cycles uint64) Params {
	return Params{Nodes: 64, Width: 8, Height: 8, Cycles: cycles, Seed: 1}
}

// testCycles halves trace windows under -short; every assertion in this
// file is window-relative, so the shapes survive the shrink.
func testCycles(c uint64) uint64 {
	if testing.Short() {
		return c / 2
	}
	return c
}

func TestAllBenchmarksGenerate(t *testing.T) {
	for _, b := range Benchmarks() {
		tr, err := Generate(b, params(testCycles(100_000)))
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		if len(tr.Events) == 0 {
			t.Fatalf("%s produced no events", b)
		}
		for _, e := range tr.Events {
			if e.Src == e.Dst {
				t.Fatalf("%s: self-addressed event %+v", b, e)
			}
			if e.Src < 0 || e.Src > 63 || e.Dst < 0 || e.Dst > 63 {
				t.Fatalf("%s: out-of-range endpoints %+v", b, e)
			}
			if e.Flits < 1 {
				t.Fatalf("%s: empty packet %+v", b, e)
			}
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, _ := Generate(Radix, params(testCycles(80_000)))
	b, _ := Generate(Radix, params(testCycles(80_000)))
	if len(a.Events) != len(b.Events) {
		t.Fatal("same seed produced different event counts")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
	p2 := params(testCycles(80_000))
	p2.Seed = 2
	c, _ := Generate(Radix, p2)
	if len(a.Events) > 0 && len(c.Events) == len(a.Events) {
		same := true
		for i := range a.Events {
			if a.Events[i] != c.Events[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

// volume returns flits per node per cycle.
func volume(t *testing.T, b Benchmark, intensity float64) float64 {
	t.Helper()
	cycles := testCycles(120_000)
	p := params(cycles)
	p.Intensity = intensity
	tr, err := Generate(b, p)
	if err != nil {
		t.Fatal(err)
	}
	flits := 0
	for _, e := range tr.Events {
		flits += e.Flits
	}
	return float64(flits) / 64 / float64(cycles)
}

func TestRelativeTrafficVolumes(t *testing.T) {
	radix := volume(t, Radix, 1)
	swap := volume(t, Swaptions, 1)
	ocean := volume(t, Ocean, 1)
	t.Logf("volumes (flits/node/cycle): radix=%.4f ocean=%.4f swaptions=%.4f", radix, ocean, swap)
	// The paper's axis: RADIX is high-traffic, SWAPTIONS low; OCEAN is a
	// steady (but light) stencil load.
	if radix < 4*swap {
		t.Fatalf("radix (%.4f) should dwarf swaptions (%.4f)", radix, swap)
	}
	if ocean <= 0 {
		t.Fatalf("ocean volume %.4f", ocean)
	}
}

func TestIntensityScaling(t *testing.T) {
	low := volume(t, Radix, 1)
	high := volume(t, Radix, 2)
	if high < low*1.5 {
		t.Fatalf("intensity 2 volume %.4f not ~2x of %.4f", high, low)
	}
}

func TestRadixIsPhased(t *testing.T) {
	cycles := testCycles(80_000)
	tr, _ := Generate(Radix, params(cycles))
	// Count flits per 5k-cycle window: bursts should dwarf quiet phases.
	bins := make([]int, cycles/5_000)
	for _, e := range tr.Events {
		if e.Cycle < cycles {
			bins[e.Cycle/5_000] += e.Flits
		}
	}
	max, min := 0, 1<<60
	for _, v := range bins {
		if v > max {
			max = v
		}
		if v < min {
			min = v
		}
	}
	if max < 10*(min+1) {
		t.Fatalf("radix not phased: bins %v", bins)
	}
}

func TestFFTButterflyPartners(t *testing.T) {
	tr, _ := Generate(FFT, params(testCycles(100_000)))
	for _, e := range tr.Events {
		x := int(e.Src) ^ int(e.Dst)
		if x&(x-1) != 0 {
			t.Fatalf("FFT event %d->%d is not a butterfly partner", e.Src, e.Dst)
		}
	}
}

func TestOceanIsNeighborOnly(t *testing.T) {
	tr, _ := Generate(Ocean, params(testCycles(50_000)))
	for _, e := range tr.Events {
		sx, sy := int(e.Src)%8, int(e.Src)/8
		dx, dy := int(e.Dst)%8, int(e.Dst)/8
		if iabs(sx-dx)+iabs(sy-dy) != 1 {
			t.Fatalf("ocean event %d->%d not a mesh neighbour", e.Src, e.Dst)
		}
	}
}

func TestGenerateMemoryTargetsControllers(t *testing.T) {
	mcs := []noc.NodeID{0, 63}
	tr, err := GenerateMemory(Radix, params(testCycles(80_000)), mcs)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) == 0 {
		t.Fatal("no memory requests")
	}
	for _, e := range tr.Events {
		if e.Dst != 0 && e.Dst != 63 {
			t.Fatalf("request to non-controller %d", e.Dst)
		}
		if e.Flits != 1 {
			t.Fatalf("request size %d, want 1", e.Flits)
		}
		// Nearest-controller assignment.
		want := nearestController(e.Src, mcs, 8)
		if e.Dst != want {
			t.Fatalf("src %d assigned to %d, nearest is %d", e.Src, e.Dst, want)
		}
	}
}

func TestGenerateMemoryThinning(t *testing.T) {
	full, _ := GenerateMemory(Radix, params(testCycles(80_000)), []noc.NodeID{0})
	p := params(testCycles(80_000))
	p.Intensity = 0.1
	thin, _ := GenerateMemory(Radix, p, []noc.NodeID{0})
	ratio := float64(len(thin.Events)) / float64(len(full.Events))
	if ratio < 0.05 || ratio > 0.2 {
		t.Fatalf("thinning ratio %.3f, want ~0.1", ratio)
	}
}

func TestParamValidation(t *testing.T) {
	if _, err := Generate(Radix, Params{Nodes: 1, Width: 1, Height: 1, Cycles: 100}); err == nil {
		t.Fatal("1-node params accepted")
	}
	if _, err := Generate(Radix, Params{Nodes: 64, Width: 7, Height: 8, Cycles: 100}); err == nil {
		t.Fatal("mismatched geometry accepted")
	}
	if _, err := Generate("nope", params(100)); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := GenerateMemory(Radix, params(100), nil); err == nil {
		t.Fatal("memory trace without controllers accepted")
	}
}

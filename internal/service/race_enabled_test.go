//go:build race

package service_test

// raceEnabled reports that this test binary was built with the race
// detector; the sim-heavy end-to-end cases shrink under -short -race.
const raceEnabled = true

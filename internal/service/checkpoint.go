package service

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"hornet/internal/core"
	"hornet/internal/fsatomic"
	"hornet/internal/mips"
	"hornet/internal/noc"
	"hornet/internal/obs"
	"hornet/internal/service/backend"
	"hornet/internal/sim"
	"hornet/internal/snapshot"
	"hornet/internal/sweep"
)

// CheckpointStore persists autosaved run snapshots, addressed by a
// content-based key ("<name>-<hash>-<runkey>"). The daemon's default
// store is a directory (DirCheckpointStore); workers use an HTTP store
// that uploads blobs to their coordinator so a dead worker's job can
// migrate, checkpoint included, to a surviving one.
type CheckpointStore interface {
	// Save persists the encoded snapshot blob for key, replacing any
	// previous blob. cycle is the snapshot's simulation clock
	// (observability; stores may ignore it).
	Save(key string, blob []byte, cycle uint64) error
	// Load returns the latest blob for key, if one exists.
	Load(key string) ([]byte, bool)
	// Remove discards the blob for key (the run completed).
	Remove(key string)
}

// DirCheckpointStore is the on-disk store: ckpt-<key>.snap files in one
// directory, written atomically (the PR 3 layout).
type DirCheckpointStore struct{ Dir string }

func (d DirCheckpointStore) path(key string) string {
	return filepath.Join(d.Dir, "ckpt-"+key+".snap")
}

func (d DirCheckpointStore) Save(key string, blob []byte, cycle uint64) error {
	return fsatomic.WriteFile(d.path(key), blob)
}

func (d DirCheckpointStore) Load(key string) ([]byte, bool) {
	b, err := os.ReadFile(d.path(key))
	if err != nil {
		return nil, false
	}
	return b, true
}

func (d DirCheckpointStore) Remove(key string) { os.Remove(d.path(key)) }

// MemCheckpointStore keeps blobs in memory: the store a migrated task's
// blobs are seeded into when the coordinator has no checkpoint
// directory, and the load-side cache of the worker's remote store.
type MemCheckpointStore struct {
	mu    sync.Mutex
	blobs map[string][]byte
}

func NewMemCheckpointStore() *MemCheckpointStore {
	return &MemCheckpointStore{blobs: map[string][]byte{}}
}

func (m *MemCheckpointStore) Save(key string, blob []byte, cycle uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.blobs[key] = append([]byte(nil), blob...)
	return nil
}

func (m *MemCheckpointStore) Load(key string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.blobs[key]
	return b, ok
}

func (m *MemCheckpointStore) Remove(key string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.blobs, key)
}

// execEnv is the execution environment for config/batch/mips runs: the
// warmup snapshot cache (warmup-once/fork-many) and the checkpoint
// settings (periodic autosave + resume). The scheduler shares one env
// across every job it runs; a worker builds one per process.
type execEnv struct {
	// warm dedupes warmup prefixes across runs, jobs, and — with a
	// checkpoint directory configured — daemon restarts.
	warm *sweep.SnapshotCache
	// store enables measured/warmup-phase autosave; nil disables.
	store CheckpointStore
	// ckptEvery is the autosave period in simulated cycles.
	ckptEvery uint64
	// counters are shared across derived envs (withStore), so per-job
	// store overrides still feed the daemon's stats.
	counters *envCounters
	// ckptSuffix distinguishes per-shard checkpoint blobs of one run
	// ("-s0", "-s1", ...); empty for single-process runs. It is part of
	// the store key only — meta.Key stays the runKey, so the identity
	// guard is shard-agnostic and a migrated shard finds its blob.
	ckptSuffix string
	// probe, when non-nil, is attached to every engine this env builds
	// or restores; chunk boundaries surface its snapshots through the
	// sink (per-job engine telemetry). Nil keeps the engine hot path
	// probe-free.
	probe *obs.SimProbe
	// telemetry, when non-nil, enables machine telemetry on every system
	// this env runs: the engine samples per-tile/per-link state at sync
	// points and a wall-clock pump forwards the freshest sample here
	// every telEvery (0 means 500ms). Nil keeps the engine's nil-sampler
	// fast path. A negative telEvery on the scheduler's shared env tells
	// the local backend not to attach a telemetry callback at all.
	telemetry func(s obs.TelemetrySnapshot)
	telEvery  time.Duration
	// log receives checkpoint-layer diagnostics; nil means discard.
	log *slog.Logger
}

// envCounters aggregates checkpoint observability across an env and
// everything derived from it.
type envCounters struct {
	checkpointsWritten atomic.Uint64
	checkpointWriteErr atomic.Uint64
	runsResumed        atomic.Uint64
	// checkpointBytes / encodeNS / saveNS account the encoded snapshot
	// volume and where the time went (serialization vs store I/O).
	checkpointBytes atomic.Uint64
	encodeNS        atomic.Int64
	saveNS          atomic.Int64
}

// withStore derives an env that autosaves into a different checkpoint
// store but shares the warmup cache and counters — how a migrated
// task's uploaded blobs become resumable on a daemon that has no
// checkpoint directory of its own.
func (e *execEnv) withStore(store CheckpointStore) *execEnv {
	d := *e
	d.store = store
	return &d
}

// withProbe derives an env whose engines report into p (per-task
// telemetry); everything else, counters included, is shared.
func (e *execEnv) withProbe(p *obs.SimProbe) *execEnv {
	d := *e
	d.probe = p
	return &d
}

// withTelemetry derives an env whose runs sample machine telemetry
// into fn at the env's pump cadence; everything else is shared.
func (e *execEnv) withTelemetry(fn func(obs.TelemetrySnapshot)) *execEnv {
	d := *e
	d.telemetry = fn
	return &d
}

// telemetrySampleCycles is the engine-side sampling cadence: the
// sampler fires at the first sync point at or past each multiple of
// this many simulated cycles (plus once when a run halts). The
// wall-clock pump decimates further, so the cadence only bounds how
// stale a forwarded sample can be in simulation time.
const telemetrySampleCycles = 256

// startTelemetry enables machine telemetry on sys and starts the
// wall-clock pump forwarding fresh samples into the env's telemetry
// callback. The returned stop function ends the pump and flushes the
// final sample — the one the engine takes at the run's last sync
// point, which therefore agrees with the run's final statistics. A
// no-op when the env has no telemetry callback.
func (e *execEnv) startTelemetry(sys *core.System) func() {
	if e.telemetry == nil {
		return func() {}
	}
	sys.EnableTelemetry(telemetrySampleCycles)
	every := e.telEvery
	if every <= 0 {
		every = 500 * time.Millisecond
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(every)
		defer tick.Stop()
		var lastSeq uint64
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if snap, seq := sys.Telemetry(); seq != lastSeq {
					lastSeq = seq
					e.telemetry(snap)
				}
			}
		}
	}()
	return func() {
		close(stop)
		<-done
		if snap, seq := sys.Telemetry(); seq > 0 {
			e.telemetry(snap)
		}
	}
}

// logger returns the env's diagnostic logger, never nil.
func (e *execEnv) logger() *slog.Logger {
	if e.log == nil {
		return obs.Nop()
	}
	return e.log
}

// warmCacheEntries bounds the daemon's in-memory warmup snapshots:
// they are full-system states (hundreds of KB to MB each), so a
// long-lived daemon with many distinct warmup groups must not hoard
// them. Evicted entries refault from the checkpoint directory's disk
// tier when one is configured.
const warmCacheEntries = 32

func newExecEnv(checkpointDir string, checkpointEvery uint64) *execEnv {
	warm := sweep.NewSnapshotCache(checkpointDir)
	warm.SetMaxEntries(warmCacheEntries)
	env := &execEnv{
		warm:      warm,
		ckptEvery: checkpointEvery,
		counters:  &envCounters{},
	}
	if checkpointDir != "" {
		env.store = DirCheckpointStore{Dir: checkpointDir}
	}
	return env
}

// ckptMeta is the driver-level progress record riding in the snapshot's
// extra section: which run this is, which phase it was in, and the
// accumulated engine counters the final RunStats needs.
type ckptMeta struct {
	Name string `json:"name"`
	Hash string `json:"hash"` // job scenario hash (identity guard)
	Key  string `json:"key"`  // run key within the job
	Seed uint64 `json:"seed"` // effective engine seed of the run

	Phase string `json:"phase"` // "warmup" or "measured"
	// Done is the simulated-cycle progress within the current phase
	// (executed + fast-forwarded); Exec/Skip accumulate the measured
	// phase's executed and skipped counts for the RunStats record.
	Done uint64 `json:"done"`
	Exec uint64 `json:"exec"`
	Skip uint64 `json:"skip"`
}

const serveMetaSection = "serve-meta"

// CheckpointKey is the content-based store address for one run of one
// scenario — scenario hash, not job ID — so a resubmitted (or migrated)
// scenario finds the checkpoints an earlier executor left.
func CheckpointKey(name, hash, runKey string) string {
	return fmt.Sprintf("%s-%s-%s", name, hash, runKey)
}

// saveCheckpoint snapshots the system plus progress meta into the store.
func (e *execEnv) saveCheckpoint(sys *core.System, sc *scenario, meta ckptMeta) error {
	encStart := time.Now()
	snap, err := sys.Snapshot()
	if err != nil {
		return err
	}
	mb, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	snap.Section(serveMetaSection).Bytes(mb)
	blob, err := snap.Bytes()
	if err != nil {
		return err
	}
	e.counters.encodeNS.Add(time.Since(encStart).Nanoseconds())
	saveStart := time.Now()
	if err := e.store.Save(CheckpointKey(sc.name, sc.hash, meta.Key)+e.ckptSuffix, blob, sys.Clock()); err != nil {
		return err
	}
	e.counters.saveNS.Add(time.Since(saveStart).Nanoseconds())
	e.counters.checkpointBytes.Add(uint64(len(blob)))
	e.counters.checkpointsWritten.Add(1)
	return nil
}

// loadCheckpoint tries to resume one run from the store. It returns
// ok=false — silently, the run just starts from cycle 0 — when there is
// no usable checkpoint: missing blob, corrupt or version-skewed
// container, a different scenario's state, or a snapshot the freshly
// built system refuses (config-hash guard).
func (e *execEnv) loadCheckpoint(sc *scenario, key string, seed uint64, build func() (*core.System, error)) (*core.System, ckptMeta, bool) {
	blob, ok := e.store.Load(CheckpointKey(sc.name, sc.hash, key) + e.ckptSuffix)
	if !ok {
		return nil, ckptMeta{}, false
	}
	return e.decodeCheckpoint(sc, key, seed, blob, build)
}

// decodeCheckpoint restores a run from an in-hand checkpoint blob with
// the same identity guards as loadCheckpoint. Shard members use it
// directly on the group's stable blob after a rollback — their own
// store may hold a newer snapshot than the cycle the group restarts
// from.
func (e *execEnv) decodeCheckpoint(sc *scenario, key string, seed uint64, blob []byte, build func() (*core.System, error)) (*core.System, ckptMeta, bool) {
	var meta ckptMeta
	snap, err := snapshot.DecodeBytes(blob)
	if err != nil {
		return nil, meta, false
	}
	r, err := snap.Open(serveMetaSection)
	if err != nil {
		return nil, meta, false
	}
	if err := json.Unmarshal(r.ByteSlice(), &meta); err != nil || r.Close() != nil {
		return nil, meta, false
	}
	if meta.Name != sc.name || meta.Hash != sc.hash || meta.Key != key || meta.Seed != seed {
		return nil, meta, false
	}
	sys, err := build()
	if err != nil {
		return nil, meta, false
	}
	if err := sys.Restore(snap); err != nil {
		return nil, meta, false
	}
	return sys, meta, true
}

// removeCheckpoint discards a consumed checkpoint once its run has
// completed (the result document now carries the state).
func (e *execEnv) removeCheckpoint(sc *scenario, key string) {
	e.store.Remove(CheckpointKey(sc.name, sc.hash, key) + e.ckptSuffix)
}

// runFor compiles one runSpec into its sweep run function, dispatching
// on the spec's kind: synthetic-traffic window runs (runConfig) or
// application-workload runs (runMips).
func (e *execEnv) runFor(sc *scenario, sink backend.Sink, spec runSpec) func(sweep.Ctx) (any, error) {
	if spec.mips != nil {
		return e.runMips(sc, sink, spec)
	}
	return e.runConfig(sc, sink, spec)
}

// chunkedRun drives one checkpointable simulation: it advances the
// system toward a phase target in autosave chunks, saving at chunk
// boundaries and when a cancelled run drains, and accounting executed/
// skipped cycles into the meta record that rides in every snapshot.
// Both run kinds (synthetic windows and application workloads) share
// this loop so the cadence-alignment rules can never diverge between
// them — divergence would break the resumed-vs-uninterrupted
// byte-identity contract for one kind only.
type chunkedRun struct {
	env    *execEnv
	sys    *core.System
	sc     *scenario
	sink   backend.Sink
	meta   *ckptMeta
	ckptOn bool
	stop   func(cycle uint64) bool // sweep-cancellation probe
}

// checkpoint saves the current state; invoked at autosave boundaries
// and when a cancelled run drains. Failed saves are counted
// (ServerStats.CheckpointWriteErrs) so a daemon that silently stopped
// persisting is visible before the crash that needed the snapshots.
func (cr *chunkedRun) checkpoint() {
	if !cr.ckptOn {
		return
	}
	if err := cr.env.saveCheckpoint(cr.sys, cr.sc, *cr.meta); err == nil {
		cr.sink.Checkpoint(cr.meta.Key, cr.sys.Clock())
	} else {
		cr.env.counters.checkpointWriteErr.Add(1)
		cr.env.logger().Warn("checkpoint write failed",
			slog.String("key", CheckpointKey(cr.sc.name, cr.sc.hash, cr.meta.Key)+cr.env.ckptSuffix),
			slog.Uint64("cycle", cr.sys.Clock()), obs.Err(err))
	}
}

// advance runs the current phase until meta.Done reaches target or the
// optional done predicate reports the workload finished, in autosave
// chunks; it returns false with the context error when the sweep was
// cancelled (after saving a final checkpoint so a retry resumes here).
// Chunk boundaries are pinned to absolute multiples of ckptEvery so a
// resume after a mid-chunk cancel re-aligns with the cadence an
// uninterrupted run would have used; continuation chunks (meta.Done > 0)
// run as RunUntilResumed so a fast-forwarding engine re-derives the jump
// a chunk boundary interrupted, keeping chunked execution byte-identical
// to an uninterrupted run.
func (cr *chunkedRun) advance(ctx context.Context, target uint64, measured bool, done func(cycle uint64) bool) (bool, error) {
	stopOrDone := cr.stop
	if done != nil {
		stop := cr.stop
		stopOrDone = func(cycle uint64) bool { return stop(cycle) || done(cycle) }
	}
	finished := func() bool { return done != nil && done(cr.sys.Clock()) }
	for cr.meta.Done < target && !finished() {
		chunk := target - cr.meta.Done
		if cr.ckptOn && cr.env.ckptEvery > 0 {
			if next := (cr.meta.Done/cr.env.ckptEvery + 1) * cr.env.ckptEvery; next-cr.meta.Done < chunk {
				chunk = next - cr.meta.Done
			}
		}
		var res sim.RunResult
		if cr.meta.Done > 0 {
			res = cr.sys.RunUntilResumed(chunk, stopOrDone)
		} else {
			res = cr.sys.RunUntil(chunk, stopOrDone)
		}
		cr.meta.Done += res.Cycles + res.SkippedCycles
		if measured {
			cr.meta.Exec += res.Cycles
			cr.meta.Skip += res.SkippedCycles
		}
		if cr.env.probe != nil {
			// Chunk boundaries are the engine-telemetry cadence: each
			// snapshot rides the sink to the job (SSE, /metrics).
			backend.SinkEngine(cr.sink, cr.env.probe.Snapshot())
		}
		if res.Err != nil {
			return false, res.Err
		}
		if err := ctx.Err(); err != nil {
			cr.checkpoint()
			return false, err
		}
		if res.Stopped {
			// A sharded run's group decision halts every member here;
			// single-process runs land here via their done predicate,
			// which the loop condition re-checks.
			break
		}
		if cr.meta.Done < target && !finished() {
			cr.checkpoint()
		}
	}
	return true, nil
}

// runMips compiles an application-workload runSpec: build the system,
// attach the MIPS cores (and the coherent fabric for shared-memory
// workloads), and simulate until every core halts and the network
// drains, or the cycle cap. With checkpointing enabled the run
// autosaves every ckptEvery simulated cycles — the full core/RAM/fabric
// state rides in the snapshot — and resumes from the latest autosave
// instead of instruction zero.
func (e *execEnv) runMips(sc *scenario, sink backend.Sink, spec runSpec) func(sweep.Ctx) (any, error) {
	return func(c sweep.Ctx) (any, error) {
		seed := c.Seed
		m := spec.mips
		rc := spec.cfg
		rc.Engine.Workers = c.Workers
		rc.Engine.Seed = seed
		img, err := mips.Assemble(mipsWorkloadSource(m, rc.Topology.Nodes()))
		if err != nil {
			return nil, err
		}
		build := func() (*core.System, error) {
			sys, err := core.New(rc)
			if err != nil {
				return nil, err
			}
			nodes := make([]noc.NodeID, rc.Topology.Nodes())
			for i := range nodes {
				nodes[i] = noc.NodeID(i)
			}
			if mipsShared(m) {
				fab, err := sys.AttachMemory(*rc.Memory)
				if err != nil {
					return nil, err
				}
				sys.AttachMIPSShared([]noc.NodeID{0, nodes[len(nodes)-1]}, img, fab, *rc.Memory)
			} else {
				sys.AttachMIPS(nodes, img)
			}
			return sys, nil
		}
		stop := cancelStop(c.Context)
		ckptOn := e.store != nil

		var sys *core.System
		meta := ckptMeta{Name: sc.name, Hash: sc.hash, Key: spec.key, Seed: seed, Phase: "measured"}
		if ckptOn {
			if restored, rm, ok := e.loadCheckpoint(sc, spec.key, seed, build); ok {
				sys, meta = restored, rm
				e.counters.runsResumed.Add(1)
				sink.Resumed(spec.key, restored.Clock())
			}
		}
		if sys == nil {
			if sys, err = build(); err != nil {
				return nil, err
			}
		}
		if e.probe != nil {
			sys.SetProbe(e.probe)
		}
		stopTel := e.startTelemetry(sys)
		defer stopTel()
		// Advance in autosave chunks until the application halts or the
		// cycle cap is reached.
		cr := &chunkedRun{env: e, sys: sys, sc: sc, sink: sink, meta: &meta, ckptOn: ckptOn, stop: stop}
		if ok, err := cr.advance(c.Context, m.MaxCycles, true, sys.CoresHalted(sys.MIPSCores())); !ok {
			return nil, err
		}
		if ckptOn {
			e.removeCheckpoint(sc, spec.key)
		}
		return summarize(sys.Summary(), rc.Topology.Nodes(), meta.Exec, meta.Skip), nil
	}
}

// runConfig compiles one runSpec into its sweep run function: build the
// system, advance it through warmup (restoring a shared warmup snapshot
// when the scenario opted in), measure, and summarize into the
// deterministic RunStats record. With checkpointing enabled the run
// autosaves every ckptEvery simulated cycles and resumes from the
// latest autosave instead of cycle 0.
//
// The run polls the sweep context at every synchronization point so a
// cancelled job drains quickly even mid-simulation; a cancelled run
// saves a final checkpoint (checkpointing daemons) so a retry resumes
// where it stopped.
func (e *execEnv) runConfig(sc *scenario, sink backend.Sink, spec runSpec) func(sweep.Ctx) (any, error) {
	return func(c sweep.Ctx) (any, error) {
		// c.Seed is the run's effective seed: the scenario builder set
		// the item's explicit warmup-group seed for share_warmup jobs,
		// so the emitted document records what actually ran.
		seed := c.Seed
		// The system configuration must be identical for every run that
		// shares a warmup prefix (the snapshot guard hashes it), so the
		// driver-level cycle windows are zeroed and driven explicitly.
		rc := spec.cfg
		rc.Engine.Workers = c.Workers
		rc.Engine.Seed = seed
		warmup := uint64(rc.WarmupCycles)
		analyzed := uint64(rc.AnalyzedCycles)
		rc.WarmupCycles, rc.AnalyzedCycles = 0, 0
		build := func() (*core.System, error) {
			sys, err := core.New(rc)
			if err != nil {
				return nil, err
			}
			if err := sys.AttachSyntheticTraffic(); err != nil {
				return nil, err
			}
			return sys, nil
		}
		stop := cancelStop(c.Context)
		// Fast-forwarding runs chunk like everything else: continuation
		// chunks run resumed, so the engine re-derives any jump a chunk
		// boundary interrupted and the autosave cadence cannot leak into
		// result bytes (the scenario hash knows nothing of daemon
		// checkpoint settings).
		ckptOn := e.store != nil

		var sys *core.System
		meta := ckptMeta{Name: sc.name, Hash: sc.hash, Key: spec.key, Seed: seed, Phase: "warmup"}
		if ckptOn {
			if restored, m, ok := e.loadCheckpoint(sc, spec.key, seed, build); ok {
				sys, meta = restored, m
				e.counters.runsResumed.Add(1)
				sink.Resumed(spec.key, restored.Clock())
			}
		}
		if sys == nil {
			var err error
			if sc.shareWarmup && warmup > 0 {
				// Warmup-once/fork-many: restore the group's warmup
				// snapshot (simulating it only if this run is first).
				sys, err = core.WarmedSystem(c.Context, e.warm, rc, warmup, stop, build)
				if err != nil {
					return nil, err
				}
				meta.Phase, meta.Done = "measured", 0
				sys.ResetStats()
			} else {
				sys, err = build()
				if err != nil {
					return nil, err
				}
			}
		}

		if e.probe != nil {
			sys.SetProbe(e.probe)
		}
		stopTel := e.startTelemetry(sys)
		defer stopTel()
		cr := &chunkedRun{env: e, sys: sys, sc: sc, sink: sink, meta: &meta, ckptOn: ckptOn, stop: stop}
		if meta.Phase == "warmup" {
			if ok, err := cr.advance(c.Context, warmup, false, nil); !ok {
				return nil, err
			}
			sys.ResetStats()
			meta.Phase, meta.Done = "measured", 0
		}
		if ok, err := cr.advance(c.Context, analyzed, true, nil); !ok {
			return nil, err
		}
		if ckptOn {
			e.removeCheckpoint(sc, spec.key)
		}
		return summarize(sys.Summary(), rc.Topology.Nodes(), meta.Exec, meta.Skip), nil
	}
}

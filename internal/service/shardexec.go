package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"hornet/internal/core"
	"hornet/internal/mips"
	"hornet/internal/noc"
	"hornet/internal/obs"
	"hornet/internal/service/backend"
	"hornet/internal/sim"
	"hornet/internal/sweep"
)

// ShardTransport is the member side of a space-parallel group: the
// engine's synchronization-point exchange (core.ShardPeer) plus the
// stable-checkpoint fetch a member needs after a group rollback. Sync
// and Gather surface a rollback as *core.ShardRestartError after the
// transport adopts the new epoch.
type ShardTransport interface {
	core.ShardPeer
	// StableCheckpoint fetches this member's blob of the group's stable
	// checkpoint (ok=false: the group restarts from cycle 0).
	StableCheckpoint() (blob []byte, ok bool, err error)
}

// ShardExecOptions configures one member's execution of a sharded task.
type ShardExecOptions struct {
	// Shard/ShardCount identify the member's tile span; ShardCount must
	// equal the request's shards field.
	Shard      int
	ShardCount int
	// Transport connects the member to its group.
	Transport ShardTransport

	// Workers, Checkpoints, CheckpointEvery and the callbacks mean
	// exactly what they do in ExecOptions. OnTelemetry samples cover
	// only this member's tile span; the coordinator merges the members'
	// spans into the full-machine view.
	Workers         int
	Checkpoints     CheckpointStore
	CheckpointEvery uint64
	OnProgress      func(done, total int, key string)
	OnResumed       func(key string, cycle uint64)
	OnCheckpoint    func(key string, cycle uint64)
	OnEngine        func(s obs.ProbeSnapshot)
	OnTelemetry     func(s obs.TelemetrySnapshot)
	TelemetryEvery  time.Duration
}

// ExecuteShard validates req and runs ONE member of its space-parallel
// group in this process: the full system is built from the validated
// config (wiring and seeds bit-identical to a single-process run), the
// engine steps only this member's tile span, and boundary traffic is
// exchanged through the transport at every synchronization point. The
// returned document is byte-identical to the single-process run of the
// same request — any member can produce it (the final gather leaves
// every member with the full statistics), the coordinator uses the
// root's.
//
// Unlike Execute, a run-level failure is returned as an error instead
// of being recorded inside the document: a member that silently
// "succeeded" with an error document would leave its siblings parked in
// a barrier it will never reach again.
func ExecuteShard(ctx context.Context, req SubmitRequest, opts ShardExecOptions) (*ExecResult, error) {
	sc, apiErr := buildScenario(req)
	if apiErr != nil {
		return nil, fmt.Errorf("%w: %s", ErrInvalidRequest, apiErr.Message)
	}
	if sc.shards < 2 {
		return nil, fmt.Errorf("%w: request is not sharded", ErrInvalidRequest)
	}
	if opts.ShardCount != sc.shards {
		return nil, fmt.Errorf("%w: assignment is shard %d/%d but the request shards %d ways",
			ErrInvalidRequest, opts.Shard, opts.ShardCount, sc.shards)
	}
	if opts.Shard < 0 || opts.Shard >= sc.shards {
		return nil, fmt.Errorf("%w: shard index %d out of range", ErrInvalidRequest, opts.Shard)
	}
	if opts.Transport == nil {
		return nil, fmt.Errorf("%w: sharded execution needs a transport", ErrInvalidRequest)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	every := opts.CheckpointEvery
	if every == 0 {
		every = 100_000
	}
	env := &execEnv{
		warm:      sweep.NewSnapshotCache(""),
		store:     opts.Checkpoints,
		ckptEvery: every,
		counters:  &envCounters{},
		// Per-shard store keys ("-s0", "-s1", ...): members of one run
		// checkpoint concurrently and must never clobber each other.
		ckptSuffix: fmt.Sprintf("-s%d", opts.Shard),
	}
	if opts.OnEngine != nil {
		env.probe = obs.NewSimProbe()
	}
	pool := sweep.NewBudget(workers)
	sink := callbackSink{ExecOptions{
		OnProgress: opts.OnProgress, OnResumed: opts.OnResumed, OnCheckpoint: opts.OnCheckpoint,
		OnEngine: opts.OnEngine, OnTelemetry: opts.OnTelemetry,
	}}
	if opts.OnTelemetry != nil {
		env.telemetry = func(s obs.TelemetrySnapshot) { backend.SinkTelemetry(sink, s) }
		env.telEvery = opts.TelemetryEvery
	}
	spec := sc.runs[0]
	items := []sweep.Item{{
		Key: spec.key, Weight: spec.weight, Seed: spec.seed,
		Run: env.runShard(sc, sink, spec, opts.Shard, opts.Transport),
	}}
	cfg := sweep.Config{
		Workers: pool.Cap(),
		Pool:    pool,
		Seed:    sc.seed,
		OnProgress: func(done, total int, r sweep.Result) {
			sink.Progress(done, total, r.Key)
		},
	}
	results := sweep.Run(ctx, items, cfg)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if results[0].Err != nil {
		return nil, results[0].Err
	}
	doc := sweep.NewDocument(sc.name, sc.hash, sc.seed, results)
	b, err := encodeDocument(doc)
	if err != nil {
		return nil, err
	}
	return &ExecResult{Doc: b, RunErrs: 0, Name: sc.name, Hash: sc.hash, Seed: sc.seed}, nil
}

// localShardTransport connects an in-process member directly to a
// backend.ShardGroup — the transport of the scheduler's local fallback,
// where every member of the group runs in the daemon process itself.
type localShardTransport struct {
	ctx   context.Context
	group *backend.ShardGroup
	shard int
	epoch int
}

// NewLocalShardTransport builds the in-process member transport.
func NewLocalShardTransport(ctx context.Context, group *backend.ShardGroup, shard int) ShardTransport {
	return &localShardTransport{ctx: ctx, group: group, shard: shard}
}

func (t *localShardTransport) Sync(v sim.ShardVote, boundary []byte) (sim.ShardDecision, [][]byte, error) {
	dec, payloads, restart, err := t.group.Sync(t.ctx, t.epoch, v, boundary)
	if err != nil {
		return sim.ShardDecision{}, nil, err
	}
	if restart != nil {
		t.epoch = restart.Epoch
		return sim.ShardDecision{}, nil, &core.ShardRestartError{Epoch: uint64(restart.Epoch), Cycle: restart.Cycle}
	}
	return dec, payloads, nil
}

func (t *localShardTransport) Gather(payload []byte) ([][]byte, error) {
	payloads, restart, err := t.group.Gather(t.ctx, t.epoch, payload)
	if err != nil {
		return nil, err
	}
	if restart != nil {
		t.epoch = restart.Epoch
		return nil, &core.ShardRestartError{Epoch: uint64(restart.Epoch), Cycle: restart.Cycle}
	}
	return payloads, nil
}

func (t *localShardTransport) StableCheckpoint() ([]byte, bool, error) {
	_, blob, ok := t.group.StableBlob(t.shard)
	return blob.Data, ok, nil
}

// runShard compiles the scenario's single runSpec into this member's
// sweep run function: the ordinary chunked, checkpointed execution of
// runConfig/runMips wrapped in the group-rollback loop. When a barrier
// call reports that the group lost a member (*core.ShardRestartError),
// the attempt's state is abandoned, the group's stable checkpoint is
// fetched and restored (or the system rebuilt from scratch), and the
// member rejoins under the new epoch. Determinism makes the rollback
// invisible in the result: re-executed chunks reproduce the exact
// trajectory, so the final document is still byte-identical to an
// uninterrupted single-process run.
func (e *execEnv) runShard(sc *scenario, sink backend.Sink, spec runSpec, shard int, transport ShardTransport) func(sweep.Ctx) (any, error) {
	return func(c sweep.Ctx) (any, error) {
		seed := c.Seed
		rc := spec.cfg
		rc.Engine.Workers = c.Workers
		rc.Engine.Seed = seed

		var (
			build  func() (*core.System, error)
			warmup uint64
			target uint64
		)
		if m := spec.mips; m != nil {
			img, err := mips.Assemble(mipsWorkloadSource(m, rc.Topology.Nodes()))
			if err != nil {
				return nil, err
			}
			target = m.MaxCycles
			build = func() (*core.System, error) {
				sys, err := core.New(rc)
				if err != nil {
					return nil, err
				}
				nodes := make([]noc.NodeID, rc.Topology.Nodes())
				for i := range nodes {
					nodes[i] = noc.NodeID(i)
				}
				if mipsShared(m) {
					fab, err := sys.AttachMemory(*rc.Memory)
					if err != nil {
						return nil, err
					}
					sys.AttachMIPSShared([]noc.NodeID{0, nodes[len(nodes)-1]}, img, fab, *rc.Memory)
				} else {
					sys.AttachMIPS(nodes, img)
				}
				return sys, nil
			}
		} else {
			warmup = uint64(rc.WarmupCycles)
			target = uint64(rc.AnalyzedCycles)
			rc.WarmupCycles, rc.AnalyzedCycles = 0, 0
			build = func() (*core.System, error) {
				sys, err := core.New(rc)
				if err != nil {
					return nil, err
				}
				if err := sys.AttachSyntheticTraffic(); err != nil {
					return nil, err
				}
				return sys, nil
			}
		}
		stop := cancelStop(c.Context)
		ckptOn := e.store != nil

		// pre/preMeta carry rollback-restored state into the next attempt.
		var pre *core.System
		var preMeta ckptMeta
		usePre := false
		for {
			var sys *core.System
			meta := ckptMeta{Name: sc.name, Hash: sc.hash, Key: spec.key, Seed: seed, Phase: "warmup"}
			if spec.mips != nil {
				meta.Phase = "measured"
			}
			switch {
			case usePre:
				sys, meta, usePre = pre, preMeta, false
				pre = nil
			case ckptOn:
				if restored, m, ok := e.loadCheckpoint(sc, spec.key, seed, build); ok {
					sys, meta = restored, m
					e.counters.runsResumed.Add(1)
					sink.Resumed(spec.key, restored.Clock())
				}
			}
			if sys == nil {
				var err error
				if sys, err = build(); err != nil {
					return nil, err
				}
			}
			if e.probe != nil {
				// The probe spans rollback attempts: re-executed cycles are
				// real engine work and should show up as such.
				sys.SetProbe(e.probe)
			}
			if err := sys.EnableSharding(shard, sc.shards, transport); err != nil {
				return nil, err
			}

			err := func() error {
				// Per attempt: a rollback rebuilds the system, and the new
				// engine needs its own sampler and pump.
				stopTel := e.startTelemetry(sys)
				defer stopTel()
				cr := &chunkedRun{env: e, sys: sys, sc: sc, sink: sink, meta: &meta, ckptOn: ckptOn, stop: stop}
				if meta.Phase == "warmup" {
					if ok, err := cr.advance(c.Context, warmup, false, nil); !ok {
						return err
					}
					sys.ResetStats()
					meta.Phase, meta.Done = "measured", 0
				}
				// No member-local done predicate: an application workload's
				// completion is the group decision (per-span halt conditions
				// ANDed, global in-flight summed), surfacing as Stopped.
				if ok, err := cr.advance(c.Context, target, true, nil); !ok {
					return err
				}
				return sys.ShardGather()
			}()
			if err == nil {
				if ckptOn {
					e.removeCheckpoint(sc, spec.key)
				}
				return summarize(sys.Summary(), rc.Topology.Nodes(), meta.Exec, meta.Skip), nil
			}
			var rs *core.ShardRestartError
			if !errors.As(err, &rs) {
				return nil, err
			}
			// Group rollback. The member's own latest checkpoint may be
			// AHEAD of the group's stable cycle, so it must not be used:
			// restore the coordinator's stable blob, or start over.
			if rs.Cycle == 0 {
				if ckptOn {
					e.removeCheckpoint(sc, spec.key)
				}
				continue
			}
			blob, ok, err := transport.StableCheckpoint()
			if err != nil {
				return nil, err
			}
			if !ok {
				// The stable point vanished between the restart notice and
				// the fetch (possible only through another rollback); retry
				// from scratch and let the next barrier sort it out.
				if ckptOn {
					e.removeCheckpoint(sc, spec.key)
				}
				continue
			}
			restored, m, ok2 := e.decodeCheckpoint(sc, spec.key, seed, blob, build)
			if !ok2 {
				return nil, fmt.Errorf("service: shard %d: stable checkpoint blob does not restore", shard)
			}
			pre, preMeta, usePre = restored, m, true
		}
	}
}

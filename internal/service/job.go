package service

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"hornet/internal/obs"
	"hornet/internal/service/backend"
)

// job is the server-side job record: client-visible info, the compiled
// scenario, the cancellation handle, and the progress subscribers.
type job struct {
	mu     sync.Mutex
	info   JobInfo
	sc     *scenario
	req    SubmitRequest
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{} // closed on terminal transition
	subs   map[int]chan Event
	nextID int
	result []byte // canonical document bytes, set on StateDone

	// trace is the job's span timeline (queued → dispatched → running →
	// checkpoint → migrate/rollback → done), served as Chrome
	// trace_event JSON. It has its own lock; see obs.Timeline.
	trace *obs.Timeline
	// prevEngine is the last probe snapshot folded into the server's
	// engine histograms, kept to compute deltas (guarded by mu).
	prevEngine obs.ProbeSnapshot

	// telemetry holds the latest machine-telemetry sample per shard
	// index (one entry, index 0, for unsharded jobs); prevMerged is the
	// previous merged view, kept to derive counter-track rates. Guarded
	// by mu.
	telemetry  map[int]obs.TelemetrySnapshot
	prevMerged obs.TelemetrySnapshot

	// lastActive is the wall time of the last observed forward progress
	// (any progress, engine, telemetry, checkpoint or resume report);
	// stalled marks an open stall episode, re-armed by the next progress
	// observation. Both guarded by mu; read by the server's watchdog.
	lastActive time.Time
	stalled    bool

	// onState, when set, receives the client-visible info snapshot after
	// every state transition (start, finalize), called OUTSIDE the job
	// lock; the durable server journals transitions through it. Set
	// before the job is submitted, never mutated after.
	onState func(JobInfo)

	// restore carries what a journal replay recovered about this job:
	// the fleet task identity it held before the coordinator died and
	// the checkpoint blobs the next executor resumes from. Nil for
	// ordinary submissions. Written before submit, read by the scheduler.
	restore *restoreState

	// remote mirrors the job's journaled fleet facts (latest assignment,
	// latest promoted stable set) so journal compaction can rebuild the
	// live records without replaying the log. Guarded by mu.
	remote remoteFacts
}

// restoreState seeds a journal-replayed job: the fleet task ID it held
// when the coordinator died (Execute reuses it so the still-running
// worker can be re-adopted), its slot grant, and the persisted
// checkpoint blobs to hand the next executor.
type restoreState struct {
	taskID      string
	slots       int
	checkpoints map[string]backend.Blob
}

// remoteFacts is a job's durable fleet state for journal compaction.
type remoteFacts struct {
	taskID      string
	slots       int
	stableEpoch int
	stableCycle uint64
	stableKeys  []string
}

func newJob(id string, req SubmitRequest, sc *scenario, parent context.Context, now time.Time) *job {
	ctx, cancel := context.WithCancel(parent)
	total := len(sc.runs) // figure jobs learn their total from progress
	j := &job{
		info: JobInfo{
			ID:         id,
			Name:       sc.name,
			Kind:       sc.surfaceKind(),
			State:      StateQueued,
			ConfigHash: sc.hash,
			Seed:       sc.seed,
			RunsTotal:  total,
			Created:    now,
		},
		sc:     sc,
		req:    req,
		ctx:    ctx,
		cancel: cancel,
		done:   make(chan struct{}),
		subs:   map[int]chan Event{},
		trace:  obs.NewTimeline(id+" "+sc.name, now),
	}
	j.trace.Begin("queued", nil)
	return j
}

// task projects the job onto the backend layer's unit of work: the
// compiled identity plus the original request bytes a remote worker
// revalidates and executes.
func (j *job) task() *backend.Task {
	reqJSON, _ := json.Marshal(j.req)
	t := &backend.Task{
		JobID:     j.info.ID,
		Name:      j.sc.name,
		Hash:      j.sc.hash,
		Seed:      j.sc.seed,
		Kind:      j.sc.kind,
		Weight:    j.req.Workers,
		RunsTotal: len(j.sc.runs),
		Shards:    j.sc.shards,
		Request:   reqJSON,
		Compiled:  j.sc,
	}
	if r := j.restore; r != nil {
		if len(r.checkpoints) > 0 {
			t.Checkpoints = make(map[string]backend.Blob, len(r.checkpoints))
			for k, b := range r.checkpoints {
				t.Checkpoints[k] = b
			}
		}
		if j.sc.shards < 2 {
			// Sharded members are never re-adopted (the rollback
			// machinery stays authoritative), so only plain tasks keep
			// their pre-crash identity.
			t.ReattachID = r.taskID
		}
	}
	return t
}

// setBackend records which execution backend is running the job.
func (j *job) setBackend(name string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.info.Backend = name
}

// Info returns a snapshot of the client-visible state.
func (j *job) Info() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.info
}

// Result returns the document bytes and whether they are available.
func (j *job) Result() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.info.State == StateDone
}

// Done exposes the terminal-transition channel for long-polling.
func (j *job) Done() <-chan struct{} { return j.done }

// start moves the job to running; it reports false when the job was
// already cancelled (the scheduler then skips it).
func (j *job) start(now time.Time) bool {
	j.mu.Lock()
	if j.info.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.info.State = StateRunning
	j.info.Started = now
	j.lastActive = now
	// Re-arm the watchdog: a queued-stall episode ends the moment the
	// job starts executing.
	j.stalled = false
	j.broadcastLocked(Event{Type: "state", Job: j.info.ID, State: StateRunning})
	j.trace.End("queued", nil)
	j.trace.Begin("running", map[string]string{"backend": j.info.Backend})
	info, hook := j.info, j.onState
	j.mu.Unlock()
	if hook != nil {
		hook(info)
	}
	return true
}

// touchLocked records forward progress for the stall watchdog and
// closes any open stall episode.
func (j *job) touchLocked() {
	j.lastActive = time.Now()
	j.stalled = false
}

// progress records one completed run and notifies subscribers.
func (j *job) progress(done, total int, key string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.touchLocked()
	j.info.RunsDone = done
	j.info.RunsTotal = total
	j.broadcastLocked(Event{Type: "progress", Job: j.info.ID, Done: done, Total: total, Key: key})
}

// noteResumed records that one of the job's runs restored a checkpoint
// instead of starting at cycle 0, and tells subscribers where.
func (j *job) noteResumed(key string, cycle uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.touchLocked()
	j.info.ResumedRuns++
	j.broadcastLocked(Event{Type: "resumed", Job: j.info.ID, Key: key, Cycle: cycle})
	j.trace.Instant("resumed", map[string]string{"key": key, "cycle": strconv.FormatUint(cycle, 10)})
}

// noteCheckpoint records one autosaved snapshot.
func (j *job) noteCheckpoint(key string, cycle uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.touchLocked()
	j.info.Checkpoints++
	j.broadcastLocked(Event{Type: "checkpoint", Job: j.info.ID, Key: key, Cycle: cycle})
	j.trace.Instant("checkpoint", map[string]string{"key": key, "cycle": strconv.FormatUint(cycle, 10)})
}

// note maps backend lifecycle annotations onto the trace timeline. It
// is called from under the fleet's lock (via backend.SinkNote), so it
// must only touch the timeline's own lock.
func (j *job) note(event string, fields map[string]string) {
	switch event {
	case "dispatched":
		// A dispatch closes an open migration span (re-dispatch after a
		// worker died) and is a point event otherwise.
		j.trace.End("migrate", fields)
		j.trace.Instant("dispatched", fields)
	case "requeued":
		j.trace.Begin("migrate", fields)
	default:
		j.trace.Instant(event, fields)
	}
}

// engineDelta is the increment between two probe snapshots, folded
// into the server's engine histograms.
type engineDelta struct {
	cycles                    uint64
	computeS, barrierS, syncS float64
	syncCalls                 uint64
}

// setEngine records the latest engine probe snapshot, surfaces it to
// SSE subscribers, and returns the delta since the previous snapshot.
// A snapshot smaller than its predecessor means the job migrated to a
// fresh executor (new probe); the whole snapshot is then the delta.
func (j *job) setEngine(snap obs.ProbeSnapshot) engineDelta {
	j.mu.Lock()
	defer j.mu.Unlock()
	prev := j.prevEngine
	if snap.Cycles != prev.Cycles {
		j.touchLocked()
	}
	d := engineDelta{
		computeS:  (snap.ComputeWallMS() - prev.ComputeWallMS()) / 1e3,
		barrierS:  (snap.BarrierWallMS() - prev.BarrierWallMS()) / 1e3,
		syncS:     (snap.ShardSyncWallMS - prev.ShardSyncWallMS) / 1e3,
		cycles:    snap.Cycles - prev.Cycles,
		syncCalls: snap.ShardSyncs - prev.ShardSyncs,
	}
	if snap.Cycles < prev.Cycles || d.computeS < 0 || d.barrierS < 0 {
		d = engineDelta{
			computeS:  snap.ComputeWallMS() / 1e3,
			barrierS:  snap.BarrierWallMS() / 1e3,
			syncS:     snap.ShardSyncWallMS / 1e3,
			cycles:    snap.Cycles,
			syncCalls: snap.ShardSyncs,
		}
	}
	j.prevEngine = snap
	j.info.Engine = &snap
	j.broadcastLocked(Event{Type: "engine", Job: j.info.ID, Engine: &snap})
	return d
}

// setTelemetry folds one executor's machine-telemetry sample into the
// job's merged view and notifies subscribers. Sharded jobs report one
// sample per member tile span; the merge presents them as a single
// full-machine snapshot. The merged view also drives the trace
// timeline's Perfetto counter tracks (injection rate, buffered flits).
func (j *job) setTelemetry(snap obs.TelemetrySnapshot) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.telemetry == nil {
		j.telemetry = map[int]obs.TelemetrySnapshot{}
	}
	j.telemetry[snap.Shard] = snap
	parts := make([]obs.TelemetrySnapshot, 0, len(j.telemetry))
	for _, p := range j.telemetry {
		parts = append(parts, p)
	}
	merged := obs.MergeTelemetry(parts)
	prev := j.prevMerged
	j.prevMerged = merged
	j.info.Telemetry = &merged
	if merged.Cycle > prev.Cycle {
		j.touchLocked()
		// Counter tracks ride the trace timeline as Perfetto "C" events:
		// the measured-window injection rate since the previous sample
		// (guarded against the warmup-boundary stats reset, where the
		// cumulative counters legitimately shrink) and the instantaneous
		// network occupancy.
		if inj := merged.FlitsInjected(); inj >= prev.FlitsInjected() {
			rate := float64(inj-prev.FlitsInjected()) / float64(merged.Cycle-prev.Cycle)
			j.trace.Counter("injection_rate", map[string]float64{"flits_per_cycle": rate})
		}
		j.trace.Counter("buffer_occupancy", map[string]float64{"flits": float64(merged.BufferedFlits())})
	}
	j.broadcastLocked(Event{Type: "telemetry", Job: j.info.ID, Telemetry: &merged})
}

// checkStall is the watchdog probe: it reports true exactly once per
// stall episode — a running job whose executors have shown no forward
// progress, OR a queued job no scheduler worker has picked up, for at
// least window. The next progress observation (or the start transition,
// for queued stalls) re-arms the episode. The trace instant and
// subscriber event fire here so the caller only has to log and count.
func (j *job) checkStall(now time.Time, window time.Duration) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if (j.info.State != StateRunning && j.info.State != StateQueued) || j.stalled {
		return false
	}
	last := j.lastActive
	if last.IsZero() {
		last = j.info.Started
	}
	if last.IsZero() {
		// Queued jobs have never run: the stall clock starts at admission.
		last = j.info.Created
	}
	if now.Sub(last) < window {
		return false
	}
	j.stalled = true
	j.info.Stalls++
	j.trace.Instant("stalled", map[string]string{
		"idle":  now.Sub(last).Round(time.Millisecond).String(),
		"state": j.info.State,
	})
	j.broadcastLocked(Event{Type: "stalled", Job: j.info.ID})
	return true
}

// finish marks the job done with its canonical result bytes.
func (j *job) finish(result []byte, cacheHit bool, now time.Time) {
	j.finalize(StateDone, "", now, func() {
		j.result = result
		j.info.CacheHit = cacheHit
		if cacheHit {
			// A cache hit never ran, so progress shows completion.
			j.info.RunsDone = j.info.RunsTotal
		}
	})
}

// coalesceFinish marks the job done with another job's result bytes
// (single-flight: an identical scenario was already in flight).
func (j *job) coalesceFinish(result []byte, now time.Time) {
	j.finalize(StateDone, "", now, func() {
		j.result = result
		j.info.Coalesced = true
		j.info.RunsDone = j.info.RunsTotal
	})
}

// fail marks the job failed with a diagnostic message.
func (j *job) fail(msg string, now time.Time) {
	j.finalize(StateFailed, msg, now, nil)
}

// markCanceled records the terminal canceled state.
func (j *job) markCanceled(now time.Time) {
	j.finalize(StateCanceled, "", now, nil)
}

func (j *job) finalize(state, msg string, now time.Time, fill func()) {
	j.mu.Lock()
	if j.info.Terminal() {
		j.mu.Unlock()
		return
	}
	j.info.State = state
	j.info.Error = msg
	j.info.Finished = now
	if fill != nil {
		fill()
	}
	j.trace.End("queued", nil)
	j.trace.End("migrate", nil)
	j.trace.End("running", nil)
	j.trace.Instant(state, nil)
	// No terminal broadcast: closing the subscriber channels makes every
	// SSE handler emit one final full snapshot, so broadcasting here
	// would duplicate the terminal frame (and without done/total counts).
	close(j.done)
	for id, ch := range j.subs {
		close(ch)
		delete(j.subs, id)
	}
	info, hook := j.info, j.onState
	j.mu.Unlock()
	if hook != nil {
		hook(info)
	}
}

// restoreTerminal rebuilds a journal-replayed job that had already
// reached a terminal state: the replayed info becomes the record
// wholesale (result bytes included for done jobs) and the terminal
// channel closes, with no broadcast and no onState journaling — the
// journal already holds these facts.
func (j *job) restoreTerminal(info JobInfo, result []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.info = info
	j.result = result
	j.trace.End("queued", nil)
	j.trace.Instant("restored", map[string]string{"state": info.State})
	close(j.done)
}

// noteAssigned mirrors a journaled fleet assignment for compaction.
func (j *job) noteAssigned(taskID string, slots int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.remote.taskID, j.remote.slots = taskID, slots
}

// noteStable mirrors a journaled stable-set promotion for compaction.
func (j *job) noteStable(epoch int, cycle uint64, keys []string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.remote.stableEpoch, j.remote.stableCycle = epoch, cycle
	j.remote.stableKeys = append([]string(nil), keys...)
}

// remoteFacts snapshots the journal-compaction state.
func (j *job) remoteFacts() remoteFacts {
	j.mu.Lock()
	defer j.mu.Unlock()
	rf := j.remote
	rf.stableKeys = append([]string(nil), j.remote.stableKeys...)
	return rf
}

// subscribe registers a progress listener. The channel is closed when the
// job reaches a terminal state (or immediately if it already has); slow
// consumers lose intermediate progress events rather than stalling the
// scheduler.
func (j *job) subscribe() (<-chan Event, func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ch := make(chan Event, 64)
	if j.info.Terminal() {
		close(ch)
		return ch, func() {}
	}
	id := j.nextID
	j.nextID++
	j.subs[id] = ch
	return ch, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if c, ok := j.subs[id]; ok {
			close(c)
			delete(j.subs, id)
		}
	}
}

func (j *job) broadcastLocked(ev Event) {
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default: // slow consumer: drop the event, never block the scheduler
		}
	}
}

// jobStore indexes jobs by ID and preserves submission order.
type jobStore struct {
	mu    sync.Mutex
	byID  map[string]*job
	order []*job
	seq   int
}

func newJobStore() *jobStore {
	return &jobStore{byID: map[string]*job{}}
}

// nextID mints a monotonically increasing job ID.
func (s *jobStore) nextID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	return fmt.Sprintf("job-%06d", s.seq)
}

// setSeqFloor advances the ID counter past n, so IDs minted after a
// journal replay never collide with the replayed jobs'.
func (s *jobStore) setSeqFloor(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n > s.seq {
		s.seq = n
	}
}

func (s *jobStore) add(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byID[j.Info().ID] = j
	s.order = append(s.order, j)
}

func (s *jobStore) get(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.byID[id]
	return j, ok
}

// list returns job snapshots in submission order (newest last).
func (s *jobStore) list() []JobInfo {
	s.mu.Lock()
	jobs := append([]*job(nil), s.order...)
	s.mu.Unlock()
	out := make([]JobInfo, len(jobs))
	for i, j := range jobs {
		out[i] = j.Info()
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// expire removes terminal jobs that finished before cutoff (retention
// TTL) and returns how many were dropped, plus the sum of their trace
// timelines' dropped-event counts (the server banks it so the
// trace-dropped counter survives the records). Expired jobs 404
// afterwards; their cached result documents are unaffected.
func (s *jobStore) expire(cutoff time.Time) (int, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := make([]*job, 0, len(s.order))
	dropped, traceDropped := 0, 0
	for _, j := range s.order {
		info := j.Info()
		if info.Terminal() && !info.Finished.IsZero() && info.Finished.Before(cutoff) {
			delete(s.byID, info.ID)
			dropped++
			traceDropped += j.trace.Dropped()
			continue
		}
		kept = append(kept, j)
	}
	s.order = kept
	return dropped, traceDropped
}

// all returns the jobs themselves (shutdown cancellation).
func (s *jobStore) all() []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*job(nil), s.order...)
}

// countByState tallies jobs for the stats endpoint.
func (s *jobStore) countByState() map[string]int {
	counts := map[string]int{}
	for _, info := range s.list() {
		counts[info.State]++
	}
	return counts
}

package service

import (
	"bytes"
	"testing"
	"time"

	"hornet/internal/config"
)

// These tests drive the daemon's internals directly (buildScenario +
// scheduler), skipping the HTTP layer the e2e suite already covers, so
// restart/resume timing is deterministic and fast.

// submitDirect validates and enqueues a request exactly as handleSubmit
// does, returning the job handle.
func submitDirect(t *testing.T, srv *Server, req SubmitRequest) *job {
	t.Helper()
	sc, apiErr := buildScenario(req)
	if apiErr != nil {
		t.Fatalf("buildScenario: %v", apiErr)
	}
	j := newJob(srv.jobs.nextID(), req, sc, srv.sched.baseCtx, time.Now())
	srv.jobs.add(j)
	if apiErr := srv.sched.submit(j); apiErr != nil {
		t.Fatalf("submit: %v", apiErr)
	}
	return j
}

func waitDone(t *testing.T, j *job, timeout time.Duration) JobInfo {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(timeout):
		t.Fatalf("job %s did not finish within %v (state %s)", j.Info().ID, timeout, j.Info().State)
	}
	return j.Info()
}

// resumeConfig is a checkpoint-heavy scenario: long measured window,
// no fast-forward, 4x4 mesh.
func resumeConfig(analyzed int) *config.Config {
	cfg := config.Default()
	cfg.Topology.Width, cfg.Topology.Height = 4, 4
	cfg.Traffic = []config.TrafficConfig{{Pattern: config.PatternTranspose, InjectionRate: 0.08}}
	cfg.WarmupCycles = 400
	cfg.AnalyzedCycles = analyzed
	return &cfg
}

// TestCheckpointResumeAfterRestart is the killed-daemon drill: daemon A
// autosaves a running job, dies (Close cancels it mid-simulation),
// daemon B with the same checkpoint directory receives the identical
// scenario and must resume from the last snapshot instead of cycle 0 —
// and produce byte-identical results to a never-interrupted run.
func TestCheckpointResumeAfterRestart(t *testing.T) {
	analyzed := 60_000
	if raceDetector {
		analyzed = 20_000
	}
	ckptDir := t.TempDir()
	req := SubmitRequest{Name: "resume-me", Config: resumeConfig(analyzed), Seed: 11}

	// Daemon A: run until at least one checkpoint exists, then die.
	srvA := New(Options{MaxJobs: 1, Budget: 1, CheckpointDir: ckptDir, CheckpointEvery: 1_000})
	jA := submitDirect(t, srvA, req)
	deadline := time.Now().Add(60 * time.Second)
	for jA.Info().Checkpoints < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint written; job state %+v", jA.Info())
		}
		if jA.Info().Terminal() {
			t.Fatalf("job finished before a checkpoint could be observed; state %+v", jA.Info())
		}
		time.Sleep(2 * time.Millisecond)
	}
	srvA.Close() // cancels the running job; the drain saves a final snapshot
	if got := jA.Info().State; got != StateCanceled {
		t.Fatalf("killed daemon's job state = %s, want %s", got, StateCanceled)
	}

	// Daemon B, same checkpoint directory: the resubmitted scenario must
	// resume, not restart.
	srvB := New(Options{MaxJobs: 1, Budget: 1, CheckpointDir: ckptDir, CheckpointEvery: 1_000})
	defer srvB.Close()
	jB := submitDirect(t, srvB, req)
	infoB := waitDone(t, jB, 120*time.Second)
	if infoB.State != StateDone {
		t.Fatalf("resumed job state = %s (%s)", infoB.State, infoB.Error)
	}
	if infoB.ResumedRuns != 1 {
		t.Errorf("resumed job reports %d resumed runs, want 1", infoB.ResumedRuns)
	}
	resumedBytes, ok := jB.Result()
	if !ok {
		t.Fatal("resumed job has no result")
	}
	if st := srvB.Stats(); st.RunsResumed != 1 {
		t.Errorf("stats.RunsResumed = %d, want 1", st.RunsResumed)
	}

	// Reference: the same scenario, same checkpoint cadence, never
	// interrupted (fresh checkpoint directory).
	srvC := New(Options{MaxJobs: 1, Budget: 1, CheckpointDir: t.TempDir(), CheckpointEvery: 1_000})
	defer srvC.Close()
	jC := submitDirect(t, srvC, req)
	infoC := waitDone(t, jC, 120*time.Second)
	if infoC.State != StateDone {
		t.Fatalf("reference job state = %s (%s)", infoC.State, infoC.Error)
	}
	refBytes, _ := jC.Result()
	if !bytes.Equal(resumedBytes, refBytes) {
		t.Errorf("resumed document differs from uninterrupted run:\nresumed: %s\nref:     %s",
			resumedBytes, refBytes)
	}
}

// TestShareWarmupBatchWarmsOnce: a batch whose items differ only in the
// measured window simulates the shared warmup exactly once and forks
// the rest from the snapshot; output is deterministic across daemons.
func TestShareWarmupBatchWarmsOnce(t *testing.T) {
	batch := func() []BatchItem {
		var items []BatchItem
		for i, analyzed := range []int{1_000, 2_000, 3_000} {
			cfg := resumeConfig(analyzed)
			cfg.WarmupCycles = 2_000
			items = append(items, BatchItem{Key: "w" + string(rune('a'+i)), Config: *cfg})
		}
		return items
	}
	req := SubmitRequest{Name: "fork-many", Batch: batch(), Seed: 5, ShareWarmup: true}

	srv := New(Options{MaxJobs: 1, Budget: 1})
	defer srv.Close()
	j := submitDirect(t, srv, req)
	info := waitDone(t, j, 120*time.Second)
	if info.State != StateDone {
		t.Fatalf("job state = %s (%s)", info.State, info.Error)
	}
	st := srv.Stats()
	if st.WarmupMisses != 1 {
		t.Errorf("warmup simulated %d times, want exactly 1", st.WarmupMisses)
	}
	if st.WarmupHits != 2 {
		t.Errorf("warmup snapshot hits = %d, want 2", st.WarmupHits)
	}
	got, _ := j.Result()

	// A different daemon (fresh warmup cache) must produce identical bytes.
	srv2 := New(Options{MaxJobs: 2, Budget: 2})
	defer srv2.Close()
	j2 := submitDirect(t, srv2, req)
	if info := waitDone(t, j2, 120*time.Second); info.State != StateDone {
		t.Fatalf("second daemon job state = %s (%s)", info.State, info.Error)
	}
	got2, _ := j2.Result()
	if !bytes.Equal(got, got2) {
		t.Errorf("share_warmup documents differ across daemons:\n%s\n%s", got, got2)
	}

	// Identity forking: the same batch without share_warmup is a
	// different scenario (different seeding) and must hash differently.
	plain, apiErr := buildScenario(SubmitRequest{Name: "fork-many", Batch: batch(), Seed: 5})
	if apiErr != nil {
		t.Fatalf("buildScenario: %v", apiErr)
	}
	if plain.hash == j.sc.hash {
		t.Error("share_warmup did not fork the cache identity")
	}
}

// TestSingleFlightCoalescesConcurrentDuplicates: two identical
// submissions in flight at once run one simulation; the follower
// attaches to the leader and serves byte-identical results.
func TestSingleFlightCoalesces(t *testing.T) {
	analyzed := 50_000
	if raceDetector {
		analyzed = 15_000
	}
	srv := New(Options{MaxJobs: 2, Budget: 2})
	defer srv.Close()
	req := SubmitRequest{Name: "dup", Config: resumeConfig(analyzed), Seed: 3}

	j1 := submitDirect(t, srv, req)
	deadline := time.Now().Add(60 * time.Second)
	for j1.Info().State == StateQueued {
		if time.Now().After(deadline) {
			t.Fatalf("leader never started: %+v", j1.Info())
		}
		time.Sleep(time.Millisecond)
	}
	j2 := submitDirect(t, srv, req)

	info1 := waitDone(t, j1, 120*time.Second)
	info2 := waitDone(t, j2, 120*time.Second)
	if info1.State != StateDone || info2.State != StateDone {
		t.Fatalf("states: %s / %s (%s %s)", info1.State, info2.State, info1.Error, info2.Error)
	}
	if info1.Coalesced {
		t.Error("leader job reports coalesced")
	}
	if !info2.Coalesced && !info2.CacheHit {
		t.Errorf("duplicate submission neither coalesced nor cache-hit: %+v", info2)
	}
	b1, _ := j1.Result()
	b2, _ := j2.Result()
	if !bytes.Equal(b1, b2) {
		t.Error("coalesced result differs from leader result")
	}
	if info2.Coalesced {
		if st := srv.Stats(); st.CoalescedJobs != 1 {
			t.Errorf("stats.CoalescedJobs = %d, want 1", st.CoalescedJobs)
		}
	}
}

// TestJobTTLExpiresFinishedRecords: finished job records vanish after
// the retention TTL; the store no longer returns them.
func TestJobTTLExpiresFinishedRecords(t *testing.T) {
	srv := New(Options{MaxJobs: 1, Budget: 1, JobTTL: 60 * time.Millisecond})
	defer srv.Close()
	cfg := resumeConfig(200)
	cfg.WarmupCycles = 50
	j := submitDirect(t, srv, SubmitRequest{Name: "ephemeral", Config: cfg, Seed: 1})
	info := waitDone(t, j, 60*time.Second)
	if info.State != StateDone {
		t.Fatalf("job state = %s (%s)", info.State, info.Error)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, ok := srv.jobs.get(info.ID); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("finished job record never expired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := srv.Stats(); st.JobsExpired < 1 {
		t.Errorf("stats.JobsExpired = %d, want >= 1", st.JobsExpired)
	}
	// The result cache is retention-independent: a resubmission still
	// hits it byte-identically.
	j2 := submitDirect(t, srv, SubmitRequest{Name: "ephemeral", Config: cfg, Seed: 1})
	if info2 := waitDone(t, j2, 60*time.Second); !info2.CacheHit {
		t.Errorf("resubmission after record expiry missed the result cache: %+v", info2)
	}
}

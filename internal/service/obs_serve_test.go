// Observability contract tests: the /metrics exposition must agree
// with the /api/v1/stats JSON (two views over one set of sources), and
// the per-job trace endpoint must serve a loadable Chrome trace_event
// document through the Go client.
package service_test

import (
	"bufio"
	"context"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"hornet/internal/service"
)

// scrapeMetrics fetches url and parses the Prometheus text exposition
// into series → value ("hornet_jobs{state=\"done\"}" → 2). HELP/TYPE
// comments are skipped; the format itself is validated by the obs
// package's own tests.
func scrapeMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q, want Prometheus text exposition", ct)
	}
	series := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line: %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("malformed value in %q: %v", line, err)
		}
		series[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return series
}

// /metrics and Stats() are two renderings of the same counters; after a
// checkpointed job completes they must tell the same story.
func TestMetricsAgreeWithStats(t *testing.T) {
	srv, c := startServer(t, service.Options{
		MaxJobs:         2,
		Budget:          2,
		CheckpointDir:   t.TempDir(),
		CheckpointEvery: 500,
	})
	ctx := context.Background()

	info, err := c.SubmitAndWait(ctx, service.SubmitRequest{Config: tinyConfig(), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if info.State != service.StateDone {
		t.Fatalf("job state = %s (%s)", info.State, info.Error)
	}

	series := scrapeMetrics(t, c.Base+"/metrics")
	st := srv.Stats()

	// Nothing is in flight, so the snapshot race window is empty: every
	// pair below reads settled counters.
	want := map[string]float64{
		`hornet_jobs{state="done"}`:            float64(st.JobsDone),
		`hornet_jobs{state="running"}`:         float64(st.JobsRunning),
		`hornet_jobs{state="failed"}`:          float64(st.JobsFailed),
		`hornet_budget_capacity`:               float64(st.BudgetCap),
		`hornet_budget_in_use`:                 float64(st.BudgetInUse),
		`hornet_result_cache_hits_total`:       float64(st.CacheHits),
		`hornet_result_cache_misses_total`:     float64(st.CacheMisses),
		`hornet_warmup_cache_misses_total`:     float64(st.WarmupMisses),
		`hornet_checkpoints_written_total`:     float64(st.CheckpointsWritten),
		`hornet_checkpoint_write_errors_total`: float64(st.CheckpointWriteErrs),
		`hornet_runs_resumed_total`:            float64(st.RunsResumed),
		`hornet_jobs_coalesced_total`:          float64(st.CoalescedJobs),
		`hornet_fleet_lease_expiries_total`:    float64(st.Fleet.WorkersLost),
		`hornet_fleet_tasks_requeued_total`:    float64(st.Fleet.TasksRequeued),
		`hornet_fleet_shard_rollbacks_total`:   float64(st.Fleet.ShardRollbacks),
		`hornet_fleet_checkpoint_bytes_total`:  float64(st.Fleet.CheckpointBytes),
	}
	for name, v := range want {
		got, ok := series[name]
		if !ok {
			t.Errorf("series %s missing from /metrics", name)
			continue
		}
		if got != v {
			t.Errorf("%s = %v, /api/v1/stats says %v", name, got, v)
		}
	}

	// The job really was checkpointed and simulated, so the sources
	// themselves must be non-trivial — agreement on zeros proves little.
	if st.CheckpointsWritten == 0 {
		t.Error("checkpointed job wrote no snapshots")
	}
	if series["hornet_engine_cycles_total"] == 0 {
		t.Error("hornet_engine_cycles_total = 0 after a completed simulation")
	}
	if series[`hornet_engine_compute_seconds_count`] == 0 {
		t.Error("engine compute histogram recorded no chunks")
	}

	// The HTTP middleware measured the API traffic this test generated.
	if series[`hornet_http_requests_total{route="POST /api/v1/jobs",code="202"}`] == 0 {
		t.Errorf("submit route not counted; have: %v", keysWithPrefix(series, "hornet_http_requests_total"))
	}
	if series[`hornet_http_request_seconds_count{route="POST /api/v1/jobs"}`] == 0 {
		t.Error("submit route latency not observed")
	}
}

func keysWithPrefix(m map[string]float64, prefix string) []string {
	var out []string
	for k := range m {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	return out
}

// The trace endpoint round-trips through the Go client: a completed
// job's timeline holds the queued and running spans, closed, plus the
// terminal instant — exactly what Perfetto needs to draw a lifecycle.
func TestTraceEndpointRoundTrip(t *testing.T) {
	_, c := startServer(t, service.Options{MaxJobs: 1, Budget: 2})
	ctx := context.Background()

	info, err := c.SubmitAndWait(ctx, service.SubmitRequest{Config: tinyConfig(), Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if info.State != service.StateDone {
		t.Fatalf("job state = %s (%s)", info.State, info.Error)
	}

	doc, raw, err := c.Trace(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 || doc.DisplayTimeUnit != "ms" {
		t.Fatalf("unexpected trace document: unit=%q raw=%d bytes", doc.DisplayTimeUnit, len(raw))
	}
	phases := make(map[string]string) // event name -> phase
	for _, ev := range doc.TraceEvents {
		phases[ev.Name] = ev.Phase
	}
	if phases["process_name"] != "M" {
		t.Fatalf("missing process_name metadata event: %v", phases)
	}
	// Both lifecycle spans must be closed (complete "X" events) on a
	// terminal job; an open "B" means finalize leaked a span.
	for _, span := range []string{"queued", "running"} {
		if ph := phases[span]; ph != "X" {
			t.Errorf("span %q phase = %q, want closed span X", span, ph)
		}
	}
	if phases["done"] != "i" {
		t.Errorf("terminal instant missing: %v", phases)
	}

	if _, _, err := c.Trace(ctx, "job-does-not-exist"); err == nil {
		t.Fatal("trace of unknown job succeeded")
	} else {
		var apiErr *service.APIError
		if !errors.As(err, &apiErr) {
			t.Fatalf("unknown-job error is not an APIError: %v", err)
		}
	}
}

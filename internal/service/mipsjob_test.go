package service

import (
	"bytes"
	"testing"
	"time"

	"hornet/internal/config"
)

// mipsResumeRequest is a checkpoint-heavy application scenario: the
// shared-memory ping-pong over the MSI fabric on a 2x2 mesh, sized so a
// daemon autosaving every 500 cycles writes many checkpoints before the
// workload halts.
func mipsResumeRequest() SubmitRequest {
	rounds := 400
	if raceDetector {
		rounds = 150
	}
	cfg := config.Default()
	cfg.Topology.Width, cfg.Topology.Height = 2, 2
	cfg.Memory = config.DefaultMemory()
	return SubmitRequest{
		Name: "mips-resume",
		Seed: 7,
		Mips: &MipsSpec{
			Workload: "shared-pingpong",
			Rounds:   rounds,
			Config:   cfg,
		},
	}
}

// TestMipsCheckpointResumeAfterRestart is the killed-daemon drill for
// the payload-bearing frontends: daemon A autosaves a running MIPS/mem
// job (core registers, RAM, caches, directories, in-flight coherence
// payloads), dies mid-run, and daemon B with the same checkpoint
// directory resumes the resubmitted scenario from the last snapshot —
// producing a document byte-identical to a never-interrupted run.
func TestMipsCheckpointResumeAfterRestart(t *testing.T) {
	ckptDir := t.TempDir()
	req := mipsResumeRequest()

	// Daemon A: run until at least one checkpoint exists, then die.
	srvA := New(Options{MaxJobs: 1, Budget: 1, CheckpointDir: ckptDir, CheckpointEvery: 500})
	jA := submitDirect(t, srvA, req)
	deadline := time.Now().Add(60 * time.Second)
	for jA.Info().Checkpoints < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint written; job state %+v", jA.Info())
		}
		if jA.Info().Terminal() {
			t.Fatalf("job finished before a checkpoint could be observed; state %+v (shrink the autosave period or grow rounds)", jA.Info())
		}
		time.Sleep(time.Millisecond)
	}
	srvA.Close() // cancels the running job; the drain saves a final snapshot
	if got := jA.Info().State; got != StateCanceled {
		t.Fatalf("killed daemon's job state = %s, want %s", got, StateCanceled)
	}

	// Daemon B, same checkpoint directory: the resubmitted scenario must
	// resume mid-application, not re-execute from instruction zero.
	srvB := New(Options{MaxJobs: 1, Budget: 1, CheckpointDir: ckptDir, CheckpointEvery: 500})
	defer srvB.Close()
	jB := submitDirect(t, srvB, req)
	infoB := waitDone(t, jB, 120*time.Second)
	if infoB.State != StateDone {
		t.Fatalf("resumed job state = %s (%s)", infoB.State, infoB.Error)
	}
	if infoB.ResumedRuns < 1 {
		t.Errorf("resumed job reports %d resumed runs, want >= 1", infoB.ResumedRuns)
	}
	resumedBytes, ok := jB.Result()
	if !ok {
		t.Fatal("resumed job has no result")
	}
	if st := srvB.Stats(); st.RunsResumed != 1 {
		t.Errorf("stats.RunsResumed = %d, want 1", st.RunsResumed)
	}

	// Reference: the same scenario, same checkpoint cadence, never
	// interrupted (fresh checkpoint directory).
	srvC := New(Options{MaxJobs: 1, Budget: 1, CheckpointDir: t.TempDir(), CheckpointEvery: 500})
	defer srvC.Close()
	jC := submitDirect(t, srvC, req)
	infoC := waitDone(t, jC, 120*time.Second)
	if infoC.State != StateDone {
		t.Fatalf("reference job state = %s (%s)", infoC.State, infoC.Error)
	}
	refBytes, _ := jC.Result()
	if !bytes.Equal(resumedBytes, refBytes) {
		t.Errorf("resumed document differs from uninterrupted run:\nresumed: %s\nref:     %s",
			resumedBytes, refBytes)
	}
}

// TestMipsScenarioCachesByteIdentically: an application job's document
// enters the content-addressed result cache and a resubmission serves
// the identical bytes without re-simulating.
func TestMipsScenarioCachesByteIdentically(t *testing.T) {
	srv := New(Options{MaxJobs: 1, Budget: 1})
	defer srv.Close()
	cfg := config.Default()
	cfg.Topology.Width, cfg.Topology.Height = 2, 2
	req := SubmitRequest{
		Seed: 3,
		Mips: &MipsSpec{Workload: "pingpong", Rounds: 30, Config: cfg},
	}
	j1 := submitDirect(t, srv, req)
	if info := waitDone(t, j1, 60*time.Second); info.State != StateDone {
		t.Fatalf("job state = %s (%s)", info.State, info.Error)
	}
	b1, _ := j1.Result()

	j2 := submitDirect(t, srv, req)
	info2 := waitDone(t, j2, 60*time.Second)
	if !info2.CacheHit {
		t.Errorf("resubmission missed the cache: %+v", info2)
	}
	b2, _ := j2.Result()
	if !bytes.Equal(b1, b2) {
		t.Error("cached document differs from cold run")
	}
	if len(b1) == 0 {
		t.Fatal("empty document")
	}
}

// TestMipsScenarioValidation: malformed application submissions are
// rejected with structured 4xx errors, not accepted and failed later.
func TestMipsScenarioValidation(t *testing.T) {
	base := func() config.Config {
		cfg := config.Default()
		cfg.Topology.Width, cfg.Topology.Height = 2, 2
		return cfg
	}
	cases := []struct {
		name string
		mut  func(req *SubmitRequest)
	}{
		{"unknown-workload", func(r *SubmitRequest) { r.Mips.Workload = "doom" }},
		{"traffic-set", func(r *SubmitRequest) {
			r.Mips.Config.Traffic = []config.TrafficConfig{{Pattern: config.PatternUniform, InjectionRate: 0.1}}
		}},
		{"shared-without-memory", func(r *SubmitRequest) { r.Mips.Workload = "shared-pingpong" }},
		{"private-with-memory", func(r *SubmitRequest) { r.Mips.Config.Memory = config.DefaultMemory() }},
		{"cannon-wrong-grid", func(r *SubmitRequest) { r.Mips.Workload = "cannon"; r.Mips.Q = 3 }},
		{"cannon-huge-block", func(r *SubmitRequest) { r.Mips.Workload = "cannon"; r.Mips.B = 40_000 }},
		{"huge-rounds", func(r *SubmitRequest) { r.Mips.Rounds = 2_000_000 }},
		{"huge-max-cycles", func(r *SubmitRequest) { r.Mips.MaxCycles = 1 << 62 }},
		{"mips-plus-config", func(r *SubmitRequest) { c := base(); r.Config = &c }},
		{"share-warmup", func(r *SubmitRequest) { r.ShareWarmup = true }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := SubmitRequest{Mips: &MipsSpec{Workload: "pingpong", Rounds: 5, Config: base()}}
			tc.mut(&req)
			if _, apiErr := buildScenario(req); apiErr == nil {
				t.Errorf("submission accepted, want *APIError")
			}
		})
	}

	// Defaults are part of the identity: explicit defaults hash the same.
	a, apiErr := buildScenario(SubmitRequest{Mips: &MipsSpec{Workload: "pingpong", Config: base()}})
	if apiErr != nil {
		t.Fatalf("default spec rejected: %v", apiErr)
	}
	b, apiErr := buildScenario(SubmitRequest{Mips: &MipsSpec{
		Workload: "pingpong", Rounds: 100, Q: 2, B: 4, MaxCycles: 10_000_000, Config: base()}})
	if apiErr != nil {
		t.Fatalf("explicit-default spec rejected: %v", apiErr)
	}
	if a.hash != b.hash {
		t.Error("defaulted and explicit-default specs hash differently")
	}
	if a.kind != KindMips || len(a.runs) != 1 || a.runs[0].mips == nil {
		t.Errorf("scenario shape wrong: %+v", a)
	}
}

package service

import (
	"strings"
	"testing"

	"hornet/internal/config"
)

func validConfig() *config.Config {
	cfg := config.Default()
	cfg.Topology.Width, cfg.Topology.Height = 4, 4
	cfg.Traffic = []config.TrafficConfig{{Pattern: config.PatternUniform, InjectionRate: 0.05}}
	cfg.WarmupCycles = 100
	cfg.AnalyzedCycles = 1_000
	return &cfg
}

func TestBuildScenarioHashIdentity(t *testing.T) {
	mk := func(mut func(*SubmitRequest)) *scenario {
		t.Helper()
		req := SubmitRequest{Config: validConfig()}
		if mut != nil {
			mut(&req)
		}
		sc, apiErr := buildScenario(req)
		if apiErr != nil {
			t.Fatalf("buildScenario: %v", apiErr)
		}
		return sc
	}
	base := mk(nil)
	if len(base.hash) != 16 {
		t.Fatalf("hash %q not 16 hex digits", base.hash)
	}

	// Execution-only knobs must not move the hash.
	sameHash := []func(*SubmitRequest){
		func(r *SubmitRequest) { r.Workers = 4 },
		func(r *SubmitRequest) { r.Config.Engine.Workers = 8 },
		func(r *SubmitRequest) { r.Config.Engine.Seed = 999 },
		func(r *SubmitRequest) { r.NoCache = true },
	}
	for i, mut := range sameHash {
		if got := mk(mut); got.hash != base.hash {
			t.Errorf("execution knob %d changed the hash: %s vs %s", i, got.hash, base.hash)
		}
	}

	// Result-determining inputs must move it.
	diffHash := []func(*SubmitRequest){
		func(r *SubmitRequest) { r.Seed = 99 },
		func(r *SubmitRequest) { r.Name = "other" },
		func(r *SubmitRequest) { r.Config.Topology.Width = 8 },
		func(r *SubmitRequest) { r.Config.Traffic[0].InjectionRate = 0.5 },
		func(r *SubmitRequest) { r.Config.AnalyzedCycles = 2_000 },
	}
	for i, mut := range diffHash {
		if got := mk(mut); got.hash == base.hash {
			t.Errorf("identity input %d did not change the hash", i)
		}
	}
}

func TestBuildScenarioFigure(t *testing.T) {
	sc, apiErr := buildScenario(SubmitRequest{Figure: "Fig8", Tiny: true})
	if apiErr != nil {
		t.Fatal(apiErr)
	}
	if sc.kind != KindFigure || sc.fig.Name != "8" || !sc.cacheable {
		t.Fatalf("figure scenario: %+v", sc)
	}
	// Wall-clock (serial) figures must never be cached.
	sc, apiErr = buildScenario(SubmitRequest{Figure: "6a", Tiny: true})
	if apiErr != nil {
		t.Fatal(apiErr)
	}
	if sc.cacheable {
		t.Fatal("serial timing figure marked cacheable")
	}
}

func TestBuildScenarioRejects(t *testing.T) {
	cases := []struct {
		req  SubmitRequest
		code string
	}{
		{SubmitRequest{}, CodeInvalidRequest},
		{SubmitRequest{Config: validConfig(), Batch: []BatchItem{{Key: "x", Config: *validConfig()}}}, CodeInvalidRequest},
		{SubmitRequest{Config: validConfig(), Workers: -1}, CodeInvalidRequest},
		{SubmitRequest{Name: strings.Repeat("x", 65), Config: validConfig()}, CodeInvalidRequest},
		{SubmitRequest{Figure: "nope"}, CodeUnknownFigure},
	}
	for i, tc := range cases {
		_, apiErr := buildScenario(tc.req)
		if apiErr == nil || apiErr.Code != tc.code {
			t.Errorf("case %d: got %v, want code %s", i, apiErr, tc.code)
		}
	}
}

package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"hornet/internal/obs"
	"hornet/internal/service/backend"
	"hornet/internal/sweep"
)

// scheduler executes jobs on a fixed pool of job workers. Concurrency is
// bounded twice, on purpose:
//
//   - maxJobs job workers limit how many jobs are *in flight* (so a burst
//     of submissions queues instead of thrashing), and
//   - one shared sweep.Budget limits how many *CPU slots* all in-flight
//     jobs hold together — every simulation run, in every job, acquires
//     its engine workers from this pool, so two concurrent jobs can never
//     oversubscribe the host no matter how parallel each one is.
type scheduler struct {
	pool    *sweep.Budget
	results *resultStore
	env     *execEnv
	queue   chan *job
	wg      sync.WaitGroup

	// local always exists; fleet is the remote backend, consulted first
	// for fleet-eligible jobs whenever live workers are registered.
	local backend.Backend
	fleet *backend.Fleet

	remoteJobs   atomic.Uint64
	fallbackJobs atomic.Uint64

	baseCtx    context.Context
	baseCancel context.CancelFunc

	// sf tracks the in-flight job per cacheable (name, hash): concurrent
	// submissions of an identical scenario attach to the leader instead
	// of simulating twice (single-flight).
	sfMu      sync.Mutex
	sf        map[string]*job
	coalesced atomic.Uint64

	mu      sync.Mutex
	stopped bool

	// log and metrics are optional observability hooks the server wires
	// in after construction; tests leave them nil.
	log     *slog.Logger
	metrics *serveMetrics
}

// logger returns the scheduler's diagnostic logger, never nil.
func (s *scheduler) logger() *slog.Logger {
	if s.log == nil {
		return obs.Nop()
	}
	return s.log
}

// defaultQueueDepth bounds accepted-but-unstarted jobs when the server
// does not configure a bound; beyond it submissions are rejected with
// 429 queue_full + Retry-After rather than growing without bound.
const defaultQueueDepth = 1024

func newScheduler(maxJobs, budget, depth int, results *resultStore, env *execEnv, fleet *backend.Fleet) *scheduler {
	if maxJobs < 1 {
		maxJobs = 1
	}
	if depth < 1 {
		depth = defaultQueueDepth
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &scheduler{
		pool:       sweep.NewBudget(budget),
		results:    results,
		env:        env,
		fleet:      fleet,
		sf:         map[string]*job{},
		queue:      make(chan *job, depth),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	s.local = &localBackend{s: s}
	for i := 0; i < maxJobs; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.runJob(j)
			}
		}()
	}
	return s
}

// submit enqueues a job. It fails only when the daemon is shutting down
// or the queue is full.
func (s *scheduler) submit(j *job) *APIError {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return &APIError{Code: CodeShuttingDown, Message: "server is shutting down"}
	}
	select {
	case s.queue <- j:
		return nil
	default:
		return &APIError{Code: CodeQueueFull,
			Message: fmt.Sprintf("job queue is full (%d pending)", cap(s.queue))}
	}
}

// cancelJobs cancels the base context every job derives from without
// draining the workers. Shutdown calls it before closing the fleet, so
// remote tasks the fleet hands back with ErrNoWorkers find their job
// already cancelled instead of failing over into a doomed local
// re-execution.
func (s *scheduler) cancelJobs() {
	s.baseCancel()
}

// stop cancels every in-flight job and waits for the workers to drain.
// Queued jobs are marked canceled as the workers pop them.
func (s *scheduler) stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	// Cancel before closing the queue: workers then pop any still-queued
	// jobs with an already-cancelled context and mark them canceled
	// instead of starting them mid-shutdown.
	s.baseCancel()
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
}

// runJob executes one job end to end: cache lookup, scenario execution
// under the shared budget, result persistence, terminal transition.
func (s *scheduler) runJob(j *job) {
	// Release the job's context registration on the scheduler's base
	// context once it is terminal, or every served job would leak a
	// cancel-child for the daemon's lifetime.
	defer j.cancel()
	// One terminal log line per job, whatever path it took; failures are
	// warnings so a default-Info fleet surfaces them.
	defer func() {
		info := j.Info()
		lvl := slog.LevelInfo
		if info.State == StateFailed {
			lvl = slog.LevelWarn
		}
		s.logger().Log(context.Background(), lvl, "job finished",
			obs.Job(info.ID), slog.String("state", info.State),
			slog.String("backend", info.Backend), slog.Bool("cache_hit", info.CacheHit),
			slog.Int("runs_done", info.RunsDone), slog.String("error", info.Error))
	}()
	sc := j.sc
	if j.ctx.Err() != nil || !j.start(time.Now()) {
		j.markCanceled(time.Now())
		return
	}
	s.logger().Debug("job started", obs.Job(j.Info().ID),
		slog.String("name", sc.name), slog.String("kind", sc.kind))
	if sc.cacheable && !j.req.NoCache {
		// Cache, then single-flight: attach to an identical in-flight
		// job rather than missing the cache twice. The loop re-checks
		// after a leader ends without a usable result (failed or
		// cancelled), so at most one job simulates at a time per key and
		// a follower never inherits a failure it didn't cause.
		key := sc.name + "-" + sc.hash
		for {
			if b, ok := s.results.Get(sc.name, sc.hash); ok {
				j.finish(b, true, time.Now())
				return
			}
			s.sfMu.Lock()
			leader, busy := s.sf[key]
			if !busy {
				s.sf[key] = j
			}
			s.sfMu.Unlock()
			if !busy {
				defer func() {
					s.sfMu.Lock()
					delete(s.sf, key)
					s.sfMu.Unlock()
				}()
				break // we lead: run the simulation below
			}
			select {
			case <-leader.Done():
			case <-j.ctx.Done():
				j.markCanceled(time.Now())
				return
			}
			if b, ok := leader.Result(); ok {
				s.coalesced.Add(1)
				j.coalesceFinish(b, time.Now())
				return
			}
		}
	}

	bytes, runErrs, err := s.run(j)
	switch {
	case errors.Is(err, context.Canceled) || j.ctx.Err() != nil:
		j.markCanceled(time.Now())
	case err != nil:
		j.fail(err.Error(), time.Now())
	default:
		// Only complete, fully successful documents enter the cache: a
		// hash hit must always mean "this exact scenario ran to the end".
		if sc.cacheable && runErrs == 0 {
			// A failed disk write degrades to memory-only serving; the
			// store counts it and /api/v1/stats surfaces the counter.
			_ = s.results.Put(sc.name, sc.hash, bytes)
		}
		if (sc.kind == KindConfig || sc.kind == KindMips) && runErrs > 0 {
			// A single-run job whose run failed is a failed job; the
			// diagnostic is in the document's run record.
			j.fail(firstRunError(bytes), time.Now())
			return
		}
		j.finish(bytes, false, time.Now())
	}
}

// run executes one job through an execution backend. Fleet-eligible
// jobs (config/batch/mips — the kinds whose requests serialize into a
// self-contained task) go to the remote backend whenever live workers
// are registered; everything else, and any task the fleet hands back
// with ErrNoWorkers (the fleet emptied while the task waited), runs on
// the in-process backend. The fallback resumes from whatever
// checkpoint blobs dead workers uploaded before the fleet died.
func (s *scheduler) run(j *job) ([]byte, int, error) {
	t := j.task()
	sink := jobSink{j: j, m: s.metrics}
	if s.fleet != nil && fleetEligible(j.sc) && j.restore != nil {
		// A journal-restored job's pre-crash fleet needs a rejoin window:
		// the restarted coordinator's registry is empty until the workers'
		// next heartbeat gets worker_unknown and they re-register. Without
		// this grace the job would instantly fall back to local execution
		// and the still-running remote work would be cancelled as
		// unadopted. Sharded jobs need the whole group co-schedulable.
		min := 1
		if j.sc.shards >= 2 {
			min = j.sc.shards
		}
		if s.fleet.AwaitCapacity(j.ctx, min) {
			s.logger().Info("fleet rejoined for restored job", obs.Job(j.Info().ID))
		}
	}
	if s.fleet != nil && fleetEligible(j.sc) && s.fleet.Live() > 0 {
		j.setBackend(s.fleet.Name())
		b, runErrs, err := s.fleet.Execute(j.ctx, t, sink)
		if !errors.Is(err, backend.ErrNoWorkers) {
			if err == nil {
				s.remoteJobs.Add(1)
			}
			return b, runErrs, err
		}
		// A cancelled job gains nothing from a local fallback; this is
		// also the shutdown path (Close cancels jobs, then closes the
		// fleet, which fails in-flight tasks with ErrNoWorkers).
		if err := j.ctx.Err(); err != nil {
			return nil, 0, err
		}
		s.fallbackJobs.Add(1)
		s.logger().Info("fleet emptied mid-job; falling back to local execution", obs.Job(j.Info().ID))
	}
	j.setBackend(s.local.Name())
	return s.local.Execute(j.ctx, t, sink)
}

// fleetEligible reports whether a scenario can execute on a remote
// worker. Figure scenarios stay local: serial (wall-clock) figures are
// timing experiments of *this* host, and figure documents draw on the
// registry identity rather than a serializable request.
func fleetEligible(sc *scenario) bool {
	switch sc.kind {
	case KindConfig, KindBatch, KindMips:
		return true
	}
	return false
}

// jobSink adapts a job to the backend.Sink the execution backends
// drive. It also implements the optional EngineSink/NoteSink
// extensions: engine snapshots update the job (and the server's engine
// histograms when metrics are wired), lifecycle notes land on the
// job's trace timeline.
type jobSink struct {
	j *job
	m *serveMetrics
}

func (s jobSink) Progress(done, total int, key string) { s.j.progress(done, total, key) }
func (s jobSink) Resumed(key string, cycle uint64)     { s.j.noteResumed(key, cycle) }
func (s jobSink) Checkpoint(key string, cycle uint64)  { s.j.noteCheckpoint(key, cycle) }

func (s jobSink) Engine(snap obs.ProbeSnapshot) {
	d := s.j.setEngine(snap)
	if s.m != nil {
		s.m.observeEngine(d)
	}
}

// Telemetry folds one executor's machine-telemetry sample into the
// job's merged full-machine view (sharded jobs contribute one tile
// span per member).
func (s jobSink) Telemetry(snap obs.TelemetrySnapshot) { s.j.setTelemetry(snap) }

func (s jobSink) Note(event string, fields map[string]string) { s.j.note(event, fields) }

// localBackend is the in-process execution backend: the scheduler's
// shared execution environment (warmup cache, checkpoint store, CPU
// pool) wrapped in the Backend interface.
type localBackend struct{ s *scheduler }

func (lb *localBackend) Name() string { return "local" }

func (lb *localBackend) Execute(ctx context.Context, t *backend.Task, sink backend.Sink) ([]byte, int, error) {
	sc := t.Compiled.(*scenario)
	env := lb.s.env
	if len(t.Checkpoints) > 0 {
		// A migrated task: seed the uploaded blobs into a checkpoint
		// store so the runs resume instead of restarting. Without a
		// daemon checkpoint directory the blobs live in a job-scoped
		// memory store.
		store := env.store
		if store == nil {
			store = NewMemCheckpointStore()
			env = env.withStore(store)
		}
		for key, blob := range t.Checkpoints {
			_ = store.Save(key, blob.Data, blob.Cycle)
		}
	}
	if sc.shards >= 2 {
		return lb.executeShardedLocal(ctx, sc, t, env, sink)
	}
	// Every locally executed job gets a fresh engine probe so the daemon
	// can report cycles/sec and barrier-vs-compute time per running job,
	// plus (when the server enabled it) a machine-telemetry pump feeding
	// the job's live per-tile/per-link view.
	env = env.withProbe(obs.NewSimProbe())
	if env.telEvery >= 0 {
		env = env.withTelemetry(func(s obs.TelemetrySnapshot) { backend.SinkTelemetry(sink, s) })
	}
	return executeScenario(ctx, sc, env, lb.s.pool, sink)
}

// executeShardedLocal runs every member of a space-parallel task inside
// the daemon process — the fallback when no fleet worker can take the
// job (and the reference path proving sharding changes no result
// bytes). Members coordinate through an in-process ShardGroup; the CPU
// slots for the whole group are acquired from the shared pool up front,
// because members rendezvous every cycle and therefore must all run
// concurrently — leasing them one by one could deadlock against another
// job.
func (lb *localBackend) executeShardedLocal(ctx context.Context, sc *scenario, t *backend.Task, env *execEnv, sink backend.Sink) ([]byte, int, error) {
	n := sc.shards
	group := backend.NewShardGroup(n)
	// Release barrier waiters if the job dies: no member may park forever
	// in a rendezvous its cancelled siblings will never reach.
	stopWatch := context.AfterFunc(ctx, func() { group.Cancel(ctx.Err()) })
	defer stopWatch()
	per := lb.s.pool.Cap() / n
	if per < 1 {
		per = 1
	}
	granted, err := lb.s.pool.AcquireCtx(ctx, per*n)
	if err != nil {
		return nil, 0, err
	}
	defer lb.s.pool.Release(granted)
	if per = granted / n; per < 1 {
		// A pool narrower than the member count still runs all members
		// concurrently (the lockstep demands it); the engines just drop to
		// one worker thread each.
		per = 1
	}

	var req SubmitRequest
	if err := json.Unmarshal(t.Request, &req); err != nil {
		return nil, 0, fmt.Errorf("service: sharded task request: %w", err)
	}
	results := make([]*ExecResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := ShardExecOptions{
				Shard:           i,
				ShardCount:      n,
				Transport:       NewLocalShardTransport(ctx, group, i),
				Workers:         per,
				Checkpoints:     env.store,
				CheckpointEvery: env.ckptEvery,
			}
			if i == 0 {
				opts.OnProgress = sink.Progress
				opts.OnResumed = sink.Resumed
				opts.OnCheckpoint = sink.Checkpoint
				opts.OnEngine = func(snap obs.ProbeSnapshot) { backend.SinkEngine(sink, snap) }
			}
			// Unlike the run-level callbacks above (member 0 speaks for the
			// group), telemetry is per tile span: EVERY member reports, and
			// the job merges the spans into one full-machine view.
			if env.telEvery >= 0 {
				opts.OnTelemetry = func(snap obs.TelemetrySnapshot) { backend.SinkTelemetry(sink, snap) }
				opts.TelemetryEvery = env.telEvery
			}
			res, err := ExecuteShard(ctx, req, opts)
			results[i], errs[i] = res, err
			if err != nil {
				// Doom the group so siblings fail out of their barriers
				// instead of waiting for a member that already gave up.
				group.Cancel(err)
			}
		}(i)
	}
	wg.Wait()
	// A failing member cancels the group with its error, so every member
	// typically reports the same failure; any non-nil error fails the job.
	for _, err := range errs {
		if err != nil {
			return nil, 0, err
		}
	}
	return results[0].Doc, results[0].RunErrs, nil
}

// firstRunError digs the run error out of an encoded single-run document
// for the job-level failure message.
func firstRunError(doc []byte) string {
	var d sweep.Document
	if err := json.Unmarshal(doc, &d); err == nil {
		for _, r := range d.Runs {
			if r.Err != "" {
				return r.Err
			}
		}
	}
	return "run failed"
}

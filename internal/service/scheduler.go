package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hornet/internal/sweep"
)

// scheduler executes jobs on a fixed pool of job workers. Concurrency is
// bounded twice, on purpose:
//
//   - maxJobs job workers limit how many jobs are *in flight* (so a burst
//     of submissions queues instead of thrashing), and
//   - one shared sweep.Budget limits how many *CPU slots* all in-flight
//     jobs hold together — every simulation run, in every job, acquires
//     its engine workers from this pool, so two concurrent jobs can never
//     oversubscribe the host no matter how parallel each one is.
type scheduler struct {
	pool    *sweep.Budget
	results *resultStore
	env     *execEnv
	queue   chan *job
	wg      sync.WaitGroup

	baseCtx    context.Context
	baseCancel context.CancelFunc

	// sf tracks the in-flight job per cacheable (name, hash): concurrent
	// submissions of an identical scenario attach to the leader instead
	// of simulating twice (single-flight).
	sfMu      sync.Mutex
	sf        map[string]*job
	coalesced atomic.Uint64

	mu      sync.Mutex
	stopped bool
}

// queueDepth bounds accepted-but-unstarted jobs; beyond it submissions
// are rejected with 503 queue_full rather than growing without bound.
const queueDepth = 1024

func newScheduler(maxJobs, budget int, results *resultStore, env *execEnv) *scheduler {
	if maxJobs < 1 {
		maxJobs = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &scheduler{
		pool:       sweep.NewBudget(budget),
		results:    results,
		env:        env,
		sf:         map[string]*job{},
		queue:      make(chan *job, queueDepth),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	for i := 0; i < maxJobs; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.runJob(j)
			}
		}()
	}
	return s
}

// submit enqueues a job. It fails only when the daemon is shutting down
// or the queue is full.
func (s *scheduler) submit(j *job) *APIError {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return &APIError{CodeShuttingDown, "server is shutting down"}
	}
	select {
	case s.queue <- j:
		return nil
	default:
		return &APIError{CodeQueueFull,
			fmt.Sprintf("job queue is full (%d pending)", queueDepth)}
	}
}

// stop cancels every in-flight job and waits for the workers to drain.
// Queued jobs are marked canceled as the workers pop them.
func (s *scheduler) stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	// Cancel before closing the queue: workers then pop any still-queued
	// jobs with an already-cancelled context and mark them canceled
	// instead of starting them mid-shutdown.
	s.baseCancel()
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
}

// runJob executes one job end to end: cache lookup, scenario execution
// under the shared budget, result persistence, terminal transition.
func (s *scheduler) runJob(j *job) {
	// Release the job's context registration on the scheduler's base
	// context once it is terminal, or every served job would leak a
	// cancel-child for the daemon's lifetime.
	defer j.cancel()
	sc := j.sc
	if j.ctx.Err() != nil || !j.start(time.Now()) {
		j.markCanceled(time.Now())
		return
	}
	if sc.cacheable && !j.req.NoCache {
		// Cache, then single-flight: attach to an identical in-flight
		// job rather than missing the cache twice. The loop re-checks
		// after a leader ends without a usable result (failed or
		// cancelled), so at most one job simulates at a time per key and
		// a follower never inherits a failure it didn't cause.
		key := sc.name + "-" + sc.hash
		for {
			if b, ok := s.results.Get(sc.name, sc.hash); ok {
				j.finish(b, true, time.Now())
				return
			}
			s.sfMu.Lock()
			leader, busy := s.sf[key]
			if !busy {
				s.sf[key] = j
			}
			s.sfMu.Unlock()
			if !busy {
				defer func() {
					s.sfMu.Lock()
					delete(s.sf, key)
					s.sfMu.Unlock()
				}()
				break // we lead: run the simulation below
			}
			select {
			case <-leader.Done():
			case <-j.ctx.Done():
				j.markCanceled(time.Now())
				return
			}
			if b, ok := leader.Result(); ok {
				s.coalesced.Add(1)
				j.coalesceFinish(b, time.Now())
				return
			}
		}
	}

	bytes, runErrs, err := s.execute(j)
	switch {
	case errors.Is(err, context.Canceled) || j.ctx.Err() != nil:
		j.markCanceled(time.Now())
	case err != nil:
		j.fail(err.Error(), time.Now())
	default:
		// Only complete, fully successful documents enter the cache: a
		// hash hit must always mean "this exact scenario ran to the end".
		if sc.cacheable && runErrs == 0 {
			// A failed disk write degrades to memory-only serving; the
			// store counts it and /api/v1/stats surfaces the counter.
			_ = s.results.Put(sc.name, sc.hash, bytes)
		}
		if (sc.kind == KindConfig || sc.kind == KindMips) && runErrs > 0 {
			// A single-run job whose run failed is a failed job; the
			// diagnostic is in the document's run record.
			j.fail(firstRunError(bytes), time.Now())
			return
		}
		j.finish(bytes, false, time.Now())
	}
}

// execute runs the scenario and returns the canonical document bytes
// plus the number of per-run errors recorded inside the document. A
// panic anywhere in scenario execution (the experiments package treats
// bad runs as programming errors and panics) becomes a failed job, never
// a dead daemon.
func (s *scheduler) execute(j *job) (b []byte, runErrs int, err error) {
	defer func() {
		if p := recover(); p != nil {
			b, runErrs, err = nil, 0, fmt.Errorf("job panicked: %v", p)
		}
	}()
	sc := j.sc
	switch sc.kind {
	case KindFigure:
		o := sc.figOpts
		o.Context = j.ctx
		o.Pool = s.pool
		o.Progress = j.progress
		// Figures with shared warmup prefixes draw on the daemon-wide
		// warmup snapshot cache (reuse cannot change output bytes).
		o.Warmups = s.env.warm
		_, doc, runErr := sc.fig.Document(o)
		if runErr != nil {
			return nil, 0, runErr // cancelled mid-figure
		}
		for _, r := range doc.Runs {
			if r.Err != "" {
				runErrs++
			}
		}
		b, err = encodeDocument(doc)
		return b, runErrs, err
	default: // KindConfig, KindBatch
		items := make([]sweep.Item, len(sc.runs))
		for i, spec := range sc.runs {
			items[i] = sweep.Item{Key: spec.key, Weight: spec.weight, Seed: spec.seed,
				Run: s.env.runFor(sc, j, spec)}
		}
		cfg := sweep.Config{
			// In-flight runs within the job: bounded by the shared pool
			// anyway, so let the sweep try to dispatch as wide as the pool.
			Workers: s.pool.Cap(),
			Pool:    s.pool,
			Seed:    sc.seed,
			OnProgress: func(done, total int, r sweep.Result) {
				j.progress(done, total, r.Key)
			},
		}
		results := sweep.Run(j.ctx, items, cfg)
		if err := j.ctx.Err(); err != nil {
			return nil, 0, err
		}
		for _, r := range results {
			if r.Err != nil {
				runErrs++
			}
		}
		doc := sweep.NewDocument(sc.name, sc.hash, sc.seed, results)
		b, err = encodeDocument(doc)
		return b, runErrs, err
	}
}

// firstRunError digs the run error out of an encoded single-run document
// for the job-level failure message.
func firstRunError(doc []byte) string {
	var d sweep.Document
	if err := json.Unmarshal(doc, &d); err == nil {
		for _, r := range d.Runs {
			if r.Err != "" {
				return r.Err
			}
		}
	}
	return "run failed"
}

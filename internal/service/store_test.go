package service

import (
	"bytes"
	"fmt"
	"testing"
)

// The in-memory result tier is LRU-bounded; the disk tier (when
// configured) is not, so evicted entries refault from disk.
func TestResultStoreLRUEntryBound(t *testing.T) {
	s := newResultStore("")
	s.setBounds(2, 0)
	for i := 0; i < 3; i++ {
		s.Put(fmt.Sprintf("doc%d", i), "aaaa", []byte{byte(i)})
	}
	if got := s.Len(); got != 2 {
		t.Fatalf("entries = %d, want 2", got)
	}
	if _, ok := s.Get("doc0", "aaaa"); ok {
		t.Error("least-recently-used entry survived the bound")
	}
	if s.Evictions() != 1 {
		t.Errorf("evictions = %d, want 1", s.Evictions())
	}
	// Touching doc1 promotes it; inserting doc3 must now evict doc2.
	if _, ok := s.Get("doc1", "aaaa"); !ok {
		t.Fatal("doc1 missing")
	}
	s.Put("doc3", "aaaa", []byte{3})
	if _, ok := s.Get("doc1", "aaaa"); !ok {
		t.Error("recently used doc1 was evicted")
	}
	if _, ok := s.Get("doc2", "aaaa"); ok {
		t.Error("LRU doc2 survived")
	}
}

func TestResultStoreLRUByteBound(t *testing.T) {
	s := newResultStore("")
	s.setBounds(0, 100)
	s.Put("a", "h", make([]byte, 60))
	s.Put("b", "h", make([]byte, 60))
	if got := s.Len(); got != 1 {
		t.Fatalf("entries = %d, want 1 (byte bound)", got)
	}
	if got := s.Bytes(); got != 60 {
		t.Fatalf("bytes = %d, want 60", got)
	}
	// An oversized newest entry still stays resident (the producing job
	// must be able to serve it).
	s.Put("big", "h", make([]byte, 500))
	if _, ok := s.Get("big", "h"); !ok {
		t.Error("newest oversized entry was evicted")
	}
	if got := s.Len(); got != 1 {
		t.Errorf("entries = %d, want 1", got)
	}
}

func TestResultStoreEvictionRefaultsFromDisk(t *testing.T) {
	dir := t.TempDir()
	s := newResultStore(dir)
	s.setBounds(1, 0)
	want := []byte(`{"doc":1}`)
	if err := s.Put("first", "aaaa", want); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("second", "bbbb", []byte(`{"doc":2}`)); err != nil {
		t.Fatal(err)
	}
	// "first" is evicted from memory but must refault from the disk tier.
	b, ok := s.Get("first", "aaaa")
	if !ok || !bytes.Equal(b, want) {
		t.Fatalf("disk refault failed: ok=%v b=%q", ok, b)
	}
}

package service

// Durable-coordinator support: the journaling hooks that feed the
// write-ahead log and the replay machinery that rebuilds the job store
// from it after a restart.
//
// Lock-ordering rule: every journal append happens OUTSIDE job.mu.
// State transitions journal through the job's onState hook, which
// start/finalize invoke after unlocking; the fleet's Journal callbacks
// run outside the fleet lock and take-and-release job.mu (noteAssigned/
// noteStable) before appending. Compaction's snapshot callback runs
// under the journal lock and takes job.mu (Info, remoteFacts) — safe
// precisely because nothing appends while holding job.mu.

import (
	"encoding/json"
	"errors"
	"log/slog"
	"strconv"
	"strings"
	"time"

	"hornet/internal/obs"
	"hornet/internal/service/backend"
	"hornet/internal/service/journal"
)

// journalCompactThreshold is how many records may accumulate since the
// last compaction before a background rewrite is scheduled. Compaction
// output is bounded by live jobs (a handful of records each), so the
// log can never grow past roughly this many records beyond that.
const journalCompactThreshold = 256

// serverJournal adapts the Server to the fleet's backend.Journal hook:
// assignment and stable-promotion facts are mirrored onto the job (for
// compaction) and appended to the WAL. Called by the fleet outside its
// lock.
type serverJournal struct{ s *Server }

func (sj serverJournal) Assigned(jobID, taskID string, slots int) {
	if j, ok := sj.s.jobs.get(jobID); ok {
		j.noteAssigned(taskID, slots)
	}
	sj.s.journalAppend(journal.Record{Type: journal.TypeAssign, Job: jobID, Task: taskID, Slots: slots})
}

func (sj serverJournal) StablePromoted(jobID string, epoch int, cycle uint64, keys []string) {
	if j, ok := sj.s.jobs.get(jobID); ok {
		j.noteStable(epoch, cycle, keys)
	}
	sj.s.journalAppend(journal.Record{Type: journal.TypeStable, Job: jobID,
		Epoch: epoch, Cycle: cycle, Keys: keys})
}

// journalAppend writes one record and schedules a background compaction
// when the log has grown past the threshold. Append failures degrade to
// a counted warning: the daemon keeps serving, merely less durable —
// the same posture as a failed checkpoint write.
func (s *Server) journalAppend(r journal.Record) {
	if s.jrnl == nil {
		return
	}
	if err := s.jrnl.Append(r); err != nil {
		if errors.Is(err, journal.ErrClosed) {
			return // shutdown path: drain-time records are dropped on purpose
		}
		s.journalErrs.Add(1)
		s.log.Warn("journal append failed", slog.String(obs.KeyComponent, "journal"),
			slog.String("type", r.Type), obs.Err(err))
		return
	}
	if s.jrnl.Since() >= journalCompactThreshold && s.compacting.CompareAndSwap(false, true) {
		go func() {
			defer s.compacting.Store(false)
			if err := s.jrnl.Compact(s.compactRecords); err != nil && !errors.Is(err, journal.ErrClosed) {
				s.journalErrs.Add(1)
				s.log.Warn("journal compaction failed",
					slog.String(obs.KeyComponent, "journal"), obs.Err(err))
			}
		}()
	}
}

// journalSubmit records a job's admission: the verbatim request (replay
// re-validates it through buildScenario like any submission) plus the
// client-visible info snapshot.
func (s *Server) journalSubmit(j *job) {
	if s.jrnl == nil {
		return
	}
	info, err := json.Marshal(j.Info())
	if err != nil {
		return
	}
	req, err := json.Marshal(j.req)
	if err != nil {
		return
	}
	s.journalAppend(journal.Record{Type: journal.TypeSubmit, Job: j.Info().ID,
		Request: req, Info: info})
}

// journalState is the job onState hook: every transition appends the
// fresh info snapshot, and a done job additionally records its
// result-cache key so replay can refault the document instead of
// re-running the scenario.
func (s *Server) journalState(info JobInfo) {
	b, err := json.Marshal(info)
	if err != nil {
		return
	}
	s.journalAppend(journal.Record{Type: journal.TypeState, Job: info.ID, Info: b})
	if info.State == StateDone {
		s.journalAppend(journal.Record{Type: journal.TypeResult, Job: info.ID,
			Name: info.Name, Hash: info.ConfigHash})
	}
}

// compactRecords snapshots live state as a minimal record stream: one
// submit record per job carrying its CURRENT info (replay folds info
// last-write-wins, so no separate state records are needed), plus the
// job's latest fleet facts and, for done jobs, the result-cache key.
// Jobs the retention TTL already expired simply drop out of the log;
// their cached result documents survive in the result store.
func (s *Server) compactRecords() []journal.Record {
	var recs []journal.Record
	for _, j := range s.jobs.all() {
		info := j.Info()
		ib, err := json.Marshal(info)
		if err != nil {
			continue
		}
		rb, err := json.Marshal(j.req)
		if err != nil {
			continue
		}
		recs = append(recs, journal.Record{Type: journal.TypeSubmit, Job: info.ID,
			Request: rb, Info: ib})
		rf := j.remoteFacts()
		if rf.taskID != "" {
			recs = append(recs, journal.Record{Type: journal.TypeAssign, Job: info.ID,
				Task: rf.taskID, Slots: rf.slots})
		}
		if len(rf.stableKeys) > 0 {
			recs = append(recs, journal.Record{Type: journal.TypeStable, Job: info.ID,
				Epoch: rf.stableEpoch, Cycle: rf.stableCycle, Keys: rf.stableKeys})
		}
		if info.State == StateDone {
			recs = append(recs, journal.Record{Type: journal.TypeResult, Job: info.ID,
				Name: info.Name, Hash: info.ConfigHash})
		}
	}
	return recs
}

// replayJob is the per-job fold of the journal's record stream: the
// last-written value of each fact group.
type replayJob struct {
	req        json.RawMessage
	info       JobInfo
	haveInfo   bool
	taskID     string
	slots      int
	stableCy   uint64
	stableKeys []string
}

// restore rebuilds the job store from replayed journal records, called
// once during construction, before the HTTP surface is up. Terminal
// jobs restore in place (done ones refault their document from the
// result cache); everything else re-enqueues, seeded with the newest
// persisted checkpoints, and plain fleet jobs additionally arm the
// reattach table so the pre-crash worker can re-adopt the execution.
func (s *Server) restore(recs []journal.Record) {
	byJob := map[string]*replayJob{}
	var order []string
	for _, r := range recs {
		if r.Job == "" {
			continue
		}
		rj := byJob[r.Job]
		if rj == nil {
			rj = &replayJob{}
			byJob[r.Job] = rj
			order = append(order, r.Job)
		}
		switch r.Type {
		case journal.TypeSubmit:
			if len(r.Request) > 0 {
				rj.req = r.Request
			}
			if len(r.Info) > 0 && json.Unmarshal(r.Info, &rj.info) == nil {
				rj.haveInfo = true
			}
		case journal.TypeState:
			if len(r.Info) > 0 && json.Unmarshal(r.Info, &rj.info) == nil {
				rj.haveInfo = true
			}
		case journal.TypeAssign:
			rj.taskID, rj.slots = r.Task, r.Slots
		case journal.TypeStable:
			rj.stableCy = r.Cycle
			rj.stableKeys = append([]string(nil), r.Keys...)
		case journal.TypeResult:
			// Redundant with the done info snapshot (Name/ConfigHash);
			// kept for forward compatibility of the record stream.
		}
	}
	maxJob, maxTask := 0, 0
	for _, id := range order {
		rj := byJob[id]
		if n, ok := trailingSeq(id, "job-"); ok && n > maxJob {
			maxJob = n
		}
		if n, ok := taskSeq(rj.taskID); ok && n > maxTask {
			maxTask = n
		}
		s.restoreJob(id, rj)
	}
	// Seq floors advance AFTER the per-job loop so replayed IDs can never
	// collide with freshly minted ones.
	s.jobs.setSeqFloor(maxJob)
	s.fleet.SetSeqFloor(maxTask)
	if n := len(order); n > 0 {
		s.log.Info("journal replayed", slog.String(obs.KeyComponent, "journal"),
			slog.Int("jobs", n), slog.Int("records", len(recs)))
	}
}

// restoreJob rebuilds one job from its folded journal facts.
func (s *Server) restoreJob(id string, rj *replayJob) {
	if !rj.haveInfo || len(rj.req) == 0 {
		return // torn submit: nothing replayable
	}
	var req SubmitRequest
	if err := json.Unmarshal(rj.req, &req); err != nil {
		s.log.Warn("journal replay: unreadable request", obs.Job(id), obs.Err(err))
		return
	}
	sc, apiErr := buildScenario(req)
	if apiErr != nil {
		s.log.Warn("journal replay: request no longer validates", obs.Job(id),
			slog.String("error", apiErr.Message))
		return
	}
	info := rj.info
	j := newJob(id, req, sc, s.sched.baseCtx, time.Now())
	j.trace.SetCap(s.traceCap)
	j.onState = s.journalState
	if !info.Created.IsZero() {
		j.info.Created = info.Created
	}
	if info.Terminal() {
		if info.State == StateDone {
			if b, ok := s.results.Get(info.Name, info.ConfigHash); ok {
				j.restoreTerminal(info, b)
				s.jobs.add(j)
				s.jobsRestored.Add(1)
				return
			}
			// The cache lost the document (memory-only tier, or the disk
			// tier was wiped): fall through and re-enqueue — a done record
			// whose result 404s forever helps nobody.
		} else {
			j.restoreTerminal(info, nil)
			s.jobs.add(j)
			s.jobsRestored.Add(1)
			return
		}
	}

	// In-flight (or done-with-lost-result): re-enqueue, seeded with the
	// newest persisted checkpoints, and let the scheduler's restored-job
	// grace give the pre-crash fleet its rejoin window.
	weight := rj.slots
	if weight < 1 {
		weight = req.Workers
	}
	j.restore = &restoreState{
		taskID:      rj.taskID,
		slots:       rj.slots,
		checkpoints: s.restoreBlobs(sc, rj),
	}
	s.jobs.add(j)
	s.jobsRestored.Add(1)
	if rj.taskID != "" && sc.shards < 2 {
		// Sharded member executions always restart from the group's
		// stable set (the rollback machinery stays authoritative), so
		// only plain tasks arm the re-adoption table.
		s.fleet.ExpectReattach(rj.taskID, id, weight)
	}
	if apiErr := s.sched.submit(j); apiErr != nil {
		j.fail(apiErr.Message, time.Now())
		j.cancel()
	}
}

// restoreBlobs loads the checkpoint blobs a restored job resumes from.
// Plain jobs take every run's newest persisted snapshot; sharded jobs
// take the journaled promoted stable set — and only a COMPLETE one, a
// partial set would seed members at mismatched cycles.
func (s *Server) restoreBlobs(sc *scenario, rj *replayJob) map[string]backend.Blob {
	store := s.env.store
	if store == nil {
		return nil
	}
	out := map[string]backend.Blob{}
	if sc.shards >= 2 {
		if len(rj.stableKeys) != sc.shards {
			return nil
		}
		for _, key := range rj.stableKeys {
			b, ok := store.Load(key)
			if !ok {
				return nil
			}
			out[key] = backend.Blob{Cycle: rj.stableCy, Data: b}
		}
		return out
	}
	for _, spec := range sc.runs {
		key := CheckpointKey(sc.name, sc.hash, spec.key)
		if b, ok := store.Load(key); ok {
			out[key] = backend.Blob{Data: b}
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// trailingSeq parses the numeric suffix of "<prefix><digits>" IDs.
func trailingSeq(id, prefix string) (int, bool) {
	if !strings.HasPrefix(id, prefix) {
		return 0, false
	}
	n, err := strconv.Atoi(id[len(prefix):])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// taskSeq parses the fleet sequence number out of a task ID, accepting
// both plain ("task-000007") and sharded-member ("task-000007-s1") forms.
func taskSeq(id string) (int, bool) {
	if id == "" {
		return 0, false
	}
	const prefix = "task-"
	if !strings.HasPrefix(id, prefix) {
		return 0, false
	}
	rest := id[len(prefix):]
	if i := strings.Index(rest, "-s"); i >= 0 {
		rest = rest[:i]
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// End-to-end tests for hornet-serve: an in-process daemon exercised
// through the public Go client over real HTTP. The scenarios are tiny
// (4x4 meshes, short windows) so the whole file stays fast under
// -short -race on a single-core host.
package service_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hornet/internal/config"
	"hornet/internal/service"
	"hornet/internal/service/client"
)

// tinyConfig is a fast, valid network-only scenario.
func tinyConfig() *config.Config {
	cfg := config.Default()
	cfg.Topology.Width, cfg.Topology.Height = 4, 4
	cfg.Traffic = []config.TrafficConfig{{Pattern: config.PatternUniform, InjectionRate: 0.05}}
	cfg.WarmupCycles = 200
	cfg.AnalyzedCycles = 2_000
	return &cfg
}

// startServer spins up an in-process daemon and a client for it.
func startServer(t *testing.T, opts service.Options) (*service.Server, *client.Client) {
	t.Helper()
	srv := service.New(opts)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, client.New(ts.URL)
}

// The headline contract: submitting the same scenario twice executes
// once — the second job is served from the content-addressed cache, and
// both responses carry byte-identical document JSON.
func TestRepeatScenarioServedFromCacheByteIdentical(t *testing.T) {
	srv, c := startServer(t, service.Options{MaxJobs: 2, Budget: 2})
	ctx := context.Background()

	req := service.SubmitRequest{Name: "uniform-4x4", Config: tinyConfig(), Seed: 42}

	first, err := c.SubmitAndWait(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.State != service.StateDone {
		t.Fatalf("first job state = %s (%s)", first.State, first.Error)
	}
	if first.CacheHit {
		t.Fatal("first run of a scenario reported a cache hit")
	}
	doc1, raw1, err := c.Result(ctx, first.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc1.Runs) != 1 || doc1.Runs[0].Err != "" {
		t.Fatalf("unexpected document: %+v", doc1)
	}
	if doc1.Name != "uniform-4x4" || doc1.ConfigHash != first.ConfigHash {
		t.Fatalf("document identity mismatch: %s/%s vs job %s", doc1.Name, doc1.ConfigHash, first.ConfigHash)
	}

	second, err := c.SubmitAndWait(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if second.State != service.StateDone {
		t.Fatalf("second job state = %s (%s)", second.State, second.Error)
	}
	if !second.CacheHit {
		t.Fatal("repeated scenario was not served from the cache")
	}
	if second.ConfigHash != first.ConfigHash {
		t.Fatalf("same scenario hashed differently: %s vs %s", second.ConfigHash, first.ConfigHash)
	}
	_, raw2, err := c.Result(ctx, second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Fatalf("cached response not byte-identical:\n cold: %s\n warm: %s", raw1, raw2)
	}

	st := srv.Stats()
	if st.CacheHits < 1 {
		t.Fatalf("stats recorded no cache hit: %+v", st)
	}
}

// The cache identity is content-addressed over what determines results:
// execution knobs (engine worker count) must not shift the hash, while a
// different seed must.
func TestCacheKeyNormalization(t *testing.T) {
	_, c := startServer(t, service.Options{MaxJobs: 1, Budget: 2})
	ctx := context.Background()

	base := tinyConfig()
	a, err := c.Submit(ctx, service.SubmitRequest{Config: base, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	withWorkers := tinyConfig()
	withWorkers.Engine.Workers = 2
	b, err := c.Submit(ctx, service.SubmitRequest{Config: withWorkers, Seed: 7, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.ConfigHash != b.ConfigHash {
		t.Fatalf("worker count changed the cache key: %s vs %s", a.ConfigHash, b.ConfigHash)
	}
	otherSeed, err := c.Submit(ctx, service.SubmitRequest{Config: base, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if otherSeed.ConfigHash == a.ConfigHash {
		t.Fatal("different seeds produced the same cache key")
	}
	// Parallelism must not change result bytes either: the workers=2 job
	// (submitted before the cache was warm) must produce the exact bytes
	// the workers=1 job produced, whichever ran first.
	ia, err := c.Wait(ctx, a.ID)
	if err != nil {
		t.Fatal(err)
	}
	ib, err := c.Wait(ctx, b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if ia.State != service.StateDone || ib.State != service.StateDone {
		t.Fatalf("jobs did not finish: %s/%s", ia.State, ib.State)
	}
	_, rawA, err := c.Result(ctx, a.ID)
	if err != nil {
		t.Fatal(err)
	}
	_, rawB, err := c.Result(ctx, b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rawA, rawB) {
		t.Fatal("engine parallelism changed result document bytes")
	}
}

// Two concurrent jobs draw every engine worker from one shared budget:
// together they never hold more CPU slots than the configured cap.
func TestConcurrentJobsShareBudget(t *testing.T) {
	const budget = 2
	srv, c := startServer(t, service.Options{MaxJobs: 2, Budget: budget})
	ctx := context.Background()

	// Each job is a 3-run batch asking for 2 workers per run: plenty of
	// demand to exceed the budget if jobs did not share it.
	mkBatch := func(tag string) service.SubmitRequest {
		var items []service.BatchItem
		for i, rate := range []float64{0.02, 0.04, 0.06} {
			cfg := *tinyConfig()
			cfg.Traffic = []config.TrafficConfig{{Pattern: config.PatternUniform, InjectionRate: rate}}
			items = append(items, service.BatchItem{
				Key:    fmt.Sprintf("%s-%d", tag, i),
				Config: cfg,
			})
		}
		return service.SubmitRequest{Name: "budget-" + tag, Batch: items, Workers: 2}
	}

	ja, err := c.Submit(ctx, mkBatch("a"))
	if err != nil {
		t.Fatal(err)
	}
	jb, err := c.Submit(ctx, mkBatch("b"))
	if err != nil {
		t.Fatal(err)
	}
	ia, err := c.Wait(ctx, ja.ID)
	if err != nil {
		t.Fatal(err)
	}
	ib, err := c.Wait(ctx, jb.ID)
	if err != nil {
		t.Fatal(err)
	}
	if ia.State != service.StateDone || ib.State != service.StateDone {
		t.Fatalf("jobs did not finish: %s (%s) / %s (%s)", ia.State, ia.Error, ib.State, ib.Error)
	}

	st := srv.Stats()
	if st.BudgetCap != budget {
		t.Fatalf("budget cap = %d, want %d", st.BudgetCap, budget)
	}
	if st.BudgetPeak > budget {
		t.Fatalf("concurrent jobs held %d slots together, budget %d", st.BudgetPeak, budget)
	}
	if st.BudgetPeak < 1 {
		t.Fatalf("budget never used (peak %d)", st.BudgetPeak)
	}
	if st.BudgetInUse != 0 {
		t.Fatalf("budget leaked: %d slots still held", st.BudgetInUse)
	}
}

// Bad submissions are rejected with structured 4xx errors that carry the
// validation message.
func TestValidationErrors(t *testing.T) {
	_, c := startServer(t, service.Options{MaxJobs: 1, Budget: 1})
	ctx := context.Background()

	cases := []struct {
		name     string
		req      service.SubmitRequest
		code     string
		contains string
	}{
		{"nothing set", service.SubmitRequest{}, service.CodeInvalidRequest, "exactly one"},
		{"two scenarios", service.SubmitRequest{Config: tinyConfig(), Figure: "8"},
			service.CodeInvalidRequest, "exactly one"},
		{"bad name", service.SubmitRequest{Name: "no spaces!", Config: tinyConfig()},
			service.CodeInvalidRequest, "name"},
		{"unknown figure", service.SubmitRequest{Figure: "99z"},
			service.CodeUnknownFigure, "99z"},
		{"tiny and full", service.SubmitRequest{Figure: "t1", Tiny: true, Full: true},
			service.CodeInvalidRequest, "mutually exclusive"},
		{"no traffic", service.SubmitRequest{Config: func() *config.Config {
			cfg := tinyConfig()
			cfg.Traffic = nil
			return cfg
		}()}, service.CodeInvalidConfig, "traffic"},
		{"invalid topology", service.SubmitRequest{Config: func() *config.Config {
			cfg := tinyConfig()
			cfg.Topology.Kind = "blob"
			return cfg
		}()}, service.CodeInvalidConfig, "blob"},
		{"zero window", service.SubmitRequest{Config: func() *config.Config {
			cfg := tinyConfig()
			cfg.AnalyzedCycles = 0
			return cfg
		}()}, service.CodeInvalidConfig, "analyzed_cycles"},
		{"bad batch key", service.SubmitRequest{Batch: []service.BatchItem{
			{Key: "bad key!", Config: *tinyConfig()},
		}}, service.CodeInvalidRequest, "key"},
		{"duplicate batch key", service.SubmitRequest{Batch: []service.BatchItem{
			{Key: "same", Config: *tinyConfig()},
			{Key: "same", Config: *tinyConfig()},
		}}, service.CodeInvalidRequest, "duplicate"},
		{"batch member invalid", service.SubmitRequest{Batch: []service.BatchItem{
			{Key: "ok", Config: func() config.Config {
				cfg := *tinyConfig()
				cfg.Router.VCsPerPort = 0
				return cfg
			}()},
		}}, service.CodeInvalidConfig, "vcs_per_port"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := c.Submit(ctx, tc.req)
			var apiErr *service.APIError
			if !errors.As(err, &apiErr) {
				t.Fatalf("error = %v, want *APIError", err)
			}
			if apiErr.Code != tc.code {
				t.Fatalf("code = %s, want %s (%s)", apiErr.Code, tc.code, apiErr.Message)
			}
			if !strings.Contains(apiErr.Message, tc.contains) {
				t.Fatalf("message %q does not mention %q", apiErr.Message, tc.contains)
			}
		})
	}
}

// A registry figure runs as a job and its document matches the registry
// output shape; asking for the result too early is a structured error.
func TestFigureJobAndEarlyResult(t *testing.T) {
	if testing.Short() && raceEnabled {
		t.Skip("figure job under -short -race: sim too slow on 1 CPU")
	}
	_, c := startServer(t, service.Options{MaxJobs: 1, Budget: 2})
	ctx := context.Background()

	figs, err := c.Figures(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) < 10 {
		t.Fatalf("figure list too short: %d", len(figs))
	}

	info, err := c.Submit(ctx, service.SubmitRequest{Figure: "t1", Tiny: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Result(ctx, info.ID); err == nil {
		// The job may legitimately have finished already on a fast host;
		// only a non-terminal job must refuse.
		if cur, _ := c.Job(ctx, info.ID); !cur.Terminal() {
			t.Fatal("result served before the job finished")
		}
	}
	final, err := c.Wait(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != service.StateDone {
		t.Fatalf("figure job state = %s (%s)", final.State, final.Error)
	}
	doc, _, err := c.Result(ctx, final.ID)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Name != "t1" || len(doc.Runs) != 4 {
		t.Fatalf("t1 tiny document: name=%s runs=%d", doc.Name, len(doc.Runs))
	}
}

// Progress streams over SSE: a subscriber sees per-run progress events
// and a terminal state event, then the stream ends.
func TestSSEProgressStream(t *testing.T) {
	_, c := startServer(t, service.Options{MaxJobs: 1, Budget: 1})
	ctx := context.Background()

	var items []service.BatchItem
	for _, key := range []string{"r1", "r2", "r3"} {
		items = append(items, service.BatchItem{Key: key, Config: *tinyConfig()})
	}
	info, err := c.Submit(ctx, service.SubmitRequest{Name: "sse", Batch: items})
	if err != nil {
		t.Fatal(err)
	}

	var events []service.Event
	err = c.Events(ctx, info.ID, func(ev service.Event) bool {
		events = append(events, ev)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events received")
	}
	last := events[len(events)-1]
	if last.Type != "state" || last.State != service.StateDone {
		t.Fatalf("stream did not end with a terminal state event: %+v", last)
	}
	progress := 0
	for _, ev := range events {
		if ev.Type == "progress" {
			progress++
			if ev.Total != 3 {
				t.Fatalf("progress total = %d, want 3", ev.Total)
			}
		}
	}
	if progress == 0 {
		t.Fatal("no progress events on a 3-run batch")
	}
	// A late subscriber to a finished job still gets a terminal snapshot.
	var lateEvents []service.Event
	if err := c.Events(ctx, info.ID, func(ev service.Event) bool {
		lateEvents = append(lateEvents, ev)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(lateEvents) == 0 || lateEvents[len(lateEvents)-1].State != service.StateDone {
		t.Fatalf("late subscriber events: %+v", lateEvents)
	}
}

// Cancelling a running job drains it promptly: the in-flight simulation
// observes the cancelled context at a sync point and the job lands in
// the canceled state, with no result document cached.
func TestCancelRunningJob(t *testing.T) {
	_, c := startServer(t, service.Options{MaxJobs: 1, Budget: 1})
	ctx := context.Background()

	long := tinyConfig()
	long.Topology.Width, long.Topology.Height = 8, 8
	long.WarmupCycles = 0
	long.AnalyzedCycles = 500_000_000 // would run for hours if not cancelled
	info, err := c.Submit(ctx, service.SubmitRequest{Name: "long", Config: long})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for it to leave the queue, then cancel.
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur, err := c.Job(ctx, info.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == service.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %s", cur.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := c.Cancel(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	final, err := c.WaitTimeout(ctx, info.ID, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != service.StateCanceled {
		t.Fatalf("cancelled job state = %s", final.State)
	}
	if _, _, err := c.Result(ctx, final.ID); err == nil {
		t.Fatal("cancelled job served a result")
	}
	// The same scenario resubmitted must actually run (nothing cached):
	// a cache hit completes without ever entering the running state, so
	// observing StateRunning proves the cancelled job left no entry.
	resub, err := c.Submit(ctx, service.SubmitRequest{Name: "long", Config: long})
	if err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(30 * time.Second)
	for {
		cur, err := c.Job(ctx, resub.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == service.StateRunning {
			break
		}
		if cur.Terminal() {
			t.Fatalf("resubmitted job finished without running (state %s, cache_hit %v): cancelled job left a cache entry", cur.State, cur.CacheHit)
		}
		if time.Now().After(deadline) {
			t.Fatalf("resubmitted job never started: %s", cur.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := c.Cancel(ctx, resub.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitTimeout(ctx, resub.ID, 60*time.Second); err != nil {
		t.Fatal(err)
	}
}

// The disk cache tier survives a daemon restart: a new server over the
// same directory serves the scenario from cache, byte-identically.
func TestDiskCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	req := service.SubmitRequest{Name: "persist", Config: tinyConfig(), Seed: 11}

	srv1 := service.New(service.Options{MaxJobs: 1, Budget: 1, CacheDir: dir})
	ts1 := httptest.NewServer(srv1)
	c1 := client.New(ts1.URL)
	first, err := c1.SubmitAndWait(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.State != service.StateDone {
		t.Fatalf("job state = %s (%s)", first.State, first.Error)
	}
	_, raw1, err := c1.Result(ctx, first.ID)
	if err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	srv1.Close()

	srv2 := service.New(service.Options{MaxJobs: 1, Budget: 1, CacheDir: dir})
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	defer srv2.Close()
	c2 := client.New(ts2.URL)
	second, err := c2.SubmitAndWait(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("restarted daemon did not serve from the disk cache")
	}
	_, raw2, err := c2.Result(ctx, second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Fatal("disk-cached response not byte-identical to the cold run")
	}
}

// Unknown jobs are structured 404s.
func TestUnknownJob(t *testing.T) {
	_, c := startServer(t, service.Options{MaxJobs: 1, Budget: 1})
	ctx := context.Background()
	var apiErr *service.APIError
	if _, err := c.Job(ctx, "job-999999"); !errors.As(err, &apiErr) || apiErr.Code != service.CodeNotFound {
		t.Fatalf("unknown job error = %v", err)
	}
	if _, _, err := c.Result(ctx, "nope"); !errors.As(err, &apiErr) || apiErr.Code != service.CodeNotFound {
		t.Fatalf("unknown result error = %v", err)
	}
}

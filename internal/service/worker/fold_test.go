package worker

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"hornet/internal/obs"
)

// Engine-probe snapshots arrive from one task's concurrently finishing
// runs; engineFold serializes them into (prev, cur) pairs so the
// worker's histograms never double-count a chunk. This hammers the fold
// + observe path from many goroutines — primarily a race-detector
// target, but the chain invariants below hold at any schedule.
func TestEngineFoldConcurrent(t *testing.T) {
	reg := obs.NewRegistry()
	w := New(Options{Coordinator: "http://unused.invalid", Capacity: 2, Metrics: reg})

	const goroutines, perG = 8, 200
	fold := &engineFold{}
	var clock atomic.Uint64 // shared monotone cycle source
	var folds atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c := clock.Add(1)
				snap := obs.ProbeSnapshot{
					Cycles: c,
					Partitions: []obs.PartitionSnapshot{
						{Cycles: c, ComputeMS: float64(c) / 1e3, BarrierMS: float64(c) / 1e6},
					},
				}
				prev, cur := fold.fold(snap)
				w.metrics.observeEngine(prev, cur)
				if cur.Cycles != c {
					t.Errorf("fold returned cur %d for snapshot %d", cur.Cycles, c)
				}
				folds.Add(1)
			}
		}()
	}
	wg.Wait()

	if folds.Load() != goroutines*perG {
		t.Fatalf("ran %d folds, want %d", folds.Load(), goroutines*perG)
	}
	// The fold chain telescopes: the counter accumulates only the
	// positive deltas along it, so the total lands in (0, sum of all
	// increments] at any interleaving.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	total := metricValue(t, buf.String(), "hornet_engine_cycles_total")
	if total <= 0 || total > float64(goroutines*perG) {
		t.Errorf("hornet_engine_cycles_total = %v, want in (0, %d]", total, goroutines*perG)
	}
	// The exposition the hammer produced must still lint cleanly.
	if err := obs.LintPrometheusText(bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("post-hammer exposition fails lint: %v", err)
	}
}

// metricValue extracts one unlabelled series value from an exposition.
func metricValue(t *testing.T, exposition, name string) float64 {
	t.Helper()
	for _, line := range bytes.Split([]byte(exposition), []byte("\n")) {
		var v float64
		if n, _ := fmt.Sscanf(string(line), name+" %g", &v); n == 1 {
			return v
		}
	}
	t.Fatalf("series %s not found in:\n%s", name, exposition)
	return 0
}

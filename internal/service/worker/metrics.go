package worker

import (
	"time"

	"hornet/internal/obs"
)

// workerMetrics is the worker's metric surface, registered into the
// caller-supplied registry (hornet-worker mounts it at -metrics-addr's
// GET /metrics). A nil registry disables everything: every method is
// nil-receiver-safe so call sites stay unconditional.
type workerMetrics struct {
	registrations *obs.Counter
	pollErrors    *obs.Counter
	uploads       *obs.Counter
	uploadBytes   *obs.Counter
	uploadSecs    *obs.Histogram
	uploadSizes   *obs.Histogram

	engineCycles    *obs.Counter
	engineCompute   *obs.Histogram
	engineBarrier   *obs.Histogram
	engineShardSync *obs.Histogram

	reg *obs.Registry
}

func newWorkerMetrics(w *Worker, reg *obs.Registry) *workerMetrics {
	if reg == nil {
		return nil
	}
	m := &workerMetrics{reg: reg}
	reg.GaugeFunc("hornet_worker_capacity", "CPU slots this worker advertises.",
		func() float64 { return float64(w.opts.Capacity) })
	reg.GaugeFunc("hornet_worker_busy_slots", "CPU slots held by in-flight task executions.",
		func() float64 {
			w.mu.Lock()
			defer w.mu.Unlock()
			return float64(w.busy)
		})
	m.registrations = reg.Counter("hornet_worker_registrations_total", "Successful coordinator registrations (re-registrations included).")
	m.pollErrors = reg.Counter("hornet_worker_poll_errors_total", "Failed assignment polls.")
	m.uploads = reg.Counter("hornet_worker_checkpoint_uploads_total", "Checkpoint blobs uploaded to the coordinator.")
	m.uploadBytes = reg.Counter("hornet_worker_checkpoint_upload_bytes_total", "Checkpoint bytes uploaded to the coordinator.")
	m.uploadSecs = reg.Histogram("hornet_worker_checkpoint_upload_seconds", "Checkpoint upload round-trip latency.", nil)
	m.uploadSizes = reg.Histogram("hornet_worker_checkpoint_upload_size_bytes", "Checkpoint blob sizes uploaded.", obs.SizeBuckets)
	m.engineCycles = reg.Counter("hornet_engine_cycles_total", "Simulated cycles executed on this worker.")
	m.engineCompute = reg.Histogram("hornet_engine_compute_seconds", "Per-chunk engine compute time (summed across worker threads).", nil)
	m.engineBarrier = reg.Histogram("hornet_engine_barrier_wait_seconds", "Per-chunk barrier wait time (summed across worker threads).", nil)
	m.engineShardSync = reg.Histogram("hornet_engine_shard_sync_seconds", "Per-chunk shard synchronization round-trip time.", nil)
	return m
}

func (m *workerMetrics) registered() {
	if m != nil {
		m.registrations.Inc()
	}
}

func (m *workerMetrics) pollErr() {
	if m != nil {
		m.pollErrors.Inc()
	}
}

// taskDone counts one terminal task outcome ("done", "failed",
// "canceled", "abandoned") lazily, so only outcomes that occurred
// appear in the exposition.
func (m *workerMetrics) taskDone(outcome string) {
	if m != nil {
		m.reg.Counter("hornet_worker_tasks_total", "Task executions by terminal outcome.",
			obs.L("outcome", outcome)).Inc()
	}
}

func (m *workerMetrics) uploadDone(bytes int, d time.Duration) {
	if m == nil {
		return
	}
	m.uploads.Inc()
	m.uploadBytes.Add(uint64(bytes))
	m.uploadSecs.ObserveDuration(d)
	m.uploadSizes.Observe(float64(bytes))
}

// observeEngine folds the delta between consecutive probe snapshots of
// one task into the engine series. Snapshots from one probe are
// monotone; a guard keeps a reordered pair from going negative.
func (m *workerMetrics) observeEngine(prev, cur obs.ProbeSnapshot) {
	if m == nil {
		return
	}
	if cur.Cycles > prev.Cycles {
		m.engineCycles.Add(cur.Cycles - prev.Cycles)
	}
	if d := (cur.ComputeWallMS() - prev.ComputeWallMS()) / 1e3; d > 0 {
		m.engineCompute.Observe(d)
	}
	if d := (cur.BarrierWallMS() - prev.BarrierWallMS()) / 1e3; d > 0 {
		m.engineBarrier.Observe(d)
	}
	if d := (cur.ShardSyncWallMS - prev.ShardSyncWallMS) / 1e3; d > 0 {
		m.engineShardSync.Observe(d)
	}
}

// Package worker implements the hornet-worker side of the fleet
// protocol: register with a hornet-serve coordinator, long-poll for
// task assignments, execute them with the exact same validation and
// execution path the daemon itself uses (service.Execute), stream
// progress back, and upload checkpoint snapshots so the coordinator
// can migrate the task to another worker if this process dies.
//
// Workers are diskless: checkpoints live in memory and on the
// coordinator, never on the worker's filesystem, so a worker can be a
// throwaway container. Cancellation of Run's context is crash-stop —
// nothing is flushed or deregistered, exactly what kill -9 would do —
// and graceful drains go through Deregister, which requeues the
// worker's tasks (checkpoints included) onto the surviving fleet.
package worker

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"sync"
	"time"

	"hornet/internal/core"
	"hornet/internal/obs"
	"hornet/internal/service"
	"hornet/internal/service/backend"
	"hornet/internal/sim"
	"hornet/internal/sweep"
)

// Options configures a Worker.
type Options struct {
	// Coordinator is the hornet-serve base URL, e.g. "http://host:8080".
	Coordinator string
	// ID is the worker's stable identity; empty lets the coordinator
	// mint one.
	ID string
	// Capacity is the number of CPU slots offered; 0 means GOMAXPROCS.
	Capacity int
	// HTTP is the underlying client; nil means http.DefaultClient.
	HTTP *http.Client
	// Logger receives structured lifecycle logs (registration, task
	// start/finish, lease loss); nil discards them.
	Logger *slog.Logger
	// Metrics, if non-nil, is the registry this worker registers its
	// series in (busy slots, task outcomes, checkpoint uploads, engine
	// telemetry); the caller mounts it at GET /metrics.
	Metrics *obs.Registry
	// TelemetryEvery is the wall-clock cadence at which executing tasks
	// push machine-telemetry samples (per-tile flit counters, per-link
	// buffer occupancy) to the coordinator; 0 means 500ms, negative
	// disables telemetry (the engines keep their nil-sampler fast path).
	TelemetryEvery time.Duration
}

// Worker is one fleet member. Create with New, drive with Run.
type Worker struct {
	opts    Options
	log     *slog.Logger
	metrics *workerMetrics

	mu      sync.Mutex
	idle    *sync.Cond // signalled when busy slots free up
	id      string
	ckEvery uint64
	hbEvery time.Duration
	// busy is the number of capacity slots held by in-flight
	// executions; the worker keeps polling while busy < Capacity, so a
	// capacity-4 worker really runs up to four weight-1 tasks at once
	// (matching the coordinator's free-slot placement) instead of
	// stranding advertised slots.
	busy int
	// running maps task ID → cancel for the in-flight execution, so a
	// heartbeat-delivered cancellation (or a 410 push response) aborts
	// the right run.
	running map[string]context.CancelFunc
	// ckptCycle tracks the newest checkpoint cycle uploaded per
	// in-flight task; re-registration claims carry it so the
	// coordinator can record what an adopted run resumes from.
	ckptCycle map[string]uint64
	// rejoinDone is non-nil while a re-registration is in flight;
	// concurrent rejoin callers wait on it instead of racing a second
	// registration (which would evict the first and requeue its
	// freshly adopted tasks).
	rejoinDone chan struct{}
	wg         sync.WaitGroup

	// warm is the process-wide warmup snapshot cache: tasks sharing a
	// warmup prefix fork from one snapshot instead of each
	// re-simulating it, matching the coordinator's local backend.
	warm *sweep.SnapshotCache
}

// New returns an unregistered worker.
func New(opts Options) *Worker {
	if opts.Capacity < 1 {
		opts.Capacity = runtime.GOMAXPROCS(0)
	}
	w := &Worker{opts: opts, id: opts.ID,
		running: map[string]context.CancelFunc{}, ckptCycle: map[string]uint64{}}
	w.log = opts.Logger
	if w.log == nil {
		w.log = obs.Nop()
	}
	w.log = obs.Component(w.log, "worker")
	w.idle = sync.NewCond(&w.mu)
	w.warm = sweep.NewSnapshotCache("")
	w.warm.SetMaxEntries(32)
	w.metrics = newWorkerMetrics(w, opts.Metrics)
	return w
}

// ID returns the coordinator-assigned identity (after registration).
func (w *Worker) ID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

func (w *Worker) httpClient() *http.Client {
	if w.opts.HTTP != nil {
		return w.opts.HTTP
	}
	return http.DefaultClient
}

// errGone mirrors the coordinator's 410: the task is no longer this
// worker's (cancelled or migrated); abandon the run.
var errGone = errors.New("worker: task gone")

// errUnknown mirrors the coordinator's 404 worker_unknown: the lease
// expired; re-register.
var errUnknown = errors.New("worker: not registered")

// doJSON issues one request and decodes the response (or its error
// envelope, mapping the protocol statuses onto errGone/errUnknown).
func (w *Worker) doJSON(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, w.opts.Coordinator+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := w.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return decodeError(resp)
	}
	if out == nil || resp.StatusCode == http.StatusNoContent {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func decodeError(resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var env struct {
		Err service.APIError `json:"error"`
	}
	if err := json.Unmarshal(b, &env); err == nil && env.Err.Code != "" {
		switch env.Err.Code {
		case service.CodeTaskGone:
			return errGone
		case service.CodeWorkerUnknown:
			return errUnknown
		}
		return &env.Err
	}
	return fmt.Errorf("http %d: %s", resp.StatusCode, bytes.TrimSpace(b))
}

// Run registers and serves assignments until ctx is cancelled.
// Executions run concurrently up to the worker's capacity: the loop
// keeps polling while free slots remain, and each assignment's slot
// grant (Assignment.Workers, sized by the coordinator to this worker's
// free capacity) occupies that many slots for its duration.
// Cancellation is crash-stop: in-flight work is abandoned mid-push and
// the coordinator discovers the death by lease expiry. Use Deregister
// for a graceful exit.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		return err
	}
	hbCtx, hbCancel := context.WithCancel(ctx)
	defer hbCancel()
	go w.heartbeatLoop(hbCtx)
	// Wake the slot wait below when ctx dies, or a full worker would
	// block in Wait() past cancellation.
	stopWake := context.AfterFunc(ctx, func() {
		w.mu.Lock()
		w.idle.Broadcast()
		w.mu.Unlock()
	})
	defer stopWake()
	defer w.wg.Wait() // crash-stop still joins its goroutines

	for {
		w.mu.Lock()
		for w.busy >= w.opts.Capacity && ctx.Err() == nil {
			w.idle.Wait()
		}
		w.mu.Unlock()
		if err := ctx.Err(); err != nil {
			return err
		}
		a, err := w.poll(ctx)
		switch {
		case err == nil && a == nil:
			continue // long-poll timeout: poll again
		case errors.Is(err, errUnknown):
			// Lease expired, or the coordinator restarted. Re-register
			// claiming the in-flight runs: the coordinator re-adopts the
			// ones it can still account for (restart reattach, or a
			// requeue not yet re-dispatched) and the registration
			// response tells us to cancel the rest — so a stale
			// execution can never interleave with a new executor.
			w.rejoin(ctx)
			if err := ctx.Err(); err != nil {
				return err
			}
			continue
		case err != nil:
			if ctx.Err() != nil {
				return ctx.Err()
			}
			w.metrics.pollErr()
			w.log.Warn("poll failed; retrying", obs.Worker(w.ID()), obs.Err(err))
			select {
			case <-time.After(time.Second):
			case <-ctx.Done():
				return ctx.Err()
			}
			continue
		}
		slots := a.Workers
		if slots < 1 {
			slots = 1
		}
		if slots > w.opts.Capacity {
			slots = w.opts.Capacity
		}
		w.mu.Lock()
		w.busy += slots
		w.mu.Unlock()
		w.wg.Add(1)
		go func(a *backend.Assignment, slots int) {
			defer w.wg.Done()
			defer func() {
				w.mu.Lock()
				w.busy -= slots
				w.idle.Broadcast()
				w.mu.Unlock()
			}()
			w.execute(ctx, a)
		}(a, slots)
	}
}

// register joins the fleet, retrying while the coordinator is
// unreachable. The request claims every in-flight execution (with its
// newest uploaded checkpoint cycle); runs the coordinator does not
// re-adopt are cancelled here — they were migrated elsewhere, or the
// coordinator that knew them is gone, and keeping them running would
// risk two executors interleaving on one task.
func (w *Worker) register(ctx context.Context) error {
	for {
		claims := w.runningClaims()
		req := backend.RegisterRequest{ID: w.ID(), Capacity: w.opts.Capacity, Running: claims}
		var resp backend.RegisterResponse
		err := w.doJSON(ctx, http.MethodPost, "/api/v1/workers", req, &resp)
		if err == nil {
			w.mu.Lock()
			w.id = resp.ID
			w.ckEvery = resp.CheckpointEvery
			w.hbEvery = resp.HeartbeatEvery
			w.mu.Unlock()
			w.metrics.registered()
			w.log.Info("registered with coordinator", obs.Worker(resp.ID),
				slog.Int("capacity", w.opts.Capacity),
				slog.Uint64("checkpoint_every", resp.CheckpointEvery),
				slog.Int("claimed", len(claims)), slog.Int("adopted", len(resp.Adopted)))
			if len(claims) > 0 {
				w.cancelUnadopted(claims, resp.Adopted)
			}
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		w.log.Warn("registration failed; retrying", obs.Worker(w.ID()), obs.Err(err))
		select {
		case <-time.After(time.Second):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// runningClaims snapshots the in-flight executions for a registration
// request.
func (w *Worker) runningClaims() []backend.RunningTask {
	w.mu.Lock()
	defer w.mu.Unlock()
	claims := make([]backend.RunningTask, 0, len(w.running))
	for tid := range w.running {
		claims = append(claims, backend.RunningTask{TaskID: tid, Cycle: w.ckptCycle[tid]})
	}
	return claims
}

// cancelUnadopted aborts every claimed run the coordinator did not
// re-bind to this registration.
func (w *Worker) cancelUnadopted(claims []backend.RunningTask, adopted []string) {
	kept := make(map[string]bool, len(adopted))
	for _, tid := range adopted {
		kept[tid] = true
	}
	w.mu.Lock()
	var cancels []context.CancelFunc
	var dropped []string
	for _, c := range claims {
		if kept[c.TaskID] {
			continue
		}
		if cancel, ok := w.running[c.TaskID]; ok {
			cancels = append(cancels, cancel)
			dropped = append(dropped, c.TaskID)
		}
	}
	w.mu.Unlock()
	if len(dropped) > 0 {
		w.log.Warn("abandoning in-flight tasks not re-adopted by coordinator",
			obs.Worker(w.ID()), slog.Any("tasks", dropped))
	}
	for _, c := range cancels {
		c()
	}
}

// rejoin re-registers after a worker_unknown, single-flighted: the
// first caller performs the registration, concurrent callers wait for
// it. A second full registration right after the first would evict
// the fresh incarnation and requeue its just-adopted tasks, so the
// single-flight is load-bearing, not an optimization.
func (w *Worker) rejoin(ctx context.Context) {
	w.mu.Lock()
	if ch := w.rejoinDone; ch != nil {
		w.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
		}
		return
	}
	ch := make(chan struct{})
	w.rejoinDone = ch
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		w.rejoinDone = nil
		w.mu.Unlock()
		close(ch)
	}()
	if err := w.register(ctx); err != nil && ctx.Err() == nil {
		w.log.Warn("re-registration failed", obs.Worker(w.ID()), obs.Err(err))
	}
}

// Deregister leaves the fleet gracefully: assigned tasks requeue (with
// their uploaded checkpoints) onto the surviving workers.
func (w *Worker) Deregister(ctx context.Context) error {
	id := w.ID()
	if id == "" {
		return nil
	}
	return w.doJSON(ctx, http.MethodDelete, "/api/v1/workers/"+url.PathEscape(id), nil, nil)
}

// heartbeatEvery returns the current heartbeat period (re-read every
// beat: a re-registration against a coordinator with a different
// -worker-ttl must retune the cadence, or a now-shorter lease would
// keep expiring this worker mid-task).
func (w *Worker) heartbeatEvery() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.hbEvery > 0 {
		return w.hbEvery
	}
	return 5 * time.Second
}

func (w *Worker) heartbeatLoop(ctx context.Context) {
	timer := time.NewTimer(w.heartbeatEvery())
	defer timer.Stop()
	for {
		select {
		case <-timer.C:
			var resp backend.HeartbeatResponse
			err := w.doJSON(ctx, http.MethodPost,
				"/api/v1/workers/"+url.PathEscape(w.ID())+"/heartbeat", struct{}{}, &resp)
			switch {
			case errors.Is(err, errUnknown):
				// The lease expired or the coordinator restarted:
				// re-register right away, claiming the in-flight runs so
				// the coordinator can re-adopt them instead of
				// re-dispatching from checkpoints.
				w.rejoin(ctx)
			case err == nil:
				for _, tid := range resp.CancelTasks {
					w.cancelTask(tid)
				}
			}
			timer.Reset(w.heartbeatEvery())
		case <-ctx.Done():
			return
		}
	}
}

func (w *Worker) cancelTask(taskID string) {
	w.mu.Lock()
	cancel := w.running[taskID]
	w.mu.Unlock()
	if cancel != nil {
		w.log.Info("coordinator cancelled task", obs.Worker(w.ID()), obs.Task(taskID))
		cancel()
	}
}

func (w *Worker) poll(ctx context.Context) (*backend.Assignment, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		w.opts.Coordinator+"/api/v1/workers/"+url.PathEscape(w.ID())+"/poll?wait=25s", nil)
	if err != nil {
		return nil, err
	}
	resp, err := w.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNoContent:
		io.Copy(io.Discard, resp.Body)
		return nil, nil
	case resp.StatusCode >= 400:
		return nil, decodeError(resp)
	}
	var a backend.Assignment
	if err := json.NewDecoder(resp.Body).Decode(&a); err != nil {
		return nil, err
	}
	return &a, nil
}

// execute runs one assignment end to end and pushes the terminal
// result. Every push is best-effort: a dead coordinator just means the
// lease expires and the task migrates.
func (w *Worker) execute(ctx context.Context, a *backend.Assignment) {
	w.log.Info("task started", obs.Worker(w.ID()), obs.Task(a.TaskID),
		slog.String("name", a.Name), slog.Int("workers", a.Workers),
		slog.Int("seeded_checkpoints", len(a.Checkpoints)))
	taskCtx, cancel := context.WithCancel(ctx)
	w.mu.Lock()
	w.running[a.TaskID] = cancel
	w.mu.Unlock()
	defer func() {
		cancel()
		w.mu.Lock()
		delete(w.running, a.TaskID)
		delete(w.ckptCycle, a.TaskID)
		w.mu.Unlock()
	}()

	var req service.SubmitRequest
	if err := json.Unmarshal(a.Request, &req); err != nil {
		w.pushResult(ctx, a.TaskID, backend.ResultPush{Error: "malformed task request: " + err.Error()})
		return
	}

	store := &remoteStore{w: w, ctx: taskCtx, taskID: a.TaskID, cancelRun: cancel,
		mem: service.NewMemCheckpointStore()}
	for key, blob := range a.Checkpoints {
		_ = store.mem.Save(key, blob.Data, blob.Cycle)
	}
	event := func(ev backend.TaskEvent) {
		err := w.doJSON(taskCtx, http.MethodPost,
			"/api/v1/workers/"+url.PathEscape(w.ID())+"/tasks/"+url.PathEscape(a.TaskID)+"/events",
			ev, nil)
		switch {
		case errors.Is(err, errGone):
			// Cancelled or migrated away: the task is not ours — stop
			// simulating.
			cancel()
		case errors.Is(err, errUnknown):
			// The coordinator no longer knows this WORKER — a restart,
			// or a lease expiry we outlived. Re-register claiming the
			// in-flight runs; if this one is not re-adopted, rejoin's
			// registration response cancels it. The event itself is
			// dropped (progress pushes are best-effort anyway).
			w.rejoin(taskCtx)
		}
	}
	onProgress := func(done, total int, key string) {
		event(backend.TaskEvent{Type: "progress", Done: done, Total: total, Key: key})
	}
	onResumed := func(key string, cycle uint64) {
		event(backend.TaskEvent{Type: "resumed", Key: key, Cycle: cycle})
	}
	onCheckpoint := func(key string, cycle uint64) {
		event(backend.TaskEvent{Type: "checkpoint", Key: key, Cycle: cycle})
	}
	// Engine probe snapshots: pushed upstream (the coordinator surfaces
	// them per job) and folded into this worker's own engine histograms.
	fold := &engineFold{}
	onEngine := func(snap obs.ProbeSnapshot) {
		prev, cur := fold.fold(snap)
		w.metrics.observeEngine(prev, cur)
		event(backend.TaskEvent{Type: "engine", Engine: &snap})
	}
	// Machine-telemetry samples: pushed upstream so the coordinator can
	// merge the member spans of a sharded job into one live machine view.
	var onTelemetry func(obs.TelemetrySnapshot)
	if w.opts.TelemetryEvery >= 0 {
		onTelemetry = func(snap obs.TelemetrySnapshot) {
			event(backend.TaskEvent{Type: "telemetry", Telemetry: &snap})
		}
	}
	var res *service.ExecResult
	var err error
	if a.ShardCount >= 2 {
		// A space-parallel member assignment: run this worker's tile span
		// of the simulation, rendezvousing with the sibling members
		// through the coordinator's shard endpoints.
		res, err = service.ExecuteShard(taskCtx, req, service.ShardExecOptions{
			Shard:      a.Shard,
			ShardCount: a.ShardCount,
			Transport: &shardTransport{w: w, ctx: taskCtx, taskID: a.TaskID,
				cancelRun: cancel, epoch: a.ShardEpoch},
			Workers:         a.Workers,
			Checkpoints:     store,
			CheckpointEvery: a.CheckpointEvery,
			OnProgress:      onProgress,
			OnResumed:       onResumed,
			OnCheckpoint:    onCheckpoint,
			OnEngine:        onEngine,
			OnTelemetry:     onTelemetry,
			TelemetryEvery:  w.opts.TelemetryEvery,
		})
	} else {
		res, err = service.Execute(taskCtx, req, service.ExecOptions{
			Workers:         a.Workers,
			Checkpoints:     store,
			CheckpointEvery: a.CheckpointEvery,
			Warmups:         w.warm,
			OnProgress:      onProgress,
			OnResumed:       onResumed,
			OnCheckpoint:    onCheckpoint,
			OnEngine:        onEngine,
			OnTelemetry:     onTelemetry,
			TelemetryEvery:  w.opts.TelemetryEvery,
		})
	}
	switch {
	case ctx.Err() != nil:
		// Crash-stop: push nothing, the lease expiry migrates the task.
		w.finishTask(a.TaskID, "abandoned", nil)
		return
	case taskCtx.Err() != nil:
		w.finishTask(a.TaskID, "canceled", nil)
		w.pushResult(ctx, a.TaskID, backend.ResultPush{Canceled: true})
	case err != nil:
		w.finishTask(a.TaskID, "failed", err)
		w.pushResult(ctx, a.TaskID, backend.ResultPush{Error: err.Error()})
	default:
		w.finishTask(a.TaskID, "done", nil)
		w.pushResult(ctx, a.TaskID, backend.ResultPush{Doc: res.Doc, RunErrs: res.RunErrs})
	}
}

// engineFold serializes engine-probe snapshots arriving from one
// task's concurrently finishing runs into ordered (previous, current)
// pairs. Runs of one task hit chunk boundaries in parallel, so without
// the lock two snapshots could read the same delta base and fold one
// chunk's work into the worker's histograms twice (or, interleaved the
// other way, fold a negative delta and silently drop it).
type engineFold struct {
	mu   sync.Mutex
	prev obs.ProbeSnapshot
}

// fold records snap as the newest snapshot and returns the delta pair
// to observe.
func (f *engineFold) fold(snap obs.ProbeSnapshot) (prev, cur obs.ProbeSnapshot) {
	f.mu.Lock()
	defer f.mu.Unlock()
	prev, f.prev = f.prev, snap
	return prev, snap
}

// finishTask records one terminal task outcome in the log and metrics.
func (w *Worker) finishTask(taskID, outcome string, err error) {
	w.metrics.taskDone(outcome)
	attrs := []any{obs.Worker(w.ID()), obs.Task(taskID), slog.String("outcome", outcome)}
	if err != nil {
		w.log.Warn("task finished", append(attrs, obs.Err(err))...)
		return
	}
	w.log.Info("task finished", attrs...)
}

func (w *Worker) pushResult(ctx context.Context, taskID string, res backend.ResultPush) {
	err := w.doJSON(ctx, http.MethodPost,
		"/api/v1/workers/"+url.PathEscape(w.ID())+"/tasks/"+url.PathEscape(taskID)+"/result",
		res, nil)
	if errors.Is(err, errUnknown) && ctx.Err() == nil {
		// The coordinator restarted just as the run finished. Rejoin —
		// the registration claims this task (it is still in w.running
		// until our caller's defer) — and push once more: if the claim
		// was adopted the result completes the job; if not, the retry
		// gets task_gone and the coordinator re-runs from checkpoints.
		w.rejoin(ctx)
		err = w.doJSON(ctx, http.MethodPost,
			"/api/v1/workers/"+url.PathEscape(w.ID())+"/tasks/"+url.PathEscape(taskID)+"/result",
			res, nil)
	}
	if err != nil && ctx.Err() == nil {
		w.log.Warn("result push failed", obs.Worker(w.ID()), obs.Task(taskID), obs.Err(err))
	}
}

// shardTransport is the worker-side service.ShardTransport: every
// synchronization point of the member's engine becomes one blocking
// POST against the coordinator's shard endpoints (the coordinator's
// ShardGroup is the barrier). A restart notice — the group lost a
// member and rolled back to its stable checkpoint — surfaces as
// *core.ShardRestartError after the transport adopts the new epoch.
type shardTransport struct {
	w         *Worker
	ctx       context.Context
	taskID    string
	cancelRun context.CancelFunc
	epoch     int
}

func (t *shardTransport) path(suffix string) string {
	return "/api/v1/workers/" + url.PathEscape(t.w.ID()) +
		"/tasks/" + url.PathEscape(t.taskID) + "/" + suffix
}

// fatal maps protocol statuses that mean "this task is no longer ours"
// onto a run cancellation, like every other push path.
func (t *shardTransport) fatal(err error) error {
	if errors.Is(err, errGone) || errors.Is(err, errUnknown) {
		t.cancelRun()
	}
	return err
}

func (t *shardTransport) Sync(v sim.ShardVote, boundary []byte) (sim.ShardDecision, [][]byte, error) {
	var resp backend.ShardSyncResponse
	err := t.w.doJSON(t.ctx, http.MethodPost, t.path("shardsync"),
		backend.ShardSyncRequest{Epoch: t.epoch, Vote: v, Boundary: boundary}, &resp)
	if err != nil {
		return sim.ShardDecision{}, nil, t.fatal(err)
	}
	if r := resp.Restart; r != nil {
		t.epoch = r.Epoch
		return sim.ShardDecision{}, nil, &core.ShardRestartError{Epoch: uint64(r.Epoch), Cycle: r.Cycle}
	}
	return resp.Decision, resp.Payloads, nil
}

func (t *shardTransport) Gather(payload []byte) ([][]byte, error) {
	var resp backend.ShardGatherResponse
	err := t.w.doJSON(t.ctx, http.MethodPost, t.path("shardgather"),
		backend.ShardGatherRequest{Epoch: t.epoch, Payload: payload}, &resp)
	if err != nil {
		return nil, t.fatal(err)
	}
	if r := resp.Restart; r != nil {
		t.epoch = r.Epoch
		return nil, &core.ShardRestartError{Epoch: uint64(r.Epoch), Cycle: r.Cycle}
	}
	return resp.Payloads, nil
}

func (t *shardTransport) StableCheckpoint() ([]byte, bool, error) {
	var resp backend.ShardCheckpointResponse
	err := t.w.doJSON(t.ctx, http.MethodGet, t.path("shardcheckpoint"), nil, &resp)
	if err != nil {
		return nil, false, t.fatal(err)
	}
	if resp.Blob == nil {
		return nil, false, nil
	}
	return resp.Blob.Data, true, nil
}

// remoteStore is the worker's CheckpointStore: loads are served from
// the in-memory copy (seeded by the assignment), saves upload the blob
// to the coordinator — the fleet's migration state — and keep the
// memory copy for local resume.
type remoteStore struct {
	w         *Worker
	ctx       context.Context
	taskID    string
	cancelRun context.CancelFunc
	mem       *service.MemCheckpointStore
}

func (r *remoteStore) Save(key string, blob []byte, cycle uint64) error {
	_ = r.mem.Save(key, blob, cycle)
	path := "/api/v1/workers/" + url.PathEscape(r.w.ID()) + "/tasks/" + url.PathEscape(r.taskID) +
		"/checkpoints/" + url.PathEscape(key) + "?cycle=" + strconv.FormatUint(cycle, 10)
	req, err := http.NewRequestWithContext(r.ctx, http.MethodPut,
		r.w.opts.Coordinator+path, bytes.NewReader(blob))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	start := time.Now()
	resp, err := r.w.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		err := decodeError(resp)
		switch {
		case errors.Is(err, errGone):
			r.cancelRun() // the task is no longer ours: stop simulating
		case errors.Is(err, errUnknown):
			// Worker unknown: the coordinator restarted (or expired our
			// lease). Rejoin with claims; a non-adopted run is cancelled
			// by the registration response, an adopted one re-uploads at
			// its next cadence.
			r.w.rejoin(r.ctx)
		}
		return err
	}
	io.Copy(io.Discard, resp.Body)
	r.w.noteCheckpoint(r.taskID, cycle)
	r.w.metrics.uploadDone(len(blob), time.Since(start))
	return nil
}

// noteCheckpoint records the newest uploaded cycle for re-registration
// claims.
func (w *Worker) noteCheckpoint(taskID string, cycle uint64) {
	w.mu.Lock()
	if cycle > w.ckptCycle[taskID] {
		w.ckptCycle[taskID] = cycle
	}
	w.mu.Unlock()
}

func (r *remoteStore) Load(key string) ([]byte, bool) { return r.mem.Load(key) }

func (r *remoteStore) Remove(key string) {
	r.mem.Remove(key)
	// Best effort: the run finished, so the coordinator can drop the
	// migration blob; the result push supersedes it anyway.
	_ = r.w.doJSON(r.ctx, http.MethodDelete,
		"/api/v1/workers/"+url.PathEscape(r.w.ID())+"/tasks/"+url.PathEscape(r.taskID)+
			"/checkpoints/"+url.PathEscape(key), nil, nil)
}

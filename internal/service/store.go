package service

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"hornet/internal/fsatomic"
	"hornet/internal/lru"
)

// resultStore is the content-addressed result cache: canonical document
// bytes keyed by (name, config hash). It always holds results in memory
// — bounded by an LRU policy over entry count and total bytes — and
// with a directory configured it also persists them in the same
// name-hash.json layout sweep.Cache uses, so a restarted daemon (or the
// hornet-exp CLI pointed at the same directory) serves warm results.
// Evicting a memory entry never loses data when the disk tier is
// configured: the next Get refaults it from disk.
//
// The store deals in raw bytes, never re-marshalled documents: a decoded
// document re-encodes `any` values as sorted maps rather than structs, so
// only byte passthrough keeps cached responses identical to cold runs.
type resultStore struct {
	mu  sync.Mutex
	mem *lru.Cache

	dir       string // "" disables the disk tier
	hits      atomic.Uint64
	misses    atomic.Uint64
	writeErrs atomic.Uint64
}

func newResultStore(dir string) *resultStore {
	return &resultStore{mem: lru.New(), dir: dir}
}

// setBounds configures the memory-tier LRU limits (0 = unbounded).
func (s *resultStore) setBounds(maxEntries int, maxBytes int64) {
	s.mu.Lock()
	s.mem.SetBounds(maxEntries, maxBytes)
	s.mu.Unlock()
}

func (s *resultStore) key(name, hash string) string { return name + "-" + hash }

func (s *resultStore) path(name, hash string) string {
	return filepath.Join(s.dir, s.key(name, hash)+".json")
}

// Get returns the cached document bytes, consulting memory first and
// then the disk tier. Disk entries must be valid JSON (a partial write
// cannot occur — writes are atomic — but a foreign or truncated file is
// treated as a miss rather than served).
func (s *resultStore) Get(name, hash string) ([]byte, bool) {
	k := s.key(name, hash)
	s.mu.Lock()
	b, ok := s.mem.Get(k)
	s.mu.Unlock()
	if ok {
		s.hits.Add(1)
		return b, true
	}
	if s.dir != "" {
		if b, err := os.ReadFile(s.path(name, hash)); err == nil && json.Valid(b) {
			s.mu.Lock()
			s.mem.Put(k, b)
			s.mu.Unlock()
			s.hits.Add(1)
			return b, true
		}
	}
	s.misses.Add(1)
	return nil, false
}

// Put stores the canonical bytes. Disk writes go through a temp file and
// rename so a killed daemon never leaves a half-written entry; a failed
// disk write degrades to memory-only serving but is counted (WriteErrs,
// surfaced via /api/v1/stats) so a broken disk tier is visible.
func (s *resultStore) Put(name, hash string, b []byte) error {
	s.mu.Lock()
	s.mem.Put(s.key(name, hash), b)
	s.mu.Unlock()
	if s.dir == "" {
		return nil
	}
	if err := s.persist(name, hash, b); err != nil {
		s.writeErrs.Add(1)
		return err
	}
	return nil
}

func (s *resultStore) persist(name, hash string, b []byte) error {
	return fsatomic.WriteFile(s.path(name, hash), b)
}

// Len reports the in-memory entry count.
func (s *resultStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem.Len()
}

// Bytes reports the in-memory byte total.
func (s *resultStore) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem.Bytes()
}

// Evictions reports how many memory entries the LRU bounds dropped.
func (s *resultStore) Evictions() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem.Evictions()
}

// Hits, Misses and WriteErrs report counters for the stats endpoint.
func (s *resultStore) Hits() uint64      { return s.hits.Load() }
func (s *resultStore) Misses() uint64    { return s.misses.Load() }
func (s *resultStore) WriteErrs() uint64 { return s.writeErrs.Load() }

//go:build !race

package service_test

const raceEnabled = false

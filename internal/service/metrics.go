package service

import (
	"net/http"
	"strconv"
	"time"

	"hornet/internal/obs"
)

// serveMetrics is the daemon's Prometheus-text metric surface
// (GET /metrics). Everything the JSON stats endpoint reports is backed
// by the same underlying sources — Func instruments read the live
// scheduler/cache/fleet state at scrape time, so the two views can
// never drift — plus engine histograms and HTTP middleware series the
// JSON view does not carry.
type serveMetrics struct {
	reg *obs.Registry

	// Engine telemetry, fed by jobSink.Engine deltas: one observation
	// per autosave chunk of one running job.
	engineCycles    *obs.Counter
	engineCompute   *obs.Histogram
	engineBarrier   *obs.Histogram
	engineShardSync *obs.Histogram
	engineSyncCalls *obs.Counter
}

// newServeMetrics builds the daemon registry over a server's live
// state. It must be called after the scheduler, stores and fleet
// exist; the Func closures hold references, not snapshots.
func newServeMetrics(s *Server) *serveMetrics {
	reg := obs.NewRegistry()
	m := &serveMetrics{reg: reg}

	// Jobs by state (the queue-depth gauge is the channel backlog: jobs
	// accepted but not yet popped by a scheduler worker).
	for _, state := range []string{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled} {
		state := state
		reg.GaugeFunc("hornet_jobs", "Jobs by state.",
			func() float64 { return float64(s.jobs.countByState()[state]) },
			obs.L("state", state))
	}
	reg.GaugeFunc("hornet_queue_depth", "Accepted jobs waiting for a scheduler worker.",
		func() float64 { return float64(len(s.sched.queue)) })

	// Shared CPU-slot budget.
	reg.GaugeFunc("hornet_budget_capacity", "CPU-slot pool capacity shared by all in-flight jobs.",
		func() float64 { return float64(s.sched.pool.Cap()) })
	reg.GaugeFunc("hornet_budget_in_use", "CPU slots currently leased.",
		func() float64 { return float64(s.sched.pool.InUse()) })
	reg.GaugeFunc("hornet_budget_peak", "Peak concurrent CPU-slot leases.",
		func() float64 { return float64(s.sched.pool.Peak()) })

	// Result cache.
	reg.GaugeFunc("hornet_result_cache_entries", "Result documents held in memory.",
		func() float64 { return float64(s.results.Len()) })
	reg.CounterFunc("hornet_result_cache_hits_total", "Result cache hits.", s.results.Hits)
	reg.CounterFunc("hornet_result_cache_misses_total", "Result cache misses.", s.results.Misses)
	reg.CounterFunc("hornet_result_cache_write_errors_total", "Failed disk-tier result writes.", s.results.WriteErrs)
	reg.CounterFunc("hornet_result_cache_evictions_total", "In-memory result entries evicted.", s.results.Evictions)

	// Job lifecycle counters.
	reg.CounterFunc("hornet_jobs_expired_total", "Finished job records removed by the retention TTL.", s.jobsExpired.Load)
	reg.CounterFunc("hornet_jobs_coalesced_total", "Submissions served by attaching to an identical in-flight job.", s.sched.coalesced.Load)
	reg.CounterFunc("hornet_jobs_remote_total", "Jobs completed on the worker fleet.", s.sched.remoteJobs.Load)
	reg.CounterFunc("hornet_jobs_fallback_total", "Fleet jobs handed back and run locally.", s.sched.fallbackJobs.Load)

	// Warmup-snapshot cache.
	reg.CounterFunc("hornet_warmup_cache_hits_total", "Warmups restored from a snapshot.", s.env.warm.Hits)
	reg.CounterFunc("hornet_warmup_cache_misses_total", "Warmups actually simulated.", s.env.warm.Misses)

	// Checkpoint subsystem. The write-error counter reads the same
	// envCounters cell ServerStats reports, so the metric and the JSON
	// stats agree by construction.
	c := s.env.counters
	reg.CounterFunc("hornet_checkpoints_written_total", "Autosaved snapshots written.", c.checkpointsWritten.Load)
	reg.CounterFunc("hornet_checkpoint_write_errors_total", "Failed autosave writes (resume protection degraded).", c.checkpointWriteErr.Load)
	reg.CounterFunc("hornet_runs_resumed_total", "Runs resumed from a snapshot instead of cycle 0.", c.runsResumed.Load)
	reg.CounterFunc("hornet_checkpoint_encode_bytes_total", "Encoded checkpoint snapshot bytes.", c.checkpointBytes.Load)
	reg.GaugeFunc("hornet_checkpoint_encode_seconds_total", "Wall time spent encoding checkpoint snapshots.",
		func() float64 { return float64(c.encodeNS.Load()) / 1e9 })
	reg.GaugeFunc("hornet_checkpoint_save_seconds_total", "Wall time spent writing checkpoint blobs to the store.",
		func() float64 { return float64(c.saveNS.Load()) / 1e9 })

	// Worker fleet.
	reg.GaugeFunc("hornet_fleet_workers_live", "Registered, lease-current workers.",
		func() float64 { return float64(s.fleet.Stats().WorkersLive) })
	reg.CounterFunc("hornet_fleet_workers_joined_total", "Worker registrations.",
		func() uint64 { return s.fleet.Stats().WorkersJoined })
	reg.CounterFunc("hornet_fleet_lease_expiries_total", "Workers declared dead (lease expiry, deregistration or replacement).",
		func() uint64 { return s.fleet.Stats().WorkersLost })
	reg.GaugeFunc("hornet_fleet_capacity", "Aggregate fleet CPU-slot capacity.",
		func() float64 { return float64(s.fleet.Stats().FleetCapacity) })
	reg.GaugeFunc("hornet_fleet_in_use", "Fleet CPU slots currently leased.",
		func() float64 { return float64(s.fleet.Stats().FleetInUse) })
	reg.GaugeFunc("hornet_fleet_tasks_queued", "Tasks waiting for a worker.",
		func() float64 { return float64(s.fleet.Stats().TasksQueued) })
	reg.CounterFunc("hornet_fleet_tasks_dispatched_total", "Task assignments, re-dispatches included.",
		func() uint64 { return s.fleet.Stats().TasksDispatched })
	reg.CounterFunc("hornet_fleet_tasks_requeued_total", "Tasks migrated back to the queue after a worker died.",
		func() uint64 { return s.fleet.Stats().TasksRequeued })
	reg.CounterFunc("hornet_fleet_tasks_completed_total", "Tasks completed by workers.",
		func() uint64 { return s.fleet.Stats().TasksCompleted })
	reg.CounterFunc("hornet_fleet_shard_rollbacks_total", "Shard-group epoch rollbacks.",
		func() uint64 { return s.fleet.Stats().ShardRollbacks })
	reg.CounterFunc("hornet_fleet_checkpoint_bytes_total", "Checkpoint blob bytes accepted from workers.",
		func() uint64 { return s.fleet.Stats().CheckpointBytes })
	reg.CounterFunc("hornet_fleet_tasks_adopted_total", "Restored tasks re-adopted in place by their pre-restart executor.",
		func() uint64 { return s.fleet.Stats().TasksAdopted })

	// Write-ahead job journal (all zero without -journal-dir).
	reg.CounterFunc("hornet_journal_records_total", "Records appended to the job journal.",
		func() uint64 { return s.journalStats().Appended })
	reg.CounterFunc("hornet_journal_compactions_total", "Job-journal compactions.",
		func() uint64 { return s.journalStats().Compactions })
	reg.GaugeFunc("hornet_journal_live_records", "Journal records appended since the last compaction.",
		func() float64 { return float64(s.journalStats().LiveRecords) })
	reg.CounterFunc("hornet_journal_errors_total", "Failed journal appends or compactions (durability degraded).", s.journalErrs.Load)
	reg.CounterFunc("hornet_jobs_restored_total", "Jobs rebuilt from the journal at startup.", s.jobsRestored.Load)

	// Engine instrumentation (per-chunk deltas from running jobs).
	m.engineCycles = reg.Counter("hornet_engine_cycles_total", "Simulated cycles executed across all jobs.")
	m.engineCompute = reg.Histogram("hornet_engine_compute_seconds", "Per-chunk engine compute time (summed across worker threads).", nil)
	m.engineBarrier = reg.Histogram("hornet_engine_barrier_wait_seconds", "Per-chunk barrier wait time (summed across worker threads).", nil)
	m.engineShardSync = reg.Histogram("hornet_engine_shard_sync_seconds", "Per-chunk shard synchronization round-trip time.", nil)
	m.engineSyncCalls = reg.Counter("hornet_engine_shard_syncs_total", "Shard synchronization exchanges.")

	// Stall watchdog and trace-timeline accounting.
	reg.CounterFunc("hornet_job_stalls_total", "Stall episodes: running jobs with no forward progress, or jobs queued unserved, for the watchdog window.", s.jobStalls.Load)
	reg.CounterFunc("hornet_trace_dropped_events_total", "Trace-timeline events dropped by the per-job event cap.",
		func() uint64 {
			total := s.traceDroppedExpired.Load()
			for _, j := range s.jobs.all() {
				total += uint64(j.trace.Dropped())
			}
			return total
		})

	// Hottest NoC links across running jobs, from the latest merged
	// telemetry snapshots. Rendered at scrape time (GaugeSetFunc), so
	// finished jobs' series disappear instead of going stale.
	reg.GaugeSetFunc("hornet_noc_link_occupancy_flits",
		"Buffer occupancy of the busiest NoC links per running job (top "+strconv.Itoa(topLinkSeries)+" by flits queued).",
		func() []obs.GaugeSample {
			var out []obs.GaugeSample
			for _, j := range s.jobs.all() {
				info := j.Info()
				if info.State != StateRunning || info.Telemetry == nil {
					continue
				}
				for _, l := range info.Telemetry.TopLinks(topLinkSeries) {
					out = append(out, obs.GaugeSample{
						Labels: []obs.Label{
							obs.L("job", info.ID),
							obs.L("from", strconv.Itoa(l.From)),
							obs.L("to", strconv.Itoa(l.To)),
						},
						Value: float64(l.Occupancy),
					})
				}
			}
			return out
		})

	return m
}

// topLinkSeries bounds the hottest-links exposition: per running job,
// only the K busiest links become /metrics series — a 16x16 torus has
// over a thousand directed links, and a scrape surface that large per
// job helps nobody.
const topLinkSeries = 8

// observeEngine folds one job's probe-snapshot delta into the engine
// series. Deltas are per autosave chunk; a migrated job's first
// snapshot on the new executor counts whole (the job layer already
// re-based it).
func (m *serveMetrics) observeEngine(d engineDelta) {
	if d.cycles > 0 {
		m.engineCycles.Add(d.cycles)
	}
	if d.computeS > 0 {
		m.engineCompute.Observe(d.computeS)
	}
	if d.barrierS > 0 {
		m.engineBarrier.Observe(d.barrierS)
	}
	if d.syncS > 0 {
		m.engineShardSync.Observe(d.syncS)
	}
	if d.syncCalls > 0 {
		m.engineSyncCalls.Add(d.syncCalls)
	}
}

// observeHTTP records one served request under its route pattern.
func (m *serveMetrics) observeHTTP(route string, code int, dur time.Duration) {
	m.reg.Counter("hornet_http_requests_total", "HTTP requests by route pattern and status code.",
		obs.L("route", route), obs.L("code", strconv.Itoa(code))).Inc()
	m.reg.Histogram("hornet_http_request_seconds", "HTTP request latency by route pattern.", nil,
		obs.L("route", route)).ObserveDuration(dur)
}

// statusWriter captures the response status for the metrics middleware
// while staying transparent to streaming handlers (SSE needs Flush).
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

package service

import (
	"context"
	"testing"
	"time"
)

// The stall watchdog must cover jobs stuck in StateQueued — a job no
// scheduler worker ever picks up has no Started and no lastActive, so
// the episode clock falls back to admission time — and the start
// transition must re-arm the episode.
func TestWatchdogCoversQueuedJobs(t *testing.T) {
	sc := &scenario{kind: KindBatch, name: "queued-forever", hash: "0123456789abcdef", seed: 1}
	created := time.Now().Add(-time.Hour)
	j := newJob("job-queued", SubmitRequest{}, sc, context.Background(), created)

	if !j.checkStall(time.Now(), time.Minute) {
		t.Fatal("queued-forever job did not trip the watchdog")
	}
	if j.checkStall(time.Now(), time.Minute) {
		t.Fatal("one stall episode fired twice")
	}
	if got := j.Info().Stalls; got != 1 {
		t.Fatalf("Stalls = %d, want 1", got)
	}

	// Starting the job ends the queued-stall episode: a freshly running
	// job is not stalled, but a later silent stretch trips a new episode.
	j.start(time.Now())
	if j.checkStall(time.Now(), time.Minute) {
		t.Fatal("freshly started job tripped the watchdog")
	}
	j.mu.Lock()
	j.lastActive = time.Now().Add(-time.Hour)
	j.mu.Unlock()
	if !j.checkStall(time.Now(), time.Minute) {
		t.Fatal("silent running job did not trip a second episode")
	}
	if got := j.Info().Stalls; got != 2 {
		t.Fatalf("Stalls = %d, want 2", got)
	}
}

package service_test

// The distributed-mode e2e suite: a real coordinator (httptest) driven
// through the public HTTP API, with in-process hornet-workers attached.
// It proves the PR 5 golden contract across process boundaries:
//
//   - the same job executed by the local backend and by a worker fleet
//     yields byte-identical Document JSON, and
//   - killing a worker mid-job migrates the job — via its uploaded
//     checkpoints — to a surviving worker, which resumes instead of
//     restarting (resumed_runs > 0) and still reproduces the
//     uninterrupted document byte-for-byte.
//
// The external test package is deliberate: the worker package imports
// service, so these tests can only exist outside the service package —
// which also forces them through the public API, exactly like real
// clients and workers.

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"hornet/internal/config"
	"hornet/internal/service"
	"hornet/internal/service/client"
	"hornet/internal/service/worker"
)

// fleetDaemon is one coordinator under test.
type fleetDaemon struct {
	srv  *service.Server
	http *httptest.Server
	c    *client.Client
}

func startFleetDaemon(t *testing.T, opts service.Options) *fleetDaemon {
	t.Helper()
	srv := service.New(opts)
	hs := httptest.NewServer(srv)
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return &fleetDaemon{srv: srv, http: hs, c: client.New(hs.URL)}
}

// startFleetWorker attaches one in-process worker to the daemon and
// returns a crash-stop kill switch (context cancel: no deregistration,
// no final pushes — exactly a kill -9).
func startFleetWorker(t *testing.T, d *fleetDaemon, id string) (kill func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	w := worker.New(worker.Options{Coordinator: d.http.URL, ID: id, Capacity: 1})
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	t.Cleanup(func() { cancel(); <-done })
	return func() { cancel(); <-done }
}

func waitWorkers(t *testing.T, d *fleetDaemon, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for d.srv.Stats().Fleet.WorkersLive != n {
		if time.Now().After(deadline) {
			t.Fatalf("fleet never reached %d live workers: %+v", n, d.srv.Stats().Fleet)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// fleetConfig is a small checkpoint-friendly scenario: 4x4 mesh,
// cycle-accurate, no fast-forward.
func fleetConfig(analyzed int) *config.Config {
	cfg := config.Default()
	cfg.Topology.Width, cfg.Topology.Height = 4, 4
	cfg.Traffic = []config.TrafficConfig{{Pattern: config.PatternTranspose, InjectionRate: 0.08}}
	cfg.WarmupCycles = 400
	cfg.AnalyzedCycles = analyzed
	return &cfg
}

// runToDone submits and waits, failing the test on a non-done state.
func runToDone(t *testing.T, d *fleetDaemon, req service.SubmitRequest, timeout time.Duration) (service.JobInfo, []byte) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	info, err := d.c.SubmitAndWait(ctx, req)
	if err != nil {
		t.Fatalf("submit+wait: %v", err)
	}
	if info.State != service.StateDone {
		t.Fatalf("job state = %s (%s)", info.State, info.Error)
	}
	_, raw, err := d.c.Result(ctx, info.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	return info, raw
}

// TestFleetByteIdentityAcrossBackends: one daemon with no workers (the
// local backend) and one with a 2-worker fleet must produce
// byte-identical documents for the same config and batch scenarios.
func TestFleetByteIdentityAcrossBackends(t *testing.T) {
	analyzed := 3_000
	if fleetRaceDetector {
		analyzed = 1_500
	}
	mkBatch := func() []service.BatchItem {
		var items []service.BatchItem
		for i := 0; i < 3; i++ {
			cfg := fleetConfig(analyzed + i*500)
			items = append(items, service.BatchItem{Key: fmt.Sprintf("item-%d", i), Config: *cfg})
		}
		return items
	}
	confReq := service.SubmitRequest{Name: "xbackend", Config: fleetConfig(analyzed), Seed: 7}
	batchReq := service.SubmitRequest{Name: "xbackend-batch", Batch: mkBatch(), Seed: 9}

	local := startFleetDaemon(t, service.Options{MaxJobs: 1, Budget: 1})
	localConfInfo, localConf := runToDone(t, local, confReq, 2*time.Minute)
	_, localBatch := runToDone(t, local, batchReq, 4*time.Minute)
	if localConfInfo.Backend != "local" {
		t.Errorf("workerless daemon ran job on backend %q, want local", localConfInfo.Backend)
	}

	fleet := startFleetDaemon(t, service.Options{MaxJobs: 2, Budget: 2, WorkerTTL: 30 * time.Second})
	startFleetWorker(t, fleet, "w1")
	startFleetWorker(t, fleet, "w2")
	waitWorkers(t, fleet, 2)

	fleetConfInfo, fleetConf := runToDone(t, fleet, confReq, 2*time.Minute)
	_, fleetBatch := runToDone(t, fleet, batchReq, 4*time.Minute)
	if fleetConfInfo.Backend != "fleet" {
		t.Errorf("fleet daemon ran job on backend %q, want fleet", fleetConfInfo.Backend)
	}
	if !bytes.Equal(localConf, fleetConf) {
		t.Errorf("config documents differ across backends:\nlocal: %s\nfleet: %s", localConf, fleetConf)
	}
	if !bytes.Equal(localBatch, fleetBatch) {
		t.Errorf("batch documents differ across backends:\nlocal: %s\nfleet: %s", localBatch, fleetBatch)
	}

	st := fleet.srv.Stats()
	if st.RemoteJobs < 2 {
		t.Errorf("stats.RemoteJobs = %d, want >= 2", st.RemoteJobs)
	}
	if st.Fleet.FleetPeak > st.Fleet.FleetCapacity {
		t.Errorf("fleet peak %d exceeds capacity %d", st.Fleet.FleetPeak, st.Fleet.FleetCapacity)
	}
	if st.Fleet.TasksCompleted < 2 {
		t.Errorf("stats.Fleet.TasksCompleted = %d, want >= 2", st.Fleet.TasksCompleted)
	}

	// A resubmission is served byte-identically from the coordinator's
	// cache — remote execution feeds the same content-addressed store.
	again, raw := runToDone(t, fleet, confReq, time.Minute)
	if !again.CacheHit {
		t.Errorf("resubmission after fleet run missed the cache: %+v", again)
	}
	if !bytes.Equal(raw, localConf) {
		t.Error("cached fleet document differs from local document")
	}
}

// TestFleetMigrationOnWorkerDeath is the kill-drill: two workers, one
// job; the worker executing it is crash-stopped mid-run, and the job
// must migrate to the survivor via its uploaded checkpoints, resume
// (resumed_runs > 0), and still produce the uninterrupted document
// byte-for-byte.
func TestFleetMigrationOnWorkerDeath(t *testing.T) {
	analyzed, every, ttl := 60_000, 1_000, 2*time.Second
	if fleetRaceDetector {
		analyzed, every, ttl = 25_000, 500, 4*time.Second
	}
	req := service.SubmitRequest{Name: "migrate-me", Config: fleetConfig(analyzed), Seed: 11}

	d := startFleetDaemon(t, service.Options{
		MaxJobs: 1, Budget: 1,
		CheckpointEvery: uint64(every),
		WorkerTTL:       ttl,
	})
	kills := map[string]func(){
		"w1": startFleetWorker(t, d, "w1"),
		"w2": startFleetWorker(t, d, "w2"),
	}
	waitWorkers(t, d, 2)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	info, err := d.c.Submit(ctx, req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	// Wait until the assigned worker has made checkpointed progress,
	// then find which worker holds the task and crash-stop it.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		ji, err := d.c.Job(ctx, info.ID)
		if err != nil {
			t.Fatalf("job poll: %v", err)
		}
		if ji.Terminal() {
			t.Fatalf("job finished before the kill could happen; state %+v (grow the analyzed window)", ji)
		}
		if ji.Checkpoints >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint observed; job %+v", ji)
		}
		time.Sleep(5 * time.Millisecond)
	}
	workers, err := d.c.Workers(ctx)
	if err != nil {
		t.Fatalf("workers: %v", err)
	}
	victim := ""
	for _, wi := range workers {
		if len(wi.Tasks) > 0 {
			victim = wi.ID
		}
	}
	if victim == "" {
		t.Fatal("no worker holds the task despite checkpoint progress")
	}
	t.Logf("killing %s mid-job", victim)
	kills[victim]()

	final, err := d.c.Wait(ctx, info.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.State != service.StateDone {
		t.Fatalf("migrated job state = %s (%s)", final.State, final.Error)
	}
	if final.ResumedRuns < 1 {
		t.Errorf("migrated job reports %d resumed runs, want >= 1", final.ResumedRuns)
	}
	_, migrated, err := d.c.Result(ctx, info.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}

	st := d.srv.Stats()
	if st.Fleet.TasksRequeued < 1 {
		t.Errorf("stats.Fleet.TasksRequeued = %d, want >= 1", st.Fleet.TasksRequeued)
	}
	if st.Fleet.WorkersLost < 1 {
		t.Errorf("stats.Fleet.WorkersLost = %d, want >= 1", st.Fleet.WorkersLost)
	}

	// Reference: the same scenario on a workerless daemon with the same
	// checkpoint cadence, never interrupted.
	ref := startFleetDaemon(t, service.Options{MaxJobs: 1, Budget: 1})
	_, refBytes := runToDone(t, ref, req, 5*time.Minute)
	if !bytes.Equal(migrated, refBytes) {
		t.Errorf("migrated document differs from uninterrupted local run:\nmigrated: %s\nref:      %s",
			migrated, refBytes)
	}
}

// TestFleetFallbackToLocal: when the only worker dies and no survivor
// exists, the fleet hands the job back and the local backend finishes
// it — resuming from the blobs the dead worker uploaded.
func TestFleetFallbackToLocal(t *testing.T) {
	analyzed, every, ttl := 40_000, 500, 2*time.Second
	if fleetRaceDetector {
		analyzed, every, ttl = 15_000, 250, 4*time.Second
	}
	req := service.SubmitRequest{Name: "fallback", Config: fleetConfig(analyzed), Seed: 13}

	d := startFleetDaemon(t, service.Options{
		MaxJobs: 1, Budget: 1,
		CheckpointEvery: uint64(every),
		WorkerTTL:       ttl,
	})
	kill := startFleetWorker(t, d, "solo")
	waitWorkers(t, d, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	info, err := d.c.Submit(ctx, req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		ji, err := d.c.Job(ctx, info.ID)
		if err != nil {
			t.Fatalf("job poll: %v", err)
		}
		if ji.Terminal() {
			t.Fatalf("job finished before the kill; state %+v", ji)
		}
		if ji.Checkpoints >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint observed; job %+v", ji)
		}
		time.Sleep(5 * time.Millisecond)
	}
	kill()

	final, err := d.c.Wait(ctx, info.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.State != service.StateDone {
		t.Fatalf("fallback job state = %s (%s)", final.State, final.Error)
	}
	if final.Backend != "local" {
		t.Errorf("fallback job backend = %q, want local", final.Backend)
	}
	if final.ResumedRuns < 1 {
		t.Errorf("fallback job resumed %d runs, want >= 1 (checkpoint blobs should have seeded the local store)", final.ResumedRuns)
	}
	if st := d.srv.Stats(); st.FallbackJobs != 1 {
		t.Errorf("stats.FallbackJobs = %d, want 1", st.FallbackJobs)
	}

	_, got, err := d.c.Result(ctx, info.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	ref := startFleetDaemon(t, service.Options{MaxJobs: 1, Budget: 1})
	_, refBytes := runToDone(t, ref, req, 5*time.Minute)
	if !bytes.Equal(got, refBytes) {
		t.Errorf("fallback document differs from uninterrupted run:\ngot: %s\nref: %s", got, refBytes)
	}
}

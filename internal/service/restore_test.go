package service

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// These tests drive the durable coordinator in process: a journaled
// daemon dies (Close tears the journal down BEFORE the job drain, so
// the drain's cancellations are never journaled — exactly the on-disk
// state a SIGKILL leaves), a second daemon replays the same directory,
// and the restored jobs must finish as if nothing happened. The e2e
// suite repeats the drill over real processes and a live worker fleet.

// submitDurable admits a request exactly as handleSubmit does on a
// journaled server: the state hook is armed before the job becomes
// visible, and the submit record lands before the scheduler can
// transition (and journal) anything.
func submitDurable(t *testing.T, srv *Server, req SubmitRequest) *job {
	t.Helper()
	sc, apiErr := buildScenario(req)
	if apiErr != nil {
		t.Fatalf("buildScenario: %v", apiErr)
	}
	j := newJob(srv.jobs.nextID(), req, sc, srv.sched.baseCtx, time.Now())
	if srv.jrnl != nil {
		j.onState = srv.journalState
	}
	srv.jobs.add(j)
	srv.journalSubmit(j)
	if apiErr := srv.sched.submit(j); apiErr != nil {
		t.Fatalf("submit: %v", apiErr)
	}
	return j
}

// durableOpts is the shared daemon shape: tiny worker TTL so the
// restored-job fleet-rejoin grace (2x TTL with no fleet to wait for)
// stays in the milliseconds.
func durableOpts(journalDir, ckptDir, cacheDir string) Options {
	return Options{
		MaxJobs:         1,
		Budget:          1,
		JournalDir:      journalDir,
		CheckpointDir:   ckptDir,
		CacheDir:        cacheDir,
		CheckpointEvery: 1_000,
		WorkerTTL:       150 * time.Millisecond,
	}
}

// TestJournalRestartResumesInFlightJob is the in-process crash drill:
// daemon A journals a submission, autosaves at least one checkpoint and
// dies mid-run; daemon B on the same journal directory must rebuild the
// job under its original ID, re-enqueue it, resume from the snapshot
// rather than cycle 0, and produce bytes identical to a never-
// interrupted run.
func TestJournalRestartResumesInFlightJob(t *testing.T) {
	analyzed := 60_000
	if raceDetector {
		analyzed = 20_000
	}
	jdir, ckptDir := t.TempDir(), t.TempDir()
	req := SubmitRequest{Name: "durable-resume", Config: resumeConfig(analyzed), Seed: 17}

	srvA, err := NewDurable(durableOpts(jdir, ckptDir, ""))
	if err != nil {
		t.Fatal(err)
	}
	jA := submitDurable(t, srvA, req)
	id := jA.Info().ID
	deadline := time.Now().Add(60 * time.Second)
	for jA.Info().Checkpoints < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint written; job %+v", jA.Info())
		}
		if jA.Info().Terminal() {
			t.Fatalf("job finished before a checkpoint could be observed; %+v", jA.Info())
		}
		time.Sleep(2 * time.Millisecond)
	}
	srvA.Close() // journal is closed before the drain: the log still says "running"

	srvB, err := NewDurable(durableOpts(jdir, ckptDir, ""))
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()
	if st := srvB.Stats(); st.JobsRestored != 1 {
		t.Fatalf("stats.JobsRestored = %d, want 1", st.JobsRestored)
	}
	jB, ok := srvB.jobs.get(id)
	if !ok {
		t.Fatalf("restarted daemon has no job %s", id)
	}
	infoB := waitDone(t, jB, 120*time.Second)
	if infoB.State != StateDone {
		t.Fatalf("restored job state = %s (%s)", infoB.State, infoB.Error)
	}
	if infoB.ResumedRuns < 1 {
		t.Errorf("restored job reports %d resumed runs, want >= 1", infoB.ResumedRuns)
	}
	if st := srvB.Stats(); !st.Journal.Enabled || st.Journal.Replayed < 1 {
		t.Errorf("journal stats after replay: %+v", st.Journal)
	}
	restoredBytes, ok := jB.Result()
	if !ok {
		t.Fatal("restored job has no result")
	}

	// Reference: same scenario, same autosave cadence, never interrupted.
	srvC := New(Options{MaxJobs: 1, Budget: 1, CheckpointDir: t.TempDir(), CheckpointEvery: 1_000})
	defer srvC.Close()
	jC := submitDirect(t, srvC, req)
	infoC := waitDone(t, jC, 120*time.Second)
	if infoC.State != StateDone {
		t.Fatalf("reference job state = %s (%s)", infoC.State, infoC.Error)
	}
	refBytes, _ := jC.Result()
	if !bytes.Equal(restoredBytes, refBytes) {
		t.Errorf("restored document differs from uninterrupted run:\nrestored: %s\nref:      %s",
			restoredBytes, refBytes)
	}

	// Replay advanced the ID floor: fresh submissions never collide with
	// replayed jobs.
	if next := srvB.jobs.nextID(); next <= id {
		t.Errorf("post-replay ID %s does not follow replayed %s", next, id)
	}
}

// TestJournalRestartRestoresTerminalJob: a done job's record — state,
// progress counters, result document — survives a restart wholesale via
// the journal plus the on-disk result cache, with no re-execution.
func TestJournalRestartRestoresTerminalJob(t *testing.T) {
	jdir, cacheDir := t.TempDir(), t.TempDir()
	req := SubmitRequest{Name: "durable-done", Config: resumeConfig(1_000), Seed: 3}

	srvA, err := NewDurable(durableOpts(jdir, "", cacheDir))
	if err != nil {
		t.Fatal(err)
	}
	jA := submitDurable(t, srvA, req)
	infoA := waitDone(t, jA, 120*time.Second)
	if infoA.State != StateDone {
		t.Fatalf("job state = %s (%s)", infoA.State, infoA.Error)
	}
	doneBytes, _ := jA.Result()
	srvA.Close()

	srvB, err := NewDurable(durableOpts(jdir, "", cacheDir))
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()
	jB, ok := srvB.jobs.get(infoA.ID)
	if !ok {
		t.Fatalf("restarted daemon has no job %s", infoA.ID)
	}
	infoB := jB.Info()
	if infoB.State != StateDone {
		t.Fatalf("restored job state = %s, want %s (no re-execution)", infoB.State, StateDone)
	}
	if infoB.RunsDone != infoA.RunsDone || !infoB.Finished.Equal(infoA.Finished) {
		t.Errorf("restored info drifted: %+v vs %+v", infoB, infoA)
	}
	restoredBytes, ok := jB.Result()
	if !ok {
		t.Fatal("restored done job has no result")
	}
	if !bytes.Equal(restoredBytes, doneBytes) {
		t.Error("restored result is not byte-identical to the original")
	}
}

// TestJournalCompactionRoundTrip: compaction rewrites the log as the
// minimal live-state stream, and a daemon replaying the compacted log
// reconstructs every record exactly as the uncompacted one would have.
func TestJournalCompactionRoundTrip(t *testing.T) {
	jdir, cacheDir := t.TempDir(), t.TempDir()
	srvA, err := NewDurable(durableOpts(jdir, "", cacheDir))
	if err != nil {
		t.Fatal(err)
	}

	type doneJob struct {
		id     string
		result []byte
	}
	var jobs []doneJob
	for seed := uint64(1); seed <= 3; seed++ {
		req := SubmitRequest{Name: fmt.Sprintf("compact-%d", seed),
			Config: resumeConfig(1_000), Seed: seed}
		j := submitDurable(t, srvA, req)
		info := waitDone(t, j, 120*time.Second)
		if info.State != StateDone {
			t.Fatalf("seed %d: state = %s (%s)", seed, info.State, info.Error)
		}
		b, _ := j.Result()
		jobs = append(jobs, doneJob{info.ID, b})
	}
	if err := srvA.jrnl.Compact(srvA.compactRecords); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if _, compactions, _, _ := srvA.jrnl.Stats(); compactions != 1 {
		t.Fatalf("compactions = %d, want 1", compactions)
	}
	srvA.Close()

	srvB, err := NewDurable(durableOpts(jdir, "", cacheDir))
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()
	st := srvB.Stats()
	// Compacted stream: one submit + one result record per done job.
	if st.Journal.Replayed != 2*len(jobs) {
		t.Errorf("replayed %d records from the compacted log, want %d", st.Journal.Replayed, 2*len(jobs))
	}
	for _, dj := range jobs {
		j, ok := srvB.jobs.get(dj.id)
		if !ok {
			t.Fatalf("compacted replay lost job %s", dj.id)
		}
		if got := j.Info().State; got != StateDone {
			t.Errorf("job %s restored as %s, want %s", dj.id, got, StateDone)
		}
		if b, ok := j.Result(); !ok || !bytes.Equal(b, dj.result) {
			t.Errorf("job %s result drifted across compaction+replay", dj.id)
		}
	}
}

package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"hornet/internal/obs"
	"hornet/internal/service/backend"
	"hornet/internal/sweep"
)

// executeScenario runs one compiled scenario against an execution
// environment and returns the canonical document bytes plus the number
// of per-run errors recorded inside the document. It is the single
// execution path shared by the scheduler's in-process backend and the
// standalone Execute entry point hornet-worker uses — sharing it is
// what makes a document byte-identical no matter which process produced
// it. A panic anywhere in scenario execution (the experiments package
// treats bad runs as programming errors and panics) becomes an error,
// never a dead process.
func executeScenario(ctx context.Context, sc *scenario, env *execEnv, pool *sweep.Budget, sink backend.Sink) (b []byte, runErrs int, err error) {
	defer func() {
		if p := recover(); p != nil {
			b, runErrs, err = nil, 0, fmt.Errorf("job panicked: %v", p)
		}
	}()
	switch sc.kind {
	case KindFigure:
		o := sc.figOpts
		o.Context = ctx
		o.Pool = pool
		o.Progress = sink.Progress
		// Figures with shared warmup prefixes draw on the env-wide
		// warmup snapshot cache (reuse cannot change output bytes).
		o.Warmups = env.warm
		if env.probe != nil {
			// Figures bypass the chunked-run path, so the probe attaches
			// through the experiment options and snapshots surface at
			// run-completion boundaries (plus once at the end) — the same
			// engine series sweep jobs feed, now for figure jobs too.
			o.Probe = env.probe
			progress := o.Progress
			o.Progress = func(done, total int, key string) {
				progress(done, total, key)
				backend.SinkEngine(sink, env.probe.Snapshot())
			}
		}
		_, doc, runErr := sc.fig.Document(o)
		if env.probe != nil {
			backend.SinkEngine(sink, env.probe.Snapshot())
		}
		if runErr != nil {
			return nil, 0, runErr // cancelled mid-figure
		}
		for _, r := range doc.Runs {
			if r.Err != "" {
				runErrs++
			}
		}
		b, err = encodeDocument(doc)
		return b, runErrs, err
	default: // KindConfig, KindBatch, KindMips
		items := make([]sweep.Item, len(sc.runs))
		for i, spec := range sc.runs {
			items[i] = sweep.Item{Key: spec.key, Weight: spec.weight, Seed: spec.seed,
				Run: env.runFor(sc, sink, spec)}
		}
		cfg := sweep.Config{
			// In-flight runs within the job: bounded by the shared pool
			// anyway, so let the sweep try to dispatch as wide as the pool.
			Workers: pool.Cap(),
			Pool:    pool,
			Seed:    sc.seed,
			OnProgress: func(done, total int, r sweep.Result) {
				sink.Progress(done, total, r.Key)
			},
		}
		results := sweep.Run(ctx, items, cfg)
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		for _, r := range results {
			if r.Err != nil {
				runErrs++
			}
		}
		doc := sweep.NewDocument(sc.name, sc.hash, sc.seed, results)
		b, err = encodeDocument(doc)
		return b, runErrs, err
	}
}

// ExecOptions configures standalone execution of one submit request —
// the path hornet-worker uses to run a task its coordinator dispatched.
type ExecOptions struct {
	// Workers is the CPU-slot budget of this execution; 0 means
	// GOMAXPROCS.
	Workers int
	// Checkpoints, if non-nil, enables autosave/resume: runs restore
	// from the store's blobs and save back into it every
	// CheckpointEvery cycles. Workers pass an HTTP store that uploads
	// to the coordinator.
	Checkpoints CheckpointStore
	// CheckpointEvery is the autosave period in simulated cycles;
	// 0 means 100000. Migrated runs only re-align their chunk cadence —
	// and therefore reproduce an uninterrupted run byte-for-byte — when
	// every executor of a scenario uses the same value, so workers take
	// it from their coordinator, never from local configuration.
	CheckpointEvery uint64

	// Warmups, if non-nil, is a warmup snapshot cache shared across
	// calls — a worker passes one per process so back-to-back tasks
	// with the same warmup prefix fork from one snapshot, exactly like
	// jobs sharing the daemon's execution environment. Nil builds a
	// fresh per-call cache.
	Warmups *sweep.SnapshotCache

	// Progress/Resumed/Checkpoint observe the execution; any may be nil.
	OnProgress   func(done, total int, key string)
	OnResumed    func(key string, cycle uint64)
	OnCheckpoint func(key string, cycle uint64)
	// OnEngine, if non-nil, attaches an engine probe to the execution
	// and receives cumulative probe snapshots at every autosave-chunk
	// boundary (cycles/sec, per-partition compute vs barrier time, shard
	// sync latency). Leaving it nil keeps the engine hot path
	// instrumentation-free.
	OnEngine func(s obs.ProbeSnapshot)
	// OnTelemetry, if non-nil, enables machine telemetry on config/mips
	// runs: the engine samples per-tile flit counters and per-link
	// buffer occupancy at sync points, and the freshest sample is
	// forwarded every TelemetryEvery of wall time (plus once after each
	// run). Leaving it nil keeps the engine's nil-sampler fast path.
	OnTelemetry func(s obs.TelemetrySnapshot)
	// TelemetryEvery is the wall-clock forwarding period of OnTelemetry;
	// 0 means 500ms.
	TelemetryEvery time.Duration
}

// ExecResult is the outcome of a standalone Execute.
type ExecResult struct {
	// Doc is the canonical result document (byte-identical to what any
	// other executor of the same request produces).
	Doc []byte
	// RunErrs is the number of per-run errors recorded in the document.
	RunErrs int
	// Name/Hash/Seed are the scenario's content address.
	Name string
	Hash string
	Seed uint64
}

// ErrInvalidRequest wraps a request that failed scenario validation —
// the remote-execution analogue of the API's 4xx responses.
var ErrInvalidRequest = errors.New("service: invalid request")

// Execute validates req and runs it to completion in this process. It
// is the worker-side twin of the daemon's job execution: same
// validation, same execution environment, same document encoding, so a
// coordinator can hand the request to any worker and cache the returned
// bytes under the scenario's content address.
func Execute(ctx context.Context, req SubmitRequest, opts ExecOptions) (*ExecResult, error) {
	sc, apiErr := buildScenario(req)
	if apiErr != nil {
		return nil, fmt.Errorf("%w: %s", ErrInvalidRequest, apiErr.Message)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	every := opts.CheckpointEvery
	if every == 0 {
		every = 100_000
	}
	warm := opts.Warmups
	if warm == nil {
		warm = sweep.NewSnapshotCache("")
		warm.SetMaxEntries(warmCacheEntries)
	}
	env := &execEnv{
		warm:      warm,
		store:     opts.Checkpoints,
		ckptEvery: every,
		counters:  &envCounters{},
	}
	if opts.OnEngine != nil {
		env.probe = obs.NewSimProbe()
	}
	pool := sweep.NewBudget(workers)
	sink := callbackSink{opts}
	if opts.OnTelemetry != nil {
		env.telemetry = func(s obs.TelemetrySnapshot) { backend.SinkTelemetry(sink, s) }
		env.telEvery = opts.TelemetryEvery
	}
	doc, runErrs, err := executeScenario(ctx, sc, env, pool, sink)
	if err != nil {
		return nil, err
	}
	return &ExecResult{Doc: doc, RunErrs: runErrs, Name: sc.name, Hash: sc.hash, Seed: sc.seed}, nil
}

// callbackSink adapts ExecOptions callbacks to the backend.Sink the
// execution layer drives.
type callbackSink struct{ o ExecOptions }

func (c callbackSink) Progress(done, total int, key string) {
	if c.o.OnProgress != nil {
		c.o.OnProgress(done, total, key)
	}
}

func (c callbackSink) Resumed(key string, cycle uint64) {
	if c.o.OnResumed != nil {
		c.o.OnResumed(key, cycle)
	}
}

func (c callbackSink) Checkpoint(key string, cycle uint64) {
	if c.o.OnCheckpoint != nil {
		c.o.OnCheckpoint(key, cycle)
	}
}

// Engine implements backend.EngineSink so probe snapshots emitted at
// chunk boundaries reach the OnEngine callback.
func (c callbackSink) Engine(s obs.ProbeSnapshot) {
	if c.o.OnEngine != nil {
		c.o.OnEngine(s)
	}
}

// Telemetry implements backend.TelemetrySink so machine-telemetry
// samples emitted by the wall-clock pump reach the OnTelemetry callback.
func (c callbackSink) Telemetry(s obs.TelemetrySnapshot) {
	if c.o.OnTelemetry != nil {
		c.o.OnTelemetry(s)
	}
}

package backend

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hornet/internal/obs"
	"hornet/internal/sweep"
)

// BlobStore is the optional persistence hook for uploaded checkpoint
// blobs: when the coordinator has a checkpoint directory, migration
// snapshots also land there (under the same content address the local
// backend reads), so a job survives both a worker death *and* a
// coordinator restart, and a local-fallback execution resumes from the
// fleet's last uploaded state. service.CheckpointStore satisfies it.
type BlobStore interface {
	Save(key string, blob []byte, cycle uint64) error
	Remove(key string)
}

// FleetOptions configures a Fleet.
type FleetOptions struct {
	// LeaseTTL is how long a silent worker stays in the fleet; 0 means
	// 15s. Workers heartbeat at TTL/3.
	LeaseTTL time.Duration
	// CheckpointEvery is the autosave cadence (simulated cycles) pushed
	// to every worker; 0 means 100000.
	CheckpointEvery uint64
	// Persist, if non-nil, additionally stores uploaded checkpoint blobs
	// under their content key.
	Persist BlobStore
	// Logger receives fleet lifecycle logs (registration, lease expiry,
	// task requeue, shard rollback); nil discards them.
	Logger *slog.Logger
}

// reattachClaim is one restored task the coordinator expects its
// pre-crash worker to still be executing. Journal replay seeds the
// table (ExpectReattach); a re-registering worker claims entries by
// task ID, reserving slots until the restored job's Execute binds the
// claim; the janitor expires entries no one reclaimed.
type reattachClaim struct {
	jobID    string
	weight   int
	worker   string // claiming worker ID; "" until claimed
	cycle    uint64 // worker-reported newest checkpoint cycle
	deadline time.Time
}

// Fleet is the remote execution backend: a registry of hornet-worker
// processes, a FIFO queue of dispatched tasks, and the migration
// machinery that moves a dead worker's task (with its uploaded
// checkpoints) to a survivor. It implements Backend; the scheduler
// calls Execute, the HTTP layer calls the worker-protocol methods.
type Fleet struct {
	opts FleetOptions
	log  *slog.Logger
	// agg is the fleet-wide CPU budget: capacity tracks the sum of live
	// workers' capacities (Resize on join/leave), and every assignment
	// holds a lease for its slot grant, so Peak proves the coordinator
	// never oversubscribed the fleet.
	agg *sweep.Budget

	mu      sync.Mutex
	workers map[string]*workerState
	queue   []*pending // unassigned tasks, FIFO; migrated tasks go first
	expect  map[string]*reattachClaim
	journal Journal // nil: no durable coordinator
	seq     int
	nextID  int
	notify  chan struct{} // replaced+closed whenever work may be available
	closed  bool

	workersJoined   uint64
	workersLost     uint64
	tasksDispatched uint64
	tasksRequeued   uint64
	tasksCompleted  uint64
	tasksAdopted    uint64
	leaseMisses     uint64
	shardRollbacks  uint64
	checkpointBytes uint64

	closeOnce   sync.Once
	janitorStop chan struct{}
	janitorDone chan struct{}
}

type workerState struct {
	id       string
	capacity int
	free     int
	lastSeen time.Time
	tasks    map[string]*pending
	// reserved holds slots set aside for claimed reattach tasks whose
	// restored job has not reached Execute yet (task ID → slots). The
	// slots are already subtracted from free.
	reserved map[string]int
}

// pending is one task in flight through the fleet.
type pending struct {
	task *Task
	sink Sink
	// note receives lifecycle annotations (dispatch/requeue/rollback)
	// for the job's trace timeline. For shard members it is the ROOT
	// member's sink, so group-level events reach the job even when a
	// non-root member triggers them; progress still flows through sink
	// (discarded for non-root members).
	note Sink

	// shard/group are set on space-parallel member tasks: shard is the
	// member's tile-span index and group the rendezvous shared by all
	// members of the original task.
	shard int
	group *ShardGroup

	worker    string // assigned worker ID; "" while queued
	grant     int    // slots granted on the assigned worker
	lease     *sweep.Lease
	cancelled bool
	// holdUntil keeps a restored task out of ordinary dispatch while
	// the coordinator waits for its pre-crash worker to re-claim it;
	// past the deadline the task dispatches normally from its blobs.
	holdUntil time.Time

	done    chan struct{} // closed on terminal transition
	doc     []byte
	runErrs int
	err     error
}

// discardSink drops progress from non-root shard members: every member
// reports the same run, so only the root's events reach the job.
type discardSink struct{}

func (discardSink) Progress(int, int, string) {}
func (discardSink) Resumed(string, uint64)    {}
func (discardSink) Checkpoint(string, uint64) {}

// shardAttrs labels a log record with a member task's identity.
func shardAttrs(p *pending) []any {
	attrs := []any{obs.Task(p.task.ID), slog.String("name", p.task.Name)}
	if p.group != nil {
		attrs = append(attrs, obs.Shard(p.shard))
	}
	return attrs
}

// NewFleet builds an empty fleet and starts its lease janitor.
func NewFleet(opts FleetOptions) *Fleet {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 15 * time.Second
	}
	if opts.CheckpointEvery == 0 {
		opts.CheckpointEvery = 100_000
	}
	log := opts.Logger
	if log == nil {
		log = obs.Nop()
	}
	f := &Fleet{
		opts:        opts,
		log:         log,
		agg:         sweep.NewBudget(1), // resized to 0 below; NewBudget clamps
		workers:     map[string]*workerState{},
		expect:      map[string]*reattachClaim{},
		notify:      make(chan struct{}),
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	f.agg.Resize(0)
	go f.janitor()
	return f
}

// Close fails every in-flight task and stops the janitor. Idempotent:
// shutdown paths race (signal handler vs deferred cleanup), and a
// second Close must be a no-op, not a panic.
func (f *Fleet) Close() {
	f.closeOnce.Do(func() { close(f.janitorStop) })
	<-f.janitorDone
	f.mu.Lock()
	f.closed = true
	var terminal []*pending
	for _, p := range f.queue {
		terminal = append(terminal, p)
	}
	f.queue = nil
	for _, w := range f.workers {
		for _, p := range w.tasks {
			terminal = append(terminal, p)
		}
		w.tasks = map[string]*pending{}
	}
	for _, p := range terminal {
		f.finishLocked(p, nil, 0, ErrNoWorkers)
	}
	// Drop the registry too: workers attached to a closed fleet must get
	// worker_unknown from polls/heartbeats (and then shutting_down from
	// re-registration) rather than parking in successful empty polls
	// against a dead coordinator forever.
	f.workers = map[string]*workerState{}
	f.expect = map[string]*reattachClaim{}
	f.agg.Resize(0)
	f.wakeLocked()
	f.mu.Unlock()
}

// Name implements Backend.
func (f *Fleet) Name() string { return "fleet" }

// Live reports the number of registered (non-expired) workers.
func (f *Fleet) Live() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.workers)
}

// SetJournal attaches the durable-coordinator hook. The server wires
// it right after construction, before any worker traffic.
func (f *Fleet) SetJournal(j Journal) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.journal = j
}

// journalHook snapshots the hook under the lock for use outside it.
func (f *Fleet) journalHook() Journal {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.journal
}

// SetSeqFloor advances the task-ID counter past n, so IDs minted after
// a journal replay never collide with the replayed ones.
func (f *Fleet) SetSeqFloor(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n > f.seq {
		f.seq = n
	}
}

// ExpectReattach seeds the reattach table with a task the journal says
// was executing when the coordinator died: the worker that still runs
// it may re-claim the ID when it re-registers. Called during restore,
// before the HTTP surface is up. weight is the task's slot request.
func (f *Fleet) ExpectReattach(taskID, jobID string, weight int) {
	if weight < 1 {
		weight = 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.expect[taskID] = &reattachClaim{
		jobID:    jobID,
		weight:   weight,
		deadline: time.Now().Add(4 * f.opts.LeaseTTL),
	}
}

// AwaitCapacity blocks until the fleet's live total capacity reaches
// min slots (true) or the bound of two lease TTLs passes / ctx ends
// (false). Restored jobs use it to give the pre-crash fleet a rejoin
// window — workers heartbeat at TTL/3, so a surviving fleet reappears
// well within the bound — instead of instantly falling back to local
// execution on the restarted coordinator's empty registry.
func (f *Fleet) AwaitCapacity(ctx context.Context, min int) bool {
	if min < 1 {
		min = 1
	}
	deadline := time.Now().Add(2 * f.opts.LeaseTTL)
	for {
		f.mu.Lock()
		if f.closed {
			f.mu.Unlock()
			return false
		}
		total := 0
		for _, w := range f.workers {
			total += w.capacity
		}
		ch := f.notify
		f.mu.Unlock()
		if total >= min {
			return true
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return false
		}
		timer := time.NewTimer(remaining)
		select {
		case <-ch:
			timer.Stop()
		case <-timer.C:
			return false
		case <-ctx.Done():
			timer.Stop()
			return false
		}
	}
}

// Execute implements Backend: queue the task, wait for a worker to run
// it (surviving migrations), and return the pushed result. It fails
// fast with ErrNoWorkers when the fleet is empty — the scheduler then
// runs the task on the local backend instead.
func (f *Fleet) Execute(ctx context.Context, t *Task, sink Sink) ([]byte, int, error) {
	if t.Shards >= 2 {
		return f.executeSharded(ctx, t, sink)
	}
	f.mu.Lock()
	if f.closed || len(f.workers) == 0 {
		f.mu.Unlock()
		return nil, 0, ErrNoWorkers
	}
	if t.Checkpoints == nil {
		t.Checkpoints = map[string]Blob{}
	}
	p := &pending{task: t, sink: sink, note: sink, done: make(chan struct{})}
	var adoptedBy string
	var adoptedCycle uint64
	if t.ReattachID != "" {
		// A journal-restored task keeps its pre-crash identity. If the
		// worker that was executing it has already re-claimed the ID,
		// bind the execution in place — no dispatch, the run never
		// stopped; otherwise queue it but hold it out of ordinary
		// dispatch for one lease TTL so the claim can still arrive.
		t.ID = t.ReattachID
		claim := f.expect[t.ID]
		delete(f.expect, t.ID)
		if claim != nil && claim.worker != "" {
			if w, live := f.workers[claim.worker]; live {
				if slots, held := w.reserved[t.ID]; held {
					delete(w.reserved, t.ID)
					w.tasks[t.ID] = p
					p.worker, p.grant = w.id, slots
					if p.lease = f.agg.TryLease(slots); p.lease == nil {
						f.leaseMisses++
					}
					adoptedBy, adoptedCycle = w.id, claim.cycle
					f.tasksAdopted++
				}
			}
		}
		if adoptedBy == "" {
			p.holdUntil = time.Now().Add(f.opts.LeaseTTL)
		}
	} else {
		f.seq++
		t.ID = fmt.Sprintf("task-%06d", f.seq)
	}
	if adoptedBy == "" {
		f.queue = append(f.queue, p)
		f.wakeLocked()
	}
	f.mu.Unlock()
	if adoptedBy != "" {
		f.log.Info("task re-adopted by pre-restart executor",
			append(shardAttrs(p), obs.Worker(adoptedBy), slog.Uint64("cycle", adoptedCycle))...)
		SinkNote(p.note, "reattached", map[string]string{"worker": adoptedBy, "task": t.ID})
		// The run is continuing at the worker's checkpointed frontier
		// across a coordinator restart: that is a resumed run in every
		// sense the job's resumed_runs counter cares about.
		p.sink.Resumed(t.ID, adoptedCycle)
		if j := f.journalHook(); j != nil {
			j.Assigned(t.JobID, t.ID, p.grant)
		}
	}

	select {
	case <-p.done:
	case <-ctx.Done():
		f.abort(p)
		<-p.done
	}
	if p.err == nil && ctx.Err() != nil {
		return nil, 0, ctx.Err()
	}
	return p.doc, p.runErrs, p.err
}

// shardMemberIndex parses the member index out of a per-shard
// checkpoint key's trailing "-s<digits>" suffix ("<name>-<hash>-<run>-s1"
// → 1); ok=false for keys without one (unsharded checkpoints).
func shardMemberIndex(key string) (int, bool) {
	i := strings.LastIndex(key, "-s")
	if i < 0 {
		return 0, false
	}
	n, err := strconv.Atoi(key[i+2:])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// errShardGroupDone is the Cancel reason after a sharded task's root
// result arrived: any straggler member (e.g. a ghost re-dispatched
// after a post-gather death) fails out of its barriers instead of
// waiting for siblings that already finished.
var errShardGroupDone = errors.New("backend: shard group completed")

// executeSharded fans one space-parallel task out as Shards member
// tasks through the ordinary queue/lease machinery, coordinated by a
// ShardGroup. Every member executes the FULL simulation config but
// steps only its tile span, exchanging boundary traffic at each
// synchronization point via the coordinator's shard endpoints. The root
// member's document — byte-identical to what any member (or a
// single-process run) produces — is the task result.
func (f *Fleet) executeSharded(ctx context.Context, t *Task, sink Sink) ([]byte, int, error) {
	n := t.Shards
	f.mu.Lock()
	if f.closed || len(f.workers) == 0 {
		f.mu.Unlock()
		return nil, 0, ErrNoWorkers
	}
	// Refuse groups the fleet cannot co-schedule: members rendezvous
	// every cycle, so all of them must hold a worker slot concurrently.
	// A fleet with fewer total slots than members would park the early
	// members at the join barrier forever while the rest starve in the
	// queue.
	total := 0
	for _, w := range f.workers {
		total += w.capacity
	}
	if total < n {
		f.mu.Unlock()
		return nil, 0, ErrNoWorkers
	}
	if t.Checkpoints == nil {
		t.Checkpoints = map[string]Blob{}
	}
	f.seq++
	base := fmt.Sprintf("task-%06d", f.seq)
	group := NewShardGroup(n)
	// A journal-restored task arrives with the pre-crash promoted stable
	// set in Checkpoints (one "-s<i>" key per member, all at one cycle):
	// seed it into the fresh group, so the first post-restart member loss
	// rolls the group back to that consistent cross-shard state instead
	// of cycle 0. Seeding is a re-statement of already-persisted,
	// already-journaled facts, so the promotion it completes is ignored.
	for key, b := range t.Checkpoints {
		if i, ok := shardMemberIndex(key); ok && i < n {
			group.Stage(i, key, b.Cycle, b.Data)
		}
	}
	members := make([]*pending, n)
	for i := 0; i < n; i++ {
		mt := *t
		mt.ID = fmt.Sprintf("%s-s%d", base, i)
		// Each member loads only its own per-shard key from the seeded
		// set, so every member can carry the full map.
		mt.Checkpoints = make(map[string]Blob, len(t.Checkpoints))
		for k, b := range t.Checkpoints {
			mt.Checkpoints[k] = b
		}
		var ms Sink = discardSink{}
		if i == 0 {
			ms = sink
		}
		members[i] = &pending{task: &mt, sink: ms, note: sink, shard: i, group: group, done: make(chan struct{})}
	}
	f.queue = append(f.queue, members...)
	f.wakeLocked()
	f.mu.Unlock()

	// The root member's terminal state decides the task: the gather
	// barrier guarantees it cannot produce a document before every
	// member finished its simulation, and waiting on the root alone
	// avoids deadlocking on a straggler that died after the gather.
	root := members[0]
	select {
	case <-root.done:
	case <-ctx.Done():
		group.Cancel(ctx.Err())
		for _, p := range members {
			f.abort(p)
		}
		<-root.done
	}
	if root.err != nil {
		group.Cancel(root.err)
	} else {
		group.Cancel(errShardGroupDone)
	}
	for _, p := range members[1:] {
		f.abort(p)
	}
	if errors.Is(root.err, ErrNoWorkers) {
		// Hand the group's stable checkpoint set back on the task: the
		// scheduler's local fallback resumes the sharded run in-process
		// from exactly this state.
		for i := 0; i < n; i++ {
			if key, blob, ok := group.StableBlob(i); ok {
				t.Checkpoints[key] = blob
			}
		}
	}
	if root.err == nil && ctx.Err() != nil {
		return nil, 0, ctx.Err()
	}
	return root.doc, root.runErrs, root.err
}

// abort cancels an in-flight task: a queued task terminates right away;
// an assigned one is marked cancelled and the executing worker learns
// via its next heartbeat (or push) and acknowledges with a cancelled
// result push, which releases the assignment.
func (f *Fleet) abort(p *pending) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p.cancelled = true
	for i, q := range f.queue {
		if q == p {
			f.queue = append(f.queue[:i], f.queue[i+1:]...)
			f.finishLocked(p, nil, 0, context.Canceled)
			return
		}
	}
	// Assigned (or already terminal): the result push path resolves it.
}

// finishLocked moves a pending to its terminal state exactly once.
func (f *Fleet) finishLocked(p *pending, doc []byte, runErrs int, err error) {
	select {
	case <-p.done:
		return
	default:
	}
	p.doc, p.runErrs, p.err = doc, runErrs, err
	if p.group != nil && err != nil {
		// A member failing terminally dooms the whole group: release its
		// siblings from the barriers they are parked in.
		p.group.Cancel(err)
	}
	p.lease.Release()
	if err == nil {
		f.tasksCompleted++
	}
	if f.opts.Persist != nil {
		// The run completed or failed terminally; its migration blobs
		// are superseded by the result (or useless without a retry).
		// Keep them on failure so a resubmission can still resume.
		if err == nil {
			for key := range p.task.Checkpoints {
				f.opts.Persist.Remove(key)
			}
		}
	}
	close(p.done)
}

// Register adds (or replaces) a worker. A re-registered ID is treated
// as a fresh incarnation: the old one's tasks requeue with their
// checkpoints — except the in-flight executions the request claims in
// Running, which are re-adopted in place when the coordinator can
// still account for them (requeued by this very replacement and not
// yet re-dispatched, or expected back after a journal replay). The
// worker must cancel every claimed run absent from Adopted.
func (f *Fleet) Register(req RegisterRequest) (RegisterResponse, error) {
	if req.Capacity < 1 {
		return RegisterResponse{}, errors.New("backend: worker capacity must be >= 1")
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return RegisterResponse{}, ErrNoWorkers
	}
	id := req.ID
	if id == "" {
		f.nextID++
		id = fmt.Sprintf("worker-%03d", f.nextID)
	}
	if old, ok := f.workers[id]; ok {
		f.evictLocked(old, "replaced by re-registration")
	}
	w := &workerState{
		id:       id,
		capacity: req.Capacity,
		free:     req.Capacity,
		lastSeen: time.Now(),
		tasks:    map[string]*pending{},
		reserved: map[string]int{},
	}
	f.workers[id] = w
	f.workersJoined++
	var adopted []string
	type bind struct {
		p     *pending
		cycle uint64
	}
	var binds []bind
	for _, claim := range req.Running {
		p, ok := f.adoptLocked(w, claim)
		if !ok {
			continue
		}
		adopted = append(adopted, claim.TaskID)
		if p != nil {
			binds = append(binds, bind{p, claim.Cycle})
		}
	}
	f.resizeLocked()
	f.wakeLocked()
	f.log.Info("worker registered", obs.Worker(id),
		slog.Int("capacity", req.Capacity), slog.Int("fleet_capacity", f.agg.Cap()),
		slog.Int("claimed", len(req.Running)), slog.Int("adopted", len(adopted)))
	resp := RegisterResponse{
		ID:              id,
		LeaseTTL:        f.opts.LeaseTTL,
		HeartbeatEvery:  f.opts.LeaseTTL / 3,
		CheckpointEvery: f.opts.CheckpointEvery,
		Adopted:         adopted,
	}
	journal := f.journal
	f.mu.Unlock()
	// Sink and journal calls happen outside the fleet lock: they take
	// the job lock and fan out to SSE subscribers.
	for _, b := range binds {
		SinkNote(b.p.note, "reattached", map[string]string{"worker": id, "task": b.p.task.ID})
		b.p.sink.Resumed(b.p.task.ID, b.cycle)
		if journal != nil {
			journal.Assigned(b.p.task.JobID, b.p.task.ID, b.p.grant)
		}
	}
	return resp, nil
}

// adoptLocked tries to re-bind one claimed in-flight execution to the
// re-registering worker. Two sources: a queued pending with the
// claimed ID (requeued by this worker's own eviction, or restored by
// journal replay, and not yet re-dispatched elsewhere), or a restore
// reservation whose Execute has not arrived yet. Sharded members are
// never adopted — a lost member already rolled its group back, and
// the rollback machinery stays authoritative. Returns ok=true when
// the claim was accepted, with the bound pending when one exists
// (nil for a reservation: the bind happens at Execute).
func (f *Fleet) adoptLocked(w *workerState, claim RunningTask) (*pending, bool) {
	for i, p := range f.queue {
		if p.task.ID != claim.TaskID || p.group != nil || p.cancelled {
			continue
		}
		weight := p.task.Weight
		if weight < 1 {
			weight = 1
		}
		if weight > w.capacity {
			weight = w.capacity
		}
		if weight > w.free {
			return nil, false
		}
		f.queue = append(f.queue[:i], f.queue[i+1:]...)
		w.free -= weight
		w.tasks[p.task.ID] = p
		p.worker, p.grant = w.id, weight
		p.holdUntil = time.Time{}
		if p.lease = f.agg.TryLease(weight); p.lease == nil {
			f.leaseMisses++
		}
		f.tasksAdopted++
		f.log.Info("in-flight task re-adopted", append(shardAttrs(p),
			obs.Worker(w.id), slog.Uint64("cycle", claim.Cycle))...)
		return p, true
	}
	if r, ok := f.expect[claim.TaskID]; ok && r.worker == "" {
		weight := r.weight
		if weight > w.capacity {
			weight = w.capacity
		}
		if weight > w.free {
			return nil, false
		}
		r.worker, r.cycle = w.id, claim.Cycle
		w.free -= weight
		w.reserved[claim.TaskID] = weight
		f.tasksAdopted++
		f.log.Info("reattach claim reserved", obs.Worker(w.id),
			obs.Task(claim.TaskID), slog.Uint64("cycle", claim.Cycle))
		return nil, true
	}
	return nil, false
}

// Deregister removes a worker gracefully; its tasks requeue with their
// checkpoints and migrate to the survivors.
func (f *Fleet) Deregister(id string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	w, ok := f.workers[id]
	if !ok {
		return ErrUnknownWorker
	}
	f.log.Info("worker deregistered", obs.Worker(id))
	f.evictLocked(w, "worker deregistered")
	f.resizeLocked()
	f.failQueuedIfEmptyLocked()
	return nil
}

// evictLocked removes a worker and requeues its assigned tasks at the
// front of the queue (migrated work resumes before new work starts).
// reason labels the eviction in logs ("lease expired", ...).
func (f *Fleet) evictLocked(w *workerState, reason string) {
	delete(f.workers, w.id)
	// Unwind reattach reservations: the claim reverts to unclaimed so
	// the worker's next incarnation (the usual reason for eviction
	// here: replacement by re-registration) can claim it again.
	for tid := range w.reserved {
		if r, ok := f.expect[tid]; ok && r.worker == w.id {
			r.worker, r.cycle = "", 0
		}
	}
	w.reserved = map[string]int{}
	var requeue []*pending
	for _, p := range w.tasks {
		p.lease.Release()
		p.lease = nil
		p.worker, p.grant = "", 0
		if p.cancelled {
			f.finishLocked(p, nil, 0, context.Canceled)
			continue
		}
		if p.group != nil {
			// Losing a member rolls the whole group back: bump the epoch
			// (survivors restart from the stable cycle at their next
			// barrier call) and seed the re-dispatch with the member's
			// stable blob — NOT its latest upload, which may be ahead of
			// the cycle the survivors roll back to.
			p.group.MemberLost()
			f.shardRollbacks++
			p.task.Checkpoints = map[string]Blob{}
			if key, blob, ok := p.group.StableBlob(p.shard); ok {
				p.task.Checkpoints[key] = blob
			}
			f.log.Warn("shard member lost; group rolled back",
				append(shardAttrs(p), obs.Worker(w.id),
					slog.Int("epoch", p.group.Epoch()), slog.String("reason", reason))...)
			// NoteSink implementations touch only their own locks, so the
			// calls are safe under f.mu (documented on NoteSink).
			SinkNote(p.note, "rollback", map[string]string{
				"worker": w.id,
				"shard":  strconv.Itoa(p.shard),
				"epoch":  strconv.Itoa(p.group.Epoch()),
			})
		} else {
			f.log.Warn("task requeued for migration",
				append(shardAttrs(p), obs.Worker(w.id), slog.String("reason", reason),
					slog.Int("checkpoints", len(p.task.Checkpoints)))...)
		}
		SinkNote(p.note, "requeued", map[string]string{"worker": w.id, "task": p.task.ID})
		requeue = append(requeue, p)
		f.tasksRequeued++
	}
	w.tasks = map[string]*pending{}
	if len(requeue) > 0 {
		f.queue = append(requeue, f.queue...)
		f.wakeLocked()
	}
}

// resizeLocked re-derives the aggregate budget capacity from the live
// workers.
func (f *Fleet) resizeLocked() {
	total := 0
	for _, w := range f.workers {
		total += w.capacity
	}
	f.agg.Resize(total)
}

// failQueuedIfEmptyLocked fails every queued task with ErrNoWorkers
// once the fleet has no one left to run them; the scheduler falls back
// to the local backend (resuming from persisted blobs when the daemon
// checkpoints).
func (f *Fleet) failQueuedIfEmptyLocked() {
	if len(f.workers) > 0 {
		return
	}
	for _, p := range f.queue {
		f.finishLocked(p, nil, 0, ErrNoWorkers)
	}
	f.queue = nil
}

// Heartbeat refreshes a worker's lease and returns the IDs of its
// assigned tasks the coordinator wants cancelled.
func (f *Fleet) Heartbeat(id string) (HeartbeatResponse, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	w, ok := f.workers[id]
	if !ok {
		return HeartbeatResponse{}, ErrUnknownWorker
	}
	w.lastSeen = time.Now()
	var resp HeartbeatResponse
	for tid, p := range w.tasks {
		if p.cancelled {
			resp.CancelTasks = append(resp.CancelTasks, tid)
		}
	}
	return resp, nil
}

// Poll hands the worker its next assignment, long-polling up to wait.
// A nil assignment with nil error means "nothing to do, poll again".
// Poll doubles as a heartbeat.
func (f *Fleet) Poll(ctx context.Context, id string, wait time.Duration) (*Assignment, error) {
	deadline := time.Now().Add(wait)
	for {
		f.mu.Lock()
		w, ok := f.workers[id]
		if !ok {
			f.mu.Unlock()
			return nil, ErrUnknownWorker
		}
		w.lastSeen = time.Now()
		if a, p := f.assignLocked(w); a != nil {
			journal := f.journal
			f.mu.Unlock()
			if journal != nil {
				journal.Assigned(p.task.JobID, a.TaskID, a.Workers)
			}
			return a, nil
		}
		ch := f.notify
		f.mu.Unlock()

		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, nil
		}
		timer := time.NewTimer(remaining)
		select {
		case <-ch:
			timer.Stop()
		case <-timer.C:
			return nil, nil
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		}
	}
}

// assignLocked dispatches the first queued task that fits the worker's
// free slots. It also returns the pending for post-unlock journaling.
func (f *Fleet) assignLocked(w *workerState) (*Assignment, *pending) {
	now := time.Now()
	for i, p := range f.queue {
		if now.Before(p.holdUntil) {
			// Restored task still waiting for its pre-crash executor's
			// re-claim; don't hand it to someone else yet.
			continue
		}
		weight := p.task.Weight
		if weight < 1 {
			weight = 1
		}
		if weight > w.capacity {
			weight = w.capacity
		}
		if weight > w.free {
			continue
		}
		f.queue = append(f.queue[:i], f.queue[i+1:]...)
		w.free -= weight
		w.tasks[p.task.ID] = p
		p.worker, p.grant = w.id, weight
		if p.lease = f.agg.TryLease(weight); p.lease == nil {
			f.leaseMisses++ // shrink raced the assignment; placement still bounds usage
		}
		f.tasksDispatched++
		f.log.Debug("task dispatched",
			append(shardAttrs(p), obs.Worker(w.id), slog.Int("slots", weight))...)
		SinkNote(p.note, "dispatched", map[string]string{"worker": w.id, "task": p.task.ID})
		ckpts := make(map[string]Blob, len(p.task.Checkpoints))
		for k, b := range p.task.Checkpoints {
			ckpts[k] = b
		}
		a := &Assignment{
			TaskID:          p.task.ID,
			Name:            p.task.Name,
			Hash:            p.task.Hash,
			Kind:            p.task.Kind,
			Seed:            p.task.Seed,
			Workers:         weight,
			CheckpointEvery: f.opts.CheckpointEvery,
			Request:         p.task.Request,
			Checkpoints:     ckpts,
		}
		if p.group != nil {
			a.Shard = p.shard
			a.ShardCount = p.group.Members()
			a.ShardEpoch = p.group.Epoch()
		}
		return a, p
	}
	return nil, nil
}

// taskFor resolves a worker push to its pending record, refreshing the
// worker's lease.
func (f *Fleet) taskFor(workerID, taskID string) (*pending, error) {
	w, ok := f.workers[workerID]
	if !ok {
		return nil, ErrUnknownWorker
	}
	w.lastSeen = time.Now()
	p, ok := w.tasks[taskID]
	if !ok {
		return nil, ErrGone
	}
	if p.cancelled {
		return nil, ErrGone
	}
	return p, nil
}

// PushEvent maps a worker's progress event onto the job's sink.
func (f *Fleet) PushEvent(workerID, taskID string, ev TaskEvent) error {
	f.mu.Lock()
	p, err := f.taskFor(workerID, taskID)
	f.mu.Unlock()
	if err != nil {
		return err
	}
	// Sink calls happen outside the fleet lock: they take the job lock
	// and fan out to SSE subscribers.
	switch ev.Type {
	case "progress":
		p.sink.Progress(ev.Done, ev.Total, ev.Key)
	case "resumed":
		p.sink.Resumed(ev.Key, ev.Cycle)
	case "checkpoint":
		p.sink.Checkpoint(ev.Key, ev.Cycle)
	case "engine":
		if ev.Engine != nil {
			SinkEngine(p.sink, *ev.Engine)
		}
	case "telemetry":
		if ev.Telemetry != nil {
			SinkTelemetry(p.sink, *ev.Telemetry)
		}
	default:
		return fmt.Errorf("backend: unknown event type %q", ev.Type)
	}
	return nil
}

// PushCheckpoint stores an uploaded snapshot blob as the task's latest
// migration state. key is the content-based store address
// ("<name>-<hash>-<runkey>") the worker's checkpoint store saves under —
// the same address a re-dispatched worker (or the local fallback) loads
// from. The corresponding job-visible "checkpoint" notification arrives
// separately through PushEvent.
func (f *Fleet) PushCheckpoint(workerID, taskID, key string, cycle uint64, blob []byte) error {
	f.mu.Lock()
	p, err := f.taskFor(workerID, taskID)
	if err != nil {
		f.mu.Unlock()
		return err
	}
	f.checkpointBytes += uint64(len(blob))
	if p.group != nil {
		// Shard members bypass the monotone guard below: after a group
		// rollback a member legitimately re-uploads cycles BELOW its own
		// previous latest (re-executing the same trajectory, the blobs are
		// byte-identical), and each of those must reach the group's
		// staged→stable promotion or the group would never advance its
		// stable point again.
		p.task.Checkpoints[key] = Blob{Cycle: cycle, Data: blob}
		promoted := p.group.Stage(p.shard, key, cycle, blob)
		persist := f.opts.Persist
		journal := f.journal
		group := p.group
		jobID := p.task.JobID
		f.mu.Unlock()
		if promoted {
			// Only PROMOTED sets reach the persist tier: a member's
			// staged upload may be cycles ahead of group-stable, and a
			// restarted coordinator seeding members from mismatched
			// cycles would break the lockstep the group depends on. The
			// promotion is the one moment the full consistent set exists.
			scycle, set, ok := group.StableSet()
			if ok {
				if persist != nil {
					for _, e := range set {
						_ = persist.Save(e.Key, e.Data, e.Cycle) // best effort, like below
					}
				}
				if journal != nil {
					keys := make([]string, len(set))
					for i, e := range set {
						keys[i] = e.Key
					}
					journal.StablePromoted(jobID, group.Epoch(), scycle, keys)
				}
			}
		}
		return nil
	}
	// Checkpoints only move forward: a lagging upload (a stale worker
	// incarnation losing a race with the task's current executor) must
	// not replace a later snapshot — migration always resumes from the
	// furthest state.
	if old, ok := p.task.Checkpoints[key]; ok && cycle < old.Cycle {
		f.mu.Unlock()
		return nil
	}
	p.task.Checkpoints[key] = Blob{Cycle: cycle, Data: blob}
	persist := f.opts.Persist
	f.mu.Unlock()
	if persist != nil {
		_ = persist.Save(key, blob, cycle) // best effort; the in-memory blob is authoritative
	}
	return nil
}

// DropCheckpoint discards the migration blob for a completed run —
// from the in-memory task state and from the persistent tier, or a
// long-lived checkpointing coordinator would accrete one stale blob
// per completed remote run.
func (f *Fleet) DropCheckpoint(workerID, taskID, key string) error {
	f.mu.Lock()
	p, err := f.taskFor(workerID, taskID)
	if err != nil {
		f.mu.Unlock()
		return err
	}
	delete(p.task.Checkpoints, key)
	persist := f.opts.Persist
	f.mu.Unlock()
	if persist != nil {
		persist.Remove(key)
	}
	return nil
}

// PushResult completes the task: the worker's document (or failure)
// becomes the Execute return value, and the worker's slots free up.
func (f *Fleet) PushResult(workerID, taskID string, res ResultPush) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	w, ok := f.workers[workerID]
	if !ok {
		return ErrUnknownWorker
	}
	w.lastSeen = time.Now()
	p, ok := w.tasks[taskID]
	if !ok {
		return ErrGone
	}
	delete(w.tasks, taskID)
	w.free += p.grant
	p.worker, p.grant = "", 0
	switch {
	case res.Canceled || p.cancelled:
		f.finishLocked(p, nil, 0, context.Canceled)
	case res.Error != "":
		f.finishLocked(p, nil, 0, errors.New(res.Error))
	default:
		f.finishLocked(p, res.Doc, res.RunErrs, nil)
	}
	f.wakeLocked()
	return nil
}

// memberGroup resolves a shard-coordination push to its group, also
// refreshing the worker's lease (barrier calls can block for a while,
// but the push itself proves the worker is alive).
func (f *Fleet) memberGroup(workerID, taskID string) (*ShardGroup, int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p, err := f.taskFor(workerID, taskID)
	if err != nil {
		return nil, 0, err
	}
	if p.group == nil {
		return nil, 0, fmt.Errorf("backend: task %s is not sharded", taskID)
	}
	return p.group, p.shard, nil
}

// ShardSync is one member's synchronization-point rendezvous: it blocks
// until every member of the group arrives (or the group restarts or is
// cancelled) and returns the collective decision plus all boundary
// payloads.
func (f *Fleet) ShardSync(ctx context.Context, workerID, taskID string, req ShardSyncRequest) (ShardSyncResponse, error) {
	g, shard, err := f.memberGroup(workerID, taskID)
	if err != nil {
		return ShardSyncResponse{}, err
	}
	dec, payloads, restart, err := g.Sync(ctx, req.Epoch, req.Vote, req.Boundary)
	if err != nil {
		// Name the offending member: an epoch-rollback log line must
		// identify worker and shard without cross-referencing.
		return ShardSyncResponse{}, fmt.Errorf("shard sync (worker %s, shard %d, task %s): %w",
			workerID, shard, taskID, err)
	}
	return ShardSyncResponse{Decision: dec, Payloads: payloads, Restart: restart}, nil
}

// ShardGather is the end-of-run statistics exchange.
func (f *Fleet) ShardGather(ctx context.Context, workerID, taskID string, req ShardGatherRequest) (ShardGatherResponse, error) {
	g, shard, err := f.memberGroup(workerID, taskID)
	if err != nil {
		return ShardGatherResponse{}, err
	}
	payloads, restart, err := g.Gather(ctx, req.Epoch, req.Payload)
	if err != nil {
		return ShardGatherResponse{}, fmt.Errorf("shard gather (worker %s, shard %d, task %s): %w",
			workerID, shard, taskID, err)
	}
	return ShardGatherResponse{Payloads: payloads, Restart: restart}, nil
}

// ShardStableBlob returns the calling member's blob of the group's
// stable checkpoint — what a survivor restores after a group rollback
// (its own store may hold a NEWER blob, which is exactly the problem).
func (f *Fleet) ShardStableBlob(workerID, taskID string) (Blob, bool, error) {
	g, shard, err := f.memberGroup(workerID, taskID)
	if err != nil {
		return Blob{}, false, err
	}
	_, blob, ok := g.StableBlob(shard)
	return blob, ok, nil
}

// janitor expires workers whose lease lapsed: their tasks requeue (and
// migrate), and an emptied fleet fails its queue over to the local
// backend.
func (f *Fleet) janitor() {
	defer close(f.janitorDone)
	period := f.opts.LeaseTTL / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			f.expire(time.Now().Add(-f.opts.LeaseTTL))
		case <-f.janitorStop:
			return
		}
	}
}

// expire evicts workers silent since before cutoff, retires reattach
// reservations no Execute ever consumed (job canceled while queued),
// and wakes parked polls once a restored task's reattach hold lapses
// so it dispatches without waiting out a long-poll timeout.
func (f *Fleet) expire(cutoff time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, w := range f.workers {
		if w.lastSeen.Before(cutoff) {
			f.log.Warn("worker lease expired", obs.Worker(w.id),
				slog.Time("last_seen", w.lastSeen), slog.Int("tasks", len(w.tasks)))
			f.evictLocked(w, "lease expired")
			f.workersLost++
		}
	}
	now := time.Now()
	for tid, r := range f.expect {
		if now.Before(r.deadline) {
			continue
		}
		if r.worker != "" {
			if w, ok := f.workers[r.worker]; ok {
				if slots, held := w.reserved[tid]; held {
					w.free += slots
					delete(w.reserved, tid)
				}
			}
		}
		delete(f.expect, tid)
	}
	wake := false
	for _, p := range f.queue {
		if !p.holdUntil.IsZero() && !now.Before(p.holdUntil) {
			p.holdUntil = time.Time{}
			wake = true
		}
	}
	if wake {
		f.wakeLocked()
	}
	f.resizeLocked()
	f.failQueuedIfEmptyLocked()
}

// wakeLocked wakes every parked Poll.
func (f *Fleet) wakeLocked() {
	close(f.notify)
	f.notify = make(chan struct{})
}

// Workers lists the registered workers for the ops endpoint.
func (f *Fleet) WorkersInfo() []WorkerInfo {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]WorkerInfo, 0, len(f.workers))
	for _, w := range f.workers {
		info := WorkerInfo{
			ID:       w.id,
			Capacity: w.capacity,
			Free:     w.free,
			LastSeen: w.lastSeen,
		}
		for tid := range w.tasks {
			info.Tasks = append(info.Tasks, tid)
		}
		sort.Strings(info.Tasks)
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stats snapshots the fleet counters.
func (f *Fleet) Stats() FleetStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	blobs := 0
	for _, p := range f.queue {
		blobs += len(p.task.Checkpoints)
	}
	for _, w := range f.workers {
		for _, p := range w.tasks {
			blobs += len(p.task.Checkpoints)
		}
	}
	return FleetStats{
		WorkersLive:     len(f.workers),
		WorkersJoined:   f.workersJoined,
		WorkersLost:     f.workersLost,
		FleetCapacity:   f.agg.Cap(),
		FleetInUse:      f.agg.InUse(),
		FleetPeak:       f.agg.Peak(),
		TasksQueued:     len(f.queue),
		TasksDispatched: f.tasksDispatched,
		TasksRequeued:   f.tasksRequeued,
		TasksCompleted:  f.tasksCompleted,
		TasksAdopted:    f.tasksAdopted,
		CheckpointBlobs: blobs,
		LeaseMisses:     f.leaseMisses,
		ShardRollbacks:  f.shardRollbacks,
		CheckpointBytes: f.checkpointBytes,
	}
}

// Package backend defines hornet-serve's pluggable execution layer: a
// scheduler hands each job to a Backend, which runs the scenario and
// returns the canonical result document. Two implementations exist —
// the in-process sweep backend (in package service, wrapping the
// scheduler's shared execution environment) and the Fleet remote
// backend (fleet.go), which ships validated job configs to registered
// hornet-worker processes, streams their progress back, and migrates a
// dead worker's job to a survivor via its uploaded checkpoints.
//
// The package deliberately knows nothing about the service package's
// scenario compilation: a Task carries the client's original request
// bytes (the worker revalidates them itself) plus the job's compiled
// identity, so backend and service can be layered without an import
// cycle.
package backend

import (
	"context"
	"encoding/json"
	"errors"
	"time"

	"hornet/internal/obs"
	"hornet/internal/sim"
)

// Task is one unit of executable work: the job's compiled identity plus
// the original submit-request bytes a remote worker needs to rebuild
// and revalidate the scenario.
type Task struct {
	// ID is assigned by the fleet at dispatch time; empty for tasks that
	// never leave the coordinator.
	ID string
	// JobID is the owning job's public identity, threaded through so
	// the fleet can journal durable facts (assignment, stable
	// promotions) against the job a restarted coordinator will rebuild.
	JobID string
	// ReattachID, when non-empty, is the fleet task ID this job held
	// before a coordinator restart: Execute reuses it instead of
	// minting a fresh one, and if the pre-crash worker has re-claimed
	// the ID the execution is re-adopted in place instead of being
	// dispatched again.
	ReattachID string
	// Name/Hash/Seed are the job's content address (document identity).
	Name string
	Hash string
	Seed uint64
	// Kind is the scenario kind (config/batch/mips/figure).
	Kind string
	// Weight is the engine-worker (CPU slot) request of the job's runs;
	// the executing backend clamps it to what it can grant.
	Weight int
	// RunsTotal sizes progress reporting.
	RunsTotal int
	// Shards, when >= 2, marks a space-parallel task: the fleet fans it
	// out as Shards member tasks (one tile span each) coordinated through
	// a ShardGroup; the local backend runs the members in-process.
	Shards int
	// Request is the client's original SubmitRequest JSON. Remote
	// workers re-run full validation on it — a coordinator must never be
	// able to make a worker execute an unvalidated configuration.
	Request json.RawMessage
	// Checkpoints carries the latest uploaded snapshot blob per run key.
	// The fleet fills it when re-dispatching a task whose worker died,
	// so the next executor resumes instead of restarting.
	Checkpoints map[string]Blob
	// Compiled is the coordinator's pre-validated scenario, consumed by
	// the in-process backend to skip re-parsing. Opaque at this layer.
	Compiled any
}

// Blob is one checkpoint snapshot in transit: the encoded container
// plus the simulation clock it was taken at (observability).
type Blob struct {
	Cycle uint64 `json:"cycle"`
	Data  []byte `json:"data"`
}

// Sink receives execution progress from whichever backend runs the
// task. Implementations must be safe for concurrent calls.
type Sink interface {
	// Progress reports done-of-total completed runs.
	Progress(done, total int, key string)
	// Resumed reports that a run restored a checkpoint at cycle instead
	// of starting from 0.
	Resumed(key string, cycle uint64)
	// Checkpoint reports one autosaved snapshot at cycle.
	Checkpoint(key string, cycle uint64)
}

// EngineSink is an optional Sink extension: backends that instrument
// the simulation engine push probe snapshots (cycles/sec, barrier-wait
// vs. compute split) through it. Checked by type assertion so existing
// Sink implementations keep working unchanged.
type EngineSink interface {
	Engine(s obs.ProbeSnapshot)
}

// TelemetrySink is an optional Sink extension: backends whose
// executions sample machine telemetry (per-tile flit counters,
// per-link buffer occupancy) push the latest snapshot through it at a
// wall-clock cadence. Checked by type assertion like EngineSink.
type TelemetrySink interface {
	Telemetry(s obs.TelemetrySnapshot)
}

// NoteSink is an optional Sink extension for lifecycle annotations
// ("dispatched", "requeued", "rollback", ...) feeding per-job trace
// timelines. Implementations must be non-blocking and must not call
// back into the fleet: notes are emitted while backend locks are held.
type NoteSink interface {
	Note(event string, fields map[string]string)
}

// SinkEngine forwards a probe snapshot to s if it implements
// EngineSink.
func SinkEngine(s Sink, snap obs.ProbeSnapshot) {
	if es, ok := s.(EngineSink); ok {
		es.Engine(snap)
	}
}

// SinkTelemetry forwards a telemetry snapshot to s if it implements
// TelemetrySink.
func SinkTelemetry(s Sink, snap obs.TelemetrySnapshot) {
	if ts, ok := s.(TelemetrySink); ok {
		ts.Telemetry(snap)
	}
}

// Journal receives the fleet's durable-coordinator notifications; the
// server forwards them to its write-ahead log (see service/journal) so
// a restart can rebuild what the fleet was doing. Implementations must
// be safe for concurrent use; the fleet calls them outside its lock.
type Journal interface {
	// Assigned records that taskID (with a slots-wide grant) now
	// executes jobID's work — at dispatch, re-dispatch, and adoption.
	Assigned(jobID, taskID string, slots int)
	// StablePromoted records a sharded group's newly promoted stable
	// checkpoint set: the per-member blob keys, all at one cycle.
	StablePromoted(jobID string, epoch int, cycle uint64, keys []string)
}

// SinkNote forwards a lifecycle note to s if it implements NoteSink.
func SinkNote(s Sink, event string, fields map[string]string) {
	if ns, ok := s.(NoteSink); ok {
		ns.Note(event, fields)
	}
}

// Backend executes tasks.
type Backend interface {
	// Name labels the backend in job records and logs ("local", "fleet").
	Name() string
	// Execute runs the task to completion and returns the canonical
	// document bytes plus the number of per-run errors recorded inside
	// the document. The context cancels the execution.
	Execute(ctx context.Context, t *Task, sink Sink) (doc []byte, runErrs int, err error)
}

// ErrNoWorkers reports that the fleet cannot take the task — no live
// worker is registered (or none survived while the task waited). The
// scheduler treats it as "fall back to the local backend".
var ErrNoWorkers = errors.New("backend: no live workers in the fleet")

// ErrUnknownWorker reports a fleet call from a worker ID the registry
// does not know — typically a worker that outlived its lease and was
// expired. The worker's recovery is to re-register.
var ErrUnknownWorker = errors.New("backend: unknown worker")

// ErrGone reports a push for a task no longer assigned to the pushing
// worker (cancelled, migrated, or completed elsewhere). The worker's
// response is to abandon the run.
var ErrGone = errors.New("backend: task no longer assigned to this worker")

// Wire types of the coordinator←worker HTTP protocol. Both ends are Go,
// so time.Durations travel as int64 nanoseconds and blobs as base64.

// RegisterRequest is the body of POST /api/v1/workers.
type RegisterRequest struct {
	// ID is the worker's stable identity; empty lets the coordinator
	// mint one. Re-registering an ID the fleet already knows replaces
	// the old incarnation (its tasks requeue).
	ID string `json:"id,omitempty"`
	// Capacity is the number of CPU slots the worker offers; it bounds
	// the engine workers of any task assigned to it.
	Capacity int `json:"capacity"`
	// Running lists the in-flight executions the worker still carries
	// when it re-registers (a coordinator restart, or a lease that
	// expired under a live worker). The coordinator re-adopts the ones
	// it can — task still queued for re-dispatch, or expected back
	// after a journal replay — and the worker cancels the rest.
	Running []RunningTask `json:"running,omitempty"`
}

// RunningTask is one in-flight execution claimed by a re-registering
// worker: the assignment it still runs and the newest checkpoint
// cycle it has uploaded (observability for the resumed-run record).
type RunningTask struct {
	TaskID string `json:"task_id"`
	Cycle  uint64 `json:"cycle,omitempty"`
}

// RegisterResponse tells the worker its identity and cadences.
type RegisterResponse struct {
	ID string `json:"id"`
	// LeaseTTL is how long the coordinator keeps a silent worker alive;
	// the worker must heartbeat (or poll, or push) more often than this.
	LeaseTTL time.Duration `json:"lease_ttl"`
	// HeartbeatEvery is the suggested heartbeat period (TTL/3).
	HeartbeatEvery time.Duration `json:"heartbeat_every"`
	// CheckpointEvery is the autosave cadence (simulated cycles) every
	// worker must use, so migrated runs re-align chunk boundaries.
	CheckpointEvery uint64 `json:"checkpoint_every"`
	// Adopted echoes the subset of RegisterRequest.Running the
	// coordinator re-bound to this registration: those executions
	// continue untouched; the worker must cancel the rest.
	Adopted []string `json:"adopted,omitempty"`
}

// Assignment is one dispatched task (POST .../poll response).
type Assignment struct {
	TaskID string `json:"task_id"`
	Name   string `json:"name"`
	Hash   string `json:"hash"`
	Kind   string `json:"kind"`
	Seed   uint64 `json:"seed"`
	// Workers is the CPU-slot grant for this execution (the task weight
	// clamped to the worker's capacity).
	Workers int `json:"workers"`
	// CheckpointEvery is the autosave cadence in simulated cycles.
	CheckpointEvery uint64 `json:"checkpoint_every"`
	// Request is the original SubmitRequest JSON to revalidate and run.
	Request json.RawMessage `json:"request"`
	// Checkpoints seeds the worker's checkpoint store for resume after a
	// migration (run key → latest blob).
	Checkpoints map[string]Blob `json:"checkpoints,omitempty"`
	// Shard/ShardCount mark a space-parallel member assignment: this
	// execution steps tile span Shard of ShardCount and coordinates with
	// its siblings through the coordinator's shard endpoints. ShardEpoch
	// is the group restart epoch the member joins at (incremented each
	// time a member is lost and the group rolls back).
	Shard      int `json:"shard,omitempty"`
	ShardCount int `json:"shard_count,omitempty"`
	ShardEpoch int `json:"shard_epoch,omitempty"`
}

// TaskEvent is one progress push (POST .../tasks/{id}/events).
type TaskEvent struct {
	// Type is "progress", "resumed", "checkpoint", "engine" or
	// "telemetry".
	Type  string `json:"type"`
	Done  int    `json:"done,omitempty"`
	Total int    `json:"total,omitempty"`
	Key   string `json:"key,omitempty"`
	Cycle uint64 `json:"cycle,omitempty"`
	// Engine carries the executing worker's probe snapshot for "engine"
	// events (live cycles/sec and barrier-wait split per running job).
	Engine *obs.ProbeSnapshot `json:"engine,omitempty"`
	// Telemetry carries the executing worker's machine-telemetry sample
	// for "telemetry" events (per-tile flit counters, per-link buffer
	// occupancy of the member's tile span).
	Telemetry *obs.TelemetrySnapshot `json:"telemetry,omitempty"`
}

// ResultPush is the terminal push (POST .../tasks/{id}/result).
type ResultPush struct {
	// Doc is the canonical document bytes of a successful execution.
	Doc []byte `json:"doc,omitempty"`
	// RunErrs is the number of per-run errors recorded in the document.
	RunErrs int `json:"run_errs,omitempty"`
	// Error is a non-empty diagnostic when the execution failed.
	Error string `json:"error,omitempty"`
	// Canceled acknowledges a coordinator-initiated cancellation.
	Canceled bool `json:"canceled,omitempty"`
}

// Wire types of the shard-coordination endpoints. A space-parallel
// member calls POST .../tasks/{id}/shardsync every synchronization
// point and POST .../tasks/{id}/shardgather once at the end; both may
// answer with a Restart instead, telling the member the group rolled
// back to a stable checkpoint (a sibling died) and it must rejoin at
// the new epoch from that cycle.

// ShardRestart is the group-rollback notice: rejoin at Epoch from the
// stable checkpoint taken at Cycle (0 = rebuild from scratch).
type ShardRestart struct {
	Epoch int    `json:"epoch"`
	Cycle uint64 `json:"cycle"`
}

// ShardSyncRequest carries one member's vote and boundary payload for
// the current synchronization point.
type ShardSyncRequest struct {
	Epoch    int           `json:"epoch"`
	Vote     sim.ShardVote `json:"vote"`
	Boundary []byte        `json:"boundary,omitempty"`
}

// ShardSyncResponse is the group decision plus every member's boundary
// payload (the caller's own included; applying it is a no-op).
type ShardSyncResponse struct {
	Decision sim.ShardDecision `json:"decision"`
	Payloads [][]byte          `json:"payloads,omitempty"`
	Restart  *ShardRestart     `json:"restart,omitempty"`
}

// ShardGatherRequest carries one member's per-span statistics payload
// for the final exchange that gives every member the full statistics.
type ShardGatherRequest struct {
	Epoch   int    `json:"epoch"`
	Payload []byte `json:"payload,omitempty"`
}

// ShardGatherResponse returns every member's statistics payload.
type ShardGatherResponse struct {
	Payloads [][]byte      `json:"payloads,omitempty"`
	Restart  *ShardRestart `json:"restart,omitempty"`
}

// ShardCheckpointResponse carries the calling member's blob of the
// group's stable checkpoint (nil: the group has no complete set — the
// member rebuilds from cycle 0).
type ShardCheckpointResponse struct {
	Blob *Blob `json:"blob,omitempty"`
}

// HeartbeatResponse piggybacks coordinator→worker control on the
// heartbeat: tasks the worker should stop executing.
type HeartbeatResponse struct {
	CancelTasks []string `json:"cancel_tasks,omitempty"`
}

// WorkerInfo is the ops view of one registered worker
// (GET /api/v1/workers).
type WorkerInfo struct {
	ID       string    `json:"id"`
	Capacity int       `json:"capacity"`
	Free     int       `json:"free"`
	Tasks    []string  `json:"tasks,omitempty"`
	LastSeen time.Time `json:"last_seen"`
}

// FleetStats is the fleet's observability snapshot, embedded in
// ServerStats.
type FleetStats struct {
	// WorkersLive / FleetCapacity describe the current fleet;
	// FleetInUse/FleetPeak are the aggregate budget's lease accounting —
	// peak never exceeding the capacity at the time is the proof the
	// coordinator never oversubscribed the fleet.
	WorkersLive   int    `json:"workers_live"`
	WorkersJoined uint64 `json:"workers_joined"`
	WorkersLost   uint64 `json:"workers_lost"`
	FleetCapacity int    `json:"fleet_capacity"`
	FleetInUse    int    `json:"fleet_in_use"`
	FleetPeak     int    `json:"fleet_peak"`
	// TasksDispatched counts assignments (including re-dispatches);
	// TasksRequeued counts migrations back to the queue after a worker
	// died or deregistered mid-task.
	TasksQueued     int    `json:"tasks_queued"`
	TasksDispatched uint64 `json:"tasks_dispatched"`
	TasksRequeued   uint64 `json:"tasks_requeued"`
	TasksCompleted  uint64 `json:"tasks_completed"`
	// CheckpointBlobs is the number of migration snapshots currently
	// held for in-flight tasks; LeaseMisses counts aggregate-budget
	// leases that were not free at assignment time (always 0 unless a
	// shrink raced an assignment).
	CheckpointBlobs int    `json:"checkpoint_blobs"`
	LeaseMisses     uint64 `json:"lease_misses"`
	// TasksAdopted counts in-flight executions re-bound to a
	// re-registering worker (coordinator restart reattach, or a lease
	// expiry the worker outlived) instead of being re-dispatched.
	TasksAdopted uint64 `json:"tasks_adopted"`
	// ShardRollbacks counts shard-group epoch rollbacks (a member died
	// and the group restarted from its stable checkpoint).
	ShardRollbacks uint64 `json:"shard_rollbacks"`
	// CheckpointBytes is the total size of checkpoint blobs accepted
	// from workers (migration uploads).
	CheckpointBytes uint64 `json:"checkpoint_bytes"`
}

package backend

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"
)

// recordSink captures sink callbacks.
type recordSink struct {
	mu       sync.Mutex
	resumed  int
	progress int
}

func (r *recordSink) Progress(done, total int, key string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.progress++
}
func (r *recordSink) Resumed(key string, cycle uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.resumed++
}
func (r *recordSink) Checkpoint(key string, cycle uint64) {}

func newTestFleet(t *testing.T) *Fleet {
	t.Helper()
	f := NewFleet(FleetOptions{LeaseTTL: time.Minute})
	t.Cleanup(f.Close)
	return f
}

func task(name string, weight int) *Task {
	return &Task{Name: name, Hash: "feedface", Kind: "config", Weight: weight,
		Request: json.RawMessage(`{}`), RunsTotal: 1}
}

func TestFleetRegisterValidation(t *testing.T) {
	f := newTestFleet(t)
	if _, err := f.Register(RegisterRequest{Capacity: 0}); err == nil {
		t.Fatal("capacity 0 accepted")
	}
	resp, err := f.Register(RegisterRequest{Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID == "" || resp.LeaseTTL != time.Minute || resp.HeartbeatEvery != time.Minute/3 {
		t.Fatalf("register response %+v", resp)
	}
	if f.Live() != 1 {
		t.Fatalf("Live = %d", f.Live())
	}
	st := f.Stats()
	if st.FleetCapacity != 2 || st.WorkersJoined != 1 {
		t.Fatalf("stats %+v", st)
	}
	if err := f.Deregister(resp.ID); err != nil {
		t.Fatal(err)
	}
	if got := f.Stats().FleetCapacity; got != 0 {
		t.Fatalf("capacity after deregister = %d", got)
	}
	if err := f.Deregister("nobody"); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("deregister unknown: %v", err)
	}
}

func TestFleetExecuteNoWorkers(t *testing.T) {
	f := newTestFleet(t)
	_, _, err := f.Execute(context.Background(), task("t", 1), &recordSink{})
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
}

func TestFleetDispatchAndResult(t *testing.T) {
	f := newTestFleet(t)
	w, _ := f.Register(RegisterRequest{ID: "w1", Capacity: 2})

	type out struct {
		doc []byte
		err error
	}
	done := make(chan out, 1)
	go func() {
		doc, _, err := f.Execute(context.Background(), task("job", 5), &recordSink{})
		done <- out{doc, err}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	a, err := f.Poll(ctx, w.ID, 5*time.Second)
	if err != nil || a == nil {
		t.Fatalf("poll: %v, %v", a, err)
	}
	if a.Workers != 2 {
		t.Fatalf("weight 5 on capacity-2 worker granted %d slots, want clamp to 2", a.Workers)
	}
	if st := f.Stats(); st.FleetInUse != 2 || st.FleetPeak != 2 {
		t.Fatalf("lease accounting %+v", st)
	}
	if err := f.PushResult(w.ID, a.TaskID, ResultPush{Doc: []byte("doc"), RunErrs: 0}); err != nil {
		t.Fatal(err)
	}
	res := <-done
	if res.err != nil || string(res.doc) != "doc" {
		t.Fatalf("execute returned %q, %v", res.doc, res.err)
	}
	st := f.Stats()
	if st.FleetInUse != 0 || st.TasksCompleted != 1 || st.TasksDispatched != 1 {
		t.Fatalf("post-completion stats %+v", st)
	}
	// A second result push for the same task is a stale duplicate.
	if err := f.PushResult(w.ID, a.TaskID, ResultPush{Doc: []byte("dup")}); !errors.Is(err, ErrGone) {
		t.Fatalf("duplicate result push: %v", err)
	}
}

func TestFleetExpiryRequeuesWithCheckpoints(t *testing.T) {
	f := newTestFleet(t)
	w1, _ := f.Register(RegisterRequest{ID: "w1", Capacity: 1})

	sink := &recordSink{}
	done := make(chan error, 1)
	go func() {
		_, _, err := f.Execute(context.Background(), task("job", 1), sink)
		done <- err
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	a, err := f.Poll(ctx, w1.ID, 5*time.Second)
	if err != nil || a == nil {
		t.Fatalf("poll: %v, %v", a, err)
	}
	if len(a.Checkpoints) != 0 {
		t.Fatalf("first dispatch carries %d checkpoints", len(a.Checkpoints))
	}
	key := "job-feedface-job"
	if err := f.PushCheckpoint(w1.ID, a.TaskID, key, 4_000, []byte("blob")); err != nil {
		t.Fatal(err)
	}
	if err := f.PushEvent(w1.ID, a.TaskID, TaskEvent{Type: "checkpoint", Key: "job", Cycle: 4_000}); err != nil {
		t.Fatal(err)
	}

	// w2 joins; w1 "dies" (manual expiry keeps the test clock-free).
	w2, _ := f.Register(RegisterRequest{ID: "w2", Capacity: 1})
	f.mu.Lock()
	f.workers[w1.ID].lastSeen = time.Now().Add(-time.Hour)
	f.mu.Unlock()
	f.expire(time.Now().Add(-f.opts.LeaseTTL))

	st := f.Stats()
	if st.WorkersLost != 1 || st.TasksRequeued != 1 || st.FleetCapacity != 1 {
		t.Fatalf("post-expiry stats %+v", st)
	}
	a2, err := f.Poll(ctx, w2.ID, 5*time.Second)
	if err != nil || a2 == nil {
		t.Fatalf("survivor poll: %v, %v", a2, err)
	}
	if a2.TaskID != a.TaskID {
		t.Fatalf("survivor got task %s, want migrated %s", a2.TaskID, a.TaskID)
	}
	blob, ok := a2.Checkpoints[key]
	if !ok || string(blob.Data) != "blob" || blob.Cycle != 4_000 {
		t.Fatalf("migrated assignment checkpoints = %+v", a2.Checkpoints)
	}
	// The dead worker wakes up and pushes: it must learn the task moved.
	if err := f.PushEvent(w1.ID, a.TaskID, TaskEvent{Type: "progress"}); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("stale worker push: %v", err)
	}
	if err := f.PushEvent(w2.ID, a2.TaskID, TaskEvent{Type: "resumed", Key: "job", Cycle: 4_000}); err != nil {
		t.Fatal(err)
	}
	if sink.resumed != 1 {
		t.Fatalf("sink.resumed = %d", sink.resumed)
	}
	if err := f.PushResult(w2.ID, a2.TaskID, ResultPush{Doc: []byte("doc")}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("execute: %v", err)
	}
}

// fakeBlobStore records persistence calls.
type fakeBlobStore struct {
	mu    sync.Mutex
	blobs map[string][]byte
}

func (s *fakeBlobStore) Save(key string, blob []byte, cycle uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blobs[key] = blob
	return nil
}

func (s *fakeBlobStore) Remove(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.blobs, key)
}

// TestFleetPersistLifecycle: uploaded blobs reach the persistent tier,
// and both drop paths — the worker's end-of-run DropCheckpoint and task
// completion — clean it up, so a checkpointing coordinator never
// accretes stale blobs for completed runs.
func TestFleetPersistLifecycle(t *testing.T) {
	store := &fakeBlobStore{blobs: map[string][]byte{}}
	f := NewFleet(FleetOptions{LeaseTTL: time.Minute, Persist: store})
	t.Cleanup(f.Close)
	w, _ := f.Register(RegisterRequest{ID: "w1", Capacity: 1})
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.Execute(context.Background(), task("job", 1), &recordSink{})
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	a, err := f.Poll(ctx, w.ID, 5*time.Second)
	if err != nil || a == nil {
		t.Fatalf("poll: %v, %v", a, err)
	}
	const key = "job-feedface-job"
	if err := f.PushCheckpoint(w.ID, a.TaskID, key, 100, []byte("b1")); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.blobs[key]; !ok {
		t.Fatal("uploaded blob never reached the persistent tier")
	}
	if err := f.DropCheckpoint(w.ID, a.TaskID, key); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.blobs[key]; ok {
		t.Fatal("DropCheckpoint left the persisted blob behind")
	}
	// Second blob with no explicit drop: completion must clean it.
	if err := f.PushCheckpoint(w.ID, a.TaskID, key, 200, []byte("b2")); err != nil {
		t.Fatal(err)
	}
	if err := f.PushResult(w.ID, a.TaskID, ResultPush{Doc: []byte("doc")}); err != nil {
		t.Fatal(err)
	}
	<-done
	if _, ok := store.blobs[key]; ok {
		t.Fatal("task completion left the persisted blob behind")
	}
}

func TestFleetExpiryOfLastWorkerFailsOver(t *testing.T) {
	f := newTestFleet(t)
	w1, _ := f.Register(RegisterRequest{ID: "w1", Capacity: 1})
	done := make(chan error, 1)
	go func() {
		_, _, err := f.Execute(context.Background(), task("job", 1), &recordSink{})
		done <- err
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if a, err := f.Poll(ctx, w1.ID, 5*time.Second); err != nil || a == nil {
		t.Fatalf("poll: %v, %v", a, err)
	}
	f.mu.Lock()
	f.workers[w1.ID].lastSeen = time.Now().Add(-time.Hour)
	f.mu.Unlock()
	f.expire(time.Now().Add(-f.opts.LeaseTTL))
	if err := <-done; !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("execute after fleet emptied: %v, want ErrNoWorkers (local fallback)", err)
	}
}

func TestFleetCancelQueuedTask(t *testing.T) {
	f := newTestFleet(t)
	w, _ := f.Register(RegisterRequest{ID: "busy", Capacity: 1})
	_ = w

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := f.Execute(ctx, task("job", 1), &recordSink{})
		done <- err
	}()
	// The task is queued (nobody polls). Cancelling the job must
	// terminate Execute without a worker in the loop.
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled queued execute: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled queued execute never returned")
	}
	if got := f.Stats().TasksQueued; got != 0 {
		t.Fatalf("queue still holds %d tasks after cancel", got)
	}
}

// TestFleetCancelAssignedTask: a cancelled assigned task is delivered
// to the worker via heartbeat, and its cancel acknowledgment completes
// the pending.
func TestFleetCancelAssignedTask(t *testing.T) {
	f := newTestFleet(t)
	w, _ := f.Register(RegisterRequest{ID: "w1", Capacity: 1})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := f.Execute(ctx, task("job", 1), &recordSink{})
		done <- err
	}()
	pctx, pcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer pcancel()
	a, err := f.Poll(pctx, w.ID, 5*time.Second)
	if err != nil || a == nil {
		t.Fatalf("poll: %v, %v", a, err)
	}
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for {
		hb, err := f.Heartbeat(w.ID)
		if err != nil {
			t.Fatal(err)
		}
		if len(hb.CancelTasks) == 1 && hb.CancelTasks[0] == a.TaskID {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("heartbeat never delivered the cancellation: %+v", hb)
		}
		time.Sleep(time.Millisecond)
	}
	// Worker-side pushes for a cancelled task report gone…
	if err := f.PushEvent(w.ID, a.TaskID, TaskEvent{Type: "progress"}); !errors.Is(err, ErrGone) {
		t.Fatalf("push on cancelled task: %v", err)
	}
	// …and the cancel acknowledgment resolves the pending.
	if err := f.PushResult(w.ID, a.TaskID, ResultPush{Canceled: true}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("execute: %v", err)
	}
	if st := f.Stats(); st.FleetInUse != 0 {
		t.Fatalf("slots leak after cancel: %+v", st)
	}
}

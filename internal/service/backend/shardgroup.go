package backend

import (
	"context"
	"sync"

	"hornet/internal/sim"
)

// ShardGroup is the coordinator-side rendezvous of one space-parallel
// task's members: a vote barrier for synchronization points (Sync), a
// statistics barrier for the final exchange (Gather), and the
// staged→stable promotion of member checkpoints that makes losing a
// member survivable.
//
// Checkpoint promotion: members autosave at group-global cycle
// boundaries (the chunk cadence is pinned to absolute multiples of
// CheckpointEvery, and the members run in cycle lockstep), so every
// member uploads a blob for the same cycles. A cycle becomes the
// group's stable restart point only once ALL members' blobs for it have
// arrived — a partial set is useless, because restarting some members
// at cycle C and others at C' would violate the lockstep the boundary
// exchange depends on.
//
// Member loss: MemberLost bumps the group epoch. Every blocked or
// subsequent Sync/Gather call carrying the old epoch gets a
// ShardRestart answer — roll back to the stable cycle (0 = rebuild
// from scratch) and rejoin at the new epoch. Determinism makes the
// rollback cheap to reason about: re-executed chunks re-produce
// byte-identical state, so survivors that were AHEAD of the stable
// cycle converge to exactly the trajectory they already ran.
type ShardGroup struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int

	epoch     int
	cancelled error

	// Sync-barrier state for the current round within the epoch.
	syncRound  int
	votes      []sim.ShardVote
	boundaries [][]byte
	decision   sim.ShardDecision
	decErr     error
	syncOut    [][]byte

	// Gather-barrier state.
	gatherRound int
	gatherIn    [][]byte
	gatherOut   [][]byte

	// staged[cycle][member] holds uploaded-but-not-yet-promoted blobs;
	// stable is the latest complete set.
	staged      map[uint64][]*stagedBlob
	stable      []*stagedBlob
	stableCycle uint64
}

// stagedBlob is one member's uploaded checkpoint: the store key it was
// saved under (needed to seed a re-dispatched member's assignment) plus
// the blob itself.
type stagedBlob struct {
	Key   string
	Cycle uint64
	Data  []byte
}

// NewShardGroup builds the rendezvous for n members.
func NewShardGroup(n int) *ShardGroup {
	g := &ShardGroup{n: n, staged: map[uint64][]*stagedBlob{}}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Members returns the group size.
func (g *ShardGroup) Members() int { return g.n }

// Epoch returns the current restart epoch.
func (g *ShardGroup) Epoch() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.epoch
}

// restartLocked snapshots the rollback notice for the current epoch.
func (g *ShardGroup) restartLocked() *ShardRestart {
	return &ShardRestart{Epoch: g.epoch, Cycle: g.stableCycle}
}

// wakeOnDone broadcasts the group condition when ctx is cancelled so
// barrier waiters can observe the cancellation.
func (g *ShardGroup) wakeOnDone(ctx context.Context) func() bool {
	return context.AfterFunc(ctx, func() {
		g.mu.Lock()
		g.cond.Broadcast()
		g.mu.Unlock()
	})
}

// Sync is one member's arrival at a synchronization point: its vote and
// boundary payload join the round; the call blocks until all n members
// have arrived, then every caller receives the group decision and all
// payloads. A non-nil ShardRestart (with nil error) tells the member
// the group rolled back — rejoin at the returned epoch from the stable
// cycle.
func (g *ShardGroup) Sync(ctx context.Context, epoch int, vote sim.ShardVote, boundary []byte) (sim.ShardDecision, [][]byte, *ShardRestart, error) {
	defer g.wakeOnDone(ctx)()
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.cancelled != nil {
		return sim.ShardDecision{}, nil, nil, g.cancelled
	}
	if epoch != g.epoch {
		return sim.ShardDecision{}, nil, g.restartLocked(), nil
	}
	myRound := g.syncRound
	g.votes = append(g.votes, vote)
	g.boundaries = append(g.boundaries, boundary)
	if len(g.votes) == g.n {
		g.decision, g.decErr = sim.DecideShardSync(g.votes)
		g.syncOut = g.boundaries
		g.votes, g.boundaries = nil, nil
		g.syncRound++
		g.cond.Broadcast()
		return g.decision, g.syncOut, nil, g.decErr
	}
	for g.syncRound == myRound && g.epoch == epoch && g.cancelled == nil && ctx.Err() == nil {
		g.cond.Wait()
	}
	switch {
	case g.cancelled != nil:
		return sim.ShardDecision{}, nil, nil, g.cancelled
	case g.epoch != epoch:
		// The round was torn down by MemberLost; this member's vote was
		// discarded with it.
		return sim.ShardDecision{}, nil, g.restartLocked(), nil
	case g.syncRound != myRound:
		return g.decision, g.syncOut, nil, g.decErr
	default:
		return sim.ShardDecision{}, nil, nil, ctx.Err()
	}
}

// Gather is the end-of-run statistics exchange: each member contributes
// its per-span payload and receives everyone's, so every member can
// reconstruct the full per-tile statistics.
func (g *ShardGroup) Gather(ctx context.Context, epoch int, payload []byte) ([][]byte, *ShardRestart, error) {
	defer g.wakeOnDone(ctx)()
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.cancelled != nil {
		return nil, nil, g.cancelled
	}
	if epoch != g.epoch {
		return nil, g.restartLocked(), nil
	}
	myRound := g.gatherRound
	g.gatherIn = append(g.gatherIn, payload)
	if len(g.gatherIn) == g.n {
		g.gatherOut = g.gatherIn
		g.gatherIn = nil
		g.gatherRound++
		g.cond.Broadcast()
		return g.gatherOut, nil, nil
	}
	for g.gatherRound == myRound && g.epoch == epoch && g.cancelled == nil && ctx.Err() == nil {
		g.cond.Wait()
	}
	switch {
	case g.cancelled != nil:
		return nil, nil, g.cancelled
	case g.epoch != epoch:
		return nil, g.restartLocked(), nil
	case g.gatherRound != myRound:
		return g.gatherOut, nil, nil
	default:
		return nil, nil, ctx.Err()
	}
}

// Stage records one member's uploaded checkpoint blob and promotes the
// cycle to stable once all n members' blobs for it have arrived. It
// reports whether this upload completed a promotion, so the fleet can
// persist and journal the consistent set exactly once — staged blobs
// ahead of the stable cycle must never reach the persist tier, or a
// restarted coordinator could seed members at mismatched cycles.
func (g *ShardGroup) Stage(member int, key string, cycle uint64, data []byte) (promoted bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if member < 0 || member >= g.n {
		return false
	}
	if g.stable != nil && cycle <= g.stableCycle {
		return false // already promoted past this point
	}
	set := g.staged[cycle]
	if set == nil {
		set = make([]*stagedBlob, g.n)
		g.staged[cycle] = set
	}
	set[member] = &stagedBlob{Key: key, Cycle: cycle, Data: data}
	for _, b := range set {
		if b == nil {
			return false
		}
	}
	g.stable, g.stableCycle = set, cycle
	for c := range g.staged {
		if c <= cycle {
			delete(g.staged, c)
		}
	}
	return true
}

// StableEntry is one member's blob inside the group's stable set, in
// member order.
type StableEntry struct {
	Key   string
	Cycle uint64
	Data  []byte
}

// StableSet returns the group's current stable checkpoint set (member
// order) and its cycle; ok=false when no complete set has been
// promoted yet. The slice headers are copies; the blob bytes are
// shared and must be treated as read-only.
func (g *ShardGroup) StableSet() (cycle uint64, set []StableEntry, ok bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.stable == nil {
		return 0, nil, false
	}
	set = make([]StableEntry, len(g.stable))
	for i, b := range g.stable {
		set[i] = StableEntry{Key: b.Key, Cycle: b.Cycle, Data: b.Data}
	}
	return g.stableCycle, set, true
}

// StableBlob returns the stable checkpoint of one member (ok=false when
// the group has no complete checkpoint set yet — restart from scratch).
func (g *ShardGroup) StableBlob(member int) (key string, blob Blob, ok bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.stable == nil || member < 0 || member >= g.n {
		return "", Blob{}, false
	}
	b := g.stable[member]
	return b.Key, Blob{Cycle: b.Cycle, Data: b.Data}, true
}

// MemberLost rolls the group back: the epoch advances, the current
// barrier rounds are torn down (waiters observe the epoch change and
// receive a ShardRestart), and un-promoted staged blobs are discarded —
// after the rollback the members re-execute and re-upload them
// byte-identically anyway.
func (g *ShardGroup) MemberLost() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.cancelled != nil {
		return
	}
	g.epoch++
	g.syncRound, g.gatherRound = 0, 0
	g.votes, g.boundaries = nil, nil
	g.gatherIn = nil
	g.staged = map[uint64][]*stagedBlob{}
	g.cond.Broadcast()
}

// Cancel aborts the group: every current and future barrier call
// returns err. Without this, cancelling a sharded task would leave its
// surviving members parked forever in a barrier no one else will reach.
func (g *ShardGroup) Cancel(err error) {
	if err == nil {
		err = context.Canceled
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.cancelled == nil {
		g.cancelled = err
	}
	g.cond.Broadcast()
}

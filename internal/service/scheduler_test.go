package service

import (
	"context"
	"strings"
	"testing"
	"time"
)

// A panic during scenario execution must become a failed job, never a
// dead daemon: the experiments package panics on bad runs, and that
// panic reaches the scheduler worker through Figure.Document.
func TestRunJobSurvivesScenarioPanic(t *testing.T) {
	results := newResultStore("")
	s := newScheduler(1, 1, 0, results, newExecEnv("", 0), nil)
	defer s.stop()

	// A zero-value Figure has a nil runner: invoking it panics, standing
	// in for any panic out of figure execution.
	sc := &scenario{kind: KindFigure, name: "boom", hash: "feedfacefeedface", seed: 1}
	j := newJob("job-test", SubmitRequest{}, sc, context.Background(), time.Now())

	s.runJob(j)

	info := j.Info()
	if info.State != StateFailed {
		t.Fatalf("job state = %s, want %s", info.State, StateFailed)
	}
	if !strings.Contains(info.Error, "panicked") {
		t.Fatalf("job error %q does not mention the panic", info.Error)
	}
	// The scheduler worker pool must still be alive and usable.
	ok := &scenario{kind: KindBatch, name: "ok", hash: "0000000000000000", seed: 1}
	j2 := newJob("job-test-2", SubmitRequest{}, ok, context.Background(), time.Now())
	s.runJob(j2)
	if got := j2.Info().State; got != StateDone {
		t.Fatalf("follow-up job state = %s, want %s", got, StateDone)
	}
}

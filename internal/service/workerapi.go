package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"hornet/internal/service/backend"
	"hornet/internal/snapshot"
)

// Worker-fleet protocol handlers. These are the coordinator half of the
// hornet-worker conversation; the worker half lives in
// internal/service/worker. Errors map onto the job API's envelope:
// an unknown worker is 404 worker_unknown (the worker re-registers), a
// push for a task no longer assigned is 410 task_gone (the worker
// abandons the run).

// Error codes specific to the worker protocol.
const (
	CodeWorkerUnknown = "worker_unknown"
	CodeTaskGone      = "task_gone"
)

// maxCheckpointBlob bounds one uploaded snapshot blob (full-system
// states are hundreds of KB to a few MB; a 4096-node mesh stays well
// under this).
const maxCheckpointBlob = 256 << 20

func (s *Server) writeFleetError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, backend.ErrUnknownWorker):
		writeError(w, http.StatusNotFound, &APIError{Code: CodeWorkerUnknown, Message: err.Error()})
	case errors.Is(err, backend.ErrGone):
		writeError(w, http.StatusGone, &APIError{Code: CodeTaskGone, Message: err.Error()})
	case errors.Is(err, backend.ErrNoWorkers):
		writeError(w, http.StatusServiceUnavailable, &APIError{Code: CodeShuttingDown, Message: err.Error()})
	default:
		writeError(w, http.StatusBadRequest, &APIError{Code: CodeInvalidRequest, Message: err.Error()})
	}
}

func (s *Server) handleWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.fleet.WorkersInfo())
}

func (s *Server) handleWorkerRegister(w http.ResponseWriter, r *http.Request) {
	var req backend.RegisterRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, &APIError{Code: CodeInvalidRequest,
			Message: "malformed register body: " + err.Error()})
		return
	}
	if req.ID != "" && !nameRE.MatchString(req.ID) {
		writeError(w, http.StatusBadRequest, &APIError{Code: CodeInvalidRequest,
			Message: "worker id must match [a-zA-Z0-9._-]{1,64}"})
		return
	}
	resp, err := s.fleet.Register(req)
	if err != nil {
		s.writeFleetError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleWorkerDeregister(w http.ResponseWriter, r *http.Request) {
	if err := s.fleet.Deregister(r.PathValue("id")); err != nil {
		s.writeFleetError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deregistered"})
}

func (s *Server) handleWorkerHeartbeat(w http.ResponseWriter, r *http.Request) {
	resp, err := s.fleet.Heartbeat(r.PathValue("id"))
	if err != nil {
		s.writeFleetError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleWorkerPoll long-polls for the worker's next assignment
// (?wait=25s); 200 carries an Assignment, 204 means "nothing yet, poll
// again".
func (s *Server) handleWorkerPoll(w http.ResponseWriter, r *http.Request) {
	wait := 25 * time.Second
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		d, err := time.ParseDuration(waitStr)
		if err != nil || d < 0 {
			writeError(w, http.StatusBadRequest, &APIError{Code: CodeInvalidRequest,
				Message: fmt.Sprintf("bad wait duration %q", waitStr)})
			return
		}
		if d > 5*time.Minute {
			d = 5 * time.Minute
		}
		wait = d
	}
	a, err := s.fleet.Poll(r.Context(), r.PathValue("id"), wait)
	if err != nil {
		if r.Context().Err() != nil {
			return // client went away mid-poll
		}
		s.writeFleetError(w, err)
		return
	}
	if a == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, a)
}

func (s *Server) handleWorkerEvent(w http.ResponseWriter, r *http.Request) {
	var ev backend.TaskEvent
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&ev); err != nil {
		writeError(w, http.StatusBadRequest, &APIError{Code: CodeInvalidRequest,
			Message: "malformed event body: " + err.Error()})
		return
	}
	if err := s.fleet.PushEvent(r.PathValue("id"), r.PathValue("task"), ev); err != nil {
		s.writeFleetError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleWorkerCheckpoint receives one snapshot blob as the raw request
// body (no JSON/base64 overhead); ?cycle= carries the snapshot clock.
func (s *Server) handleWorkerCheckpoint(w http.ResponseWriter, r *http.Request) {
	cycle, _ := strconv.ParseUint(r.URL.Query().Get("cycle"), 10, 64)
	blob, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxCheckpointBlob))
	if err != nil {
		writeError(w, http.StatusBadRequest, &APIError{Code: CodeInvalidRequest,
			Message: "reading checkpoint blob: " + err.Error()})
		return
	}
	// Admission check: a blob that fails the container envelope (magic,
	// version, CRC) can never resume anything — reject it here so a
	// corrupting transport is visible at upload time, not mid-migration.
	if err := snapshot.Verify(blob); err != nil {
		writeError(w, http.StatusBadRequest, &APIError{Code: CodeInvalidRequest,
			Message: "checkpoint blob rejected: " + err.Error()})
		return
	}
	if err := s.fleet.PushCheckpoint(r.PathValue("id"), r.PathValue("task"),
		r.PathValue("key"), cycle, blob); err != nil {
		s.writeFleetError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleWorkerCheckpointDrop(w http.ResponseWriter, r *http.Request) {
	if err := s.fleet.DropCheckpoint(r.PathValue("id"), r.PathValue("task"),
		r.PathValue("key")); err != nil {
		s.writeFleetError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleWorkerShardSync is one member's synchronization-point call: it
// blocks until every sibling has arrived (or the group rolls back /
// cancels) and answers with the group decision plus all boundary
// payloads. Long-blocking by design — the fleet wakes it on client
// disconnect via r.Context().
func (s *Server) handleWorkerShardSync(w http.ResponseWriter, r *http.Request) {
	var req backend.ShardSyncRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxCheckpointBlob))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, &APIError{Code: CodeInvalidRequest,
			Message: "malformed shard sync body: " + err.Error()})
		return
	}
	resp, err := s.fleet.ShardSync(r.Context(), r.PathValue("id"), r.PathValue("task"), req)
	if err != nil {
		if r.Context().Err() != nil {
			return // client went away mid-barrier
		}
		s.writeFleetError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleWorkerShardGather is the final statistics exchange, same
// blocking shape as shardsync.
func (s *Server) handleWorkerShardGather(w http.ResponseWriter, r *http.Request) {
	var req backend.ShardGatherRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxCheckpointBlob))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, &APIError{Code: CodeInvalidRequest,
			Message: "malformed shard gather body: " + err.Error()})
		return
	}
	resp, err := s.fleet.ShardGather(r.Context(), r.PathValue("id"), r.PathValue("task"), req)
	if err != nil {
		if r.Context().Err() != nil {
			return
		}
		s.writeFleetError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleWorkerShardCheckpoint serves the calling member's blob of the
// group's stable checkpoint after a rollback notice (Blob null: no
// complete stable set — rebuild from cycle 0).
func (s *Server) handleWorkerShardCheckpoint(w http.ResponseWriter, r *http.Request) {
	blob, ok, err := s.fleet.ShardStableBlob(r.PathValue("id"), r.PathValue("task"))
	if err != nil {
		s.writeFleetError(w, err)
		return
	}
	var resp backend.ShardCheckpointResponse
	if ok {
		resp.Blob = &blob
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleWorkerResult(w http.ResponseWriter, r *http.Request) {
	var res backend.ResultPush
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxCheckpointBlob))
	if err := dec.Decode(&res); err != nil {
		writeError(w, http.StatusBadRequest, &APIError{Code: CodeInvalidRequest,
			Message: "malformed result body: " + err.Error()})
		return
	}
	if err := s.fleet.PushResult(r.PathValue("id"), r.PathValue("task"), res); err != nil {
		s.writeFleetError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

package service

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"hornet/internal/experiments"
	"hornet/internal/obs"
	"hornet/internal/service/backend"
	"hornet/internal/service/journal"
)

// Options configures a Server.
type Options struct {
	// MaxJobs is the number of jobs in flight at once; 0 means 2.
	MaxJobs int
	// Budget is the shared CPU-slot pool capacity all concurrent jobs
	// draw from; 0 means GOMAXPROCS (sweep.NewBudget clamps to >= 1).
	Budget int
	// CacheDir, if non-empty, persists result documents on disk
	// (name-hash.json, the same layout hornet-exp -out writes).
	CacheDir string

	// CheckpointDir, if non-empty, enables the checkpoint subsystem:
	// warmup snapshots persist there (warmup-<key>.snap) and config/batch
	// runs autosave their state (ckpt-<name>-<hash>-<key>.snap) every
	// CheckpointEvery cycles, so a restarted daemon resumes a resubmitted
	// job from its last snapshot instead of cycle 0.
	CheckpointDir string
	// CheckpointEvery is the autosave period in simulated cycles;
	// 0 means 100000. Fast-forwarding configurations autosave too: a
	// resumed chunk re-derives any skip the boundary interrupted, so
	// the cadence never leaks into result bytes.
	CheckpointEvery uint64

	// WorkerTTL is how long a silent hornet-worker stays registered
	// before the fleet declares it dead and migrates its tasks to the
	// survivors (checkpoints included); 0 means 15s. Workers heartbeat
	// at a third of this.
	WorkerTTL time.Duration

	// JobTTL, if positive, expires finished job records that many
	// wall-clock units after completion (GET then returns 404); cached
	// result documents are retained and keep serving resubmissions.
	JobTTL time.Duration
	// CacheMaxEntries / CacheMaxBytes bound the in-memory result cache
	// with LRU eviction; 0 means unbounded. Disk-tier entries survive
	// eviction and refault on demand.
	CacheMaxEntries int
	CacheMaxBytes   int64

	// TelemetryEvery is the wall-clock cadence at which running jobs'
	// machine telemetry (per-tile flit counters, per-link buffer
	// occupancy) is forwarded from executors to the job's merged view;
	// 0 means 500ms, negative disables telemetry entirely (locally
	// executed jobs then keep the engine's nil-sampler fast path).
	TelemetryEvery time.Duration

	// StallAfter arms the stall watchdog: a running job whose executors
	// report no forward progress — or a job stuck in the queue no
	// scheduler worker ever picked up — for this long is flagged (Warn
	// log, hornet_job_stalls_total, a "stalled" trace instant and SSE
	// event). 0 disables the watchdog.
	StallAfter time.Duration

	// JournalDir, if non-empty, makes the coordinator durable: every
	// submit, state transition, fleet assignment, sharded stable-set
	// promotion and result key appends to a write-ahead log
	// (journal.wal) in this directory. On startup the journal is
	// replayed: finished jobs are rebuilt from the result cache,
	// in-flight ones re-enqueue from their persisted checkpoints, and
	// their still-running fleet executions are re-adopted when the
	// workers re-register. Pair it with CheckpointDir (checkpoint blobs
	// are what restored jobs resume from).
	JournalDir string

	// QueueDepth bounds accepted-but-unstarted jobs; submissions beyond
	// it get 429 queue_full with a Retry-After. 0 means 1024.
	QueueDepth int

	// TraceEventCap bounds each job's trace timeline; 0 means the
	// obs.Timeline default (512 events). Events beyond the cap are
	// dropped and counted in hornet_trace_dropped_events_total.
	TraceEventCap int

	// Logger receives structured diagnostics from every server
	// component (scheduler, fleet, checkpoint layer); nil discards them.
	Logger *slog.Logger
}

// Server is the hornet-serve HTTP handler plus its scheduler and stores.
// Create with New, mount as an http.Handler, Close on shutdown.
type Server struct {
	mux     *http.ServeMux
	jobs    *jobStore
	results *resultStore
	sched   *scheduler
	env     *execEnv
	fleet   *backend.Fleet
	log     *slog.Logger
	metrics *serveMetrics

	// jrnl is the write-ahead job journal (nil without Options.JournalDir).
	// Appends happen outside job.mu — see restore.go for the ordering rule.
	jrnl         *journal.Journal
	jobsRestored atomic.Uint64
	journalErrs  atomic.Uint64
	compacting   atomic.Bool

	jobsExpired atomic.Uint64
	// traceCap is the per-job timeline bound (Options.TraceEventCap);
	// traceDroppedExpired banks the dropped-event counts of expired jobs
	// so hornet_trace_dropped_events_total stays monotone.
	traceCap            int
	traceDroppedExpired atomic.Uint64
	jobStalls           atomic.Uint64
	closeOnce           sync.Once
	janitorStop         chan struct{}
	janitorDone         chan struct{}
	watchdogDone        chan struct{}
}

// New builds a serving stack: job store, result cache, scheduler workers.
// A journal that fails to open is logged and disabled rather than fatal;
// callers that need durability guaranteed should use NewDurable.
func New(opts Options) *Server {
	s, err := build(opts)
	if err != nil {
		log := opts.Logger
		if log == nil {
			log = obs.Nop()
		}
		log.Error("job journal disabled", slog.String(obs.KeyComponent, "journal"),
			slog.String("dir", opts.JournalDir), obs.Err(err))
		opts.JournalDir = ""
		s, _ = build(opts)
	}
	return s
}

// NewDurable is New for deployments where the journal is load-bearing:
// a journal that cannot be opened or replayed is a hard error instead of
// a silently non-durable coordinator.
func NewDurable(opts Options) (*Server, error) {
	return build(opts)
}

func build(opts Options) (*Server, error) {
	maxJobs := opts.MaxJobs
	if maxJobs < 1 {
		maxJobs = 2
	}
	every := opts.CheckpointEvery
	if every == 0 {
		every = 100_000
	}
	log := opts.Logger
	if log == nil {
		log = obs.Nop()
	}
	results := newResultStore(opts.CacheDir)
	results.setBounds(opts.CacheMaxEntries, opts.CacheMaxBytes)
	env := newExecEnv(opts.CheckpointDir, every)
	env.log = obs.Component(log, "checkpoint")
	env.telEvery = opts.TelemetryEvery
	fleet := backend.NewFleet(backend.FleetOptions{
		LeaseTTL:        opts.WorkerTTL,
		CheckpointEvery: every,
		// With a checkpoint directory, migration blobs also persist on
		// disk under the same content address the local backend reads,
		// so jobs survive a worker death plus a coordinator restart.
		Persist: env.store,
		Logger:  obs.Component(log, "fleet"),
	})
	s := &Server{
		mux:          http.NewServeMux(),
		jobs:         newJobStore(),
		results:      results,
		env:          env,
		fleet:        fleet,
		log:          log,
		traceCap:     opts.TraceEventCap,
		sched:        newScheduler(maxJobs, opts.Budget, opts.QueueDepth, results, env, fleet),
		janitorStop:  make(chan struct{}),
		janitorDone:  make(chan struct{}),
		watchdogDone: make(chan struct{}),
	}
	s.metrics = newServeMetrics(s)
	s.sched.log = obs.Component(log, "scheduler")
	s.sched.metrics = s.metrics
	if opts.JournalDir != "" {
		jrnl, recs, err := journal.Open(opts.JournalDir)
		if err != nil {
			s.fleet.Close()
			s.sched.stop()
			close(s.janitorStop)
			return nil, fmt.Errorf("open job journal: %w", err)
		}
		s.jrnl = jrnl
		// The fleet journals assignments and stable-set promotions itself
		// (it is the component that learns about them first).
		fleet.SetJournal(serverJournal{s})
		s.restore(recs)
	}
	go s.janitor(opts.JobTTL)
	go s.watchdog(opts.StallAfter)
	s.mux.Handle("GET /metrics", s.metrics.reg.Handler())
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /api/v1/figures", s.handleFigures)
	s.mux.HandleFunc("GET /api/v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("POST /api/v1/validate", s.handleValidate)
	s.mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/telemetry", s.handleTelemetry)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/trace", s.handleTrace)

	// Worker-fleet protocol (see internal/service/backend): registration,
	// long-poll dispatch, heartbeats, progress/checkpoint/result pushes.
	s.mux.HandleFunc("GET /api/v1/workers", s.handleWorkers)
	s.mux.HandleFunc("POST /api/v1/workers", s.handleWorkerRegister)
	s.mux.HandleFunc("DELETE /api/v1/workers/{id}", s.handleWorkerDeregister)
	s.mux.HandleFunc("POST /api/v1/workers/{id}/heartbeat", s.handleWorkerHeartbeat)
	s.mux.HandleFunc("POST /api/v1/workers/{id}/poll", s.handleWorkerPoll)
	s.mux.HandleFunc("POST /api/v1/workers/{id}/tasks/{task}/events", s.handleWorkerEvent)
	s.mux.HandleFunc("PUT /api/v1/workers/{id}/tasks/{task}/checkpoints/{key}", s.handleWorkerCheckpoint)
	s.mux.HandleFunc("DELETE /api/v1/workers/{id}/tasks/{task}/checkpoints/{key}", s.handleWorkerCheckpointDrop)
	s.mux.HandleFunc("POST /api/v1/workers/{id}/tasks/{task}/result", s.handleWorkerResult)
	// Shard-group coordination (space-parallel tasks): per-sync-point
	// barrier exchange, final statistics gather, stable-checkpoint fetch
	// after a group rollback.
	s.mux.HandleFunc("POST /api/v1/workers/{id}/tasks/{task}/shardsync", s.handleWorkerShardSync)
	s.mux.HandleFunc("POST /api/v1/workers/{id}/tasks/{task}/shardgather", s.handleWorkerShardGather)
	s.mux.HandleFunc("GET /api/v1/workers/{id}/tasks/{task}/shardcheckpoint", s.handleWorkerShardCheckpoint)
	return s, nil
}

// ServeHTTP implements http.Handler. It resolves the route through the
// mux itself so every request is measured under its route pattern (not
// its raw path — unbounded label cardinality would bloat the registry).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Handler only resolves the pattern; dispatch still goes through the
	// mux's own ServeHTTP, which is what binds the path values.
	_, pattern := s.mux.Handler(r)
	if pattern == "" {
		pattern = "unmatched"
	}
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	start := time.Now()
	s.mux.ServeHTTP(sw, r)
	s.metrics.observeHTTP(pattern, sw.code, time.Since(start))
}

// Close cancels all in-flight jobs and stops the scheduler workers.
// Call after the HTTP listener has stopped accepting requests.
// Idempotent: shutdown paths often race (signal handler vs deferred
// cleanup), and a second Close must be a no-op, not a panic.
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.janitorStop) })
	<-s.janitorDone
	<-s.watchdogDone
	// Close the journal before cancelling anything: graceful-shutdown
	// cancellations must NOT be journaled, so that still-queued and
	// in-flight jobs replay as live work on the next start instead of
	// restoring as canceled.
	if s.jrnl != nil {
		s.jrnl.Close()
	}
	// Cancel jobs before closing the fleet: remote tasks the closing
	// fleet hands back then see their cancelled context and terminate,
	// instead of failing over into a doomed local re-execution. The
	// fleet closes before the scheduler drains so no drain waits on a
	// dead worker.
	s.sched.cancelJobs()
	s.fleet.Close()
	s.sched.stop()
	now := time.Now()
	for _, j := range s.jobs.all() {
		j.cancel()
		j.markCanceled(now) // no-op for jobs already terminal
	}
}

// janitor enforces the finished-job retention TTL. With no TTL it just
// parks until Close.
func (s *Server) janitor(ttl time.Duration) {
	defer close(s.janitorDone)
	if ttl <= 0 {
		<-s.janitorStop
		return
	}
	period := ttl / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	if period > time.Minute {
		period = time.Minute
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			if n, traceDropped := s.jobs.expire(time.Now().Add(-ttl)); n > 0 {
				s.jobsExpired.Add(uint64(n))
				// Bank the expired jobs' dropped-event counts so the
				// trace-dropped counter never moves backwards.
				s.traceDroppedExpired.Add(uint64(traceDropped))
				s.log.Debug("expired finished jobs", slog.String(obs.KeyComponent, "janitor"), slog.Int("count", n))
			}
		case <-s.janitorStop:
			return
		}
	}
}

// watchdog flags running jobs whose executors stop reporting forward
// progress (simulation clock not advancing) for at least window: one
// Warn log, one hornet_job_stalls_total increment, one "stalled" trace
// instant and SSE event per episode. With no window it parks until
// Close, like the janitor.
func (s *Server) watchdog(window time.Duration) {
	defer close(s.watchdogDone)
	if window <= 0 {
		<-s.janitorStop
		return
	}
	period := window / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	if period > time.Minute {
		period = time.Minute
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			now := time.Now()
			for _, j := range s.jobs.all() {
				if j.checkStall(now, window) {
					s.jobStalls.Add(1)
					info := j.Info()
					s.log.Warn("job stalled: no forward progress",
						slog.String(obs.KeyComponent, "watchdog"), obs.Job(info.ID),
						slog.String("state", string(info.State)),
						slog.String("backend", info.Backend),
						slog.Duration("window", window))
				}
			}
		case <-s.janitorStop:
			return
		}
	}
}

// Stats snapshots scheduler and cache state (also GET /api/v1/stats).
func (s *Server) Stats() ServerStats {
	counts := s.jobs.countByState()
	return ServerStats{
		BudgetCap:    s.sched.pool.Cap(),
		BudgetInUse:  s.sched.pool.InUse(),
		BudgetPeak:   s.sched.pool.Peak(),
		JobsQueued:   counts[StateQueued],
		JobsRunning:  counts[StateRunning],
		JobsDone:     counts[StateDone],
		JobsFailed:   counts[StateFailed],
		JobsCanceled: counts[StateCanceled],

		CacheEntries:   s.results.Len(),
		CacheHits:      s.results.Hits(),
		CacheMisses:    s.results.Misses(),
		CacheWriteErrs: s.results.WriteErrs(),
		CacheEvictions: s.results.Evictions(),

		JobsExpired:   s.jobsExpired.Load(),
		CoalescedJobs: s.sched.coalesced.Load(),

		WarmupHits:   s.env.warm.Hits(),
		WarmupMisses: s.env.warm.Misses(),

		CheckpointsWritten:  s.env.counters.checkpointsWritten.Load(),
		CheckpointWriteErrs: s.env.counters.checkpointWriteErr.Load(),
		RunsResumed:         s.env.counters.runsResumed.Load(),

		RemoteJobs:   s.sched.remoteJobs.Load(),
		FallbackJobs: s.sched.fallbackJobs.Load(),
		Fleet:        s.fleet.Stats(),

		JobsRestored: s.jobsRestored.Load(),
		JournalErrs:  s.journalErrs.Load(),
		Journal:      s.journalStats(),
	}
}

// journalStats snapshots the WAL counters; zero value without a journal.
func (s *Server) journalStats() JournalStats {
	if s.jrnl == nil {
		return JournalStats{}
	}
	appended, compactions, replayed, truncated := s.jrnl.Stats()
	return JournalStats{
		Enabled:       true,
		Appended:      appended,
		Compactions:   compactions,
		Replayed:      replayed,
		TruncatedTail: truncated,
		LiveRecords:   s.jrnl.Since(),
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleFigures(w http.ResponseWriter, r *http.Request) {
	var out []FigureInfo
	for _, f := range experiments.Figures() {
		out = append(out, FigureInfo{Name: f.Name, Title: f.Title, Serial: f.Serial})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, &APIError{Code: CodeInvalidRequest,
			Message: "malformed request body: " + err.Error()})
		return
	}
	sc, apiErr := buildScenario(req)
	if apiErr != nil {
		writeError(w, http.StatusBadRequest, apiErr)
		return
	}
	j := newJob(s.jobs.nextID(), req, sc, s.sched.baseCtx, time.Now())
	j.trace.SetCap(s.traceCap)
	if s.jrnl != nil {
		j.onState = s.journalState
	}
	s.jobs.add(j)
	// Journal the submit before enqueueing: once the scheduler has the
	// job it can transition (and journal) states at any moment, and a
	// state record without its submit record is unreplayable.
	s.journalSubmit(j)
	if apiErr := s.sched.submit(j); apiErr != nil {
		j.fail(apiErr.Message, time.Now())
		j.cancel() // never enqueued: release its context registration
		status := http.StatusServiceUnavailable
		if apiErr.Code == CodeQueueFull {
			// Backpressure, not an outage: tell well-behaved clients when
			// to come back instead of letting them hammer the queue.
			status = http.StatusTooManyRequests
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, status, apiErr)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Info())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.jobs.list())
}

// handleJob returns the job snapshot. With ?wait=DURATION it long-polls:
// the response is delayed until the job reaches a terminal state or the
// wait elapses, whichever is first.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, &APIError{Code: CodeNotFound, Message: "no such job"})
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		wait, err := time.ParseDuration(waitStr)
		if err != nil || wait < 0 {
			writeError(w, http.StatusBadRequest, &APIError{Code: CodeInvalidRequest,
				Message: fmt.Sprintf("bad wait duration %q", waitStr)})
			return
		}
		const maxWait = 5 * time.Minute
		if wait > maxWait {
			wait = maxWait
		}
		timer := time.NewTimer(wait)
		defer timer.Stop()
		select {
		case <-j.Done():
		case <-timer.C:
		case <-r.Context().Done():
		}
	}
	writeJSON(w, http.StatusOK, j.Info())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, &APIError{Code: CodeNotFound, Message: "no such job"})
		return
	}
	j.cancel()
	// A queued job can be finalized right away; a running one drains and
	// the scheduler marks it canceled when its runs return.
	if j.Info().State == StateQueued {
		j.markCanceled(time.Now())
	}
	writeJSON(w, http.StatusOK, j.Info())
}

// handleResult serves the canonical result document bytes. Because the
// store keeps raw bytes, a cached response is byte-identical to the cold
// run's; the config hash doubles as a strong ETag.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, &APIError{Code: CodeNotFound, Message: "no such job"})
		return
	}
	info := j.Info()
	b, ready := j.Result()
	if !ready {
		code := http.StatusConflict
		msg := fmt.Sprintf("job is %s", info.State)
		if info.State == StateFailed {
			msg = "job failed: " + info.Error
		}
		writeError(w, code, &APIError{Code: CodeNotFinished, Message: msg})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("ETag", `"`+info.ConfigHash+`"`)
	w.WriteHeader(http.StatusOK)
	w.Write(b)
}

// handleEvents streams job progress as Server-Sent Events: one "state"
// snapshot on connect, "progress" events as runs complete, and a final
// "state" event when the job reaches a terminal state, after which the
// stream ends.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, &APIError{Code: CodeNotFound, Message: "no such job"})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, &APIError{Code: CodeInvalidRequest,
			Message: "streaming unsupported by this connection"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	// Subscribe before the snapshot so no transition can fall between.
	events, unsubscribe := j.subscribe()
	defer unsubscribe()

	info := j.Info()
	writeSSE(w, Event{Type: "state", Job: info.ID, State: info.State,
		Done: info.RunsDone, Total: info.RunsTotal})
	flusher.Flush()

	for {
		select {
		case ev, open := <-events:
			if !open {
				// Terminal: emit the final snapshot and end the stream.
				info := j.Info()
				writeSSE(w, Event{Type: "state", Job: info.ID, State: info.State,
					Done: info.RunsDone, Total: info.RunsTotal})
				flusher.Flush()
				return
			}
			writeSSE(w, ev)
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// handleTelemetry streams the job's live machine telemetry as
// Server-Sent Events: one "telemetry" frame with the current merged
// full-machine snapshot on connect (if any sample has arrived), then
// one frame per update, plus "stalled" watchdog notices. The stream
// ends with a final "telemetry" frame when the job reaches a terminal
// state.
func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, &APIError{Code: CodeNotFound, Message: "no such job"})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, &APIError{Code: CodeInvalidRequest,
			Message: "streaming unsupported by this connection"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	// Subscribe before the snapshot so no sample can fall between.
	events, unsubscribe := j.subscribe()
	defer unsubscribe()

	snapshot := func() bool {
		info := j.Info()
		if info.Telemetry == nil {
			return false
		}
		writeSSE(w, Event{Type: "telemetry", Job: info.ID, Telemetry: info.Telemetry})
		return true
	}
	snapshot()
	flusher.Flush()

	for {
		select {
		case ev, open := <-events:
			if !open {
				// Terminal: the final merged view, then end the stream.
				if snapshot() {
					flusher.Flush()
				}
				return
			}
			if ev.Type != "telemetry" && ev.Type != "stalled" {
				continue
			}
			writeSSE(w, ev)
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// handleTrace serves the job's span timeline as Chrome trace_event
// JSON — load the body in Perfetto (ui.perfetto.dev) or chrome://tracing
// to see queued/running/checkpoint/migration spans on a timeline.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, &APIError{Code: CodeNotFound, Message: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, j.trace.Document())
}

// writeSSE emits one SSE frame: "event: <type>\ndata: <json>\n\n".
func writeSSE(w http.ResponseWriter, ev Event) {
	b, err := json.Marshal(ev)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, b)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, apiErr *APIError) {
	writeJSON(w, status, errorBody{Err: *apiErr})
}

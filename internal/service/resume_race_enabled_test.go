//go:build race

package service

// raceDetector lets the sim-heavy checkpoint/resume tests shrink their
// cycle counts when built with the race detector (~10-30x slowdown on
// single-core CI hosts).
const raceDetector = true

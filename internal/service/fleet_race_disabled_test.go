//go:build !race

package service_test

const fleetRaceDetector = false

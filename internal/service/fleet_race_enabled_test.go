//go:build race

package service_test

// fleetRaceDetector scales the fleet e2e workloads down under the race
// detector (~10-30x slowdown on small hosts).
const fleetRaceDetector = true

// Package service implements hornet-serve: a simulation-as-a-service job
// daemon. Clients submit scenarios — a full simulation configuration, a
// named experiment figure, or a batch of configurations — over an
// HTTP/JSON API, receive a job ID, poll or stream progress, and fetch the
// result as a sweep.Document.
//
// Three properties define the service:
//
//   - Scheduling: a fixed pool of job workers executes jobs concurrently,
//     and every simulation run inside every job acquires its CPU slots
//     from one shared sweep.Budget, so in-flight jobs together never
//     oversubscribe the host.
//
//   - Caching: results are content-addressed by sweep.ConfigHash over the
//     scenario's identity (normalized configuration, seed, scale). A
//     repeated scenario is served from the cache instantly, and the
//     cached response is byte-for-byte identical to the cold run's —
//     the document layer guarantees output does not depend on
//     parallelism, and the store keeps raw bytes.
//
//   - Streaming: per-run progress flows to clients over SSE
//     (GET /api/v1/jobs/{id}/events) or long-poll (GET /api/v1/jobs/{id}
//     with ?wait=), wired to the sweep engine's OnProgress callback.
package service

import (
	"encoding/json"
	"fmt"
	"time"

	"hornet/internal/config"
	"hornet/internal/obs"
	"hornet/internal/service/backend"
	"hornet/internal/workloads"
)

// Job kinds.
const (
	KindConfig   = "config"   // one full config.Config simulation
	KindFigure   = "figure"   // a named experiment from internal/experiments
	KindBatch    = "batch"    // several configurations as one sweep
	KindMips     = "mips"     // an application workload on MIPS cores
	KindScenario = "scenario" // a declarative internal/scenario document
)

// Job states. Terminal states are StateDone, StateFailed, StateCanceled.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// SubmitRequest is the body of POST /api/v1/jobs. Exactly one of Config,
// Figure, Batch, Mips selects the scenario.
type SubmitRequest struct {
	// Name labels the job and its result document. Optional; defaults to
	// the scenario kind. Restricted to [a-zA-Z0-9._-], at most 64
	// characters, so it is filesystem- and URL-safe. Figure jobs must
	// omit it: they are identified by the figure itself, so job, ETag,
	// and document identity always agree.
	Name string `json:"name,omitempty"`

	// Config submits one simulation of this configuration (synthetic
	// traffic only; attach patterns via its traffic list). WarmupCycles
	// and AnalyzedCycles in the config delimit the measured window.
	Config *config.Config `json:"config,omitempty"`

	// Figure names an experiment from the registry ("8", "t1", "fig9"...).
	Figure string `json:"figure,omitempty"`

	// Batch submits several keyed configurations executed as one sweep.
	Batch []BatchItem `json:"batch,omitempty"`

	// Mips submits an application workload executed on built-in MIPS
	// cores over the modeled interconnect (and, for shared-memory
	// workloads, the coherent-memory fabric). Cycle-level simulation of
	// real programs — the paper's Figs 8-12 mode — as a service.
	Mips *MipsSpec `json:"mips,omitempty"`

	// Scenario submits a declarative scenario document (see
	// internal/scenario): a versioned machine + frontend + sweep
	// description that the daemon compiles into the same internal
	// representation the legacy kinds use. Scenario documents carry their
	// own name, seed, sharding and warmup plan, so the request-level
	// Name/Seed/Shards/ShareWarmup knobs must be left unset.
	Scenario json.RawMessage `json:"scenario,omitempty"`

	// Seed is the job's master seed; per-run seeds derive from it.
	// 0 means the default experiment seed.
	Seed uint64 `json:"seed,omitempty"`

	// Workers is the number of engine workers (CPU slots) each simulation
	// run requests; it is clamped to the server's budget. 0 means 1.
	Workers int `json:"workers,omitempty"`

	// Tiny and Full pick the experiment scale for figure jobs
	// (smoke-test vs paper-scale); both false is the CI default scale.
	Tiny bool `json:"tiny,omitempty"`
	Full bool `json:"full,omitempty"`

	// NoCache forces re-execution even when a cached result exists. It
	// also opts the job out of single-flight coalescing: a NoCache
	// submission always runs its own simulation.
	NoCache bool `json:"no_cache,omitempty"`

	// Shards, when >= 2, runs the simulation space-parallel: the tile
	// grid is split into that many contiguous spans, each executed by
	// one fleet member (or one in-process member when no workers are
	// registered), exchanging boundary flits at every synchronization
	// point. The result document is byte-identical to the single-process
	// run, so Shards — like Workers — is NOT part of the cache identity.
	// Only single-run scenarios shard (config, mips), they must use
	// sync_period 1 (the default), and share_warmup is rejected.
	Shards int `json:"shards,omitempty"`

	// ShareWarmup (config/batch jobs) derives every run's engine seed
	// from its warmup-prefix group instead of its item key, so runs whose
	// configurations agree on everything but measured-phase knobs
	// (analyzed_cycles) restore from one cached warmup snapshot instead
	// of each re-simulating the warmup. Changes per-run seeding, so it is
	// part of the job's cache identity.
	ShareWarmup bool `json:"share_warmup,omitempty"`
}

// BatchItem is one keyed configuration of a batch job.
type BatchItem struct {
	Key    string        `json:"key"`
	Config config.Config `json:"config"`
}

// MipsSpec describes one MIPS application scenario: a built-in workload
// kernel, its parameters, and the platform configuration it runs on.
// These runs are deterministic end to end, so their documents cache and
// checkpoint exactly like synthetic-traffic runs.
type MipsSpec struct {
	// Workload names the kernel: "pingpong" (MPI-style DMA ping-pong,
	// private per-core memory), "shared-pingpong" (the same hand-off
	// through the coherent-memory fabric; requires config.memory), or
	// "cannon" (Cannon's matrix multiply with message passing).
	Workload string `json:"workload"`
	// Rounds parameterizes the ping-pong workloads (default 100).
	Rounds int `json:"rounds,omitempty"`
	// Q and B parameterize cannon: a q x q core grid of b x b blocks
	// (defaults 2 and 4); the topology must have exactly q*q nodes.
	Q int `json:"q,omitempty"`
	B int `json:"b,omitempty"`
	// MaxCycles caps the simulation in case the workload never halts
	// (default 10,000,000).
	MaxCycles uint64 `json:"max_cycles,omitempty"`
	// Params parameterizes registry kernels ("reduction",
	// "matmul-blocked", ...): missing keys take the kernel's defaults,
	// unknown keys are rejected. The pre-registry kernels above use the
	// dedicated Rounds/Q/B fields instead and must leave Params unset —
	// that keeps their normalized identity, and therefore their cache
	// hashes, byte-identical to what earlier daemons computed.
	Params workloads.Params `json:"params,omitempty"`
	// Config is the platform: topology, router, routing, engine, and —
	// for shared-memory workloads — the memory hierarchy. Synthetic
	// traffic sources are rejected: the workload is the traffic.
	Config config.Config `json:"config"`
}

// JobInfo is the client-visible job state (GET /api/v1/jobs/{id}).
type JobInfo struct {
	ID         string `json:"id"`
	Name       string `json:"name"`
	Kind       string `json:"kind"`
	State      string `json:"state"`
	ConfigHash string `json:"config_hash"`
	Seed       uint64 `json:"seed"`
	CacheHit   bool   `json:"cache_hit,omitempty"`
	// Coalesced marks a job served by attaching to an identical job that
	// was already in flight (single-flight): it never simulated, and its
	// result bytes are the leader's.
	Coalesced bool `json:"coalesced,omitempty"`
	// Backend is the execution backend that ran (or is running) the job:
	// "local" (in-process) or "fleet" (a remote worker). Empty for jobs
	// that never executed (cache hits, coalesced followers).
	Backend   string `json:"backend,omitempty"`
	RunsDone  int    `json:"runs_done"`
	RunsTotal int    `json:"runs_total"`
	// ResumedRuns counts runs restored from a checkpoint snapshot
	// instead of starting at cycle 0; Checkpoints counts autosave
	// snapshots this job wrote (checkpointing daemons only).
	ResumedRuns int       `json:"resumed_runs,omitempty"`
	Checkpoints int       `json:"checkpoints,omitempty"`
	Error       string    `json:"error,omitempty"`
	Created     time.Time `json:"created"`
	Started     time.Time `json:"started,omitzero"`
	Finished    time.Time `json:"finished,omitzero"`
	// Engine is the latest engine-probe snapshot for a running job:
	// cycles/sec plus the per-partition compute vs. barrier-wait split
	// (and shard sync totals for space-parallel jobs).
	Engine *obs.ProbeSnapshot `json:"engine,omitempty"`
	// Telemetry is the latest merged machine-telemetry snapshot for a
	// running job: per-tile flit counters and per-link buffer occupancy
	// across the whole machine (sharded jobs merge one sample per member
	// tile span).
	Telemetry *obs.TelemetrySnapshot `json:"telemetry,omitempty"`
	// Stalls counts watchdog-detected stall episodes: windows in which a
	// running job's executors reported no forward progress.
	Stalls int `json:"stalls,omitempty"`
}

// Terminal reports whether the job has reached a final state.
func (j JobInfo) Terminal() bool {
	switch j.State {
	case StateDone, StateFailed, StateCanceled:
		return true
	}
	return false
}

// Event is one progress notification on a job's SSE stream.
type Event struct {
	// Type is "state", "progress", "checkpoint", "resumed", "engine",
	// "telemetry" or "stalled".
	Type  string `json:"type"`
	Job   string `json:"job"`
	State string `json:"state,omitempty"`
	Done  int    `json:"done,omitempty"`
	Total int    `json:"total,omitempty"`
	Key   string `json:"key,omitempty"` // run key (progress/checkpoint/resumed events)
	// Cycle is the simulation clock of a checkpoint or resume point.
	Cycle uint64 `json:"cycle,omitempty"`
	// Engine carries the probe snapshot of an "engine" event.
	Engine *obs.ProbeSnapshot `json:"engine,omitempty"`
	// Telemetry carries the merged full-machine snapshot of a
	// "telemetry" event.
	Telemetry *obs.TelemetrySnapshot `json:"telemetry,omitempty"`
}

// FigureInfo describes one registry experiment (GET /api/v1/figures).
type FigureInfo struct {
	Name   string `json:"name"`
	Title  string `json:"title"`
	Serial bool   `json:"serial"` // wall-clock figure: runs serially, never cached
}

// ServerStats is the scheduler/cache observability view
// (GET /api/v1/stats). BudgetPeak never exceeds BudgetCap: the shared
// pool is what keeps concurrent jobs from oversubscribing the host.
type ServerStats struct {
	BudgetCap    int    `json:"budget_cap"`
	BudgetInUse  int    `json:"budget_in_use"`
	BudgetPeak   int    `json:"budget_peak"`
	JobsQueued   int    `json:"jobs_queued"`
	JobsRunning  int    `json:"jobs_running"`
	JobsDone     int    `json:"jobs_done"`
	JobsFailed   int    `json:"jobs_failed"`
	JobsCanceled int    `json:"jobs_canceled"`
	CacheEntries int    `json:"cache_entries"`
	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
	// CacheWriteErrs counts failed disk-tier writes: non-zero means the
	// daemon is serving correctly but no longer persisting results.
	CacheWriteErrs uint64 `json:"cache_write_errs"`
	// CacheEvictions counts in-memory result entries dropped by the
	// LRU/size bound (disk-tier entries, when configured, survive).
	CacheEvictions uint64 `json:"cache_evictions"`
	// JobsExpired counts finished job records removed by the retention
	// TTL; expired jobs return 404 (their cached results remain served
	// to new submissions of the same scenario).
	JobsExpired uint64 `json:"jobs_expired"`
	// CoalescedJobs counts submissions served by attaching to an
	// identical in-flight job instead of simulating twice.
	CoalescedJobs uint64 `json:"coalesced_jobs"`
	// Warmup-snapshot cache counters: hits are warmups restored from a
	// snapshot, misses are warmups actually simulated.
	WarmupHits   uint64 `json:"warmup_hits"`
	WarmupMisses uint64 `json:"warmup_misses"`
	// Checkpoint counters: snapshots autosaved, failed autosave writes
	// (non-zero means the daemon can no longer persist state and resume
	// protection is degraded), and runs resumed from a snapshot.
	CheckpointsWritten  uint64 `json:"checkpoints_written"`
	CheckpointWriteErrs uint64 `json:"checkpoint_write_errs"`
	RunsResumed         uint64 `json:"runs_resumed"`
	// RemoteJobs counts jobs completed on the worker fleet; FallbackJobs
	// counts jobs the fleet handed back (no surviving workers) that the
	// local backend then ran.
	RemoteJobs   uint64 `json:"remote_jobs"`
	FallbackJobs uint64 `json:"fallback_jobs"`
	// Fleet is the worker-fleet registry view (workers, capacity,
	// dispatch/migration counters).
	Fleet backend.FleetStats `json:"fleet"`

	// JobsRestored counts jobs rebuilt from the write-ahead journal at
	// startup (terminal restores and re-enqueued in-flight jobs alike).
	JobsRestored uint64 `json:"jobs_restored,omitempty"`
	// JournalErrs counts failed journal appends/compactions: non-zero
	// means the daemon is serving correctly but its durability is
	// degraded — like CheckpointWriteErrs, but for the job log.
	JournalErrs uint64 `json:"journal_errs,omitempty"`
	// Journal is the write-ahead job journal's view; zero-valued (with
	// Enabled false) when the daemon runs without -journal-dir.
	Journal JournalStats `json:"journal"`
}

// JournalStats is the write-ahead job journal's observability view.
type JournalStats struct {
	Enabled     bool   `json:"enabled"`
	Appended    uint64 `json:"appended"`
	Compactions uint64 `json:"compactions"`
	// Replayed is how many records the last Open recovered;
	// TruncatedTail reports whether it had to cut a torn tail (the
	// signature of a crash mid-append — expected, not an error).
	Replayed      int  `json:"replayed"`
	TruncatedTail bool `json:"truncated_tail,omitempty"`
	// LiveRecords is the record count appended since the last
	// compaction — the input to the compaction policy.
	LiveRecords int `json:"live_records"`
}

// RunStats is the deterministic result record of one config/batch
// simulation run: pure functions of (configuration, seed), no wall-clock
// or host-dependent fields, so result documents are cacheable
// byte-for-byte.
type RunStats struct {
	Nodes            int     `json:"nodes"`
	Cycles           uint64  `json:"cycles"`
	SkippedCycles    uint64  `json:"skipped_cycles,omitempty"`
	FlitsInjected    uint64  `json:"flits_injected"`
	FlitsDelivered   uint64  `json:"flits_delivered"`
	PacketsInjected  uint64  `json:"packets_injected"`
	PacketsDelivered uint64  `json:"packets_delivered"`
	AvgFlitLatency   float64 `json:"avg_flit_latency"`
	AvgPacketLatency float64 `json:"avg_packet_latency"`
	MaxPacketLatency uint64  `json:"max_packet_latency"`
	AvgHops          float64 `json:"avg_hops"`
	Throughput       float64 `json:"throughput"` // delivered flits / node / cycle
}

// Error codes carried in the JSON error envelope.
const (
	CodeInvalidRequest  = "invalid_request"
	CodeInvalidConfig   = "invalid_config"
	CodeInvalidScenario = "invalid_scenario"
	CodeUnknownFigure   = "unknown_figure"
	CodeNotFound        = "not_found"
	CodeNotFinished     = "not_finished"
	CodeQueueFull       = "queue_full"
	CodeShuttingDown    = "shutting_down"
)

// APIError is the structured error envelope every non-2xx response
// carries: {"error": {"code": "...", "message": "...", "field": "..."}}.
type APIError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Field is a JSON-pointer-style path into the request body naming
	// the input the error is about ("/mips/rounds",
	// "/scenario/machine/topology", "/batch/3/config", ...). Empty when
	// the error is not about one specific field.
	Field string `json:"field,omitempty"`
}

// Error implements the error interface (used by the Go client).
func (e *APIError) Error() string {
	if e.Field != "" {
		return fmt.Sprintf("%s: %s (field %s)", e.Code, e.Message, e.Field)
	}
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// errorBody is the wire envelope around APIError.
type errorBody struct {
	Err APIError `json:"error"`
}

// ValidateResponse is the body of a successful POST /api/v1/validate: the
// dry-run view of a submission — what it would compile to, what it would
// be cached under — without running anything.
type ValidateResponse struct {
	// Kind is the submission surface ("config", "figure", "batch",
	// "mips", "scenario").
	Kind string `json:"kind"`
	// Name and ConfigHash are the content address the result document
	// would carry; CacheKey is the result-cache key ("name-hash").
	Name       string `json:"name"`
	ConfigHash string `json:"config_hash"`
	CacheKey   string `json:"cache_key"`
	Seed       uint64 `json:"seed"`
	// Cacheable is false for wall-clock experiments whose documents are
	// never byte-stable.
	Cacheable   bool     `json:"cacheable"`
	RunsTotal   int      `json:"runs_total"`
	RunKeys     []string `json:"run_keys,omitempty"`
	Shards      int      `json:"shards,omitempty"`
	ShareWarmup bool     `json:"share_warmup,omitempty"`
	// Normalized is the canonical form of a scenario submission — every
	// default materialized — so clients can see exactly which machine
	// the schema compiled to. Omitted for legacy kinds.
	Normalized json.RawMessage `json:"normalized,omitempty"`
}

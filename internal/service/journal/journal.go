// Package journal is the coordinator's write-ahead log: an append-only
// record stream that survives a SIGKILLed hornet-serve and lets the
// restarted process rebuild its job store, re-enqueue in-flight work,
// and re-adopt executions the fleet is still running.
//
// The on-disk format follows the snapshot container's conventions
// (magic + version header, IEEE CRC-32 per payload): a fixed header
// ("HJRNL1\n" + format version) followed by length-prefixed,
// CRC-framed JSON records:
//
//	uint32  payload length (little-endian)
//	uint32  IEEE CRC-32 of the payload
//	[]byte  JSON-encoded Record
//
// Appends are single write(2) calls with no application-side
// buffering, so a killed process loses at most the record being
// written when it died: the kernel page cache holds everything
// already written. Replay stops at the first torn or corrupt frame
// and truncates the file back to the last intact record, which makes
// a crash mid-append indistinguishable from a crash just before it.
//
// Compaction rewrites the log atomically (via fsatomic's
// temp+rename) from a snapshot of live state, bounding file growth:
// the journal never needs more records than the job store has jobs.
package journal

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"hornet/internal/fsatomic"
)

// Record types. One record is one durable fact about one job; replay
// folds them in order, last write wins per field group.
const (
	// TypeSubmit carries the verbatim SubmitRequest JSON plus the
	// job's client-visible info at admission.
	TypeSubmit = "submit"
	// TypeState carries the job's client-visible info at a state
	// transition (queued→running, →done/failed/canceled).
	TypeState = "state"
	// TypeAssign records a fleet task ID bound to the job, so a
	// restarted coordinator can re-adopt the execution from the
	// worker that still runs it.
	TypeAssign = "assign"
	// TypeStable records a sharded group's stable-checkpoint
	// promotion: the consistent cross-shard blob set a restart may
	// resume from.
	TypeStable = "stable"
	// TypeResult records the result-cache key of a finished job, so
	// replay can refault the document from the cache tier instead of
	// re-running it.
	TypeResult = "result"
)

// Record is one journal entry. Fields are a union over the record
// types; unused ones stay zero and are elided from the JSON.
type Record struct {
	Type string `json:"t"`
	Job  string `json:"job,omitempty"`

	// TypeSubmit: the verbatim submit request body.
	Request json.RawMessage `json:"request,omitempty"`
	// TypeSubmit/TypeState: the job's client-visible info snapshot
	// (service.JobInfo), kept opaque here so the journal does not
	// depend on the service package.
	Info json.RawMessage `json:"info,omitempty"`

	// TypeAssign.
	Task  string `json:"task,omitempty"`
	Slots int    `json:"slots,omitempty"`

	// TypeStable.
	Epoch int      `json:"epoch,omitempty"`
	Cycle uint64   `json:"cycle,omitempty"`
	Keys  []string `json:"keys,omitempty"`

	// TypeResult: the content-addressed result-cache key.
	Name string `json:"name,omitempty"`
	Hash string `json:"hash,omitempty"`
}

const (
	magic         = "HJRNL1\n"
	formatVersion = 1
	headerLen     = len(magic) + 2 // magic + uint16 version
	frameOverhead = 8              // uint32 length + uint32 CRC

	// maxRecord bounds a single frame on replay; anything larger is
	// treated as corruption (submit requests are capped at 16 MB by
	// the API layer, and every other record is tiny).
	maxRecord = 32 << 20

	// FileName is the journal's name inside its directory.
	FileName = "journal.wal"
)

// ErrClosed is returned by Append/Compact after Close.
var ErrClosed = errors.New("journal: closed")

// Journal is an open write-ahead log. Safe for concurrent use.
type Journal struct {
	mu   sync.Mutex
	path string
	f    *os.File

	since       int    // records appended since the last compaction
	appended    uint64 // lifetime append counter (metrics)
	compactions uint64 // lifetime compaction counter (metrics)
	replayed    int    // records recovered by Open (metrics / logs)
	truncated   bool   // Open found and cut a torn tail
}

// Open reads the journal in dir (creating the directory and an empty
// log as needed), returns every intact record in append order, and
// leaves the file open for appending. A torn or corrupt tail — the
// signature of a crash mid-append — is truncated away, not an error.
func Open(dir string) (*Journal, []Record, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	path := filepath.Join(dir, FileName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	j := &Journal{path: path, f: f}
	recs, good, err := readAll(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	fi, statErr := f.Stat()
	if statErr != nil {
		f.Close()
		return nil, nil, statErr
	}
	if good == 0 {
		// Fresh (or unrecognizably damaged) log: start over with a
		// clean header.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, nil, err
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			f.Close()
			return nil, nil, err
		}
		if _, err := f.Write(header()); err != nil {
			f.Close()
			return nil, nil, err
		}
		j.truncated = fi.Size() > 0
		return j, nil, nil
	}
	if good < fi.Size() {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, err
		}
		j.truncated = true
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	j.replayed = len(recs)
	j.since = len(recs)
	return j, recs, nil
}

// header builds the file header: magic + uint16 format version.
func header() []byte {
	h := make([]byte, headerLen)
	copy(h, magic)
	binary.LittleEndian.PutUint16(h[len(magic):], formatVersion)
	return h
}

// readAll decodes records from the start of f, returning the intact
// prefix and the byte offset just past the last good frame. A missing
// or mismatched header yields (nil, 0): the caller rewrites the file.
func readAll(f *os.File) ([]Record, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	br := bufio.NewReader(f)
	hdr := make([]byte, headerLen)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, 0, nil // empty or shorter than a header: fresh log
	}
	if string(hdr[:len(magic)]) != magic ||
		binary.LittleEndian.Uint16(hdr[len(magic):]) != formatVersion {
		return nil, 0, nil
	}
	var recs []Record
	good := int64(headerLen)
	frame := make([]byte, frameOverhead)
	for {
		if _, err := io.ReadFull(br, frame); err != nil {
			return recs, good, nil
		}
		n := binary.LittleEndian.Uint32(frame[0:4])
		sum := binary.LittleEndian.Uint32(frame[4:8])
		if n == 0 || n > maxRecord {
			return recs, good, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return recs, good, nil
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, good, nil
		}
		var r Record
		if err := json.Unmarshal(payload, &r); err != nil {
			return recs, good, nil
		}
		recs = append(recs, r)
		good += int64(frameOverhead) + int64(n)
	}
}

// frameRecord encodes r as one wire frame.
func frameRecord(r Record) ([]byte, error) {
	payload, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	if len(payload) > maxRecord {
		return nil, fmt.Errorf("journal: record too large (%d bytes)", len(payload))
	}
	buf := make([]byte, frameOverhead+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[frameOverhead:], payload)
	return buf, nil
}

// Append writes one record. The frame goes out in a single write(2),
// so a crash can tear at most the final record — never an earlier one.
func (j *Journal) Append(r Record) error {
	buf, err := frameRecord(r)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return ErrClosed
	}
	if _, err := j.f.Write(buf); err != nil {
		return err
	}
	j.since++
	j.appended++
	return nil
}

// Compact atomically replaces the log with the records produced by
// snapshot, which runs under the journal lock so no append can slip
// between the snapshot and the rewrite. The snapshot callback must
// not call back into the Journal.
func (j *Journal) Compact(snapshot func() []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return ErrClosed
	}
	recs := snapshot()
	err := fsatomic.Write(j.path, func(w io.Writer) error {
		if _, err := w.Write(header()); err != nil {
			return err
		}
		for _, r := range recs {
			buf, err := frameRecord(r)
			if err != nil {
				return err
			}
			if _, err := w.Write(buf); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	// The rename replaced the inode under the old handle; reopen for
	// appending at the new end.
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	j.f.Close()
	j.f = f
	j.since = 0
	j.compactions++
	return nil
}

// Since reports records appended since the last compaction (or Open),
// the input to the server's compaction policy.
func (j *Journal) Since() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.since
}

// Stats reports lifetime counters: records appended, compactions run,
// records recovered at Open, and whether Open cut a torn tail.
func (j *Journal) Stats() (appended, compactions uint64, replayed int, truncated bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appended, j.compactions, j.replayed, j.truncated
}

// Close stops the journal; later Appends return ErrClosed. The server
// closes the journal before draining jobs on graceful shutdown, so
// drain-time cancellations are not recorded and a restarted daemon
// resumes the drained work.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

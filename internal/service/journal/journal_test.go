package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func rec(i int) Record {
	return Record{
		Type:    TypeSubmit,
		Job:     fmt.Sprintf("job-%06d", i),
		Request: json.RawMessage(fmt.Sprintf(`{"seed":%d}`, i)),
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, recs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	for i := 0; i < 10; i++ {
		if err := j.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Append(Record{Type: TypeStable, Job: "job-000003",
		Epoch: 2, Cycle: 5000, Keys: []string{"a-s0", "a-s1"}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(recs) != 11 {
		t.Fatalf("replayed %d records, want 11", len(recs))
	}
	for i := 0; i < 10; i++ {
		if recs[i].Job != fmt.Sprintf("job-%06d", i) || recs[i].Type != TypeSubmit {
			t.Fatalf("record %d mismatched: %+v", i, recs[i])
		}
	}
	last := recs[10]
	if last.Type != TypeStable || last.Cycle != 5000 || len(last.Keys) != 2 {
		t.Fatalf("stable record corrupted on round-trip: %+v", last)
	}
	if _, _, replayed, truncated := j2.Stats(); replayed != 11 || truncated {
		t.Fatalf("stats after clean reopen: replayed=%d truncated=%v", replayed, truncated)
	}
}

// A crash mid-append leaves a torn tail frame; Open must recover every
// intact record, cut the tail, and leave the journal appendable.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := j.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	path := filepath.Join(dir, FileName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the torn write: a length prefix with half a payload.
	torn := append(append([]byte{}, b...), 0xFF, 0x00, 0x00, 0x00, 0xAA, 0xBB)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, recs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("recovered %d records past a torn tail, want 5", len(recs))
	}
	if _, _, _, truncated := j2.Stats(); !truncated {
		t.Fatal("Open did not report the torn-tail truncation")
	}
	// The log must be clean again: append and reopen.
	if err := j2.Append(rec(99)); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, recs, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 || recs[5].Job != "job-000099" {
		t.Fatalf("append after truncation lost: %d records, last %+v", len(recs), recs[len(recs)-1])
	}
}

// Flipping a byte inside an earlier record must stop replay at the
// last record before the damage — suffix records are unreachable, by
// design: the frame stream has no resync marker.
func TestCorruptFrameStopsReplay(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := j.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	path := filepath.Join(dir, FileName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-3] ^= 0x40 // inside the last record's payload
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("recovered %d records with a corrupt final frame, want 4", len(recs))
	}
}

func TestCompactRewritesAtomically(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := j.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if j.Since() != 100 {
		t.Fatalf("Since = %d before compaction, want 100", j.Since())
	}
	compacted := []Record{rec(7), rec(42)}
	if err := j.Compact(func() []Record { return compacted }); err != nil {
		t.Fatal(err)
	}
	if j.Since() != 0 {
		t.Fatalf("Since = %d after compaction, want 0", j.Since())
	}
	// Appends after compaction land after the compacted set.
	if err := j.Append(rec(1000)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, recs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("replayed %d records after compaction, want 3", len(recs))
	}
	if recs[0].Job != "job-000007" || recs[1].Job != "job-000042" || recs[2].Job != "job-001000" {
		t.Fatalf("compacted stream out of order: %+v", recs)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	j, _, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := j.Append(rec(0)); err != ErrClosed {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := j.Compact(func() []Record { return nil }); err != ErrClosed {
		t.Fatalf("Compact after Close = %v, want ErrClosed", err)
	}
}

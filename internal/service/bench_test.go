package service_test

import (
	"context"
	"net/http/httptest"
	"testing"

	"hornet/internal/config"
	"hornet/internal/service"
	"hornet/internal/service/client"
)

// BenchmarkCachedScenarioRoundTrip measures the full serving path for a
// warm scenario: HTTP submit -> scheduler -> cache hit -> long-poll ->
// result fetch. This is the steady-state cost of repeated traffic.
func BenchmarkCachedScenarioRoundTrip(b *testing.B) {
	srv := service.New(service.Options{MaxJobs: 1, Budget: 1})
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
	}()
	c := client.New(ts.URL)
	ctx := context.Background()

	cfg := config.Default()
	cfg.Topology.Width, cfg.Topology.Height = 4, 4
	cfg.Traffic = []config.TrafficConfig{{Pattern: config.PatternUniform, InjectionRate: 0.05}}
	cfg.WarmupCycles = 100
	cfg.AnalyzedCycles = 1_000
	req := service.SubmitRequest{Name: "bench", Config: &cfg}

	// Warm the cache once (the only actual simulation).
	if info, err := c.SubmitAndWait(ctx, req); err != nil || info.State != service.StateDone {
		b.Fatalf("warmup job: %+v, %v", info, err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		info, err := c.SubmitAndWait(ctx, req)
		if err != nil || info.State != service.StateDone || !info.CacheHit {
			b.Fatalf("cached round trip: %+v, %v", info, err)
		}
		if _, _, err := c.Result(ctx, info.ID); err != nil {
			b.Fatal(err)
		}
	}
}

package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/http/httptrace"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// The retention janitor removes a terminal job's record while SSE
// subscribers and ?wait= long-polls may still hold the job object.
// Those handlers must finish their streams off their own reference —
// final snapshot, clean EOF — while concurrent expire() sweeps drop the
// record, with no data race and no leaked handler goroutine. This is
// the -race regression for jobStore.expire racing live readers.
func TestExpireRacesOpenSubscriberAndLongPoll(t *testing.T) {
	srv := New(Options{MaxJobs: 1, Budget: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Bypass the scheduler: the test needs full control over when the
	// job turns terminal, so the record is planted directly.
	sc := &scenario{kind: KindBatch, name: "expire-race", hash: "00112233aabbccdd", seed: 1}
	j := newJob(srv.jobs.nextID(), SubmitRequest{}, sc, context.Background(), time.Now())
	srv.jobs.add(j)
	id := j.Info().ID

	httpc := ts.Client()
	baseline := runtime.NumGoroutine()

	// SSE subscriber: read frames until the server ends the stream,
	// remember the last state seen.
	var wg sync.WaitGroup
	var lastSSEState string
	var sseErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := httpc.Get(ts.URL + "/api/v1/jobs/" + id + "/events")
		if err != nil {
			sseErr = err
			return
		}
		defer resp.Body.Close()
		scanner := bufio.NewScanner(resp.Body)
		for scanner.Scan() {
			line := scanner.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var ev Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				sseErr = fmt.Errorf("bad SSE frame %q: %w", line, err)
				return
			}
			if ev.Type == "state" {
				lastSSEState = ev.State
			}
		}
		sseErr = scanner.Err()
	}()

	// Long-poll: blocks on the terminal channel until the job finishes.
	// pollSent closes once the request bytes are on the wire, so the main
	// goroutine can hold the terminal transition until the handler has
	// (all but certainly) looked the job up and blocked on Done().
	pollSent := make(chan struct{})
	var polled JobInfo
	var pollErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/jobs/"+id+"?wait=30s", nil)
		if err != nil {
			pollErr = err
			close(pollSent)
			return
		}
		trace := &httptrace.ClientTrace{
			WroteRequest: func(httptrace.WroteRequestInfo) { close(pollSent) },
		}
		resp, err := httpc.Do(req.WithContext(httptrace.WithClientTrace(req.Context(), trace)))
		if err != nil {
			pollErr = err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			pollErr = fmt.Errorf("long-poll status %d", resp.StatusCode)
			return
		}
		pollErr = json.NewDecoder(resp.Body).Decode(&polled)
	}()

	// Wait until the SSE handler has actually subscribed and the
	// long-poll request is on the wire, so the expire sweeps below
	// genuinely race an open subscription and an in-flight poll. The
	// poll handler leaves no observable trace before it blocks, so a
	// short grace after the request bytes land stands in for "blocked".
	deadline := time.Now().Add(5 * time.Second)
	for {
		j.mu.Lock()
		n := len(j.subs)
		j.mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("SSE handler never subscribed")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-pollSent:
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll request never hit the wire")
	}
	time.Sleep(100 * time.Millisecond)

	// Hammer expire from several goroutines while the job transitions to
	// terminal underneath the open subscriber and the in-flight poll.
	stop := make(chan struct{})
	var sweepers sync.WaitGroup
	for i := 0; i < 4; i++ {
		sweepers.Add(1)
		go func() {
			defer sweepers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					srv.jobs.expire(time.Now().Add(time.Hour))
				}
			}
		}()
	}

	j.start(time.Now())
	j.progress(1, 1, "run-0")
	j.finish([]byte(`{"ok":true}`), false, time.Now())

	wg.Wait()
	close(stop)
	sweepers.Wait()

	if sseErr != nil {
		t.Fatalf("SSE stream: %v", sseErr)
	}
	if lastSSEState != StateDone {
		t.Fatalf("final SSE state = %q, want %q", lastSSEState, StateDone)
	}
	if pollErr != nil {
		t.Fatalf("long-poll: %v", pollErr)
	}
	if polled.State != StateDone {
		t.Fatalf("long-poll state = %q, want %q", polled.State, StateDone)
	}

	// The terminal job must now be expired: the record 404s.
	resp, err := httpc.Get(ts.URL + "/api/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("expired job GET status %d, want 404", resp.StatusCode)
	}

	// No leaked handler goroutines: both streams ended, so the count
	// settles back to the pre-request baseline (idle HTTP conns allowed).
	httpc.CloseIdleConnections()
	for end := time.Now().Add(5 * time.Second); ; {
		if runtime.NumGoroutine() <= baseline+2 {
			break
		}
		if time.Now().After(end) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d now vs %d baseline\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// A subscriber that attaches after the job is already terminal gets an
// immediately-closed channel; expiring the record concurrently must not
// disturb that, and unsubscribe after expiry is a harmless no-op.
func TestSubscribeAfterTerminalSurvivesExpire(t *testing.T) {
	sc := &scenario{kind: KindBatch, name: "late-sub", hash: "ffeeddccbbaa0011", seed: 2}
	store := newJobStore()
	j := newJob(store.nextID(), SubmitRequest{}, sc, context.Background(), time.Now())
	store.add(j)
	j.start(time.Now())
	j.finish(nil, false, time.Now())

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch, unsub := j.subscribe()
			if _, open := <-ch; open {
				t.Error("terminal job delivered an event on subscribe")
			}
			unsub()
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			store.expire(time.Now().Add(time.Hour))
		}
	}()
	wg.Wait()

	if _, ok := store.get(j.Info().ID); ok {
		t.Fatal("terminal job survived expire")
	}
}

// Package client is the Go client for hornet-serve: submit scenarios,
// poll or stream job progress, and fetch result documents over the
// daemon's HTTP/JSON API.
//
//	c := client.New("http://localhost:8080")
//	info, err := c.Submit(ctx, service.SubmitRequest{Figure: "t1", Tiny: true})
//	info, err = c.Wait(ctx, info.ID)
//	doc, raw, err := c.Result(ctx, info.ID)
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"hornet/internal/obs"
	"hornet/internal/service"
	"hornet/internal/service/backend"
	"hornet/internal/sweep"
)

// Client talks to one hornet-serve daemon.
type Client struct {
	// Base is the daemon's base URL, e.g. "http://localhost:8080".
	Base string
	// HTTP is the underlying client; nil means http.DefaultClient.
	HTTP *http.Client
}

// New returns a client for the daemon at base.
func New(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Transport-level retry policy for idempotent requests: a GET that
// fails before an HTTP response arrives (connection refused or reset —
// the signature of a coordinator restarting under the client) is
// retried a bounded number of times with exponential backoff instead
// of surfacing a transient dial error to the caller. HTTP-level errors
// (4xx/5xx) are authoritative answers and are never retried here.
const (
	retryAttempts  = 5
	retryBaseDelay = 100 * time.Millisecond
	retryMaxDelay  = 2 * time.Second
)

// backoffWait sleeps for attempt's backoff delay, honouring ctx.
func backoffWait(ctx context.Context, attempt int) error {
	d := retryBaseDelay << attempt
	if d > retryMaxDelay || d <= 0 {
		d = retryMaxDelay
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// send issues the request; idempotent (body-less GET) requests retry
// transport errors per the policy above. Safe to re-issue only because
// the request has no body to rewind.
func (c *Client) send(req *http.Request, idempotent bool) (*http.Response, error) {
	for attempt := 0; ; attempt++ {
		resp, err := c.http().Do(req)
		if err == nil || !idempotent || attempt+1 >= retryAttempts {
			return resp, err
		}
		if werr := backoffWait(req.Context(), attempt); werr != nil {
			return nil, err
		}
	}
}

// do issues a request and decodes either the success body into out or
// the structured error envelope into an *service.APIError.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.send(req, method == http.MethodGet && body == nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return decodeError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func decodeError(resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var env struct {
		Err service.APIError `json:"error"`
	}
	if err := json.Unmarshal(b, &env); err == nil && env.Err.Code != "" {
		return &env.Err
	}
	return fmt.Errorf("http %d: %s", resp.StatusCode, bytes.TrimSpace(b))
}

// Submit sends a scenario and returns the accepted job.
func (c *Client) Submit(ctx context.Context, req service.SubmitRequest) (service.JobInfo, error) {
	var info service.JobInfo
	err := c.do(ctx, http.MethodPost, "/api/v1/jobs", req, &info)
	return info, err
}

// Validate dry-runs a submission: the daemon compiles and normalizes it
// exactly as Submit would — returning the content address, run keys,
// and (for scenario documents) the canonical normalized form — without
// enqueueing anything.
func (c *Client) Validate(ctx context.Context, req service.SubmitRequest) (service.ValidateResponse, error) {
	var resp service.ValidateResponse
	err := c.do(ctx, http.MethodPost, "/api/v1/validate", req, &resp)
	return resp, err
}

// IsCode reports whether err is a structured daemon rejection carrying
// the given error code (service.CodeInvalidScenario etc.), so callers
// can branch on the machine-readable code instead of message text.
func IsCode(err error, code string) bool {
	var apiErr *service.APIError
	return errors.As(err, &apiErr) && apiErr.Code == code
}

// ErrorField extracts the JSON-pointer field path from a structured
// daemon rejection ("" when err carries none): the location in the
// submitted request body the daemon rejected.
func ErrorField(err error) string {
	var apiErr *service.APIError
	if errors.As(err, &apiErr) {
		return apiErr.Field
	}
	return ""
}

// Job fetches the job's current state.
func (c *Client) Job(ctx context.Context, id string) (service.JobInfo, error) {
	var info service.JobInfo
	err := c.do(ctx, http.MethodGet, "/api/v1/jobs/"+id, nil, &info)
	return info, err
}

// Jobs lists every job the daemon knows about.
func (c *Client) Jobs(ctx context.Context) ([]service.JobInfo, error) {
	var infos []service.JobInfo
	err := c.do(ctx, http.MethodGet, "/api/v1/jobs", nil, &infos)
	return infos, err
}

// Wait long-polls until the job reaches a terminal state (or ctx ends).
func (c *Client) Wait(ctx context.Context, id string) (service.JobInfo, error) {
	for {
		var info service.JobInfo
		err := c.do(ctx, http.MethodGet, "/api/v1/jobs/"+id+"?wait=30s", nil, &info)
		if err != nil {
			return info, err
		}
		if info.Terminal() {
			return info, nil
		}
		if err := ctx.Err(); err != nil {
			return info, err
		}
	}
}

// Cancel asks the daemon to cancel the job and returns its state.
func (c *Client) Cancel(ctx context.Context, id string) (service.JobInfo, error) {
	var info service.JobInfo
	err := c.do(ctx, http.MethodDelete, "/api/v1/jobs/"+id, nil, &info)
	return info, err
}

// Result fetches the job's result document: parsed, plus the exact bytes
// the daemon served (the cache byte-identity contract is on the bytes).
func (c *Client) Result(ctx context.Context, id string) (sweep.Document, []byte, error) {
	var doc sweep.Document
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/api/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return doc, nil, err
	}
	resp, err := c.send(req, true)
	if err != nil {
		return doc, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return doc, nil, decodeError(resp)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return doc, nil, err
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return doc, raw, fmt.Errorf("client: malformed result document: %w", err)
	}
	return doc, raw, nil
}

// Trace fetches the job's span timeline as Chrome trace_event JSON:
// parsed, plus the exact bytes served (save them to a file and load it
// in Perfetto or chrome://tracing).
func (c *Client) Trace(ctx context.Context, id string) (obs.TraceDocument, []byte, error) {
	var doc obs.TraceDocument
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/api/v1/jobs/"+id+"/trace", nil)
	if err != nil {
		return doc, nil, err
	}
	resp, err := c.send(req, true)
	if err != nil {
		return doc, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return doc, nil, decodeError(resp)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return doc, nil, err
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return doc, raw, fmt.Errorf("client: malformed trace document: %w", err)
	}
	return doc, raw, nil
}

// Figures lists the registry experiments the daemon can run.
func (c *Client) Figures(ctx context.Context) ([]service.FigureInfo, error) {
	var figs []service.FigureInfo
	err := c.do(ctx, http.MethodGet, "/api/v1/figures", nil, &figs)
	return figs, err
}

// Stats fetches the scheduler/cache observability snapshot.
func (c *Client) Stats(ctx context.Context) (service.ServerStats, error) {
	var st service.ServerStats
	err := c.do(ctx, http.MethodGet, "/api/v1/stats", nil, &st)
	return st, err
}

// Workers lists the daemon's registered worker fleet (distributed
// mode): capacity, free slots, assigned tasks, last heartbeat.
func (c *Client) Workers(ctx context.Context) ([]backend.WorkerInfo, error) {
	var ws []backend.WorkerInfo
	err := c.do(ctx, http.MethodGet, "/api/v1/workers", nil, &ws)
	return ws, err
}

// Events subscribes to the job's SSE stream and invokes fn for every
// event until the stream ends (terminal state), ctx is cancelled, or fn
// returns false. A stream torn mid-flight (coordinator restart) is
// re-subscribed with bounded backoff; the server replays a full state
// snapshot on every connect, so the caller's view re-converges even
// though intermediate events in the gap are lost.
func (c *Client) Events(ctx context.Context, id string, fn func(service.Event) bool) error {
	return c.streamSSE(ctx, "/api/v1/jobs/"+id+"/events", fn)
}

// Telemetry subscribes to the job's machine-telemetry SSE stream —
// merged full-machine per-tile/per-link snapshots plus "stalled"
// watchdog notices — and invokes fn for every event until the stream
// ends (terminal state), ctx is cancelled, or fn returns false. Torn
// streams reattach like Events.
func (c *Client) Telemetry(ctx context.Context, id string, fn func(service.Event) bool) error {
	return c.streamSSE(ctx, "/api/v1/jobs/"+id+"/telemetry", fn)
}

// streamSSE runs one SSE subscription with reattach: transport errors
// and torn streams retry with exponential backoff (the retry budget
// re-arms whenever a connection delivers an event — a long-lived healthy
// stream does not use up the allowance for the restart that eventually
// tears it); HTTP-level errors and clean stream ends are final.
func (c *Client) streamSSE(ctx context.Context, path string, fn func(service.Event) bool) error {
	for attempt := 0; ; attempt++ {
		delivered, retriable, err := c.streamOnce(ctx, path, fn)
		if delivered {
			attempt = 0
		}
		if err == nil || !retriable || ctx.Err() != nil {
			return err
		}
		if attempt+1 >= retryAttempts {
			return err
		}
		if werr := backoffWait(ctx, attempt); werr != nil {
			return err
		}
	}
}

// streamOnce is one SSE connection: it reports whether any event was
// delivered to fn and whether a failure is worth a reattach.
func (c *Client) streamOnce(ctx context.Context, path string, fn func(service.Event) bool) (delivered, retriable bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	if err != nil {
		return false, false, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.http().Do(req)
	if err != nil {
		return false, true, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return false, false, decodeError(resp)
	}
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue // event: lines and keep-alive blanks
		}
		var ev service.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			return delivered, false, fmt.Errorf("client: malformed event: %w", err)
		}
		delivered = true
		if !fn(ev) {
			return delivered, false, nil
		}
	}
	if err := scanner.Err(); err != nil && ctx.Err() == nil {
		// A mid-stream tear: the handler never ends a healthy stream
		// without the terminal snapshot, so this is a dead coordinator
		// (or broken path), not a finished job.
		return delivered, true, err
	}
	return delivered, false, nil
}

// SubmitAndWait is the common round trip: submit, wait for terminal,
// return the final state.
func (c *Client) SubmitAndWait(ctx context.Context, req service.SubmitRequest) (service.JobInfo, error) {
	info, err := c.Submit(ctx, req)
	if err != nil {
		return info, err
	}
	return c.Wait(ctx, info.ID)
}

// WaitTimeout is Wait bounded by d.
func (c *Client) WaitTimeout(ctx context.Context, id string, d time.Duration) (service.JobInfo, error) {
	ctx, cancel := context.WithTimeout(ctx, d)
	defer cancel()
	return c.Wait(ctx, id)
}

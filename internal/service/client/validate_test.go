package client

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hornet/internal/service"
)

// TestValidateExamples walks the examples/scenarios gallery through a
// real daemon's POST /api/v1/validate: every shipped example must
// dry-run clean, report kind "scenario", and come back with a stable
// content address and the normalized document.
func TestValidateExamples(t *testing.T) {
	srv := service.New(service.Options{MaxJobs: 1, Budget: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := New(ts.URL)

	dir := filepath.Join("..", "..", "..", "examples", "scenarios")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("examples gallery missing: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("examples/scenarios is empty")
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		t.Run(e.Name(), func(t *testing.T) {
			raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := c.Validate(context.Background(),
				service.SubmitRequest{Scenario: json.RawMessage(raw)})
			if err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if resp.Kind != service.KindScenario {
				t.Fatalf("kind = %q, want %q", resp.Kind, service.KindScenario)
			}
			if resp.Name == "" || resp.ConfigHash == "" ||
				resp.CacheKey != resp.Name+"-"+resp.ConfigHash {
				t.Fatalf("bad content address: %+v", resp)
			}
			if resp.RunsTotal < 1 || len(resp.Normalized) == 0 {
				t.Fatalf("bad dry-run detail: %+v", resp)
			}
			// Second validation of the normalized form: same address
			// (normalization is the identity's fixed point).
			again, err := c.Validate(context.Background(),
				service.SubmitRequest{Scenario: json.RawMessage(resp.Normalized)})
			if err != nil {
				t.Fatalf("re-Validate normalized form: %v", err)
			}
			if again.ConfigHash != resp.ConfigHash || again.CacheKey != resp.CacheKey {
				t.Fatalf("normalized form re-hashed differently: %s vs %s",
					again.ConfigHash, resp.ConfigHash)
			}
		})
	}
}

// TestValidateStructuredErrors: a rejected validation surfaces the
// machine-readable code and JSON-pointer field through the client's
// helpers.
func TestValidateStructuredErrors(t *testing.T) {
	srv := service.New(service.Options{MaxJobs: 1, Budget: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := New(ts.URL)

	_, err := c.Validate(context.Background(), service.SubmitRequest{
		Scenario: json.RawMessage(`{"version": 9}`),
	})
	if err == nil {
		t.Fatal("invalid scenario validated clean")
	}
	if !IsCode(err, service.CodeInvalidScenario) {
		t.Fatalf("IsCode(%v, %s) = false", err, service.CodeInvalidScenario)
	}
	if IsCode(err, service.CodeQueueFull) {
		t.Fatal("IsCode matched the wrong code")
	}
	if got := ErrorField(err); got != "/scenario/version" {
		t.Fatalf("ErrorField = %q, want /scenario/version", got)
	}

	_, err = c.Validate(context.Background(), service.SubmitRequest{Workers: -1})
	if err == nil {
		t.Fatal("empty submission validated clean")
	}
	if ErrorField(err) != "" && !strings.HasPrefix(ErrorField(err), "/") {
		t.Fatalf("ErrorField = %q, want a JSON pointer or empty", ErrorField(err))
	}
}

package service

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"hornet/internal/config"
)

// Service-level contracts of space-parallel execution: a job submitted
// with shards >= 2 to a daemon with no registered workers runs all
// members in-process through the local backend, and its result document
// must be byte-identical to the ordinary single-engine run of the same
// request. These drive the daemon internals directly (resume_test.go
// style); the cross-process version lives in e2e.

// shardConfig is a synthetic scenario small enough to co-run N member
// engines in one test process.
func shardConfig() *config.Config {
	cfg := config.Default()
	cfg.Topology.Width, cfg.Topology.Height = 4, 4
	cfg.Traffic = []config.TrafficConfig{{Pattern: config.PatternTranspose, InjectionRate: 0.10}}
	cfg.WarmupCycles = 300
	cfg.AnalyzedCycles = 4_000
	return &cfg
}

// runToDoc submits req on a fresh daemon built from opts and returns
// the finished job's raw document bytes plus its config hash.
func runToDoc(t *testing.T, opts Options, req SubmitRequest) ([]byte, string) {
	t.Helper()
	srv := New(opts)
	defer srv.Close()
	j := submitDirect(t, srv, req)
	info := waitDone(t, j, 120*time.Second)
	if info.State != StateDone {
		t.Fatalf("job state = %s (%s)", info.State, info.Error)
	}
	b, ok := j.Result()
	if !ok {
		t.Fatal("finished job has no result")
	}
	return b, info.ConfigHash
}

// TestShardedLocalSyntheticByteIdentity: the same synthetic scenario
// run unsharded and sharded 2-way must hash identically (shards is an
// execution knob, not document identity) and produce byte-identical
// result documents through the local in-process member group.
func TestShardedLocalSyntheticByteIdentity(t *testing.T) {
	base := SubmitRequest{Name: "shard-synth", Config: shardConfig(), Seed: 21}

	single, hashSingle := runToDoc(t, Options{MaxJobs: 1, Budget: 2}, base)

	sharded := base
	sharded.Shards = 2
	doc2, hash2 := runToDoc(t, Options{MaxJobs: 1, Budget: 2}, sharded)

	if hash2 != hashSingle {
		t.Fatalf("sharded run hashed differently: %s vs %s", hash2, hashSingle)
	}
	if !bytes.Equal(doc2, single) {
		t.Fatalf("2-way sharded document differs from single-engine run:\n single: %s\n sharded: %s", single, doc2)
	}
}

// TestShardedLocalMIPSByteIdentity: an application workload (MIPS
// ping-pong, fast-forward on) sharded 2-way completes by the group
// decision — per-span halt conditions ANDed, in-flight flits summed —
// and still emits the single-engine document bytes.
func TestShardedLocalMIPSByteIdentity(t *testing.T) {
	cfg := config.Default()
	cfg.Topology.Width, cfg.Topology.Height = 4, 4
	cfg.Engine.FastForward = true
	base := SubmitRequest{
		Name: "shard-mips",
		Seed: 9,
		Mips: &MipsSpec{Workload: "pingpong", Rounds: 40, Config: cfg},
	}

	single, hashSingle := runToDoc(t, Options{MaxJobs: 1, Budget: 2}, base)

	sharded := base
	sharded.Shards = 2
	doc2, hash2 := runToDoc(t, Options{MaxJobs: 1, Budget: 2}, sharded)

	if hash2 != hashSingle {
		t.Fatalf("sharded run hashed differently: %s vs %s", hash2, hashSingle)
	}
	if !bytes.Equal(doc2, single) {
		t.Fatalf("2-way sharded MIPS document differs from single-engine run")
	}
}

// TestShardedLocalCheckpointedByteIdentity: member checkpointing (per
// -s{i} store keys) must not perturb results — a sharded run autosaving
// on a tiny cadence emits the same bytes as the unsharded, uncheck-
// pointed run.
func TestShardedLocalCheckpointedByteIdentity(t *testing.T) {
	base := SubmitRequest{Name: "shard-ckpt", Config: shardConfig(), Seed: 33}

	single, _ := runToDoc(t, Options{MaxJobs: 1, Budget: 2}, base)

	sharded := base
	sharded.Shards = 2
	doc2, _ := runToDoc(t, Options{
		MaxJobs: 1, Budget: 2,
		CheckpointDir: t.TempDir(), CheckpointEvery: 700,
	}, sharded)

	if !bytes.Equal(doc2, single) {
		t.Fatalf("checkpointed sharded document differs from clean single-engine run")
	}
}

// TestFastForwardAutosaveCadenceByteIdentity is the regression test for
// the fast-forward/checkpoint interaction: autosave chunk boundaries
// interrupt fast-forward jumps, and a resumed chunk must re-derive the
// interrupted jump (RunUntilResumed) so the autosave cadence never
// leaks into result bytes. Before the fix, fast-forwarding runs were
// simply exempted from autosave; now they checkpoint like everything
// else and must still match the uncheckpointed run byte for byte.
func TestFastForwardAutosaveCadenceByteIdentity(t *testing.T) {
	cfg := config.Default()
	cfg.Topology.Width, cfg.Topology.Height = 2, 2
	cfg.Engine.FastForward = true
	// The H.264 CBR profile injects one packet every 1/rate cycles with
	// a predictable NextEvent, so the engine genuinely jumps the idle
	// stretches between packets — a 1000-cycle chunk boundary then lands
	// mid-jump with certainty (period 200 >> network drain time).
	cfg.Traffic = []config.TrafficConfig{{Pattern: config.PatternH264, InjectionRate: 0.005}}
	cfg.WarmupCycles = 0
	cfg.AnalyzedCycles = 50_000
	req := SubmitRequest{Name: "ff-cadence", Config: &cfg, Seed: 5}

	clean, _ := runToDoc(t, Options{MaxJobs: 1, Budget: 1}, req)

	srv := New(Options{MaxJobs: 1, Budget: 1, CheckpointDir: t.TempDir(), CheckpointEvery: 1_000})
	defer srv.Close()
	j := submitDirect(t, srv, req)
	info := waitDone(t, j, 120*time.Second)
	if info.State != StateDone {
		t.Fatalf("checkpointed job state = %s (%s)", info.State, info.Error)
	}
	ckpt, ok := j.Result()
	if !ok {
		t.Fatal("finished job has no result")
	}

	// The scenario must actually fast-forward and actually checkpoint,
	// or the test proves nothing.
	var doc struct {
		Runs []struct {
			Value RunStats `json:"value"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(clean, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Runs) != 1 || doc.Runs[0].Value.SkippedCycles == 0 {
		t.Fatalf("scenario did not fast-forward (skipped=0); it cannot regress the cadence leak")
	}
	if st := srv.Stats(); st.CheckpointsWritten == 0 {
		t.Fatalf("fast-forwarding run wrote no checkpoints — the autosave exemption is back?")
	}

	if !bytes.Equal(ckpt, clean) {
		t.Fatalf("autosave cadence leaked into fast-forwarded result bytes:\n clean: %s\n ckpt:  %s", clean, ckpt)
	}
}

// End-to-end tests for the NoC observatory: the live machine-telemetry
// stream (merged across shard members), the Perfetto counter tracks it
// feeds, the stall watchdog, and the strict Prometheus lint over both
// daemons' expositions. These drive everything through the public HTTP
// API, exactly like real clients and workers.
package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"hornet/internal/config"
	"hornet/internal/obs"
	"hornet/internal/service"
	"hornet/internal/service/backend"
	"hornet/internal/service/worker"
	"hornet/internal/sweep"
)

// collectTelemetry subscribes to the job's telemetry SSE stream in the
// background and returns a wait function yielding every frame received
// until the stream ended (terminal state closes it server-side).
func collectTelemetry(t *testing.T, c interface {
	Telemetry(ctx context.Context, id string, fn func(service.Event) bool) error
}, id string) (wait func() []service.Event) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	var (
		mu     sync.Mutex
		frames []service.Event
	)
	done := make(chan error, 1)
	go func() {
		done <- c.Telemetry(ctx, id, func(ev service.Event) bool {
			mu.Lock()
			frames = append(frames, ev)
			mu.Unlock()
			return true
		})
	}()
	return func() []service.Event {
		t.Helper()
		defer cancel()
		if err := <-done; err != nil {
			t.Fatalf("telemetry stream: %v", err)
		}
		mu.Lock()
		defer mu.Unlock()
		return frames
	}
}

// runValue pulls a numeric field out of the document's single run
// record (RunStats round-trips as map[string]any through JSON).
func runValue(t *testing.T, raw []byte, field string) uint64 {
	t.Helper()
	var doc sweep.Document
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("decode document: %v", err)
	}
	if len(doc.Runs) != 1 {
		t.Fatalf("document has %d runs, want 1", len(doc.Runs))
	}
	m, ok := doc.Runs[0].Value.(map[string]any)
	if !ok {
		t.Fatalf("run value is %T, want object", doc.Runs[0].Value)
	}
	v, ok := m[field].(float64)
	if !ok {
		t.Fatalf("run value field %q is %T (%v), want number", field, m[field], m[field])
	}
	return uint64(v)
}

// The acceptance e2e: a 2-way sharded job's telemetry stream presents
// one merged full-machine view (Shard == -1, the whole tile span), its
// final frame agrees exactly with the result document's flit totals,
// and the job's trace carries the Perfetto counter tracks the samples
// fed.
func TestShardedTelemetryConsistentWithDocument(t *testing.T) {
	_, c := startServer(t, service.Options{
		MaxJobs: 1, Budget: 2,
		TelemetryEvery: 20 * time.Millisecond,
	})
	ctx := context.Background()

	cfg := config.Default()
	cfg.Topology.Width, cfg.Topology.Height = 4, 4
	cfg.Traffic = []config.TrafficConfig{{Pattern: config.PatternTranspose, InjectionRate: 0.10}}
	cfg.WarmupCycles = 300
	cfg.AnalyzedCycles = 8_000

	info, err := c.Submit(ctx, service.SubmitRequest{
		Name: "telemetry-sharded", Config: &cfg, Seed: 17, Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	wait := collectTelemetry(t, c, info.ID)

	final, err := c.Wait(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != service.StateDone {
		t.Fatalf("job state = %s (%s)", final.State, final.Error)
	}
	frames := wait()
	if len(frames) == 0 {
		t.Fatal("telemetry stream delivered no frames")
	}

	// Every frame is the merged full-machine view, never a raw member
	// sample; cycles never move backwards.
	var lastCycle uint64
	for i, ev := range frames {
		if ev.Type == "stalled" {
			continue
		}
		if ev.Type != "telemetry" || ev.Telemetry == nil {
			t.Fatalf("frame %d: %+v, want a telemetry frame", i, ev)
		}
		s := ev.Telemetry
		if s.Shard != -1 || s.ShardCount != 2 {
			t.Fatalf("frame %d shard identity = %d/%d, want merged -1/2", i, s.Shard, s.ShardCount)
		}
		if s.Cycle < lastCycle {
			t.Fatalf("frame %d cycle %d < previous %d", i, s.Cycle, lastCycle)
		}
		lastCycle = s.Cycle
	}

	// The final frame covers the whole machine and its totals are the
	// document's totals: telemetry is a live view of the same counters
	// the result aggregates.
	last := frames[len(frames)-1].Telemetry
	if last.TileLo != 0 || last.TileHi != 16 || len(last.Tiles) != 16 {
		t.Fatalf("final frame span [%d,%d) with %d tiles, want [0,16) with 16",
			last.TileLo, last.TileHi, len(last.Tiles))
	}
	if len(last.Links) == 0 {
		t.Fatal("final frame has no link occupancy samples")
	}
	_, raw, err := c.Result(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := last.FlitsInjected(), runValue(t, raw, "flits_injected"); got != want {
		t.Errorf("final telemetry injected = %d, document says %d", got, want)
	}
	if got, want := last.FlitsDelivered(), runValue(t, raw, "flits_delivered"); got != want {
		t.Errorf("final telemetry delivered = %d, document says %d", got, want)
	}

	// The merged samples fed the trace's counter tracks: Perfetto "C"
	// events carrying numeric args.
	trace, _, err := c.Trace(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	counters := map[string]int{}
	for _, ev := range trace.TraceEvents {
		if ev.Phase == "C" {
			counters[ev.Name]++
			for k, v := range ev.Args {
				if _, ok := v.(float64); !ok {
					t.Errorf("counter %s arg %s is %T, Perfetto needs numbers", ev.Name, k, v)
				}
			}
		}
	}
	for _, name := range []string{"injection_rate", "buffer_occupancy"} {
		if counters[name] == 0 {
			t.Errorf("trace has no %q counter samples; counter tracks: %v", name, counters)
		}
	}
}

// A wedged executor must trip the stall watchdog: the job reports a
// stall episode, the daemon counts it, and the trace records the
// instant. The wedge is a fake worker speaking the real fleet protocol
// — it registers, takes the assignment, and then goes silent without
// ever pushing an event.
func TestStallWatchdogTripsOnWedgedExecutor(t *testing.T) {
	_, c := startServer(t, service.Options{
		MaxJobs: 1, Budget: 1,
		StallAfter: 100 * time.Millisecond,
		WorkerTTL:  time.Minute, // outlive the test: the wedge must not be expired+requeued
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	post := func(path string, body, out any) int {
		t.Helper()
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(c.Base+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if out != nil && resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatalf("decode %s response: %v", path, err)
			}
		}
		return resp.StatusCode
	}

	var reg backend.RegisterResponse
	if code := post("/api/v1/workers", backend.RegisterRequest{ID: "wedge", Capacity: 1}, &reg); code != http.StatusOK {
		t.Fatalf("register: HTTP %d", code)
	}

	info, err := c.Submit(ctx, service.SubmitRequest{
		Name: "wedged", Config: tinyConfig(), Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Take the assignment like a real worker would — then never speak
	// again. The job is running with zero forward progress.
	took := false
	for deadline := time.Now().Add(30 * time.Second); time.Now().Before(deadline); {
		var a backend.Assignment
		code := post("/api/v1/workers/wedge/poll?wait=2s", struct{}{}, &a)
		if code == http.StatusOK {
			if a.TaskID == "" {
				t.Fatal("poll returned an empty assignment")
			}
			took = true
			break
		}
		if code != http.StatusNoContent {
			t.Fatalf("poll: HTTP %d", code)
		}
	}
	if !took {
		t.Fatal("the fake worker was never assigned the task")
	}

	for deadline := time.Now().Add(30 * time.Second); ; {
		ji, err := c.Job(ctx, info.ID)
		if err != nil {
			t.Fatal(err)
		}
		if ji.Terminal() {
			t.Fatalf("wedged job reached %s (%s) before the watchdog fired", ji.State, ji.Error)
		}
		if ji.Stalls >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("watchdog never fired: %+v", ji)
		}
		time.Sleep(10 * time.Millisecond)
	}

	if series := scrapeMetrics(t, c.Base+"/metrics"); series["hornet_job_stalls_total"] < 1 {
		t.Errorf("hornet_job_stalls_total = %v, want >= 1", series["hornet_job_stalls_total"])
	}
	trace, _, err := c.Trace(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range trace.TraceEvents {
		if ev.Name == "stalled" && ev.Phase == "i" {
			found = true
		}
	}
	if !found {
		t.Error("trace has no stalled instant")
	}

	if _, err := c.Cancel(ctx, info.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
}

// Figure jobs run through the sweep path, not chunkedRun — the engine
// probe must reach /metrics anyway (the PR 7 gap this PR closes).
func TestFigureJobFeedsEngineMetrics(t *testing.T) {
	_, c := startServer(t, service.Options{MaxJobs: 1, Budget: 2})
	ctx := context.Background()

	info, err := c.SubmitAndWait(ctx, service.SubmitRequest{Figure: "t1", Tiny: true})
	if err != nil {
		t.Fatal(err)
	}
	if info.State != service.StateDone {
		t.Fatalf("figure job state = %s (%s)", info.State, info.Error)
	}

	series := scrapeMetrics(t, c.Base+"/metrics")
	if series["hornet_engine_cycles_total"] == 0 {
		t.Error("hornet_engine_cycles_total = 0 after a figure job: the sweep path is not probed")
	}
	if series["hornet_engine_compute_seconds_count"] == 0 {
		t.Error("engine compute histogram empty after a figure job")
	}
}

// Distributed telemetry + the strict lint: a real fleet worker pushes
// machine-telemetry samples through the coordinator (the job reports a
// live merged view while remote), and both daemons' Prometheus
// expositions survive the strict text-format linter.
func TestFleetTelemetryAndExpositionLint(t *testing.T) {
	d := startFleetDaemon(t, service.Options{
		MaxJobs: 1, Budget: 1,
		WorkerTTL:      30 * time.Second,
		TelemetryEvery: 20 * time.Millisecond,
	})
	reg := obs.NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	w := worker.New(worker.Options{
		Coordinator:    d.http.URL,
		ID:             "telw",
		Capacity:       1,
		Metrics:        reg,
		TelemetryEvery: 20 * time.Millisecond,
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	t.Cleanup(func() { cancel(); <-done })
	waitWorkers(t, d, 1)

	req := service.SubmitRequest{Name: "fleet-telemetry", Config: fleetConfig(3_000), Seed: 29}
	sctx := context.Background()
	info, err := d.c.Submit(sctx, req)
	if err != nil {
		t.Fatal(err)
	}
	wait := collectTelemetry(t, d.c, info.ID)
	final, err := d.c.Wait(sctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != service.StateDone {
		t.Fatalf("job state = %s (%s)", final.State, final.Error)
	}
	if final.Backend != "fleet" {
		t.Fatalf("job ran on backend %q, want fleet", final.Backend)
	}
	frames := wait()
	if len(frames) == 0 {
		t.Fatal("remote execution delivered no telemetry frames")
	}
	for i, ev := range frames {
		if ev.Type == "telemetry" && ev.Telemetry != nil && len(ev.Telemetry.Tiles) == 0 {
			t.Fatalf("frame %d has no tiles: %+v", i, ev.Telemetry)
		}
	}

	// Both expositions — the coordinator's and the worker's — must pass
	// the strict 0.0.4 lint, with their new series present.
	resp, err := http.Get(d.http.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var coord bytes.Buffer
	if _, err := coord.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := obs.LintPrometheusText(bytes.NewReader(coord.Bytes())); err != nil {
		t.Errorf("coordinator exposition fails strict lint: %v", err)
	}
	for _, name := range []string{"hornet_job_stalls_total", "hornet_trace_dropped_events_total"} {
		if !bytes.Contains(coord.Bytes(), []byte(name)) {
			t.Errorf("coordinator exposition is missing %s", name)
		}
	}

	var wb bytes.Buffer
	if err := reg.WritePrometheus(&wb); err != nil {
		t.Fatal(err)
	}
	if err := obs.LintPrometheusText(bytes.NewReader(wb.Bytes())); err != nil {
		t.Errorf("worker exposition fails strict lint: %v", err)
	}
	if !bytes.Contains(wb.Bytes(), []byte("hornet_engine_cycles_total")) {
		t.Error("worker exposition is missing hornet_engine_cycles_total")
	}
}

package service

import (
	"encoding/json"
	"net/http"

	scen "hornet/internal/scenario"
)

// DryRun compiles a submission exactly as POST /api/v1/jobs would —
// same validation, same normalization, same content address — without
// enqueueing anything. It backs POST /api/v1/validate and hornet-exp's
// -validate flag: clients can confirm a document is well-formed, see
// the machine it normalizes to, and learn the cache key it would hit,
// all before spending simulation time.
func DryRun(req SubmitRequest) (*ValidateResponse, *APIError) {
	sc, apiErr := buildScenario(req)
	if apiErr != nil {
		return nil, apiErr
	}
	resp := &ValidateResponse{
		Kind:        sc.surfaceKind(),
		Name:        sc.name,
		ConfigHash:  sc.hash,
		CacheKey:    sc.name + "-" + sc.hash,
		Seed:        sc.seed,
		Cacheable:   sc.cacheable,
		RunsTotal:   len(sc.runs),
		Shards:      sc.shards,
		ShareWarmup: sc.shareWarmup,
	}
	for _, r := range sc.runs {
		resp.RunKeys = append(resp.RunKeys, r.key)
	}
	if len(req.Scenario) > 0 {
		// buildScenario accepted it, so Decode/Compile cannot fail here;
		// recompiling is cheaper than threading the normalized document
		// through the scenario struct every legacy submission also builds.
		if doc, ferr := scen.Decode(req.Scenario); ferr == nil {
			if comp, ferr := scen.Compile(doc); ferr == nil {
				if b, err := scen.Encode(comp.Normalized); err == nil {
					resp.Normalized = b
				}
			}
		}
	}
	return resp, nil
}

// handleValidate is POST /api/v1/validate: DryRun over the same request
// body POST /api/v1/jobs takes.
func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, &APIError{Code: CodeInvalidRequest,
			Message: "malformed request body: " + err.Error()})
		return
	}
	resp, apiErr := DryRun(req)
	if apiErr != nil {
		writeError(w, http.StatusBadRequest, apiErr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

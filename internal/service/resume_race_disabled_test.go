//go:build !race

package service

const raceDetector = false

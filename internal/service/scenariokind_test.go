package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"hornet/internal/config"
)

// frozenValidConfig reproduces the exact submission the legacy hashes
// below were captured from (pre-refactor daemon): config.Default() on a
// 4x4 mesh, one uniform source, short windows.
func frozenValidConfig() *config.Config {
	cfg := config.Default()
	cfg.Topology.Width, cfg.Topology.Height = 4, 4
	cfg.Traffic = []config.TrafficConfig{{Pattern: config.PatternUniform, InjectionRate: 0.05}}
	cfg.WarmupCycles = 100
	cfg.AnalyzedCycles = 1000
	return &cfg
}

func frozenMipsConfig() config.Config {
	cfg := config.Default()
	cfg.Topology.Width, cfg.Topology.Height = 4, 4
	cfg.Engine.FastForward = true
	return cfg
}

// TestFrozenLegacyHashes pins the cache identity of every legacy kind
// to hashes captured before the scenario refactor: the legacy kinds are
// now thin shims over the shared compile path, and these hashes prove
// the shims preserve the exact identities earlier daemons computed —
// cached documents on disk stay addressable.
func TestFrozenLegacyHashes(t *testing.T) {
	sharedCfg := frozenMipsConfig()
	sharedCfg.Memory = config.DefaultMemory()
	cases := []struct {
		label            string
		req              SubmitRequest
		kind, name, hash string
	}{
		{"config-default", SubmitRequest{Config: frozenValidConfig()},
			KindConfig, "config", "793ef57694940806"},
		{"config-named-seed", SubmitRequest{Name: "frozen", Config: frozenValidConfig(), Seed: 7, ShareWarmup: true},
			KindConfig, "frozen", "c3a771b377e89cd9"},
		{"batch", SubmitRequest{Batch: []BatchItem{
			{Key: "a", Config: *frozenValidConfig()}, {Key: "b", Config: *frozenValidConfig()}}},
			KindBatch, "batch", "ff634772cdb31a04"},
		{"mips-pingpong", SubmitRequest{Seed: 9, Mips: &MipsSpec{Workload: "pingpong", Rounds: 40, Config: frozenMipsConfig()}},
			KindMips, "mips-pingpong", "6f2fc0815c282820"},
		{"mips-cannon", SubmitRequest{Mips: &MipsSpec{Workload: "cannon", Q: 4, Config: frozenMipsConfig()}},
			KindMips, "mips-cannon", "8606f584f7d4fc7a"},
		{"mips-shared", SubmitRequest{Mips: &MipsSpec{Workload: "shared-pingpong", Rounds: 10, Config: sharedCfg}},
			KindMips, "mips-shared-pingpong", "deedba87e0d6d9da"},
	}
	for _, tc := range cases {
		t.Run(tc.label, func(t *testing.T) {
			sc, apiErr := buildScenario(tc.req)
			if apiErr != nil {
				t.Fatalf("buildScenario: %v", apiErr)
			}
			if sc.kind != tc.kind || sc.name != tc.name || sc.hash != tc.hash {
				t.Fatalf("got %s/%s/%s, want %s/%s/%s",
					sc.kind, sc.name, sc.hash, tc.kind, tc.name, tc.hash)
			}
		})
	}
}

// scenarioJSON marshals a scenario-request body for tests.
func scenarioJSON(t *testing.T, doc string) SubmitRequest {
	t.Helper()
	var raw json.RawMessage = []byte(doc)
	return SubmitRequest{Scenario: raw}
}

// TestScenarioMipsLegacyIdentity is the tentpole acceptance check: a
// declarative scenario expressing the legacy mips ping-pong job must
// compile to the SAME cache identity — the frozen pre-refactor hash —
// and produce a byte-identical result document, while reporting kind
// "scenario" to clients.
func TestScenarioMipsLegacyIdentity(t *testing.T) {
	legacy := SubmitRequest{Seed: 9, Mips: &MipsSpec{Workload: "pingpong", Rounds: 40, Config: frozenMipsConfig()}}
	scReq := scenarioJSON(t, `{
		"version": 1,
		"machine": {"topology": {"kind": "mesh", "width": 4, "height": 4}},
		"workload": {"kernel": "pingpong", "params": {"rounds": 40}},
		"run": {"fast_forward": true, "seed": 9}
	}`)

	scLegacy, apiErr := buildScenario(legacy)
	if apiErr != nil {
		t.Fatalf("legacy buildScenario: %v", apiErr)
	}
	scScen, apiErr := buildScenario(scReq)
	if apiErr != nil {
		t.Fatalf("scenario buildScenario: %v", apiErr)
	}
	if scScen.hash != scLegacy.hash || scScen.name != scLegacy.name {
		t.Fatalf("scenario identity %s/%s != legacy %s/%s",
			scScen.name, scScen.hash, scLegacy.name, scLegacy.hash)
	}
	if scScen.hash != "6f2fc0815c282820" {
		t.Fatalf("hash %s is not the frozen pre-refactor identity", scScen.hash)
	}
	if scScen.kind != KindMips || scScen.surfaceKind() != KindScenario {
		t.Fatalf("kind/surface = %s/%s, want %s/%s", scScen.kind, scScen.surfaceKind(), KindMips, KindScenario)
	}

	docLegacy, hashLegacy := runToDoc(t, Options{MaxJobs: 1, Budget: 2}, legacy)
	docScen, hashScen := runToDoc(t, Options{MaxJobs: 1, Budget: 2}, scReq)
	if hashScen != hashLegacy {
		t.Fatalf("job hashes diverge: %s vs %s", hashScen, hashLegacy)
	}
	if !bytes.Equal(docScen, docLegacy) {
		t.Fatalf("scenario document differs from legacy document:\n legacy: %s\n scenario: %s", docLegacy, docScen)
	}
}

// TestScenarioCoalescesWithLegacy: because the identities match, a
// scenario submission must hit the result cache a legacy submission
// populated (one daemon, two surfaces, one cached document).
func TestScenarioCoalescesWithLegacy(t *testing.T) {
	srv := New(Options{MaxJobs: 1, Budget: 2})
	defer srv.Close()
	legacy := SubmitRequest{Seed: 9, Mips: &MipsSpec{Workload: "pingpong", Rounds: 40, Config: frozenMipsConfig()}}
	j1 := submitDirect(t, srv, legacy)
	info1 := waitDone(t, j1, 120*time.Second)
	if info1.State != StateDone {
		t.Fatalf("legacy job: %s (%s)", info1.State, info1.Error)
	}
	misses := srv.results.Misses()

	scReq := scenarioJSON(t, `{
		"version": 1,
		"machine": {"topology": {"kind": "mesh", "width": 4, "height": 4}},
		"workload": {"kernel": "pingpong", "params": {"rounds": 40}},
		"run": {"fast_forward": true, "seed": 9}
	}`)
	j2 := submitDirect(t, srv, scReq)
	info2 := waitDone(t, j2, 120*time.Second)
	if info2.State != StateDone {
		t.Fatalf("scenario job: %s (%s)", info2.State, info2.Error)
	}
	if srv.results.Misses() != misses {
		t.Fatalf("scenario submission missed the cache (misses %d -> %d); identities must coalesce",
			misses, srv.results.Misses())
	}
	b1, _ := j1.Result()
	b2, _ := j2.Result()
	if !bytes.Equal(b1, b2) {
		t.Fatal("cached scenario document differs from legacy document")
	}
}

// newKernelScenario is the second acceptance shape: a registry kernel
// the legacy API never had (matmul-blocked), on a topology no legacy
// mips job used (a ring), parameterized to run long enough to
// checkpoint. run.shards is set by the callers that shard it.
func newKernelScenario(shards int) string {
	doc := `{
		"version": 1,
		"name": "matmul-ring",
		"machine": {"topology": {"kind": "ring", "width": 8, "height": 1}},
		"workload": {"kernel": "matmul-blocked", "params": {"n": 16, "b": 4}},
		"run": {"fast_forward": true%s}
	}`
	extra := ""
	if shards > 0 {
		extra = fmt.Sprintf(`, "shards": %d`, shards)
	}
	return fmt.Sprintf(doc, extra)
}

// TestScenarioNewKernelShardedByteIdentity: the new-workload scenario
// runs end-to-end unsharded and with run.shards 2, hashing identically
// (sharding is an execution knob) and emitting identical bytes.
func TestScenarioNewKernelShardedByteIdentity(t *testing.T) {
	single, hash1 := runToDoc(t, Options{MaxJobs: 1, Budget: 2}, scenarioJSON(t, newKernelScenario(0)))
	sharded, hash2 := runToDoc(t, Options{MaxJobs: 1, Budget: 2}, scenarioJSON(t, newKernelScenario(2)))
	if hash1 != hash2 {
		t.Fatalf("sharded scenario hashed differently: %s vs %s", hash2, hash1)
	}
	if !bytes.Equal(single, sharded) {
		t.Fatalf("2-way sharded scenario document differs from single-engine run")
	}
}

// TestScenarioCheckpointResume is the killed-daemon drill for a
// declarative scenario: daemon A autosaves the matmul run and dies
// mid-flight; daemon B with the same checkpoint directory receives the
// identical scenario, resumes from the snapshot instead of cycle 0,
// and still produces the clean run's exact bytes.
func TestScenarioCheckpointResume(t *testing.T) {
	clean, _ := runToDoc(t, Options{MaxJobs: 1, Budget: 2}, scenarioJSON(t, newKernelScenario(0)))

	ckptDir := t.TempDir()
	srvA := New(Options{MaxJobs: 1, Budget: 2, CheckpointDir: ckptDir, CheckpointEvery: 500})
	jA := submitDirect(t, srvA, scenarioJSON(t, newKernelScenario(0)))
	deadline := time.Now().Add(60 * time.Second)
	for jA.Info().Checkpoints < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint written; job state %+v", jA.Info())
		}
		if jA.Info().Terminal() {
			t.Skip("job finished before a checkpoint could be observed; workload too fast on this machine")
		}
		time.Sleep(2 * time.Millisecond)
	}
	srvA.Close()

	srvB := New(Options{MaxJobs: 1, Budget: 2, CheckpointDir: ckptDir, CheckpointEvery: 500})
	defer srvB.Close()
	jB := submitDirect(t, srvB, scenarioJSON(t, newKernelScenario(0)))
	info := waitDone(t, jB, 120*time.Second)
	if info.State != StateDone {
		t.Fatalf("resumed job: %s (%s)", info.State, info.Error)
	}
	if srvB.env.counters.runsResumed.Load() == 0 {
		t.Fatal("daemon B never resumed from the checkpoint")
	}
	b, _ := jB.Result()
	if !bytes.Equal(b, clean) {
		t.Fatalf("resumed scenario document differs from clean run:\n clean: %s\n resumed: %s", clean, b)
	}
}

// TestScenarioRequestLevelKnobsRejected: scenario documents carry their
// own name/seed/shards/share_warmup; the request-level fields must be
// rejected with the field path that names the offender.
func TestScenarioRequestLevelKnobsRejected(t *testing.T) {
	doc := `{"version":1,"machine":{"topology":{"kind":"mesh","width":4,"height":4}},"traffic":[{"pattern":"uniform","injection_rate":0.05}]}`
	cases := []struct {
		label, field string
		mut          func(*SubmitRequest)
	}{
		{"name", "/name", func(r *SubmitRequest) { r.Name = "x" }},
		{"seed", "/seed", func(r *SubmitRequest) { r.Seed = 5 }},
		{"shards", "/shards", func(r *SubmitRequest) { r.Shards = 2 }},
		{"share-warmup", "/share_warmup", func(r *SubmitRequest) { r.ShareWarmup = true }},
	}
	for _, tc := range cases {
		t.Run(tc.label, func(t *testing.T) {
			req := scenarioJSON(t, doc)
			tc.mut(&req)
			_, apiErr := buildScenario(req)
			if apiErr == nil {
				t.Fatal("request-level knob accepted alongside a scenario document")
			}
			if apiErr.Field != tc.field {
				t.Fatalf("error field = %q, want %q (%s)", apiErr.Field, tc.field, apiErr.Message)
			}
		})
	}
}

// TestScenarioErrorFieldPaths: structured rejections point into the
// scenario document with a /scenario-prefixed JSON pointer and the
// invalid_scenario code.
func TestScenarioErrorFieldPaths(t *testing.T) {
	cases := []struct {
		label, doc, field string
	}{
		{"bad-version", `{"version": 9}`, "/scenario/version"},
		{"unknown-field", `{"version":1,"figure":"t1"}`, "/scenario/figure"},
		{"no-topology", `{"version":1,"workload":{"kernel":"pingpong"}}`, "/scenario/machine/topology"},
		{"unknown-kernel", `{"version":1,"machine":{"topology":{"kind":"mesh","width":4,"height":4}},"workload":{"kernel":"doom"}}`, "/scenario/workload/kernel"},
		{"bad-shards", `{"version":1,"machine":{"topology":{"kind":"mesh","width":4,"height":4}},"traffic":[{"pattern":"uniform","injection_rate":0.05}],"run":{"shards":1}}`, "/scenario/run/shards"},
	}
	for _, tc := range cases {
		t.Run(tc.label, func(t *testing.T) {
			_, apiErr := buildScenario(scenarioJSON(t, tc.doc))
			if apiErr == nil {
				t.Fatal("invalid scenario accepted")
			}
			if apiErr.Code != CodeInvalidScenario {
				t.Fatalf("code = %s, want %s (%s)", apiErr.Code, CodeInvalidScenario, apiErr.Message)
			}
			if apiErr.Field != tc.field {
				t.Fatalf("field = %q, want %q (%s)", apiErr.Field, tc.field, apiErr.Message)
			}
		})
	}
}

// TestScenarioWorkloadSweep: a sweep over kernel parameters — a shape
// no legacy kind could express — expands to one run per point and
// executes through the shared batch machinery.
func TestScenarioWorkloadSweep(t *testing.T) {
	req := scenarioJSON(t, `{
		"version": 1,
		"name": "reduce-sweep",
		"machine": {"topology": {"kind": "mesh", "width": 2, "height": 2}},
		"workload": {"kernel": "reduction"},
		"run": {"fast_forward": true},
		"sweep": [{"name": "elems", "path": "/workload/params/elems", "values": [8, 64]}]
	}`)
	sc, apiErr := buildScenario(req)
	if apiErr != nil {
		t.Fatalf("buildScenario: %v", apiErr)
	}
	if sc.kind != KindBatch || sc.surfaceKind() != KindScenario || len(sc.runs) != 2 {
		t.Fatalf("kind/surface/runs = %s/%s/%d", sc.kind, sc.surfaceKind(), len(sc.runs))
	}
	doc, hash := runToDoc(t, Options{MaxJobs: 1, Budget: 2}, req)
	if hash != sc.hash {
		t.Fatalf("executed hash %s != compiled hash %s", hash, sc.hash)
	}
	var parsed struct {
		Runs []struct {
			Key string `json:"key"`
			Err string `json:"err,omitempty"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(doc, &parsed); err != nil {
		t.Fatalf("document: %v", err)
	}
	if len(parsed.Runs) != 2 {
		t.Fatalf("document has %d runs, want 2", len(parsed.Runs))
	}
	wantKeys := []string{"elems-8", "elems-64"}
	for i, r := range parsed.Runs {
		if r.Key != wantKeys[i] {
			t.Fatalf("run %d key = %q, want %q", i, r.Key, wantKeys[i])
		}
		if r.Err != "" {
			t.Fatalf("run %s errored: %s", r.Key, r.Err)
		}
	}
}

// TestDryRunMatchesSubmit: the validate path reports exactly the
// identity a real submission acquires.
func TestDryRunMatchesSubmit(t *testing.T) {
	req := scenarioJSON(t, newKernelScenario(2))
	resp, apiErr := DryRun(req)
	if apiErr != nil {
		t.Fatalf("DryRun: %v", apiErr)
	}
	sc, apiErr := buildScenario(req)
	if apiErr != nil {
		t.Fatalf("buildScenario: %v", apiErr)
	}
	if resp.Kind != KindScenario || resp.Name != sc.name || resp.ConfigHash != sc.hash ||
		resp.CacheKey != sc.name+"-"+sc.hash || resp.Shards != 2 {
		t.Fatalf("DryRun response diverges from compiled scenario: %+v vs %s/%s", resp, sc.name, sc.hash)
	}
	if len(resp.Normalized) == 0 {
		t.Fatal("DryRun of a scenario must include the normalized document")
	}
	if resp.RunsTotal != 1 || resp.RunKeys[0] != "matmul-ring" {
		t.Fatalf("runs = %d %v", resp.RunsTotal, resp.RunKeys)
	}
}

package service

import (
	"bytes"
	"context"
	"fmt"
	"regexp"

	"hornet/internal/config"
	"hornet/internal/core"
	"hornet/internal/experiments"
	"hornet/internal/mips"
	"hornet/internal/sim"
	"hornet/internal/stats"
	"hornet/internal/sweep"
	"hornet/internal/workloads"
)

// defaultSeed matches the experiment harness default, so a figure
// submitted with no seed reproduces the CLI's documents.
const defaultSeed = 0x5EED0A11

var nameRE = regexp.MustCompile(`^[a-zA-Z0-9._-]{1,64}$`)

// scenario is a validated, normalized submission: everything the
// scheduler needs to execute the job, plus the content-address (name,
// hash) of its result document.
type scenario struct {
	kind string
	name string // document name (also the cache key prefix)
	hash string // sweep.ConfigHash over the identity
	seed uint64

	// cacheable is false for wall-clock experiments (Serial figures):
	// their documents carry timing fields and are never byte-stable.
	cacheable bool

	// config/batch scenarios: one spec per sweep run. The scheduler
	// compiles them into sweep items against its execution environment
	// (warmup cache, checkpoint settings).
	runs []runSpec
	// shareWarmup derives run seeds from warmup-prefix groups so runs
	// agreeing on everything but measured-phase knobs fork from one
	// warmup snapshot.
	shareWarmup bool
	// shards is the space-parallel member count of a sharded submission
	// (>= 2), 0 for ordinary scenarios. Like Workers it never enters the
	// scenario hash: sharding cannot change result bytes.
	shards int

	// figure scenarios: the registry entry and its scale options.
	fig     experiments.Figure
	figOpts experiments.Options
}

// runSpec is one config/batch/mips simulation: a stable key, the
// normalized configuration it runs, and — for share_warmup scenarios —
// the warmup-group seed every run in the group shares (0 = the sweep's
// default per-key derivation). The explicit seed flows through
// sweep.Item.Seed so the emitted document records the seed each run
// actually used. mips, when set, switches the run from synthetic
// traffic to an application workload (execEnv.runMips).
type runSpec struct {
	key    string
	weight int
	seed   uint64
	cfg    config.Config
	mips   *MipsSpec
}

// groupSeed derives the shared engine seed for a warmup-prefix group:
// runs agreeing on everything but measured-phase knobs must evolve —
// and snapshot — identically through the warmup, so their seed derives
// from the group identity instead of the item key.
func groupSeed(jobSeed uint64, cfg config.Config) uint64 {
	group := core.WarmupGroupKey(cfg, uint64(cfg.WarmupCycles))
	return sim.DeriveSeed(jobSeed, "warmup-group:"+group)
}

// buildScenario validates a submission and compiles it into a runnable
// scenario. Every rejection is an *APIError suitable for a 4xx response.
func buildScenario(req SubmitRequest) (*scenario, *APIError) {
	set := 0
	if req.Config != nil {
		set++
	}
	if req.Figure != "" {
		set++
	}
	if len(req.Batch) > 0 {
		set++
	}
	if req.Mips != nil {
		set++
	}
	if set != 1 {
		return nil, &APIError{CodeInvalidRequest,
			"exactly one of config, figure, batch, mips must be set"}
	}
	if req.Name != "" && !nameRE.MatchString(req.Name) {
		return nil, &APIError{CodeInvalidRequest,
			"name must match [a-zA-Z0-9._-]{1,64}"}
	}
	if req.Workers < 0 {
		return nil, &APIError{CodeInvalidRequest, "workers must be >= 0"}
	}
	seed := req.Seed
	if seed == 0 {
		seed = defaultSeed
	}
	var (
		sc     *scenario
		apiErr *APIError
	)
	switch {
	case req.Config != nil:
		sc, apiErr = buildConfigScenario(req, seed)
	case req.Figure != "":
		sc, apiErr = buildFigureScenario(req, seed)
	case req.Mips != nil:
		sc, apiErr = buildMipsScenario(req, seed)
	default:
		sc, apiErr = buildBatchScenario(req, seed)
	}
	if apiErr != nil {
		return nil, apiErr
	}
	if apiErr := applyShards(sc, req.Shards); apiErr != nil {
		return nil, apiErr
	}
	return sc, nil
}

// applyShards validates a space-parallel request against the compiled
// scenario. Sharding splits ONE simulation's tile grid across members,
// so only single-run kinds qualify, the engine must sync every cycle
// (boundary flits are exchanged at sync points; a coarser cadence would
// let a flit cross a shard boundary unobserved), and warmup sharing is
// meaningless for a single run.
func applyShards(sc *scenario, shards int) *APIError {
	if shards == 0 {
		return nil
	}
	if shards < 2 {
		return &APIError{CodeInvalidRequest, "shards must be 0 (off) or >= 2"}
	}
	if sc.kind != KindConfig && sc.kind != KindMips {
		return &APIError{CodeInvalidRequest,
			"shards applies to config and mips jobs (one simulation split across members)"}
	}
	if sc.shareWarmup {
		return &APIError{CodeInvalidRequest,
			"shards and share_warmup are mutually exclusive"}
	}
	cfg := sc.runs[0].cfg
	if cfg.Engine.SyncPeriod > 1 {
		return &APIError{CodeInvalidRequest,
			"shards requires sync_period 1 (boundary traffic is exchanged every cycle)"}
	}
	if nodes := cfg.Topology.Nodes(); shards > nodes {
		return &APIError{CodeInvalidRequest, fmt.Sprintf(
			"shards (%d) must not exceed the topology's %d nodes", shards, nodes)}
	}
	sc.shards = shards
	return nil
}

// mipsWorkloadSource generates the assembly for a validated spec.
// nodes is the topology's node count (the shared ping-pong partner is
// the last node).
func mipsWorkloadSource(m *MipsSpec, nodes int) string {
	switch m.Workload {
	case "pingpong":
		return workloads.PingPongSource(m.Rounds)
	case "shared-pingpong":
		return workloads.SharedPingPongSource(m.Rounds, nodes-1)
	case "cannon":
		return workloads.CannonSource(m.Q, m.B)
	}
	panic("service: unvalidated mips workload " + m.Workload)
}

// buildMipsScenario validates an application-workload submission. The
// normalized spec (defaults applied) is the cache identity, so
// {"rounds": 0} and {"rounds": 100} hash identically.
func buildMipsScenario(req SubmitRequest, seed uint64) (*scenario, *APIError) {
	m := *req.Mips
	if m.Rounds <= 0 {
		m.Rounds = 100
	}
	if m.Q <= 0 {
		m.Q = 2
	}
	if m.B <= 0 {
		m.B = 4
	}
	if m.MaxCycles == 0 {
		m.MaxCycles = 10_000_000
	}
	// Bound the workload parameters: they size in-memory structures
	// (cannon blocks are 4*b*b bytes each) and run length, so an
	// unbounded submission could exhaust the daemon at validation time.
	if m.Rounds > 1_000_000 {
		return nil, &APIError{CodeInvalidRequest, "mips: rounds must be <= 1000000"}
	}
	if m.Q > 64 || m.B > 64 {
		return nil, &APIError{CodeInvalidRequest, "mips: cannon q and b must be <= 64"}
	}
	if m.MaxCycles > 1_000_000_000 {
		return nil, &APIError{CodeInvalidRequest, "mips: max_cycles must be <= 1000000000"}
	}
	if err := m.Config.Validate(); err != nil {
		return nil, &APIError{CodeInvalidConfig, "mips: " + err.Error()}
	}
	if len(m.Config.Traffic) > 0 {
		return nil, &APIError{CodeInvalidConfig,
			"mips: scenario takes no synthetic traffic (the workload is the traffic)"}
	}
	nodes := m.Config.Topology.Nodes()
	switch m.Workload {
	case "pingpong", "shared-pingpong":
		if nodes < 2 {
			return nil, &APIError{CodeInvalidConfig,
				"mips: ping-pong workloads need at least 2 nodes"}
		}
	case "cannon":
		if nodes != m.Q*m.Q {
			return nil, &APIError{CodeInvalidConfig, fmt.Sprintf(
				"mips: cannon on a %dx%d grid needs exactly %d nodes, topology has %d",
				m.Q, m.Q, m.Q*m.Q, nodes)}
		}
	default:
		return nil, &APIError{CodeInvalidRequest, fmt.Sprintf(
			"mips: unknown workload %q (pingpong, shared-pingpong, cannon)", m.Workload)}
	}
	if m.Workload == "shared-pingpong" && m.Config.Memory == nil {
		return nil, &APIError{CodeInvalidConfig,
			"mips: shared-pingpong needs config.memory (the coherent fabric it runs on)"}
	}
	if m.Workload != "shared-pingpong" && m.Config.Memory != nil {
		return nil, &APIError{CodeInvalidConfig,
			"mips: " + m.Workload + " uses private per-core memory; omit config.memory"}
	}
	// Catch assembly errors at submission time (4xx), not mid-job.
	if _, err := mips.Assemble(mipsWorkloadSource(&m, nodes)); err != nil {
		return nil, &APIError{CodeInvalidConfig, "mips: workload does not assemble: " + err.Error()}
	}
	name := req.Name
	if name == "" {
		name = "mips-" + m.Workload
	}
	if req.ShareWarmup {
		return nil, &APIError{CodeInvalidRequest,
			"share_warmup applies to config/batch jobs; mips runs have no warmup prefix"}
	}
	m.Config = normalize(m.Config)
	// The driver-level cycle windows do not apply to application runs:
	// the workload defines its own span (halt or max_cycles).
	m.Config.WarmupCycles, m.Config.AnalyzedCycles = 0, 0
	return &scenario{
		kind:      KindMips,
		name:      name,
		hash:      scenarioHash("mips", name, m, seed, false),
		seed:      seed,
		cacheable: true,
		runs:      []runSpec{{key: name, weight: req.Workers, cfg: m.Config, mips: &m}},
	}, nil
}

// checkRunnable validates one submitted simulation configuration beyond
// config.Validate: the service runs synthetic-traffic simulations with a
// bounded measured window, so both must be present.
func checkRunnable(c *config.Config, where string) *APIError {
	if err := c.Validate(); err != nil {
		return &APIError{CodeInvalidConfig, where + err.Error()}
	}
	if len(c.Traffic) == 0 {
		return &APIError{CodeInvalidConfig,
			where + "config: scenario needs at least one synthetic traffic source"}
	}
	if c.AnalyzedCycles < 1 {
		return &APIError{CodeInvalidConfig,
			where + "config: analyzed_cycles must be >= 1"}
	}
	if c.WarmupCycles < 0 {
		return &APIError{CodeInvalidConfig,
			where + "config: warmup_cycles must be >= 0"}
	}
	return nil
}

// normalize strips the execution-only engine fields from a copy of the
// configuration: worker count never changes results (the engine is
// deterministic across workers) and the engine seed is overridden by the
// job's derived per-run seed, so neither may enter the cache identity.
func normalize(c config.Config) config.Config {
	c.Engine.Workers = 0
	c.Engine.Seed = 0
	return c
}

// scenarioHash computes the job identity. share_warmup changes per-run
// seeding, so it must fork the identity; the extra label keeps hashes
// of share_warmup=false submissions identical to what earlier daemons
// produced (their cached documents stay valid).
func scenarioHash(kind, name string, identity any, seed uint64, shareWarmup bool) string {
	if shareWarmup {
		return sweep.ConfigHash("service/"+kind, name, identity, seed, "share_warmup")
	}
	return sweep.ConfigHash("service/"+kind, name, identity, seed)
}

func buildConfigScenario(req SubmitRequest, seed uint64) (*scenario, *APIError) {
	if apiErr := checkRunnable(req.Config, ""); apiErr != nil {
		return nil, apiErr
	}
	name := req.Name
	if name == "" {
		name = KindConfig
	}
	norm := normalize(*req.Config)
	spec := runSpec{key: name, weight: req.Workers, cfg: norm}
	if req.ShareWarmup {
		spec.seed = groupSeed(seed, norm)
	}
	sc := &scenario{
		kind:        KindConfig,
		name:        name,
		hash:        scenarioHash("config", name, norm, seed, req.ShareWarmup),
		seed:        seed,
		cacheable:   true,
		shareWarmup: req.ShareWarmup,
		runs:        []runSpec{spec},
	}
	return sc, nil
}

func buildBatchScenario(req SubmitRequest, seed uint64) (*scenario, *APIError) {
	name := req.Name
	if name == "" {
		name = KindBatch
	}
	identity := make([]BatchItem, 0, len(req.Batch))
	runs := make([]runSpec, 0, len(req.Batch))
	seen := map[string]bool{}
	for i := range req.Batch {
		it := &req.Batch[i]
		if !nameRE.MatchString(it.Key) {
			return nil, &APIError{CodeInvalidRequest,
				fmt.Sprintf("batch[%d]: key must match [a-zA-Z0-9._-]{1,64}", i)}
		}
		if seen[it.Key] {
			return nil, &APIError{CodeInvalidRequest,
				fmt.Sprintf("batch[%d]: duplicate key %q", i, it.Key)}
		}
		seen[it.Key] = true
		if apiErr := checkRunnable(&it.Config, fmt.Sprintf("batch[%d] (%s): ", i, it.Key)); apiErr != nil {
			return nil, apiErr
		}
		norm := normalize(it.Config)
		identity = append(identity, BatchItem{Key: it.Key, Config: norm})
		spec := runSpec{key: it.Key, weight: req.Workers, cfg: norm}
		if req.ShareWarmup {
			spec.seed = groupSeed(seed, norm)
		}
		runs = append(runs, spec)
	}
	return &scenario{
		kind:        KindBatch,
		name:        name,
		hash:        scenarioHash("batch", name, identity, seed, req.ShareWarmup),
		seed:        seed,
		cacheable:   true,
		shareWarmup: req.ShareWarmup,
		runs:        runs,
	}, nil
}

func buildFigureScenario(req SubmitRequest, seed uint64) (*scenario, *APIError) {
	fig, ok := experiments.FigureByName(req.Figure)
	if !ok {
		return nil, &APIError{CodeUnknownFigure,
			fmt.Sprintf("unknown figure %q", req.Figure)}
	}
	if req.Tiny && req.Full {
		return nil, &APIError{CodeInvalidRequest, "tiny and full are mutually exclusive"}
	}
	o := experiments.Options{
		Tiny:     req.Tiny,
		Full:     req.Full,
		Seed:     seed,
		Parallel: req.Workers,
	}
	// A figure job adopts the registry document's own identity — the
	// figure name and its registry config hash — so JobInfo, the /result
	// ETag, and the document body all agree, and the disk cache shares
	// hornet-exp's exact name-hash.json entries. A custom Name is
	// rejected rather than silently diverging from the document.
	if req.Name != "" {
		return nil, &APIError{CodeInvalidRequest,
			"figure jobs are named by the figure itself; omit name"}
	}
	if req.ShareWarmup {
		return nil, &APIError{CodeInvalidRequest,
			"share_warmup applies to config/batch jobs; figures manage their own warmup sharing"}
	}
	return &scenario{
		kind:      KindFigure,
		name:      fig.Name,
		hash:      fig.ConfigHash(o),
		seed:      seed,
		cacheable: !fig.Serial, // wall-clock documents are never byte-stable
		fig:       fig,
		figOpts:   o,
	}, nil
}

// cancelStop adapts a context to the engine's stop-function interface.
func cancelStop(ctx context.Context) func(cycle uint64) bool {
	return func(uint64) bool {
		select {
		case <-ctx.Done():
			return true
		default:
			return false
		}
	}
}

// summarize projects the aggregate statistics onto the wire record.
func summarize(s stats.Summary, nodes int, cycles, skipped uint64) RunStats {
	rs := RunStats{
		Nodes:            nodes,
		Cycles:           cycles,
		SkippedCycles:    skipped,
		FlitsInjected:    s.FlitsInjected,
		FlitsDelivered:   s.FlitsDelivered,
		PacketsInjected:  s.PacketsInjected,
		PacketsDelivered: s.PacketsDelivered,
		AvgFlitLatency:   s.AvgFlitLatency,
		AvgPacketLatency: s.AvgPacketLatency,
		MaxPacketLatency: s.MaxPacketLatency,
		AvgHops:          s.AvgHops,
	}
	if total := cycles + skipped; nodes > 0 && total > 0 {
		rs.Throughput = float64(s.FlitsDelivered) / float64(nodes) / float64(total)
	}
	return rs
}

// encodeDocument renders a document to the exact bytes the API serves
// and the cache stores — one canonical encoding, so cold and cached
// responses are byte-identical.
func encodeDocument(doc sweep.Document) ([]byte, error) {
	var buf bytes.Buffer
	if err := doc.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

package service

import (
	"bytes"
	"context"
	"fmt"
	"regexp"
	"strings"

	"hornet/internal/config"
	"hornet/internal/core"
	"hornet/internal/experiments"
	"hornet/internal/mips"
	scen "hornet/internal/scenario"
	"hornet/internal/sim"
	"hornet/internal/stats"
	"hornet/internal/sweep"
	"hornet/internal/workloads"
)

// defaultSeed matches the experiment harness default, so a figure
// submitted with no seed reproduces the CLI's documents.
const defaultSeed = 0x5EED0A11

var nameRE = regexp.MustCompile(`^[a-zA-Z0-9._-]{1,64}$`)

// scenario is a validated, normalized submission: everything the
// scheduler needs to execute the job, plus the content-address (name,
// hash) of its result document. It is the ONE internal representation
// every submission surface compiles into — the legacy config/figure/
// batch/mips kinds directly, and declarative scenario documents via
// internal/scenario — so there is exactly one execution path
// (executeScenario) no matter how a job was described.
type scenario struct {
	kind string
	name string // document name (also the cache key prefix)
	hash string // sweep.ConfigHash over the identity
	seed uint64

	// surface is the submission surface the client used ("scenario" for
	// declarative documents); kind stays the execution/identity kind the
	// submission lowered to, so cache hashes, sharding rules and fleet
	// dispatch are oblivious to how the job was written. Empty means
	// surface == kind.
	surface string

	// cacheable is false for wall-clock experiments (Serial figures):
	// their documents carry timing fields and are never byte-stable.
	cacheable bool

	// config/batch scenarios: one spec per sweep run. The scheduler
	// compiles them into sweep items against its execution environment
	// (warmup cache, checkpoint settings).
	runs []runSpec
	// shareWarmup derives run seeds from warmup-prefix groups so runs
	// agreeing on everything but measured-phase knobs fork from one
	// warmup snapshot.
	shareWarmup bool
	// shards is the space-parallel member count of a sharded submission
	// (>= 2), 0 for ordinary scenarios. Like Workers it never enters the
	// scenario hash: sharding cannot change result bytes.
	shards int

	// figure scenarios: the registry entry and its scale options.
	fig     experiments.Figure
	figOpts experiments.Options
}

// surfaceKind is the kind reported to clients (JobInfo, validate).
func (sc *scenario) surfaceKind() string {
	if sc.surface != "" {
		return sc.surface
	}
	return sc.kind
}

// runSpec is one config/batch/mips simulation: a stable key, the
// normalized configuration it runs, and — for share_warmup scenarios —
// the warmup-group seed every run in the group shares (0 = the sweep's
// default per-key derivation). The explicit seed flows through
// sweep.Item.Seed so the emitted document records the seed each run
// actually used. mips, when set, switches the run from synthetic
// traffic to an application workload (execEnv.runMips).
type runSpec struct {
	key    string
	weight int
	seed   uint64
	cfg    config.Config
	mips   *MipsSpec
}

// groupSeed derives the shared engine seed for a warmup-prefix group:
// runs agreeing on everything but measured-phase knobs must evolve —
// and snapshot — identically through the warmup, so their seed derives
// from the group identity instead of the item key.
func groupSeed(jobSeed uint64, cfg config.Config) uint64 {
	group := core.WarmupGroupKey(cfg, uint64(cfg.WarmupCycles))
	return sim.DeriveSeed(jobSeed, "warmup-group:"+group)
}

// buildScenario validates a submission and compiles it into a runnable
// scenario. Every rejection is an *APIError suitable for a 4xx response.
func buildScenario(req SubmitRequest) (*scenario, *APIError) {
	set := 0
	if req.Config != nil {
		set++
	}
	if req.Figure != "" {
		set++
	}
	if len(req.Batch) > 0 {
		set++
	}
	if req.Mips != nil {
		set++
	}
	if len(req.Scenario) > 0 {
		set++
	}
	if set != 1 {
		return nil, &APIError{Code: CodeInvalidRequest,
			Message: "exactly one of config, figure, batch, mips, scenario must be set"}
	}
	if req.Name != "" && !nameRE.MatchString(req.Name) {
		return nil, &APIError{Code: CodeInvalidRequest, Field: "/name",
			Message: "name must match [a-zA-Z0-9._-]{1,64}"}
	}
	if req.Workers < 0 {
		return nil, &APIError{Code: CodeInvalidRequest, Field: "/workers",
			Message: "workers must be >= 0"}
	}
	seed := req.Seed
	if seed == 0 {
		seed = defaultSeed
	}
	var (
		sc     *scenario
		apiErr *APIError
	)
	switch {
	case req.Config != nil:
		sc, apiErr = buildConfigScenario(req, seed)
	case req.Figure != "":
		sc, apiErr = buildFigureScenario(req, seed)
	case req.Mips != nil:
		sc, apiErr = buildMipsScenario(req, seed)
	case len(req.Scenario) > 0:
		sc, apiErr = buildScenarioScenario(req)
	default:
		sc, apiErr = buildBatchScenario(req, seed)
	}
	if apiErr != nil {
		return nil, apiErr
	}
	shards := req.Shards
	if sc.shards != 0 {
		// Declarative scenarios carry sharding in their run plan; the
		// builder stashed it for this validation pass.
		shards, sc.shards = sc.shards, 0
	}
	if apiErr := applyShards(sc, shards); apiErr != nil {
		return nil, apiErr
	}
	return sc, nil
}

// applyShards validates a space-parallel request against the compiled
// scenario. Sharding splits ONE simulation's tile grid across members,
// so only single-run kinds qualify, the engine must sync every cycle
// (boundary flits are exchanged at sync points; a coarser cadence would
// let a flit cross a shard boundary unobserved), and warmup sharing is
// meaningless for a single run.
func applyShards(sc *scenario, shards int) *APIError {
	if shards == 0 {
		return nil
	}
	if shards < 2 {
		return &APIError{Code: CodeInvalidRequest, Message: "shards must be 0 (off) or >= 2"}
	}
	if sc.kind != KindConfig && sc.kind != KindMips {
		return &APIError{Code: CodeInvalidRequest,
			Message: "shards applies to config and mips jobs (one simulation split across members)"}
	}
	if sc.shareWarmup {
		return &APIError{Code: CodeInvalidRequest,
			Message: "shards and share_warmup are mutually exclusive"}
	}
	cfg := sc.runs[0].cfg
	if cfg.Engine.SyncPeriod > 1 {
		return &APIError{Code: CodeInvalidRequest,
			Message: "shards requires sync_period 1 (boundary traffic is exchanged every cycle)"}
	}
	if nodes := cfg.Topology.Nodes(); shards > nodes {
		return &APIError{Code: CodeInvalidRequest, Message: fmt.Sprintf(
			"shards (%d) must not exceed the topology's %d nodes", shards, nodes)}
	}
	sc.shards = shards
	return nil
}

// legacyMipsKernel marks the pre-registry kernels whose MipsSpec wire
// format (dedicated rounds/q/b fields, params empty) is frozen: their
// normalized identity — and therefore their cache hashes — must stay
// byte-identical to what earlier daemons computed.
func legacyMipsKernel(name string) bool {
	switch name {
	case "pingpong", "shared-pingpong", "cannon":
		return true
	}
	return false
}

// mipsParams projects a normalized spec onto the registry's parameter
// space: legacy kernels from their dedicated fields, registry kernels
// from Params directly.
func mipsParams(m *MipsSpec) workloads.Params {
	if legacyMipsKernel(m.Workload) {
		return workloads.Params{"rounds": int64(m.Rounds), "q": int64(m.Q), "b": int64(m.B)}
	}
	return m.Params
}

// mipsWorkloadSource generates the assembly for a validated spec.
// nodes is the topology's node count (the shared ping-pong partner is
// the last node).
func mipsWorkloadSource(m *MipsSpec, nodes int) string {
	k, ok := workloads.Lookup(m.Workload)
	if !ok {
		panic("service: unvalidated mips workload " + m.Workload)
	}
	return k.Source(mipsParams(m), nodes)
}

// mipsShared reports whether a validated spec runs on the coherent-
// memory fabric (AttachMIPSShared) rather than private per-core memory.
func mipsShared(m *MipsSpec) bool {
	k, ok := workloads.Lookup(m.Workload)
	return ok && k.Shared
}

// normalizeMips validates an application-workload spec and folds in its
// defaults. The normalized spec is the cache identity, so {"rounds": 0}
// and {"rounds": 100} hash identically. It is shared by the legacy mips
// kind and the declarative scenario path — one set of rules, one
// identity, which is what makes a scenario expressing a legacy workload
// cache under the legacy key.
func normalizeMips(m MipsSpec) (MipsSpec, *APIError) {
	k, ok := workloads.Lookup(m.Workload)
	if !ok {
		return m, &APIError{Code: CodeInvalidRequest, Field: "/mips/workload", Message: fmt.Sprintf(
			"mips: unknown workload %q (%s)", m.Workload, strings.Join(workloads.Names(), ", "))}
	}
	if legacyMipsKernel(m.Workload) {
		if len(m.Params) > 0 {
			return m, &APIError{Code: CodeInvalidRequest, Field: "/mips/params", Message: fmt.Sprintf(
				"mips: %s predates the parameter registry; use the rounds/q/b fields, not params", m.Workload)}
		}
		if m.Rounds <= 0 {
			m.Rounds = 100
		}
		if m.Q <= 0 {
			m.Q = 2
		}
		if m.B <= 0 {
			m.B = 4
		}
		// Bound the workload parameters: they size in-memory structures
		// (cannon blocks are 4*b*b bytes each) and run length, so an
		// unbounded submission could exhaust the daemon at validation time.
		if m.Rounds > 1_000_000 {
			return m, &APIError{Code: CodeInvalidRequest, Field: "/mips/rounds",
				Message: "mips: rounds must be <= 1000000"}
		}
		if m.Q > 64 || m.B > 64 {
			return m, &APIError{Code: CodeInvalidRequest, Field: "/mips/q",
				Message: "mips: cannon q and b must be <= 64"}
		}
	} else {
		if m.Rounds != 0 || m.Q != 0 || m.B != 0 {
			return m, &APIError{Code: CodeInvalidRequest, Field: "/mips/params", Message: fmt.Sprintf(
				"mips: %s is parameterized via params, not the rounds/q/b fields", m.Workload)}
		}
		p, err := k.Normalize(m.Params)
		if err != nil {
			return m, &APIError{Code: CodeInvalidRequest, Field: "/mips/params",
				Message: "mips: " + err.Error()}
		}
		m.Params = p
	}
	if m.MaxCycles == 0 {
		m.MaxCycles = 10_000_000
	}
	if m.MaxCycles > 1_000_000_000 {
		return m, &APIError{Code: CodeInvalidRequest, Field: "/mips/max_cycles",
			Message: "mips: max_cycles must be <= 1000000000"}
	}
	if err := m.Config.Validate(); err != nil {
		return m, &APIError{Code: CodeInvalidConfig, Field: "/mips/config",
			Message: "mips: " + err.Error()}
	}
	if len(m.Config.Traffic) > 0 {
		return m, &APIError{Code: CodeInvalidConfig, Field: "/mips/config/traffic",
			Message: "mips: scenario takes no synthetic traffic (the workload is the traffic)"}
	}
	nodes := m.Config.Topology.Nodes()
	if err := k.Validate(mipsParams(&m), nodes); err != nil {
		return m, &APIError{Code: CodeInvalidConfig, Field: "/mips/config",
			Message: "mips: " + err.Error()}
	}
	if k.Shared && m.Config.Memory == nil {
		return m, &APIError{Code: CodeInvalidConfig, Field: "/mips/config/memory", Message: fmt.Sprintf(
			"mips: %s needs config.memory (the coherent fabric it runs on)", m.Workload)}
	}
	if !k.Shared && m.Config.Memory != nil {
		return m, &APIError{Code: CodeInvalidConfig, Field: "/mips/config/memory",
			Message: "mips: " + m.Workload + " uses private per-core memory; omit config.memory"}
	}
	// Catch assembly errors at submission time (4xx), not mid-job.
	if _, err := mips.Assemble(mipsWorkloadSource(&m, nodes)); err != nil {
		return m, &APIError{Code: CodeInvalidConfig,
			Message: "mips: workload does not assemble: " + err.Error()}
	}
	m.Config = normalize(m.Config)
	// The driver-level cycle windows do not apply to application runs:
	// the workload defines its own span (halt or max_cycles).
	m.Config.WarmupCycles, m.Config.AnalyzedCycles = 0, 0
	return m, nil
}

// buildMipsScenario validates an application-workload submission.
func buildMipsScenario(req SubmitRequest, seed uint64) (*scenario, *APIError) {
	if req.ShareWarmup {
		return nil, &APIError{Code: CodeInvalidRequest, Field: "/share_warmup",
			Message: "share_warmup applies to config/batch jobs; mips runs have no warmup prefix"}
	}
	m, apiErr := normalizeMips(*req.Mips)
	if apiErr != nil {
		return nil, apiErr
	}
	name := req.Name
	if name == "" {
		name = "mips-" + m.Workload
	}
	return &scenario{
		kind:      KindMips,
		name:      name,
		hash:      scenarioHash("mips", name, m, seed, false),
		seed:      seed,
		cacheable: true,
		runs:      []runSpec{{key: name, weight: req.Workers, cfg: m.Config, mips: &m}},
	}, nil
}

// mipsBatchItem is the identity record of one workload run in a
// multi-run scenario: the workload analogue of BatchItem, hashed under
// the "scenario" label (no legacy kind ever produced this shape).
type mipsBatchItem struct {
	Key  string   `json:"key"`
	Mips MipsSpec `json:"mips"`
}

// scenarioMips lowers one compiled scenario run onto the mips wire
// spec. Legacy kernels map onto the frozen rounds/q/b fields (params
// stays empty), so the normalized identity — and therefore the cache
// hash — is byte-identical to the legacy mips kind's.
func scenarioMips(r scen.Run) MipsSpec {
	m := MipsSpec{Workload: r.Workload.Kernel, MaxCycles: r.Workload.MaxCycles, Config: r.Config}
	if legacyMipsKernel(m.Workload) {
		m.Rounds = int(r.Workload.Params.Get("rounds", 0))
		m.Q = int(r.Workload.Params.Get("q", 0))
		m.B = int(r.Workload.Params.Get("b", 0))
	} else {
		m.Params = r.Workload.Params
	}
	return m
}

// buildScenarioScenario compiles a declarative scenario document
// (internal/scenario) into the shared internal representation. For the
// shapes a legacy kind can express, the lowering reproduces that kind's
// cache identity exactly — a scenario describing the pingpong machine
// hashes (and hits the cache) as the equivalent mips submission — while
// shapes the legacy API could not express (workload sweeps) hash under
// the "scenario" label.
func buildScenarioScenario(req SubmitRequest) (*scenario, *APIError) {
	reject := func(field, what string) *APIError {
		return &APIError{Code: CodeInvalidRequest, Field: field, Message: fmt.Sprintf(
			"scenario documents carry their own %s; omit the request-level field", what)}
	}
	if req.Name != "" {
		return nil, reject("/name", "name")
	}
	if req.Seed != 0 {
		return nil, reject("/seed", "seed (run.seed)")
	}
	if req.Shards != 0 {
		return nil, reject("/shards", "sharding (run.shards)")
	}
	if req.ShareWarmup {
		return nil, reject("/share_warmup", "warmup sharing (run.share_warmup)")
	}
	doc, ferr := scen.Decode(req.Scenario)
	if ferr != nil {
		return nil, &APIError{Code: CodeInvalidScenario, Field: "/scenario" + ferr.Path, Message: ferr.Msg}
	}
	comp, ferr := scen.Compile(doc)
	if ferr != nil {
		return nil, &APIError{Code: CodeInvalidScenario, Field: "/scenario" + ferr.Path, Message: ferr.Msg}
	}
	seed := comp.Seed
	workload := comp.Normalized.Workload != nil
	runs := make([]runSpec, 0, len(comp.Runs))
	for _, r := range comp.Runs {
		if r.Workload != nil {
			m, apiErr := normalizeMips(scenarioMips(r))
			if apiErr != nil {
				// The compile step already validated the kernel against the
				// machine; anything surfacing here (e.g. an assembly failure)
				// is still the workload's fault, so point there.
				apiErr.Field = "/scenario/workload"
				return nil, apiErr
			}
			runs = append(runs, runSpec{key: r.Key, weight: req.Workers, cfg: m.Config, mips: &m})
			continue
		}
		cfg := normalize(r.Config)
		spec := runSpec{key: r.Key, weight: req.Workers, cfg: cfg}
		if comp.ShareWarmup {
			spec.seed = groupSeed(seed, cfg)
		}
		runs = append(runs, spec)
	}
	name := comp.Name
	sc := &scenario{
		surface:     KindScenario,
		seed:        seed,
		cacheable:   true,
		shareWarmup: comp.ShareWarmup,
		shards:      comp.Shards,
		runs:        runs,
	}
	switch {
	case workload && len(runs) == 1:
		if name == "" {
			name = "mips-" + runs[0].mips.Workload
		}
		sc.kind, sc.name = KindMips, name
		sc.hash = scenarioHash("mips", name, *runs[0].mips, seed, false)
	case !workload && len(runs) == 1:
		if name == "" {
			name = KindConfig
		}
		sc.kind, sc.name = KindConfig, name
		sc.hash = scenarioHash("config", name, runs[0].cfg, seed, comp.ShareWarmup)
	case !workload:
		if name == "" {
			name = KindBatch
		}
		identity := make([]BatchItem, len(runs))
		for i, r := range runs {
			identity[i] = BatchItem{Key: r.key, Config: r.cfg}
		}
		sc.kind, sc.name = KindBatch, name
		sc.hash = scenarioHash("batch", name, identity, seed, comp.ShareWarmup)
	default: // workload sweep: no legacy kind to match, own identity
		if name == "" {
			name = KindScenario
		}
		identity := make([]mipsBatchItem, len(runs))
		for i, r := range runs {
			identity[i] = mipsBatchItem{Key: r.key, Mips: *r.mips}
		}
		sc.kind, sc.name = KindBatch, name
		sc.hash = scenarioHash("scenario", name, identity, seed, false)
	}
	if len(runs) == 1 {
		// Single-run scenarios label their one run by the job name, the
		// same convention the legacy kinds use.
		runs[0].key = name
	}
	return sc, nil
}

// checkRunnable validates one submitted simulation configuration beyond
// config.Validate: the service runs synthetic-traffic simulations with a
// bounded measured window, so both must be present.
func checkRunnable(c *config.Config, where string) *APIError {
	if err := c.Validate(); err != nil {
		return &APIError{Code: CodeInvalidConfig, Message: where + err.Error()}
	}
	if len(c.Traffic) == 0 {
		return &APIError{Code: CodeInvalidConfig,
			Message: where + "config: scenario needs at least one synthetic traffic source"}
	}
	if c.AnalyzedCycles < 1 {
		return &APIError{Code: CodeInvalidConfig,
			Message: where + "config: analyzed_cycles must be >= 1"}
	}
	if c.WarmupCycles < 0 {
		return &APIError{Code: CodeInvalidConfig,
			Message: where + "config: warmup_cycles must be >= 0"}
	}
	return nil
}

// normalize strips the execution-only engine fields from a copy of the
// configuration: worker count never changes results (the engine is
// deterministic across workers) and the engine seed is overridden by the
// job's derived per-run seed, so neither may enter the cache identity.
func normalize(c config.Config) config.Config {
	c.Engine.Workers = 0
	c.Engine.Seed = 0
	return c
}

// scenarioHash computes the job identity. share_warmup changes per-run
// seeding, so it must fork the identity; the extra label keeps hashes
// of share_warmup=false submissions identical to what earlier daemons
// produced (their cached documents stay valid).
func scenarioHash(kind, name string, identity any, seed uint64, shareWarmup bool) string {
	if shareWarmup {
		return sweep.ConfigHash("service/"+kind, name, identity, seed, "share_warmup")
	}
	return sweep.ConfigHash("service/"+kind, name, identity, seed)
}

func buildConfigScenario(req SubmitRequest, seed uint64) (*scenario, *APIError) {
	if apiErr := checkRunnable(req.Config, ""); apiErr != nil {
		return nil, apiErr
	}
	name := req.Name
	if name == "" {
		name = KindConfig
	}
	norm := normalize(*req.Config)
	spec := runSpec{key: name, weight: req.Workers, cfg: norm}
	if req.ShareWarmup {
		spec.seed = groupSeed(seed, norm)
	}
	sc := &scenario{
		kind:        KindConfig,
		name:        name,
		hash:        scenarioHash("config", name, norm, seed, req.ShareWarmup),
		seed:        seed,
		cacheable:   true,
		shareWarmup: req.ShareWarmup,
		runs:        []runSpec{spec},
	}
	return sc, nil
}

func buildBatchScenario(req SubmitRequest, seed uint64) (*scenario, *APIError) {
	name := req.Name
	if name == "" {
		name = KindBatch
	}
	identity := make([]BatchItem, 0, len(req.Batch))
	runs := make([]runSpec, 0, len(req.Batch))
	seen := map[string]bool{}
	for i := range req.Batch {
		it := &req.Batch[i]
		if !nameRE.MatchString(it.Key) {
			return nil, &APIError{Code: CodeInvalidRequest,
				Message: fmt.Sprintf("batch[%d]: key must match [a-zA-Z0-9._-]{1,64}", i)}
		}
		if seen[it.Key] {
			return nil, &APIError{Code: CodeInvalidRequest,
				Message: fmt.Sprintf("batch[%d]: duplicate key %q", i, it.Key)}
		}
		seen[it.Key] = true
		if apiErr := checkRunnable(&it.Config, fmt.Sprintf("batch[%d] (%s): ", i, it.Key)); apiErr != nil {
			return nil, apiErr
		}
		norm := normalize(it.Config)
		identity = append(identity, BatchItem{Key: it.Key, Config: norm})
		spec := runSpec{key: it.Key, weight: req.Workers, cfg: norm}
		if req.ShareWarmup {
			spec.seed = groupSeed(seed, norm)
		}
		runs = append(runs, spec)
	}
	return &scenario{
		kind:        KindBatch,
		name:        name,
		hash:        scenarioHash("batch", name, identity, seed, req.ShareWarmup),
		seed:        seed,
		cacheable:   true,
		shareWarmup: req.ShareWarmup,
		runs:        runs,
	}, nil
}

func buildFigureScenario(req SubmitRequest, seed uint64) (*scenario, *APIError) {
	fig, ok := experiments.FigureByName(req.Figure)
	if !ok {
		return nil, &APIError{Code: CodeUnknownFigure,
			Message: fmt.Sprintf("unknown figure %q", req.Figure)}
	}
	if req.Tiny && req.Full {
		return nil, &APIError{Code: CodeInvalidRequest, Message: "tiny and full are mutually exclusive"}
	}
	o := experiments.Options{
		Tiny:     req.Tiny,
		Full:     req.Full,
		Seed:     seed,
		Parallel: req.Workers,
	}
	// A figure job adopts the registry document's own identity — the
	// figure name and its registry config hash — so JobInfo, the /result
	// ETag, and the document body all agree, and the disk cache shares
	// hornet-exp's exact name-hash.json entries. A custom Name is
	// rejected rather than silently diverging from the document.
	if req.Name != "" {
		return nil, &APIError{Code: CodeInvalidRequest,
			Message: "figure jobs are named by the figure itself; omit name"}
	}
	if req.ShareWarmup {
		return nil, &APIError{Code: CodeInvalidRequest,
			Message: "share_warmup applies to config/batch jobs; figures manage their own warmup sharing"}
	}
	return &scenario{
		kind:      KindFigure,
		name:      fig.Name,
		hash:      fig.ConfigHash(o),
		seed:      seed,
		cacheable: !fig.Serial, // wall-clock documents are never byte-stable
		fig:       fig,
		figOpts:   o,
	}, nil
}

// cancelStop adapts a context to the engine's stop-function interface.
func cancelStop(ctx context.Context) func(cycle uint64) bool {
	return func(uint64) bool {
		select {
		case <-ctx.Done():
			return true
		default:
			return false
		}
	}
}

// summarize projects the aggregate statistics onto the wire record.
func summarize(s stats.Summary, nodes int, cycles, skipped uint64) RunStats {
	rs := RunStats{
		Nodes:            nodes,
		Cycles:           cycles,
		SkippedCycles:    skipped,
		FlitsInjected:    s.FlitsInjected,
		FlitsDelivered:   s.FlitsDelivered,
		PacketsInjected:  s.PacketsInjected,
		PacketsDelivered: s.PacketsDelivered,
		AvgFlitLatency:   s.AvgFlitLatency,
		AvgPacketLatency: s.AvgPacketLatency,
		MaxPacketLatency: s.MaxPacketLatency,
		AvgHops:          s.AvgHops,
	}
	if total := cycles + skipped; nodes > 0 && total > 0 {
		rs.Throughput = float64(s.FlitsDelivered) / float64(nodes) / float64(total)
	}
	return rs
}

// encodeDocument renders a document to the exact bytes the API serves
// and the cache stores — one canonical encoding, so cold and cached
// responses are byte-identical.
func encodeDocument(doc sweep.Document) ([]byte, error) {
	var buf bytes.Buffer
	if err := doc.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

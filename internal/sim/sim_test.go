package sim

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a.Reseed(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(7)
	if err := quick.Check(func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(99)
	for i := 0; i < 10_000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGBernoulliRate(t *testing.T) {
	r := NewRNG(1)
	hits := 0
	const n = 100_000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.28 || rate > 0.32 {
		t.Fatalf("Bernoulli(0.3) hit rate %.4f", rate)
	}
	if r.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Fatal("Bernoulli(1) returned false")
	}
}

func TestRNGPickRespectsWeights(t *testing.T) {
	r := NewRNG(5)
	counts := [3]int{}
	w := []float64{1, 0, 3}
	for i := 0; i < 40_000; i++ {
		counts[r.Pick(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight option picked %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight ratio %.2f, want ~3", ratio)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(11)
	if err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%32) + 1
		p := make([]int, n)
		r.Perm(p)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGGeometricMean(t *testing.T) {
	r := NewRNG(3)
	sum := 0
	const n = 50_000
	for i := 0; i < n; i++ {
		v := r.Geometric(8, 64)
		if v < 1 || v > 64 {
			t.Fatalf("geometric sample %d out of [1,64]", v)
		}
		sum += v
	}
	mean := float64(sum) / n
	if mean < 7 || mean > 9 {
		t.Fatalf("geometric mean %.2f, want ~8", mean)
	}
}

func TestBarrierAllArrive(t *testing.T) {
	const parties = 8
	const rounds = 200
	b := NewBarrier(parties)
	var counter atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				counter.Add(1)
				b.Await(nil)
				// Everyone must observe the full round's increments.
				if c := counter.Load(); c < int64((r+1)*parties) {
					t.Errorf("round %d: counter %d < %d", r, c, (r+1)*parties)
					return
				}
				b.Await(nil)
			}
		}()
	}
	wg.Wait()
	if counter.Load() != parties*rounds {
		t.Fatalf("counter = %d, want %d", counter.Load(), parties*rounds)
	}
}

func TestBarrierLeaderActionOncePerGeneration(t *testing.T) {
	const parties = 4
	const rounds = 100
	b := NewBarrier(parties)
	var actions atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				b.Await(func() { actions.Add(1) })
			}
		}()
	}
	wg.Wait()
	if actions.Load() != rounds {
		t.Fatalf("leader action ran %d times, want %d", actions.Load(), rounds)
	}
}

// countTile counts phase calls and exposes a scripted next event.
type countTile struct {
	transfers []uint64
	commits   []uint64
	next      uint64
}

func (c *countTile) PhaseTransfer(cycle uint64) { c.transfers = append(c.transfers, cycle) }
func (c *countTile) PhaseCommit(cycle uint64)   { c.commits = append(c.commits, cycle) }
func (c *countTile) NextEvent(now uint64) uint64 {
	if c.next == 0 {
		return NoEvent
	}
	if c.next <= now {
		return now + 1
	}
	return c.next
}

func TestEnginePhasesOrderedPerCycle(t *testing.T) {
	tiles := []Tile{&countTile{}, &countTile{}, &countTile{}}
	e := NewEngine(tiles, 2, 1, false, nil)
	res := e.Run(0, 10, nil)
	if res.Cycles != 10 {
		t.Fatalf("ran %d cycles, want 10", res.Cycles)
	}
	for i, tl := range tiles {
		ct := tl.(*countTile)
		if len(ct.transfers) != 10 || len(ct.commits) != 10 {
			t.Fatalf("tile %d: %d transfers, %d commits", i, len(ct.transfers), len(ct.commits))
		}
		for c := uint64(0); c < 10; c++ {
			if ct.transfers[c] != c || ct.commits[c] != c {
				t.Fatalf("tile %d cycle %d: got transfer %d commit %d", i, c, ct.transfers[c], ct.commits[c])
			}
		}
	}
}

func TestEngineLooseSyncRunsAllCycles(t *testing.T) {
	tiles := []Tile{&countTile{}, &countTile{}}
	e := NewEngine(tiles, 2, 7, false, nil)
	res := e.Run(0, 100, nil)
	if res.Cycles != 100 {
		t.Fatalf("ran %d cycles, want 100", res.Cycles)
	}
	for _, tl := range tiles {
		if n := len(tl.(*countTile).transfers); n != 100 {
			t.Fatalf("tile ran %d transfers, want 100", n)
		}
	}
}

func TestEngineFastForwardSkipsIdle(t *testing.T) {
	tiles := []Tile{&countTile{next: 500}, &countTile{}}
	e := NewEngine(tiles, 1, 1, true, nil)
	res := e.Run(0, 1000, nil)
	if res.SkippedCycles == 0 {
		t.Fatal("fast-forward skipped nothing")
	}
	if res.Cycles+res.SkippedCycles != 1000 {
		t.Fatalf("cycles %d + skipped %d != 1000", res.Cycles, res.SkippedCycles)
	}
	// The event cycle itself must have been executed, not skipped.
	found := false
	for _, c := range tiles[0].(*countTile).transfers {
		if c == 500 {
			found = true
		}
	}
	if !found {
		t.Fatal("fast-forward skipped over the scheduled event cycle")
	}
}

func TestEngineStopFunction(t *testing.T) {
	tiles := []Tile{&countTile{}}
	e := NewEngine(tiles, 1, 1, false, nil)
	res := e.Run(0, 1000, func(cycle uint64) bool { return cycle >= 99 })
	if res.Cycles != 100 {
		t.Fatalf("stop at cycle 99 ran %d cycles, want 100", res.Cycles)
	}
}

// Regression: Run's second argument is a cycle COUNT, never an absolute
// end cycle. Run(100, 50) must execute the half-open window [100, 150) —
// it must not read 50 as "end at cycle 50" and run nothing (or, worse,
// wrap). Callers that start mid-simulation (checkpoint resume, chunked
// autosave) depend on this.
func TestEngineRunSecondArgIsCycleCount(t *testing.T) {
	tiles := []Tile{&countTile{}, &countTile{}}
	e := NewEngine(tiles, 2, 1, false, nil)
	res := e.Run(100, 50, nil)
	if res.Cycles != 50 {
		t.Fatalf("Run(100, 50) executed %d cycles, want 50 (count, not end cycle)", res.Cycles)
	}
	for i, tl := range tiles {
		ct := tl.(*countTile)
		if len(ct.transfers) != 50 {
			t.Fatalf("tile %d saw %d cycles, want 50", i, len(ct.transfers))
		}
		if first, last := ct.transfers[0], ct.transfers[49]; first != 100 || last != 149 {
			t.Fatalf("tile %d ran window [%d, %d], want [100, 149]", i, first, last)
		}
	}

	// The stop predicate observes clock values from the same window: a
	// caller stopping "50 cycles from now" sees start+k, not k.
	var seen []uint64
	e2 := NewEngine([]Tile{&countTile{}}, 1, 1, false, nil)
	e2.Run(1000, 5, func(cycle uint64) bool {
		seen = append(seen, cycle)
		return false
	})
	if len(seen) == 0 {
		t.Fatal("stop predicate never evaluated")
	}
	for _, c := range seen {
		if c < 1000 || c > 1005 {
			t.Fatalf("stop predicate saw cycle %d, outside window [1000, 1005]", c)
		}
	}
}

func TestEnginePartitionCoversAllTiles(t *testing.T) {
	for tiles := 1; tiles <= 20; tiles++ {
		for workers := 1; workers <= tiles; workers++ {
			e := &Engine{tiles: make([]Tile, tiles), workers: workers}
			covered := make([]int, tiles)
			for w := 0; w < workers; w++ {
				lo, hi := e.partition(w)
				for i := lo; i < hi; i++ {
					covered[i]++
				}
			}
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("tiles=%d workers=%d: tile %d covered %d times", tiles, workers, i, c)
				}
			}
		}
	}
}

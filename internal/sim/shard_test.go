package sim

import (
	"sync"
	"testing"
)

// TestShardSpanMatchesPartition: the shard-to-tile mapping must be the
// exact equal-division mapping the engine uses for workers, so sharding a
// system across N processes partitions tiles identically to running it
// single-process with N workers.
func TestShardSpanMatchesPartition(t *testing.T) {
	for tiles := 1; tiles <= 24; tiles++ {
		for count := 1; count <= tiles; count++ {
			e := &Engine{tiles: make([]Tile, tiles), workers: count}
			for idx := 0; idx < count; idx++ {
				wlo, whi := e.partition(idx)
				slo, shi := ShardSpan(tiles, count, idx)
				if slo != wlo || shi != whi {
					t.Fatalf("tiles=%d count=%d shard %d: span [%d,%d) != worker span [%d,%d)",
						tiles, count, idx, slo, shi, wlo, whi)
				}
			}
		}
	}
}

// TestDecideShardSync: the pure group decision must reproduce the
// single-process leader — stop first, completion = every span done AND a
// drained network, fast-forward to the minimum earliest event clamped to
// the end bound.
func TestDecideShardSync(t *testing.T) {
	for _, tc := range []struct {
		name  string
		votes []ShardVote
		want  ShardDecision
	}{
		{
			name: "plain advance",
			votes: []ShardVote{
				{Cycle: 5, End: 100, Earliest: 6},
				{Cycle: 5, End: 100, Earliest: 6},
			},
			want: ShardDecision{Next: 6},
		},
		{
			name: "ff skip to min earliest",
			votes: []ShardVote{
				{Cycle: 5, End: 100, Earliest: 70},
				{Cycle: 5, End: 100, Earliest: 40},
			},
			want: ShardDecision{Next: 40, Skipped: 34},
		},
		{
			name: "ff clamped to end",
			votes: []ShardVote{
				{Cycle: 5, End: 100, Earliest: 400},
				{Cycle: 5, End: 100, Earliest: NoEvent},
			},
			want: ShardDecision{Next: 100, Skipped: 94, Halt: true},
		},
		{
			name: "all idle forever",
			votes: []ShardVote{
				{Cycle: 5, End: 100, Earliest: NoEvent},
				{Cycle: 5, End: 100, Earliest: NoEvent},
			},
			want: ShardDecision{Next: 100, Skipped: 94, Halt: true},
		},
		{
			name: "inflight sum vetoes skip even when per-shard counters drift",
			votes: []ShardVote{
				{Cycle: 5, End: 100, Earliest: 70, Inflight: -3},
				{Cycle: 5, End: 100, Earliest: 70, Inflight: 4},
			},
			want: ShardDecision{Next: 6},
		},
		{
			name: "drifted counters summing to zero allow skip",
			votes: []ShardVote{
				{Cycle: 5, End: 100, Earliest: 70, Inflight: -3},
				{Cycle: 5, End: 100, Earliest: 70, Inflight: 3},
			},
			want: ShardDecision{Next: 70, Skipped: 64},
		},
		{
			name: "stop on any shard wins over fast-forward",
			votes: []ShardVote{
				{Cycle: 5, End: 100, Earliest: NoEvent, Stop: true},
				{Cycle: 5, End: 100, Earliest: NoEvent},
			},
			want: ShardDecision{Next: 6, Halt: true, Stopped: true},
		},
		{
			name: "done requires every shard",
			votes: []ShardVote{
				{Cycle: 5, End: 100, Earliest: 6, Done: true},
				{Cycle: 5, End: 100, Earliest: 6},
			},
			want: ShardDecision{Next: 6},
		},
		{
			name: "done everywhere but flits in flight keeps running",
			votes: []ShardVote{
				{Cycle: 5, End: 100, Earliest: 6, Done: true, Inflight: 2},
				{Cycle: 5, End: 100, Earliest: 6, Done: true, Inflight: -1},
			},
			want: ShardDecision{Next: 6},
		},
		{
			name: "done everywhere and drained stops",
			votes: []ShardVote{
				{Cycle: 5, End: 100, Earliest: 6, Done: true},
				{Cycle: 5, End: 100, Earliest: 6, Done: true},
			},
			want: ShardDecision{Next: 6, Halt: true, Stopped: true},
		},
		{
			name: "final cycle halts",
			votes: []ShardVote{
				{Cycle: 99, End: 100, Earliest: 100},
				{Cycle: 99, End: 100, Earliest: 100},
			},
			want: ShardDecision{Next: 100, Halt: true},
		},
		{
			name: "join aligns without stop evaluation",
			votes: []ShardVote{
				{Join: true, Cycle: 10, End: 100, Earliest: 10, Stop: true},
				{Join: true, Cycle: 10, End: 100, Earliest: 10},
			},
			want: ShardDecision{Next: 10},
		},
		{
			name: "join pre-jumps a resumed idle run",
			votes: []ShardVote{
				{Join: true, Cycle: 10, End: 100, Earliest: 50},
				{Join: true, Cycle: 10, End: 100, Earliest: NoEvent},
			},
			want: ShardDecision{Next: 50, Skipped: 40},
		},
		{
			name: "join pre-jump clamps to end",
			votes: []ShardVote{
				{Join: true, Cycle: 10, End: 100, Earliest: NoEvent},
				{Join: true, Cycle: 10, End: 100, Earliest: NoEvent},
			},
			want: ShardDecision{Next: 100, Skipped: 90, Halt: true},
		},
	} {
		got, err := DecideShardSync(tc.votes)
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%s: got %+v, want %+v", tc.name, got, tc.want)
		}
	}
	if _, err := DecideShardSync(nil); err == nil {
		t.Error("no votes: want error")
	}
	if _, err := DecideShardSync([]ShardVote{{Cycle: 1, End: 9}, {Cycle: 2, End: 9}}); err == nil {
		t.Error("disagreeing cycles: want error")
	}
}

// localShardGroup is an in-process coupler for engine-level tests: it
// gathers every shard's vote, folds them with DecideShardSync and
// releases all shards with the shared decision — the same contract the
// serve coordinator implements over HTTP.
type localShardGroup struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	votes []ShardVote
	dec   ShardDecision
	err   error
	gen   int
}

func newLocalShardGroup(n int) *localShardGroup {
	g := &localShardGroup{n: n}
	g.cond = sync.NewCond(&g.mu)
	return g
}

func (g *localShardGroup) Sync(v ShardVote) (ShardDecision, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	gen := g.gen
	g.votes = append(g.votes, v)
	if len(g.votes) == g.n {
		g.dec, g.err = DecideShardSync(g.votes)
		g.votes = g.votes[:0]
		g.gen++
		g.cond.Broadcast()
	} else {
		for g.gen == gen {
			g.cond.Wait()
		}
	}
	return g.dec, g.err
}

// TestShardedEngineMatchesSingleProcess: two engines sharding a tile set
// (with an event far into an idle stretch on one side only) must execute
// exactly the cycles the single-process run executes, with identical
// fast-forward accounting — including when the sharded run is split into
// resumed chunks at checkpoint-autosave cadence.
func TestShardedEngineMatchesSingleProcess(t *testing.T) {
	const n, total = 8, 1000
	mk := func() []Tile {
		tiles := make([]Tile, n)
		for i := range tiles {
			tiles[i] = &countTile{}
		}
		tiles[2] = &countTile{next: 700}
		return tiles
	}

	ref := mk()
	refRes := NewEngine(ref, 2, 1, true, nil).Run(0, total, nil)

	for _, chunk := range []uint64{total, 250} {
		tilesA, tilesB := mk(), mk()
		group := newLocalShardGroup(2)
		engines := make([]*Engine, 2)
		for i, tiles := range [][]Tile{tilesA, tilesB} {
			e := NewEngine(tiles, 2, 1, true, nil)
			if err := e.SetShard(i, 2, group, nil); err != nil {
				t.Fatal(err)
			}
			engines[i] = e
		}
		var wg sync.WaitGroup
		results := make([][]RunResult, 2)
		for i, e := range engines {
			wg.Add(1)
			go func(i int, e *Engine) {
				defer wg.Done()
				for at := uint64(0); at < total; {
					var res RunResult
					if at == 0 {
						res = e.Run(at, min(chunk, total-at), nil)
					} else {
						res = e.RunResumed(at, min(chunk, total-at), nil)
					}
					if res.Err != nil {
						t.Errorf("shard %d: %v", i, res.Err)
						return
					}
					results[i] = append(results[i], res)
					at += res.Cycles + res.SkippedCycles
				}
			}(i, e)
		}
		wg.Wait()
		for i := range engines {
			var cycles, skipped uint64
			for _, r := range results[i] {
				cycles += r.Cycles
				skipped += r.SkippedCycles
			}
			if cycles != refRes.Cycles || skipped != refRes.SkippedCycles {
				t.Fatalf("chunk=%d shard %d: cycles=%d skipped=%d, single-process %d/%d",
					chunk, i, cycles, skipped, refRes.Cycles, refRes.SkippedCycles)
			}
		}
		// Every in-span tile must have seen exactly the reference phase
		// schedule; out-of-span tiles must never have been stepped.
		for i, tiles := range [][]Tile{tilesA, tilesB} {
			lo, hi := engines[i].Span()
			for j, tl := range tiles {
				ct, want := tl.(*countTile), ref[j].(*countTile)
				if j >= lo && j < hi {
					if len(ct.transfers) != len(want.transfers) {
						t.Fatalf("chunk=%d shard %d tile %d: %d transfers, single-process %d",
							chunk, i, j, len(ct.transfers), len(want.transfers))
					}
					for k := range ct.transfers {
						if ct.transfers[k] != want.transfers[k] {
							t.Fatalf("chunk=%d shard %d tile %d: transfer %d at cycle %d, want %d",
								chunk, i, j, k, ct.transfers[k], want.transfers[k])
						}
					}
				} else if len(ct.transfers) != 0 {
					t.Fatalf("chunk=%d shard %d stepped out-of-span tile %d", chunk, i, j)
				}
			}
		}
	}
}

// TestSetShardValidation: sharding demands cycle-accurate sync and a
// coupler; the worker count shrinks to the span.
func TestSetShardValidation(t *testing.T) {
	tiles := make([]Tile, 8)
	for i := range tiles {
		tiles[i] = &countTile{}
	}
	if err := NewEngine(tiles, 8, 4, false, nil).SetShard(0, 2, newLocalShardGroup(2), nil); err == nil {
		t.Error("sync period 4: want error")
	}
	if err := NewEngine(tiles, 8, 1, false, nil).SetShard(0, 2, nil, nil); err == nil {
		t.Error("nil coupler: want error")
	}
	e := NewEngine(tiles, 8, 1, false, nil)
	if err := e.SetShard(1, 2, newLocalShardGroup(2), nil); err != nil {
		t.Fatal(err)
	}
	if lo, hi := e.Span(); lo != 4 || hi != 8 {
		t.Fatalf("span [%d,%d), want [4,8)", lo, hi)
	}
	if e.Workers() != 4 {
		t.Fatalf("workers %d, want clamped to 4", e.Workers())
	}
}

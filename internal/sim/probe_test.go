package sim

import (
	"testing"

	"hornet/internal/obs"
)

// busyTile is the cheapest possible always-active tile: with per-cycle
// work this small, any per-cycle allocation or timing overhead in the
// engine loop dominates the measurement.
type busyTile struct{ n uint64 }

func (b *busyTile) PhaseTransfer(cycle uint64)  { b.n++ }
func (b *busyTile) PhaseCommit(cycle uint64)    { b.n++ }
func (b *busyTile) NextEvent(now uint64) uint64 { return now + 1 }

func busyTiles(n int) []Tile {
	tiles := make([]Tile, n)
	for i := range tiles {
		tiles[i] = &busyTile{}
	}
	return tiles
}

// TestEngineHotPathAllocFree is the acceptance guard for the probe
// hooks: with no probe attached, running 10x more cycles must not
// allocate more — i.e. per-cycle allocations are zero and the probe
// branches are free. (Per-Run setup allocations — goroutines, barrier —
// are identical between the two measurements and cancel out.)
func TestEngineHotPathAllocFree(t *testing.T) {
	run := func(cycles uint64) float64 {
		e := NewEngine(busyTiles(4), 2, 1, false, nil)
		return testing.AllocsPerRun(3, func() {
			if res := e.Run(0, cycles, nil); res.Cycles != cycles {
				t.Fatalf("ran %d cycles, want %d", res.Cycles, cycles)
			}
		})
	}
	short, long := run(50), run(500)
	if long > short+1 {
		t.Errorf("hot path allocates per cycle without a probe: %v allocs @50 cycles vs %v @500",
			short, long)
	}
}

// TestEngineProbeRecords sanity-checks that an attached probe sees the
// run: cycles, wall time and every partition.
func TestEngineProbeRecords(t *testing.T) {
	e := NewEngine(busyTiles(4), 2, 1, false, nil)
	p := obs.NewSimProbe()
	e.SetProbe(p)
	if res := e.Run(0, 200, nil); res.Cycles != 200 {
		t.Fatalf("ran %d cycles", res.Cycles)
	}
	s := p.Snapshot()
	if s.Runs != 1 || s.Cycles != 200 {
		t.Errorf("probe totals wrong: %+v", s)
	}
	if len(s.Partitions) != 2 {
		t.Fatalf("partitions = %d, want 2", len(s.Partitions))
	}
	var cycles uint64
	for _, part := range s.Partitions {
		cycles += part.Cycles
		if part.TileHi <= part.TileLo {
			t.Errorf("empty partition span: %+v", part)
		}
	}
	// Each of the 2 partitions counts all 200 cycles.
	if cycles != 400 {
		t.Errorf("partition cycles = %d, want 400", cycles)
	}
	if s.CyclesPerSec <= 0 {
		t.Errorf("cycles/sec = %v", s.CyclesPerSec)
	}

	// Chunked path (syncPeriod > 1) records through the same probe.
	e2 := NewEngine(busyTiles(4), 2, 8, false, nil)
	p2 := obs.NewSimProbe()
	e2.SetProbe(p2)
	e2.Run(0, 64, nil)
	if s2 := p2.Snapshot(); s2.Cycles != 64 || len(s2.Partitions) != 2 {
		t.Errorf("chunked probe totals wrong: %+v", s2)
	}
}

// BenchmarkEngineProbe quantifies probe overhead; the no-probe variant
// is the one the seed BENCH_* gates guard.
func BenchmarkEngineProbe(b *testing.B) {
	for _, bc := range []struct {
		name  string
		probe bool
	}{{"off", false}, {"on", true}} {
		b.Run(bc.name, func(b *testing.B) {
			e := NewEngine(busyTiles(16), 4, 1, false, nil)
			if bc.probe {
				e.SetProbe(obs.NewSimProbe())
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Run(0, 100, nil)
			}
		})
	}
}

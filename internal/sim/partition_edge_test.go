package sim

import (
	"sync"
	"testing"
)

// Edge cases the fleet scheduler now leans on: worker counts above the
// tile count arrive routinely (a worker's slot grant is independent of
// the submitted topology), single-tile systems degenerate to one-party
// barriers, and checkpoint chunking depends on stops landing exactly at
// synchronization points.

// TestEngineCapsWorkersAboveTiles: a worker request larger than the
// tile count caps to one worker per tile, every partition is non-empty,
// and the run is identical to the exactly-matching worker count.
func TestEngineCapsWorkersAboveTiles(t *testing.T) {
	for _, tileCount := range []int{1, 2, 3, 5} {
		mk := func() []Tile {
			tiles := make([]Tile, tileCount)
			for i := range tiles {
				tiles[i] = &countTile{}
			}
			return tiles
		}
		capped := mk()
		e := NewEngine(capped, tileCount+7, 1, false, nil)
		if got := e.Workers(); got != tileCount {
			t.Fatalf("tiles=%d: workers=%d after capping, want %d", tileCount, got, tileCount)
		}
		for w := 0; w < e.Workers(); w++ {
			lo, hi := e.partition(w)
			if hi-lo != 1 {
				t.Fatalf("tiles=%d worker %d owns [%d,%d), want exactly one tile", tileCount, w, lo, hi)
			}
		}
		res := e.Run(0, 50, nil)
		if res.Cycles != 50 || res.Workers != tileCount {
			t.Fatalf("tiles=%d: run %+v", tileCount, res)
		}

		ref := mk()
		NewEngine(ref, tileCount, 1, false, nil).Run(0, 50, nil)
		for i := range capped {
			got, want := capped[i].(*countTile), ref[i].(*countTile)
			if len(got.transfers) != len(want.transfers) || len(got.commits) != len(want.commits) {
				t.Fatalf("tiles=%d tile %d: capped run saw %d/%d phases, exact run %d/%d",
					tileCount, i, len(got.transfers), len(got.commits),
					len(want.transfers), len(want.commits))
			}
		}
	}
}

// TestEnginePartitionBalance: the equal-division mapping never leaves a
// worker more than one tile ahead of another, and the spans are
// contiguous and ordered (neighbouring mesh tiles stay on one worker).
func TestEnginePartitionBalance(t *testing.T) {
	for tiles := 1; tiles <= 24; tiles++ {
		for workers := 1; workers <= tiles; workers++ {
			e := &Engine{tiles: make([]Tile, tiles), workers: workers}
			prevHi, minSpan, maxSpan := 0, tiles, 0
			for w := 0; w < workers; w++ {
				lo, hi := e.partition(w)
				if lo != prevHi {
					t.Fatalf("tiles=%d workers=%d: worker %d starts at %d, want %d (contiguous)",
						tiles, workers, w, lo, prevHi)
				}
				span := hi - lo
				if span < 1 {
					t.Fatalf("tiles=%d workers=%d: worker %d owns empty span", tiles, workers, w)
				}
				if span < minSpan {
					minSpan = span
				}
				if span > maxSpan {
					maxSpan = span
				}
				prevHi = hi
			}
			if prevHi != tiles {
				t.Fatalf("tiles=%d workers=%d: last span ends at %d", tiles, workers, prevHi)
			}
			if maxSpan-minSpan > 1 {
				t.Fatalf("tiles=%d workers=%d: span imbalance %d vs %d", tiles, workers, minSpan, maxSpan)
			}
		}
	}
}

// TestBarrierSinglePartyGenerations: a one-party barrier (single-tile
// system) must run the leader action every generation, never block, and
// stay reusable across many generations — including interleaved
// action-less arrivals.
func TestBarrierSinglePartyGenerations(t *testing.T) {
	b := NewBarrier(1)
	if b.Parties() != 1 {
		t.Fatalf("Parties() = %d, want 1", b.Parties())
	}
	gen := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10_000; i++ {
			b.Await(func() { gen++ })
			b.Await(nil)
		}
	}()
	<-done
	if gen != 10_000 {
		t.Fatalf("leader action ran %d times, want 10000", gen)
	}
}

// TestEngineStopAtSyncPoint: with periodic synchronization the stop
// function is only consulted at sync points, so a stop that triggers
// mid-chunk must halt the run at the *end* of that chunk — executed
// cycles are always a whole number of chunks. Checkpoint autosave
// relies on this: chunk boundaries are the only cycles at which a
// consistent snapshot exists.
func TestEngineStopAtSyncPoint(t *testing.T) {
	for _, tc := range []struct {
		syncPeriod int
		stopAt     uint64
		want       uint64 // cycles executed
	}{
		{1, 9, 10},  // cycle-accurate: halts right after the stop cycle
		{7, 9, 14},  // stop cycle 9 is inside chunk [7,14): halts at 14
		{7, 13, 14}, // stop at the last cycle of the chunk: still 14
		{7, 14, 21}, // stop at a chunk start: consulted after chunk [14,21)
		{5, 0, 5},   // stop true from the first consultation: one chunk
	} {
		var tiles []Tile
		for i := 0; i < 3; i++ {
			tiles = append(tiles, &countTile{})
		}
		e := NewEngine(tiles, 2, tc.syncPeriod, false, nil)
		res := e.Run(0, 1_000, func(cycle uint64) bool { return cycle >= tc.stopAt })
		if res.Cycles != tc.want {
			t.Errorf("syncPeriod=%d stopAt=%d: ran %d cycles, want %d",
				tc.syncPeriod, tc.stopAt, res.Cycles, tc.want)
		}
		for i, tl := range tiles {
			ct := tl.(*countTile)
			if uint64(len(ct.transfers)) != tc.want || uint64(len(ct.commits)) != tc.want {
				t.Errorf("syncPeriod=%d stopAt=%d tile %d: %d transfers / %d commits, want %d",
					tc.syncPeriod, tc.stopAt, i, len(ct.transfers), len(ct.commits), tc.want)
			}
		}
	}
}

// TestEngineStopEvaluatedAtFinalSyncPoint: Run documents that stop is
// evaluated at every synchronization point. That includes the last one —
// the leader must not short-circuit the check when the run is about to
// hit its cycle bound, because the serve layer hangs side effects
// (cancellation probes, completion detection) on every consultation.
func TestEngineStopEvaluatedAtFinalSyncPoint(t *testing.T) {
	for _, workers := range []int{1, 3} {
		tiles := []Tile{&countTile{}, &countTile{}, &countTile{}}
		var calls int
		e := NewEngine(tiles, workers, 1, false, nil)
		res := e.Run(0, 10, func(cycle uint64) bool { calls++; return false })
		if res.Cycles != 10 {
			t.Fatalf("workers=%d: ran %d cycles, want 10", workers, res.Cycles)
		}
		if calls != 10 {
			t.Fatalf("workers=%d: stop consulted %d times for 10 sync points", workers, calls)
		}
		if res.Stopped {
			t.Fatalf("workers=%d: Stopped set though stop never fired", workers)
		}

		// A stop that fires exactly at the final synchronization point must
		// still be observed and reported.
		calls = 0
		tiles = []Tile{&countTile{}, &countTile{}, &countTile{}}
		e = NewEngine(tiles, workers, 1, false, nil)
		res = e.Run(0, 10, func(cycle uint64) bool { calls++; return cycle == 9 })
		if res.Cycles != 10 || calls != 10 {
			t.Fatalf("workers=%d: %d cycles, stop consulted %d times, want 10/10", workers, res.Cycles, calls)
		}
		if !res.Stopped {
			t.Fatalf("workers=%d: final-cycle stop not reported in RunResult.Stopped", workers)
		}
	}
}

// TestEngineStopBlocksFastForwardSkip: the stop predicate is consulted
// before fast-forward target election, so a run that stops at a sync
// point must not account a jump past it — previously an idle network
// would book a skip to the end of the window and only then notice the
// stop, inflating SkippedCycles into the results.
func TestEngineStopBlocksFastForwardSkip(t *testing.T) {
	tiles := []Tile{&countTile{}, &countTile{}}
	e := NewEngine(tiles, 2, 1, true, nil)
	res := e.Run(0, 1_000, func(cycle uint64) bool { return true })
	if res.Cycles != 1 {
		t.Fatalf("ran %d cycles, want 1", res.Cycles)
	}
	if res.SkippedCycles != 0 {
		t.Fatalf("stopping run accounted %d skipped cycles past its stop point", res.SkippedCycles)
	}
	if !res.Stopped {
		t.Fatal("RunResult.Stopped not set")
	}
}

// TestEngineChunkedFastForwardMatchesUnchunked: splitting a
// fast-forwarding run at checkpoint-autosave cadence and resuming with
// RunResumed must execute exactly the same cycles as the uninterrupted
// run — the resumed chunk re-evaluates the jump the previous chunk's
// clamp cut short, instead of executing the chunk's first cycle. This is
// the engine-level contract that lets autosave stay enabled for
// fast-forward configs without leaking cadence into result bytes.
func TestEngineChunkedFastForwardMatchesUnchunked(t *testing.T) {
	const total = 1000
	mk := func() []Tile {
		return []Tile{&countTile{next: 700}, &countTile{}}
	}

	ref := mk()
	refRes := NewEngine(ref, 1, 1, true, nil).Run(0, total, nil)

	for _, chunk := range []uint64{250, 333, 700} {
		tiles := mk()
		e := NewEngine(tiles, 1, 1, true, nil)
		var cycles, skipped uint64
		for at := uint64(0); at < total; {
			n := chunk
			if at+n > total {
				n = total - at
			}
			var res RunResult
			if at == 0 {
				res = e.Run(at, n, nil)
			} else {
				res = e.RunResumed(at, n, nil)
			}
			cycles += res.Cycles
			skipped += res.SkippedCycles
			at += res.Cycles + res.SkippedCycles
		}
		if cycles != refRes.Cycles || skipped != refRes.SkippedCycles {
			t.Fatalf("chunk=%d: cycles=%d skipped=%d, unchunked %d/%d",
				chunk, cycles, skipped, refRes.Cycles, refRes.SkippedCycles)
		}
		got, want := tiles[0].(*countTile), ref[0].(*countTile)
		if len(got.transfers) != len(want.transfers) {
			t.Fatalf("chunk=%d: %d transfers, unchunked %d", chunk, len(got.transfers), len(want.transfers))
		}
		for k := range got.transfers {
			if got.transfers[k] != want.transfers[k] {
				t.Fatalf("chunk=%d: transfer %d at cycle %d, unchunked %d",
					chunk, k, got.transfers[k], want.transfers[k])
			}
		}
	}
}

// TestEngineStopConcurrentWorkersQuiesce: the stop decision is made by
// the barrier leader while every other worker is blocked, so all
// workers observe the same final cycle — no tile runs past the halt.
func TestEngineStopConcurrentWorkersQuiesce(t *testing.T) {
	const tiles, stopAt = 8, 63
	var mu sync.Mutex
	mk := make([]Tile, tiles)
	for i := range mk {
		mk[i] = &countTile{}
	}
	e := NewEngine(mk, 4, 1, false, nil)
	var stops int
	res := e.Run(0, 10_000, func(cycle uint64) bool {
		mu.Lock()
		stops++
		mu.Unlock()
		return cycle >= stopAt
	})
	if res.Cycles != stopAt+1 {
		t.Fatalf("ran %d cycles, want %d", res.Cycles, stopAt+1)
	}
	for i, tl := range mk {
		ct := tl.(*countTile)
		if uint64(len(ct.commits)) != res.Cycles {
			t.Fatalf("tile %d committed %d cycles, engine reports %d", i, len(ct.commits), res.Cycles)
		}
	}
	if uint64(stops) != res.Cycles {
		t.Fatalf("stop consulted %d times for %d cycles (leader-only contract)", stops, res.Cycles)
	}
}

package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBarrierReuseUnderContention stresses sense reversal: one barrier
// reused for thousands of generations by parties that arrive at wildly
// different times (some spin-wait, some sleep into the cond-wait slow
// path), checking that no generation releases early and no party is left
// behind.
func TestBarrierReuseUnderContention(t *testing.T) {
	const parties = 6
	rounds := 2000
	if testing.Short() {
		rounds = 400
	}
	b := NewBarrier(parties)
	var entered atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Stagger arrivals: party 0 dawdles into the sleep path,
				// the rest hit the spin path at staggered offsets.
				if p == 0 && r%64 == 0 {
					time.Sleep(50 * time.Microsecond)
				} else if r%(p+2) == 0 {
					runtime.Gosched()
				}
				entered.Add(1)
				b.Await(func() {
					// The last arriver of generation r must observe every
					// party's arrival for this and all previous generations.
					if got := entered.Load(); got != int64((r+1)*parties) {
						t.Errorf("generation %d: leader saw %d arrivals, want %d",
							r, got, (r+1)*parties)
					}
				})
			}
		}(p)
	}
	wg.Wait()
	if got := entered.Load(); got != int64(parties*rounds) {
		t.Fatalf("total arrivals %d, want %d", got, parties*rounds)
	}
}

// TestBarrierOversubscribedGenerationReentry drives the spin=0 path an
// oversubscribed host takes (every party falls straight into the
// mutex+cond sleep): one deliberately slow party lags into cond.Wait
// while the fast parties are released and re-enter the *next* generation.
// Sense reversal must keep the generations apart — a re-entering party
// must never steal a straggler's wakeup or observe a stale sense — and
// the leader of each generation must see exactly one arrival per party.
func TestBarrierOversubscribedGenerationReentry(t *testing.T) {
	const parties = 4
	rounds := 3000
	if testing.Short() {
		rounds = 500
	}
	b := NewBarrier(parties)
	// Force the sleep path regardless of the host's core count: this is
	// exactly what NewBarrier does when GOMAXPROCS < parties.
	b.spin = 0
	var arrivals atomic.Int64
	var generations atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if p == 0 && r%16 == 0 {
					// The straggler: sleep long enough that the other
					// parties' fast path has them blocked in the next
					// generation's cond.Wait before this one arrives.
					time.Sleep(20 * time.Microsecond)
				}
				arrivals.Add(1)
				b.Await(func() {
					g := generations.Add(1)
					if got := arrivals.Load(); got != g*parties {
						t.Errorf("generation %d: %d arrivals at decision time, want %d",
							g, got, g*parties)
					}
				})
			}
		}(p)
	}
	wg.Wait()
	if got := generations.Load(); got != int64(rounds) {
		t.Fatalf("completed %d generations, want %d", got, rounds)
	}
	if got := arrivals.Load(); got != int64(parties*rounds) {
		t.Fatalf("total arrivals %d, want %d", got, parties*rounds)
	}
}

func TestBarrierSinglePartyRunsAction(t *testing.T) {
	b := NewBarrier(1)
	runs := 0
	for i := 0; i < 100; i++ {
		b.Await(func() { runs++ })
		b.Await(nil)
	}
	if runs != 100 {
		t.Fatalf("action ran %d times, want 100", runs)
	}
}

// TestFastForwardAllIdle: when every tile reports NoEvent and the network
// is empty, the engine must jump straight to the end of the run window —
// executing (nearly) nothing — rather than stepping empty cycles.
func TestFastForwardAllIdle(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		tiles := []Tile{&countTile{}, &countTile{}, &countTile{}, &countTile{}}
		e := NewEngine(tiles, workers, 1, true, nil)
		res := e.Run(0, 100_000, nil)
		if res.Cycles+res.SkippedCycles != 100_000 {
			t.Fatalf("workers=%d: cycles %d + skipped %d != 100000",
				workers, res.Cycles, res.SkippedCycles)
		}
		if res.Cycles > 2 {
			t.Fatalf("workers=%d: executed %d cycles of an entirely idle run", workers, res.Cycles)
		}
	}
}

// TestFastForwardNextEventNowPlusOne: a tile whose next event is always
// the very next cycle gives fast-forwarding nothing to skip; every cycle
// must execute.
func TestFastForwardNextEventNowPlusOne(t *testing.T) {
	tiles := []Tile{&countTile{next: 1}, &countTile{next: 1}}
	e := NewEngine(tiles, 1, 1, true, nil)
	res := e.Run(0, 500, nil)
	if res.SkippedCycles != 0 {
		t.Fatalf("skipped %d cycles past now+1 events", res.SkippedCycles)
	}
	if res.Cycles != 500 {
		t.Fatalf("executed %d cycles, want 500", res.Cycles)
	}
	if n := len(tiles[0].(*countTile).transfers); n != 500 {
		t.Fatalf("tile saw %d transfers, want 500", n)
	}
}

// TestFastForwardSingleWorkerLandsOnEvent: with one worker (leader does
// everything) the engine must still stop the jump exactly at the earliest
// scheduled event and resume cycle-by-cycle there.
func TestFastForwardSingleWorkerLandsOnEvent(t *testing.T) {
	tiles := []Tile{&countTile{next: 700}, &countTile{}}
	e := NewEngine(tiles, 1, 1, true, nil)
	res := e.Run(0, 1000, nil)
	if res.Cycles+res.SkippedCycles != 1000 {
		t.Fatalf("cycles %d + skipped %d != 1000", res.Cycles, res.SkippedCycles)
	}
	ct := tiles[0].(*countTile)
	sawEvent := false
	for _, c := range ct.transfers {
		if c == 700 {
			sawEvent = true
		}
		if c > 0 && c < 700 && c != ct.transfers[0] {
			// Cycles strictly inside the idle stretch may only appear before
			// the first fast-forward decision (cycle 0 executes).
			if c != 0 {
				t.Fatalf("idle cycle %d was executed", c)
			}
		}
	}
	if !sawEvent {
		t.Fatal("event cycle 700 was skipped over")
	}
}

// TestFastForwardInFlightBlocksSkip: a non-empty network must veto
// fast-forwarding even when every tile reports NoEvent — in-flight flits
// still need cycle-by-cycle delivery.
func TestFastForwardInFlightBlocksSkip(t *testing.T) {
	inflight := new(atomic.Int64)
	inflight.Store(1)
	tiles := []Tile{&countTile{}, &countTile{}}
	e := NewEngine(tiles, 2, 1, true, inflight)
	res := e.Run(0, 200, nil)
	if res.SkippedCycles != 0 {
		t.Fatalf("skipped %d cycles with flits in flight", res.SkippedCycles)
	}
	if res.Cycles != 200 {
		t.Fatalf("executed %d cycles, want 200", res.Cycles)
	}
}

// exchangeTile is a deterministic communicating tile for the determinism
// test: each cycle it hands a value derived from its private RNG to its
// right neighbour (PhaseTransfer) and folds the value received from its
// left neighbour into a checksum (PhaseCommit). Mailbox slots are written
// by exactly one tile per phase and read only across the engine's
// transfer/commit barrier, so the pattern is race-free in cycle-accurate
// mode — mirroring how real tiles write neighbouring ingress buffers.
type exchangeTile struct {
	id       int
	rng      *RNG
	mailbox  []uint64 // shared across tiles; slot i is written only by tile i-1
	n        int
	checksum uint64
}

func (x *exchangeTile) PhaseTransfer(cycle uint64) {
	x.mailbox[(x.id+1)%x.n] = x.rng.Uint64() + cycle
}

func (x *exchangeTile) PhaseCommit(cycle uint64) {
	x.checksum = x.checksum*0x9E3779B97F4A7C15 + x.mailbox[x.id]
}

func (x *exchangeTile) NextEvent(now uint64) uint64 { return now + 1 }

// TestEngineDeterminismAcrossWorkers: identical seeds must give
// bit-identical per-tile state for 1 worker and any other worker count —
// the paper's core determinism claim (§II-C), here exercised at the
// engine level with communicating tiles.
func TestEngineDeterminismAcrossWorkers(t *testing.T) {
	const n = 16
	cycles := uint64(1000)
	workerSet := []int{2, 3, 4, 8, 16}
	if testing.Short() {
		// The property is worker-count independence, not endurance: a few
		// hundred cycles across two partitionings already exercises every
		// barrier path, and race-mode spin barriers are slow on small hosts.
		cycles = 200
		workerSet = []int{2, 4}
	}
	run := func(workers int) []uint64 {
		mailbox := make([]uint64, n)
		tiles := make([]Tile, n)
		for i := 0; i < n; i++ {
			tiles[i] = &exchangeTile{
				id:      i,
				rng:     NewRNG(DeriveSeed(0x5EED, "tile")*uint64(i+1) + uint64(i)),
				mailbox: mailbox,
				n:       n,
			}
		}
		e := NewEngine(tiles, workers, 1, false, nil)
		if res := e.Run(0, cycles, nil); res.Cycles != cycles {
			t.Fatalf("workers=%d ran %d cycles, want %d", workers, res.Cycles, cycles)
		}
		out := make([]uint64, n)
		for i, tl := range tiles {
			out[i] = tl.(*exchangeTile).checksum
		}
		return out
	}
	ref := run(1)
	for _, workers := range workerSet {
		got := run(workers)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: tile %d checksum %#x != 1-worker %#x",
					workers, i, got[i], ref[i])
			}
		}
	}
}

func TestDeriveSeedProperties(t *testing.T) {
	if DeriveSeed(1, "a") != DeriveSeed(1, "a") {
		t.Fatal("DeriveSeed not deterministic")
	}
	if DeriveSeed(1, "a") == DeriveSeed(1, "b") {
		t.Fatal("different keys derived the same seed")
	}
	if DeriveSeed(1, "a") == DeriveSeed(2, "a") {
		t.Fatal("different bases derived the same seed")
	}
	// The derived stream must not be the base stream.
	if DeriveSeed(1, "") == 1 {
		t.Fatal("empty key returned the base seed unmixed")
	}
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		s := DeriveSeed(42, string(rune('a'+i%26))+string(rune('0'+i/26)))
		if seen[s] {
			t.Fatalf("seed collision at %d", i)
		}
		seen[s] = true
	}
}

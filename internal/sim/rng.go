package sim

// RNG is a small, fast, deterministic pseudorandom generator
// (xorshift64* with a splitmix64-seeded state). Each simulated tile owns a
// private RNG so that parallel cycle-accurate runs are bit-identical to
// sequential runs regardless of thread interleaving (paper §II-C).
//
// The zero value is invalid; use NewRNG. RNG is not safe for concurrent
// use, by design: sharing one across tiles would reintroduce scheduling
// nondeterminism.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded deterministically from seed. Two RNGs
// with the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// DeriveSeed splits an independent stream seed off base, keyed by an
// arbitrary string. It hashes the key (FNV-1a) into the base and applies
// the same splitmix64 finalizer Reseed uses, so derived seeds are as
// unrelated to each other — and to the base — as reseeding is. Sweep
// harnesses use it to give every run a deterministic private seed that
// depends only on (sweep seed, run key), never on scheduling order.
func DeriveSeed(base uint64, key string) uint64 {
	h := base ^ 0xCBF29CE484222325 // FNV-1a offset basis
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 0x100000001B3 // FNV prime
	}
	// splitmix64 finalizer, as in Reseed, to decorrelate near-equal hashes.
	z := h + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Reseed resets the generator to the stream defined by seed.
func (r *RNG) Reseed(seed uint64) {
	// splitmix64 step so that small/sequential seeds give unrelated streams.
	z := seed + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 0x9E3779B97F4A7C15
	}
	r.state = z
}

// State returns the generator's raw internal state, for checkpointing.
// Restoring it with SetState resumes the exact stream position.
func (r *RNG) State() uint64 { return r.state }

// SetState restores a state captured by State. A zero state (invalid
// for xorshift) is replaced by the same fallback Reseed uses, so a
// corrupt snapshot cannot wedge the generator.
func (r *RNG) SetState(s uint64) {
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	r.state = s
}

// Uint64 returns the next 64 pseudorandom bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: RNG.Intn called with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli reports true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Pick returns an index in [0,len(weights)) chosen with probability
// proportional to weights[i]. Weights must be non-negative and not all
// zero; otherwise Pick falls back to a uniform choice.
func (r *RNG) Pick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return r.Intn(len(weights))
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Perm fills dst with a pseudorandom permutation of [0, len(dst)).
// It is used to randomize arbitration order (paper §II-A5) without
// allocating: callers keep a scratch slice per tile.
func (r *RNG) Perm(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	for i := len(dst) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
}

// Geometric returns a sample from a geometric distribution with mean m,
// clamped to [1, max]. Used for packet-length distributions.
func (r *RNG) Geometric(m float64, max int) int {
	if m <= 1 {
		return 1
	}
	p := 1.0 / m
	n := 1
	for n < max && !r.Bernoulli(p) {
		n++
	}
	return n
}

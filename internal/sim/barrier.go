package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Barrier is a reusable sense-reversing barrier for a fixed party count.
// The last thread to arrive optionally executes an action while all other
// parties are blocked, which the engine uses for global decisions that
// must happen at a quiescent point (fast-forward target election,
// epoch rollover, stop checks).
//
// The implementation spins briefly before falling back to a mutex+cond
// sleep, which keeps barrier cost low when workers arrive nearly together
// (the common case for balanced tile partitions) without burning CPU when
// they do not.
type Barrier struct {
	parties int32
	spin    int
	arrived atomic.Int32
	sense   atomic.Uint32

	mu   sync.Mutex
	cond *sync.Cond
}

// NewBarrier returns a barrier for n parties. n must be >= 1.
func NewBarrier(n int) *Barrier {
	if n < 1 {
		panic("sim: barrier party count must be >= 1")
	}
	b := &Barrier{parties: int32(n), spin: 4096}
	if runtime.GOMAXPROCS(0) < n {
		// Oversubscribed host: the parties we would spin for cannot even
		// be scheduled while we burn the CPU, so spinning only delays
		// them. Yield straight into the sleep path instead.
		b.spin = 0
	}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Parties returns the number of participating threads.
func (b *Barrier) Parties() int { return int(b.parties) }

// Await blocks until all parties have called Await. If action is non-nil
// it is executed exactly once per barrier generation, by the last arriver,
// before the others are released.
func (b *Barrier) Await(action func()) {
	if b.parties == 1 {
		if action != nil {
			action()
		}
		return
	}
	sense := b.sense.Load()
	if b.arrived.Add(1) == b.parties {
		if action != nil {
			action()
		}
		b.arrived.Store(0)
		b.mu.Lock()
		b.sense.Store(sense + 1)
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	// Spin briefly: with balanced partitions the other workers arrive
	// within a few hundred nanoseconds.
	for i := 0; i < b.spin; i++ {
		if b.sense.Load() != sense {
			return
		}
	}
	runtime.Gosched()
	if b.sense.Load() != sense {
		return
	}
	b.mu.Lock()
	for b.sense.Load() == sense {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

package sim

import (
	"reflect"
	"testing"
)

type recordSampler struct {
	cycles  []uint64
	skipped []uint64
}

func (r *recordSampler) Sample(cycle, runSkipped uint64) {
	r.cycles = append(r.cycles, cycle)
	r.skipped = append(r.skipped, runSkipped)
}

// The sampler cadence is absolute: samples land on multiples of every,
// plus one unconditional sample at the end of the run, and a run split
// into chunks (the autosave path) samples at the same cycles the
// uninterrupted run would have.
func TestEngineSamplerCadence(t *testing.T) {
	e := NewEngine(busyTiles(4), 2, 1, false, nil)
	rec := &recordSampler{}
	e.SetSampler(rec, 64)
	if res := e.Run(0, 200, nil); res.Cycles != 200 {
		t.Fatalf("ran %d cycles", res.Cycles)
	}
	want := []uint64{64, 128, 192, 200}
	if !reflect.DeepEqual(rec.cycles, want) {
		t.Fatalf("sample cycles = %v, want %v", rec.cycles, want)
	}

	// Chunked: the same 200 cycles in two runs. The chunk boundary adds
	// its own final sample at 100; the cadence samples stay put.
	e2 := NewEngine(busyTiles(4), 2, 1, false, nil)
	rec2 := &recordSampler{}
	e2.SetSampler(rec2, 64)
	e2.Run(0, 100, nil)
	e2.Run(100, 100, nil)
	want2 := []uint64{64, 100, 128, 192, 200}
	if !reflect.DeepEqual(rec2.cycles, want2) {
		t.Fatalf("chunked sample cycles = %v, want %v", rec2.cycles, want2)
	}

	// Detach: no further samples.
	e2.SetSampler(nil, 0)
	e2.Run(200, 100, nil)
	if len(rec2.cycles) != len(want2) {
		t.Fatalf("detached sampler still fired: %v", rec2.cycles)
	}
}

// A sync period > 1 must not break the absolute cadence: samples fire at
// the first sync point at or past each multiple.
func TestEngineSamplerChunkedSyncPeriod(t *testing.T) {
	e := NewEngine(busyTiles(4), 2, 8, false, nil)
	rec := &recordSampler{}
	e.SetSampler(rec, 50)
	if res := e.Run(0, 128, nil); res.Cycles != 128 {
		t.Fatalf("ran %d cycles", res.Cycles)
	}
	// Sync points at multiples of 8: cadence points 50 and 100 fire at
	// the next sync (56, 104), plus the final sample at 128.
	want := []uint64{56, 104, 128}
	if !reflect.DeepEqual(rec.cycles, want) {
		t.Fatalf("sample cycles = %v, want %v", rec.cycles, want)
	}
}

// The no-sampler hot path must stay alloc-free, exactly like the
// no-probe path: running 10x more cycles may not allocate more.
func TestEngineHotPathAllocFreeNoSampler(t *testing.T) {
	run := func(cycles uint64) float64 {
		e := NewEngine(busyTiles(4), 2, 1, false, nil)
		e.SetSampler(nil, 256)
		return testing.AllocsPerRun(3, func() {
			if res := e.Run(0, cycles, nil); res.Cycles != cycles {
				t.Fatalf("ran %d cycles, want %d", res.Cycles, cycles)
			}
		})
	}
	short, long := run(50), run(500)
	if long > short+1 {
		t.Errorf("hot path allocates per cycle without a sampler: %v allocs @50 cycles vs %v @500",
			short, long)
	}
}

package sim

import "fmt"

// Space-parallel sharding: one simulation partitioned across several
// engine instances (usually in separate processes), each stepping a
// contiguous tile span. At every synchronization point each shard emits
// a ShardVote — its local contribution to the global halt/fast-forward
// decision — and a coupler exchanges boundary state and votes with the
// rest of the group, returning the group's ShardDecision. The decision
// function is pure and shared (DecideShardSync), so the coordinator and
// any in-process test harness compute bit-identical schedules.

// ShardVote is one shard's input to a synchronization-point decision.
// All cross-shard quantities are decomposable: in-flight flit counts sum
// (per-shard counters drift by boundary traffic, only the sum is
// meaningful), earliest self-events combine by minimum, stop requests
// combine by OR (any shard cancelling cancels the run) and completion
// votes combine by AND (the workload is done only when every span is).
type ShardVote struct {
	// Join marks the run-start synchronization: Cycle is the cycle the
	// shard is about to execute (nothing has run yet), and the decision
	// may fast-forward the whole group past it (resume pre-jump).
	Join bool
	// Cycle is the cycle just finished (or, for Join votes, the first
	// cycle of the run). All shards must agree.
	Cycle uint64
	// End is the run's exclusive cycle bound. All shards must agree.
	End uint64
	// Inflight is this shard's in-network flit counter: flits injected
	// in-span minus flits delivered in-span. Negative drift is normal.
	Inflight int64
	// Earliest is the earliest cycle strictly after Cycle at which an
	// in-span tile could self-initiate activity, NoEvent if never, or
	// Cycle+1 when the shard does not fast-forward.
	Earliest uint64
	// Stop reports this shard's stop predicate (cancellation).
	Stop bool
	// Done reports this shard's completion predicate (e.g. every in-span
	// core halted and drained). False when the run has no such predicate.
	Done bool
}

// ShardDecision is the group outcome of one synchronization point,
// identical on every shard.
type ShardDecision struct {
	// Next is the next cycle every shard executes (or End).
	Next uint64
	// Skipped is the number of cycles the group fast-forwarded over at
	// this synchronization point; every shard accounts the same value.
	Skipped uint64
	// Halt ends the run after this synchronization point.
	Halt bool
	// Stopped records that the run ended by stop/completion rather than
	// by reaching End.
	Stopped bool
}

// ShardCoupler connects an engine to its shard group: called by the
// barrier leader at every synchronization point (all local workers are
// blocked, the span is quiescent), it exchanges boundary state plus the
// vote with the other shards and returns the group decision. An error
// aborts the run (RunResult.Err); a typed restart error lets the driver
// roll the whole group back to a coordinated checkpoint.
type ShardCoupler interface {
	Sync(vote ShardVote) (ShardDecision, error)
}

// ShardSpan returns the contiguous tile span [lo,hi) owned by shard
// index among count shards over n tiles — the same equal-division
// mapping the engine uses for workers, so a sharded run partitions
// exactly like a single-process multi-worker run.
func ShardSpan(n, count, index int) (lo, hi int) {
	if count < 1 || index < 0 || index >= count || count > n {
		panic(fmt.Sprintf("sim: bad shard span n=%d count=%d index=%d", n, count, index))
	}
	base, rem := n/count, n%count
	lo = index*base + min(index, rem)
	hi = lo + base
	if index < rem {
		hi++
	}
	return lo, hi
}

// DecideShardSync folds one synchronization point's votes into the
// group decision. It mirrors Engine.Run's single-process leader exactly:
// the stop predicate is evaluated before fast-forward accounting (a
// stopping run must not jump past its stop point), completion requires
// every span done plus a globally drained network, and fast-forward
// jumps are clamped to End.
func DecideShardSync(votes []ShardVote) (ShardDecision, error) {
	if len(votes) == 0 {
		return ShardDecision{}, fmt.Errorf("sim: shard sync with no votes")
	}
	v0 := votes[0]
	var inflight int64
	earliest := uint64(NoEvent)
	stop, done := false, true
	for i, v := range votes {
		if v.Cycle != v0.Cycle || v.End != v0.End || v.Join != v0.Join {
			return ShardDecision{}, fmt.Errorf(
				"sim: shard vote %d disagrees with vote 0 (cycle %d/%d end %d/%d join %v/%v)",
				i, v.Cycle, v0.Cycle, v.End, v0.End, v.Join, v0.Join)
		}
		inflight += v.Inflight
		if v.Earliest < earliest {
			earliest = v.Earliest
		}
		stop = stop || v.Stop
		done = done && v.Done
	}
	if v0.Join {
		// Run-start alignment: possibly pre-jump the whole group past
		// idle leading cycles (resumed runs), never evaluate stop.
		next := v0.Cycle
		var skipped uint64
		if inflight == 0 && earliest > next {
			t := earliest
			if t > v0.End {
				t = v0.End
			}
			skipped = t - next
			next = t
		}
		return ShardDecision{Next: next, Skipped: skipped, Halt: next >= v0.End}, nil
	}
	stopped := stop || (done && inflight == 0)
	next := v0.Cycle + 1
	var skipped uint64
	if !stopped && inflight == 0 {
		if earliest > next && earliest != NoEvent {
			t := earliest
			if t > v0.End {
				t = v0.End
			}
			skipped = t - next
			next = t
		} else if earliest == NoEvent {
			skipped = v0.End - next
			next = v0.End
		}
	}
	return ShardDecision{
		Next:    next,
		Skipped: skipped,
		Halt:    next >= v0.End || stopped,
		Stopped: stopped,
	}, nil
}

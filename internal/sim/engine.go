// Package sim implements HORNET's parallel cycle-level simulation engine:
// deterministic per-tile PRNGs, a sense-reversing barrier, and a worker
// pool that steps tiles through two-phase clock cycles with either
// cycle-accurate (two barriers per cycle) or periodic synchronization,
// plus fast-forwarding over provably idle stretches (paper §II-C, §IV-B).
package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hornet/internal/obs"
)

// NoEvent is returned by Tile.NextEvent when the tile will never act again
// on its own (e.g. a halted core or an exhausted trace).
const NoEvent = ^uint64(0)

// Tile is one unit of parallel simulation work: a router plus any traffic
// generators, cores and controllers attached to it. The engine calls
// PhaseTransfer (positive edge: compute and hand off flits; effects are
// stamped to become visible next cycle) and PhaseCommit (negative edge:
// make written state visible, fold statistics) exactly once per simulated
// cycle, in that order. A tile is only ever stepped by one worker thread,
// but its ingress buffers may be written concurrently by neighbouring
// tiles' PhaseTransfer.
type Tile interface {
	PhaseTransfer(cycle uint64)
	PhaseCommit(cycle uint64)
	// NextEvent returns the earliest cycle strictly after now at which the
	// tile could initiate new activity assuming nothing arrives over the
	// network, or NoEvent. Used only when fast-forwarding is enabled; a
	// conservative answer of now+1 is always safe.
	NextEvent(now uint64) uint64
}

// RunResult summarizes one Engine.Run invocation.
type RunResult struct {
	Cycles        uint64        // simulated cycles actually executed
	SkippedCycles uint64        // cycles jumped over by fast-forwarding
	Wall          time.Duration // host wall-clock time
	Workers       int
	// Stopped reports that the run ended because the stop predicate (or,
	// for sharded runs, the group decision) fired rather than because the
	// cycle bound was reached. Callers resuming a run in chunks use it to
	// distinguish "workload finished" from "chunk finished".
	Stopped bool
	// Err is non-nil when a sharded run aborted because the shard coupler
	// failed; the executed/skipped counts reflect progress made before the
	// failure.
	Err error
}

func (r RunResult) String() string {
	return fmt.Sprintf("cycles=%d skipped=%d wall=%v workers=%d",
		r.Cycles, r.SkippedCycles, r.Wall, r.Workers)
}

// Engine steps a fixed set of tiles in parallel.
type Engine struct {
	tiles       []Tile
	workers     int
	syncPeriod  int
	fastForward bool

	// The engine owns tiles [lo,hi). In single-process runs that is every
	// tile; a sharded engine builds the full tile set (so boundary wiring
	// and node numbering match the unsharded system) but steps only its
	// span, delegating cross-shard agreement to the coupler.
	lo, hi  int
	coupler ShardCoupler
	// done is the shard's local completion predicate (AND-combined across
	// shards by the coupler's decision); nil when the run has none.
	done func() bool

	// inflight counts flits resident anywhere in the simulated network
	// (VC buffers and ejection queues). Tiles update it via InFlight().
	// Under sharding each process observes only its local injections and
	// deliveries, so the counter can go negative; only the cross-shard sum
	// is meaningful and only the coupler's decision consumes it.
	inflight *atomic.Int64

	// cross-barrier control written by the barrier leader.
	nextCycle atomic.Uint64
	halted    atomic.Bool
	stopped   atomic.Bool
	skipped   atomic.Uint64
	runErr    error

	// probe, when non-nil, records cycles/sec, per-partition compute vs.
	// barrier-wait time and shard sync round-trips. The nil case costs
	// one predictable branch per phase and zero allocations (guarded by
	// TestEngineHotPathAllocFree).
	probe *obs.SimProbe

	// sampler, when non-nil, is invoked by the barrier leader every
	// sampleEvery cycles (and at the final sync point of each run) while
	// all workers are parked — the one point where tile state is
	// quiescent and plain counter reads are race-free. Like the probe,
	// the nil case is a single predictable branch per sync point.
	sampler     Sampler
	sampleEvery uint64
	sampleNext  uint64
}

// Sampler receives simulated-machine samples at engine sync points.
type Sampler interface {
	// Sample reports that the machine has coherently reached cycle
	// (exclusive: cycles [0,cycle) are complete) with runSkipped cycles
	// fast-forwarded so far in the current run. It executes on the
	// barrier leader with every worker parked, so implementations may
	// read tile state directly, but must return quickly — the whole
	// engine is stalled meanwhile.
	Sample(cycle, runSkipped uint64)
}

// SetProbe attaches (or, with nil, detaches) an engine probe. Call
// between runs, not while one is in flight.
func (e *Engine) SetProbe(p *obs.SimProbe) { e.probe = p }

// SetSampler attaches (or, with nil, detaches) a sync-point sampler
// firing every `every` cycles (absolute cadence: samples land on
// multiples of every, so chunked runs keep a stable rhythm). Call
// between runs, not while one is in flight.
func (e *Engine) SetSampler(s Sampler, every uint64) {
	if every < 1 {
		every = 1
	}
	e.sampler = s
	e.sampleEvery = every
	e.sampleNext = 0
}

// NewEngine creates an engine stepping tiles with the given worker count
// (0 means GOMAXPROCS, capped at the tile count), synchronization period
// (1 = cycle-accurate) and fast-forward setting. inflight is the shared
// in-network flit counter the tiles maintain; pass nil to allocate one.
func NewEngine(tiles []Tile, workers, syncPeriod int, fastForward bool, inflight *atomic.Int64) *Engine {
	if len(tiles) == 0 {
		panic("sim: engine needs at least one tile")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tiles) {
		workers = len(tiles)
	}
	if syncPeriod < 1 {
		syncPeriod = 1
	}
	if inflight == nil {
		inflight = new(atomic.Int64)
	}
	return &Engine{
		tiles:       tiles,
		workers:     workers,
		syncPeriod:  syncPeriod,
		fastForward: fastForward,
		inflight:    inflight,
		lo:          0,
		hi:          len(tiles),
	}
}

// SetShard restricts the engine to the tile span owned by shard index out
// of count (the same contiguous equal-division used for workers) and
// installs the coupler consulted at every synchronization point plus the
// shard's local completion predicate (may be nil). Sharding requires
// cycle-accurate synchronization: boundary state is exchanged at sync
// points, so coarser periods would let stale remote flits leak.
func (e *Engine) SetShard(index, count int, coupler ShardCoupler, done func() bool) error {
	if coupler == nil {
		return fmt.Errorf("sim: sharded engine needs a coupler")
	}
	if e.syncPeriod != 1 {
		return fmt.Errorf("sim: sharding requires sync period 1, have %d", e.syncPeriod)
	}
	lo, hi := ShardSpan(len(e.tiles), count, index)
	e.lo, e.hi = lo, hi
	e.coupler = coupler
	e.done = done
	if e.workers > hi-lo {
		e.workers = hi - lo
	}
	return nil
}

// Span returns the tile span [lo,hi) this engine steps. A zero-value
// span (an engine built without NewEngine) means every tile.
func (e *Engine) Span() (lo, hi int) {
	if e.hi == 0 {
		return 0, len(e.tiles)
	}
	return e.lo, e.hi
}

// InFlight exposes the global in-network flit counter that tiles maintain.
func (e *Engine) InFlight() *atomic.Int64 { return e.inflight }

// Workers returns the effective worker count.
func (e *Engine) Workers() int { return e.workers }

// partition returns the contiguous tile span [lo,hi) owned by worker w
// within the engine's own span. Contiguous blocks keep neighbouring mesh
// tiles on the same worker, which is what HORNET's equal-division mapping
// does.
func (e *Engine) partition(w int) (lo, hi int) {
	slo, shi := e.Span()
	n := shi - slo
	base, rem := n/e.workers, n%e.workers
	lo = slo + w*base + min(w, rem)
	hi = lo + base
	if w < rem {
		hi++
	}
	return lo, hi
}

// Run simulates the half-open cycle window [start, start+cycleCount):
// the second argument is a cycle COUNT, never an absolute end cycle —
// Run(100, 50) advances the clock from 100 to at most 150. If stop is
// non-nil it is evaluated exactly once at every synchronization point (by
// the barrier leader, so it needs no internal locking) — including the
// final one — and ends the run early when it returns true. The stop check
// happens before fast-forward target election, so a stopping run never
// jumps past its stop point. Run returns once all workers have finished.
func (e *Engine) Run(start, cycleCount uint64, stop func(cycle uint64) bool) RunResult {
	return e.run(start, cycleCount, stop, false)
}

// RunResumed is Run for the continuation of an earlier chunk of the same
// simulation (checkpoint autosave cadence, restored snapshots). The only
// difference: a fast-forwarding engine whose network is idle may jump over
// leading cycles before executing anything, exactly as the uninterrupted
// run would have jumped from within its previous chunk. This is what makes
// chunked execution byte-identical to unchunked execution.
func (e *Engine) RunResumed(start, cycleCount uint64, stop func(cycle uint64) bool) RunResult {
	return e.run(start, cycleCount, stop, true)
}

func (e *Engine) run(start, cycleCount uint64, stop func(cycle uint64) bool, resume bool) RunResult {
	end := start + cycleCount
	e.nextCycle.Store(start)
	e.halted.Store(false)
	e.stopped.Store(false)
	e.skipped.Store(0)
	e.runErr = nil

	began := time.Now()
	var executed atomic.Uint64

	if e.coupler != nil {
		// Join synchronization: every shard announces the chunk it is about
		// to run; the group aligns (all shards must agree on start and end)
		// and may pre-jump a resumed fast-forwarding run past idle leading
		// cycles before anything executes.
		vote := ShardVote{Join: true, Cycle: start, End: end,
			Inflight: e.inflight.Load(), Earliest: start}
		if resume && e.fastForward && start > 0 {
			vote.Earliest = e.earliestEvent(start - 1)
		}
		var syncStart time.Time
		if e.probe != nil {
			syncStart = time.Now()
		}
		dec, err := e.coupler.Sync(vote)
		if e.probe != nil {
			e.probe.ShardSync(time.Since(syncStart))
		}
		if err != nil {
			return RunResult{Wall: time.Since(began), Workers: e.workers, Err: err}
		}
		e.skipped.Add(dec.Skipped)
		start = dec.Next
		e.nextCycle.Store(start)
		if dec.Halt {
			return RunResult{
				SkippedCycles: e.skipped.Load(),
				Wall:          time.Since(began),
				Workers:       e.workers,
				Stopped:       dec.Stopped,
			}
		}
	} else if resume && e.fastForward && start > 0 && e.inflight.Load() == 0 {
		// Resumed single-process run: jump from the cycle just before this
		// chunk, mirroring the skip the previous chunk's leader would have
		// taken had the run not been split here.
		if t := e.earliestEvent(start - 1); t > start {
			if t > end {
				t = end
			}
			e.skipped.Add(t - start)
			start = t
			e.nextCycle.Store(start)
		}
	}

	barrier := NewBarrier(e.workers)

	// Align the sampling cadence to absolute multiples of sampleEvery
	// strictly past this chunk's start, so restored/chunked runs sample
	// at the same cycles the uninterrupted run would have.
	if e.sampler != nil {
		for e.sampleNext <= start {
			e.sampleNext += e.sampleEvery
		}
	}

	// sample runs on the barrier leader after the sync decision: at the
	// cadence, and unconditionally at the final sync point of the run so
	// the last sample agrees with the run's end state. Fast-forward
	// jumps that clear one or more sample points collapse into a single
	// sample at the landing cycle.
	sample := func(cycleJustFinished uint64) {
		if e.sampler == nil {
			return
		}
		if cycleJustFinished+1 >= e.sampleNext || e.halted.Load() {
			e.sampler.Sample(cycleJustFinished+1, e.skipped.Load())
			for e.sampleNext <= cycleJustFinished+1 {
				e.sampleNext += e.sampleEvery
			}
		}
	}

	leader := func(cycleJustFinished uint64) {
		if e.coupler != nil {
			vote := ShardVote{
				Cycle:    cycleJustFinished,
				End:      end,
				Inflight: e.inflight.Load(),
				Earliest: cycleJustFinished + 1,
				Stop:     stop != nil && stop(cycleJustFinished),
				Done:     e.done != nil && e.done(),
			}
			if e.fastForward {
				vote.Earliest = e.earliestEvent(cycleJustFinished)
			}
			var syncStart time.Time
			if e.probe != nil {
				syncStart = time.Now()
			}
			dec, err := e.coupler.Sync(vote)
			if e.probe != nil {
				e.probe.ShardSync(time.Since(syncStart))
			}
			if err != nil {
				e.runErr = err
				e.halted.Store(true)
				return
			}
			e.skipped.Add(dec.Skipped)
			if dec.Stopped {
				e.stopped.Store(true)
			}
			if dec.Halt {
				e.halted.Store(true)
			}
			e.nextCycle.Store(dec.Next)
			sample(cycleJustFinished)
			return
		}
		// The stop predicate is consulted first — exactly once per
		// synchronization point, even when the run is about to end — so a
		// stop request can never be outrun by a fast-forward jump and the
		// serve layer's final-cycle side effects always fire.
		stopped := stop != nil && stop(cycleJustFinished)
		next := cycleJustFinished + 1
		if !stopped && e.fastForward && e.inflight.Load() == 0 {
			if t := e.earliestEvent(cycleJustFinished); t > next && t != NoEvent {
				if t > end {
					t = end
				}
				e.skipped.Add(t - next)
				next = t
			} else if t == NoEvent {
				e.skipped.Add(end - next)
				next = end
			}
		}
		if stopped {
			e.stopped.Store(true)
		}
		if next >= end || stopped {
			e.halted.Store(true)
		}
		e.nextCycle.Store(next)
		sample(cycleJustFinished)
	}

	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo, hi := e.partition(w)
			mine := e.tiles[lo:hi]
			// The partition accumulator is fetched once per Run (it may
			// allocate on first use); the per-cycle hot path below only
			// branches on `part != nil` and does atomic adds.
			var part *obs.PartitionProbe
			if e.probe != nil {
				part = e.probe.Partition(w, e.workers, lo, hi)
			}
			var t0, t1 time.Time
			for {
				cycle := e.nextCycle.Load()
				if cycle >= end || e.halted.Load() {
					return
				}
				// Run a synchronization chunk: syncPeriod cycles (or up to
				// end), keeping same-worker tiles in lockstep per cycle.
				chunkEnd := cycle + uint64(e.syncPeriod)
				if chunkEnd > end {
					chunkEnd = end
				}
				if e.syncPeriod == 1 {
					// Cycle-accurate: barrier after each phase (twice per
					// cycle), so every tile sees identical committed state.
					if part != nil {
						t0 = time.Now()
					}
					for _, t := range mine {
						t.PhaseTransfer(cycle)
					}
					if part != nil {
						t1 = time.Now()
						part.AddCompute(t1.Sub(t0))
					}
					barrier.Await(nil)
					if part != nil {
						t0 = time.Now()
						part.AddBarrier(t0.Sub(t1))
					}
					for _, t := range mine {
						t.PhaseCommit(cycle)
					}
					if part != nil {
						t1 = time.Now()
						part.AddCompute(t1.Sub(t0))
					}
					if w == 0 {
						executed.Add(1)
					}
					barrier.Await(func() { leader(cycle) })
					if part != nil {
						part.AddBarrier(time.Since(t1))
						part.AddCycles(1)
					}
				} else {
					if part != nil {
						t0 = time.Now()
					}
					c := cycle
					for ; c < chunkEnd && !e.halted.Load(); c++ {
						for _, t := range mine {
							t.PhaseTransfer(c)
						}
						for _, t := range mine {
							t.PhaseCommit(c)
						}
						// Keep workers interleaved between barriers so
						// cross-worker credits and flits stay as fresh as
						// concurrent hardware threads would see them; on
						// hosts with fewer cores than workers this
						// prevents whole-chunk serialization from
						// starving boundary links.
						runtime.Gosched()
					}
					if w == 0 {
						executed.Add(c - cycle)
					}
					if part != nil {
						t1 = time.Now()
						part.AddCompute(t1.Sub(t0))
						part.AddCycles(c - cycle)
					}
					last := c - 1
					barrier.Await(func() { leader(last) })
					if part != nil {
						part.AddBarrier(time.Since(t1))
					}
				}
			}
		}(w)
	}
	wg.Wait()

	res := RunResult{
		Cycles:        executed.Load(),
		SkippedCycles: e.skipped.Load(),
		Wall:          time.Since(began),
		Workers:       e.workers,
		Stopped:       e.stopped.Load(),
		Err:           e.runErr,
	}
	if e.probe != nil {
		e.probe.RunDone(res.Cycles, res.SkippedCycles, res.Wall)
	}
	return res
}

// earliestEvent scans the engine's tile span for the soonest
// self-initiated activity. Called only by the barrier leader while all
// workers are blocked, so the tiles are quiescent and safe to query.
func (e *Engine) earliestEvent(now uint64) uint64 {
	earliest := uint64(NoEvent)
	lo, hi := e.Span()
	for _, t := range e.tiles[lo:hi] {
		if ev := t.NextEvent(now); ev < earliest {
			earliest = ev
		}
	}
	return earliest
}

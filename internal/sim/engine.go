// Package sim implements HORNET's parallel cycle-level simulation engine:
// deterministic per-tile PRNGs, a sense-reversing barrier, and a worker
// pool that steps tiles through two-phase clock cycles with either
// cycle-accurate (two barriers per cycle) or periodic synchronization,
// plus fast-forwarding over provably idle stretches (paper §II-C, §IV-B).
package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// NoEvent is returned by Tile.NextEvent when the tile will never act again
// on its own (e.g. a halted core or an exhausted trace).
const NoEvent = ^uint64(0)

// Tile is one unit of parallel simulation work: a router plus any traffic
// generators, cores and controllers attached to it. The engine calls
// PhaseTransfer (positive edge: compute and hand off flits; effects are
// stamped to become visible next cycle) and PhaseCommit (negative edge:
// make written state visible, fold statistics) exactly once per simulated
// cycle, in that order. A tile is only ever stepped by one worker thread,
// but its ingress buffers may be written concurrently by neighbouring
// tiles' PhaseTransfer.
type Tile interface {
	PhaseTransfer(cycle uint64)
	PhaseCommit(cycle uint64)
	// NextEvent returns the earliest cycle strictly after now at which the
	// tile could initiate new activity assuming nothing arrives over the
	// network, or NoEvent. Used only when fast-forwarding is enabled; a
	// conservative answer of now+1 is always safe.
	NextEvent(now uint64) uint64
}

// RunResult summarizes one Engine.Run invocation.
type RunResult struct {
	Cycles        uint64        // simulated cycles actually executed
	SkippedCycles uint64        // cycles jumped over by fast-forwarding
	Wall          time.Duration // host wall-clock time
	Workers       int
}

func (r RunResult) String() string {
	return fmt.Sprintf("cycles=%d skipped=%d wall=%v workers=%d",
		r.Cycles, r.SkippedCycles, r.Wall, r.Workers)
}

// Engine steps a fixed set of tiles in parallel.
type Engine struct {
	tiles       []Tile
	workers     int
	syncPeriod  int
	fastForward bool

	// inflight counts flits resident anywhere in the simulated network
	// (VC buffers and ejection queues). Tiles update it via InFlight().
	inflight *atomic.Int64

	// cross-barrier control written by the barrier leader.
	nextCycle atomic.Uint64
	halted    atomic.Bool
	skipped   atomic.Uint64
}

// NewEngine creates an engine stepping tiles with the given worker count
// (0 means GOMAXPROCS, capped at the tile count), synchronization period
// (1 = cycle-accurate) and fast-forward setting. inflight is the shared
// in-network flit counter the tiles maintain; pass nil to allocate one.
func NewEngine(tiles []Tile, workers, syncPeriod int, fastForward bool, inflight *atomic.Int64) *Engine {
	if len(tiles) == 0 {
		panic("sim: engine needs at least one tile")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tiles) {
		workers = len(tiles)
	}
	if syncPeriod < 1 {
		syncPeriod = 1
	}
	if inflight == nil {
		inflight = new(atomic.Int64)
	}
	return &Engine{
		tiles:       tiles,
		workers:     workers,
		syncPeriod:  syncPeriod,
		fastForward: fastForward,
		inflight:    inflight,
	}
}

// InFlight exposes the global in-network flit counter that tiles maintain.
func (e *Engine) InFlight() *atomic.Int64 { return e.inflight }

// Workers returns the effective worker count.
func (e *Engine) Workers() int { return e.workers }

// partition returns the contiguous tile span [lo,hi) owned by worker w.
// Contiguous blocks keep neighbouring mesh tiles on the same worker, which
// is what HORNET's equal-division mapping does.
func (e *Engine) partition(w int) (lo, hi int) {
	n := len(e.tiles)
	base, rem := n/e.workers, n%e.workers
	lo = w*base + min(w, rem)
	hi = lo + base
	if w < rem {
		hi++
	}
	return lo, hi
}

// Run simulates up to maxCycles cycles starting at cycle start. If stop is
// non-nil it is evaluated at every synchronization point (by the barrier
// leader, so it needs no internal locking) and ends the run early when it
// returns true. Run returns once all workers have finished.
func (e *Engine) Run(start, maxCycles uint64, stop func(cycle uint64) bool) RunResult {
	end := start + maxCycles
	e.nextCycle.Store(start)
	e.halted.Store(false)
	e.skipped.Store(0)

	barrier := NewBarrier(e.workers)
	began := time.Now()
	var executed atomic.Uint64

	leader := func(cycleJustFinished uint64) {
		next := cycleJustFinished + 1
		if e.fastForward && e.inflight.Load() == 0 {
			if t := e.earliestEvent(cycleJustFinished); t > next && t != NoEvent {
				if t > end {
					t = end
				}
				e.skipped.Add(t - next)
				next = t
			} else if t == NoEvent {
				e.skipped.Add(end - next)
				next = end
			}
		}
		if next >= end || (stop != nil && stop(cycleJustFinished)) {
			e.halted.Store(true)
		}
		e.nextCycle.Store(next)
	}

	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo, hi := e.partition(w)
			mine := e.tiles[lo:hi]
			for {
				cycle := e.nextCycle.Load()
				if cycle >= end || e.halted.Load() {
					return
				}
				// Run a synchronization chunk: syncPeriod cycles (or up to
				// end), keeping same-worker tiles in lockstep per cycle.
				chunkEnd := cycle + uint64(e.syncPeriod)
				if chunkEnd > end {
					chunkEnd = end
				}
				if e.syncPeriod == 1 {
					// Cycle-accurate: barrier after each phase (twice per
					// cycle), so every tile sees identical committed state.
					for _, t := range mine {
						t.PhaseTransfer(cycle)
					}
					barrier.Await(nil)
					for _, t := range mine {
						t.PhaseCommit(cycle)
					}
					if w == 0 {
						executed.Add(1)
					}
					barrier.Await(func() { leader(cycle) })
				} else {
					c := cycle
					for ; c < chunkEnd && !e.halted.Load(); c++ {
						for _, t := range mine {
							t.PhaseTransfer(c)
						}
						for _, t := range mine {
							t.PhaseCommit(c)
						}
						// Keep workers interleaved between barriers so
						// cross-worker credits and flits stay as fresh as
						// concurrent hardware threads would see them; on
						// hosts with fewer cores than workers this
						// prevents whole-chunk serialization from
						// starving boundary links.
						runtime.Gosched()
					}
					if w == 0 {
						executed.Add(c - cycle)
					}
					last := c - 1
					barrier.Await(func() { leader(last) })
				}
			}
		}(w)
	}
	wg.Wait()

	return RunResult{
		Cycles:        executed.Load(),
		SkippedCycles: e.skipped.Load(),
		Wall:          time.Since(began),
		Workers:       e.workers,
	}
}

// earliestEvent scans all tiles for the soonest self-initiated activity.
// Called only by the barrier leader while all workers are blocked, so the
// tiles are quiescent and safe to query.
func (e *Engine) earliestEvent(now uint64) uint64 {
	earliest := uint64(NoEvent)
	for _, t := range e.tiles {
		if ev := t.NextEvent(now); ev < earliest {
			earliest = ev
		}
	}
	return earliest
}

package mem

import (
	"fmt"

	"hornet/internal/noc"
)

// Bridge is one tile's protocol endpoint: it converts messages to packets
// (and back), implementing the paper's "common bridge abstraction" that
// hides packetization from cores and controllers. Messages to the local
// tile bypass the network with a one-cycle latency, as a real switch's
// local port loopback would.
type Bridge struct {
	node  noc.NodeID
	offer func(noc.Packet)
	cycle uint64

	L1   *L1
	Dir  *Directory
	MC   *Controller
	Nuca *NucaPort
}

// NewBridge builds a bridge; offer is the router injection callback.
func NewBridge(node noc.NodeID, offer func(noc.Packet)) *Bridge {
	return &Bridge{node: node, offer: offer}
}

// BeginCycle must be called once per simulated cycle before the
// components tick, so local sends are stamped correctly.
func (b *Bridge) BeginCycle(cycle uint64) { b.cycle = cycle }

// Send implements Sender.
func (b *Bridge) Send(dst noc.NodeID, class uint8, m *Message) {
	if dst == b.node {
		b.dispatch(m, class, b.node, b.cycle)
		return
	}
	b.offer(noc.Packet{
		Flow:    noc.MakeFlow(b.node, dst, class),
		Dst:     dst,
		Flits:   flitsFor(m),
		Payload: m,
	})
}

// ReceivePacket implements noc.Receiver for protocol traffic.
func (b *Bridge) ReceivePacket(p noc.Packet, cycle uint64) {
	m, ok := p.Payload.(*Message)
	if !ok {
		return // synthetic traffic sharing the tile; not for us
	}
	b.dispatch(m, p.Flow.Class(), p.Src, cycle)
}

func (b *Bridge) dispatch(m *Message, class uint8, src noc.NodeID, cycle uint64) {
	switch m.Type {
	case MsgGetS, MsgGetM, MsgPutM, MsgNucaRead, MsgNucaWrite, MsgMemData:
		if b.Dir == nil {
			panic(fmt.Sprintf("mem: tile %d got %v without a directory slice", b.node, m.Type))
		}
		b.Dir.Deliver(m, src, cycle)
	case MsgMemRead, MsgMemWrite:
		if b.MC == nil {
			panic(fmt.Sprintf("mem: tile %d got %v without a memory controller", b.node, m.Type))
		}
		b.MC.Deliver(m, src, cycle)
	case MsgNucaResp:
		if b.Nuca == nil {
			panic(fmt.Sprintf("mem: tile %d got NucaResp without a NUCA port", b.node))
		}
		b.Nuca.deliver(m, cycle)
	case MsgPutAck:
		// Class disambiguates: requests go to the directory (owner
		// completing a forward), responses to the cache.
		if class == ClassRequest {
			b.Dir.Deliver(m, src, cycle)
		} else if b.L1 != nil {
			b.L1.Deliver(m, src, cycle)
		}
	case MsgData, MsgInv, MsgInvAck, MsgFwdGetS, MsgFwdGetM:
		if b.L1 == nil {
			panic(fmt.Sprintf("mem: tile %d got %v without an L1", b.node, m.Type))
		}
		b.L1.Deliver(m, src, cycle)
	default:
		panic(fmt.Sprintf("mem: tile %d cannot dispatch %v", b.node, m.Type))
	}
}

// NucaPort is the processor-side memory port in NUCA mode: every access
// goes to the line's home slice (local slices answer through the bridge's
// loopback), with no local caching of remote data (paper §II-D2).
type NucaPort struct {
	node   noc.NodeID
	am     *AddressMap
	sender Sender

	pend *nucaPending

	Stats L1Stats // reuse counter block: Loads/Stores/StallCycles
}

type nucaPending struct {
	write bool
	addr  uint32
	size  int
	wdata uint64
	done  bool
	rdata uint64
}

// NewNucaPort builds the port.
func NewNucaPort(node noc.NodeID, am *AddressMap, sender Sender) *NucaPort {
	return &NucaPort{node: node, am: am, sender: sender}
}

// Access implements Port.
func (n *NucaPort) Access(cycle uint64, write bool, addr uint32, size int, wdata uint64) (uint64, bool) {
	if n.pend == nil {
		if write {
			n.Stats.Stores++
		} else {
			n.Stats.Loads++
		}
		n.pend = &nucaPending{write: write, addr: addr, size: size, wdata: wdata}
		m := &Message{
			Addr:      n.am.LineAddr(addr),
			Requester: n.node,
			Off:       uint8(n.am.LineOffset(addr)),
			Len:       uint8(size),
		}
		if write {
			m.Type = MsgNucaWrite
			m.Data = make([]byte, size)
			putUint(m.Data, wdata)
		} else {
			m.Type = MsgNucaRead
		}
		n.sender.Send(n.am.Home(addr), ClassRequest, m)
		n.Stats.StallCycles++
		return 0, false
	}
	if !n.pend.done {
		n.Stats.StallCycles++
		return 0, false
	}
	r := n.pend.rdata
	n.pend = nil
	return r, true
}

func (n *NucaPort) deliver(m *Message, cycle uint64) {
	p := n.pend
	if p == nil || n.am.LineAddr(p.addr) != m.Addr {
		return
	}
	p.done = true
	if !p.write && len(m.Data) > 0 {
		p.rdata = getUint(m.Data)
	}
}

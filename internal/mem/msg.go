// Package mem implements HORNET's multicore memory subsystem (paper
// §II-D2): private set-associative write-back L1 caches kept coherent
// either by an MSI directory protocol or by NUCA-style remote access to a
// distributed shared memory, with directory slices interleaved across
// tiles by line address, memory controllers at configurable nodes, and a
// bridge that converts protocol messages to network packets (and models
// the DMA that frees cores while transfers proceed).
package mem

import (
	"fmt"

	"hornet/internal/noc"
)

// Traffic classes used by memory packets (FlowID class bits).
const (
	ClassRequest  uint8 = 1 // cache -> directory / MC requests
	ClassResponse uint8 = 2 // data and acks back to caches
	ClassMemory   uint8 = 3 // directory <-> memory controller
)

// MsgType enumerates protocol messages.
type MsgType uint8

// Protocol message types: MSI requests and responses, memory-controller
// transactions, and NUCA remote accesses.
const (
	// MSI cache -> directory.
	MsgGetS MsgType = iota // read miss: want Shared
	MsgGetM                // write miss/upgrade: want Modified
	MsgPutM                // write-back of a Modified line (with data)
	// MSI directory -> cache.
	MsgInv     // invalidate a Shared copy
	MsgFwdGetS // owner must send data to requester and downgrade
	MsgFwdGetM // owner must send data to requester and invalidate
	// Responses.
	MsgInvAck // sharer -> requester: invalidation done
	MsgData   // data response (carries AckCount for GetM)
	MsgPutAck // directory -> evicting cache
	// Directory <-> memory controller.
	MsgMemRead  // fetch a line from off-chip memory
	MsgMemWrite // write a line back off-chip
	MsgMemData  // controller -> directory: line data
	// NUCA remote access (no caching of remote lines).
	MsgNucaRead  // remote load
	MsgNucaWrite // remote store (carries data)
	MsgNucaResp  // home -> requester: load data / store ack
)

func (t MsgType) String() string {
	names := [...]string{"GetS", "GetM", "PutM", "Inv", "FwdGetS", "FwdGetM",
		"InvAck", "Data", "PutAck", "MemRead", "MemWrite", "MemData",
		"NucaRead", "NucaWrite", "NucaResp"}
	if int(t) < len(names) {
		return names[t]
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// Message is the protocol payload carried on a packet's head flit.
type Message struct {
	Type      MsgType
	Addr      uint32 // line-aligned address
	Data      []byte // line data when the message carries it
	Requester noc.NodeID
	// Txn is the requester's transaction number; responses echo it so
	// stale duplicates (e.g. both the owner and the directory answering a
	// forwarded request) can never satisfy a later transaction on the
	// same line.
	Txn uint64
	// AckCount, on a MsgData response to GetM, tells the requester how
	// many MsgInvAcks to collect before the write may proceed.
	AckCount int
	// Size/offset for NUCA sub-line accesses.
	Off uint8
	Len uint8
}

// flitsFor returns the packet length for a message: one header flit plus
// one flit per 8 data bytes.
func flitsFor(m *Message) int {
	return 1 + (len(m.Data)+7)/8
}

// Sender transmits protocol messages over the NoC; the tile bridge
// implements it. Implementations stamp flows as (src=this tile, dst, class).
type Sender interface {
	Send(dst noc.NodeID, class uint8, m *Message)
}

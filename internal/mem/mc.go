package mem

import (
	"hornet/internal/noc"
)

// Controller models one memory controller: a bounded-parallelism service
// queue with fixed DRAM latency. Directories send it MsgMemRead /
// MsgMemWrite over the network; reads produce MsgMemData responses. The
// queue-depth bound limits requests in service concurrently; arrivals
// beyond it wait, which is what concentrates congestion around controller
// tiles (paper §IV-C, Fig 11).
type Controller struct {
	node       noc.NodeID
	latency    uint64
	queueDepth int
	sender     Sender

	inbox   []inboundMsg
	service []serviceSlot

	Requests  uint64
	Reads     uint64
	Writes    uint64
	MaxQueued int
}

type serviceSlot struct {
	m       *Message
	readyAt uint64
}

// NewController builds a controller component for a tile.
func NewController(node noc.NodeID, latency, queueDepth int, sender Sender) *Controller {
	if latency < 1 {
		latency = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	return &Controller{node: node, latency: uint64(latency), queueDepth: queueDepth, sender: sender}
}

// Deliver queues a message (bridge callback).
func (c *Controller) Deliver(m *Message, src noc.NodeID, cycle uint64) {
	c.inbox = append(c.inbox, inboundMsg{m: m, src: src, availAt: cycle + 1})
	if q := len(c.inbox) + len(c.service); q > c.MaxQueued {
		c.MaxQueued = q
	}
}

// Tick admits requests into service (up to the depth bound, one per
// cycle) and completes finished ones.
func (c *Controller) Tick(cycle uint64) {
	// Complete finished requests.
	kept := c.service[:0]
	for _, s := range c.service {
		if s.readyAt > cycle {
			kept = append(kept, s)
			continue
		}
		if s.m.Type == MsgMemRead {
			c.sender.Send(s.m.Requester, ClassMemory, &Message{
				Type: MsgMemData, Addr: s.m.Addr,
			})
		}
	}
	c.service = kept
	// Admit one new request per cycle if a slot is free.
	if len(c.service) < c.queueDepth {
		for i, im := range c.inbox {
			if im.availAt > cycle {
				continue
			}
			c.Requests++
			if im.m.Type == MsgMemRead {
				c.Reads++
			} else {
				c.Writes++
			}
			c.service = append(c.service, serviceSlot{m: im.m, readyAt: cycle + c.latency})
			c.inbox = append(c.inbox[:i], c.inbox[i+1:]...)
			break
		}
	}
}

// Outstanding returns queued plus in-service requests (drain checks).
func (c *Controller) Outstanding() int { return len(c.inbox) + len(c.service) }

// TraceController is the network-only memory controller used by
// trace-driven Fig 11 runs: it receives raw request packets (class
// ClassRequest, no protocol payload) and answers each with a data-sized
// response packet after the DRAM latency.
type TraceController struct {
	node          noc.NodeID
	latency       uint64
	responseFlits int
	offer         func(noc.Packet)

	pending []tracePending
	Served  uint64
}

type tracePending struct {
	requester noc.NodeID
	readyAt   uint64
}

// NewTraceController builds the trace-mode controller; offer injects
// response packets at this tile (wired by the system builder).
func NewTraceController(node noc.NodeID, latency, responseFlits int) *TraceController {
	if latency < 1 {
		latency = 1
	}
	if responseFlits < 1 {
		responseFlits = 8
	}
	return &TraceController{node: node, latency: uint64(latency), responseFlits: responseFlits}
}

// Bind installs the injection callback (router OfferPacket).
func (tc *TraceController) Bind(offer func(noc.Packet)) { tc.offer = offer }

// ReceivePacket accepts a request packet (router Receiver path).
func (tc *TraceController) ReceivePacket(p noc.Packet, cycle uint64) {
	tc.pending = append(tc.pending, tracePending{requester: p.Src, readyAt: cycle + tc.latency})
}

// Tick emits one ready response per cycle.
func (tc *TraceController) Tick(cycle uint64, _ func(noc.Packet)) {
	for i, pe := range tc.pending {
		if pe.readyAt > cycle {
			continue
		}
		tc.offer(noc.Packet{
			Flow:  noc.MakeFlow(tc.node, pe.requester, ClassResponse),
			Dst:   pe.requester,
			Flits: tc.responseFlits,
		})
		tc.Served++
		tc.pending = append(tc.pending[:i], tc.pending[i+1:]...)
		return
	}
}

// NextEvent implements the fast-forward query.
func (tc *TraceController) NextEvent(now uint64) uint64 {
	if len(tc.pending) == 0 {
		return ^uint64(0)
	}
	earliest := tc.pending[0].readyAt
	for _, pe := range tc.pending[1:] {
		if pe.readyAt < earliest {
			earliest = pe.readyAt
		}
	}
	if earliest <= now {
		return now + 1
	}
	return earliest
}

package mem

import (
	"testing"
	"testing/quick"

	"hornet/internal/noc"
)

// loopback is a Sender that delivers messages synchronously with a
// one-step queue, letting cache/directory logic be unit-tested without a
// network. It records traffic for assertions.
type loopback struct {
	l1s  map[noc.NodeID]*L1
	dirs map[noc.NodeID]*Directory
	mcs  map[noc.NodeID]*Controller
	sent []sentMsg
}

type sentMsg struct {
	from, to noc.NodeID
	class    uint8
	m        *Message
}

func newLoopback() *loopback {
	return &loopback{
		l1s:  make(map[noc.NodeID]*L1),
		dirs: make(map[noc.NodeID]*Directory),
		mcs:  make(map[noc.NodeID]*Controller),
	}
}

// senderFor returns a Sender stamping the given source.
func (lb *loopback) senderFor(src noc.NodeID) Sender {
	return senderFunc(func(dst noc.NodeID, class uint8, m *Message) {
		lb.sent = append(lb.sent, sentMsg{from: src, to: dst, class: class, m: m})
	})
}

type senderFunc func(dst noc.NodeID, class uint8, m *Message)

func (f senderFunc) Send(dst noc.NodeID, class uint8, m *Message) { f(dst, class, m) }

// step delivers all queued messages and ticks every component once.
func (lb *loopback) step(cycle uint64) {
	batch := lb.sent
	lb.sent = nil
	for _, s := range batch {
		switch s.m.Type {
		case MsgGetS, MsgGetM, MsgPutM, MsgNucaRead, MsgNucaWrite, MsgMemData:
			lb.dirs[s.to].Deliver(s.m, s.from, cycle)
		case MsgMemRead, MsgMemWrite:
			lb.mcs[s.to].Deliver(s.m, s.from, cycle)
		case MsgPutAck:
			if s.class == ClassRequest {
				lb.dirs[s.to].Deliver(s.m, s.from, cycle)
			} else if l1 := lb.l1s[s.to]; l1 != nil {
				l1.Deliver(s.m, s.from, cycle)
			}
		default:
			lb.l1s[s.to].Deliver(s.m, s.from, cycle)
		}
	}
	for _, d := range lb.dirs {
		d.Tick(cycle)
	}
	for _, c := range lb.mcs {
		c.Tick(cycle)
	}
	for _, l := range lb.l1s {
		l.Tick(cycle)
	}
}

// build wires n tiles with L1s, directories everywhere and one MC at 0.
func build(t *testing.T, n int) (*loopback, *AddressMap) {
	t.Helper()
	am := &AddressMap{LineBytes: 32, Nodes: n, Controllers: []noc.NodeID{0}}
	lb := newLoopback()
	for i := 0; i < n; i++ {
		id := noc.NodeID(i)
		s := lb.senderFor(id)
		lb.dirs[id] = NewDirectory(id, am, s)
		lb.l1s[id] = NewL1(id, am, 4, 2, 1, s)
	}
	lb.mcs[0] = NewController(0, 10, 4, lb.senderFor(0))
	return lb, am
}

// access drives one L1 access to completion.
func access(t *testing.T, lb *loopback, l1 *L1, write bool, addr uint32, size int, wdata uint64) uint64 {
	t.Helper()
	for cycle := uint64(0); cycle < 10_000; cycle++ {
		v, done := l1.Access(cycle, write, addr, size, wdata)
		if done {
			return v
		}
		lb.step(cycle)
	}
	t.Fatalf("access to %#x did not complete", addr)
	return 0
}

func TestMSIWriteReadThroughTwoCaches(t *testing.T) {
	lb, _ := build(t, 4)
	w := lb.l1s[1]
	r := lb.l1s[2]
	access(t, lb, w, true, 0x1000, 4, 0xCAFEBABE)
	if v := access(t, lb, r, false, 0x1000, 4, 0); v != 0xCAFEBABE {
		t.Fatalf("reader saw %#x", v)
	}
	// Write again from the other cache: requires invalidate + ownership.
	access(t, lb, r, true, 0x1000, 4, 0x12345678)
	if v := access(t, lb, w, false, 0x1000, 4, 0); v != 0x12345678 {
		t.Fatalf("original writer saw %#x after transfer", v)
	}
	if w.Stats.Invalidations == 0 {
		t.Fatal("no invalidations recorded despite ownership transfers")
	}
}

func TestMSISubWordAccesses(t *testing.T) {
	lb, _ := build(t, 2)
	c := lb.l1s[1]
	access(t, lb, c, true, 0x2000, 1, 0xAB)
	access(t, lb, c, true, 0x2001, 1, 0xCD)
	if v := access(t, lb, c, false, 0x2000, 2, 0); v != 0xCDAB {
		t.Fatalf("little-endian halfword %#x", v)
	}
}

func TestEvictionWritesBack(t *testing.T) {
	lb, am := build(t, 2)
	c := lb.l1s[1]
	// 4 sets x 2 ways with 32B lines: addresses mapping to set 0 are
	// 32*4*k apart. Fill 3 such lines to force an eviction.
	base := uint32(0x4000)
	stride := uint32(32 * 4)
	for k := uint32(0); k < 3; k++ {
		access(t, lb, c, true, base+k*stride, 4, uint64(k+100))
	}
	if c.Stats.WriteBacks == 0 {
		t.Fatal("no write-back on dirty eviction")
	}
	// The evicted value survives in its home slice.
	if v := access(t, lb, c, false, base, 4, 0); v != 100 {
		t.Fatalf("evicted line read back %d", v)
	}
	_ = am
}

func TestFirstTouchGoesToMemoryController(t *testing.T) {
	lb, _ := build(t, 2)
	access(t, lb, lb.l1s[1], false, 0x5000, 4, 0)
	if lb.mcs[0].Reads == 0 {
		t.Fatal("first touch did not reach the memory controller")
	}
	reads := lb.mcs[0].Reads
	// Second access to the same line: directory-cached, no MC traffic.
	access(t, lb, lb.l1s[1], false, 0x5004, 4, 0)
	if lb.mcs[0].Reads != reads {
		t.Fatal("cached line fetched from MC again")
	}
}

func TestNucaReadWrite(t *testing.T) {
	am := &AddressMap{LineBytes: 32, Nodes: 4, Controllers: []noc.NodeID{0}}
	lb := newLoopback()
	for i := 0; i < 4; i++ {
		id := noc.NodeID(i)
		lb.dirs[id] = NewDirectory(id, am, lb.senderFor(id))
	}
	lb.mcs[0] = NewController(0, 5, 4, lb.senderFor(0))
	port := NewNucaPort(2, am, lb.senderFor(2))
	// Route NucaResp back to the port.
	origStep := lb.step
	_ = origStep
	drive := func(write bool, addr uint32, size int, wdata uint64) uint64 {
		for cycle := uint64(0); cycle < 10_000; cycle++ {
			v, done := port.Access(cycle, write, addr, size, wdata)
			if done {
				return v
			}
			batch := lb.sent
			lb.sent = nil
			for _, s := range batch {
				if s.m.Type == MsgNucaResp {
					port.deliver(s.m, cycle)
					continue
				}
				switch s.m.Type {
				case MsgNucaRead, MsgNucaWrite, MsgMemData:
					lb.dirs[s.to].Deliver(s.m, s.from, cycle)
				case MsgMemRead, MsgMemWrite:
					lb.mcs[s.to].Deliver(s.m, s.from, cycle)
				}
			}
			for _, d := range lb.dirs {
				d.Tick(cycle)
			}
			for _, c := range lb.mcs {
				c.Tick(cycle)
			}
		}
		t.Fatal("NUCA access hung")
		return 0
	}
	drive(true, 0x3000, 4, 777)
	if v := drive(false, 0x3000, 4, 0); v != 777 {
		t.Fatalf("NUCA read back %d", v)
	}
}

func TestAddressMapProperties(t *testing.T) {
	am := &AddressMap{LineBytes: 32, Nodes: 16, Controllers: []noc.NodeID{0, 5}}
	if err := quick.Check(func(addr uint32) bool {
		la := am.LineAddr(addr)
		if la%32 != 0 || la > addr || addr-la >= 32 {
			return false
		}
		h := am.Home(addr)
		if h != am.Home(la) || h < 0 || int(h) >= 16 {
			return false
		}
		c := am.Controller(addr)
		return c == 0 || c == 5
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStorePreloadReadBack(t *testing.T) {
	s := NewStore(32)
	data := make([]byte, 100)
	for i := range data {
		data[i] = byte(i * 7)
	}
	s.Preload(0x100C, data) // deliberately unaligned, spans lines
	got := s.ReadBytes(0x100C, 100)
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d: %d != %d", i, got[i], data[i])
		}
	}
}

func TestControllerQueueDepthLimitsService(t *testing.T) {
	var responses int
	ctl := NewController(0, 10, 2, senderFunc(func(dst noc.NodeID, class uint8, m *Message) {
		if m.Type == MsgMemData {
			responses++
		}
	}))
	for i := 0; i < 6; i++ {
		ctl.Deliver(&Message{Type: MsgMemRead, Addr: uint32(i * 32), Requester: 1}, 1, 0)
	}
	for c := uint64(1); c < 100; c++ {
		ctl.Tick(c)
	}
	if responses != 6 {
		t.Fatalf("served %d of 6 requests", responses)
	}
	if ctl.MaxQueued < 6 {
		t.Fatalf("max queue %d", ctl.MaxQueued)
	}
}

func TestFlitsForMessage(t *testing.T) {
	if n := flitsFor(&Message{}); n != 1 {
		t.Fatalf("header-only message %d flits", n)
	}
	if n := flitsFor(&Message{Data: make([]byte, 32)}); n != 5 {
		t.Fatalf("32B message %d flits, want 5", n)
	}
}

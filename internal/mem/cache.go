package mem

import (
	"encoding/binary"
	"fmt"

	"hornet/internal/noc"
)

// Port is the processor-side memory interface. The in-order core calls
// Access every cycle with the same arguments until done is reported; the
// implementation starts the transaction on the first call and polls it on
// subsequent ones. Accesses must be size-aligned (so they never straddle
// a cache line).
type Port interface {
	Access(cycle uint64, write bool, addr uint32, size int, wdata uint64) (rdata uint64, done bool)
}

// L1Stats counts cache events.
type L1Stats struct {
	Loads, Stores uint64
	Hits, Misses  uint64
	Evictions     uint64
	WriteBacks    uint64
	Invalidations uint64
	StallCycles   uint64
}

// MSI line states.
const (
	stInvalid byte = iota
	stShared
	stModified
)

type l1Line struct {
	valid bool
	state byte
	tag   uint32
	lru   uint64
	data  []byte
}

type l1Pending struct {
	txn       uint64
	write     bool
	addr      uint32
	size      int
	wdata     uint64
	readyAt   uint64 // hit-latency completion, when no network involved
	network   bool   // waiting for protocol messages
	needAck   int    // remaining InvAcks before a GetM completes
	haveData  bool
	fill      []byte
	fillState byte
	// noInstall marks a GetS fill whose line was invalidated while the
	// data was in flight: the load completes with the fill data (it is
	// ordered before the invalidating store) but the line is not cached.
	noInstall bool
}

// L1 is a private set-associative write-back write-allocate L1 cache with
// MSI coherence (paper §II-D2). It is also the tile's protocol client:
// the bridge feeds it Inv/Fwd/Data/Ack messages.
type L1 struct {
	node    noc.NodeID
	am      *AddressMap
	sets    int
	ways    int
	latency uint64
	sender  Sender

	lines   []l1Line
	lruTick uint64
	txn     uint64
	pend    *l1Pending

	inbox []inboundMsg

	Stats L1Stats
}

type inboundMsg struct {
	m       *Message
	src     noc.NodeID
	availAt uint64
}

// NewL1 builds a cache. sets and ways must be >= 1.
func NewL1(node noc.NodeID, am *AddressMap, sets, ways int, latency int, sender Sender) *L1 {
	if sets < 1 || ways < 1 {
		panic("mem: L1 needs >= 1 set and way")
	}
	if latency < 1 {
		latency = 1
	}
	c := &L1{
		node:    node,
		am:      am,
		sets:    sets,
		ways:    ways,
		latency: uint64(latency),
		sender:  sender,
		lines:   make([]l1Line, sets*ways),
	}
	return c
}

// Deliver queues a protocol message for processing next cycle (bridge
// callback, same tile thread).
func (c *L1) Deliver(m *Message, src noc.NodeID, cycle uint64) {
	c.inbox = append(c.inbox, inboundMsg{m: m, src: src, availAt: cycle + 1})
}

// Tick processes inbound protocol traffic; call once per cycle before the
// router's transfer phase. Handling may requeue messages (deferred
// forwards) and local loopback sends may deliver new ones, so the batch
// is snapshotted first.
func (c *L1) Tick(cycle uint64) {
	batch := c.inbox
	c.inbox = nil
	for _, im := range batch {
		if im.availAt > cycle {
			c.inbox = append(c.inbox, im)
			continue
		}
		c.handle(im.m, im.src, cycle)
	}
}

func (c *L1) setOf(addr uint32) int {
	return int((addr / uint32(c.am.LineBytes)) % uint32(c.sets))
}

func (c *L1) tagOf(addr uint32) uint32 {
	return addr / uint32(c.am.LineBytes) / uint32(c.sets)
}

// lookup returns the way holding addr's line, or -1.
func (c *L1) lookup(addr uint32) int {
	set := c.setOf(addr)
	tag := c.tagOf(addr)
	for w := 0; w < c.ways; w++ {
		l := &c.lines[set*c.ways+w]
		if l.valid && l.tag == tag && l.state != stInvalid {
			return set*c.ways + w
		}
	}
	return -1
}

// victim picks the way to fill for addr's line: an existing copy of the
// same line is reused (so a stale Shared copy can never shadow a fresh
// fill), then an invalid way, then the LRU way — writing back a Modified
// victim.
func (c *L1) victim(addr uint32) *l1Line {
	set := c.setOf(addr)
	tag := c.tagOf(addr)
	best := set * c.ways
	for w := 0; w < c.ways; w++ {
		i := set*c.ways + w
		if c.lines[i].valid && c.lines[i].tag == tag {
			best = i
			goto chosen
		}
	}
	for w := 1; w < c.ways; w++ {
		i := set*c.ways + w
		if !c.lines[i].valid {
			best = i
			break
		}
		if c.lines[i].lru < c.lines[best].lru {
			best = i
		}
	}
chosen:
	v := &c.lines[best]
	if v.valid && v.state == stModified {
		c.Stats.WriteBacks++
		victimAddr := (v.tag*uint32(c.sets) + uint32(c.setOf(addr))) * uint32(c.am.LineBytes)
		// Recompute the victim's own set index from its stored position:
		// the set is shared with addr by construction.
		c.sender.Send(c.am.Home(victimAddr), ClassRequest, &Message{
			Type: MsgPutM, Addr: victimAddr, Data: append([]byte(nil), v.data...), Requester: c.node,
		})
	}
	if v.valid {
		c.Stats.Evictions++
	}
	v.valid = false
	v.state = stInvalid
	return v
}

// Access implements Port.
func (c *L1) Access(cycle uint64, write bool, addr uint32, size int, wdata uint64) (uint64, bool) {
	if c.pend == nil {
		c.start(cycle, write, addr, size, wdata)
	}
	return c.poll(cycle)
}

func (c *L1) start(cycle uint64, write bool, addr uint32, size int, wdata uint64) {
	if write {
		c.Stats.Stores++
	} else {
		c.Stats.Loads++
	}
	c.txn++
	p := &l1Pending{txn: c.txn, write: write, addr: addr, size: size, wdata: wdata}
	c.pend = p
	if i := c.lookup(addr); i >= 0 {
		l := &c.lines[i]
		if !write || l.state == stModified {
			c.Stats.Hits++
			p.readyAt = cycle + c.latency - 1
			return
		}
	}
	// Miss (or store upgrade): go to the directory.
	c.Stats.Misses++
	p.network = true
	t := MsgGetS
	if write {
		t = MsgGetM
	}
	c.sender.Send(c.am.Home(addr), ClassRequest, &Message{
		Type: t, Addr: c.am.LineAddr(addr), Requester: c.node, Txn: p.txn,
	})
}

func (c *L1) poll(cycle uint64) (uint64, bool) {
	p := c.pend
	if p == nil {
		panic("mem: L1 poll without pending access")
	}
	if p.network {
		if !p.haveData || p.needAck > 0 {
			c.Stats.StallCycles++
			return 0, false
		}
		if p.noInstall {
			// The line was invalidated while this GetS fill was in
			// flight: serve the load from the received data without
			// caching it (see the MsgInv handler).
			off := c.am.LineOffset(p.addr)
			r := getUint(p.fill[off : off+p.size])
			c.pend = nil
			return r, true
		}
		// Fill completed: install line and fall through to completion.
		v := c.victim(p.addr)
		v.valid = true
		v.tag = c.tagOf(p.addr)
		v.state = p.fillState
		v.data = p.fill
		p.network = false
		p.readyAt = cycle // data just arrived; complete this cycle
	}
	if cycle < p.readyAt {
		c.Stats.StallCycles++
		return 0, false
	}
	i := c.lookup(p.addr)
	if i < 0 {
		// The line was invalidated between fill and completion (possible
		// under racing Inv); restart the transaction.
		c.pend = nil
		c.start(cycle, p.write, p.addr, p.size, p.wdata)
		return 0, false
	}
	l := &c.lines[i]
	c.lruTick++
	l.lru = c.lruTick
	off := c.am.LineOffset(p.addr)
	var r uint64
	if p.write {
		if l.state != stModified {
			// Should not happen: stores complete only with M.
			panic(fmt.Sprintf("mem: store completing in state %d", l.state))
		}
		putUint(l.data[off:off+p.size], p.wdata)
	} else {
		r = getUint(l.data[off : off+p.size])
	}
	c.pend = nil
	return r, true
}

// deferFwd requeues a forwarded request that raced ahead of this cache's
// own in-flight fill of the same line: the directory has already made us
// owner, but the data (or final ack) has not landed yet. Holding the
// forward until the fill completes resolves the race without NACKs.
func (c *L1) deferFwd(m *Message, cycle uint64) bool {
	if i := c.lookup(m.Addr); i >= 0 && c.lines[i].state == stModified {
		return false // we can serve it right now
	}
	if p := c.pend; p != nil && c.am.LineAddr(p.addr) == m.Addr {
		c.inbox = append(c.inbox, inboundMsg{m: m, availAt: cycle + 1})
		return true
	}
	return false
}

// handle processes one protocol message.
func (c *L1) handle(m *Message, src noc.NodeID, cycle uint64) {
	switch m.Type {
	case MsgData:
		p := c.pend
		if p == nil || c.am.LineAddr(p.addr) != m.Addr || m.Txn != p.txn {
			return // stale or duplicate response from an older transaction
		}
		p.haveData = true
		p.needAck += m.AckCount
		p.fill = append([]byte(nil), m.Data...)
		if p.write {
			p.fillState = stModified
		} else {
			p.fillState = stShared
		}
	case MsgInvAck:
		if p := c.pend; p != nil && c.am.LineAddr(p.addr) == m.Addr && m.Txn == p.txn {
			p.needAck--
		}
	case MsgInv:
		if i := c.lookup(m.Addr); i >= 0 {
			c.lines[i].state = stInvalid
			c.lines[i].valid = false
			c.Stats.Invalidations++
		}
		if p := c.pend; p != nil && p.network && !p.write && c.am.LineAddr(p.addr) == m.Addr {
			// The invalidation raced our own in-flight GetS fill of this
			// line: the Data may already be buffered but not installed
			// (directory and cache share a tile, so both land in one
			// inbox batch), or still be in the network with the 1-flit
			// Inv having overtaken the multi-flit Data worm (dynamic VC
			// allocation does not order same-flow packets). Installing
			// that fill would leave a Shared copy the directory no
			// longer tracks — a permanently stale read. The textbook
			// IS_D resolution: complete the load with the fill data
			// (the load is ordered before the invalidating store at the
			// directory) but do not cache the line, so the next access
			// misses and refetches. Pending GetM fills ignore the Inv:
			// it targets our old Shared copy, and once we are granted M
			// later writers are forwarded to us, never invalidated.
			p.noInstall = true
		}
		// Always ack (silent S evictions make spurious Invs normal).
		c.sender.Send(m.Requester, ClassResponse, &Message{
			Type: MsgInvAck, Addr: m.Addr, Requester: c.node, Txn: m.Txn,
		})
	case MsgFwdGetS:
		if c.deferFwd(m, cycle) {
			return
		}
		if i := c.lookup(m.Addr); i >= 0 && c.lines[i].state == stModified {
			l := &c.lines[i]
			c.sender.Send(m.Requester, ClassResponse, &Message{
				Type: MsgData, Addr: m.Addr, Data: append([]byte(nil), l.data...), Txn: m.Txn,
			})
			c.sender.Send(c.am.Home(m.Addr), ClassRequest, &Message{
				Type: MsgPutM, Addr: m.Addr, Data: append([]byte(nil), l.data...), Requester: c.node,
			})
			l.state = stShared
		}
		// Otherwise our PutM is already in flight; the directory resolves it.
	case MsgFwdGetM:
		if c.deferFwd(m, cycle) {
			return
		}
		if i := c.lookup(m.Addr); i >= 0 && c.lines[i].state == stModified {
			l := &c.lines[i]
			c.sender.Send(m.Requester, ClassResponse, &Message{
				Type: MsgData, Addr: m.Addr, Data: append([]byte(nil), l.data...), Txn: m.Txn,
			})
			c.sender.Send(c.am.Home(m.Addr), ClassRequest, &Message{
				Type: MsgPutAck, Addr: m.Addr, Requester: c.node,
			})
			l.state = stInvalid
			l.valid = false
			c.Stats.Invalidations++
		}
	case MsgPutAck:
		// Write-back acknowledged; nothing to do (fire-and-forget PutM).
	default:
		panic(fmt.Sprintf("mem: L1 got unexpected message %v", m.Type))
	}
}

func putUint(dst []byte, v uint64) {
	switch len(dst) {
	case 1:
		dst[0] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(dst, uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(dst, uint32(v))
	case 8:
		binary.LittleEndian.PutUint64(dst, v)
	default:
		panic(fmt.Sprintf("mem: unsupported access size %d", len(dst)))
	}
}

func getUint(src []byte) uint64 {
	switch len(src) {
	case 1:
		return uint64(src[0])
	case 2:
		return uint64(binary.LittleEndian.Uint16(src))
	case 4:
		return uint64(binary.LittleEndian.Uint32(src))
	case 8:
		return binary.LittleEndian.Uint64(src)
	default:
		panic(fmt.Sprintf("mem: unsupported access size %d", len(src)))
	}
}

package mem

import (
	"fmt"
	"sort"

	"hornet/internal/noc"
)

// Directory is one tile's slice of the MSI directory (and, in NUCA mode,
// the home slice serving remote reads and stores). Lines are interleaved
// across tiles by AddressMap.Home. The slice owns the authoritative data
// for its lines in a Store; memory-controller traffic (MsgMemRead on
// first touch, MsgMemWrite on write-back) models the off-chip timing and
// congestion while the data itself stays in the slice, a simplification
// documented in DESIGN.md.
type Directory struct {
	node   noc.NodeID
	am     *AddressMap
	sender Sender
	store  *Store

	lines map[uint32]*dirLine
	inbox []inboundMsg

	// Stats.
	Requests   uint64
	MemFetches uint64
	MemWrites  uint64
	Forwards   uint64
	NucaOps    uint64
}

type dirLine struct {
	state   byte // stInvalid (memory only), stShared, stModified
	sharers map[noc.NodeID]struct{}
	owner   noc.NodeID
	cached  bool // data has been fetched on-chip at least once

	busy    bool       // transaction in flight (MC fetch or forward)
	cur     *Message   // request being serviced
	waiting []*Message // queued requests for this line
}

// NewDirectory builds the slice for one tile.
func NewDirectory(node noc.NodeID, am *AddressMap, sender Sender) *Directory {
	return &Directory{
		node:   node,
		am:     am,
		sender: sender,
		store:  NewStore(am.LineBytes),
		lines:  make(map[uint32]*dirLine),
	}
}

// Store exposes the slice's backing store (program preloading).
func (d *Directory) Store() *Store { return d.store }

// Deliver queues a message (bridge callback).
func (d *Directory) Deliver(m *Message, src noc.NodeID, cycle uint64) {
	d.inbox = append(d.inbox, inboundMsg{m: m, src: src, availAt: cycle + 1})
}

// Tick processes inbound messages, one line-transaction step per message.
// The batch is snapshotted first: handling can deliver new local messages
// (bridge loopback) that must not be lost to slice aliasing.
func (d *Directory) Tick(cycle uint64) {
	batch := d.inbox
	d.inbox = nil
	for _, im := range batch {
		if im.availAt > cycle {
			d.inbox = append(d.inbox, im)
			continue
		}
		d.handle(im.m, cycle)
	}
}

func (d *Directory) line(addr uint32) *dirLine {
	base := d.am.LineAddr(addr)
	l := d.lines[base]
	if l == nil {
		l = &dirLine{state: stInvalid, sharers: make(map[noc.NodeID]struct{})}
		d.lines[base] = l
	}
	return l
}

func (d *Directory) handle(m *Message, cycle uint64) {
	if d.am.Home(m.Addr) != d.node && m.Type != MsgMemData {
		panic(fmt.Sprintf("mem: directory %d got message for line homed at %d", d.node, d.am.Home(m.Addr)))
	}
	d.Requests++
	switch m.Type {
	case MsgGetS, MsgGetM:
		l := d.line(m.Addr)
		if l.busy {
			l.waiting = append(l.waiting, m)
			return
		}
		d.service(l, m)
	case MsgPutM:
		d.handlePutM(m)
	case MsgPutAck:
		// Owner finished a FwdGetM hand-off.
		l := d.line(m.Addr)
		if l.busy && l.cur != nil && l.cur.Type == MsgGetM {
			req := l.cur
			l.owner = req.Requester
			l.state = stModified
			d.finish(l)
		}
	case MsgMemData:
		d.handleMemData(m)
	case MsgNucaRead, MsgNucaWrite:
		d.handleNuca(m)
	default:
		panic(fmt.Sprintf("mem: directory got unexpected message %v", m.Type))
	}
}

// service starts handling a GetS/GetM on an idle line.
func (d *Directory) service(l *dirLine, m *Message) {
	if !l.cached {
		// First touch: fetch the line from the memory controller; the
		// request parks until MsgMemData returns.
		l.busy = true
		l.cur = m
		d.MemFetches++
		d.sender.Send(d.am.Controller(m.Addr), ClassMemory, &Message{
			Type: MsgMemRead, Addr: d.am.LineAddr(m.Addr), Requester: d.node,
		})
		return
	}
	switch {
	case m.Type == MsgGetS && l.state != stModified:
		l.sharers[m.Requester] = struct{}{}
		l.state = stShared
		d.respondData(m.Requester, m.Addr, 0, m.Txn)
	case m.Type == MsgGetS: // state M: forward to owner
		l.busy = true
		l.cur = m
		d.Forwards++
		d.sender.Send(l.owner, ClassResponse, &Message{
			Type: MsgFwdGetS, Addr: d.am.LineAddr(m.Addr), Requester: m.Requester, Txn: m.Txn,
		})
	case m.Type == MsgGetM && l.state == stModified:
		if l.owner == m.Requester {
			// Owner re-requesting (lost line mid-transaction): re-grant.
			d.respondData(m.Requester, m.Addr, 0, m.Txn)
			return
		}
		l.busy = true
		l.cur = m
		d.Forwards++
		d.sender.Send(l.owner, ClassResponse, &Message{
			Type: MsgFwdGetM, Addr: d.am.LineAddr(m.Addr), Requester: m.Requester, Txn: m.Txn,
		})
	default: // GetM on I or S
		// Invalidations go out in sorted sharer order: map iteration
		// order would inject packets in a run-to-run random order, which
		// breaks the simulator's determinism (and with it the snapshot
		// round-trip contract).
		sharers := make([]noc.NodeID, 0, len(l.sharers))
		for s := range l.sharers {
			sharers = append(sharers, s)
		}
		sort.Slice(sharers, func(i, j int) bool { return sharers[i] < sharers[j] })
		acks := 0
		for _, s := range sharers {
			if s == m.Requester {
				continue
			}
			acks++
			d.sender.Send(s, ClassResponse, &Message{
				Type: MsgInv, Addr: d.am.LineAddr(m.Addr), Requester: m.Requester, Txn: m.Txn,
			})
		}
		l.sharers = make(map[noc.NodeID]struct{})
		l.state = stModified
		l.owner = m.Requester
		d.respondData(m.Requester, m.Addr, acks, m.Txn)
	}
}

// respondData sends the line's current data to a requester, echoing the
// request's transaction number.
func (d *Directory) respondData(to noc.NodeID, addr uint32, acks int, txn uint64) {
	line := d.store.Line(addr)
	d.sender.Send(to, ClassResponse, &Message{
		Type: MsgData, Addr: d.am.LineAddr(addr),
		Data: append([]byte(nil), line...), AckCount: acks, Txn: txn,
	})
}

// handlePutM folds a write-back (eviction or forward completion).
func (d *Directory) handlePutM(m *Message) {
	l := d.line(m.Addr)
	d.store.WriteLine(m.Addr, m.Data)
	d.MemWrites++
	d.sender.Send(d.am.Controller(m.Addr), ClassMemory, &Message{
		Type: MsgMemWrite, Addr: d.am.LineAddr(m.Addr), Requester: d.node,
	})
	if l.busy && l.cur != nil {
		// The PutM completes an in-flight forward: answer the parked
		// requester directly (covers the owner-evicted race).
		req := l.cur
		switch req.Type {
		case MsgGetS:
			l.state = stShared
			l.sharers[m.Requester] = struct{}{} // previous owner keeps S
			l.sharers[req.Requester] = struct{}{}
			d.respondData(req.Requester, m.Addr, 0, req.Txn)
		case MsgGetM:
			l.state = stModified
			l.owner = req.Requester
			d.respondData(req.Requester, m.Addr, 0, req.Txn)
		}
		d.finish(l)
		return
	}
	if l.state == stModified && l.owner == m.Requester {
		l.state = stInvalid
		l.cached = true
	}
}

// handleMemData resumes the request that waited on an off-chip fetch.
func (d *Directory) handleMemData(m *Message) {
	l := d.line(m.Addr)
	if !l.busy || l.cur == nil {
		return
	}
	l.cached = true
	req := l.cur
	l.busy = false
	l.cur = nil
	d.dispatch(l, req)
	if !l.busy {
		d.drainWaiting(l)
	}
}

// dispatch routes a (possibly parked) request to its handler.
func (d *Directory) dispatch(l *dirLine, m *Message) {
	switch m.Type {
	case MsgNucaRead, MsgNucaWrite:
		d.handleNuca(m)
	default:
		d.service(l, m)
	}
}

// finish completes the current transaction and restarts queued requests.
func (d *Directory) finish(l *dirLine) {
	l.busy = false
	l.cur = nil
	d.drainWaiting(l)
}

func (d *Directory) drainWaiting(l *dirLine) {
	for len(l.waiting) > 0 && !l.busy {
		next := l.waiting[0]
		l.waiting = l.waiting[1:]
		d.dispatch(l, next)
	}
}

// handleNuca serves NUCA remote accesses directly against the home slice.
func (d *Directory) handleNuca(m *Message) {
	d.NucaOps++
	line := d.store.Line(m.Addr)
	base := d.am.LineAddr(m.Addr)
	if !d.line(base).cached {
		// Charge the first-touch fetch cost as with MSI; NUCA requests
		// queue behind it.
		l := d.line(base)
		if l.busy {
			l.waiting = append(l.waiting, m)
			return
		}
		// For NUCA, model the fetch synchronously through the MC but park
		// the request (single transaction per line at a time).
		l.busy = true
		l.cur = m
		d.MemFetches++
		d.sender.Send(d.am.Controller(m.Addr), ClassMemory, &Message{
			Type: MsgMemRead, Addr: base, Requester: d.node,
		})
		return
	}
	off := int(m.Off)
	n := int(m.Len)
	resp := &Message{Type: MsgNucaResp, Addr: m.Addr, Off: m.Off, Len: m.Len}
	if m.Type == MsgNucaWrite {
		copy(line[off:off+n], m.Data)
	} else {
		resp.Data = append([]byte(nil), line[off:off+n]...)
	}
	d.sender.Send(m.Requester, ClassResponse, resp)
}

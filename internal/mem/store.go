package mem

import "hornet/internal/noc"

// AddressMap fixes the line size and the interleavings: which tile is a
// line's directory/NUCA home, and which memory controller backs it.
type AddressMap struct {
	LineBytes   int
	Nodes       int
	Controllers []noc.NodeID
}

// LineAddr returns addr rounded down to its line base.
func (am *AddressMap) LineAddr(addr uint32) uint32 {
	return addr &^ uint32(am.LineBytes-1)
}

// LineOffset returns addr's offset within its line.
func (am *AddressMap) LineOffset(addr uint32) int {
	return int(addr & uint32(am.LineBytes-1))
}

// Home returns the directory (or NUCA home) tile for a line, interleaved
// by line index so load spreads across the die.
func (am *AddressMap) Home(addr uint32) noc.NodeID {
	return noc.NodeID((addr / uint32(am.LineBytes)) % uint32(am.Nodes))
}

// Controller returns the memory controller backing a line, interleaved by
// line index across the configured controllers.
func (am *AddressMap) Controller(addr uint32) noc.NodeID {
	i := (addr / uint32(am.LineBytes)) % uint32(len(am.Controllers))
	return am.Controllers[i]
}

// Store is a sparse line-granularity backing store. Each directory slice
// (or NUCA home slice, or memory controller) owns one, so no cross-thread
// access occurs; absent lines read as zero.
//
// Preloaded content (program and data images written before the run) is
// additionally recorded as the store's baseline: checkpointing encodes
// only the lines that diverged from it (delta/sparse), and restoring
// resets to the baseline before applying the delta, so snapshots stay
// small while a restore still reproduces the exact byte state.
type Store struct {
	lineBytes int
	lines     map[uint32][]byte
	baseline  map[uint32][]byte
	// baseFP memoizes baselineFingerprint: the baseline is immutable
	// once simulation starts, but save/load consult the fingerprint on
	// every checkpoint.
	baseFP      uint32
	baseFPvalid bool
}

// NewStore creates an empty store with the given line size.
func NewStore(lineBytes int) *Store {
	return &Store{
		lineBytes: lineBytes,
		lines:     make(map[uint32][]byte),
		baseline:  map[uint32][]byte{},
	}
}

// Line returns the data for the line containing addr, materializing a
// zero line on first touch. The returned slice aliases the store.
func (s *Store) Line(addr uint32) []byte {
	base := addr &^ uint32(s.lineBytes-1)
	l := s.lines[base]
	if l == nil {
		l = make([]byte, s.lineBytes)
		s.lines[base] = l
	}
	return l
}

// WriteLine replaces the line containing addr.
func (s *Store) WriteLine(addr uint32, data []byte) {
	copy(s.Line(addr), data)
}

// Preload writes arbitrary bytes starting at addr (program loading before
// simulation starts) and records the touched lines' resulting content as
// the store's snapshot baseline. Must not be called once simulation has
// started: the baseline is the delta-encoding reference for checkpoints.
func (s *Store) Preload(addr uint32, data []byte) {
	for len(data) > 0 {
		line := s.Line(addr)
		off := int(addr & uint32(s.lineBytes-1))
		n := copy(line[off:], data)
		base := addr &^ uint32(s.lineBytes-1)
		s.baseline[base] = append([]byte(nil), line...)
		s.baseFPvalid = false
		data = data[n:]
		addr += uint32(n)
	}
}

// ReadBytes copies n bytes starting at addr into a fresh slice.
func (s *Store) ReadBytes(addr uint32, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; {
		line := s.Line(addr + uint32(i))
		off := int((addr + uint32(i)) & uint32(s.lineBytes-1))
		c := copy(out[i:], line[off:])
		i += c
	}
	return out
}

// Lines returns the number of materialized lines (diagnostics).
func (s *Store) Lines() int { return len(s.lines) }

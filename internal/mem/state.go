package mem

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"hornet/internal/noc"
	"hornet/internal/snapshot"
)

// This file implements checkpoint save/restore for the coherent-memory
// fabric: protocol messages (as a registered snapshot payload codec, so
// the NoC layer can serialize them in flight), backing stores (delta-
// encoded against the preloaded image), L1 caches with their MSHR-like
// pending transaction, directory slices with parked and queued requests,
// memory controllers, NUCA ports, and the trace-mode controllers.
// Encodings walk maps by sorted key and slices in order, so identical
// simulator states serialize to identical bytes; loads validate
// structural parameters against the freshly built component and return
// *snapshot.MismatchError / *snapshot.CorruptError accordingly.

// The protocol-message payload codec: how in-flight coherence traffic
// crosses the snapshot boundary inside flit and packet encodings.
func init() {
	snapshot.RegisterPayloadCodec(snapshot.PayloadCodec{
		Name:   "mem.msg",
		Match:  func(v any) bool { _, ok := v.(*Message); return ok },
		Encode: func(w *snapshot.Writer, v any) { encodeMessage(w, v.(*Message)) },
		Decode: func(r *snapshot.Reader) any { return decodeMessage(r) },
	})
}

func encodeMessage(w *snapshot.Writer, m *Message) {
	w.Uint8(uint8(m.Type))
	w.Uint32(m.Addr)
	w.Bytes(m.Data)
	w.Int32(int32(m.Requester))
	w.Uint64(m.Txn)
	w.Int(m.AckCount)
	w.Uint8(m.Off)
	w.Uint8(m.Len)
}

func decodeMessage(r *snapshot.Reader) *Message {
	return &Message{
		Type:      MsgType(r.Uint8()),
		Addr:      r.Uint32(),
		Data:      r.ByteSlice(),
		Requester: noc.NodeID(r.Int32()),
		Txn:       r.Uint64(),
		AckCount:  r.Int(),
		Off:       r.Uint8(),
		Len:       r.Uint8(),
	}
}

// inbox encoding shared by L1, directory and memory controller.
func saveInbox(w *snapshot.Writer, inbox []inboundMsg) {
	w.Int(len(inbox))
	for _, im := range inbox {
		encodeMessage(w, im.m)
		w.Int32(int32(im.src))
		w.Uint64(im.availAt)
	}
}

func loadInbox(r *snapshot.Reader) []inboundMsg {
	n := r.Count(1 << 22)
	var inbox []inboundMsg
	for i := 0; i < n && r.Err() == nil; i++ {
		m := decodeMessage(r)
		inbox = append(inbox, inboundMsg{m: m, src: noc.NodeID(r.Int32()), availAt: r.Uint64()})
	}
	return inbox
}

func saveL1Stats(w *snapshot.Writer, s *L1Stats) {
	w.Uint64(s.Loads)
	w.Uint64(s.Stores)
	w.Uint64(s.Hits)
	w.Uint64(s.Misses)
	w.Uint64(s.Evictions)
	w.Uint64(s.WriteBacks)
	w.Uint64(s.Invalidations)
	w.Uint64(s.StallCycles)
}

func loadL1Stats(r *snapshot.Reader, s *L1Stats) {
	s.Loads = r.Uint64()
	s.Stores = r.Uint64()
	s.Hits = r.Uint64()
	s.Misses = r.Uint64()
	s.Evictions = r.Uint64()
	s.WriteBacks = r.Uint64()
	s.Invalidations = r.Uint64()
	s.StallCycles = r.Uint64()
}

// matchesBaseline reports whether a materialized line carries no
// information beyond the baseline: equal to its preloaded content, or
// all-zero where nothing was preloaded. Such lines are skipped by the
// delta encoding — reading an absent line yields the same bytes.
func (s *Store) matchesBaseline(base uint32, line []byte) bool {
	if b, ok := s.baseline[base]; ok {
		return bytes.Equal(line, b)
	}
	for _, v := range line {
		if v != 0 {
			return false
		}
	}
	return true
}

// baselineFingerprint hashes the preloaded image (sorted line address +
// content). Save embeds it; load compares it against the restoring
// store's own baseline, so a snapshot can never be applied on top of a
// different program/data image. The hash is memoized — the baseline is
// frozen once simulation starts, while autosaving daemons consult the
// fingerprint every few thousand cycles.
func (s *Store) baselineFingerprint() uint32 {
	if s.baseFPvalid {
		return s.baseFP
	}
	addrs := make([]uint32, 0, len(s.baseline))
	for a := range s.baseline {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	crc := crc32.NewIEEE()
	var ab [4]byte
	for _, a := range addrs {
		binary.LittleEndian.PutUint32(ab[:], a)
		crc.Write(ab[:])
		crc.Write(s.baseline[a])
	}
	s.baseFP = crc.Sum32()
	s.baseFPvalid = true
	return s.baseFP
}

// SaveState serializes the store as a delta against its preloaded
// baseline: line size and baseline fingerprint (structural guards), then
// the diverged lines in ascending address order.
func (s *Store) SaveState(w *snapshot.Writer) {
	w.Int(s.lineBytes)
	w.Uint32(s.baselineFingerprint())
	addrs := make([]uint32, 0, len(s.lines))
	for a, line := range s.lines {
		if !s.matchesBaseline(a, line) {
			addrs = append(addrs, a)
		}
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	w.Int(len(addrs))
	for _, a := range addrs {
		w.Uint32(a)
		w.Bytes(s.lines[a])
	}
}

// LoadState resets the store to its baseline and applies the saved
// delta. The restoring store must have been preloaded identically.
func (s *Store) LoadState(r *snapshot.Reader) error {
	lineBytes := r.Int()
	fp := r.Uint32()
	if err := r.Err(); err != nil {
		return err
	}
	if lineBytes != s.lineBytes {
		return &snapshot.MismatchError{Field: "store line bytes",
			Got: fmt.Sprint(lineBytes), Want: fmt.Sprint(s.lineBytes)}
	}
	if want := s.baselineFingerprint(); fp != want {
		return &snapshot.MismatchError{Field: "preloaded memory image",
			Got: fmt.Sprintf("%08x", fp), Want: fmt.Sprintf("%08x", want)}
	}
	n := r.Count(1 << 22)
	s.lines = make(map[uint32][]byte, len(s.baseline)+n)
	for a, b := range s.baseline {
		s.lines[a] = append([]byte(nil), b...)
	}
	for i := 0; i < n; i++ {
		a := r.Uint32()
		line := r.ByteSlice()
		if r.Err() != nil {
			break
		}
		if len(line) != s.lineBytes {
			return &snapshot.CorruptError{Detail: fmt.Sprintf(
				"store line %#x holds %d bytes, line size is %d", a, len(line), s.lineBytes)}
		}
		s.lines[a] = line
	}
	return r.Err()
}

// SaveState serializes the cache: geometry guards, every way's tag/state
// /data, the pending transaction, and the protocol inbox.
func (c *L1) SaveState(w *snapshot.Writer) {
	w.Int(c.sets)
	w.Int(c.ways)
	w.Uint64(c.lruTick)
	w.Uint64(c.txn)
	for i := range c.lines {
		l := &c.lines[i]
		w.Bool(l.valid)
		w.Uint8(l.state)
		w.Uint32(l.tag)
		w.Uint64(l.lru)
		w.Bytes(l.data)
	}
	p := c.pend
	w.Bool(p != nil)
	if p != nil {
		w.Uint64(p.txn)
		w.Bool(p.write)
		w.Uint32(p.addr)
		w.Int(p.size)
		w.Uint64(p.wdata)
		w.Uint64(p.readyAt)
		w.Bool(p.network)
		w.Int(p.needAck)
		w.Bool(p.haveData)
		w.Bytes(p.fill)
		w.Uint8(p.fillState)
		w.Bool(p.noInstall)
	}
	saveInbox(w, c.inbox)
	saveL1Stats(w, &c.Stats)
}

// LoadState restores cache state saved by SaveState.
func (c *L1) LoadState(r *snapshot.Reader) error {
	sets, ways := r.Int(), r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if sets != c.sets || ways != c.ways {
		return &snapshot.MismatchError{Field: "L1 geometry",
			Got:  fmt.Sprintf("%dx%d", sets, ways),
			Want: fmt.Sprintf("%dx%d", c.sets, c.ways)}
	}
	c.lruTick = r.Uint64()
	c.txn = r.Uint64()
	for i := range c.lines {
		l := &c.lines[i]
		l.valid = r.Bool()
		l.state = r.Uint8()
		l.tag = r.Uint32()
		l.lru = r.Uint64()
		l.data = r.ByteSlice()
		// A valid line's data is read with line-offset arithmetic; a
		// wrong length must fail the restore with a structured error,
		// not panic on the first hit.
		if l.valid && len(l.data) != c.am.LineBytes {
			return &snapshot.CorruptError{Detail: fmt.Sprintf(
				"L1 way %d holds %d data bytes, line size is %d", i, len(l.data), c.am.LineBytes)}
		}
	}
	c.pend = nil
	if r.Bool() {
		p := &l1Pending{
			txn:   r.Uint64(),
			write: r.Bool(),
			addr:  r.Uint32(),
			size:  r.Int(),
			wdata: r.Uint64(),
		}
		p.readyAt = r.Uint64()
		p.network = r.Bool()
		p.needAck = r.Int()
		p.haveData = r.Bool()
		p.fill = r.ByteSlice()
		p.fillState = r.Uint8()
		p.noInstall = r.Bool()
		if p.haveData && len(p.fill) != c.am.LineBytes {
			return &snapshot.CorruptError{Detail: fmt.Sprintf(
				"L1 pending fill holds %d bytes, line size is %d", len(p.fill), c.am.LineBytes)}
		}
		// The access size and alignment feed line-offset slicing on
		// completion; reject values that would panic there. A size-
		// aligned power-of-two access never straddles the line.
		switch p.size {
		case 1, 2, 4, 8:
		default:
			return &snapshot.CorruptError{Detail: fmt.Sprintf(
				"L1 pending access size %d is not 1/2/4/8", p.size)}
		}
		if p.size > c.am.LineBytes || p.addr&uint32(p.size-1) != 0 {
			return &snapshot.CorruptError{Detail: fmt.Sprintf(
				"L1 pending access at %#x size %d straddles a %d-byte line", p.addr, p.size, c.am.LineBytes)}
		}
		c.pend = p
	}
	c.inbox = loadInbox(r)
	// Full-line data responses install as cache fills; a short one would
	// panic on completion rather than restore incorrectly.
	for _, im := range c.inbox {
		if im.m.Type == MsgData && len(im.m.Data) != c.am.LineBytes {
			return &snapshot.CorruptError{Detail: fmt.Sprintf(
				"L1 inbox data message holds %d bytes, line size is %d", len(im.m.Data), c.am.LineBytes)}
		}
	}
	loadL1Stats(r, &c.Stats)
	return r.Err()
}

// dirLineDefault reports whether a materialized directory entry carries
// no state beyond what first touch would materialize; such entries are
// skipped by the encoding (materialization itself is not semantic).
func dirLineDefault(l *dirLine) bool {
	return l.state == stInvalid && !l.cached && !l.busy && l.cur == nil &&
		l.owner == 0 && len(l.sharers) == 0 && len(l.waiting) == 0
}

// SaveState serializes the directory slice: backing store delta, the
// non-default line entries in ascending address order, inbox and
// counters.
func (d *Directory) SaveState(w *snapshot.Writer) {
	d.store.SaveState(w)
	addrs := make([]uint32, 0, len(d.lines))
	for a, l := range d.lines {
		if !dirLineDefault(l) {
			addrs = append(addrs, a)
		}
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	w.Int(len(addrs))
	for _, a := range addrs {
		l := d.lines[a]
		w.Uint32(a)
		w.Uint8(l.state)
		w.Int32(int32(l.owner))
		w.Bool(l.cached)
		w.Bool(l.busy)
		sharers := make([]noc.NodeID, 0, len(l.sharers))
		for s := range l.sharers {
			sharers = append(sharers, s)
		}
		sort.Slice(sharers, func(i, j int) bool { return sharers[i] < sharers[j] })
		w.Int(len(sharers))
		for _, s := range sharers {
			w.Int32(int32(s))
		}
		w.Bool(l.cur != nil)
		if l.cur != nil {
			encodeMessage(w, l.cur)
		}
		w.Int(len(l.waiting))
		for _, m := range l.waiting {
			encodeMessage(w, m)
		}
	}
	saveInbox(w, d.inbox)
	w.Uint64(d.Requests)
	w.Uint64(d.MemFetches)
	w.Uint64(d.MemWrites)
	w.Uint64(d.Forwards)
	w.Uint64(d.NucaOps)
}

// LoadState restores directory state saved by SaveState.
func (d *Directory) LoadState(r *snapshot.Reader) error {
	if err := d.store.LoadState(r); err != nil {
		return err
	}
	n := r.Count(1 << 22)
	d.lines = make(map[uint32]*dirLine, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		a := r.Uint32()
		l := &dirLine{
			state:  r.Uint8(),
			owner:  noc.NodeID(r.Int32()),
			cached: r.Bool(),
			busy:   r.Bool(),
		}
		ns := r.Count(1 << 20)
		l.sharers = make(map[noc.NodeID]struct{}, ns)
		for j := 0; j < ns && r.Err() == nil; j++ {
			l.sharers[noc.NodeID(r.Int32())] = struct{}{}
		}
		if r.Bool() {
			l.cur = decodeMessage(r)
		}
		nw := r.Count(1 << 20)
		for j := 0; j < nw && r.Err() == nil; j++ {
			l.waiting = append(l.waiting, decodeMessage(r))
		}
		d.lines[a] = l
	}
	d.inbox = loadInbox(r)
	d.Requests = r.Uint64()
	d.MemFetches = r.Uint64()
	d.MemWrites = r.Uint64()
	d.Forwards = r.Uint64()
	d.NucaOps = r.Uint64()
	return r.Err()
}

// SaveState serializes the memory controller: inbox, in-service slots
// and counters (latency and queue depth are config-hash-guarded).
func (c *Controller) SaveState(w *snapshot.Writer) {
	saveInbox(w, c.inbox)
	w.Int(len(c.service))
	for _, s := range c.service {
		encodeMessage(w, s.m)
		w.Uint64(s.readyAt)
	}
	w.Uint64(c.Requests)
	w.Uint64(c.Reads)
	w.Uint64(c.Writes)
	w.Int(c.MaxQueued)
}

// LoadState restores controller state saved by SaveState.
func (c *Controller) LoadState(r *snapshot.Reader) error {
	c.inbox = loadInbox(r)
	n := r.Count(1 << 22)
	c.service = nil
	for i := 0; i < n && r.Err() == nil; i++ {
		m := decodeMessage(r)
		c.service = append(c.service, serviceSlot{m: m, readyAt: r.Uint64()})
	}
	c.Requests = r.Uint64()
	c.Reads = r.Uint64()
	c.Writes = r.Uint64()
	c.MaxQueued = r.Int()
	return r.Err()
}

// SaveState serializes the NUCA port: the outstanding remote access and
// the access counters.
func (n *NucaPort) SaveState(w *snapshot.Writer) {
	p := n.pend
	w.Bool(p != nil)
	if p != nil {
		w.Bool(p.write)
		w.Uint32(p.addr)
		w.Int(p.size)
		w.Uint64(p.wdata)
		w.Bool(p.done)
		w.Uint64(p.rdata)
	}
	saveL1Stats(w, &n.Stats)
}

// LoadState restores NUCA port state saved by SaveState.
func (n *NucaPort) LoadState(r *snapshot.Reader) error {
	n.pend = nil
	if r.Bool() {
		p := &nucaPending{
			write: r.Bool(),
			addr:  r.Uint32(),
			size:  r.Int(),
			wdata: r.Uint64(),
			done:  r.Bool(),
			rdata: r.Uint64(),
		}
		switch p.size {
		case 1, 2, 4, 8:
		default:
			return &snapshot.CorruptError{Detail: fmt.Sprintf(
				"NUCA pending access size %d is not 1/2/4/8", p.size)}
		}
		n.pend = p
	}
	loadL1Stats(r, &n.Stats)
	return r.Err()
}

// SaveState serializes the trace-mode controller: timing parameters as
// structural guards (they come from experiment code, outside the config
// hash), then the pending responses and the served counter.
func (tc *TraceController) SaveState(w *snapshot.Writer) {
	w.Uint64(tc.latency)
	w.Int(tc.responseFlits)
	w.Int(len(tc.pending))
	for _, p := range tc.pending {
		w.Int32(int32(p.requester))
		w.Uint64(p.readyAt)
	}
	w.Uint64(tc.Served)
}

// LoadState restores trace-controller state saved by SaveState.
func (tc *TraceController) LoadState(r *snapshot.Reader) error {
	latency := r.Uint64()
	respFlits := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if latency != tc.latency || respFlits != tc.responseFlits {
		return &snapshot.MismatchError{Field: "trace controller parameters",
			Got:  fmt.Sprintf("latency=%d flits=%d", latency, respFlits),
			Want: fmt.Sprintf("latency=%d flits=%d", tc.latency, tc.responseFlits)}
	}
	n := r.Count(1 << 22)
	tc.pending = nil
	for i := 0; i < n && r.Err() == nil; i++ {
		tc.pending = append(tc.pending, tracePending{
			requester: noc.NodeID(r.Int32()),
			readyAt:   r.Uint64(),
		})
	}
	tc.Served = r.Uint64()
	return r.Err()
}

package core

import (
	"context"
	"fmt"

	"hornet/internal/config"
	"hornet/internal/snapshot"
	"hornet/internal/sweep"
)

// This file implements whole-system checkpointing: System.Snapshot
// captures every piece of mutable simulator state — engine clock, the
// global in-flight flit counter, per-tile RNG streams and statistics,
// router pipeline/buffer/allocation state (in-flight payloads included,
// via the snapshot payload codec registry), link arbitration state,
// synthetic-traffic generators, trace injectors, the coherent-memory
// fabric (caches, directories, memory controllers, backing stores as
// deltas against the preloaded image), MIPS cores (registers, private
// RAM, network-port DMA queues), trace-mode memory controllers, and the
// power model's epoch series — into a versioned snapshot.Snapshot
// guarded by the system's config hash. System.Restore is the exact
// inverse; the contract (enforced by internal/core's golden round-trip
// harness) is that run → Snapshot → Restore → run produces
// byte-identical results to an uninterrupted run, at any engine worker
// count.
//
// The one frontend that cannot be serialized is pinsim: its application
// threads are live goroutines parked mid-call, state no byte encoding
// can capture. Attaching it marks the system unsnapshottable and
// Snapshot returns a *snapshot.UnsupportedError naming the component.

// Section names used by the system snapshot layout. Frontend sections
// (mem, mips, tracemc) are present exactly when the frontend is
// attached; Restore cross-checks presence so a snapshot can never be
// loaded into a system with different frontends.
const (
	secEngine  = "engine"
	secTiles   = "tiles"
	secLinks   = "links"
	secTraffic = "traffic"
	secTrace   = "trace"
	secPower   = "power"
	secMem     = "mem"
	secMIPS    = "mips"
	secTraceMC = "tracemc"
	// secShard is present only in snapshots taken by a sharded system
	// (EnableSharding): the shard's identity and tile span. Its presence
	// also signals that the saved in-flight counter is the shard's local
	// drifted value, not a resident-flit count.
	secShard = "shard"
)

// Snapshot serializes the complete simulator state at the current
// clock. The system must be quiescent (between Run calls).
func (s *System) Snapshot() (*snapshot.Snapshot, error) {
	if s.unsnapshottable != "" {
		return nil, &snapshot.UnsupportedError{Component: s.unsnapshottable}
	}
	snap := snapshot.New(s.ConfigHash(), s.clock)

	w := snap.Section(secEngine)
	w.Int64(s.engine.InFlight().Load())

	if s.shard != nil {
		w = snap.Section(secShard)
		w.Int(s.shard.index)
		w.Int(s.shard.count)
		w.Int(s.shard.lo)
		w.Int(s.shard.hi)
	}

	w = snap.Section(secTiles)
	w.Int(len(s.tiles))
	for _, t := range s.tiles {
		w.Uint64(t.RNG.State())
		t.Stats.SaveState(w)
		if err := t.Router.SaveState(w, s.clock); err != nil {
			return nil, err
		}
	}

	// Links are shared per topology edge; each is saved once, from the
	// side-0 egress port that created it (the wiring in New assigns
	// side 0 to edge.A's router).
	w = snap.Section(secLinks)
	for _, t := range s.tiles {
		for _, p := range t.Router.Ports() {
			if p.Link != nil && p.Side == 0 && p.Out != nil {
				p.Link.SaveState(w)
			}
		}
	}

	w = snap.Section(secTraffic)
	w.Int(len(s.generators))
	for _, g := range s.generators {
		g.SaveState(w)
	}

	w = snap.Section(secTrace)
	w.Int(len(s.injectors))
	for _, inj := range s.injectors {
		inj.SaveState(w)
	}

	w = snap.Section(secPower)
	s.Power.SaveState(w)

	if s.memFab != nil {
		if err := s.memFab.SaveState(snap.Section(secMem)); err != nil {
			return nil, err
		}
	}
	if len(s.mipsCores) > 0 {
		w = snap.Section(secMIPS)
		w.Int(len(s.mipsCores))
		for _, c := range s.mipsCores {
			if err := c.SaveState(w); err != nil {
				return nil, err
			}
		}
	}
	if len(s.traceMCs) > 0 {
		w = snap.Section(secTraceMC)
		w.Int(len(s.traceMCs))
		for _, tc := range s.traceMCs {
			tc.SaveState(w)
		}
	}

	if err := snap.WriteManifest(s.manifest(snap)); err != nil {
		return nil, err
	}
	return snap, nil
}

// manifest summarizes the snapshot for inspection tools (the
// `snapshot <file>` subcommand): attached frontends, component counts,
// and how many typed payloads ride in the encoded state.
func (s *System) manifest(snap *snapshot.Snapshot) snapshot.Manifest {
	m := snapshot.Manifest{
		Nodes:         len(s.tiles),
		Generators:    len(s.generators),
		Injectors:     len(s.injectors),
		MIPSCores:     len(s.mipsCores),
		TraceMCs:      len(s.traceMCs),
		InFlightFlits: s.engine.InFlight().Load(),
		Payloads:      snap.Payloads(),
	}
	if len(s.generators) > 0 {
		m.Frontends = append(m.Frontends, "synthetic")
	}
	if len(s.injectors) > 0 {
		m.Frontends = append(m.Frontends, "trace")
	}
	if len(s.mipsCores) > 0 {
		m.Frontends = append(m.Frontends, "mips")
	}
	if s.memFab != nil {
		m.Frontends = append(m.Frontends, "mem")
		m.MemTiles = len(s.tiles)
	}
	if len(s.traceMCs) > 0 {
		m.Frontends = append(m.Frontends, "trace-mc")
	}
	return m
}

// SaveState serializes the shared-memory fabric tile by tile: directory
// slice (with its backing-store delta), then the optional processor-side
// ports (MSI L1 or NUCA), then the memory controllers in configured
// order.
func (f *memoryFabric) SaveState(w *snapshot.Writer) error {
	for i := range f.dirs {
		f.dirs[i].SaveState(w)
		b := f.bridges[i]
		w.Bool(b.L1 != nil)
		if b.L1 != nil {
			b.L1.SaveState(w)
		}
		w.Bool(b.Nuca != nil)
		if b.Nuca != nil {
			b.Nuca.SaveState(w)
		}
	}
	for _, cn := range f.am.Controllers {
		f.mcs[cn].SaveState(w)
	}
	return nil
}

// LoadState restores fabric state saved by SaveState into this (freshly
// built, identically attached) fabric.
func (f *memoryFabric) LoadState(r *snapshot.Reader) error {
	for i := range f.dirs {
		if err := f.dirs[i].LoadState(r); err != nil {
			return err
		}
		b := f.bridges[i]
		hasL1 := r.Bool()
		if err := r.Err(); err != nil {
			return err
		}
		if hasL1 != (b.L1 != nil) {
			return &snapshot.MismatchError{Field: fmt.Sprintf("tile %d L1", i),
				Got: fmt.Sprint(hasL1), Want: fmt.Sprint(b.L1 != nil)}
		}
		if b.L1 != nil {
			if err := b.L1.LoadState(r); err != nil {
				return err
			}
		}
		hasNuca := r.Bool()
		if err := r.Err(); err != nil {
			return err
		}
		if hasNuca != (b.Nuca != nil) {
			return &snapshot.MismatchError{Field: fmt.Sprintf("tile %d NUCA port", i),
				Got: fmt.Sprint(hasNuca), Want: fmt.Sprint(b.Nuca != nil)}
		}
		if b.Nuca != nil {
			if err := b.Nuca.LoadState(r); err != nil {
				return err
			}
		}
	}
	for _, cn := range f.am.Controllers {
		if err := f.mcs[cn].LoadState(r); err != nil {
			return err
		}
	}
	return nil
}

// SnapshotBytes serializes the system into an encoded snapshot blob.
func (s *System) SnapshotBytes() ([]byte, error) {
	snap, err := s.Snapshot()
	if err != nil {
		return nil, err
	}
	return snap.Bytes()
}

// WriteSnapshot persists the system state to a file (atomically).
func (s *System) WriteSnapshot(path string) error {
	snap, err := s.Snapshot()
	if err != nil {
		return err
	}
	return snap.WriteFile(path)
}

// Restore loads a snapshot into this system, which must be freshly
// built (New plus the same Attach calls as the system that produced the
// snapshot, not yet run). The config-hash guard rejects snapshots from
// structurally different configurations with a *snapshot.MismatchError;
// inconsistent section contents yield *snapshot.CorruptError.
func (s *System) Restore(snap *snapshot.Snapshot) error {
	if s.unsnapshottable != "" {
		return &snapshot.UnsupportedError{Component: s.unsnapshottable}
	}
	if s.clock != 0 {
		return fmt.Errorf("core: restore requires a freshly built system (clock is %d)", s.clock)
	}
	if err := snap.CheckConfigHash(s.ConfigHash()); err != nil {
		return err
	}
	// Frontend sections exist exactly when the frontend is attached; a
	// mismatch means the snapshot came from a system wired differently
	// (attachments are not part of the config hash).
	for _, fe := range []struct {
		section  string
		attached bool
	}{
		{secMem, s.memFab != nil},
		{secMIPS, len(s.mipsCores) > 0},
		{secTraceMC, len(s.traceMCs) > 0},
	} {
		if snap.Has(fe.section) != fe.attached {
			return &snapshot.MismatchError{Field: "frontend " + fe.section,
				Got:  fmt.Sprintf("present=%v", snap.Has(fe.section)),
				Want: fmt.Sprintf("present=%v", fe.attached)}
		}
	}

	r, err := snap.Open(secEngine)
	if err != nil {
		return err
	}
	inflight := r.Int64()
	if err := r.Close(); err != nil {
		return err
	}

	sharded := snap.Has(secShard)
	if sharded {
		r, err = snap.Open(secShard)
		if err != nil {
			return err
		}
		rs := &shardState{index: r.Int(), count: r.Int(), lo: r.Int(), hi: r.Int()}
		if err := r.Close(); err != nil {
			return err
		}
		s.restoredShard = rs
	}

	r, err = snap.Open(secTiles)
	if err != nil {
		return err
	}
	if n := r.Int(); n != len(s.tiles) {
		return &snapshot.MismatchError{Field: "tiles",
			Got: fmt.Sprint(n), Want: fmt.Sprint(len(s.tiles))}
	}
	for _, t := range s.tiles {
		t.RNG.SetState(r.Uint64())
		if err := t.Stats.LoadState(r); err != nil {
			return err
		}
		if err := t.Router.LoadState(r); err != nil {
			return err
		}
	}
	if err := r.Close(); err != nil {
		return err
	}

	r, err = snap.Open(secLinks)
	if err != nil {
		return err
	}
	for _, t := range s.tiles {
		for _, p := range t.Router.Ports() {
			if p.Link != nil && p.Side == 0 && p.Out != nil {
				if err := p.Link.LoadState(r); err != nil {
					return err
				}
			}
		}
	}
	if err := r.Close(); err != nil {
		return err
	}

	r, err = snap.Open(secTraffic)
	if err != nil {
		return err
	}
	if n := r.Int(); n != len(s.generators) {
		return &snapshot.MismatchError{Field: "traffic generators",
			Got: fmt.Sprint(n), Want: fmt.Sprint(len(s.generators))}
	}
	for _, g := range s.generators {
		if err := g.LoadState(r); err != nil {
			return err
		}
	}
	if err := r.Close(); err != nil {
		return err
	}

	r, err = snap.Open(secTrace)
	if err != nil {
		return err
	}
	if n := r.Int(); n != len(s.injectors) {
		return &snapshot.MismatchError{Field: "trace injectors",
			Got: fmt.Sprint(n), Want: fmt.Sprint(len(s.injectors))}
	}
	for _, inj := range s.injectors {
		if err := inj.LoadState(r); err != nil {
			return err
		}
	}
	if err := r.Close(); err != nil {
		return err
	}

	r, err = snap.Open(secPower)
	if err != nil {
		return err
	}
	if err := s.Power.LoadState(r); err != nil {
		return err
	}
	if err := r.Close(); err != nil {
		return err
	}

	if s.memFab != nil {
		r, err = snap.Open(secMem)
		if err != nil {
			return err
		}
		if err := s.memFab.LoadState(r); err != nil {
			return err
		}
		if err := r.Close(); err != nil {
			return err
		}
	}
	if len(s.mipsCores) > 0 {
		r, err = snap.Open(secMIPS)
		if err != nil {
			return err
		}
		if n := r.Int(); n != len(s.mipsCores) {
			return &snapshot.MismatchError{Field: "mips cores",
				Got: fmt.Sprint(n), Want: fmt.Sprint(len(s.mipsCores))}
		}
		for _, c := range s.mipsCores {
			if err := c.LoadState(r); err != nil {
				return err
			}
		}
		if err := r.Close(); err != nil {
			return err
		}
	}
	if len(s.traceMCs) > 0 {
		r, err = snap.Open(secTraceMC)
		if err != nil {
			return err
		}
		if n := r.Int(); n != len(s.traceMCs) {
			return &snapshot.MismatchError{Field: "trace controllers",
				Got: fmt.Sprint(n), Want: fmt.Sprint(len(s.traceMCs))}
		}
		for _, tc := range s.traceMCs {
			if err := tc.LoadState(r); err != nil {
				return err
			}
		}
		if err := r.Close(); err != nil {
			return err
		}
	}

	// Cross-check the global flit counter against the flits actually
	// resident in the restored buffers before installing anything
	// irreversible: a skew here would corrupt fast-forward decisions.
	// A sharded snapshot's counter is the shard's local injected-minus-
	// delivered value — it drifts from the resident count by boundary
	// traffic (only the cross-shard sum is meaningful), so the check
	// does not apply.
	if !sharded {
		var resident int64
		for _, t := range s.tiles {
			resident += t.Router.ResidentFlits()
		}
		if resident != inflight {
			return &snapshot.CorruptError{Detail: fmt.Sprintf(
				"in-flight counter %d does not match %d resident flits", inflight, resident)}
		}
	}
	s.engine.InFlight().Store(inflight)
	s.clock = snap.Clock
	return nil
}

// RestoreBytes decodes an encoded snapshot blob and restores it.
func (s *System) RestoreBytes(b []byte) error {
	snap, err := snapshot.DecodeBytes(b)
	if err != nil {
		return err
	}
	return s.Restore(snap)
}

// WarmedSystem returns a system advanced past its warmup: restored from
// the shared warmup snapshot cache when one is supplied (the first run
// of a prefix group simulates the warmup and snapshots it, single-
// flight; every other run forks from the blob), or by simulating the
// warmup directly. Both paths yield bit-identical simulator state —
// the snapshot round-trip contract — so cache reuse can never change an
// output byte. A cached blob the freshly built system refuses to
// restore (corrupt beyond the container checks, or stale) is purged and
// the warmup re-simulated rather than failing the run.
//
// build constructs the (identically configured) system; cfg is the
// configuration it uses, hashed into the prefix key. stop may be nil.
func WarmedSystem(ctx context.Context, cache *sweep.SnapshotCache, cfg config.Config, warmupCycles uint64, stop func(cycle uint64) bool, build func() (*System, error)) (*System, error) {
	direct := func() (*System, error) {
		sys, err := build()
		if err != nil {
			return nil, err
		}
		sys.RunUntil(warmupCycles, stop)
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		return sys, nil
	}
	if cache == nil || warmupCycles == 0 {
		return direct()
	}
	if ctx == nil {
		ctx = context.Background()
	}
	key := WarmupKey(cfg, warmupCycles)
	blob, hit, err := cache.Get(ctx, key, func() ([]byte, error) {
		sys, err := direct()
		if err != nil {
			return nil, err
		}
		return sys.SnapshotBytes()
	})
	if err != nil {
		return nil, err
	}
	sys, err := build()
	if err != nil {
		return nil, err
	}
	if rerr := sys.RestoreBytes(blob); rerr != nil {
		if !hit {
			// Our own just-produced snapshot failed to restore: the
			// subsystem is broken, not the cache entry. Surface it.
			return nil, rerr
		}
		cache.Drop(key)
		return direct()
	}
	return sys, nil
}

// WarmupKey is the warmup-prefix identity used by warmup-once/fork-many
// sweeps (internal/sweep.SnapshotCache): a stable hash of everything
// that shapes state evolution during the warmup — the configuration
// minus the worker count (results never depend on it) and minus the
// driver-level cycle windows — plus the warmup length itself. Runs that
// agree on this key may share one warmup snapshot; the measured phase
// after the prefix is free to differ.
func WarmupKey(cfg config.Config, warmupCycles uint64) string {
	cfg.Engine.Workers = 0
	cfg.WarmupCycles = 0
	cfg.AnalyzedCycles = 0
	return sweep.ConfigHash("warmup-prefix", cfg, warmupCycles)
}

// WarmupGroupKey is WarmupKey with the engine seed masked out: the
// grouping identity used to *derive* a shared seed for runs that should
// fork from one warmup (hornet-serve's share_warmup). The seed cannot
// participate in its own derivation.
func WarmupGroupKey(cfg config.Config, warmupCycles uint64) string {
	cfg.Engine.Seed = 0
	return WarmupKey(cfg, warmupCycles)
}

// ConfigHash returns this system's snapshot guard hash: a stable hash
// of the full configuration with the engine worker count zeroed,
// because results — and therefore state evolution — are identical at
// any worker count, while every other field (topology, router
// resources, routing, traffic, sync period, fast-forward, seed)
// changes how state evolves and must match for a restore to be
// meaningful.
func (s *System) ConfigHash() string {
	cfg := s.Config
	cfg.Engine.Workers = 0
	return sweep.ConfigHash("core/system", cfg)
}

package core

import (
	"bytes"
	"sync"
	"testing"

	"hornet/internal/config"
	"hornet/internal/mips"
	"hornet/internal/noc"
	"hornet/internal/sim"
	"hornet/internal/snapshot"
)

// shardHub is an in-process ShardPeer: a barrier over N shards' votes
// and boundary payloads that computes the group decision with
// sim.DecideShardSync and hands every shard all payloads — the same
// contract the serve coordinator implements over HTTP.
type shardHub struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int

	votes    []sim.ShardVote
	payloads [][]byte
	dec      sim.ShardDecision
	decErr   error
	out      [][]byte
	gen      int

	gpayloads [][]byte
	gout      [][]byte
	ggen      int
}

func newShardHub(n int) *shardHub {
	h := &shardHub{n: n}
	h.cond = sync.NewCond(&h.mu)
	return h
}

func (h *shardHub) Sync(v sim.ShardVote, boundary []byte) (sim.ShardDecision, [][]byte, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	gen := h.gen
	h.votes = append(h.votes, v)
	h.payloads = append(h.payloads, boundary)
	if len(h.votes) == h.n {
		h.dec, h.decErr = sim.DecideShardSync(h.votes)
		h.out = h.payloads
		h.votes, h.payloads = nil, nil
		h.gen++
		h.cond.Broadcast()
	} else {
		for h.gen == gen {
			h.cond.Wait()
		}
	}
	return h.dec, h.out, h.decErr
}

func (h *shardHub) Gather(payload []byte) ([][]byte, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	gen := h.ggen
	h.gpayloads = append(h.gpayloads, payload)
	if len(h.gpayloads) == h.n {
		h.gout = h.gpayloads
		h.gpayloads = nil
		h.ggen++
		h.cond.Broadcast()
	} else {
		for h.ggen == gen {
			h.cond.Wait()
		}
	}
	return h.gout, nil
}

// statsFingerprint serializes every tile's statistics to canonical bytes
// so byte-level identity (not just aggregate equality) is asserted.
func statsFingerprint(t *testing.T, sys *System) []byte {
	t.Helper()
	snap := snapshot.New("fingerprint", sys.Clock())
	w := snap.Section("stats")
	for _, tl := range sys.Tiles() {
		tl.Stats.SaveState(w)
	}
	b, err := snap.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestShardedSyntheticByteIdentity: a synthetic-traffic run sharded
// across 2 and 4 in-process "shards" (full system each, span-stepped)
// must produce per-tile statistics byte-identical to the single-process
// run — including when the sharded run is interrupted mid-way by a
// snapshot/restore of every shard (the migration path).
func TestShardedSyntheticByteIdentity(t *testing.T) {
	cycles := uint64(3000)
	if testing.Short() {
		cycles = 1200
	}
	mkCfg := func() config.Config {
		cfg := smallCfg()
		cfg.Traffic = []config.TrafficConfig{{Pattern: config.PatternTranspose, InjectionRate: 0.05}}
		return cfg
	}

	ref, err := New(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.AttachSyntheticTraffic(); err != nil {
		t.Fatal(err)
	}
	refRes := ref.Run(cycles)
	want := statsFingerprint(t, ref)

	for _, tc := range []struct {
		name    string
		count   int
		migrate bool
	}{
		{"2shards", 2, false},
		{"4shards", 4, false},
		{"2shards-migrate", 2, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			hub := newShardHub(tc.count)
			systems := make([]*System, tc.count)
			var wg sync.WaitGroup
			errs := make([]error, tc.count)
			for i := 0; i < tc.count; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					sys, err := New(mkCfg())
					if err == nil {
						err = sys.AttachSyntheticTraffic()
					}
					if err == nil {
						err = sys.EnableSharding(i, tc.count, hub)
					}
					if err != nil {
						errs[i] = err
						return
					}
					if !tc.migrate {
						if res := sys.Run(cycles); res.Err != nil {
							errs[i] = res.Err
							return
						}
					} else {
						// First half, then snapshot, rebuild, restore and
						// resume — the checkpoint-based shard migration path.
						half := cycles / 2
						if res := sys.Run(half); res.Err != nil {
							errs[i] = res.Err
							return
						}
						blob, err := sys.SnapshotBytes()
						if err != nil {
							errs[i] = err
							return
						}
						sys, err = New(mkCfg())
						if err == nil {
							err = sys.AttachSyntheticTraffic()
						}
						if err == nil {
							err = sys.RestoreBytes(blob)
						}
						if err == nil {
							err = sys.EnableSharding(i, tc.count, hub)
						}
						if err != nil {
							errs[i] = err
							return
						}
						if res := sys.RunUntilResumed(cycles-half, nil); res.Err != nil {
							errs[i] = res.Err
							return
						}
					}
					errs[i] = sys.ShardGather()
					systems[i] = sys
				}(i)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Fatalf("shard %d: %v", i, err)
				}
			}
			for i, sys := range systems {
				if sys.Clock() != ref.Clock() {
					t.Fatalf("shard %d clock %d, single-process %d", i, sys.Clock(), ref.Clock())
				}
				if got := statsFingerprint(t, sys); !bytes.Equal(got, want) {
					t.Errorf("shard %d: per-tile statistics diverged from the single-process run", i)
				}
			}
			_ = refRes
		})
	}
}

// TestShardedMIPSByteIdentity: a MIPS message-passing workload (nodes 0
// and 15 ping-ponging across the mesh, fast-forward on) sharded across
// two processes-worth of spans must stop at the same cycle with the
// same fast-forward accounting and byte-identical statistics as the
// single-process run. Completion is the decomposed CoresHalted: every
// span's cores halted and drained AND the global in-flight sum zero.
func TestShardedMIPSByteIdentity(t *testing.T) {
	img, err := mips.Assemble(pingPongSrc)
	if err != nil {
		t.Fatal(err)
	}
	mkCfg := func() config.Config {
		cfg := smallCfg()
		cfg.Engine.FastForward = true
		return cfg
	}
	nodes := func(n int) []noc.NodeID {
		out := make([]noc.NodeID, n)
		for i := range out {
			out[i] = noc.NodeID(i)
		}
		return out
	}

	ref, err := New(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	cores := ref.AttachMIPS(nodes(16), img)
	refRes := ref.RunUntil(2_000_000, ref.CoresHalted(cores))
	if !cores[0].Halted() {
		t.Fatal("single-process run did not complete")
	}
	want := statsFingerprint(t, ref)

	const count = 2
	hub := newShardHub(count)
	systems := make([]*System, count)
	results := make([]sim.RunResult, count)
	errs := make([]error, count)
	var wg sync.WaitGroup
	for i := 0; i < count; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sys, err := New(mkCfg())
			if err != nil {
				errs[i] = err
				return
			}
			sys.AttachMIPS(nodes(16), img)
			if err := sys.EnableSharding(i, count, hub); err != nil {
				errs[i] = err
				return
			}
			res := sys.RunUntil(2_000_000, nil)
			if res.Err != nil {
				errs[i] = res.Err
				return
			}
			results[i] = res
			errs[i] = sys.ShardGather()
			systems[i] = sys
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}
	for i, sys := range systems {
		if !results[i].Stopped {
			t.Errorf("shard %d: completion not reported as Stopped", i)
		}
		if results[i].Cycles != refRes.Cycles || results[i].SkippedCycles != refRes.SkippedCycles {
			t.Errorf("shard %d: cycles=%d skipped=%d, single-process %d/%d",
				i, results[i].Cycles, results[i].SkippedCycles, refRes.Cycles, refRes.SkippedCycles)
		}
		if sys.Clock() != ref.Clock() {
			t.Errorf("shard %d clock %d, single-process %d", i, sys.Clock(), ref.Clock())
		}
		if got := statsFingerprint(t, sys); !bytes.Equal(got, want) {
			t.Errorf("shard %d: per-tile statistics diverged from the single-process run", i)
		}
	}
}

package core

import (
	"hornet/internal/mips"
	"hornet/internal/noc"
	"hornet/internal/trace"
)

// IdealMIPSResult is the outcome of an ideal-network application run:
// the captured transmission trace (for later replay, Fig 12) and timing.
type IdealMIPSResult struct {
	Trace       *trace.Trace
	Cycles      uint64
	PacketsSent uint64
	Consoles    []string
	ExitCodes   []uint32
}

// RunMIPSIdeal executes the image on `nodes` MIPS cores over an ideal
// single-cycle network (paper §IV-D's trace-capture configuration):
// every packet is delivered one cycle after the DMA issues it, with
// unlimited bandwidth and no backpressure beyond the DMA queue itself.
// Each network transmission is logged as a trace event.
func RunMIPSIdeal(nodes int, img *mips.Image, maxCycles uint64) IdealMIPSResult {
	res := IdealMIPSResult{Trace: &trace.Trace{}}
	type delivery struct {
		at  uint64
		dst noc.NodeID
		p   noc.Packet
	}
	var pending []delivery
	ports := make([]*mips.NetPort, nodes)
	cores := make([]*mips.Core, nodes)
	var cycle uint64
	for i := 0; i < nodes; i++ {
		id := noc.NodeID(i)
		idx := i
		ports[i] = mips.NewNetPort(id,
			func(p noc.Packet) {
				p.Src = noc.NodeID(idx)
				pending = append(pending, delivery{at: cycle + 1, dst: p.Dst, p: p})
				res.Trace.Add(cycle, p.Src, p.Dst, p.Flits)
				res.PacketsSent++
			},
			func() int { return 0 }, // ideal injector: never backlogged
		)
		cores[i] = mips.NewCore(id, nodes, img, nil, ports[i])
	}
	allDone := func() bool {
		for _, c := range cores {
			if !c.Halted() || !c.Net().Idle() {
				return false
			}
		}
		return len(pending) == 0
	}
	for cycle = 0; cycle < maxCycles; cycle++ {
		// Deliver due packets first, then step every core one cycle.
		kept := pending[:0]
		for _, d := range pending {
			if d.at > cycle {
				kept = append(kept, d)
				continue
			}
			ports[d.dst].ReceivePacket(d.p, cycle)
		}
		pending = kept
		for _, c := range cores {
			c.Tick(cycle)
		}
		if allDone() {
			cycle++
			break
		}
	}
	res.Cycles = cycle
	res.Trace.Sort()
	for _, c := range cores {
		res.Consoles = append(res.Consoles, c.Console())
		res.ExitCodes = append(res.ExitCodes, c.ExitCode())
	}
	return res
}

package core

import (
	"testing"

	"hornet/internal/config"
	"hornet/internal/pinsim"
)

// TestPinAppParallelSum runs a Pin-style instrumented application over
// the MSI-coherent shared memory: every thread accumulates into its own
// slot of a shared array, then thread 0 sums the slots — exercising
// cross-tile coherence traffic exactly as the paper's Pin frontend does
// (§II-D3).
func TestPinAppParallelSum(t *testing.T) {
	const threads = 4
	const perThread = 32
	cfg := smallCfg()
	cfg.Topology.Width, cfg.Topology.Height = 2, 2
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mc := *config.DefaultMemory()
	fab, err := sys.AttachMemory(mc)
	if err != nil {
		t.Fatal(err)
	}

	const flagsBase = 0x2000
	const slotsBase = 0x1000
	var total uint32 // written by thread 0 before the run finishes
	app := func(th *pinsim.Thread) {
		id := uint32(th.ID())
		sum := uint32(0)
		for i := uint32(0); i < perThread; i++ {
			th.Compute(5) // "work" between memory references
			sum += id*100 + i
		}
		th.Store32(slotsBase+4*id, sum)
		th.Store32(flagsBase+64*id, 1) // separate lines: no false sharing
		if th.ID() != 0 {
			return
		}
		// Thread 0: wait for everyone, then reduce through shared memory.
		for other := uint32(1); other < threads; other++ {
			for th.Load32(flagsBase+64*other) == 0 {
				th.Compute(10)
			}
		}
		for other := uint32(0); other < threads; other++ {
			total += th.Load32(slotsBase + 4*other)
		}
	}
	fes := sys.AttachPinApp(threads, fab, mc, app)
	sys.RunUntil(10_000_000, sys.FrontendsHalted(fes))

	want := uint32(0)
	for id := uint32(0); id < threads; id++ {
		for i := uint32(0); i < perThread; i++ {
			want += id*100 + i
		}
	}
	if total != want {
		t.Fatalf("parallel sum = %d, want %d", total, want)
	}
	for i, fe := range fes {
		if fe.Instret == 0 || fe.MemOps == 0 {
			t.Fatalf("frontend %d did no work: %+v", i, fe)
		}
	}
}

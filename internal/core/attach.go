package core

import (
	"fmt"

	"hornet/internal/config"
	"hornet/internal/mem"
	"hornet/internal/mips"
	"hornet/internal/noc"
	"hornet/internal/pinsim"
	"hornet/internal/trace"
	"hornet/internal/traffic"
)

// AttachSyntheticTraffic builds generators from the config's traffic
// sections (or an explicit list) on every node.
func (s *System) AttachSyntheticTraffic(tcs ...config.TrafficConfig) error {
	if len(tcs) == 0 {
		tcs = s.Config.Traffic
	}
	for _, tc := range tcs {
		for _, t := range s.tiles {
			g, err := traffic.NewGenerator(t.ID, tc, s.Topo, s.Config.AvgPacketFlits, t.RNG)
			if err != nil {
				return err
			}
			tile := t
			gen := g
			s.generators = append(s.generators, gen)
			t.AddComponent(componentFunc{
				tick: func(cycle uint64) { gen.Tick(cycle, tile.Router.OfferPacket) },
				next: gen.NextEvent,
			})
		}
	}
	return nil
}

// StopTraffic halts all synthetic generators so the network can drain.
func (s *System) StopTraffic() {
	for _, g := range s.generators {
		g.Stop()
	}
}

// AttachTrace installs per-node trace injectors replaying tr.
func (s *System) AttachTrace(tr *trace.Trace) {
	for _, t := range s.tiles {
		inj := trace.NewInjector(t.ID, tr, 0)
		s.injectors = append(s.injectors, inj)
		tile := t
		t.AddComponent(componentFunc{
			tick: func(cycle uint64) { inj.Tick(cycle, tile.Router.OfferPacket) },
			next: inj.NextEvent,
		})
	}
}

// TraceDone reports whether all trace injectors have replayed everything
// and the network has drained.
func (s *System) TraceDone() bool {
	for _, inj := range s.injectors {
		if inj.Pending() > 0 {
			return false
		}
	}
	if s.InFlight() != 0 {
		return false
	}
	for _, t := range s.tiles {
		if t.Router.PendingPackets() > 0 {
			return false
		}
	}
	return true
}

// AttachTraceControllers places trace-mode memory controllers (Fig 11) at
// the given nodes: each answers class-1 request packets with
// responseFlits-sized responses after the DRAM latency.
func (s *System) AttachTraceControllers(nodes []noc.NodeID, latency, responseFlits int) {
	for _, n := range nodes {
		t := s.tiles[n]
		tc := mem.NewTraceController(n, latency, responseFlits)
		tc.Bind(t.Router.OfferPacket)
		t.extra = tc
		s.traceMCs = append(s.traceMCs, tc)
		t.AddComponent(componentFunc{
			tick: func(cycle uint64) { tc.Tick(cycle, nil) },
			next: tc.NextEvent,
		})
	}
}

// MemoryOptions selects the shared-memory subsystem layout.
type MemoryOptions struct {
	// WithL1 gives tiles an MSI-coherent private L1 (Protocol "msi");
	// Protocol "nuca" uses remote-access ports instead.
	Cfg config.MemoryConfig
}

// memoryFabric holds the per-tile memory components after AttachMemory.
type memoryFabric struct {
	am      *mem.AddressMap
	bridges []*mem.Bridge
	dirs    []*mem.Directory
	mcs     map[noc.NodeID]*mem.Controller
}

// AttachMemory wires the shared-memory subsystem on every tile: a bridge,
// a directory slice, memory controllers at the configured nodes, and — in
// MSI mode — per-tile L1 caches (NUCA mode creates remote-access ports on
// demand via Ports). Returns an opaque handle used by processor attachers.
func (s *System) AttachMemory(mc config.MemoryConfig) (*memoryFabric, error) {
	if len(mc.Controllers) == 0 {
		return nil, fmt.Errorf("core: memory needs at least one controller node")
	}
	am := &mem.AddressMap{LineBytes: mc.LineBytes, Nodes: s.Topo.Nodes()}
	for _, c := range mc.Controllers {
		am.Controllers = append(am.Controllers, noc.NodeID(c))
	}
	f := &memoryFabric{am: am, mcs: make(map[noc.NodeID]*mem.Controller)}
	for _, t := range s.tiles {
		tile := t
		b := mem.NewBridge(t.ID, tile.Router.OfferPacket)
		d := mem.NewDirectory(t.ID, am, b)
		b.Dir = d
		t.bridge = b
		f.bridges = append(f.bridges, b)
		f.dirs = append(f.dirs, d)
		t.AddComponent(componentFunc{tick: d.Tick})
	}
	for _, cn := range am.Controllers {
		t := s.tiles[cn]
		ctl := mem.NewController(cn, mc.MCLatencyCyc, mc.MCQueueDepth, t.bridge)
		t.bridge.MC = ctl
		f.mcs[cn] = ctl
		t.AddComponent(componentFunc{tick: ctl.Tick})
	}
	s.memFab = f
	return f, nil
}

// Fabric accessors used by tests and experiment harnesses.
func (f *memoryFabric) AddressMap() *mem.AddressMap { return f.am }

// Preload writes bytes into the authoritative home slices (program and
// data images before the run starts). It goes through Store.Preload so
// the content enters each store's checkpoint baseline: snapshots encode
// the stores as deltas against it.
func (f *memoryFabric) Preload(addr uint32, data []byte) {
	for len(data) > 0 {
		home := f.am.Home(addr)
		off := f.am.LineOffset(addr)
		n := f.am.LineBytes - off
		if n > len(data) {
			n = len(data)
		}
		f.dirs[home].Store().Preload(addr, data[:n])
		data = data[n:]
		addr += uint32(n)
	}
}

// ReadBack reads bytes from the home slices (result verification). Only
// meaningful when caches have been flushed or were never enabled.
func (f *memoryFabric) ReadBack(addr uint32, n int) []byte {
	out := make([]byte, 0, n)
	for len(out) < n {
		a := addr + uint32(len(out))
		home := f.am.Home(a)
		line := f.dirs[home].Store().Line(f.am.LineAddr(a))
		off := f.am.LineOffset(a)
		take := len(line) - off
		if take > n-len(out) {
			take = n - len(out)
		}
		out = append(out, line[off:off+take]...)
	}
	return out
}

// PortFor creates a processor-side memory port on a tile: an MSI L1 or a
// NUCA remote-access port, per the config protocol.
func (s *System) PortFor(f *memoryFabric, n noc.NodeID, mc config.MemoryConfig) pinsim.Port {
	t := s.tiles[n]
	if mc.Protocol == "nuca" {
		p := mem.NewNucaPort(n, f.am, t.bridge)
		t.bridge.Nuca = p
		return p
	}
	l1 := mem.NewL1(n, f.am, mc.L1Sets, mc.L1Ways, mc.L1LatencyCyc, t.bridge)
	t.bridge.L1 = l1
	t.AddComponent(componentFunc{tick: l1.Tick})
	return l1
}

// AttachMIPS places a MIPS core on every listed node, all running the
// same program image, with the MPI-style network port (private memory).
// Returns the cores in node order.
func (s *System) AttachMIPS(nodes []noc.NodeID, img *mips.Image) []*mips.Core {
	cores := make([]*mips.Core, 0, len(nodes))
	for _, n := range nodes {
		t := s.tiles[n]
		np := mips.NewNetPort(n, t.Router.OfferPacket, t.Router.PendingPackets)
		c := mips.NewCore(n, len(nodes), img, nil, np)
		t.net = np
		t.AddComponent(componentFunc{tick: c.Tick, next: c.NextEvent})
		cores = append(cores, c)
	}
	s.mipsCores = append(s.mipsCores, cores...)
	s.mipsNodes = append(s.mipsNodes, nodes...)
	return cores
}

// AttachMIPSShared places MIPS cores whose data accesses go through the
// shared-memory fabric (MSI L1 or NUCA port per the memory config).
func (s *System) AttachMIPSShared(nodes []noc.NodeID, img *mips.Image, f *memoryFabric, mc config.MemoryConfig) []*mips.Core {
	cores := make([]*mips.Core, 0, len(nodes))
	for _, n := range nodes {
		t := s.tiles[n]
		port := s.PortFor(f, n, mc)
		np := mips.NewNetPort(n, t.Router.OfferPacket, t.Router.PendingPackets)
		c := mips.NewCore(n, len(nodes), img, port, np)
		t.net = np
		t.AddComponent(componentFunc{tick: c.Tick, next: c.NextEvent})
		cores = append(cores, c)
	}
	s.mipsCores = append(s.mipsCores, cores...)
	s.mipsNodes = append(s.mipsNodes, nodes...)
	return cores
}

// AttachPinApp launches app threads 1:1 on the first `threads` tiles,
// instrumenting their memory accesses through the shared-memory fabric
// (the Pin frontend substitute). Returns the per-tile frontends.
func (s *System) AttachPinApp(threads int, f *memoryFabric, mc config.MemoryConfig, app func(t *pinsim.Thread)) []*pinsim.Frontend {
	s.markUnsnapshottable("pinsim frontends (live application goroutines)")
	fes := make([]*pinsim.Frontend, 0, threads)
	for i := 0; i < threads; i++ {
		n := noc.NodeID(i)
		port := s.PortFor(f, n, mc)
		th := pinsim.Launch(i, app)
		fe := pinsim.NewFrontend(th, port)
		s.tiles[n].AddComponent(componentFunc{tick: fe.Tick, next: fe.NextEvent})
		fes = append(fes, fe)
	}
	return fes
}

// CoresHalted reports whether every given core has exited and its DMA
// drained, and the network is empty — the application-run stop condition.
func (s *System) CoresHalted(cores []*mips.Core) func(cycle uint64) bool {
	return func(cycle uint64) bool {
		for _, c := range cores {
			if !c.Halted() || !c.Net().Idle() {
				return false
			}
		}
		if s.InFlight() != 0 {
			return false
		}
		for _, t := range s.tiles {
			if t.Router.PendingPackets() > 0 {
				return false
			}
		}
		return true
	}
}

// FrontendsHalted is the pinsim analogue of CoresHalted.
func (s *System) FrontendsHalted(fes []*pinsim.Frontend) func(cycle uint64) bool {
	return func(cycle uint64) bool {
		for _, fe := range fes {
			if !fe.Halted() {
				return false
			}
		}
		return s.InFlight() == 0
	}
}

package core

import (
	"fmt"
	"strconv"
	"testing"

	"hornet/internal/config"
	"hornet/internal/mips"
	"hornet/internal/noc"
	"hornet/internal/workloads"
)

// pingPongSrc: node 0 sends a counter to node N-1, which increments and
// returns it, R times; node 0 prints the final value.
const pingPongSrc = `
	.data
buf:	.space 8
	.text
main:
	li   $v0, 64
	syscall
	move $s0, $v0        # id
	li   $v0, 65
	syscall
	addiu $s1, $v0, -1   # partner/last id
	li   $s2, 20         # rounds
	bnez $s0, responder

	# node 0: initiate
	li   $s3, 0          # counter
p0_loop:
	la   $t0, buf
	sw   $s3, 0($t0)
	move $a0, $s1
	la   $a1, buf
	li   $a2, 4
	li   $v0, 60
	syscall
	move $a0, $s1
	la   $a1, buf
	li   $a2, 4
	li   $v0, 63
	syscall
	la   $t0, buf
	lw   $s3, 0($t0)
	addiu $s2, $s2, -1
	bgtz $s2, p0_loop
	move $a0, $s3
	li   $v0, 1
	syscall
	li   $v0, 10
	syscall

responder:
	bne  $s0, $s1, idle
r_loop:
	li   $a0, 0
	la   $a1, buf
	li   $a2, 4
	li   $v0, 63
	syscall
	la   $t0, buf
	lw   $t1, 0($t0)
	addiu $t1, $t1, 1
	sw   $t1, 0($t0)
	li   $a0, 0
	la   $a1, buf
	li   $a2, 4
	li   $v0, 60
	syscall
	addiu $s2, $s2, -1
	bgtz $s2, r_loop
idle:
	li   $v0, 10
	syscall
`

func TestMIPSPingPongOverNoC(t *testing.T) {
	cfg := smallCfg()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	img, err := mips.Assemble(pingPongSrc)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]noc.NodeID, sys.Topo.Nodes())
	for i := range nodes {
		nodes[i] = noc.NodeID(i)
	}
	cores := sys.AttachMIPS(nodes, img)
	res := sys.RunUntil(2_000_000, sys.CoresHalted(cores))
	if got := cores[0].Console(); got != "20" {
		t.Fatalf("node 0 printed %q, want 20 (halted=%v pc=%#x)", got, cores[0].Halted(), cores[0].PC)
	}
	t.Logf("ping-pong finished in %d cycles", res.Cycles)
	sum := sys.Summary()
	if sum.PacketsDelivered != 40 {
		t.Fatalf("delivered %d packets, want 40", sum.PacketsDelivered)
	}
}

func TestCannonCorrectAndSlowerThanIdeal(t *testing.T) {
	const q, b = 2, 4
	src := workloads.CannonSource(q, b)
	img, err := mips.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}

	// Ideal single-cycle network run (trace capture side of Fig 12).
	ideal := RunMIPSIdeal(q*q, img, 5_000_000)
	if ideal.Cycles >= 5_000_000 {
		t.Fatal("ideal run did not finish")
	}
	for i, console := range ideal.Consoles {
		row, col := i/q, i%q
		want := workloads.CannonChecksum(row, col, q, b)
		got, err := strconv.ParseInt(console, 10, 64)
		if err != nil || got != want {
			t.Fatalf("core %d checksum %q, want %d", i, console, want)
		}
	}

	// Integrated core+network run on a qxq mesh.
	cfg := smallCfg()
	cfg.Topology.Width, cfg.Topology.Height = q, q
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]noc.NodeID, q*q)
	for i := range nodes {
		nodes[i] = noc.NodeID(i)
	}
	cores := sys.AttachMIPS(nodes, img)
	res := sys.RunUntil(10_000_000, sys.CoresHalted(cores))
	for i, c := range cores {
		row, col := i/q, i%q
		want := fmt.Sprint(workloads.CannonChecksum(row, col, q, b))
		if c.Console() != want {
			t.Fatalf("core %d (integrated) checksum %q, want %s", i, c.Console(), want)
		}
	}
	if res.Cycles+res.SkippedCycles < ideal.Cycles {
		t.Fatalf("integrated run (%d cycles) faster than ideal network (%d)", res.Cycles, ideal.Cycles)
	}
	t.Logf("Fig 12 shape: ideal=%d cycles, integrated=%d cycles (%.2fx)",
		ideal.Cycles, res.Cycles, float64(res.Cycles)/float64(ideal.Cycles))
}

func TestBlackScholesGather(t *testing.T) {
	src := workloads.BlackScholesSource(32, 8)
	img, err := mips.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg()
	cfg.Topology.Width, cfg.Topology.Height = 2, 2
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cores := sys.AttachMIPS([]noc.NodeID{0, 1, 2, 3}, img)
	sys.RunUntil(5_000_000, sys.CoresHalted(cores))
	for i, c := range cores {
		if !c.Halted() {
			t.Fatalf("core %d did not halt (pc=%#x)", i, c.PC)
		}
	}
	if cores[0].Console() == "" {
		t.Fatal("core 0 printed nothing")
	}
	t.Logf("blackscholes total: %s", cores[0].Console())
}

func TestSharedMemoryMSI(t *testing.T) {
	// Two pinsim-style checks are elsewhere; here MIPS cores share memory
	// through MSI: core 0 writes a flag+value, core 1 spins on the flag
	// then reads the value.
	src := `
main:
	li   $v0, 64
	syscall
	bnez $v0, reader
	# writer: value at 0x1000, flag at 0x2000 (different lines/homes)
	li   $t0, 0x1000
	li   $t1, 777
	sw   $t1, 0($t0)
	li   $t0, 0x2000
	li   $t1, 1
	sw   $t1, 0($t0)
	li   $v0, 10
	syscall
reader:
	li   $t0, 0x2000
spin:
	lw   $t1, 0($t0)
	beqz $t1, spin
	li   $t0, 0x1000
	lw   $a0, 0($t0)
	li   $v0, 1
	syscall
	li   $v0, 10
	syscall
`
	img, err := mips.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, proto := range []string{"msi", "nuca"} {
		t.Run(proto, func(t *testing.T) {
			cfg := smallCfg()
			cfg.Topology.Width, cfg.Topology.Height = 2, 2
			mc := *config.DefaultMemory()
			mc.Protocol = proto
			fab, err := func() (f *memoryFabric, err error) {
				sys, err := New(cfg)
				if err != nil {
					return nil, err
				}
				fab, err := sys.AttachMemory(mc)
				if err != nil {
					return nil, err
				}
				cores := sys.AttachMIPSShared([]noc.NodeID{0, 3}, img, fab, mc)
				sys.RunUntil(3_000_000, sys.CoresHalted(cores))
				if got := cores[1].Console(); got != "777" {
					t.Fatalf("reader printed %q, want 777 (halted=%v pc=%#x)",
						got, cores[1].Halted(), cores[1].PC)
				}
				return fab, nil
			}()
			if err != nil {
				t.Fatal(err)
			}
			_ = fab
		})
	}
}

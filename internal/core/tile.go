// Package core assembles HORNET simulations: it builds the topology,
// routing and VCA tables, routers, tiles and the parallel engine from a
// config.Config, attaches frontends (synthetic traffic, trace injectors,
// MIPS cores, Pin-style instrumented threads, memory subsystem), and runs
// them with warmup/measurement phases, statistics aggregation, and power
// and thermal sampling.
package core

import (
	"hornet/internal/mem"
	"hornet/internal/mips"
	"hornet/internal/noc"
	"hornet/internal/power"
	"hornet/internal/sim"
	"hornet/internal/stats"
)

// Component is anything stepped once per cycle on a tile: traffic
// generators, trace injectors, processor cores, cache/directory/memory
// controller logic. Implementations are adapted at attach time.
type Component interface {
	Tick(cycle uint64)
	NextEvent(now uint64) uint64
}

// componentFunc adapts closures to Component.
type componentFunc struct {
	tick func(cycle uint64)
	next func(now uint64) uint64
}

func (c componentFunc) Tick(cycle uint64) { c.tick(cycle) }

func (c componentFunc) NextEvent(now uint64) uint64 {
	if c.next == nil {
		return sim.NoEvent
	}
	return c.next(now)
}

// Tile is one unit of parallel simulation: a router plus the components
// attached to the same node. It implements sim.Tile.
type Tile struct {
	ID         noc.NodeID
	Router     *noc.Router
	Stats      *stats.Tile
	RNG        *sim.RNG
	components []Component

	bridge *mem.Bridge
	net    *mips.NetPort
	extra  noc.Receiver

	powerModel *power.Model
	epoch      uint64
}

// AddComponent appends a per-cycle component (build time only).
func (t *Tile) AddComponent(c Component) { t.components = append(t.components, c) }

// PhaseTransfer implements sim.Tile.
func (t *Tile) PhaseTransfer(cycle uint64) {
	if t.bridge != nil {
		t.bridge.BeginCycle(cycle)
	}
	for _, c := range t.components {
		c.Tick(cycle)
	}
	t.Router.PhaseTransfer(cycle)
}

// PhaseCommit implements sim.Tile.
func (t *Tile) PhaseCommit(cycle uint64) {
	t.Router.PhaseCommit(cycle)
	if t.powerModel != nil && (cycle+1)%t.epoch == 0 {
		st := t.Stats
		t.powerModel.Sample(int(t.ID), power.EventCounts{
			BufReads:     st.BufReads,
			BufWrites:    st.BufWrites,
			XbarTransits: st.XbarTransits,
			LinkTransits: st.LinkTransits,
			ArbEvents:    st.ArbEvents,
		}, cycle+1)
	}
}

// NextEvent implements sim.Tile.
func (t *Tile) NextEvent(now uint64) uint64 {
	earliest := t.Router.NextEvent(now)
	for _, c := range t.components {
		if ev := c.NextEvent(now); ev < earliest {
			earliest = ev
		}
	}
	return earliest
}

// ReceivePacket implements noc.Receiver: protocol messages go to the
// memory bridge, MPI-style user packets to the core's network port, and
// anything else to the optional extra receiver (e.g. a trace-mode memory
// controller). Synthetic traffic needs no receiver: the router already
// folds its statistics.
func (t *Tile) ReceivePacket(p noc.Packet, cycle uint64) {
	if _, ok := p.Payload.(*mem.Message); ok && t.bridge != nil {
		t.bridge.ReceivePacket(p, cycle)
		return
	}
	if p.Flow.Class() == mips.ClassUser && t.net != nil {
		t.net.ReceivePacket(p, cycle)
		return
	}
	if t.extra != nil {
		t.extra.ReceivePacket(p, cycle)
	}
}

package core

import (
	"fmt"
	"testing"

	"hornet/internal/mips"
	"hornet/internal/noc"
	"hornet/internal/workloads"
)

// The registry kernels (reduction, matmul-blocked) are verified the same
// way cannon is: run the generated assembly on an integrated core+NoC
// system and compare the printed total with the Go-side recomputation.

func runKernelOnMesh(t *testing.T, src string, w, h int, budget uint64) []*mips.Core {
	t.Helper()
	img, err := mips.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg()
	cfg.Topology.Width, cfg.Topology.Height = w, h
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]noc.NodeID, w*h)
	for i := range nodes {
		nodes[i] = noc.NodeID(i)
	}
	cores := sys.AttachMIPS(nodes, img)
	sys.RunUntil(budget, sys.CoresHalted(cores))
	for i, c := range cores {
		if !c.Halted() {
			t.Fatalf("core %d did not halt (pc=%#x)", i, c.PC)
		}
	}
	return cores
}

func TestReductionTreeTotal(t *testing.T) {
	for _, c := range []struct{ w, h, elems int }{{2, 2, 8}, {4, 2, 64}, {4, 4, 16}} {
		t.Run(fmt.Sprintf("%dx%d_e%d", c.w, c.h, c.elems), func(t *testing.T) {
			cores := runKernelOnMesh(t, workloads.ReductionSource(c.elems), c.w, c.h, 5_000_000)
			want := fmt.Sprint(workloads.ReductionChecksum(c.w*c.h, c.elems))
			if got := cores[0].Console(); got != want {
				t.Fatalf("core 0 printed %q, want %s", got, want)
			}
		})
	}
}

func TestMatmulBlockedTotal(t *testing.T) {
	for _, c := range []struct{ w, h, n, b int }{{2, 2, 8, 4}, {3, 2, 4, 2}} {
		t.Run(fmt.Sprintf("%dx%d_n%d_b%d", c.w, c.h, c.n, c.b), func(t *testing.T) {
			cores := runKernelOnMesh(t, workloads.MatmulBlockedSource(c.n, c.b), c.w, c.h, 10_000_000)
			want := fmt.Sprint(workloads.MatmulTotal(c.w*c.h, c.n))
			if got := cores[0].Console(); got != want {
				t.Fatalf("core 0 printed %q, want %s", got, want)
			}
		})
	}
}

package core

import (
	"fmt"
	"testing"

	"hornet/internal/config"
	"hornet/internal/noc"
	"hornet/internal/trace"
)

// smallCfg returns a quick 4x4 mesh configuration for unit tests.
func smallCfg() config.Config {
	cfg := config.Default()
	cfg.Topology.Width, cfg.Topology.Height = 4, 4
	cfg.WarmupCycles = 1000
	cfg.AnalyzedCycles = 5000
	cfg.Power.EpochCycles = 1000
	return cfg
}

func TestUniformTrafficDelivers(t *testing.T) {
	cfg := smallCfg()
	cfg.Traffic = []config.TrafficConfig{{Pattern: config.PatternUniform, InjectionRate: 0.02}}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AttachSyntheticTraffic(); err != nil {
		t.Fatal(err)
	}
	sys.Run(20_000)
	sum := sys.Summary()
	if sum.PacketsDelivered == 0 {
		t.Fatalf("no packets delivered: %+v", sum)
	}
	if sum.PacketsInjected < sum.PacketsDelivered {
		t.Fatalf("delivered %d > injected %d", sum.PacketsDelivered, sum.PacketsInjected)
	}
	if sum.AvgPacketLatency < 4 {
		t.Fatalf("implausibly low latency %.2f", sum.AvgPacketLatency)
	}
	t.Logf("summary:\n%s", sum.Report())
	// Flit conservation: injected = delivered + in flight.
	inflight := sys.InFlight()
	if int64(sum.FlitsInjected) != int64(sum.FlitsDelivered)+inflight {
		t.Fatalf("flit conservation violated: inj=%d del=%d inflight=%d",
			sum.FlitsInjected, sum.FlitsDelivered, inflight)
	}
}

func TestDeterminismAcrossWorkers(t *testing.T) {
	cycles := uint64(10_000)
	workerSet := []int{2, 3, 4, 7}
	if testing.Short() {
		cycles = 4_000
		workerSet = []int{2, 4}
	}
	run := func(workers int) string {
		cfg := smallCfg()
		cfg.Engine.Workers = workers
		cfg.Traffic = []config.TrafficConfig{{Pattern: config.PatternTranspose, InjectionRate: 0.05}}
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.AttachSyntheticTraffic(); err != nil {
			t.Fatal(err)
		}
		sys.Run(cycles)
		sum := sys.Summary()
		return fmt.Sprintf("%d %d %d %d %.6f %.6f",
			sum.PacketsInjected, sum.PacketsDelivered,
			sum.FlitsInjected, sum.FlitsDelivered,
			sum.AvgFlitLatency, sum.AvgPacketLatency)
	}
	ref := run(1)
	for _, w := range workerSet {
		if got := run(w); got != ref {
			t.Fatalf("workers=%d diverged:\n got %s\nwant %s", w, got, ref)
		}
	}
}

func TestTraceReplayAndDrain(t *testing.T) {
	cfg := smallCfg()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := &trace.Trace{}
	tr.Add(10, 0, 15, 8)
	tr.Add(10, 15, 0, 8)
	tr.AddPeriodic(100, 5, 10, 4, 50, 10)
	sys.AttachTrace(tr)
	sys.RunUntil(100_000, func(uint64) bool { return sys.TraceDone() })
	sum := sys.Summary()
	want := uint64(2 + 10)
	if sum.PacketsDelivered != want {
		t.Fatalf("delivered %d packets, want %d", sum.PacketsDelivered, want)
	}
	if sys.InFlight() != 0 {
		t.Fatalf("network not drained: %d flits in flight", sys.InFlight())
	}
}

func TestFastForwardTransparency(t *testing.T) {
	run := func(ff bool) (string, uint64) {
		cfg := smallCfg()
		cfg.Engine.FastForward = ff
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tr := &trace.Trace{}
		tr.Add(100, 0, 15, 8)
		tr.Add(5_000, 3, 12, 8)
		tr.Add(50_000, 15, 0, 8)
		sys.AttachTrace(tr)
		res := sys.RunUntil(100_000, func(uint64) bool { return sys.TraceDone() })
		sum := sys.Summary()
		key := fmt.Sprintf("%d %d %.6f", sum.PacketsDelivered, sum.FlitsDelivered, sum.AvgPacketLatency)
		return key, res.SkippedCycles
	}
	slow, skipped0 := run(false)
	fast, skippedFF := run(true)
	if slow != fast {
		t.Fatalf("fast-forward changed results:\n ff: %s\n    %s", fast, slow)
	}
	if skipped0 != 0 {
		t.Fatalf("non-FF run skipped %d cycles", skipped0)
	}
	if skippedFF == 0 {
		t.Fatalf("fast-forward skipped nothing on an idle-heavy trace")
	}
	t.Logf("fast-forward skipped %d cycles", skippedFF)
}

func TestRoutingAlgorithmsDeliver(t *testing.T) {
	for _, alg := range []string{
		config.RouteXY, config.RouteYX, config.RouteO1Turn,
		config.RouteROMM, config.RouteValiant, config.RoutePROM, config.RouteAdaptive,
	} {
		t.Run(alg, func(t *testing.T) {
			cfg := smallCfg()
			cfg.Routing.Algorithm = alg
			cfg.Traffic = []config.TrafficConfig{{Pattern: config.PatternUniform, InjectionRate: 0.02}}
			sys, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.AttachSyntheticTraffic(); err != nil {
				t.Fatal(err)
			}
			cycles := uint64(15_000)
			if testing.Short() {
				cycles = 6_000
			}
			sys.Run(cycles)
			sum := sys.Summary()
			if sum.PacketsDelivered == 0 {
				t.Fatalf("%s delivered nothing", alg)
			}
			for id, fr := range sum.Flows {
				if fr.OrderViolations > 0 && cfg.Router.VCAlloc == config.VCAEDVCA {
					t.Fatalf("flow %d reordered %d times", id, fr.OrderViolations)
				}
			}
		})
	}
}

func TestTorusAndRingDeliver(t *testing.T) {
	for _, kind := range []string{config.TopoTorus, config.TopoRing} {
		t.Run(kind, func(t *testing.T) {
			cfg := smallCfg()
			cfg.Topology.Kind = kind
			if kind == config.TopoRing {
				cfg.Topology.Width, cfg.Topology.Height = 8, 0
			}
			cfg.Traffic = []config.TrafficConfig{{Pattern: config.PatternUniform, InjectionRate: 0.02}}
			sys, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.AttachSyntheticTraffic(); err != nil {
				t.Fatal(err)
			}
			sys.Run(15_000)
			if sys.Summary().PacketsDelivered == 0 {
				t.Fatalf("%s delivered nothing", kind)
			}
		})
	}
}

func TestMultilayerMeshesDeliver(t *testing.T) {
	for _, kind := range []string{config.TopoMeshX1, config.TopoMeshX1Y1, config.TopoMeshXCube} {
		t.Run(kind, func(t *testing.T) {
			cfg := smallCfg()
			cfg.Topology = config.TopologyConfig{Kind: kind, Width: 3, Height: 3, Layers: 2}
			cfg.Traffic = []config.TrafficConfig{{Pattern: config.PatternUniform, InjectionRate: 0.02}}
			sys, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.AttachSyntheticTraffic(); err != nil {
				t.Fatal(err)
			}
			sys.Run(15_000)
			if sys.Summary().PacketsDelivered == 0 {
				t.Fatalf("%s delivered nothing", kind)
			}
		})
	}
}

func TestLooseSyncFunctionalCorrectness(t *testing.T) {
	// Loose synchronization must preserve functional behaviour: all
	// packets still delivered, in order per flow (paper §II-C).
	cfg := smallCfg()
	cfg.Engine.SyncPeriod = 5
	cfg.Engine.Workers = 4
	cfg.Traffic = []config.TrafficConfig{{Pattern: config.PatternShuffle, InjectionRate: 0.05}}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AttachSyntheticTraffic(); err != nil {
		t.Fatal(err)
	}
	sys.Run(20_000)
	sum := sys.Summary()
	if sum.PacketsDelivered == 0 {
		t.Fatal("no packets delivered under loose sync")
	}
	if int64(sum.FlitsInjected) != int64(sum.FlitsDelivered)+sys.InFlight() {
		t.Fatalf("flit conservation violated under loose sync")
	}
}

func TestEjectionOnlyToDestination(t *testing.T) {
	// The router panics if a flit ejects at the wrong node, so a clean
	// congested run across algorithms is itself the assertion.
	cfg := smallCfg()
	cfg.Routing.Algorithm = config.RouteROMM
	cfg.Traffic = []config.TrafficConfig{{Pattern: config.PatternTranspose, InjectionRate: 0.2}}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AttachSyntheticTraffic(); err != nil {
		t.Fatal(err)
	}
	sys.Run(10_000)
	if sys.Summary().FlitsDelivered == 0 {
		t.Fatal("no flits delivered")
	}
}

var _ = noc.InvalidNode

package core

import (
	"errors"
	"reflect"
	"testing"

	"hornet/internal/config"
	"hornet/internal/snapshot"
	"hornet/internal/trace"
)

// snapCfg returns a small config exercising multiple traffic processes
// (Bernoulli + bursty) so snapshots capture mid-flight state.
func snapCfg(workers int) config.Config {
	cfg := config.Default()
	cfg.Topology.Width, cfg.Topology.Height = 4, 4
	cfg.Engine.Workers = workers
	cfg.Engine.Seed = 0xC0FFEE
	cfg.WarmupCycles = 300
	cfg.AnalyzedCycles = 400
	cfg.Traffic = []config.TrafficConfig{
		{Pattern: config.PatternTranspose, InjectionRate: 0.10},
		{Pattern: config.PatternUniform, InjectionRate: 0.05, BurstLen: 40, BurstGap: 60},
	}
	return cfg
}

func buildSynthetic(t *testing.T, cfg config.Config) *System {
	t.Helper()
	sys, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sys.AttachSyntheticTraffic(); err != nil {
		t.Fatalf("AttachSyntheticTraffic: %v", err)
	}
	return sys
}

// TestSnapshotRoundTripGolden is the subsystem's core property:
// run A cycles → snapshot → restore into a fresh system → run B cycles
// must be indistinguishable — byte for byte — from running A+B cycles
// with a snapshot/restore-free boundary, at every worker count.
func TestSnapshotRoundTripGolden(t *testing.T) {
	workerSet := []int{1, 2, 3}
	if testing.Short() {
		workerSet = []int{1, 2}
	}
	for _, workers := range workerSet {
		cfg := snapCfg(workers)

		// Reference: one system, two back-to-back runs (the phase
		// boundary exists in both executions, so fast-forward chunking
		// cannot differ).
		ref := buildSynthetic(t, cfg)
		ref.Run(uint64(cfg.WarmupCycles))
		blob, err := ref.SnapshotBytes()
		if err != nil {
			t.Fatalf("workers=%d: snapshot: %v", workers, err)
		}
		ref.Run(uint64(cfg.AnalyzedCycles))
		refFinal, err := ref.SnapshotBytes()
		if err != nil {
			t.Fatalf("workers=%d: final snapshot: %v", workers, err)
		}

		// Restored: a fresh system resumed from the mid-run snapshot.
		res := buildSynthetic(t, cfg)
		if err := res.RestoreBytes(blob); err != nil {
			t.Fatalf("workers=%d: restore: %v", workers, err)
		}
		if res.Clock() != uint64(cfg.WarmupCycles) {
			t.Fatalf("workers=%d: restored clock %d, want %d", workers, res.Clock(), cfg.WarmupCycles)
		}
		res.Run(uint64(cfg.AnalyzedCycles))
		resFinal, err := res.SnapshotBytes()
		if err != nil {
			t.Fatalf("workers=%d: final snapshot after restore: %v", workers, err)
		}

		if string(refFinal) != string(resFinal) {
			t.Errorf("workers=%d: continued state diverged from uninterrupted run (snapshots differ)", workers)
		}
		if !reflect.DeepEqual(ref.Summary(), res.Summary()) {
			t.Errorf("workers=%d: summaries diverged:\nref: %+v\nres: %+v",
				workers, ref.Summary(), res.Summary())
		}
	}
}

// TestSnapshotRoundTripAcrossWorkerCounts checks that a snapshot taken
// at one worker count restores into a system running at another and
// still reproduces the uninterrupted single-worker execution.
func TestSnapshotRoundTripAcrossWorkerCounts(t *testing.T) {
	base := snapCfg(1)
	ref := buildSynthetic(t, base)
	ref.Run(uint64(base.WarmupCycles))
	blob, err := ref.SnapshotBytes()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	ref.Run(uint64(base.AnalyzedCycles))

	cfg2 := snapCfg(2) // same identity: workers excluded from the hash
	res := buildSynthetic(t, cfg2)
	if err := res.RestoreBytes(blob); err != nil {
		t.Fatalf("restore into 2-worker system: %v", err)
	}
	res.Run(uint64(base.AnalyzedCycles))
	if !reflect.DeepEqual(ref.Summary(), res.Summary()) {
		t.Errorf("summaries diverged across worker counts:\nref: %+v\nres: %+v",
			ref.Summary(), res.Summary())
	}
}

// TestSnapshotTraceInjectors round-trips a trace-driven system.
func TestSnapshotTraceInjectors(t *testing.T) {
	cfg := snapCfg(1)
	cfg.Traffic = nil
	tr := &trace.Trace{}
	tr.AddPeriodic(5, 0, 15, 4, 37, 50)
	tr.AddPeriodic(11, 7, 2, 2, 23, 40)
	tr.Add(400, 3, 12, 8)

	ref, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ref.AttachTrace(tr)
	ref.Run(200)
	blob, err := ref.SnapshotBytes()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	ref.Run(600)

	res, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res.AttachTrace(tr)
	if err := res.RestoreBytes(blob); err != nil {
		t.Fatalf("restore: %v", err)
	}
	res.Run(600)
	if !reflect.DeepEqual(ref.Summary(), res.Summary()) {
		t.Errorf("trace summaries diverged:\nref: %+v\nres: %+v", ref.Summary(), res.Summary())
	}
}

// TestSnapshotRejectsWrongConfig: the hash guard must refuse a snapshot
// from a different configuration with a structured MismatchError.
func TestSnapshotRejectsWrongConfig(t *testing.T) {
	sys := buildSynthetic(t, snapCfg(1))
	sys.Run(100)
	blob, err := sys.SnapshotBytes()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	other := snapCfg(1)
	other.Traffic[0].InjectionRate = 0.2 // different identity
	dst := buildSynthetic(t, other)
	err = dst.RestoreBytes(blob)
	var mm *snapshot.MismatchError
	if !errors.As(err, &mm) {
		t.Fatalf("restore into different config: got %v, want *snapshot.MismatchError", err)
	}
	if mm.Field != "config_hash" {
		t.Errorf("mismatch field = %q, want config_hash", mm.Field)
	}
}

// TestSnapshotRejectsCorruption: flipped payload bytes must surface as
// CorruptError (checksum), and a bumped version as VersionError.
func TestSnapshotRejectsCorruption(t *testing.T) {
	sys := buildSynthetic(t, snapCfg(1))
	sys.Run(100)
	blob, err := sys.SnapshotBytes()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	bad := append([]byte(nil), blob...)
	bad[len(bad)/2] ^= 0xFF
	var ce *snapshot.CorruptError
	if err := buildSynthetic(t, snapCfg(1)).RestoreBytes(bad); !errors.As(err, &ce) {
		t.Errorf("bit-flipped snapshot: got %v, want *snapshot.CorruptError", err)
	}

	if err := buildSynthetic(t, snapCfg(1)).RestoreBytes(blob[:37]); !errors.As(err, &ce) {
		t.Errorf("truncated snapshot: got %v, want *snapshot.CorruptError", err)
	}
}

// TestSnapshotUnsupportedFrontends: systems with payload-bearing or
// goroutine-holding frontends refuse to snapshot, with the component
// named in a structured error.
func TestSnapshotUnsupportedFrontends(t *testing.T) {
	cfg := snapCfg(1)
	cfg.Traffic = nil
	sys, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := sys.AttachMemory(*config.DefaultMemory()); err != nil {
		t.Fatalf("AttachMemory: %v", err)
	}
	_, err = sys.Snapshot()
	var ue *snapshot.UnsupportedError
	if !errors.As(err, &ue) {
		t.Fatalf("snapshot with memory fabric: got %v, want *snapshot.UnsupportedError", err)
	}
	if ue.Component == "" {
		t.Error("unsupported error does not name the component")
	}
}

// TestRestoreRequiresFreshSystem: restoring over a system that already
// ran would splice two histories; it must be refused.
func TestRestoreRequiresFreshSystem(t *testing.T) {
	sys := buildSynthetic(t, snapCfg(1))
	sys.Run(50)
	blob, err := sys.SnapshotBytes()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if err := sys.RestoreBytes(blob); err == nil {
		t.Fatal("restore into a running system succeeded, want error")
	}
}

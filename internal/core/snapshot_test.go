package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"hornet/internal/config"
	"hornet/internal/mips"
	"hornet/internal/noc"
	"hornet/internal/pinsim"
	"hornet/internal/snapshot"
	"hornet/internal/sweep"
	"hornet/internal/trace"
	"hornet/internal/workloads"
)

// This file is the snapshot subsystem's golden round-trip harness: for
// every snapshottable frontend, at several worker counts and snapshot
// cycles, run A cycles → snapshot → restore into a fresh system → run B
// cycles must be indistinguishable — byte for byte — from running A+B
// cycles uninterrupted. The harness is table-driven so a new frontend
// adds one entry, not one hand-rolled test.

// snapFrontend describes one frontend configuration under golden test:
// how to build an identically configured system, and the total simulated
// window (phase A + phase B) the round trip covers.
type snapFrontend struct {
	name string
	// total is the A+B window; snapshot cycles are fractions of it.
	total uint64
	cfg   func(workers int) config.Config
	build func(t *testing.T, cfg config.Config) *System
}

// snapCfg returns a small config exercising multiple traffic processes
// (Bernoulli + bursty) so snapshots capture mid-flight state.
func snapCfg(workers int) config.Config {
	cfg := config.Default()
	cfg.Topology.Width, cfg.Topology.Height = 4, 4
	cfg.Engine.Workers = workers
	cfg.Engine.Seed = 0xC0FFEE
	cfg.WarmupCycles = 300
	cfg.AnalyzedCycles = 400
	cfg.Traffic = []config.TrafficConfig{
		{Pattern: config.PatternTranspose, InjectionRate: 0.10},
		{Pattern: config.PatternUniform, InjectionRate: 0.05, BurstLen: 40, BurstGap: 60},
	}
	return cfg
}

// mipsCfg is the application-workload base: a 2x2 mesh, no synthetic
// traffic.
func mipsCfg(workers int) config.Config {
	cfg := snapCfg(workers)
	cfg.Topology.Width, cfg.Topology.Height = 2, 2
	cfg.Traffic = nil
	return cfg
}

func buildSynthetic(t *testing.T, cfg config.Config) *System {
	t.Helper()
	sys, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sys.AttachSyntheticTraffic(); err != nil {
		t.Fatalf("AttachSyntheticTraffic: %v", err)
	}
	return sys
}

// harnessTrace is the fixed trace the trace frontends replay.
func harnessTrace() *trace.Trace {
	tr := &trace.Trace{}
	tr.AddPeriodic(5, 0, 15, 4, 37, 50)
	tr.AddPeriodic(11, 7, 2, 2, 23, 40)
	tr.Add(400, 3, 12, 8)
	return tr
}

func assembleOrDie(t *testing.T, src string) *mips.Image {
	t.Helper()
	img, err := mips.Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return img
}

// allNodes lists every node of a built system.
func allNodes(sys *System) []noc.NodeID {
	nodes := make([]noc.NodeID, sys.Topo.Nodes())
	for i := range nodes {
		nodes[i] = noc.NodeID(i)
	}
	return nodes
}

// snapFrontends is the golden-harness table: every snapshottable
// frontend kind, including the payload-bearing ones (MIPS private
// memory, MIPS over the coherent fabric in both protocols, trace-mode
// memory controllers). Windows are sized so early/mid/late snapshot
// points land while the workload is genuinely mid-flight.
func snapFrontends() []snapFrontend {
	return []snapFrontend{
		{
			name:  "synthetic",
			total: 700,
			cfg:   snapCfg,
			build: buildSynthetic,
		},
		{
			name:  "trace",
			total: 900,
			cfg: func(workers int) config.Config {
				cfg := snapCfg(workers)
				cfg.Traffic = nil
				return cfg
			},
			build: func(t *testing.T, cfg config.Config) *System {
				sys, err := New(cfg)
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				sys.AttachTrace(harnessTrace())
				return sys
			},
		},
		{
			name:  "trace-mc",
			total: 900,
			cfg: func(workers int) config.Config {
				cfg := snapCfg(workers)
				cfg.Traffic = nil
				return cfg
			},
			build: func(t *testing.T, cfg config.Config) *System {
				sys, err := New(cfg)
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				tr := &trace.Trace{}
				tr.AddPeriodic(3, 5, 0, 4, 17, 45) // requests into the MC tile
				tr.AddPeriodic(9, 10, 0, 4, 29, 30)
				sys.AttachTrace(tr)
				sys.AttachTraceControllers([]noc.NodeID{0}, 50, 8)
				return sys
			},
		},
		{
			name:  "mips-private",
			total: 1600,
			cfg:   mipsCfg,
			build: func(t *testing.T, cfg config.Config) *System {
				sys, err := New(cfg)
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				img := assembleOrDie(t, workloads.PingPongSource(40))
				sys.AttachMIPS(allNodes(sys), img)
				return sys
			},
		},
		{
			name:  "mips-shared-msi",
			total: 1800,
			cfg:   mipsCfg,
			build: func(t *testing.T, cfg config.Config) *System {
				sys, err := New(cfg)
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				mc := *config.DefaultMemory()
				fab, err := sys.AttachMemory(mc)
				if err != nil {
					t.Fatalf("AttachMemory: %v", err)
				}
				img := assembleOrDie(t, workloads.SharedPingPongSource(40, 3))
				sys.AttachMIPSShared([]noc.NodeID{0, 3}, img, fab, mc)
				return sys
			},
		},
		{
			name:  "mips-shared-nuca",
			total: 1400,
			cfg:   mipsCfg,
			build: func(t *testing.T, cfg config.Config) *System {
				sys, err := New(cfg)
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				mc := *config.DefaultMemory()
				mc.Protocol = "nuca"
				fab, err := sys.AttachMemory(mc)
				if err != nil {
					t.Fatalf("AttachMemory: %v", err)
				}
				img := assembleOrDie(t, workloads.SharedPingPongSource(40, 3))
				sys.AttachMIPSShared([]noc.NodeID{0, 3}, img, fab, mc)
				return sys
			},
		},
	}
}

// snapPoints returns the snapshot cycles exercised for a frontend:
// early (workload starting up), mid (steady state), late (possibly
// draining).
func snapPoints(total uint64) map[string]uint64 {
	return map[string]uint64{
		"early": total / 10,
		"mid":   total / 2,
		"late":  total * 9 / 10,
	}
}

// TestSnapshotRoundTripGolden is the subsystem's core property, run over
// the full frontend × worker count × snapshot cycle grid:
// run A cycles → snapshot → restore into a fresh system → run B cycles
// must be indistinguishable — byte for byte — from running A+B cycles
// with a snapshot/restore-free boundary.
func TestSnapshotRoundTripGolden(t *testing.T) {
	workerSet := []int{1, 2, 3}
	pointSet := []string{"early", "mid", "late"}
	if testing.Short() {
		workerSet = []int{1, 2}
		pointSet = []string{"early", "mid"}
	}
	for _, fe := range snapFrontends() {
		for _, workers := range workerSet {
			for _, point := range pointSet {
				t.Run(fmt.Sprintf("%s/w%d/%s", fe.name, workers, point), func(t *testing.T) {
					cfg := fe.cfg(workers)
					snapAt := snapPoints(fe.total)[point]

					// Reference: one system, two back-to-back runs (the
					// phase boundary exists in both executions, so
					// fast-forward chunking cannot differ).
					ref := fe.build(t, cfg)
					ref.Run(snapAt)
					blob, err := ref.SnapshotBytes()
					if err != nil {
						t.Fatalf("snapshot: %v", err)
					}
					ref.Run(fe.total - snapAt)
					refFinal, err := ref.SnapshotBytes()
					if err != nil {
						t.Fatalf("final snapshot: %v", err)
					}

					// Restored: a fresh system resumed from the mid-run
					// snapshot.
					res := fe.build(t, cfg)
					if err := res.RestoreBytes(blob); err != nil {
						t.Fatalf("restore: %v", err)
					}
					if res.Clock() != snapAt {
						t.Fatalf("restored clock %d, want %d", res.Clock(), snapAt)
					}
					res.Run(fe.total - snapAt)
					resFinal, err := res.SnapshotBytes()
					if err != nil {
						t.Fatalf("final snapshot after restore: %v", err)
					}

					if !bytes.Equal(refFinal, resFinal) {
						t.Errorf("continued state diverged from uninterrupted run (final snapshots differ)")
					}
					if !reflect.DeepEqual(ref.Summary(), res.Summary()) {
						t.Errorf("summaries diverged:\nref: %+v\nres: %+v", ref.Summary(), res.Summary())
					}
				})
			}
		}
	}
}

// TestSnapshotRoundTripAcrossWorkerCounts checks, for every frontend,
// that a snapshot taken at one worker count restores into a system
// running at another and still reproduces the uninterrupted execution
// (worker count is excluded from the snapshot identity).
func TestSnapshotRoundTripAcrossWorkerCounts(t *testing.T) {
	fes := snapFrontends()
	if testing.Short() {
		fes = fes[:4] // synthetic, trace, trace-mc, mips-private
	}
	for _, fe := range fes {
		t.Run(fe.name, func(t *testing.T) {
			snapAt := fe.total / 2
			ref := fe.build(t, fe.cfg(1))
			ref.Run(snapAt)
			blob, err := ref.SnapshotBytes()
			if err != nil {
				t.Fatalf("snapshot: %v", err)
			}
			ref.Run(fe.total - snapAt)
			refFinal, err := ref.SnapshotBytes()
			if err != nil {
				t.Fatalf("final snapshot: %v", err)
			}

			res := fe.build(t, fe.cfg(2)) // same identity: workers excluded from the hash
			if err := res.RestoreBytes(blob); err != nil {
				t.Fatalf("restore into 2-worker system: %v", err)
			}
			res.Run(fe.total - snapAt)
			resFinal, err := res.SnapshotBytes()
			if err != nil {
				t.Fatalf("final snapshot after restore: %v", err)
			}
			if !bytes.Equal(refFinal, resFinal) {
				t.Errorf("state diverged across worker counts (final snapshots differ)")
			}
			if !reflect.DeepEqual(ref.Summary(), res.Summary()) {
				t.Errorf("summaries diverged across worker counts:\nref: %+v\nres: %+v",
					ref.Summary(), res.Summary())
			}
		})
	}
}

// TestSnapshotMIPSRunsToCompletion restores a mid-run MIPS snapshot and
// checks the application-level outcome — console output and halt state —
// matches the uninterrupted run, not just the network statistics.
func TestSnapshotMIPSRunsToCompletion(t *testing.T) {
	cfg := mipsCfg(1)
	img := assembleOrDie(t, workloads.PingPongSource(30))
	build := func() *System {
		sys, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		sys.AttachMIPS(allNodes(sys), img)
		return sys
	}
	ref := build()
	ref.Run(400) // mid-run: rounds still in flight
	blob, err := ref.SnapshotBytes()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	ref.RunUntil(1_000_000, ref.CoresHalted(ref.MIPSCores()))

	res := build()
	if err := res.RestoreBytes(blob); err != nil {
		t.Fatalf("restore: %v", err)
	}
	res.RunUntil(1_000_000, res.CoresHalted(res.MIPSCores()))

	for i := range ref.MIPSCores() {
		rc, cc := ref.MIPSCores()[i], res.MIPSCores()[i]
		if rc.Console() != cc.Console() || rc.Halted() != cc.Halted() || rc.Instret != cc.Instret {
			t.Errorf("core %d diverged: ref console=%q halted=%v instret=%d; res console=%q halted=%v instret=%d",
				i, rc.Console(), rc.Halted(), rc.Instret, cc.Console(), cc.Halted(), cc.Instret)
		}
	}
	if got := ref.MIPSCores()[0].Console(); got != "30" {
		t.Fatalf("reference run printed %q, want 30", got)
	}
	if ref.Clock() != res.Clock() {
		t.Errorf("halt cycles differ: ref %d, res %d", ref.Clock(), res.Clock())
	}
}

// TestWarmupCacheMIPSSharedMem proves warmup-once/fork-many works for an
// application workload over the coherent-memory fabric: the second
// WarmedSystem call restores the cached warmup snapshot instead of
// re-simulating, and both systems finish with identical application
// output and statistics — matching a cache-free run bit for bit.
func TestWarmupCacheMIPSSharedMem(t *testing.T) {
	cfg := mipsCfg(1)
	const warmup = 500
	img := assembleOrDie(t, workloads.SharedPingPongSource(40, 3))
	mc := *config.DefaultMemory()
	build := func() (*System, error) {
		sys, err := New(cfg)
		if err != nil {
			return nil, err
		}
		fab, err := sys.AttachMemory(mc)
		if err != nil {
			return nil, err
		}
		sys.AttachMIPSShared([]noc.NodeID{0, 3}, img, fab, mc)
		return sys, nil
	}
	finish := func(sys *System) (string, uint64) {
		sys.RunUntil(1_000_000, sys.CoresHalted(sys.MIPSCores()))
		return sys.MIPSCores()[0].Console(), sys.Clock()
	}

	cache := sweep.NewSnapshotCache(t.TempDir())
	var consoles []string
	var clocks []uint64
	for i := 0; i < 2; i++ {
		sys, err := WarmedSystem(context.Background(), cache, cfg, warmup, nil, build)
		if err != nil {
			t.Fatalf("WarmedSystem #%d: %v", i, err)
		}
		console, clock := finish(sys)
		consoles = append(consoles, console)
		clocks = append(clocks, clock)
	}
	if cache.Misses() != 1 || cache.Hits() != 1 {
		t.Errorf("warmup cache: misses=%d hits=%d, want 1 and 1", cache.Misses(), cache.Hits())
	}
	if consoles[0] != consoles[1] || clocks[0] != clocks[1] {
		t.Errorf("forked run diverged: consoles %q, clocks %v", consoles, clocks)
	}

	// A cache-free run must agree bit for bit.
	direct, err := WarmedSystem(context.Background(), nil, cfg, warmup, nil, build)
	if err != nil {
		t.Fatalf("direct WarmedSystem: %v", err)
	}
	console, clock := finish(direct)
	if console != consoles[0] || clock != clocks[0] {
		t.Errorf("cache-free run diverged: console %q vs %q, clock %d vs %d",
			console, consoles[0], clock, clocks[0])
	}
	if console != "40" {
		t.Fatalf("shared ping-pong printed %q, want 40", console)
	}
}

// TestSnapshotRejectsWrongConfig: the hash guard must refuse a snapshot
// from a different configuration with a structured MismatchError.
func TestSnapshotRejectsWrongConfig(t *testing.T) {
	sys := buildSynthetic(t, snapCfg(1))
	sys.Run(100)
	blob, err := sys.SnapshotBytes()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	other := snapCfg(1)
	other.Traffic[0].InjectionRate = 0.2 // different identity
	dst := buildSynthetic(t, other)
	err = dst.RestoreBytes(blob)
	var mm *snapshot.MismatchError
	if !errors.As(err, &mm) {
		t.Fatalf("restore into different config: got %v, want *snapshot.MismatchError", err)
	}
	if mm.Field != "config_hash" {
		t.Errorf("mismatch field = %q, want config_hash", mm.Field)
	}
}

// TestSnapshotRejectsWrongProgram: two systems with identical configs
// but different MIPS program images hash identically, so the image
// fingerprint inside the mips section must catch the divergence.
func TestSnapshotRejectsWrongProgram(t *testing.T) {
	cfg := mipsCfg(1)
	build := func(rounds int) *System {
		sys, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		sys.AttachMIPS(allNodes(sys), assembleOrDie(t, workloads.PingPongSource(rounds)))
		return sys
	}
	ref := build(40)
	ref.Run(200)
	blob, err := ref.SnapshotBytes()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	err = build(41).RestoreBytes(blob)
	var mm *snapshot.MismatchError
	if !errors.As(err, &mm) {
		t.Fatalf("restore under different program: got %v, want *snapshot.MismatchError", err)
	}
	if mm.Field != "mips program image" {
		t.Errorf("mismatch field = %q, want mips program image", mm.Field)
	}
}

// TestSnapshotRejectsWrongPreload: the backing stores are delta-encoded
// against the preloaded image, so restoring over a different preload
// must be refused (silently applying the delta would corrupt memory).
func TestSnapshotRejectsWrongPreload(t *testing.T) {
	cfg := mipsCfg(1)
	mc := *config.DefaultMemory()
	img := assembleOrDie(t, workloads.SharedPingPongSource(20, 3))
	build := func(preload []byte) *System {
		sys, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		fab, err := sys.AttachMemory(mc)
		if err != nil {
			t.Fatalf("AttachMemory: %v", err)
		}
		fab.Preload(0x4000, preload)
		sys.AttachMIPSShared([]noc.NodeID{0, 3}, img, fab, mc)
		return sys
	}
	ref := build([]byte{1, 2, 3, 4})
	ref.Run(200)
	blob, err := ref.SnapshotBytes()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	err = build([]byte{9, 9, 9, 9}).RestoreBytes(blob)
	var mm *snapshot.MismatchError
	if !errors.As(err, &mm) {
		t.Fatalf("restore over different preload: got %v, want *snapshot.MismatchError", err)
	}
	if mm.Field != "preloaded memory image" {
		t.Errorf("mismatch field = %q, want preloaded memory image", mm.Field)
	}
}

// TestSnapshotRejectsFrontendMismatch: attachments are not part of the
// config hash, so the section-presence guard must refuse a snapshot
// whose frontends differ from the restoring system's.
func TestSnapshotRejectsFrontendMismatch(t *testing.T) {
	cfg := mipsCfg(1)
	cfg.Traffic = nil
	plain, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	plain.Run(100)
	blob, err := plain.SnapshotBytes()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	withMIPS, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	withMIPS.AttachMIPS(allNodes(withMIPS), assembleOrDie(t, workloads.PingPongSource(5)))
	err = withMIPS.RestoreBytes(blob)
	var mm *snapshot.MismatchError
	if !errors.As(err, &mm) {
		t.Fatalf("restore into differently attached system: got %v, want *snapshot.MismatchError", err)
	}
}

// TestSnapshotRejectsCorruption: flipped payload bytes must surface as
// CorruptError (checksum), as must truncation.
func TestSnapshotRejectsCorruption(t *testing.T) {
	sys := buildSynthetic(t, snapCfg(1))
	sys.Run(100)
	blob, err := sys.SnapshotBytes()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	bad := append([]byte(nil), blob...)
	bad[len(bad)/2] ^= 0xFF
	var ce *snapshot.CorruptError
	if err := buildSynthetic(t, snapCfg(1)).RestoreBytes(bad); !errors.As(err, &ce) {
		t.Errorf("bit-flipped snapshot: got %v, want *snapshot.CorruptError", err)
	}

	if err := buildSynthetic(t, snapCfg(1)).RestoreBytes(blob[:37]); !errors.As(err, &ce) {
		t.Errorf("truncated snapshot: got %v, want *snapshot.CorruptError", err)
	}
}

// mipsMidRunSnapshot produces a mid-run snapshot of a MIPS system with
// traffic (and payloads) in flight, plus a builder for the restoring
// side.
func mipsMidRunSnapshot(t *testing.T) (*snapshot.Snapshot, func() *System) {
	t.Helper()
	cfg := mipsCfg(1)
	img := assembleOrDie(t, workloads.PingPongSource(40))
	build := func() *System {
		sys, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		sys.AttachMIPS(allNodes(sys), img)
		return sys
	}
	ref := build()
	// Advance until user payloads are actually in flight so the payload
	// codec path is exercised (ping-pong keeps the network busy).
	var snap *snapshot.Snapshot
	for i := 0; i < 400; i++ {
		ref.Run(1)
		if ref.InFlight() > 0 {
			s, err := ref.Snapshot()
			if err != nil {
				t.Fatalf("snapshot: %v", err)
			}
			if m, ok, _ := s.ReadManifest(); ok && m.Payloads > 0 {
				snap = s
				break
			}
		}
	}
	if snap == nil {
		t.Fatal("never observed an in-flight payload to snapshot")
	}
	return snap, build
}

// TestSnapshotSectionCorruption targets the new frontend codecs past the
// container checksum: a truncated mips section and a bit-flipped payload
// codec tag must surface as structured Corrupt/Mismatch errors — never a
// panic — after re-encoding recomputes the container CRC.
func TestSnapshotSectionCorruption(t *testing.T) {
	snap, build := mipsMidRunSnapshot(t)

	reencode := func(mutate func(s *snapshot.Snapshot)) []byte {
		b, err := snap.Bytes()
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		s2, err := snapshot.DecodeBytes(b)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		mutate(s2)
		out, err := s2.Bytes()
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		return out
	}

	t.Run("truncated-mips-section", func(t *testing.T) {
		bad := reencode(func(s *snapshot.Snapshot) {
			p, ok := s.SectionPayload("mips")
			if !ok {
				t.Fatal("snapshot has no mips section")
			}
			s.SetSection("mips", p[:len(p)-7])
		})
		err := build().RestoreBytes(bad)
		var ce *snapshot.CorruptError
		var mm *snapshot.MismatchError
		if !errors.As(err, &ce) && !errors.As(err, &mm) {
			t.Fatalf("truncated mips section: got %v, want structured snapshot error", err)
		}
	})

	t.Run("corrupt-payload-codec-tag", func(t *testing.T) {
		bad := reencode(func(s *snapshot.Snapshot) {
			p, ok := s.SectionPayload("tiles")
			if !ok {
				t.Fatal("snapshot has no tiles section")
			}
			// The []byte payload codec writes its name "bytes" before
			// each user payload; corrupting the tag must yield "unknown
			// payload codec", not a misread.
			i := bytes.Index(p, []byte("bytes"))
			if i < 0 {
				t.Skip("no payload codec tag in tiles section at this cycle")
			}
			p[i] = 'X'
			s.SetSection("tiles", p)
		})
		err := build().RestoreBytes(bad)
		var ce *snapshot.CorruptError
		var mm *snapshot.MismatchError
		if !errors.As(err, &ce) && !errors.As(err, &mm) {
			t.Fatalf("corrupt codec tag: got %v, want structured snapshot error", err)
		}
	})

	t.Run("truncated-mem-section", func(t *testing.T) {
		cfg := mipsCfg(1)
		mc := *config.DefaultMemory()
		img := assembleOrDie(t, workloads.SharedPingPongSource(30, 3))
		buildShared := func() *System {
			sys, err := New(cfg)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			fab, err := sys.AttachMemory(mc)
			if err != nil {
				t.Fatalf("AttachMemory: %v", err)
			}
			sys.AttachMIPSShared([]noc.NodeID{0, 3}, img, fab, mc)
			return sys
		}
		ref := buildShared()
		ref.Run(300)
		snap, err := ref.Snapshot()
		if err != nil {
			t.Fatalf("snapshot: %v", err)
		}
		p, ok := snap.SectionPayload("mem")
		if !ok {
			t.Fatal("snapshot has no mem section")
		}
		snap.SetSection("mem", p[:len(p)/2])
		b, err := snap.Bytes()
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		err = buildShared().RestoreBytes(b)
		var ce *snapshot.CorruptError
		var mm *snapshot.MismatchError
		if !errors.As(err, &ce) && !errors.As(err, &mm) {
			t.Fatalf("truncated mem section: got %v, want structured snapshot error", err)
		}
	})
}

// TestSnapshotUnsupportedFrontends: pinsim is the one frontend that can
// never snapshot — its application threads are live goroutines — and the
// error must name it.
func TestSnapshotUnsupportedFrontends(t *testing.T) {
	cfg := snapCfg(1)
	cfg.Traffic = nil
	cfg.Topology.Width, cfg.Topology.Height = 2, 2
	sys, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	mc := *config.DefaultMemory()
	fab, err := sys.AttachMemory(mc)
	if err != nil {
		t.Fatalf("AttachMemory: %v", err)
	}
	fes := sys.AttachPinApp(1, fab, mc, func(th *pinsim.Thread) {
		th.Store32(0x1000, 7)
	})
	_, err = sys.Snapshot()
	var ue *snapshot.UnsupportedError
	if !errors.As(err, &ue) {
		t.Fatalf("snapshot with pinsim frontend: got %v, want *snapshot.UnsupportedError", err)
	}
	if ue.Component == "" {
		t.Error("unsupported error does not name the component")
	}
	// Drain the app threads so the test leaves no goroutines behind.
	sys.RunUntil(1_000_000, sys.FrontendsHalted(fes))
}

// TestRestoreRequiresFreshSystem: restoring over a system that already
// ran would splice two histories; it must be refused.
func TestRestoreRequiresFreshSystem(t *testing.T) {
	sys := buildSynthetic(t, snapCfg(1))
	sys.Run(50)
	blob, err := sys.SnapshotBytes()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if err := sys.RestoreBytes(blob); err == nil {
		t.Fatal("restore into a running system succeeded, want error")
	}
}

// TestSnapshotManifest: the manifest section describes the attached
// frontends and payload counts for inspection tools.
func TestSnapshotManifest(t *testing.T) {
	snap, _ := mipsMidRunSnapshot(t)
	m, ok, err := snap.ReadManifest()
	if err != nil || !ok {
		t.Fatalf("ReadManifest: ok=%v err=%v", ok, err)
	}
	if m.Nodes != 4 || m.MIPSCores != 4 {
		t.Errorf("manifest counts wrong: %+v", m)
	}
	if len(m.Frontends) != 1 || m.Frontends[0] != "mips" {
		t.Errorf("manifest frontends = %v, want [mips]", m.Frontends)
	}
	if m.Payloads < 1 {
		t.Errorf("manifest payloads = %d, want >= 1", m.Payloads)
	}
	if m.InFlightFlits < 1 {
		t.Errorf("manifest in-flight flits = %d, want >= 1", m.InFlightFlits)
	}
}

package core

import (
	"fmt"
	"sync/atomic"

	"hornet/internal/config"
	"hornet/internal/mem"
	"hornet/internal/mips"
	"hornet/internal/noc"
	"hornet/internal/obs"
	"hornet/internal/power"
	"hornet/internal/routing"
	"hornet/internal/sim"
	"hornet/internal/stats"
	"hornet/internal/topology"
	"hornet/internal/trace"
	"hornet/internal/traffic"
	"hornet/internal/vca"
)

// System is a fully wired HORNET simulation.
type System struct {
	Config config.Config
	Topo   *topology.Topology
	Power  *power.Model

	tiles      []*Tile
	engine     *sim.Engine
	alg        routing.Algorithm
	clock      uint64 // next cycle to simulate
	generators []*traffic.Generator
	injectors  []*trace.Injector

	// Snapshot-visible frontends: the shared-memory fabric, MIPS cores
	// (attach order) and trace-mode memory controllers attached to this
	// system. Snapshot/Restore serialize their state alongside the NoC.
	memFab    *memoryFabric
	mipsCores []*mips.Core
	mipsNodes []noc.NodeID // node of mipsCores[i], same order
	traceMCs  []*mem.TraceController

	// telemetry is the machine-telemetry collector (EnableTelemetry);
	// nil until enabled, in which case the engine's sampler hook is a
	// single nil check.
	telemetry *telemetryCollector

	// Sharding context (EnableSharding); nil for single-process runs.
	shard *shardState
	// restoredShard records the shard identity a restored snapshot was
	// taken under, for EnableSharding to cross-check.
	restoredShard *shardState

	// unsnapshottable names the first attached component whose state
	// cannot be serialized (live goroutines); empty means
	// Snapshot/Restore are available.
	unsnapshottable string
}

// markUnsnapshottable records that an attached frontend rules out
// checkpointing; the first component wins (it is the one reported).
func (s *System) markUnsnapshottable(component string) {
	if s.unsnapshottable == "" {
		s.unsnapshottable = component
	}
}

// New builds a system from a validated configuration: topology, routing
// and VCA tables, routers wired per edge, the power model, and the
// parallel engine. Frontends are attached afterwards (Attach*).
func New(cfg config.Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	topo, err := topology.New(cfg.Topology)
	if err != nil {
		return nil, err
	}
	alg, err := buildAlgorithm(cfg, topo)
	if err != nil {
		return nil, err
	}
	tables := routing.NewTables(alg)
	vcaTables, vcaMode, err := vca.New(alg, cfg.Router.VCAlloc)
	if err != nil {
		return nil, err
	}

	n := topo.Nodes()
	s := &System{
		Config: cfg,
		Topo:   topo,
		Power:  power.New(cfg.Power, n),
		alg:    alg,
	}

	injVCs := cfg.Router.InjVCs
	if injVCs <= 0 {
		injVCs = cfg.Router.VCsPerPort
	}
	injBuf := cfg.Router.InjBufFlits
	if injBuf <= 0 {
		injBuf = cfg.Router.VCBufFlits
	}

	// Routers and the engine share one in-network flit counter.
	inflight := new(atomic.Int64)
	simTiles := make([]sim.Tile, n)
	s.tiles = make([]*Tile, n)

	for i := 0; i < n; i++ {
		id := noc.NodeID(i)
		st := stats.NewTile()
		rng := sim.NewRNG(cfg.Engine.Seed ^ (uint64(i)+1)*0x9E3779B97F4A7C15)
		router := noc.NewRouter(noc.RouterParams{
			ID:            id,
			Table:         tables.ForNode(id),
			VCATable:      vcaTables.ForNode(id),
			VCAMode:       vcaMode,
			RNG:           rng,
			Stats:         st,
			InFlight:      inflight,
			LocalVCs:      injVCs,
			LocalBufFlits: injBuf,
		})
		tile := &Tile{
			ID:         id,
			Router:     router,
			Stats:      st,
			RNG:        rng,
			powerModel: s.Power,
			epoch:      uint64(cfg.Power.EpochCycles),
		}
		router.SetReceiver(tile)
		s.tiles[i] = tile
		simTiles[i] = tile
	}

	// Wire every topology edge: each side gets an ingress port facing the
	// other, then egress pointers to the peer's ingress buffers plus the
	// shared (possibly bandwidth-adaptive) link.
	for _, e := range topo.Edges() {
		ra, rb := s.tiles[e.A].Router, s.tiles[e.B].Router
		pa := ra.AddPort(e.B, cfg.Router.VCsPerPort, cfg.Router.VCBufFlits)
		pb := rb.AddPort(e.A, cfg.Router.VCsPerPort, cfg.Router.VCBufFlits)
		link := noc.NewLink(cfg.Router.LinkBandwidth, cfg.Router.Bidirectional)
		ra.ConnectEgress(e.B, rb.Ports()[pb].In, link, 0)
		rb.ConnectEgress(e.A, ra.Ports()[pa].In, link, 1)
	}

	s.engine = sim.NewEngine(simTiles, cfg.Engine.Workers, cfg.Engine.SyncPeriod, cfg.Engine.FastForward, inflight)
	return s, nil
}

// buildAlgorithm instantiates and validates the routing algorithm against
// the geometry and router resources.
func buildAlgorithm(cfg config.Config, topo *topology.Topology) (routing.Algorithm, error) {
	meshOnly := func(name string) error {
		if topo.IsTorus() || topo.IsMultilayer() {
			return fmt.Errorf("core: %s routing requires a (single-layer) mesh or line", name)
		}
		return nil
	}
	needVCs := func(name string, n int) error {
		if cfg.Router.VCsPerPort < n {
			return fmt.Errorf("core: %s routing needs >= %d VCs per port, got %d", name, n, cfg.Router.VCsPerPort)
		}
		return nil
	}
	switch cfg.Routing.Algorithm {
	case config.RouteXY, config.RouteYX:
		if topo.IsTorus() || topo.IsMultilayer() {
			if err := needVCs(cfg.Routing.Algorithm, 2); err != nil {
				return nil, err
			}
		}
		if cfg.Routing.Algorithm == config.RouteYX {
			return routing.NewYX(topo), nil
		}
		return routing.NewXY(topo), nil
	case config.RouteO1Turn:
		if err := meshOnly("o1turn"); err != nil {
			return nil, err
		}
		if err := needVCs("o1turn", 2); err != nil {
			return nil, err
		}
		return routing.NewO1Turn(topo), nil
	case config.RouteROMM:
		if err := meshOnly("romm"); err != nil {
			return nil, err
		}
		if err := needVCs("romm", 2); err != nil {
			return nil, err
		}
		return routing.NewROMM(topo), nil
	case config.RouteValiant:
		if err := meshOnly("valiant"); err != nil {
			return nil, err
		}
		if err := needVCs("valiant", 2); err != nil {
			return nil, err
		}
		return routing.NewValiant(topo), nil
	case config.RoutePROM:
		if err := meshOnly("prom"); err != nil {
			return nil, err
		}
		if err := needVCs("prom", 2); err != nil {
			return nil, err
		}
		return routing.NewPROM(topo), nil
	case config.RouteAdaptive:
		if err := meshOnly("adaptive"); err != nil {
			return nil, err
		}
		return routing.NewWestFirst(topo), nil
	case config.RouteStatic:
		return routing.NewStatic(cfg.Routing.StaticPaths)
	}
	return nil, fmt.Errorf("core: unknown routing algorithm %q", cfg.Routing.Algorithm)
}

// Tiles returns the system's tiles.
func (s *System) Tiles() []*Tile { return s.tiles }

// Tile returns one tile.
func (s *System) Tile(n noc.NodeID) *Tile { return s.tiles[n] }

// Router returns one node's router.
func (s *System) Router(n noc.NodeID) *noc.Router { return s.tiles[n].Router }

// Algorithm returns the routing algorithm in use.
func (s *System) Algorithm() routing.Algorithm { return s.alg }

// MIPSCores returns the MIPS cores attached to this system, in attach
// order. Restored systems expose the cores their own Attach calls built
// (a snapshot rewrites their state, not their identity).
func (s *System) MIPSCores() []*mips.Core { return s.mipsCores }

// Clock returns the next cycle to be simulated.
func (s *System) Clock() uint64 { return s.clock }

// InFlight returns the number of flits currently in the network.
func (s *System) InFlight() int64 { return s.engine.InFlight().Load() }

// Workers returns the engine's effective worker count.
func (s *System) Workers() int { return s.engine.Workers() }

// SetProbe attaches an observability probe to the engine (nil
// detaches); see sim.Engine.SetProbe.
func (s *System) SetProbe(p *obs.SimProbe) { s.engine.SetProbe(p) }

// Run simulates the given number of cycles and returns the engine result.
func (s *System) Run(cycles uint64) sim.RunResult {
	r := s.engine.Run(s.clock, cycles, nil)
	s.clock += r.Cycles + r.SkippedCycles
	return r
}

// RunUntil simulates until stop returns true (checked at synchronization
// points) or maxCycles elapse.
func (s *System) RunUntil(maxCycles uint64, stop func(cycle uint64) bool) sim.RunResult {
	r := s.engine.Run(s.clock, maxCycles, stop)
	s.clock += r.Cycles + r.SkippedCycles
	return r
}

// RunUntilResumed is RunUntil for the continuation of an earlier chunk
// of the same run (checkpoint-autosave cadence, restored snapshots): a
// fast-forwarding engine may jump over leading idle cycles before
// executing anything, keeping chunked execution byte-identical to an
// uninterrupted run.
func (s *System) RunUntilResumed(maxCycles uint64, stop func(cycle uint64) bool) sim.RunResult {
	r := s.engine.RunResumed(s.clock, maxCycles, stop)
	s.clock += r.Cycles + r.SkippedCycles
	return r
}

// RunWarmup runs the configured warmup and clears statistics after it
// (paper Table I: 200k warmup cycles for synthetic traffic).
func (s *System) RunWarmup() sim.RunResult {
	r := s.Run(uint64(s.Config.WarmupCycles))
	s.ResetStats()
	return r
}

// ResetStats zeroes all per-tile statistics (warmup boundary). Power
// epoch baselines survive via the model's cumulative-counter deltas.
func (s *System) ResetStats() {
	for _, t := range s.tiles {
		t.Stats.Reset()
	}
}

// Summary aggregates statistics across tiles.
func (s *System) Summary() stats.Summary {
	ts := make([]*stats.Tile, len(s.tiles))
	for i, t := range s.tiles {
		ts[i] = t.Stats
	}
	return stats.Aggregate(ts)
}

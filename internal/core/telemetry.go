package core

import (
	"sync"

	"hornet/internal/noc"
	"hornet/internal/obs"
)

// telemetryCollector implements sim.Sampler: at engine sync points it
// walks the system's tile span — every worker is parked at the barrier,
// so the plain per-tile counters and the atomic VC occupancy reads are
// coherent — and publishes an obs.TelemetrySnapshot under its own lock.
// Consumers (the serve layer's wall-clock pump) read the latest sample
// without ever touching simulation state.
type telemetryCollector struct {
	sys *System

	mu     sync.Mutex
	latest obs.TelemetrySnapshot
	seq    uint64

	// Sample receives the run-local skipped count, which resets between
	// chunked runs; fold it into a cumulative total by banking the
	// previous run's final value whenever the counter shrinks.
	skippedBase uint64
	lastRunSkip uint64
}

// Sample builds and publishes a snapshot of the span [lo,hi) this
// system's engine steps (the full machine unless sharded).
func (c *telemetryCollector) Sample(cycle, runSkipped uint64) {
	s := c.sys
	lo, hi := s.ShardSpan()
	index, count := s.ShardIndex()
	snap := obs.TelemetrySnapshot{
		Cycle:      cycle,
		Shard:      index,
		ShardCount: count,
		TileLo:     lo,
		TileHi:     hi,
		Tiles:      make([]obs.TileTelemetry, 0, hi-lo),
	}
	for i := lo; i < hi; i++ {
		t := s.tiles[i]
		inj, del, avg := t.Stats.FlitSample()
		snap.Tiles = append(snap.Tiles, obs.TileTelemetry{
			Tile:           i,
			FlitsInjected:  inj,
			FlitsDelivered: del,
			AvgFlitLatency: avg,
		})
		for _, p := range t.Router.Ports() {
			if p.Neighbor == noc.InvalidNode {
				continue // CPU injection port, not a mesh link
			}
			used, capacity := p.InOccupancy()
			snap.Links = append(snap.Links, obs.LinkTelemetry{
				From:      int(p.Neighbor),
				To:        i,
				Occupancy: used,
				Capacity:  capacity,
			})
		}
	}

	c.mu.Lock()
	if runSkipped < c.lastRunSkip {
		c.skippedBase += c.lastRunSkip
	}
	c.lastRunSkip = runSkipped
	snap.SkippedCycles = c.skippedBase + runSkipped
	c.latest = snap
	c.seq++
	c.mu.Unlock()
}

// EnableTelemetry attaches a machine-telemetry collector to the engine,
// sampling every `every` cycles at sync points (plus the final sync
// point of every run). Idempotent: re-enabling keeps accumulated state
// and adjusts the cadence. Costs nothing until the first sample; a
// system that never calls this keeps the engine's nil-sampler fast
// path.
func (s *System) EnableTelemetry(every uint64) {
	if s.telemetry == nil {
		s.telemetry = &telemetryCollector{sys: s}
	}
	s.engine.SetSampler(s.telemetry, every)
}

// Telemetry returns the latest machine-telemetry sample plus a
// sequence number incremented once per sample; 0 means no sample has
// been taken yet (or telemetry is not enabled).
func (s *System) Telemetry() (obs.TelemetrySnapshot, uint64) {
	c := s.telemetry
	if c == nil {
		return obs.TelemetrySnapshot{}, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.latest, c.seq
}

package core

import (
	"fmt"

	"hornet/internal/mips"
	"hornet/internal/noc"
	"hornet/internal/sim"
	"hornet/internal/snapshot"
)

// Space-parallel sharding at the system level. Every shard process
// builds the *full* system from the same validated config — topology,
// routers, seeds, frontends — so wiring and per-tile RNG streams are
// bit-identical to the single-process run, then restricts its engine to
// one contiguous tile span. At each synchronization point the engine's
// barrier leader calls the shard coupler, which captures boundary state
// (internal/noc's ShardBoundary), trades it through a ShardPeer (the
// serve coordinator over HTTP, or an in-process hub in tests) together
// with the shard's vote, applies every other shard's boundary blob, and
// returns the group decision. After the run, ShardGather folds per-span
// statistics so shard 0 can produce the exact Document the
// single-process run would have written.

// ShardPeer is the transport connecting one shard to its group. Sync
// exchanges a synchronization-point vote plus the shard's boundary blob
// for the group decision plus every shard's boundary blob (own included;
// applying it is a no-op). Gather runs once after the simulation
// completes, trading per-span statistics payloads the same way.
type ShardPeer interface {
	Sync(vote sim.ShardVote, boundary []byte) (sim.ShardDecision, [][]byte, error)
	Gather(payload []byte) ([][]byte, error)
}

// ShardRestartError is returned by a ShardPeer when the group lost a
// member and rolled back: every surviving shard must abandon its current
// state, restore the coordinated checkpoint at Cycle (zero means a fresh
// build) and rejoin under the new epoch.
type ShardRestartError struct {
	Epoch uint64
	Cycle uint64
}

func (e *ShardRestartError) Error() string {
	return fmt.Sprintf("core: shard group restarted (epoch %d, checkpoint cycle %d)", e.Epoch, e.Cycle)
}

// shardState is the system's sharding context once enabled.
type shardState struct {
	index, count int
	lo, hi       int
	peer         ShardPeer
	boundary     *noc.ShardBoundary
}

// shardCoupler adapts the system's boundary exchange to the engine's
// per-synchronization-point callback.
type shardCoupler struct {
	st *shardState
}

func (c *shardCoupler) Sync(vote sim.ShardVote) (sim.ShardDecision, error) {
	blob, err := c.st.boundary.Capture(vote.Cycle)
	if err != nil {
		return sim.ShardDecision{}, err
	}
	dec, blobs, err := c.st.peer.Sync(vote, blob)
	if err != nil {
		return sim.ShardDecision{}, err
	}
	// Capture strictly precedes Apply: applying pops mutates the replica
	// buffers Capture indexes into.
	for _, b := range blobs {
		if err := c.st.boundary.Apply(b); err != nil {
			return sim.ShardDecision{}, err
		}
	}
	return dec, nil
}

// EnableSharding restricts the system to the tile span owned by shard
// index out of count and installs the peer used at every
// synchronization point. Call after all frontends are attached and —
// when resuming — after Restore, so the boundary bookkeeping baselines
// against the restored state. Sharding requires cycle-accurate
// synchronization (sync period 1).
func (s *System) EnableSharding(index, count int, peer ShardPeer) error {
	if s.shard != nil {
		return fmt.Errorf("core: sharding already enabled")
	}
	if peer == nil {
		return fmt.Errorf("core: sharding needs a peer")
	}
	n := len(s.tiles)
	if count < 2 || count > n || index < 0 || index >= count {
		return fmt.Errorf("core: bad shard index/count %d/%d for %d tiles", index, count, n)
	}
	if rs := s.restoredShard; rs != nil && (rs.index != index || rs.count != count) {
		return fmt.Errorf("core: restored snapshot belongs to shard %d/%d, not %d/%d",
			rs.index, rs.count, index, count)
	}
	lo, hi := sim.ShardSpan(n, count, index)
	routers := make([]*noc.Router, n)
	for i, t := range s.tiles {
		routers[i] = t.Router
	}
	st := &shardState{
		index: index, count: count, lo: lo, hi: hi,
		peer:     peer,
		boundary: noc.NewShardBoundary(routers, lo, hi),
	}
	if err := s.engine.SetShard(index, count, &shardCoupler{st: st}, s.shardDone(lo, hi)); err != nil {
		return err
	}
	s.shard = st
	return nil
}

// ShardSpan returns the enabled shard's tile span [lo,hi), or (0,n) when
// the system is not sharded.
func (s *System) ShardSpan() (lo, hi int) {
	if s.shard == nil {
		return 0, len(s.tiles)
	}
	return s.shard.lo, s.shard.hi
}

// ShardIndex returns (index, count) of the enabled shard, or (0, 1).
func (s *System) ShardIndex() (int, int) {
	if s.shard == nil {
		return 0, 1
	}
	return s.shard.index, s.shard.count
}

// shardDone builds the span-local completion predicate the group
// decision ANDs across shards. It is the exact decomposition of
// CoresHalted: per-span core/drain conditions here, the global
// in-flight sum in the decision layer. Synthetic- and trace-driven
// systems have no completion predicate (nil).
func (s *System) shardDone(lo, hi int) func() bool {
	if len(s.mipsCores) == 0 {
		return nil
	}
	var cores []*mips.Core
	for i, c := range s.mipsCores {
		if n := int(s.mipsNodes[i]); n >= lo && n < hi {
			cores = append(cores, c)
		}
	}
	tiles := s.tiles[lo:hi]
	return func() bool {
		for _, c := range cores {
			if !c.Halted() || !c.Net().Idle() {
				return false
			}
		}
		for _, t := range tiles {
			if t.Router.PendingPackets() > 0 {
				return false
			}
		}
		return true
	}
}

const secShardStats = "shard-stats"

// ShardGather exchanges per-span statistics after the simulated phases
// complete, leaving every shard — in particular shard 0, which writes
// the Document — with the full system's per-tile statistics, identical
// to what the single-process run accumulates.
func (s *System) ShardGather() error {
	st := s.shard
	if st == nil {
		return fmt.Errorf("core: system is not sharded")
	}
	snap := snapshot.New(secShardStats, s.clock)
	w := snap.Section(secShardStats)
	w.Int(st.lo)
	w.Int(st.hi)
	for _, t := range s.tiles[st.lo:st.hi] {
		t.Stats.SaveState(w)
	}
	payload, err := snap.Bytes()
	if err != nil {
		return err
	}
	blobs, err := st.peer.Gather(payload)
	if err != nil {
		return err
	}
	for _, b := range blobs {
		if err := s.applyShardStats(b); err != nil {
			return err
		}
	}
	return nil
}

// applyShardStats loads one shard's statistics payload into the
// corresponding replica tiles. The local span is skipped (its statistics
// are the live originals).
func (s *System) applyShardStats(blob []byte) error {
	snap, err := snapshot.DecodeBytes(blob)
	if err != nil {
		return fmt.Errorf("core: shard stats blob: %w", err)
	}
	r, err := snap.Open(secShardStats)
	if err != nil {
		return fmt.Errorf("core: shard stats blob: %w", err)
	}
	lo := r.Int()
	hi := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if lo < 0 || hi > len(s.tiles) || lo >= hi {
		return fmt.Errorf("core: shard stats blob spans [%d,%d) of %d tiles", lo, hi, len(s.tiles))
	}
	if lo == s.shard.lo && hi == s.shard.hi {
		return nil
	}
	for _, t := range s.tiles[lo:hi] {
		if err := t.Stats.LoadState(r); err != nil {
			return err
		}
	}
	return r.Close()
}

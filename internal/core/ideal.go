package core

import (
	"sort"

	"hornet/internal/topology"
	"hornet/internal/trace"
)

// IdealResult carries the congestion-oblivious model's outputs.
type IdealResult struct {
	AvgFlitLatency   float64
	AvgPacketLatency float64
	FlitsDelivered   uint64
	PacketsDelivered uint64
}

// PerHopLatency is the zero-load per-hop pipeline cost of the cycle-level
// router (RC + VA + SA stages plus the link cycle), used by the ideal
// model so the two configurations differ only in congestion modeling.
const PerHopLatency = 3

// IdealTrace replays a trace under the paper's congestion-oblivious
// configuration (Fig 8): injection bandwidth is limited exactly as in the
// accurate model (one flit per node per cycle at the CPU port), but
// transit latencies are simple hop counts — no queueing, no arbitration,
// no backpressure.
func IdealTrace(topo *topology.Topology, tr *trace.Trace) IdealResult {
	events := append([]trace.Event(nil), tr.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].Cycle < events[j].Cycle })
	nextFree := make(map[int]uint64)
	var res IdealResult
	var flitLatSum, pktLatSum float64
	for _, e := range events {
		count := e.Count
		if count == 0 {
			count = 1
		}
		for k := uint64(0); k < count; k++ {
			at := e.Cycle + k*e.Period
			if e.Src == e.Dst {
				continue
			}
			start := at
			if nf := nextFree[int(e.Src)]; nf > start {
				start = nf
			}
			nextFree[int(e.Src)] = start + uint64(e.Flits)
			hops := topo.ManhattanDistance(e.Src, e.Dst)
			transit := uint64(hops*PerHopLatency) + 1
			// Every flit sees the hop-count transit; the packet as a whole
			// additionally serializes over its length.
			flitLatSum += float64(transit) * float64(e.Flits)
			pktLatSum += float64(transit + uint64(e.Flits) - 1)
			res.FlitsDelivered += uint64(e.Flits)
			res.PacketsDelivered++
		}
	}
	if res.FlitsDelivered > 0 {
		res.AvgFlitLatency = flitLatSum / float64(res.FlitsDelivered)
	}
	if res.PacketsDelivered > 0 {
		res.AvgPacketLatency = pktLatSum / float64(res.PacketsDelivered)
	}
	return res
}

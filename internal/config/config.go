// Package config defines the typed configuration tree for a HORNET
// simulation: interconnect geometry, router resources, routing and VC
// allocation algorithms, traffic sources, memory hierarchy, power and
// thermal model parameters, and the parallel-engine settings (worker
// count, synchronization period, fast-forwarding).
//
// The zero value is not usable; start from Default() and override fields.
// Config round-trips through JSON so experiment harnesses can archive the
// exact configuration used for each run.
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Topology names accepted by Config.Topology.Kind.
const (
	TopoLine      = "line"
	TopoRing      = "ring"
	TopoMesh      = "mesh"       // 2D mesh
	TopoTorus     = "torus"      // 2D torus with dateline VCs
	TopoMeshX1    = "mesh-x1"    // multilayer mesh, one inter-layer link per layer pair (at 0,0)
	TopoMeshX1Y1  = "mesh-x1y1"  // multilayer mesh, inter-layer links along x=0 and y=0 edges
	TopoMeshXCube = "mesh-xcube" // multilayer mesh, inter-layer link at every node
)

// Routing algorithm names accepted by Config.Routing.Algorithm.
const (
	RouteXY       = "xy"
	RouteYX       = "yx"
	RouteO1Turn   = "o1turn"
	RouteROMM     = "romm"     // two-phase ROMM (random intermediate in minimal rectangle)
	RouteValiant  = "valiant"  // two-phase Valiant (random intermediate anywhere)
	RoutePROM     = "prom"     // path-based randomized oblivious minimal routing
	RouteStatic   = "static"   // explicit per-flow paths (BSOR-style input)
	RouteAdaptive = "adaptive" // turn-model (west-first) adaptive routing
)

// VC allocation policy names accepted by Config.Router.VCAlloc.
const (
	VCADynamic   = "dynamic"
	VCAStaticSet = "static-set"
	VCAEDVCA     = "edvca"
	VCAFAA       = "faa"
)

// Traffic pattern names accepted by TrafficConfig.Pattern.
const (
	PatternUniform       = "uniform"
	PatternTranspose     = "transpose"
	PatternBitComplement = "bitcomp"
	PatternShuffle       = "shuffle"
	PatternTornado       = "tornado"
	PatternNeighbor      = "neighbor"
	PatternHotspot       = "hotspot"
	PatternH264          = "h264" // H.264 decoder profile: low-rate CBR flows
)

// TopologyConfig describes the interconnect geometry.
type TopologyConfig struct {
	Kind   string `json:"kind"`
	Width  int    `json:"width"`            // X dimension (nodes)
	Height int    `json:"height"`           // Y dimension (nodes); 1 for line/ring
	Layers int    `json:"layers,omitempty"` // multilayer meshes only
}

// Nodes returns the total node count implied by the geometry.
func (t TopologyConfig) Nodes() int {
	l := t.Layers
	if l <= 0 {
		l = 1
	}
	h := t.Height
	if h <= 0 {
		h = 1
	}
	return t.Width * h * l
}

// RouterConfig describes per-node router resources.
type RouterConfig struct {
	VCsPerPort    int    `json:"vcs_per_port"`
	VCBufFlits    int    `json:"vc_buf_flits"`   // capacity of each VC buffer, in flits
	LinkBandwidth int    `json:"link_bandwidth"` // flits per cycle per link direction
	VCAlloc       string `json:"vc_alloc"`       // one of the VCA* constants
	Bidirectional bool   `json:"bidirectional"`  // bandwidth-adaptive bidirectional links
	// InjVCs and InjBufFlits configure the CPU<->switch port separately,
	// as the paper allows; zero means "same as network ports".
	InjVCs      int `json:"inj_vcs,omitempty"`
	InjBufFlits int `json:"inj_buf_flits,omitempty"`
}

// RoutingConfig selects and parameterizes the routing algorithm.
type RoutingConfig struct {
	Algorithm string `json:"algorithm"`
	// StaticPaths carries explicit routes for RouteStatic:
	// each path is a node-ID sequence from source to destination.
	StaticPaths [][]int `json:"static_paths,omitempty"`
}

// TrafficConfig describes one synthetic traffic source set (network-only mode).
type TrafficConfig struct {
	Pattern string `json:"pattern"`
	// InjectionRate is the probability per node per cycle of starting a
	// new packet (average offered load; packets, not flits).
	InjectionRate float64 `json:"injection_rate"`
	PacketFlits   int     `json:"packet_flits"` // flits per packet (0 => Config.AvgPacketFlits)
	// Burst parameters: if BurstLen > 0, injection alternates between
	// bursts of BurstLen cycles at InjectionRate and gaps of BurstGap
	// idle cycles (used by the low-traffic bit-complement workload).
	BurstLen int `json:"burst_len,omitempty"`
	BurstGap int `json:"burst_gap,omitempty"`
	// Hotspot destinations (PatternHotspot): fraction HotFrac of traffic
	// targets the listed nodes.
	HotNodes []int   `json:"hot_nodes,omitempty"`
	HotFrac  float64 `json:"hot_frac,omitempty"`
}

// MemoryConfig describes the cache hierarchy and memory controllers used by
// the MIPS and pinsim frontends (and by MC-directed network-only traffic).
type MemoryConfig struct {
	LineBytes    int    `json:"line_bytes"`
	L1Sets       int    `json:"l1_sets"`
	L1Ways       int    `json:"l1_ways"`
	L1LatencyCyc int    `json:"l1_latency"`
	Protocol     string `json:"protocol"`       // "msi" or "nuca"
	Controllers  []int  `json:"controllers"`    // node IDs hosting memory controllers
	MCLatencyCyc int    `json:"mc_latency"`     // DRAM access latency
	MCQueueDepth int    `json:"mc_queue_depth"` // max outstanding requests per MC
}

// PowerConfig carries the ORION-style event energies (picojoules) and
// leakage (milliwatts per router) used by the power model.
type PowerConfig struct {
	BufReadPJ   float64 `json:"buf_read_pj"`
	BufWritePJ  float64 `json:"buf_write_pj"`
	XbarPJ      float64 `json:"xbar_pj"`
	ArbPJ       float64 `json:"arb_pj"`
	LinkPJ      float64 `json:"link_pj"`
	LeakageMW   float64 `json:"leakage_mw"`
	ClockGHz    float64 `json:"clock_ghz"`
	EpochCycles int     `json:"epoch_cycles"` // power/thermal sampling period
}

// ThermalConfig parameterizes the HOTSPOT-style RC grid.
type ThermalConfig struct {
	AmbientC       float64 `json:"ambient_c"`
	RVerticalKPerW float64 `json:"r_vertical"` // tile -> heat sink
	RLateralKPerW  float64 `json:"r_lateral"`  // tile <-> neighbouring tile
	CJPerK         float64 `json:"c_j_per_k"`  // tile thermal capacitance
}

// EngineConfig controls the parallel simulation engine.
type EngineConfig struct {
	Workers     int    `json:"workers"`      // host threads; 0 => GOMAXPROCS
	SyncPeriod  int    `json:"sync_period"`  // 1 => cycle-accurate (2 barriers/cycle)
	FastForward bool   `json:"fast_forward"` // skip provably idle cycles
	Seed        uint64 `json:"seed"`
}

// Config is the root simulation configuration.
type Config struct {
	Topology TopologyConfig  `json:"topology"`
	Router   RouterConfig    `json:"router"`
	Routing  RoutingConfig   `json:"routing"`
	Traffic  []TrafficConfig `json:"traffic,omitempty"`
	Memory   *MemoryConfig   `json:"memory,omitempty"`
	Power    PowerConfig     `json:"power"`
	Thermal  ThermalConfig   `json:"thermal"`
	Engine   EngineConfig    `json:"engine"`

	AvgPacketFlits int `json:"avg_packet_flits"`
	WarmupCycles   int `json:"warmup_cycles"`
	AnalyzedCycles int `json:"analyzed_cycles"`
}

// Default returns the paper's baseline configuration (Table I): an 8x8 2D
// mesh with XY routing, dynamic VC allocation, 4 VCs of 4 flits per port,
// 1 flit/cycle links, 8-flit packets, cycle-accurate synchronization.
func Default() Config {
	return Config{
		Topology: TopologyConfig{Kind: TopoMesh, Width: 8, Height: 8},
		Router: RouterConfig{
			VCsPerPort:    4,
			VCBufFlits:    4,
			LinkBandwidth: 1,
			VCAlloc:       VCADynamic,
		},
		Routing: RoutingConfig{Algorithm: RouteXY},
		Power: PowerConfig{
			BufReadPJ:   0.40,
			BufWritePJ:  0.55,
			XbarPJ:      0.85,
			ArbPJ:       0.10,
			LinkPJ:      1.20,
			LeakageMW:   1.5,
			ClockGHz:    1.0,
			EpochCycles: 10_000,
		},
		Thermal: ThermalConfig{
			AmbientC:       45.0,
			RVerticalKPerW: 8.0,
			RLateralKPerW:  2.5,
			CJPerK:         0.015,
		},
		Engine:         EngineConfig{Workers: 0, SyncPeriod: 1, Seed: 0x5EED0A11},
		AvgPacketFlits: 8,
		WarmupCycles:   200_000,
		AnalyzedCycles: 2_000_000,
	}
}

// Default1024 returns the paper's large-scale configuration: a 32x32 mesh.
func Default1024() Config {
	c := Default()
	c.Topology.Width, c.Topology.Height = 32, 32
	return c
}

// Validate checks the configuration for internal consistency and returns a
// descriptive error for the first problem found.
func (c *Config) Validate() error {
	t := &c.Topology
	switch t.Kind {
	case TopoLine, TopoRing:
		if t.Width < 2 {
			return fmt.Errorf("config: %s topology needs width >= 2, got %d", t.Kind, t.Width)
		}
	case TopoMesh, TopoTorus:
		if t.Width < 2 || t.Height < 2 {
			return fmt.Errorf("config: %s topology needs width,height >= 2, got %dx%d", t.Kind, t.Width, t.Height)
		}
	case TopoMeshX1, TopoMeshX1Y1, TopoMeshXCube:
		if t.Width < 2 || t.Height < 2 || t.Layers < 2 {
			return fmt.Errorf("config: %s topology needs width,height >= 2 and layers >= 2", t.Kind)
		}
	default:
		return fmt.Errorf("config: unknown topology kind %q", t.Kind)
	}
	r := &c.Router
	if r.VCsPerPort < 1 {
		return fmt.Errorf("config: vcs_per_port must be >= 1, got %d", r.VCsPerPort)
	}
	if r.VCBufFlits < 1 {
		return fmt.Errorf("config: vc_buf_flits must be >= 1, got %d", r.VCBufFlits)
	}
	if r.LinkBandwidth < 1 {
		return fmt.Errorf("config: link_bandwidth must be >= 1, got %d", r.LinkBandwidth)
	}
	switch r.VCAlloc {
	case VCADynamic, VCAStaticSet, VCAEDVCA, VCAFAA:
	default:
		return fmt.Errorf("config: unknown vc_alloc %q", r.VCAlloc)
	}
	switch c.Routing.Algorithm {
	case RouteXY, RouteYX, RoutePROM, RouteAdaptive:
	case RouteO1Turn:
		if r.VCsPerPort < 2 {
			return fmt.Errorf("config: o1turn needs >= 2 VCs per port for deadlock freedom")
		}
	case RouteROMM, RouteValiant:
		if r.VCsPerPort < 2 {
			return fmt.Errorf("config: %s needs >= 2 VCs per port (one set per phase)", c.Routing.Algorithm)
		}
	case RouteStatic:
		if len(c.Routing.StaticPaths) == 0 {
			return fmt.Errorf("config: static routing requires static_paths")
		}
		for i, p := range c.Routing.StaticPaths {
			if len(p) < 2 {
				return fmt.Errorf("config: static path %d has fewer than 2 nodes", i)
			}
			for _, n := range p {
				if n < 0 || n >= t.Nodes() {
					return fmt.Errorf("config: static path %d references node %d outside topology", i, n)
				}
			}
		}
	default:
		return fmt.Errorf("config: unknown routing algorithm %q", c.Routing.Algorithm)
	}
	for i := range c.Traffic {
		tc := &c.Traffic[i]
		switch tc.Pattern {
		case PatternUniform, PatternTranspose, PatternBitComplement, PatternShuffle,
			PatternTornado, PatternNeighbor, PatternHotspot, PatternH264:
		default:
			return fmt.Errorf("config: unknown traffic pattern %q", tc.Pattern)
		}
		if tc.InjectionRate < 0 || tc.InjectionRate > 1 {
			return fmt.Errorf("config: injection_rate must be in [0,1], got %g", tc.InjectionRate)
		}
		if tc.Pattern == PatternHotspot && len(tc.HotNodes) == 0 {
			return fmt.Errorf("config: hotspot pattern requires hot_nodes")
		}
		for _, n := range tc.HotNodes {
			if n < 0 || n >= t.Nodes() {
				return fmt.Errorf("config: hot node %d outside topology", n)
			}
		}
	}
	if m := c.Memory; m != nil {
		if m.LineBytes < 4 || m.LineBytes&(m.LineBytes-1) != 0 {
			return fmt.Errorf("config: line_bytes must be a power of two >= 4, got %d", m.LineBytes)
		}
		if m.L1Sets < 1 || m.L1Ways < 1 {
			return fmt.Errorf("config: L1 geometry must be >= 1 set and >= 1 way")
		}
		if m.Protocol != "msi" && m.Protocol != "nuca" {
			return fmt.Errorf("config: unknown coherence protocol %q", m.Protocol)
		}
		if len(m.Controllers) == 0 {
			return fmt.Errorf("config: memory config requires at least one controller node")
		}
		for _, n := range m.Controllers {
			if n < 0 || n >= t.Nodes() {
				return fmt.Errorf("config: memory controller node %d outside topology", n)
			}
		}
	}
	e := &c.Engine
	if e.SyncPeriod < 1 {
		return fmt.Errorf("config: sync_period must be >= 1, got %d", e.SyncPeriod)
	}
	if e.Workers < 0 {
		return fmt.Errorf("config: workers must be >= 0, got %d", e.Workers)
	}
	if c.AvgPacketFlits < 1 {
		return fmt.Errorf("config: avg_packet_flits must be >= 1, got %d", c.AvgPacketFlits)
	}
	if c.Power.EpochCycles < 1 {
		return fmt.Errorf("config: power epoch_cycles must be >= 1")
	}
	return nil
}

// DefaultMemory returns a baseline memory hierarchy: 32-byte lines, 4 KiB
// 4-way L1, MSI directory coherence, one controller at node 0.
func DefaultMemory() *MemoryConfig {
	return &MemoryConfig{
		LineBytes:    32,
		L1Sets:       32,
		L1Ways:       4,
		L1LatencyCyc: 1,
		Protocol:     "msi",
		Controllers:  []int{0},
		MCLatencyCyc: 50,
		MCQueueDepth: 16,
	}
}

// WriteJSON serializes the config with stable indentation.
func (c *Config) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// Load reads and validates a JSON config file.
func Load(path string) (Config, error) {
	var c Config
	f, err := os.Open(path)
	if err != nil {
		return c, fmt.Errorf("config: %w", err)
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return c, fmt.Errorf("config: parsing %s: %w", path, err)
	}
	if err := c.Validate(); err != nil {
		return c, fmt.Errorf("config: %s: %w", path, err)
	}
	return c, nil
}

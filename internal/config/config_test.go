package config

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDefaultValidates(t *testing.T) {
	cfg := Default()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	big := Default1024()
	if err := big.Validate(); err != nil {
		t.Fatal(err)
	}
	if big.Topology.Nodes() != 1024 {
		t.Fatalf("1024 config has %d nodes", big.Topology.Nodes())
	}
}

func TestValidateCatches(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Topology.Kind = "blob" },
		func(c *Config) { c.Topology.Width = 1 },
		func(c *Config) { c.Router.VCsPerPort = 0 },
		func(c *Config) { c.Router.VCBufFlits = 0 },
		func(c *Config) { c.Router.LinkBandwidth = 0 },
		func(c *Config) { c.Router.VCAlloc = "psychic" },
		func(c *Config) { c.Routing.Algorithm = "teleport" },
		func(c *Config) { c.Routing.Algorithm = RouteO1Turn; c.Router.VCsPerPort = 1 },
		func(c *Config) { c.Routing.Algorithm = RouteStatic },
		func(c *Config) {
			c.Traffic = []TrafficConfig{{Pattern: PatternUniform, InjectionRate: 2}}
		},
		func(c *Config) { c.Traffic = []TrafficConfig{{Pattern: "meh"}} },
		func(c *Config) { c.Traffic = []TrafficConfig{{Pattern: PatternHotspot}} },
		func(c *Config) { c.Engine.SyncPeriod = 0 },
		func(c *Config) { c.AvgPacketFlits = 0 },
		func(c *Config) { c.Memory = DefaultMemory(); c.Memory.LineBytes = 24 },
		func(c *Config) { c.Memory = DefaultMemory(); c.Memory.Protocol = "mesi2000" },
		func(c *Config) { c.Memory = DefaultMemory(); c.Memory.Controllers = []int{9999} },
	}
	for i, mutate := range mutations {
		cfg := Default()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d validated", i)
		}
	}
}

func TestStaticRoutingValidation(t *testing.T) {
	cfg := Default()
	cfg.Routing.Algorithm = RouteStatic
	cfg.Routing.StaticPaths = [][]int{{0, 1, 2}}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg.Routing.StaticPaths = [][]int{{0, 999}}
	if err := cfg.Validate(); err == nil {
		t.Fatal("out-of-topology static path accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	cfg := Default()
	cfg.Traffic = []TrafficConfig{{Pattern: PatternShuffle, InjectionRate: 0.05}}
	cfg.Memory = DefaultMemory()
	var buf bytes.Buffer
	if err := cfg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Config
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Topology != cfg.Topology || back.Router != cfg.Router {
		t.Fatal("round trip changed config")
	}
	if back.Memory == nil || back.Memory.LineBytes != cfg.Memory.LineBytes ||
		back.Memory.Protocol != cfg.Memory.Protocol ||
		len(back.Memory.Controllers) != len(cfg.Memory.Controllers) {
		t.Fatal("memory config lost")
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.json")
	cfg := Default()
	cfg.Traffic = []TrafficConfig{{Pattern: PatternUniform, InjectionRate: 0.01}}
	var buf bytes.Buffer
	if err := cfg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Topology.Width != 8 {
		t.Fatal("loaded config wrong")
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file loaded")
	}
	if err := os.WriteFile(path, []byte(`{"unknown_field": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("unknown fields accepted")
	}
}

func TestTopologyNodes(t *testing.T) {
	cases := []struct {
		tc   TopologyConfig
		want int
	}{
		{TopologyConfig{Kind: TopoMesh, Width: 8, Height: 8}, 64},
		{TopologyConfig{Kind: TopoRing, Width: 5}, 5},
		{TopologyConfig{Kind: TopoMeshXCube, Width: 4, Height: 4, Layers: 3}, 48},
	}
	for _, c := range cases {
		if got := c.tc.Nodes(); got != c.want {
			t.Errorf("%+v: Nodes() = %d, want %d", c.tc, got, c.want)
		}
	}
}

// Validation rejections carry messages precise enough to surface as
// structured API errors (hornet-serve returns them verbatim in 4xx
// responses): each names the offending field or value.
func TestValidateErrorMessages(t *testing.T) {
	cases := []struct {
		name     string
		mutate   func(*Config)
		contains string
	}{
		{"unknown topology", func(c *Config) { c.Topology.Kind = "hypercube" }, "hypercube"},
		{"line too narrow", func(c *Config) { c.Topology.Kind = TopoLine; c.Topology.Width = 1 }, "width >= 2"},
		{"mesh too small", func(c *Config) { c.Topology.Height = 1 }, "width,height >= 2"},
		{"multilayer needs layers", func(c *Config) { c.Topology.Kind = TopoMeshX1; c.Topology.Layers = 1 }, "layers >= 2"},
		{"zero VCs", func(c *Config) { c.Router.VCsPerPort = 0 }, "vcs_per_port"},
		{"zero buffers", func(c *Config) { c.Router.VCBufFlits = 0 }, "vc_buf_flits"},
		{"zero bandwidth", func(c *Config) { c.Router.LinkBandwidth = 0 }, "link_bandwidth"},
		{"unknown vca", func(c *Config) { c.Router.VCAlloc = "psychic" }, "psychic"},
		{"unknown routing", func(c *Config) { c.Routing.Algorithm = "teleport" }, "teleport"},
		{"o1turn needs VCs", func(c *Config) { c.Routing.Algorithm = RouteO1Turn; c.Router.VCsPerPort = 1 }, "o1turn"},
		{"romm needs VCs", func(c *Config) { c.Routing.Algorithm = RouteROMM; c.Router.VCsPerPort = 1 }, "romm"},
		{"static needs paths", func(c *Config) { c.Routing.Algorithm = RouteStatic }, "static_paths"},
		{"short static path", func(c *Config) {
			c.Routing.Algorithm = RouteStatic
			c.Routing.StaticPaths = [][]int{{3}}
		}, "fewer than 2"},
		{"static path out of range", func(c *Config) {
			c.Routing.Algorithm = RouteStatic
			c.Routing.StaticPaths = [][]int{{0, 4096}}
		}, "outside topology"},
		{"unknown pattern", func(c *Config) { c.Traffic = []TrafficConfig{{Pattern: "storm"}} }, "storm"},
		{"rate out of range", func(c *Config) {
			c.Traffic = []TrafficConfig{{Pattern: PatternUniform, InjectionRate: 1.5}}
		}, "injection_rate"},
		{"hotspot needs nodes", func(c *Config) { c.Traffic = []TrafficConfig{{Pattern: PatternHotspot}} }, "hot_nodes"},
		{"hot node out of range", func(c *Config) {
			c.Traffic = []TrafficConfig{{Pattern: PatternHotspot, HotNodes: []int{70}}}
		}, "hot node 70"},
		{"bad line bytes", func(c *Config) { c.Memory = DefaultMemory(); c.Memory.LineBytes = 24 }, "line_bytes"},
		{"bad L1", func(c *Config) { c.Memory = DefaultMemory(); c.Memory.L1Sets = 0 }, "L1"},
		{"bad protocol", func(c *Config) { c.Memory = DefaultMemory(); c.Memory.Protocol = "mesi2000" }, "mesi2000"},
		{"no controllers", func(c *Config) { c.Memory = DefaultMemory(); c.Memory.Controllers = nil }, "controller"},
		{"controller out of range", func(c *Config) {
			c.Memory = DefaultMemory()
			c.Memory.Controllers = []int{9999}
		}, "9999"},
		{"zero sync period", func(c *Config) { c.Engine.SyncPeriod = 0 }, "sync_period"},
		{"negative workers", func(c *Config) { c.Engine.Workers = -1 }, "workers"},
		{"zero packet flits", func(c *Config) { c.AvgPacketFlits = 0 }, "avg_packet_flits"},
		{"zero epoch", func(c *Config) { c.Power.EpochCycles = 0 }, "epoch_cycles"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Default()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("invalid config validated")
			}
			if !strings.Contains(err.Error(), tc.contains) {
				t.Fatalf("error %q does not mention %q", err, tc.contains)
			}
		})
	}
}

// Every topology/routing/VC-allocation/traffic constant embeds in a
// valid configuration that survives a strict JSON round trip — the
// property that makes API submissions loss-free for every enum value.
func TestConstantsJSONRoundTrip(t *testing.T) {
	roundTrip := func(t *testing.T, cfg Config) Config {
		t.Helper()
		if err := cfg.Validate(); err != nil {
			t.Fatalf("fixture invalid: %v", err)
		}
		var buf bytes.Buffer
		if err := cfg.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		var back Config
		dec := json.NewDecoder(&buf)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&back); err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if err := back.Validate(); err != nil {
			t.Fatalf("round-tripped config invalid: %v", err)
		}
		return back
	}

	topologies := []TopologyConfig{
		{Kind: TopoLine, Width: 4, Height: 1},
		{Kind: TopoRing, Width: 6, Height: 1},
		{Kind: TopoMesh, Width: 4, Height: 4},
		{Kind: TopoTorus, Width: 4, Height: 4},
		{Kind: TopoMeshX1, Width: 2, Height: 2, Layers: 2},
		{Kind: TopoMeshX1Y1, Width: 2, Height: 2, Layers: 2},
		{Kind: TopoMeshXCube, Width: 2, Height: 2, Layers: 2},
	}
	for _, topo := range topologies {
		t.Run("topo-"+topo.Kind, func(t *testing.T) {
			cfg := Default()
			cfg.Topology = topo
			back := roundTrip(t, cfg)
			if back.Topology != topo {
				t.Fatalf("topology changed: %+v -> %+v", topo, back.Topology)
			}
		})
	}

	for _, alg := range []string{RouteXY, RouteYX, RouteO1Turn, RouteROMM,
		RouteValiant, RoutePROM, RouteStatic, RouteAdaptive} {
		t.Run("routing-"+alg, func(t *testing.T) {
			cfg := Default()
			cfg.Routing.Algorithm = alg
			if alg == RouteStatic {
				cfg.Routing.StaticPaths = [][]int{{0, 1, 2}}
			}
			back := roundTrip(t, cfg)
			if back.Routing.Algorithm != alg {
				t.Fatalf("algorithm changed: %s -> %s", alg, back.Routing.Algorithm)
			}
			if alg == RouteStatic && len(back.Routing.StaticPaths) != 1 {
				t.Fatal("static paths lost in round trip")
			}
		})
	}

	for _, vca := range []string{VCADynamic, VCAStaticSet, VCAEDVCA, VCAFAA} {
		t.Run("vca-"+vca, func(t *testing.T) {
			cfg := Default()
			cfg.Router.VCAlloc = vca
			if back := roundTrip(t, cfg); back.Router.VCAlloc != vca {
				t.Fatalf("vca changed: %s -> %s", vca, back.Router.VCAlloc)
			}
		})
	}

	for _, pat := range []string{PatternUniform, PatternTranspose, PatternBitComplement,
		PatternShuffle, PatternTornado, PatternNeighbor, PatternHotspot, PatternH264} {
		t.Run("pattern-"+pat, func(t *testing.T) {
			cfg := Default()
			tc := TrafficConfig{Pattern: pat, InjectionRate: 0.02}
			if pat == PatternHotspot {
				tc.HotNodes = []int{0, 9}
				tc.HotFrac = 0.8
			}
			cfg.Traffic = []TrafficConfig{tc}
			back := roundTrip(t, cfg)
			if len(back.Traffic) != 1 || back.Traffic[0].Pattern != pat {
				t.Fatalf("pattern lost: %+v", back.Traffic)
			}
			if pat == PatternHotspot &&
				(len(back.Traffic[0].HotNodes) != 2 || back.Traffic[0].HotFrac != 0.8) {
				t.Fatalf("hotspot params lost: %+v", back.Traffic[0])
			}
		})
	}
}

package config

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestDefaultValidates(t *testing.T) {
	cfg := Default()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	big := Default1024()
	if err := big.Validate(); err != nil {
		t.Fatal(err)
	}
	if big.Topology.Nodes() != 1024 {
		t.Fatalf("1024 config has %d nodes", big.Topology.Nodes())
	}
}

func TestValidateCatches(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Topology.Kind = "blob" },
		func(c *Config) { c.Topology.Width = 1 },
		func(c *Config) { c.Router.VCsPerPort = 0 },
		func(c *Config) { c.Router.VCBufFlits = 0 },
		func(c *Config) { c.Router.LinkBandwidth = 0 },
		func(c *Config) { c.Router.VCAlloc = "psychic" },
		func(c *Config) { c.Routing.Algorithm = "teleport" },
		func(c *Config) { c.Routing.Algorithm = RouteO1Turn; c.Router.VCsPerPort = 1 },
		func(c *Config) { c.Routing.Algorithm = RouteStatic },
		func(c *Config) {
			c.Traffic = []TrafficConfig{{Pattern: PatternUniform, InjectionRate: 2}}
		},
		func(c *Config) { c.Traffic = []TrafficConfig{{Pattern: "meh"}} },
		func(c *Config) { c.Traffic = []TrafficConfig{{Pattern: PatternHotspot}} },
		func(c *Config) { c.Engine.SyncPeriod = 0 },
		func(c *Config) { c.AvgPacketFlits = 0 },
		func(c *Config) { c.Memory = DefaultMemory(); c.Memory.LineBytes = 24 },
		func(c *Config) { c.Memory = DefaultMemory(); c.Memory.Protocol = "mesi2000" },
		func(c *Config) { c.Memory = DefaultMemory(); c.Memory.Controllers = []int{9999} },
	}
	for i, mutate := range mutations {
		cfg := Default()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d validated", i)
		}
	}
}

func TestStaticRoutingValidation(t *testing.T) {
	cfg := Default()
	cfg.Routing.Algorithm = RouteStatic
	cfg.Routing.StaticPaths = [][]int{{0, 1, 2}}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg.Routing.StaticPaths = [][]int{{0, 999}}
	if err := cfg.Validate(); err == nil {
		t.Fatal("out-of-topology static path accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	cfg := Default()
	cfg.Traffic = []TrafficConfig{{Pattern: PatternShuffle, InjectionRate: 0.05}}
	cfg.Memory = DefaultMemory()
	var buf bytes.Buffer
	if err := cfg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Config
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Topology != cfg.Topology || back.Router != cfg.Router {
		t.Fatal("round trip changed config")
	}
	if back.Memory == nil || back.Memory.LineBytes != cfg.Memory.LineBytes ||
		back.Memory.Protocol != cfg.Memory.Protocol ||
		len(back.Memory.Controllers) != len(cfg.Memory.Controllers) {
		t.Fatal("memory config lost")
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.json")
	cfg := Default()
	cfg.Traffic = []TrafficConfig{{Pattern: PatternUniform, InjectionRate: 0.01}}
	var buf bytes.Buffer
	if err := cfg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Topology.Width != 8 {
		t.Fatal("loaded config wrong")
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file loaded")
	}
	if err := os.WriteFile(path, []byte(`{"unknown_field": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("unknown fields accepted")
	}
}

func TestTopologyNodes(t *testing.T) {
	cases := []struct {
		tc   TopologyConfig
		want int
	}{
		{TopologyConfig{Kind: TopoMesh, Width: 8, Height: 8}, 64},
		{TopologyConfig{Kind: TopoRing, Width: 5}, 5},
		{TopologyConfig{Kind: TopoMeshXCube, Width: 4, Height: 4, Layers: 3}, 48},
	}
	for _, c := range cases {
		if got := c.tc.Nodes(); got != c.want {
			t.Errorf("%+v: Nodes() = %d, want %d", c.tc, got, c.want)
		}
	}
}

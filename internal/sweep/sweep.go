// Package sweep runs independent simulation configurations concurrently:
// the unit of parallelism is the *experiment sweep*, not the simulated
// cycle. A sweep is a list of Items, each naming one configuration by a
// stable key; the engine executes them on a bounded worker pool, derives a
// deterministic per-run seed from (sweep seed, key) via sim.DeriveSeed,
// charges every run's engine-worker request against a global CPU budget so
// sweep-level and engine-level parallelism never oversubscribe the host,
// and streams per-run results over a channel as they complete.
//
// Results are identified by item index and key, never by completion
// order, so a sweep's collected output is byte-identical for any worker
// count — the property the JSON emitter (emit.go) relies on for
// caching/resume by config hash.
//
// Sweeps are cancellable: when the context passed to Run or Stream is
// cancelled, no further items are dispatched, runs blocked on the budget
// give up, and in-flight runs drain to completion. Cancellation never
// truncates an individual result — a run either appears complete or not
// at all. The surviving result set can have index gaps (a run queued on
// the budget may be abandoned while a later-indexed run completes), so
// partial-document consumers must key on run presence, not position.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"hornet/internal/sim"
)

// Item is one run of a sweep: a stable key identifying the configuration
// and a function executing it. Weight is the number of engine workers
// (CPU slots) the run will occupy; 0 means 1.
//
// Seed, when non-zero, overrides the run's derived private seed: items
// that must observe identical stochastic inputs (a measurement pair, a
// warmup-once/fork-many group) set the same explicit seed, and the
// Ctx/Result/document seed then records what the run actually used.
// Zero keeps the default derivation sim.DeriveSeed(sweep seed, key).
type Item struct {
	Key    string
	Weight int
	Seed   uint64
	Run    func(Ctx) (any, error)
}

// Ctx carries the per-run context the engine hands to an Item's Run.
type Ctx struct {
	// Context is the sweep's cancellation context; long runs should poll
	// it (e.g. via a RunUntil stop function) to exit early when the sweep
	// is cancelled. Never nil.
	Context context.Context
	Key     string
	Index   int // position of the item in the sweep
	// Seed is the run's deterministic seed: the item's explicit Seed, or
	// sim.DeriveSeed(sweep seed, key) when the item left it zero.
	Seed    uint64
	Workers int // CPU slots granted (the item's weight clamped to the budget)
}

// Result is one completed run.
type Result struct {
	Index   int
	Key     string
	Seed    uint64
	Value   any
	Err     error
	Wall    time.Duration
	Workers int
}

// Config controls sweep execution.
type Config struct {
	// Workers is the number of runs in flight at once; 0 means GOMAXPROCS.
	Workers int
	// Budget is the global CPU-slot pool shared by all concurrent runs: a
	// run of weight W holds W slots for its duration, so sweep-level and
	// engine-level workers together never exceed it. 0 means
	// max(Workers, GOMAXPROCS). Ignored when Pool is set.
	Budget int
	// Pool, if non-nil, is an externally owned budget shared with other
	// sweeps: every run acquires its slots from it, so several concurrent
	// sweeps (e.g. jobs in a serving daemon) together never exceed the
	// pool's capacity.
	Pool *Budget
	// Seed is the sweep master seed from which every run's private seed is
	// derived.
	Seed uint64
	// OnProgress, if non-nil, is called after each run completes with the
	// number of finished runs, the sweep size, and the run's result. Calls
	// are serialized; the callback needs no locking.
	OnProgress func(done, total int, r Result)
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) budget() int {
	if c.Budget > 0 {
		return c.Budget
	}
	if w := c.workers(); w > runtime.GOMAXPROCS(0) {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) pool() *Budget {
	if c.Pool != nil {
		return c.Pool
	}
	return NewBudget(c.budget())
}

// Run executes all items and returns their results ordered by item index
// (not completion order), so collected output is deterministic for any
// worker count. If ctx is cancelled mid-sweep, Run returns the results of
// the runs that completed; callers distinguish a full sweep from a
// truncated one via ctx.Err() (or by comparing lengths).
func Run(ctx context.Context, items []Item, cfg Config) []Result {
	out := make([]Result, 0, len(items))
	for r := range Stream(ctx, items, cfg) {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// Stream executes all items on the worker pool and sends each Result as
// its run completes. The channel is closed once every dispatched item has
// finished. Items are dispatched in index order, but completion order
// depends on run durations; use Run for order-stable collection.
//
// When ctx is cancelled, dispatch stops, queued runs are abandoned
// without emitting a Result, and the channel closes after the in-flight
// runs drain.
func Stream(ctx context.Context, items []Item, cfg Config) <-chan Result {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make(chan Result, len(items))
	workers := cfg.workers()
	if workers > len(items) {
		workers = len(items)
		if workers < 1 {
			workers = 1
		}
	}
	budget := cfg.pool()

	var progressMu sync.Mutex
	done := 0
	emit := func(r Result) {
		if cfg.OnProgress != nil {
			progressMu.Lock()
			done++
			cfg.OnProgress(done, len(items), r)
			progressMu.Unlock()
		}
		results <- r
	}

	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if r, ok := runOne(ctx, items[i], i, cfg.Seed, budget); ok {
					emit(r)
				}
			}
		}()
	}
	go func() {
		for i := range items {
			if ctx.Err() != nil {
				break
			}
			select {
			case next <- i:
			case <-ctx.Done():
			}
		}
		close(next)
		wg.Wait()
		close(results)
	}()
	return results
}

// runOne executes a single item under the budget, converting panics into
// errors so one failing configuration cannot take down the whole sweep.
// It reports ok=false — and no Result — when the sweep was cancelled
// before the run could start (including while queued on the budget).
func runOne(ctx context.Context, it Item, index int, sweepSeed uint64, budget *Budget) (res Result, ok bool) {
	granted, err := budget.AcquireCtx(ctx, it.Weight)
	if err != nil {
		return Result{}, false
	}
	defer budget.Release(granted)

	seed := it.Seed
	if seed == 0 {
		seed = sim.DeriveSeed(sweepSeed, it.Key)
	}
	c := Ctx{
		Context: ctx,
		Key:     it.Key,
		Index:   index,
		Seed:    seed,
		Workers: granted,
	}
	res = Result{Index: index, Key: it.Key, Seed: c.Seed, Workers: granted}
	ok = true // the run is charged from here on: even a panic yields a Result
	began := time.Now()
	defer func() {
		res.Wall = time.Since(began)
		if p := recover(); p != nil {
			res.Err = fmt.Errorf("sweep: run %q panicked: %v", it.Key, p)
		}
	}()
	res.Value, res.Err = it.Run(c)
	return res, true
}

// PairSeed derives a seed shared by a group of runs that must observe
// identical stochastic inputs (e.g. a measurement pair differing only in
// the knob under study), keyed by the formatted parts. Runs that need
// fully private streams should use the Ctx.Seed the engine derives from
// their item key instead.
func PairSeed(base uint64, parts ...any) uint64 {
	return sim.DeriveSeed(base, fmt.Sprintln(parts...))
}

// Collect extracts the typed values from results in index order,
// returning the first error encountered (keyed for diagnosis).
func Collect[T any](results []Result) ([]T, error) {
	out := make([]T, 0, len(results))
	for _, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("sweep: run %q: %w", r.Key, r.Err)
		}
		v, ok := r.Value.(T)
		if !ok {
			return nil, fmt.Errorf("sweep: run %q returned %T, want %T", r.Key, r.Value, *new(T))
		}
		out = append(out, v)
	}
	return out, nil
}

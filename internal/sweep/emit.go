package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"

	"hornet/internal/fsatomic"
)

// ConfigHash returns a stable 16-hex-digit hash of the canonical JSON
// encoding of the given values. Two sweeps whose identifying inputs
// (figure name, scale options, seed, ...) hash equal will produce
// identical output documents, which is what makes the hash usable as a
// cache/resume key: encoding/json sorts map keys and struct fields are
// emitted in declaration order, so the encoding — and therefore the
// hash — does not vary between runs or machines.
func ConfigHash(vs ...any) string {
	h := fnv.New64a()
	for _, v := range vs {
		b, err := json.Marshal(v)
		if err != nil {
			panic(fmt.Sprintf("sweep: ConfigHash: %v", err))
		}
		h.Write(b)
		h.Write([]byte{0}) // separator so ("ab","c") != ("a","bc")
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// RunRecord is one run in an emitted Document.
type RunRecord struct {
	Key   string `json:"key"`
	Seed  uint64 `json:"seed"`
	Err   string `json:"err,omitempty"`
	Value any    `json:"value,omitempty"`
}

// Document is the JSON envelope for one sweep's results. Wall-clock and
// worker counts are deliberately omitted: a document is a pure function
// of (name, config hash, seed), byte-identical at any parallelism.
type Document struct {
	Name       string      `json:"name"`
	ConfigHash string      `json:"config_hash"`
	Seed       uint64      `json:"seed"`
	Runs       []RunRecord `json:"runs"`
}

// NewDocument packages ordered results into a Document.
func NewDocument(name, configHash string, seed uint64, results []Result) Document {
	doc := Document{Name: name, ConfigHash: configHash, Seed: seed}
	for _, r := range results {
		rec := RunRecord{Key: r.Key, Seed: r.Seed, Value: r.Value}
		if r.Err != nil {
			rec.Err = r.Err.Error()
		}
		doc.Runs = append(doc.Runs, rec)
	}
	return doc
}

// WriteJSON emits the document with stable two-space indentation.
func (d Document) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// WriteCSV emits one row per result: key, seed, then the fields produced
// by row. Results with errors are skipped (they have no row values).
func WriteCSV(w io.Writer, header []string, row func(Result) []string, results []Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"key", "seed"}, header...)); err != nil {
		return err
	}
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		rec := append([]string{r.Key, fmt.Sprintf("%d", r.Seed)}, row(r)...)
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Cache stores emitted documents on disk keyed by (name, config hash),
// enabling sweep resume: a driver checks Load before re-running a
// sweep whose identifying configuration has not changed.
type Cache struct{ Dir string }

// Path returns the file backing a (name, hash) pair.
func (c Cache) Path(name, hash string) string {
	return filepath.Join(c.Dir, name+"-"+hash+".json")
}

// Load reads a cached document if present. The boolean reports whether
// the cache held the document.
func (c Cache) Load(name, hash string) (Document, bool, error) {
	var doc Document
	b, err := os.ReadFile(c.Path(name, hash))
	if os.IsNotExist(err) {
		return doc, false, nil
	}
	if err != nil {
		return doc, false, err
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		// A truncated or mangled entry (e.g. a run killed mid-Store) is a
		// cache miss, not a fatal error: the caller recomputes and
		// overwrites it.
		return Document{}, false, nil
	}
	return doc, true, nil
}

// Store writes a document to the cache, creating the directory as
// needed. The write goes through a temp file and rename so an
// interrupted run never leaves a half-written entry behind.
func (c Cache) Store(doc Document) error {
	return fsatomic.Write(c.Path(doc.Name, doc.ConfigHash), func(w io.Writer) error {
		return doc.WriteJSON(w)
	})
}
